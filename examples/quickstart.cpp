// Quickstart: generate a small synthetic cross-lingual KG pair, run the
// full CEAFF pipeline (GCN structural feature + semantic + string features,
// adaptive two-stage fusion, stable-matching decisions), and compare with
// the independent-decision baseline.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "ceaff/core/pipeline.h"
#include "ceaff/data/synthetic.h"

using namespace ceaff;

int main() {
  // 1. Generate a benchmark: a DBP15K(FR-EN)-like dense cross-lingual pair
  //    with 300 gold entity pairs (30% seeds / 70% test).
  auto config_or = data::BenchmarkConfigByName("DBP15K_FR_EN", /*scale=*/0.3);
  if (!config_or.ok()) {
    std::fprintf(stderr, "config: %s\n",
                 config_or.status().ToString().c_str());
    return 1;
  }
  data::SyntheticKgOptions config = std::move(config_or).value();
  auto bench_or = data::GenerateBenchmark(config);
  if (!bench_or.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 bench_or.status().ToString().c_str());
    return 1;
  }
  data::SyntheticBenchmark bench = std::move(bench_or).value();
  std::printf("dataset %s: KG1 %zu entities / %zu triples, KG2 %zu / %zu\n",
              bench.pair.name.c_str(), bench.pair.kg1.num_entities(),
              bench.pair.kg1.num_triples(), bench.pair.kg2.num_entities(),
              bench.pair.kg2.num_triples());
  std::printf("seed pairs: %zu, test pairs: %zu\n",
              bench.pair.seed_alignment.size(),
              bench.pair.test_alignment.size());

  // 2. Configure CEAFF. Smaller GCN than the paper's ds=300 — the dataset
  //    is also ~50x smaller.
  core::CeaffOptions options;
  options.gcn.dim = 64;
  options.gcn.epochs = 60;

  // 3. Run collectively (CEAFF) and independently ("w/o C") for contrast.
  core::CeaffPipeline ceaff(&bench.pair, &bench.store, options);
  auto result_or = ceaff.Run();
  if (!result_or.ok()) {
    std::fprintf(stderr, "run: %s\n", result_or.status().ToString().c_str());
    return 1;
  }
  core::CeaffResult result = std::move(result_or).value();

  options.decision_mode = core::DecisionMode::kIndependent;
  core::CeaffPipeline independent(&bench.pair, &bench.store, options);
  auto indep_or = independent.Run();
  if (!indep_or.ok()) {
    std::fprintf(stderr, "run: %s\n", indep_or.status().ToString().c_str());
    return 1;
  }

  std::printf("\nadaptive weights: textual = [semantic %.3f, string %.3f], "
              "final = [structural %.3f, textual %.3f]\n",
              result.textual_weights[0], result.textual_weights[1],
              result.final_weights[0], result.final_weights[1]);
  std::printf("CEAFF   (collective)  accuracy: %.3f\n", result.accuracy);
  std::printf("CEAFF w/o C (indep.)  accuracy: %.3f\n",
              indep_or.value().accuracy);
  std::printf("feature time %.2fs, decision time %.3fs\n",
              result.seconds_features, result.seconds_decision);
  return 0;
}
