// Pretrained-embedding workflow: write a small word2vec/GloVe-style text
// vector file (a stand-in for real fastText/MUSE downloads), load it into
// the store, and watch the semantic feature change behaviour — exactly the
// path a user with real multilingual vectors follows.
//
// Build & run:  cmake --build build && ./build/examples/pretrained_embeddings

#include <cstdio>
#include <fstream>

#include "ceaff/text/embedding_io.h"
#include "ceaff/text/name_embedding.h"

using namespace ceaff;

int main() {
  // 1. A tiny "pretrained multilingual" vector file: the EN and FR surface
  //    forms of the same concepts point in the same direction (as MUSE
  //    alignment produces), unrelated words are orthogonal.
  const char* path = "/tmp/ceaff_tiny_vectors.txt";
  {
    std::ofstream out(path);
    out << "8 4\n"
           "red 1 0 0 0\n"
           "rouge 0.95 0.05 0 0\n"
           "blue 0 1 0 0\n"
           "bleu 0.05 0.95 0 0\n"
           "river 0 0 1 0\n"
           "fleuve 0 0.05 0.95 0\n"
           "mountain 0 0 0 1\n"
           "montagne 0 0.05 0 0.95\n";
  }

  // 2. Load into a store. Dimensionality must match the file.
  text::WordEmbeddingStore store(4, /*seed=*/1);
  store.set_hash_fallback(false);  // only trust the pretrained vocabulary
  Status st = text::LoadTextEmbeddings(path, &store);
  if (!st.ok()) {
    std::fprintf(stderr, "load: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu vectors from %s\n\n",
              store.explicit_tokens().size(), path);

  // 3. Semantic similarity across languages now works purely from the
  //    file: "blue river" is closest to "fleuve bleu".
  std::vector<std::string> english = {"red mountain", "blue river"};
  std::vector<std::string> french = {"fleuve bleu", "montagne rouge"};
  la::Matrix sim = text::SemanticSimilarityMatrix(store, english, french);
  std::printf("semantic similarity (rows: EN, cols: FR):\n");
  std::printf("%-16s %-14s %-16s\n", "", french[0].c_str(),
              french[1].c_str());
  for (size_t i = 0; i < english.size(); ++i) {
    std::printf("%-16s %-14.3f %-16.3f\n", english[i].c_str(), sim.at(i, 0),
                sim.at(i, 1));
  }
  std::printf("\n\"red mountain\" <-> \"montagne rouge\" and "
              "\"blue river\" <-> \"fleuve bleu\"\nscore highest despite "
              "sharing no characters — the semantic feature at work.\n");

  // 4. An out-of-vocabulary word contributes nothing (and a name made
  //    only of OOV words gets similarity 0) — the limitation the string
  //    feature covers for closely-related languages.
  std::vector<float> unused;
  std::printf("\nlookup 'ocean' (not in the file): %s\n",
              store.Lookup("ocean", &unused) ? "found" : "OOV — skipped");

  // 5. Round-trip: the store can be exported again (e.g. after pruning to
  //    the KG vocabulary) in the same format.
  st = text::SaveTextEmbeddings(store, "/tmp/ceaff_tiny_vectors_out.txt");
  if (!st.ok()) {
    std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("re-exported the store to /tmp/ceaff_tiny_vectors_out.txt\n");
  return 0;
}
