// File-based workflow: export a KG pair to the OpenEA-style TSV layout,
// load it back (as a user with their own dumps would), align, and write
// the predicted correspondences to disk. This is the path a downstream
// user takes with real DBpedia/Wikidata extracts.
//
// Build & run:  cmake --build build && ./build/examples/file_based_alignment [dir]

#include <cstdio>
#include <filesystem>

#include "ceaff/core/pipeline.h"
#include "ceaff/data/synthetic.h"
#include "ceaff/kg/io.h"

using namespace ceaff;

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/ceaff_example_dataset";

  // 1. Produce a dataset on disk (stand-in for your own TSV extracts:
  //    entities{1,2}.tsv, triples{1,2}.tsv, seed_links.tsv, test_links.tsv).
  auto cfg = data::BenchmarkConfigByName("SRPRS_EN_DE", 0.2);
  if (!cfg.ok()) {
    std::fprintf(stderr, "%s\n", cfg.status().ToString().c_str());
    return 1;
  }
  auto bench_or = data::GenerateBenchmark(cfg.value());
  if (!bench_or.ok()) {
    std::fprintf(stderr, "%s\n", bench_or.status().ToString().c_str());
    return 1;
  }
  data::SyntheticBenchmark bench = std::move(bench_or).value();
  Status st = kg::SaveKgPair(bench.pair, dir);
  if (!st.ok()) {
    std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote dataset to %s:\n", dir.c_str());
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::printf("  %s (%ju bytes)\n", entry.path().filename().c_str(),
                static_cast<uintmax_t>(entry.file_size()));
  }

  // 2. Load it back — this is where a real user's pipeline starts.
  kg::KgPair pair;
  st = kg::LoadKgPair(dir, &pair);
  if (!st.ok()) {
    std::fprintf(stderr, "load: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nloaded: KG1 %zu entities / %zu triples, KG2 %zu / %zu, "
              "%zu seeds, %zu test pairs\n",
              pair.kg1.num_entities(), pair.kg1.num_triples(),
              pair.kg2.num_entities(), pair.kg2.num_triples(),
              pair.seed_alignment.size(), pair.test_alignment.size());

  // 3. Align. (The word-embedding store would come from fastText/MUSE
  //    vectors in a real deployment; here we reuse the generated one.)
  core::CeaffOptions options;
  options.gcn.dim = 96;
  options.gcn.epochs = 150;
  core::CeaffPipeline pipe(&pair, &bench.store, options);
  auto result_or = pipe.Run();
  if (!result_or.ok()) {
    std::fprintf(stderr, "run: %s\n", result_or.status().ToString().c_str());
    return 1;
  }
  core::CeaffResult result = std::move(result_or).value();
  std::printf("\nalignment accuracy: %.3f (features %.2fs, matching %.3fs)\n",
              result.accuracy, result.seconds_features,
              result.seconds_decision);

  // 4. Write predictions as URI pairs.
  std::vector<kg::AlignmentPair> predicted;
  for (size_t i = 0; i < result.match.target_of_source.size(); ++i) {
    int64_t t = result.match.target_of_source[i];
    if (t < 0) continue;
    predicted.push_back(
        {pair.test_alignment[i].source,
         pair.test_alignment[static_cast<size_t>(t)].target});
  }
  st = kg::SaveAlignmentTsv(predicted, pair.kg1, pair.kg2,
                            dir + "/predicted_links.tsv");
  if (!st.ok()) {
    std::fprintf(stderr, "save predictions: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu predicted correspondences to "
              "%s/predicted_links.tsv\n", predicted.size(), dir.c_str());
  return 0;
}
