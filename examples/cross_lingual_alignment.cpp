// Cross-lingual alignment walkthrough: the DBP15K(ZH-EN)-like scenario the
// paper's introduction motivates. Shows per-feature quality, the adaptive
// weights the fusion assigns, and how the collective decision stage
// resolves conflicts that independent decisions get wrong.
//
// Build & run:  cmake --build build && ./build/examples/cross_lingual_alignment

#include <cstdio>
#include <numeric>

#include "ceaff/core/pipeline.h"
#include "ceaff/data/synthetic.h"
#include "ceaff/eval/metrics.h"
#include "ceaff/matching/matching.h"

using namespace ceaff;

namespace {

double IndependentAccuracy(const la::Matrix& feature) {
  std::vector<int64_t> gold(feature.rows());
  std::iota(gold.begin(), gold.end(), int64_t{0});
  return eval::Accuracy(matching::GreedyIndependent(feature), gold);
}

}  // namespace

int main() {
  // A distant language pair: the string feature is useless (different
  // scripts), the semantic feature is noisy (imperfect cross-lingual word
  // embeddings), so structure and collective decisions must carry weight.
  auto cfg = data::BenchmarkConfigByName("DBP15K_ZH_EN", /*scale=*/0.25);
  if (!cfg.ok()) {
    std::fprintf(stderr, "%s\n", cfg.status().ToString().c_str());
    return 1;
  }
  auto bench_or = data::GenerateBenchmark(cfg.value());
  if (!bench_or.ok()) {
    std::fprintf(stderr, "%s\n", bench_or.status().ToString().c_str());
    return 1;
  }
  data::SyntheticBenchmark bench = std::move(bench_or).value();

  std::printf("Cross-lingual EA on %s (%zu test pairs)\n",
              bench.pair.name.c_str(), bench.pair.test_alignment.size());
  std::printf("example entity names: \"%s\"  <->  \"%s\"\n\n",
              bench.pair.kg2.entity_name(bench.pair.test_alignment[0].target)
                  .c_str(),
              bench.pair.kg1.entity_name(bench.pair.test_alignment[0].source)
                  .c_str());

  core::CeaffOptions options;
  options.gcn.dim = 128;
  options.gcn.epochs = 200;
  options.gcn.learning_rate = 1.0f;

  core::CeaffPipeline pipe(&bench.pair, &bench.store, options);
  auto features_or = pipe.GenerateFeatures();
  if (!features_or.ok()) {
    std::fprintf(stderr, "%s\n", features_or.status().ToString().c_str());
    return 1;
  }
  core::CeaffFeatures features = std::move(features_or).value();

  std::printf("per-feature accuracy (independent top-1):\n");
  std::printf("  structural (GCN)     : %.3f\n",
              IndependentAccuracy(features.structural));
  std::printf("  semantic (name emb.) : %.3f\n",
              IndependentAccuracy(features.semantic));
  std::printf("  string (Levenshtein) : %.3f   <- different scripts\n\n",
              IndependentAccuracy(features.string_sim));

  core::CeaffResult collective = pipe.RunOnFeatures(features).value();

  core::CeaffOptions indep_options = options;
  indep_options.decision_mode = core::DecisionMode::kIndependent;
  core::CeaffPipeline indep_pipe(&bench.pair, &bench.store, indep_options);
  core::CeaffResult independent =
      indep_pipe.RunOnFeatures(features).value();

  std::printf("adaptive fusion weights:\n");
  std::printf("  textual stage: semantic %.3f, string %.3f\n",
              collective.textual_weights[0], collective.textual_weights[1]);
  std::printf("  final stage:   structural %.3f, textual %.3f\n\n",
              collective.final_weights[0], collective.final_weights[1]);

  std::printf("fused accuracy, independent decisions : %.3f\n",
              independent.accuracy);
  std::printf("fused accuracy, collective (CEAFF)    : %.3f\n",
              collective.accuracy);

  // Count the conflicts independent decisions created.
  std::vector<size_t> hits(independent.fused.cols(), 0);
  for (int64_t t : independent.match.target_of_source) {
    if (t >= 0) hits[static_cast<size_t>(t)]++;
  }
  size_t contested = 0;
  for (size_t h : hits) contested += (h > 1);
  std::printf("\ntarget entities claimed by multiple sources under "
              "independent decisions: %zu\n", contested);
  std::printf("(the stable matching assigns every target at most once)\n");
  return 0;
}
