// Bring-your-own-features: the adaptive fusion and collective matching
// stages are independent of how similarity matrices were produced. This
// example fuses two hand-built "custom" features (a neighbour-overlap
// score and a token-Jaccard score) with the built-in string feature,
// showing the library as a toolkit rather than a monolith — and why
// adaptive weighting matters once features multiply (Sec. I).
//
// Build & run:  cmake --build build && ./build/examples/custom_features

#include <cstdio>
#include <numeric>
#include <set>

#include "ceaff/core/pipeline.h"
#include "ceaff/data/synthetic.h"
#include "ceaff/eval/metrics.h"
#include "ceaff/fusion/adaptive_fusion.h"
#include "ceaff/matching/matching.h"
#include "ceaff/text/levenshtein.h"
#include "ceaff/text/tokenizer.h"

using namespace ceaff;

namespace {

// Custom feature 1: Jaccard overlap of neighbour *name token* sets — a
// cheap symbolic proxy for structural similarity.
la::Matrix NeighbourTokenJaccard(const kg::KgPair& pair,
                                 const std::vector<uint32_t>& test_src,
                                 const std::vector<uint32_t>& test_tgt) {
  auto neighbour_tokens = [](const kg::KnowledgeGraph& g) {
    std::vector<std::set<std::string>> tokens(g.num_entities());
    for (const kg::Triple& t : g.triples()) {
      for (const std::string& tok : text::TokenizeName(g.entity_name(t.tail)))
        tokens[t.head].insert(tok);
      for (const std::string& tok : text::TokenizeName(g.entity_name(t.head)))
        tokens[t.tail].insert(tok);
    }
    return tokens;
  };
  std::vector<std::set<std::string>> n1 = neighbour_tokens(pair.kg1);
  std::vector<std::set<std::string>> n2 = neighbour_tokens(pair.kg2);
  la::Matrix m(test_src.size(), test_tgt.size());
  for (size_t i = 0; i < test_src.size(); ++i) {
    const std::set<std::string>& a = n1[test_src[i]];
    for (size_t j = 0; j < test_tgt.size(); ++j) {
      const std::set<std::string>& b = n2[test_tgt[j]];
      size_t inter = 0;
      for (const std::string& t : a) inter += b.count(t);
      size_t uni = a.size() + b.size() - inter;
      m.at(i, j) = uni == 0 ? 0.0f
                            : static_cast<float>(inter) /
                                  static_cast<float>(uni);
    }
  }
  return m;
}

// Custom feature 2: Jaccard overlap of the entities' own name tokens.
la::Matrix NameTokenJaccard(const kg::KgPair& pair,
                            const std::vector<uint32_t>& test_src,
                            const std::vector<uint32_t>& test_tgt) {
  auto own_tokens = [](const kg::KnowledgeGraph& g, uint32_t id) {
    std::vector<std::string> v = text::TokenizeName(g.entity_name(id));
    return std::set<std::string>(v.begin(), v.end());
  };
  la::Matrix m(test_src.size(), test_tgt.size());
  for (size_t i = 0; i < test_src.size(); ++i) {
    std::set<std::string> a = own_tokens(pair.kg1, test_src[i]);
    for (size_t j = 0; j < test_tgt.size(); ++j) {
      std::set<std::string> b = own_tokens(pair.kg2, test_tgt[j]);
      size_t inter = 0;
      for (const std::string& t : a) inter += b.count(t);
      size_t uni = a.size() + b.size() - inter;
      m.at(i, j) = uni == 0 ? 0.0f
                            : static_cast<float>(inter) /
                                  static_cast<float>(uni);
    }
  }
  return m;
}

double Accuracy(const la::Matrix& fused, bool collective) {
  std::vector<int64_t> gold(fused.rows());
  std::iota(gold.begin(), gold.end(), int64_t{0});
  matching::MatchResult match = collective
                                    ? matching::DeferredAcceptance(fused)
                                    : matching::GreedyIndependent(fused);
  return eval::Accuracy(match, gold);
}

}  // namespace

int main() {
  auto cfg = data::BenchmarkConfigByName("SRPRS_EN_FR", 0.25);
  if (!cfg.ok()) {
    std::fprintf(stderr, "%s\n", cfg.status().ToString().c_str());
    return 1;
  }
  auto bench_or = data::GenerateBenchmark(cfg.value());
  if (!bench_or.ok()) {
    std::fprintf(stderr, "%s\n", bench_or.status().ToString().c_str());
    return 1;
  }
  data::SyntheticBenchmark bench = std::move(bench_or).value();

  std::vector<uint32_t> test_src, test_tgt;
  core::TestIds(bench.pair, &test_src, &test_tgt);

  // Three features: two custom ones plus the library's string feature.
  la::Matrix neighbour = NeighbourTokenJaccard(bench.pair, test_src, test_tgt);
  la::Matrix name_jac = NameTokenJaccard(bench.pair, test_src, test_tgt);
  la::Matrix lev = text::StringSimilarityMatrix(
      core::GatherNames(bench.pair.kg1, test_src),
      core::GatherNames(bench.pair.kg2, test_tgt));

  std::printf("custom-feature alignment on %s (%zu test pairs)\n\n",
              bench.pair.name.c_str(), test_src.size());
  std::printf("single-feature accuracy (independent):\n");
  std::printf("  neighbour token Jaccard : %.3f\n", Accuracy(neighbour, false));
  std::printf("  name token Jaccard      : %.3f\n", Accuracy(name_jac, false));
  std::printf("  Levenshtein ratio       : %.3f\n\n", Accuracy(lev, false));

  // Adaptive fusion assigns weights with no tuning or training data.
  fusion::FeatureWeightReport report;
  auto fused =
      fusion::AdaptiveFuse({&neighbour, &name_jac, &lev}, {}, &report);
  if (!fused.ok()) {
    std::fprintf(stderr, "%s\n", fused.status().ToString().c_str());
    return 1;
  }
  std::printf("adaptive weights: neighbour %.3f, name-jaccard %.3f, "
              "levenshtein %.3f\n",
              report.weights[0], report.weights[1], report.weights[2]);

  auto fixed = fusion::FixedFuse({&neighbour, &name_jac, &lev});
  std::printf("\nfused accuracy:\n");
  std::printf("  fixed equal weights, independent : %.3f\n",
              Accuracy(fixed.value(), false));
  std::printf("  adaptive weights, independent    : %.3f\n",
              Accuracy(fused.value(), false));
  std::printf("  adaptive weights, collective     : %.3f\n",
              Accuracy(fused.value(), true));
  return 0;
}
