#ifndef CEAFF_EMBED_RANDOM_WALK_H_
#define CEAFF_EMBED_RANDOM_WALK_H_

#include <cstdint>
#include <vector>

#include "ceaff/common/random.h"
#include "ceaff/common/statusor.h"
#include "ceaff/kg/knowledge_graph.h"
#include "ceaff/la/matrix.h"

namespace ceaff::embed {

/// Hyper-parameters of the DeepWalk-style embedding (random walks +
/// skip-gram with negative sampling). This is the path-based structural
/// substrate standing in for RSNs' long-term relational dependencies: a
/// walk of length L exposes up-to-L-hop context, versus the GCN's 2 hops.
struct RandomWalkOptions {
  size_t dim = 64;
  size_t walks_per_node = 8;
  size_t walk_length = 16;
  /// Skip-gram window radius.
  size_t window = 4;
  /// Negative samples per (center, context) pair.
  size_t negatives = 4;
  size_t epochs = 2;
  float learning_rate = 0.025f;
  uint64_t seed = 97;
};

/// Trains node embeddings on an undirected view of the graph edges.
/// `num_nodes` bounds node ids appearing in `edges`.
class RandomWalkEmbedder {
 public:
  RandomWalkEmbedder(size_t num_nodes, const RandomWalkOptions& options);

  /// Trains on the edge list. Isolated nodes keep their random init.
  /// InvalidArgument if an edge references an out-of-range node.
  Status Train(const std::vector<std::pair<uint32_t, uint32_t>>& edges);

  const la::Matrix& embeddings() const { return embeddings_; }

 private:
  RandomWalkOptions options_;
  la::Matrix embeddings_;      // "input" vectors (used as the result)
  la::Matrix context_;         // "output" vectors
};

/// Cross-KG edge list: KG1 edges, KG2 edges with ids offset by |E1|, plus
/// one anchor edge per seed pair so walks cross between the graphs and the
/// two KGs share one embedding space.
std::vector<std::pair<uint32_t, uint32_t>> MergedEdgeList(
    const kg::KgPair& pair, const std::vector<kg::AlignmentPair>& anchors);

}  // namespace ceaff::embed

#endif  // CEAFF_EMBED_RANDOM_WALK_H_
