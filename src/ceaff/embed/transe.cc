#include "ceaff/embed/transe.h"

#include <cmath>

#include "ceaff/common/logging.h"

namespace ceaff::embed {

TranseModel::TranseModel(size_t num_entities, size_t num_relations,
                         const TranseOptions& options)
    : options_(options) {
  Rng rng(options_.seed);
  float bound = static_cast<float>(6.0 / std::sqrt(
                    static_cast<double>(options_.dim)));
  entities_ = la::Matrix(num_entities, options_.dim);
  relations_ = la::Matrix(std::max<size_t>(num_relations, 1), options_.dim);
  for (size_t i = 0; i < entities_.size(); ++i) {
    entities_.data()[i] = static_cast<float>(rng.NextUniform(-bound, bound));
  }
  for (size_t i = 0; i < relations_.size(); ++i) {
    relations_.data()[i] = static_cast<float>(rng.NextUniform(-bound, bound));
  }
  relations_.L2NormalizeRows();
  entities_.L2NormalizeRows();
}

double TranseModel::TrainEpoch(const std::vector<kg::Triple>& triples,
                               Rng* rng) {
  const size_t d = options_.dim;
  const size_t n = entities_.rows();
  double loss = 0.0;
  size_t count = 0;
  const size_t batch =
      options_.batch_size == 0 ? triples.size() : options_.batch_size;
  (void)batch;  // SGD per triple; batching kept for API symmetry.
  for (const kg::Triple& t : triples) {
    // Corrupt head or tail uniformly.
    kg::Triple neg = t;
    if (rng->NextBounded(2) == 0) {
      neg.head = static_cast<uint32_t>(rng->NextBounded(n));
    } else {
      neg.tail = static_cast<uint32_t>(rng->NextBounded(n));
    }
    float* h = entities_.row(t.head);
    float* tl = entities_.row(t.tail);
    float* r = relations_.row(t.relation);
    float* hn = entities_.row(neg.head);
    float* tn = entities_.row(neg.tail);
    double dp = 0.0, dn = 0.0;
    for (size_t c = 0; c < d; ++c) {
      double a = h[c] + r[c] - tl[c];
      double b = hn[c] + r[c] - tn[c];
      dp += a * a;
      dn += b * b;
    }
    double hinge = dp - dn + options_.margin;
    if (hinge <= 0.0) continue;
    loss += hinge;
    ++count;
    const float lr = options_.learning_rate;
    for (size_t c = 0; c < d; ++c) {
      float gp = 2.0f * (h[c] + r[c] - tl[c]);
      float gn = 2.0f * (hn[c] + r[c] - tn[c]);
      h[c] -= lr * gp;
      tl[c] += lr * gp;
      r[c] -= lr * (gp - gn);
      hn[c] += lr * gn;
      tn[c] -= lr * gn;
    }
  }
  entities_.L2NormalizeRows();
  return count ? loss / static_cast<double>(count) : 0.0;
}

StatusOr<double> TranseModel::Train(const std::vector<kg::Triple>& triples) {
  for (const kg::Triple& t : triples) {
    if (t.head >= entities_.rows() || t.tail >= entities_.rows() ||
        t.relation >= relations_.rows()) {
      return Status::InvalidArgument("triple id outside model");
    }
  }
  Rng rng(Rng::SplitMix64(options_.seed ^ 0x7ea05eull));
  double loss = 0.0;
  for (size_t e = 0; e < options_.epochs; ++e) {
    loss = TrainEpoch(triples, &rng);
  }
  return loss;
}

la::Matrix LearnLinearTransform(const la::Matrix& src, const la::Matrix& dst,
                                const std::vector<kg::AlignmentPair>& seeds,
                                float ridge) {
  CEAFF_CHECK(src.cols() == dst.cols());
  const size_t d = src.cols();
  // Normal equations: (U^T U + λI) M^T = U^T V with U = seed rows of src,
  // V = seed rows of dst. Solve d systems by Cholesky.
  la::Matrix utu(d, d), utv(d, d);
  for (const kg::AlignmentPair& p : seeds) {
    const float* u = src.row(p.source);
    const float* v = dst.row(p.target);
    for (size_t i = 0; i < d; ++i) {
      float ui = u[i];
      if (ui == 0.0f) continue;
      float* utu_row = utu.row(i);
      float* utv_row = utv.row(i);
      for (size_t j = 0; j < d; ++j) {
        utu_row[j] += ui * u[j];
        utv_row[j] += ui * v[j];
      }
    }
  }
  for (size_t i = 0; i < d; ++i) utu.at(i, i) += ridge;

  // Cholesky factorisation utu = L L^T (in place, lower triangle).
  la::Matrix l = utu;
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = l.at(i, j);
      for (size_t k = 0; k < j; ++k) {
        sum -= static_cast<double>(l.at(i, k)) * l.at(j, k);
      }
      if (i == j) {
        l.at(i, i) = static_cast<float>(std::sqrt(std::max(sum, 1e-12)));
      } else {
        l.at(i, j) = static_cast<float>(sum / l.at(j, j));
      }
    }
  }
  // Solve L y = utv_col, L^T x = y for every column of utv; columns of the
  // solution are columns of M^T, i.e. rows of M.
  la::Matrix mt(d, d);
  std::vector<double> y(d), x(d);
  for (size_t col = 0; col < d; ++col) {
    for (size_t i = 0; i < d; ++i) {
      double sum = utv.at(i, col);
      for (size_t k = 0; k < i; ++k) sum -= static_cast<double>(l.at(i, k)) * y[k];
      y[i] = sum / l.at(i, i);
    }
    for (size_t ii = d; ii-- > 0;) {
      double sum = y[ii];
      for (size_t k = ii + 1; k < d; ++k) {
        sum -= static_cast<double>(l.at(k, ii)) * x[k];
      }
      x[ii] = sum / l.at(ii, ii);
      mt.at(ii, col) = static_cast<float>(x[ii]);
    }
  }
  return mt.Transposed();  // M such that transformed = src · M^T
}

la::Matrix ApplyLinearTransform(const la::Matrix& src, const la::Matrix& m) {
  return la::MatMulBT(src, m);
}

}  // namespace ceaff::embed
