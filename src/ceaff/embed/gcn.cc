#include "ceaff/embed/gcn.h"

#include <algorithm>
#include <cmath>

#include "ceaff/common/logging.h"

namespace ceaff::embed {

namespace {

/// Kernel context for the forward/backward passes: the caller's when
/// provided, otherwise a shared default (sequential, default blocks).
const la::KernelContext& Ctx(const GcnOptions& options) {
  static const la::KernelContext kDefault;
  return options.kernel != nullptr ? *options.kernel : kDefault;
}

}  // namespace

GcnAligner::GcnAligner(la::SparseMatrix a1, la::SparseMatrix a2,
                       const GcnOptions& options)
    : options_(options), a1_(std::move(a1)), a2_(std::move(a2)) {
  CEAFF_CHECK(a1_.rows() == a1_.cols()) << "A1 must be square";
  CEAFF_CHECK(a2_.rows() == a2_.cols()) << "A2 must be square";
  Rng rng(options_.seed);
  // "The initial feature matrix X is sampled from truncated normal
  // distribution with L2-normalization on rows" (Sec. IV-A).
  x1_ = la::Matrix::TruncatedNormal(a1_.rows(), options_.dim, 1.0f, &rng);
  x1_.L2NormalizeRows();
  x2_ = la::Matrix::TruncatedNormal(a2_.rows(), options_.dim, 1.0f, &rng);
  x2_.L2NormalizeRows();
  w1_ = la::Matrix::GlorotUniform(options_.dim, options_.dim, &rng);
  w2_ = la::Matrix::GlorotUniform(options_.dim, options_.dim, &rng);
  Forward();
}

void GcnAligner::ForwardKg(const la::SparseMatrix& a, const la::Matrix& x,
                           ForwardCache* cache, la::Matrix* z) const {
  const la::KernelContext& ctx = Ctx(options_);
  cache->ax = la::SpMMK(ctx, a, x);
  if (options_.use_weight_transform) {
    cache->pre = la::MatMulK(ctx, cache->ax, w1_);
  } else {
    cache->pre = cache->ax;
  }
  cache->h1 = cache->pre;
  if (options_.use_relu && options_.use_weight_transform) {
    cache->h1.ReluInPlace();
  }
  cache->ah1 = la::SpMMK(ctx, a, cache->h1);
  if (options_.use_weight_transform) {
    *z = la::MatMulK(ctx, cache->ah1, w2_);
  } else {
    *z = cache->ah1;
  }
}

void GcnAligner::Forward() {
  ForwardCache c1, c2;
  ForwardKg(a1_, x1_, &c1, &z1_);
  ForwardKg(a2_, x2_, &c2, &z2_);
}

void GcnAligner::BackwardKg(const la::SparseMatrix& a,
                            const la::Matrix& /*x*/,
                            const ForwardCache& cache, const la::Matrix& dz,
                            la::Matrix* dw1, la::Matrix* dw2,
                            la::Matrix* dx) const {
  const la::KernelContext& ctx = Ctx(options_);
  if (!options_.use_weight_transform) {
    // Z = A·(A·X): pure propagation; dX = A^T A^T dZ.
    if (dx != nullptr) {
      *dx = la::SpMMTransposedK(ctx, a, la::SpMMTransposedK(ctx, a, dz));
    }
    return;
  }
  // Z = (A·H1)·W2
  dw2->Add(la::MatMulATK(ctx, cache.ah1, dz));
  // dL/dH1 = A^T · (dZ · W2^T).
  la::Matrix dh1 = la::SpMMTransposedK(ctx, a, la::MatMulBTK(ctx, dz, w2_));
  // ReLU mask.
  if (options_.use_relu) {
    for (size_t i = 0; i < dh1.size(); ++i) {
      if (cache.pre.data()[i] <= 0.0f) dh1.data()[i] = 0.0f;
    }
  }
  // P = (A·X)·W1
  dw1->Add(la::MatMulATK(ctx, cache.ax, dh1));
  if (dx != nullptr) {
    *dx = la::SpMMTransposedK(ctx, a, la::MatMulBTK(ctx, dh1, w1_));
  }
}

StatusOr<double> GcnAligner::Train(
    const std::vector<kg::AlignmentPair>& seed_pairs) {
  for (const kg::AlignmentPair& p : seed_pairs) {
    if (p.source >= a1_.rows() || p.target >= a2_.rows()) {
      return Status::InvalidArgument("seed pair id outside KG");
    }
  }
  if (seed_pairs.empty()) {
    Forward();
    return 0.0;
  }
  if (options_.tie_seed_features) {
    for (const kg::AlignmentPair& p : seed_pairs) {
      const float* src = x1_.row(p.source);
      float* dst = x2_.row(p.target);
      for (size_t c = 0; c < x1_.cols(); ++c) dst[c] = src[c];
    }
  }
  Rng rng(Rng::SplitMix64(options_.seed ^ 0x5eedull));
  std::vector<NegativePair> negatives;
  double mean_loss = 0.0;
  const float lr = options_.learning_rate /
                   static_cast<float>(seed_pairs.size());
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    CEAFF_RETURN_IF_ERROR(CheckCancel(options_.cancel, "gcn training"));
    ForwardCache c1, c2;
    ForwardKg(a1_, x1_, &c1, &z1_);
    ForwardKg(a2_, x2_, &c2, &z2_);
    if (epoch % std::max<size_t>(1, options_.negative_resample_every) == 0) {
      if (options_.hard_negative_topk > 0) {
        negatives = SampleHardNegatives(seed_pairs, z1_, z2_,
                                        options_.negatives_per_positive,
                                        options_.hard_negative_topk, &rng);
      } else {
        negatives = SampleNegatives(seed_pairs, a1_.rows(), a2_.rows(),
                                    options_.negatives_per_positive, &rng);
      }
    }

    la::Matrix dz1(z1_.rows(), z1_.cols());
    la::Matrix dz2(z2_.rows(), z2_.cols());
    double loss = MarginRankingLossGrad(z1_, z2_, seed_pairs, negatives,
                                        options_.margin, &dz1, &dz2);
    mean_loss = loss / static_cast<double>(seed_pairs.size());

    la::Matrix dw1(w1_.rows(), w1_.cols());
    la::Matrix dw2(w2_.rows(), w2_.cols());
    la::Matrix dx1, dx2;
    BackwardKg(a1_, x1_, c1, dz1, &dw1, &dw2,
               options_.train_inputs ? &dx1 : nullptr);
    BackwardKg(a2_, x2_, c2, dz2, &dw1, &dw2,
               options_.train_inputs ? &dx2 : nullptr);

    w1_.Axpy(-lr, dw1);
    w2_.Axpy(-lr, dw2);
    if (options_.train_inputs) {
      x1_.Axpy(-lr, dx1);
      x2_.Axpy(-lr, dx2);
      if (options_.renormalize_inputs) {
        x1_.L2NormalizeRows();
        x2_.L2NormalizeRows();
      }
    }
    // Rescale weights that outgrow the cap; the margin objective otherwise
    // inflates the embedding scale without bound.
    const float cap = options_.weight_norm_cap_factor *
                      std::sqrt(static_cast<float>(options_.dim));
    for (la::Matrix* w : {&w1_, &w2_}) {
      float norm = w->FrobeniusNorm();
      if (norm > cap) w->Scale(cap / norm);
    }
  }
  Forward();
  return mean_loss;
}

size_t GcnAligner::NumParameters() const {
  size_t n = 2 * options_.dim * options_.dim;
  if (options_.train_inputs) n += x1_.size() + x2_.size();
  return n;
}

std::vector<NegativePair> SampleNegatives(
    const std::vector<kg::AlignmentPair>& positives, size_t n1, size_t n2,
    size_t k, Rng* rng) {
  std::vector<NegativePair> out;
  out.reserve(positives.size() * k);
  for (size_t i = 0; i < positives.size(); ++i) {
    for (size_t j = 0; j < k; ++j) {
      NegativePair np;
      np.positive_index = static_cast<uint32_t>(i);
      np.source = positives[i].source;
      np.target = positives[i].target;
      // Corrupt one side, chosen uniformly.
      if (rng->NextBounded(2) == 0) {
        np.source = static_cast<uint32_t>(rng->NextBounded(n1));
      } else {
        np.target = static_cast<uint32_t>(rng->NextBounded(n2));
      }
      out.push_back(np);
    }
  }
  return out;
}

std::vector<NegativePair> SampleHardNegatives(
    const std::vector<kg::AlignmentPair>& positives, const la::Matrix& z1,
    const la::Matrix& z2, size_t k, size_t topk, Rng* rng) {
  // Nearest candidates are computed around the *positive* pair's entities:
  // corrupting the target draws from entities near v in KG2 (they are the
  // confusable ones), and symmetrically for the source.
  std::vector<NegativePair> out;
  out.reserve(positives.size() * k);
  // Normalised copies once; per-seed similarity rows afterwards.
  la::Matrix z1n = z1, z2n = z2;
  z1n.L2NormalizeRows();
  z2n.L2NormalizeRows();
  auto nearest = [&](const la::Matrix& zn, uint32_t anchor, size_t exclude,
                     std::vector<uint32_t>* cand) {
    const float* a = zn.row(anchor);
    std::vector<std::pair<float, uint32_t>> scored;
    scored.reserve(zn.rows());
    for (size_t r = 0; r < zn.rows(); ++r) {
      if (r == exclude) continue;
      const float* b = zn.row(r);
      float dot = 0.0f;
      for (size_t c = 0; c < zn.cols(); ++c) dot += a[c] * b[c];
      scored.push_back({dot, static_cast<uint32_t>(r)});
    }
    size_t take = std::min(topk, scored.size());
    std::partial_sort(scored.begin(),
                      scored.begin() + static_cast<long>(take), scored.end(),
                      [](const auto& x, const auto& y) {
                        return x.first > y.first;
                      });
    cand->clear();
    for (size_t i = 0; i < take; ++i) cand->push_back(scored[i].second);
  };
  std::vector<uint32_t> cand1, cand2;
  for (size_t i = 0; i < positives.size(); ++i) {
    // Confusable substitutes for the source (in KG1, near u) and for the
    // target (in KG2, near v).
    nearest(z1n, positives[i].source, positives[i].source, &cand1);
    nearest(z2n, positives[i].target, positives[i].target, &cand2);
    for (size_t j = 0; j < k; ++j) {
      NegativePair np;
      np.positive_index = static_cast<uint32_t>(i);
      np.source = positives[i].source;
      np.target = positives[i].target;
      if (rng->NextBounded(2) == 0 && !cand1.empty()) {
        np.source = cand1[rng->NextBounded(cand1.size())];
      } else if (!cand2.empty()) {
        np.target = cand2[rng->NextBounded(cand2.size())];
      }
      out.push_back(np);
    }
  }
  return out;
}

double MarginRankingLossGrad(const la::Matrix& z1, const la::Matrix& z2,
                             const std::vector<kg::AlignmentPair>& positives,
                             const std::vector<NegativePair>& negatives,
                             float margin, la::Matrix* dz1, la::Matrix* dz2) {
  CEAFF_CHECK(z1.cols() == z2.cols());
  dz1->SetZero();
  dz2->SetZero();
  const size_t d = z1.cols();

  // L1 distance of each positive pair, shared across its negatives.
  std::vector<double> pos_dist(positives.size());
  for (size_t i = 0; i < positives.size(); ++i) {
    const float* u = z1.row(positives[i].source);
    const float* v = z2.row(positives[i].target);
    double s = 0.0;
    for (size_t c = 0; c < d; ++c) s += std::fabs(u[c] - v[c]);
    pos_dist[i] = s;
  }

  double loss = 0.0;
  for (const NegativePair& np : negatives) {
    const kg::AlignmentPair& pos = positives[np.positive_index];
    const float* un = z1.row(np.source);
    const float* vn = z2.row(np.target);
    double neg_dist = 0.0;
    for (size_t c = 0; c < d; ++c) neg_dist += std::fabs(un[c] - vn[c]);

    double hinge = pos_dist[np.positive_index] - neg_dist + margin;
    if (hinge <= 0.0) continue;
    loss += hinge;

    // d|u - v| / du = sign(u - v); subgradient 0 at equality.
    const float* up = z1.row(pos.source);
    const float* vp = z2.row(pos.target);
    float* dup = dz1->row(pos.source);
    float* dvp = dz2->row(pos.target);
    float* dun = dz1->row(np.source);
    float* dvn = dz2->row(np.target);
    for (size_t c = 0; c < d; ++c) {
      float sp = up[c] > vp[c] ? 1.0f : (up[c] < vp[c] ? -1.0f : 0.0f);
      dup[c] += sp;
      dvp[c] -= sp;
      float sn = un[c] > vn[c] ? 1.0f : (un[c] < vn[c] ? -1.0f : 0.0f);
      dun[c] -= sn;
      dvn[c] += sn;
    }
  }
  return loss;
}

}  // namespace ceaff::embed
