#ifndef CEAFF_EMBED_TRANSE_H_
#define CEAFF_EMBED_TRANSE_H_

#include <cstdint>
#include <vector>

#include "ceaff/common/random.h"
#include "ceaff/common/statusor.h"
#include "ceaff/kg/knowledge_graph.h"
#include "ceaff/la/matrix.h"

namespace ceaff::embed {

/// TransE hyper-parameters (substrate for the MTransE / IPTransE /
/// BootEA-lite baselines of Tables III/IV).
struct TranseOptions {
  size_t dim = 75;
  float margin = 1.0f;
  float learning_rate = 0.01f;
  size_t epochs = 200;
  /// Minibatch size in triples (0 = full batch).
  size_t batch_size = 512;
  uint64_t seed = 7;
};

/// Plain TransE (Bordes et al.) on one KG: h + r ≈ t with margin ranking
/// loss over corrupted triples, SGD, entities re-normalised to the unit
/// ball each epoch. Embeddings are exposed for the alignment baselines.
class TranseModel {
 public:
  TranseModel(size_t num_entities, size_t num_relations,
              const TranseOptions& options);

  /// Trains on `triples`; returns the final epoch's mean loss.
  StatusOr<double> Train(const std::vector<kg::Triple>& triples);

  const la::Matrix& entity_embeddings() const { return entities_; }
  const la::Matrix& relation_embeddings() const { return relations_; }
  la::Matrix* mutable_entity_embeddings() { return &entities_; }

  /// One SGD pass over the given triples (used by iterative baselines that
  /// interleave training with alignment augmentation).
  double TrainEpoch(const std::vector<kg::Triple>& triples, Rng* rng);

 private:
  TranseOptions options_;
  la::Matrix entities_;
  la::Matrix relations_;
};

/// Learns the linear transfer matrix M of MTransE's alignment model by
/// ridge-regularised least squares: min_M Σ ‖M·u − v‖² + λ‖M‖²,
/// solved in closed form (Cholesky on the d x d normal equations).
/// Rows of `src`/`dst` indexed by the seed pairs are the supervision.
la::Matrix LearnLinearTransform(const la::Matrix& src, const la::Matrix& dst,
                                const std::vector<kg::AlignmentPair>& seeds,
                                float ridge = 1e-3f);

/// Applies M to every row of `src` (out = src · M^T).
la::Matrix ApplyLinearTransform(const la::Matrix& src, const la::Matrix& m);

}  // namespace ceaff::embed

#endif  // CEAFF_EMBED_TRANSE_H_
