#ifndef CEAFF_EMBED_GCN_H_
#define CEAFF_EMBED_GCN_H_

#include <cstdint>
#include <vector>

#include "ceaff/common/cancellation.h"
#include "ceaff/common/random.h"
#include "ceaff/common/statusor.h"
#include "ceaff/kg/knowledge_graph.h"
#include "ceaff/la/kernels.h"
#include "ceaff/la/matrix.h"
#include "ceaff/la/sparse_matrix.h"

namespace ceaff::embed {

/// Hyper-parameters of the structural-embedding model (Sec. IV-A).
/// Paper defaults: ds = 300, γ = 3, 300 epochs, 5 negatives per positive.
/// The synthetic benchmarks in this reproduction are an order of magnitude
/// smaller than DBP15K, so the benches shrink ds/epochs (see bench code);
/// the defaults here match the paper.
struct GcnOptions {
  /// Dimensionality ds of the feature matrix in all GCN layers.
  size_t dim = 300;
  /// Margin γ of the ranking loss (Eq. 1).
  float margin = 3.0f;
  /// Full-batch training epochs.
  size_t epochs = 300;
  /// Negative pairs sampled per positive seed pair.
  size_t negatives_per_positive = 5;
  /// SGD learning rate (scaled internally by 1/|S|).
  float learning_rate = 0.25f;
  /// Cap on ‖W1‖F and ‖W2‖F; exceeding weights are rescaled after each
  /// update. Keeps the unbounded-margin objective from blowing up the
  /// embedding scale (cosine similarity is scale-free anyway).
  float weight_norm_cap_factor = 2.0f;
  /// Re-L2-normalise the rows of the trainable input features after every
  /// epoch, like TransE's entity renormalisation.
  bool renormalize_inputs = true;
  /// Also train the input feature matrices X (GCN-Align does); turning it
  /// off freezes the random features and trains only W1/W2.
  bool train_inputs = true;
  /// Apply the shared ds x ds weight transforms W1/W2. GCN-Align's
  /// released structural channel fixes them to the identity so layers act
  /// as pure (normalised) propagation and all capacity lives in X — that
  /// setting trains far more stably, so it is the default here; enable for
  /// the literal Sec. IV-A parameterisation.
  bool use_weight_transform = false;
  /// ReLU between the two layers (disabled automatically alongside
  /// use_weight_transform = false, matching the propagation-only reading).
  bool use_relu = true;
  /// Re-sample negatives every this many epochs (1 = every epoch).
  size_t negative_resample_every = 10;
  /// Draw negatives from the K nearest entities of the corrupted side
  /// (ε-truncated sampling, as in BootEA) instead of uniformly. 0 disables.
  /// Hard negatives sharpen the margin loss considerably on small KGs.
  size_t hard_negative_topk = 0;
  /// Initialise the input features of each seed pair to the *same* random
  /// vector (X2[v] := X1[u]) before training. Seeds are training data, so
  /// this leaks nothing; it seeds the propagation with exact anchor
  /// agreement, which Eq. 1 otherwise has to grind towards for hundreds of
  /// epochs.
  bool tie_seed_features = true;
  /// RNG seed controlling init and negative sampling.
  uint64_t seed = 42;
  /// Optional cooperative cancellation/deadline signal, polled once per
  /// epoch. Train() returns kCancelled/kDeadlineExceeded when it fires
  /// (embeddings reflect the last completed epoch). Not owned.
  const CancellationToken* cancel = nullptr;
  /// Optional kernel context (thread pool + block sizes) for the forward
  /// and backward passes. Null runs the blocked kernels sequentially with
  /// default blocks; the embeddings are identical either way (the kernels
  /// are thread-count deterministic). Not owned.
  const la::KernelContext* kernel = nullptr;
};

/// Two 2-layer GCNs with *shared* weight matrices W1, W2 (one GCN per KG,
/// Sec. IV-A), trained to minimise the margin-based ranking loss (Eq. 1)
/// over seed entity pairs with uniform corruption negatives.
///
/// Forward (per KG): Z = A · ReLU(A · X · W1) · W2, where A is the
/// functionality-weighted, self-looped, symmetrically normalised adjacency
/// and X is a truncated-normal, row-L2-normalised feature matrix.
/// Gradients are computed analytically — no autodiff dependency.
class GcnAligner {
 public:
  /// `a1`/`a2` are the propagation matrices of the two KGs (square,
  /// n1 x n1 and n2 x n2).
  GcnAligner(la::SparseMatrix a1, la::SparseMatrix a2,
             const GcnOptions& options);

  /// Runs full-batch training on `seed_pairs`. Returns the final epoch's
  /// mean loss. Invalid pair ids return InvalidArgument.
  StatusOr<double> Train(const std::vector<kg::AlignmentPair>& seed_pairs);

  /// Embeddings of KG1 / KG2 entities after (or before) training.
  const la::Matrix& embeddings1() const { return z1_; }
  const la::Matrix& embeddings2() const { return z2_; }

  /// Trained input feature matrices X1 / X2 — the frozen-model inputs the
  /// incremental delta path persists. In the default propagation-only
  /// configuration (use_weight_transform = false) the forward pass is a
  /// pure function of (A, X), so a caller holding X can recompute any
  /// embedding row after a local adjacency change without retraining.
  const la::Matrix& features1() const { return x1_; }
  const la::Matrix& features2() const { return x2_; }

  /// Whether this aligner applies the W1/W2 weight transforms (the delta
  /// path only supports the propagation-only default).
  bool uses_weight_transform() const { return options_.use_weight_transform; }

  /// Runs a forward pass with current parameters and refreshes
  /// embeddings1/2. Train() already leaves them fresh.
  void Forward();

  /// Number of trainable parameters (2 ds² for the shared weights, plus the
  /// feature matrices when train_inputs).
  size_t NumParameters() const;

 private:
  struct ForwardCache {
    la::Matrix ax;    // A · X
    la::Matrix pre;   // A · X · W1 (pre-activation)
    la::Matrix h1;    // ReLU(pre)
    la::Matrix ah1;   // A · H1
  };

  void ForwardKg(const la::SparseMatrix& a, const la::Matrix& x,
                 ForwardCache* cache, la::Matrix* z) const;
  /// Accumulates dL/dW1, dL/dW2 (and optionally dL/dX) for one KG given
  /// dL/dZ.
  void BackwardKg(const la::SparseMatrix& a, const la::Matrix& x,
                  const ForwardCache& cache, const la::Matrix& dz,
                  la::Matrix* dw1, la::Matrix* dw2, la::Matrix* dx) const;

  GcnOptions options_;
  la::SparseMatrix a1_, a2_;
  la::Matrix x1_, x2_;  // input features (trainable when train_inputs)
  la::Matrix w1_, w2_;  // shared layer weights
  la::Matrix z1_, z2_;  // output embeddings
};

/// A corrupted (negative) seed pair plus the positive it was derived from.
struct NegativePair {
  uint32_t positive_index;  // index into the seed list
  uint32_t source;          // corrupted source entity (KG1)
  uint32_t target;          // corrupted target entity (KG2)
};

/// Uniformly corrupts each positive pair `k` times, substituting either the
/// source or the target with a random entity of the same KG (Sec. IV-A).
std::vector<NegativePair> SampleNegatives(
    const std::vector<kg::AlignmentPair>& positives, size_t n1, size_t n2,
    size_t k, Rng* rng);

/// Hard-negative variant: corrupted entities are drawn from the `topk`
/// nearest rows (cosine) of the corresponding embedding matrix to the
/// corrupted entity, excluding the entity itself.
std::vector<NegativePair> SampleHardNegatives(
    const std::vector<kg::AlignmentPair>& positives, const la::Matrix& z1,
    const la::Matrix& z2, size_t k, size_t topk, Rng* rng);

/// Margin ranking loss (Eq. 1) and its gradient with respect to the two
/// embedding matrices. Returns the summed loss; `dz1`/`dz2` (same shapes as
/// z1/z2) receive the gradients (overwritten, not accumulated).
double MarginRankingLossGrad(const la::Matrix& z1, const la::Matrix& z2,
                             const std::vector<kg::AlignmentPair>& positives,
                             const std::vector<NegativePair>& negatives,
                             float margin, la::Matrix* dz1, la::Matrix* dz2);

}  // namespace ceaff::embed

#endif  // CEAFF_EMBED_GCN_H_
