#ifndef CEAFF_EMBED_BOOTSTRAP_H_
#define CEAFF_EMBED_BOOTSTRAP_H_

#include <vector>

#include "ceaff/kg/knowledge_graph.h"
#include "ceaff/la/matrix.h"

namespace ceaff::embed {

/// Options for confident-pair harvesting used by the iterative baselines
/// (IPTransE's soft alignment, BootEA's one-to-one bootstrapping).
struct BootstrapOptions {
  /// Minimum cosine similarity for a harvested pair.
  float min_similarity = 0.7f;
  /// Require the pair to be mutual nearest neighbours (row- and
  /// column-argmax of the similarity matrix), BootEA's one-to-one editing.
  bool mutual_nearest = true;
};

/// Harvests new likely-equivalent pairs from a similarity matrix, skipping
/// entities already covered by `known` on either side. Returned pairs are
/// disjoint from `known` and one-to-one.
std::vector<kg::AlignmentPair> HarvestConfidentPairs(
    const la::Matrix& similarity, const std::vector<kg::AlignmentPair>& known,
    const BootstrapOptions& options);

}  // namespace ceaff::embed

#endif  // CEAFF_EMBED_BOOTSTRAP_H_
