#include "ceaff/embed/bootstrap.h"

#include <vector>

#include "ceaff/la/ops.h"

namespace ceaff::embed {

std::vector<kg::AlignmentPair> HarvestConfidentPairs(
    const la::Matrix& similarity, const std::vector<kg::AlignmentPair>& known,
    const BootstrapOptions& options) {
  std::vector<char> used_src(similarity.rows(), 0);
  std::vector<char> used_dst(similarity.cols(), 0);
  for (const kg::AlignmentPair& p : known) {
    if (p.source < used_src.size()) used_src[p.source] = 1;
    if (p.target < used_dst.size()) used_dst[p.target] = 1;
  }
  std::vector<size_t> row_best = la::RowArgmax(similarity);
  std::vector<size_t> col_best = la::ColArgmax(similarity);
  std::vector<kg::AlignmentPair> out;
  for (size_t i = 0; i < similarity.rows(); ++i) {
    if (used_src[i]) continue;
    size_t j = row_best[i];
    if (used_dst[j]) continue;
    if (options.mutual_nearest && col_best[j] != i) continue;
    if (similarity.at(i, j) < options.min_similarity) continue;
    out.push_back({static_cast<uint32_t>(i), static_cast<uint32_t>(j)});
    used_src[i] = 1;
    used_dst[j] = 1;
  }
  return out;
}

}  // namespace ceaff::embed
