#include "ceaff/embed/random_walk.h"

#include <cmath>

namespace ceaff::embed {

RandomWalkEmbedder::RandomWalkEmbedder(size_t num_nodes,
                                       const RandomWalkOptions& options)
    : options_(options) {
  Rng rng(options_.seed);
  float bound = 0.5f / static_cast<float>(options_.dim);
  embeddings_ = la::Matrix(num_nodes, options_.dim);
  for (size_t i = 0; i < embeddings_.size(); ++i) {
    embeddings_.data()[i] =
        static_cast<float>(rng.NextUniform(-bound, bound));
  }
  context_ = la::Matrix(num_nodes, options_.dim);  // zero init, as word2vec
}

Status RandomWalkEmbedder::Train(
    const std::vector<std::pair<uint32_t, uint32_t>>& edges) {
  const size_t n = embeddings_.rows();
  for (const auto& [a, b] : edges) {
    if (a >= n || b >= n) {
      return Status::InvalidArgument("edge references unknown node");
    }
  }
  // Undirected adjacency lists.
  std::vector<std::vector<uint32_t>> adj(n);
  for (const auto& [a, b] : edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }

  Rng rng(Rng::SplitMix64(options_.seed ^ 0x3a1cull));
  const size_t d = options_.dim;
  const float lr = options_.learning_rate;
  std::vector<uint32_t> walk;
  walk.reserve(options_.walk_length);

  auto sigmoid = [](double x) {
    if (x > 8) return 1.0;
    if (x < -8) return 0.0;
    return 1.0 / (1.0 + std::exp(-x));
  };

  // One (center, context, label) SGNS update.
  auto update = [&](uint32_t center, uint32_t ctx, float label) {
    float* v = embeddings_.row(center);
    float* u = context_.row(ctx);
    double dot = 0.0;
    for (size_t c = 0; c < d; ++c) dot += v[c] * u[c];
    float g = lr * static_cast<float>(label - sigmoid(dot));
    for (size_t c = 0; c < d; ++c) {
      float vc = v[c];
      v[c] += g * u[c];
      u[c] += g * vc;
    }
  };

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    for (uint32_t start = 0; start < n; ++start) {
      if (adj[start].empty()) continue;
      for (size_t w = 0; w < options_.walks_per_node; ++w) {
        // Uniform random walk from `start`.
        walk.clear();
        uint32_t cur = start;
        walk.push_back(cur);
        for (size_t step = 1; step < options_.walk_length; ++step) {
          const std::vector<uint32_t>& nb = adj[cur];
          if (nb.empty()) break;
          cur = nb[rng.NextBounded(nb.size())];
          walk.push_back(cur);
        }
        // Skip-gram with negative sampling over the walk.
        for (size_t i = 0; i < walk.size(); ++i) {
          size_t lo = i > options_.window ? i - options_.window : 0;
          size_t hi = std::min(walk.size(), i + options_.window + 1);
          for (size_t j = lo; j < hi; ++j) {
            if (j == i) continue;
            update(walk[i], walk[j], 1.0f);
            for (size_t k = 0; k < options_.negatives; ++k) {
              update(walk[i], static_cast<uint32_t>(rng.NextBounded(n)),
                     0.0f);
            }
          }
        }
      }
    }
  }
  return Status::OK();
}

std::vector<std::pair<uint32_t, uint32_t>> MergedEdgeList(
    const kg::KgPair& pair, const std::vector<kg::AlignmentPair>& anchors) {
  const uint32_t offset = static_cast<uint32_t>(pair.kg1.num_entities());
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(pair.kg1.num_triples() + pair.kg2.num_triples() +
                anchors.size());
  for (const kg::Triple& t : pair.kg1.triples()) {
    edges.emplace_back(t.head, t.tail);
  }
  for (const kg::Triple& t : pair.kg2.triples()) {
    edges.emplace_back(t.head + offset, t.tail + offset);
  }
  for (const kg::AlignmentPair& p : anchors) {
    edges.emplace_back(p.source, p.target + offset);
  }
  return edges;
}

}  // namespace ceaff::embed
