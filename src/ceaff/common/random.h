#ifndef CEAFF_COMMON_RANDOM_H_
#define CEAFF_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ceaff {

/// Deterministic pseudo-random generator used everywhere in the library.
///
/// Wraps SplitMix64 (for seeding / hashing) feeding a xoshiro256** core.
/// All experiments are bit-reproducible given the same seed; no global
/// RNG state exists anywhere in the library.
///
/// NOT thread-safe: NextU64() and friends mutate the internal state without
/// synchronisation, so two threads sharing one instance race (and worse,
/// can duplicate outputs). Each thread must own its instance — either a
/// Fork() of a parent generator when reproducibility matters, or the
/// ThreadLocalRng() helper below for concurrent workloads (thread pools,
/// load generators) where distinct streams matter but cross-run
/// reproducibility does not.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, bound). `bound` must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform float in [0, 1).
  float NextFloat() { return static_cast<float>(NextDouble()); }

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box–Muller (cached second value).
  double NextGaussian();

  /// Normal truncated to [-2σ, 2σ] around `mean` (resampling), matching the
  /// TensorFlow `truncated_normal` used by GCN-Align for feature init.
  double NextTruncatedNormal(double mean, double stddev);

  /// Returns a derived generator whose stream is independent of this one.
  /// Used to give each module / worker its own reproducible stream.
  Rng Fork();

  /// Fisher–Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// SplitMix64 single step; usable as a deterministic 64-bit hash mixer.
  static uint64_t SplitMix64(uint64_t x);

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// Deterministic 64-bit hash of a byte string (FNV-1a folded through
/// SplitMix64). Used for seeding per-token embedding streams.
uint64_t HashBytes(const void* data, size_t len, uint64_t seed = 0);

/// This thread's lazily-created private generator. Every thread gets a
/// distinct stream (seeded from a process-wide atomic counter), so
/// concurrent callers never contend or correlate. ThreadPool workers touch
/// it at startup; benchmarks' load-generator threads draw from it freely.
///
/// Streams are stable within one thread but NOT reproducible across runs or
/// thread schedules — experiment code that needs bit-reproducibility must
/// keep passing explicitly seeded Rng instances instead.
Rng& ThreadLocalRng();

}  // namespace ceaff

#endif  // CEAFF_COMMON_RANDOM_H_
