#ifndef CEAFF_COMMON_FAILPOINT_H_
#define CEAFF_COMMON_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ceaff/common/status.h"

namespace ceaff::failpoint {

/// Deterministic fault-injection framework, compiled into every build
/// (there is no NDEBUG stub: the sites are a handful of string lookups on
/// paths that hit the disk anyway, and a failpoint that only exists in
/// test builds can never prove anything about the binary that ships).
///
/// A *site* is a named place in the code, evaluated with CEAFF_FAILPOINT
/// ("scope.step" by convention, e.g. "checkpoint.after_tmp_write"). Sites
/// are inert until armed; arming attaches one action:
///
///   error        evaluation returns kIOError (callers propagate it like a
///                real filesystem failure)
///   crash        the process dies on the spot via _exit(kCrashExitCode) —
///                no destructors, no atexit, no buffered-IO flush; the
///                closest repeatable stand-in for kill -9 / power loss
///   delay:<ms>   evaluation sleeps <ms> milliseconds, then succeeds
///                (simulates a stall: page-fault storm, slow disk, noisy
///                neighbour)
///   1in<n>       deterministic intermittence: every n-th evaluation of the
///                site returns kIOError, the rest succeed
///   off          explicit no-op (disarm one site inside a larger spec)
///
/// Arming happens either programmatically (Configure, used by tests and
/// the fork-based crash harness) or through the CEAFF_FAILPOINTS
/// environment variable, read once at the first evaluation — so any ceaff
/// binary can be driven from the outside:
///
///   CEAFF_FAILPOINTS="checkpoint.after_tmp_write=crash;index.before_dir_fsync=error"
///
/// Every evaluation — armed or not — registers the site and bumps its hit
/// counter. The crash harness leans on this: one clean rehearsal run
/// discovers exactly which sites a given operation crosses, then arms a
/// crash at each discovered site in turn.
///
/// Thread safety: evaluation takes a shared lock and touches only atomics,
/// so concurrent hot-path hits never serialise on each other; Configure /
/// Clear take the exclusive lock and may be called while other threads are
/// evaluating (the overload-chaos tests reconfigure delays mid-flight).

/// Exit code used by the `crash` action. Distinctive enough that a crash
/// harness can tell "failpoint fired" from any normal exit path.
inline constexpr int kCrashExitCode = 77;

/// Evaluates the site: registers it (first time), increments its hit
/// counter, and applies the armed action, if any. OK when unarmed or when
/// the action chooses not to fire this time. Never returns after `crash`.
Status Hit(const std::string& site);

/// Arms sites from a `site=action[;site=action...]` spec, replacing ALL
/// previous arms (sites absent from the spec are disarmed). An empty spec
/// disarms everything. kInvalidArgument on a malformed spec (nothing is
/// changed in that case).
Status Configure(const std::string& spec);

/// Disarms every site (hit counters and registration survive).
void Clear();

/// Every site ever evaluated or armed in this process, sorted.
std::vector<std::string> RegisteredSites();

/// Sites evaluated at least once since the last ResetHitCounts, sorted.
/// The crash harness's discovery primitive.
std::vector<std::string> HitSites();

/// Times the site has been evaluated since the last ResetHitCounts (0 for
/// unknown sites).
uint64_t HitCount(const std::string& site);

/// Zeroes every hit counter (arms are untouched).
void ResetHitCounts();

}  // namespace ceaff::failpoint

/// Evaluates a failpoint site and propagates its injected error, if any.
/// Usable in any function returning Status or StatusOr<T>. Cleanup-on-
/// failure paths should call ::ceaff::failpoint::Hit directly instead.
#define CEAFF_FAILPOINT(site)                           \
  do {                                                  \
    ::ceaff::Status _fp_st = ::ceaff::failpoint::Hit(site); \
    if (!_fp_st.ok()) return _fp_st;                    \
  } while (0)

#endif  // CEAFF_COMMON_FAILPOINT_H_
