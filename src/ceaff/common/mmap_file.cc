#include "ceaff/common/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace ceaff {

StatusOr<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("cannot stat " + path + ": " + std::strerror(err));
  }
  MappedFile mapped;
  mapped.size_ = static_cast<size_t>(st.st_size);
  if (mapped.size_ > 0) {
    void* addr = ::mmap(nullptr, mapped.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::IOError("cannot mmap " + path + ": " +
                             std::strerror(err));
    }
    mapped.addr_ = addr;
  }
  // The mapping survives the descriptor; holding the fd open gains nothing.
  ::close(fd);
  return mapped;
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : addr_(std::exchange(other.addr_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (addr_ != nullptr) ::munmap(addr_, size_);
    addr_ = std::exchange(other.addr_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

}  // namespace ceaff
