#include "ceaff/common/circuit_breaker.h"

namespace ceaff {

bool CircuitBreaker::Allow(uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_ns < open_until_ns_) return false;
      state_ = State::kHalfOpen;
      probe_in_flight_ = true;
      return true;
    case State::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return false;  // unreachable
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
}

void CircuitBreaker::RecordFailure(uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  ++consecutive_failures_;
  const bool trip =
      state_ == State::kHalfOpen ||
      (state_ == State::kClosed &&
       consecutive_failures_ >= options_.failure_threshold);
  if (trip) {
    state_ = State::kOpen;
    open_until_ns_ = now_ns + options_.cooldown_ns;
    times_opened_.fetch_add(1, std::memory_order_relaxed);
  }
  probe_in_flight_ = false;
}

CircuitBreaker::State CircuitBreaker::state(uint64_t now_ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kOpen && now_ns >= open_until_ns_) {
    return State::kHalfOpen;  // what Allow() would transition to
  }
  return state_;
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return consecutive_failures_;
}

}  // namespace ceaff
