#include "ceaff/common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "ceaff/common/random.h"

namespace ceaff {

ThreadPool::ThreadPool(size_t num_threads, size_t queue_capacity)
    : capacity_(std::max<size_t>(1, queue_capacity)) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

SubmitResult ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return shutdown_ || queue_.size() < capacity_; });
    if (shutdown_) return SubmitResult::kShuttingDown;
    queue_.push_back(std::move(task));
  }
  not_empty_.notify_one();
  return SubmitResult::kAccepted;
}

SubmitResult ThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return SubmitResult::kShuttingDown;
    if (queue_.size() >= capacity_) return SubmitResult::kQueueFull;
    queue_.push_back(std::move(task));
  }
  not_empty_.notify_one();
  return SubmitResult::kAccepted;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      // Already shut down; workers may still be draining, but join below
      // is only reached once (workers_ cleared after joining).
    }
    shutdown_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::WorkerLoop() {
  // Materialise this worker's RNG stream up front so per-task randomness is
  // contention-free (see common/random.h).
  (void)ThreadLocalRng();
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    task();
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Contiguous blocks, one per worker, so false sharing on row-major output
  // buffers stays minimal. The caller's thread waits (it does not steal
  // work: blocks are balanced, so the tail wait is short).
  const size_t num_blocks = std::min(pool->num_threads(), n);
  const size_t block = (n + num_blocks - 1) / num_blocks;
  // `done` is guarded by `mu`, not an atomic: the caller may only observe
  // completion after the finishing worker has *released* `mu`, so no worker
  // can still be touching `mu`/`cv` when the caller returns and destroys
  // them. (With an atomic counter bumped outside the lock, the caller's
  // predicate could turn true between a worker's increment and its
  // notify-under-lock, and the worker would then lock a dead mutex.)
  size_t done = 0;
  std::mutex mu;
  std::condition_variable cv;
  auto finish_block = [&] {
    std::lock_guard<std::mutex> lock(mu);
    if (++done == num_blocks) cv.notify_one();
  };
  for (size_t b = 0; b < num_blocks; ++b) {
    const size_t begin = b * block;
    const size_t end = std::min(n, begin + block);
    const SubmitResult submitted = pool->Submit([&, begin, end] {
      for (size_t i = begin; i < end; ++i) fn(i);
      finish_block();
    });
    if (submitted != SubmitResult::kAccepted) {
      // Pool is shutting down; run the block on the caller so the barrier
      // below can never deadlock on a task that was silently dropped.
      for (size_t i = begin; i < end; ++i) fn(i);
      finish_block();
    }
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == num_blocks; });
}

}  // namespace ceaff
