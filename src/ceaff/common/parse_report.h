#ifndef CEAFF_COMMON_PARSE_REPORT_H_
#define CEAFF_COMMON_PARSE_REPORT_H_

#include <cstddef>
#include <string>
#include <vector>

namespace ceaff {

/// How line-oriented loaders (TSV datasets, text-format embeddings) react
/// to malformed input.
struct ParseOptions {
  /// Strict (default): fail on the first malformed line with a
  /// `path:line:` error. Lenient: skip malformed lines, record each one in
  /// the ParseReport, and only fail once `max_errors` is exceeded — the
  /// mode for dirty real-world dumps where a handful of mojibake lines
  /// must not kill an hours-long run.
  bool lenient = false;
  /// Error budget for lenient mode: parsing aborts (kDataLoss-style
  /// InvalidArgument) when more than this many lines are malformed, so a
  /// wrong file (or wrong dimensionality) still fails loudly instead of
  /// silently loading nothing.
  size_t max_errors = 100;
};

/// One malformed line: 1-based line number plus a human-readable reason.
struct ParseIssue {
  size_t line = 0;
  std::string reason;
};

/// Per-file outcome of a lenient parse: what was read, what was loaded,
/// and exactly which lines were skipped and why — so a multi-file load is
/// diagnosable without re-running.
struct ParseReport {
  std::string path;
  size_t lines_scanned = 0;    // physical lines seen (incl. blanks/comments)
  size_t records_loaded = 0;   // records accepted into the target structure
  std::vector<ParseIssue> issues;  // skipped lines, in file order

  bool clean() const { return issues.empty(); }

  /// "path: N records, M skipped (first: line L: reason)".
  std::string ToString() const {
    std::string out = path + ": " + std::to_string(records_loaded) +
                      " records, " + std::to_string(issues.size()) +
                      " skipped";
    if (!issues.empty()) {
      out += " (first: line " + std::to_string(issues.front().line) + ": " +
             issues.front().reason + ")";
    }
    return out;
  }
};

}  // namespace ceaff

#endif  // CEAFF_COMMON_PARSE_REPORT_H_
