#include "ceaff/common/logging.h"

#include <atomic>
#include <mutex>

namespace ceaff {

namespace {
/// Relaxed atomic: the threshold may be flipped while worker threads log
/// (tests and benchmarks do), and a stale read is harmless.
std::atomic<LogLevel> g_level{LogLevel::kInfo};

/// Single process-wide sink, mutex-guarded so concurrent log statements
/// flush whole lines and never interleave. The mutex lives behind a
/// function-local static so logging works during static initialisation.
std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

std::ostream*& SinkSlot() {
  static std::ostream* sink = nullptr;  // null = stderr
  return sink;
}

/// Writes one finished log line to the sink atomically.
void WriteLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  std::ostream* sink = SinkSlot();
  if (sink == nullptr) sink = &std::cerr;
  *sink << line << '\n';
  sink->flush();
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogSinkForTest(std::ostream* sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  SinkSlot() = sink;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()), level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) WriteLine(stream_.str());
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* expr) {
  stream_ << "[FATAL " << file << ":" << line << "] check failed: " << expr
          << " ";
}

FatalLogMessage::~FatalLogMessage() {
  WriteLine(stream_.str());
  std::abort();
}

}  // namespace internal
}  // namespace ceaff
