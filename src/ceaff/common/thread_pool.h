#ifndef CEAFF_COMMON_THREAD_POOL_H_
#define CEAFF_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ceaff {

/// Why a task was (not) accepted by the pool. Callers that shed load need
/// to tell the two refusals apart: kQueueFull is transient (retry with
/// backoff, or shed the request — the pool is alive but saturated) while
/// kShuttingDown is terminal (run inline or abandon the work; no amount of
/// waiting brings the pool back).
enum class SubmitResult {
  kAccepted,      // task enqueued; a worker will run it
  kQueueFull,     // TrySubmit only: every queue slot is taken right now
  kShuttingDown,  // Shutdown() has begun; the task was dropped
};

/// Fixed-size worker pool with a bounded task queue.
///
/// The queue bound provides backpressure: Submit() blocks the producer when
/// `queue_capacity` tasks are already waiting, so a fast request source
/// cannot grow memory without limit. TrySubmit() is the non-blocking
/// variant for callers that prefer load-shedding over waiting.
///
/// Each worker thread owns a ThreadLocalRng() stream (see common/random.h),
/// touched once at startup so per-task randomness never contends on shared
/// RNG state.
///
/// Destruction (or Shutdown()) stops intake, drains every task already
/// queued, then joins the workers. Tasks must not throw — the library is
/// exception-free; a throwing task would terminate the process.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1). `queue_capacity`
  /// bounds the number of queued-but-not-running tasks (clamped to >= 1).
  explicit ThreadPool(size_t num_threads, size_t queue_capacity = 1024);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Enqueues `task`, blocking while the queue is full. Never returns
  /// kQueueFull; returns kShuttingDown (and drops the task) if the pool is
  /// shutting down.
  SubmitResult Submit(std::function<void()> task);

  /// Enqueues `task` only if a queue slot is free right now; kQueueFull
  /// when it is not, kShuttingDown once Shutdown() has begun.
  SubmitResult TrySubmit(std::function<void()> task);

  /// Stops accepting tasks, runs everything already queued, joins workers.
  /// Idempotent; called by the destructor.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }
  size_t queue_capacity() const { return capacity_; }

 private:
  void WorkerLoop();

  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(0), ..., fn(n-1), partitioned into contiguous index blocks across
/// the pool's workers, and blocks until all calls finished. Falls back to a
/// plain sequential loop when `pool` is null or has a single thread.
/// `fn` must be safe to call concurrently for distinct indices.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace ceaff

#endif  // CEAFF_COMMON_THREAD_POOL_H_
