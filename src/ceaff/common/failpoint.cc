#include "ceaff/common/failpoint.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "ceaff/common/string_util.h"

namespace ceaff::failpoint {

namespace {

enum class Action : int {
  kOff = 0,
  kError = 1,
  kCrash = 2,
  kDelay = 3,
  kOneIn = 4,
};

/// Per-site state. Sites are registered once and never removed, so Hit can
/// hold a raw pointer across the shared lock's release; all mutable fields
/// are atomics, readable while Configure rewrites them under the exclusive
/// lock.
struct Site {
  std::atomic<uint64_t> hits{0};
  std::atomic<int> action{static_cast<int>(Action::kOff)};
  /// delay: milliseconds; 1in<n>: n. Unused otherwise.
  std::atomic<uint64_t> arg{0};
  /// Evaluations since this site was armed (drives 1in<n> determinism).
  std::atomic<uint64_t> armed_hits{0};
};

struct Registry {
  std::shared_mutex mu;
  /// std::map: stable pointers and sorted iteration for RegisteredSites.
  std::map<std::string, std::unique_ptr<Site>> sites;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives everything
  return *registry;
}

Site* FindOrCreate(const std::string& name) {
  Registry& registry = GetRegistry();
  {
    std::shared_lock lock(registry.mu);
    auto it = registry.sites.find(name);
    if (it != registry.sites.end()) return it->second.get();
  }
  std::unique_lock lock(registry.mu);
  auto& slot = registry.sites[name];
  if (slot == nullptr) slot = std::make_unique<Site>();
  return slot.get();
}

struct ParsedArm {
  std::string site;
  Action action = Action::kOff;
  uint64_t arg = 0;
};

Status ParseAction(const std::string& site, const std::string& text,
                   ParsedArm* out) {
  out->site = site;
  if (text == "off") {
    out->action = Action::kOff;
    return Status::OK();
  }
  if (text == "error") {
    out->action = Action::kError;
    return Status::OK();
  }
  if (text == "crash") {
    out->action = Action::kCrash;
    return Status::OK();
  }
  if (text == "delay" || text.rfind("delay:", 0) == 0) {
    out->action = Action::kDelay;
    out->arg = 10;  // default stall when no duration is given
    if (text.size() > 6) {
      char* end = nullptr;
      unsigned long long ms = std::strtoull(text.c_str() + 6, &end, 10);
      if (end == text.c_str() + 6 || *end != '\0') {
        return Status::InvalidArgument("failpoint '" + site +
                                       "': bad delay duration in '" + text +
                                       "'");
      }
      out->arg = ms;
    }
    return Status::OK();
  }
  if (text.rfind("1in", 0) == 0) {
    char* end = nullptr;
    unsigned long long n = std::strtoull(text.c_str() + 3, &end, 10);
    if (end == text.c_str() + 3 || *end != '\0' || n == 0) {
      return Status::InvalidArgument("failpoint '" + site +
                                     "': bad 1in<n> spec '" + text + "'");
    }
    out->action = Action::kOneIn;
    out->arg = n;
    return Status::OK();
  }
  return Status::InvalidArgument("failpoint '" + site +
                                 "': unknown action '" + text + "'");
}

Status ParseSpec(const std::string& spec, std::vector<ParsedArm>* arms) {
  for (std::string_view part : Split(spec, ';')) {
    std::string_view trimmed = StripAsciiWhitespace(part);
    if (trimmed.empty()) continue;
    const size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument(
          "failpoint spec entry '" + std::string(trimmed) +
          "' is not site=action");
    }
    ParsedArm arm;
    CEAFF_RETURN_IF_ERROR(ParseAction(std::string(trimmed.substr(0, eq)),
                                      std::string(trimmed.substr(eq + 1)),
                                      &arm));
    arms->push_back(std::move(arm));
  }
  return Status::OK();
}

Status ApplyArms(const std::vector<ParsedArm>& arms) {
  Registry& registry = GetRegistry();
  std::unique_lock lock(registry.mu);
  for (auto& [name, site] : registry.sites) {
    site->action.store(static_cast<int>(Action::kOff),
                       std::memory_order_relaxed);
  }
  for (const ParsedArm& arm : arms) {
    auto& slot = registry.sites[arm.site];
    if (slot == nullptr) slot = std::make_unique<Site>();
    slot->arg.store(arm.arg, std::memory_order_relaxed);
    slot->armed_hits.store(0, std::memory_order_relaxed);
    slot->action.store(static_cast<int>(arm.action),
                       std::memory_order_release);
  }
  return Status::OK();
}

/// CEAFF_FAILPOINTS is read exactly once, before the first evaluation, so
/// external arming works for any binary without code changes. A malformed
/// env spec aborts loudly — silently ignoring it would make a chaos drill
/// pass by testing nothing.
void ConfigureFromEnvOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("CEAFF_FAILPOINTS");
    if (env == nullptr || *env == '\0') return;
    std::vector<ParsedArm> arms;
    Status st = ParseSpec(env, &arms);
    if (st.ok()) st = ApplyArms(arms);
    if (!st.ok()) {
      const std::string msg =
          "fatal: CEAFF_FAILPOINTS: " + st.message() + "\n";
      (void)!::write(2, msg.data(), msg.size());
      _exit(2);
    }
  });
}

[[noreturn]] void CrashNow(const std::string& site) {
  // write(2) + _exit: no locks, no allocation after the message, no
  // buffered-IO flush — the point is to die the way a power cut does.
  const std::string msg = "failpoint '" + site + "': crashing\n";
  (void)!::write(2, msg.data(), msg.size());
  _exit(kCrashExitCode);
}

}  // namespace

Status Hit(const std::string& site) {
  ConfigureFromEnvOnce();
  Site* s = FindOrCreate(site);
  s->hits.fetch_add(1, std::memory_order_relaxed);
  const Action action =
      static_cast<Action>(s->action.load(std::memory_order_acquire));
  if (action == Action::kOff) return Status::OK();
  switch (action) {
    case Action::kError:
      return Status::IOError("failpoint '" + site + "': injected error");
    case Action::kCrash:
      CrashNow(site);
    case Action::kDelay: {
      const uint64_t ms = s->arg.load(std::memory_order_relaxed);
      if (ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      }
      return Status::OK();
    }
    case Action::kOneIn: {
      const uint64_t n = s->arg.load(std::memory_order_relaxed);
      const uint64_t k =
          s->armed_hits.fetch_add(1, std::memory_order_relaxed) + 1;
      if (n > 0 && k % n == 0) {
        return Status::IOError("failpoint '" + site +
                               "': injected intermittent error (hit " +
                               std::to_string(k) + ")");
      }
      return Status::OK();
    }
    case Action::kOff:
      break;
  }
  return Status::OK();
}

Status Configure(const std::string& spec) {
  ConfigureFromEnvOnce();
  std::vector<ParsedArm> arms;
  CEAFF_RETURN_IF_ERROR(ParseSpec(spec, &arms));
  return ApplyArms(arms);
}

void Clear() {
  Registry& registry = GetRegistry();
  std::unique_lock lock(registry.mu);
  for (auto& [name, site] : registry.sites) {
    site->action.store(static_cast<int>(Action::kOff),
                       std::memory_order_relaxed);
  }
}

std::vector<std::string> RegisteredSites() {
  Registry& registry = GetRegistry();
  std::shared_lock lock(registry.mu);
  std::vector<std::string> names;
  names.reserve(registry.sites.size());
  for (const auto& [name, site] : registry.sites) names.push_back(name);
  return names;
}

std::vector<std::string> HitSites() {
  Registry& registry = GetRegistry();
  std::shared_lock lock(registry.mu);
  std::vector<std::string> names;
  for (const auto& [name, site] : registry.sites) {
    if (site->hits.load(std::memory_order_relaxed) > 0) {
      names.push_back(name);
    }
  }
  return names;
}

uint64_t HitCount(const std::string& site) {
  Registry& registry = GetRegistry();
  std::shared_lock lock(registry.mu);
  auto it = registry.sites.find(site);
  if (it == registry.sites.end()) return 0;
  return it->second->hits.load(std::memory_order_relaxed);
}

void ResetHitCounts() {
  Registry& registry = GetRegistry();
  std::shared_lock lock(registry.mu);
  for (const auto& [name, site] : registry.sites) {
    site->hits.store(0, std::memory_order_relaxed);
  }
}

}  // namespace ceaff::failpoint
