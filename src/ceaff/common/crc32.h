#ifndef CEAFF_COMMON_CRC32_H_
#define CEAFF_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace ceaff {

/// Incremental CRC-32 (IEEE 802.3, the zlib polynomial) used to checksum
/// binary artifacts. Not cryptographic — it detects the corruption classes
/// a checkpoint store cares about (truncation, bit flips, torn writes).
class Crc32 {
 public:
  /// Feeds `len` bytes; may be called repeatedly to checksum streamed data.
  void Update(const void* data, size_t len);

  /// The checksum of everything fed so far.
  uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot convenience over a single buffer.
uint32_t Crc32Of(const void* data, size_t len);

}  // namespace ceaff

#endif  // CEAFF_COMMON_CRC32_H_
