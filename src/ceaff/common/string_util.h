#ifndef CEAFF_COMMON_STRING_UTIL_H_
#define CEAFF_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace ceaff {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits `s` on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

/// ASCII lower-casing (bytes >= 0x80 are left untouched).
std::string AsciiToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Replaces '_' with ' ' and collapses whitespace runs — the usual
/// normalisation applied to DBpedia-style entity local names.
std::string NormalizeEntityName(std::string_view raw);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace ceaff

#endif  // CEAFF_COMMON_STRING_UTIL_H_
