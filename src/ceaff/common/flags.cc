#include "ceaff/common/flags.h"

#include <cstdlib>

#include "ceaff/common/string_util.h"

namespace ceaff {

StatusOr<FlagParser> FlagParser::Parse(int argc, const char* const* argv) {
  FlagParser p;
  bool flags_done = false;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (flags_done || arg.size() < 3 || arg.substr(0, 2) != "--") {
      if (arg == "--") {
        flags_done = true;
        continue;
      }
      p.positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      p.flags_[std::string(arg.substr(0, eq))] =
          std::string(arg.substr(eq + 1));
      continue;
    }
    // `--flag value` form; a following token starting with "--" means the
    // flag is boolean-style ("true").
    if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      p.flags_[std::string(arg)] = argv[++i];
    } else {
      p.flags_[std::string(arg)] = "true";
    }
  }
  return p;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& fallback) const {
  auto it = flags_.find(name);
  read_[name] = true;
  return it == flags_.end() ? fallback : it->second;
}

double FlagParser::GetDouble(const std::string& name, double fallback) const {
  auto it = flags_.find(name);
  read_[name] = true;
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  return end == it->second.c_str() ? fallback : v;
}

int64_t FlagParser::GetInt(const std::string& name, int64_t fallback) const {
  auto it = flags_.find(name);
  read_[name] = true;
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  return end == it->second.c_str() ? fallback : v;
}

bool FlagParser::GetBool(const std::string& name, bool fallback) const {
  auto it = flags_.find(name);
  read_[name] = true;
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::vector<std::string> FlagParser::UnreadFlags() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : flags_) {
    if (!read_.count(name)) out.push_back(name);
  }
  return out;
}

}  // namespace ceaff
