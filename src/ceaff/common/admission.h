#ifndef CEAFF_COMMON_ADMISSION_H_
#define CEAFF_COMMON_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <mutex>

namespace ceaff {

/// Decides, per request, whether the serving path should do the work at
/// all. Two independent defenses, evaluated in order:
///
///  1. Deadline-aware admission. A request whose remaining deadline budget
///     is smaller than the work it is about to queue behind — the current
///     p99 service time plus the estimated queue delay — is rejected up
///     front (kRejectDeadline): scoring it would burn a worker only to
///     produce kDeadlineExceeded after the fact. Requests whose deadline
///     has *already* expired are admitted; the scorer's first cancellation
///     poll returns the accurate kDeadlineExceeded immediately and for
///     free.
///
///  2. CoDel-style overload shedding on the estimated queue delay. When
///     the delay stays above `target_delay_ns` for a full `interval_ns`,
///     the controller enters a shedding state and drops requests at the
///     CoDel control-law cadence (`interval / sqrt(shed_count)`, so the
///     drop rate ramps up the longer overload persists) until the delay
///     dips back under target, which resets the state. Unlike a naive
///     "shed everything over a threshold" policy this keeps goodput high:
///     most requests are still admitted, and just enough are shed to drain
///     the standing queue.
///
/// Callers supply timestamps (steady-clock nanoseconds) and the delay /
/// p99 estimates, so the controller itself never reads a clock — tests
/// drive it on virtual time, and the caller chooses the load signal (the
/// serving path uses `excess in-flight requests x median service time`).
///
/// Thread-safe: Admit() takes one short critical section; the counters are
/// lock-free reads.
class AdmissionController {
 public:
  struct Options {
    /// Queue delay considered acceptable indefinitely (CoDel "target").
    uint64_t target_delay_ns = 5'000'000;  // 5 ms
    /// How long the delay must stay above target before shedding starts
    /// (CoDel "interval"), and the base period of the shed cadence.
    uint64_t interval_ns = 100'000'000;  // 100 ms
    /// Reject a deadline-carrying request when
    ///   remaining < deadline_headroom * (p99 + estimated delay).
    /// >1 rejects earlier (spare headroom), <1 gambles on beating the p99.
    double deadline_headroom = 1.0;
  };

  enum class Decision {
    kAdmit,           // do the work
    kRejectDeadline,  // cannot finish inside the caller's deadline
    kShedOverload,    // dropped by the CoDel control law
  };

  // Two constructors instead of one defaulted argument: GCC cannot use a
  // nested struct with default member initializers as a `= {}` default
  // inside the enclosing class.
  AdmissionController();
  explicit AdmissionController(const Options& options);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// One admission decision. `now_ns` is steady-clock time;
  /// `queue_delay_ns` the caller's estimate of how long this request would
  /// wait before being scored; `p99_service_ns` the current p99 service
  /// time (0 = unknown, disables the deadline check); and
  /// `remaining_deadline_ns` the request's remaining budget (INT64_MAX =
  /// no deadline, <= 0 = already expired — admitted, see above).
  Decision Admit(uint64_t now_ns, uint64_t queue_delay_ns,
                 uint64_t p99_service_ns, int64_t remaining_deadline_ns);

  uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  uint64_t rejected_deadline() const {
    return rejected_deadline_.load(std::memory_order_relaxed);
  }
  uint64_t shed_overload() const {
    return shed_overload_.load(std::memory_order_relaxed);
  }

  /// True while the CoDel control law is actively dropping (for stats /
  /// tests; racy by nature).
  bool shedding() const;

 private:
  const Options options_;

  mutable std::mutex mu_;
  /// Deadline (ns) by which the delay must dip under target to avoid
  /// entering the shedding state; 0 = delay is currently under target.
  uint64_t first_above_ns_ = 0;
  bool shedding_ = false;
  /// Drops since the shedding state was entered (drives the cadence).
  uint64_t shed_count_ = 0;
  /// Next time the control law sheds while in the shedding state.
  uint64_t next_shed_ns_ = 0;

  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_deadline_{0};
  std::atomic<uint64_t> shed_overload_{0};
};

inline AdmissionController::AdmissionController(const Options& options)
    : options_(options) {}
inline AdmissionController::AdmissionController()
    : AdmissionController(Options()) {}

}  // namespace ceaff

#endif  // CEAFF_COMMON_ADMISSION_H_
