#include "ceaff/common/crc32.h"

#include <array>

namespace ceaff {

namespace {

/// The byte-at-a-time lookup table for the reflected IEEE polynomial
/// 0xEDB88320, built once at static-init time.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

void Crc32::Update(const void* data, size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const auto& table = Table();
  uint32_t c = state_;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
}

uint32_t Crc32Of(const void* data, size_t len) {
  Crc32 crc;
  crc.Update(data, len);
  return crc.value();
}

}  // namespace ceaff
