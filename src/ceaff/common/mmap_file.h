#ifndef CEAFF_COMMON_MMAP_FILE_H_
#define CEAFF_COMMON_MMAP_FILE_H_

#include <cstddef>
#include <string>

#include "ceaff/common/statusor.h"

namespace ceaff {

/// A read-only memory mapping of a whole file (PROT_READ, MAP_PRIVATE).
/// The artifact loaders use it for zero-copy reads: parsed structures point
/// straight into the mapping instead of heap copies, so reload latency and
/// peak RSS stay flat as artifacts grow. Callers that keep pointers into
/// data() must keep the MappedFile alive alongside them (the index loader
/// stores it in a shared_ptr next to the views).
///
/// Move-only; the destructor unmaps. An empty file maps to data() == null,
/// size() == 0 (mmap of length 0 is invalid, so it is special-cased).
class MappedFile {
 public:
  /// Maps `path` read-only. kIOError when the file cannot be opened,
  /// stat'ed or mapped — callers are expected to fall back to a heap read.
  static StatusOr<MappedFile> Open(const std::string& path);

  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  const char* data() const { return static_cast<const char*>(addr_); }
  size_t size() const { return size_; }

 private:
  void* addr_ = nullptr;
  size_t size_ = 0;
};

}  // namespace ceaff

#endif  // CEAFF_COMMON_MMAP_FILE_H_
