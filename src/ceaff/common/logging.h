#ifndef CEAFF_COMMON_LOGGING_H_
#define CEAFF_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace ceaff {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Default kInfo.
/// Benchmarks raise it to kWarning so table output stays clean.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Redirects the log sink (default: stderr). Pass nullptr to restore
/// stderr. For tests that assert on log output; not for production use —
/// the caller must keep `sink` alive until the sink is reset.
///
/// The sink is protected by a single process-wide mutex: each log statement
/// is flushed as one complete line while holding it, so messages from
/// concurrent threads (service workers, thread-pool tasks) never
/// interleave mid-line.
void SetLogSinkForTest(std::ostream* sink);

namespace internal {

/// One log statement. Streams into an internal buffer and flushes to stderr
/// (with level prefix) on destruction. Not for direct use — see CEAFF_LOG.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

/// LogMessage that aborts the process after flushing. Used by CEAFF_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* expr);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ceaff

#define CEAFF_LOG(level)                                                \
  ::ceaff::internal::LogMessage(::ceaff::LogLevel::k##level, __FILE__, \
                                __LINE__)

/// Invariant check: logs and aborts if `cond` is false. For programmer
/// errors only — recoverable conditions must return Status instead.
#define CEAFF_CHECK(cond)                                           \
  if (!(cond))                                                      \
  ::ceaff::internal::FatalLogMessage(__FILE__, __LINE__, #cond)

#define CEAFF_DCHECK(cond) CEAFF_CHECK(cond)

#endif  // CEAFF_COMMON_LOGGING_H_
