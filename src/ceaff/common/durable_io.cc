#include "ceaff/common/durable_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "ceaff/common/crc32.h"
#include "ceaff/common/failpoint.h"
#include "ceaff/common/logging.h"
#include "ceaff/common/string_util.h"

namespace ceaff {

namespace {

namespace fs = std::filesystem;

constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestHeader[] = "CEAFF-MANIFEST v1";

std::string ErrnoMessage(const char* what, const std::string& path) {
  return StrFormat("%s %s: %s", what, path.c_str(), std::strerror(errno));
}

Status WriteAll(int fd, const char* data, size_t len,
                const std::string& path) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("write", path));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

std::string ParentDirOf(const std::string& path) {
  const std::string parent = fs::path(path).parent_path().string();
  return parent.empty() ? std::string(".") : parent;
}

/// Monotonic per-process sequence for unique temp names; combined with the
/// pid it makes concurrent writers (threads or processes) collision-free.
std::string UniqueTmpPath(const std::string& path) {
  static std::atomic<uint64_t> counter{0};
  return StrFormat("%s.tmp.%d.%llu", path.c_str(),
                   static_cast<int>(::getpid()),
                   static_cast<unsigned long long>(
                       counter.fetch_add(1, std::memory_order_relaxed)));
}

}  // namespace

Status FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Status::IOError(ErrnoMessage("open dir", dir));
  Status st;
  if (::fsync(fd) != 0) st = Status::IOError(ErrnoMessage("fsync dir", dir));
  ::close(fd);
  return st;
}

Status WriteFileAtomic(const std::string& path, std::string_view bytes,
                       const std::string& scope) {
  CEAFF_FAILPOINT(scope + ".before_tmp_write");

  const std::string tmp = UniqueTmpPath(path);
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) return Status::IOError(ErrnoMessage("create", tmp));

  // Every failure past this point must remove the temp file — leaking it
  // is harmless for correctness but litters the directory forever.
  auto fail = [&tmp](int open_fd, Status st) {
    if (open_fd >= 0) ::close(open_fd);
    ::unlink(tmp.c_str());
    return st;
  };

  Status st = WriteAll(fd, bytes.data(), bytes.size(), tmp);
  if (!st.ok()) return fail(fd, std::move(st));

  // Payload written but not yet on stable storage: a crash here may leave
  // a torn temp file, never a torn `path`.
  st = failpoint::Hit(scope + ".after_tmp_write");
  if (!st.ok()) return fail(fd, std::move(st));

  if (::fsync(fd) != 0) {
    return fail(fd, Status::IOError(ErrnoMessage("fsync", tmp)));
  }
  if (::close(fd) != 0) {
    return fail(-1, Status::IOError(ErrnoMessage("close", tmp)));
  }

  // File contents are durable; the publish (rename) has not happened, so a
  // crash here still serves the old generation.
  st = failpoint::Hit(scope + ".before_rename");
  if (!st.ok()) return fail(-1, std::move(st));

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return fail(-1, Status::IOError(
                        ErrnoMessage("rename", tmp + " -> " + path)));
  }

  // Renamed but the directory entry may not be durable yet: after a crash
  // the file can legitimately come back as either the old or the new
  // version — both are complete, neither is torn.
  CEAFF_FAILPOINT(scope + ".before_dir_fsync");

  return FsyncDir(ParentDirOf(path));
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("cannot read " + path);
  return std::move(buffer).str();
}

// ---------------------------------------------------------------------------
// GenerationalStore

GenerationalStore::GenerationalStore(std::string dir)
    : GenerationalStore(std::move(dir), Options()) {}

GenerationalStore::GenerationalStore(std::string dir, Options options)
    : dir_(std::move(dir)), options_(std::move(options)) {
  if (options_.keep_generations == 0) options_.keep_generations = 1;
}

std::string GenerationalStore::GenPath(const std::string& name,
                                       uint64_t gen) const {
  return StrFormat("%s/%s.g%llu", dir_.c_str(), name.c_str(),
                   static_cast<unsigned long long>(gen));
}

std::string GenerationalStore::ManifestPath() const {
  return dir_ + "/" + kManifestName;
}

Status GenerationalStore::Init() {
  std::lock_guard<std::mutex> lock(mu_);
  if (initialized_) return Status::OK();
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) return Status::IOError("mkdir " + dir_ + ": " + ec.message());

  // Sweep temp files a crashed writer left behind. Nothing else can be
  // mid-write in this directory (one store instance per directory), so
  // every `*.tmp.*` here is dead.
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string fname = entry.path().filename().string();
    if (fname.find(".tmp.") != std::string::npos) {
      std::error_code rm_ec;
      fs::remove(entry.path(), rm_ec);
    }
  }

  CEAFF_RETURN_IF_ERROR(LoadOrRebuildManifestLocked());
  initialized_ = true;
  return Status::OK();
}

Status GenerationalStore::LoadOrRebuildManifestLocked() {
  entries_.clear();
  const std::string manifest_path = ManifestPath();

  auto rebuild_from_scan = [this]() {
    // Trust-nothing recovery: list whatever generation files exist and let
    // read-time validation (the caller's validator — every CEAFF artifact
    // is internally checksummed) decide which are good.
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir_, ec)) {
      const std::string fname = entry.path().filename().string();
      if (fname == kManifestName || fname.find(".tmp.") != std::string::npos)
        continue;
      if (fname.size() > 8 && fname.ends_with(".corrupt")) continue;
      const size_t dot_g = fname.rfind(".g");
      if (dot_g == std::string::npos || dot_g == 0) continue;
      char* end = nullptr;
      const char* digits = fname.c_str() + dot_g + 2;
      const unsigned long long gen = std::strtoull(digits, &end, 10);
      if (end == digits || *end != '\0') continue;
      GenerationEntry e;
      e.gen = gen;
      e.has_crc = false;
      entries_[fname.substr(0, dot_g)].push_back(e);
    }
    for (auto& [name, gens] : entries_) {
      std::sort(gens.begin(), gens.end(),
                [](const GenerationEntry& a, const GenerationEntry& b) {
                  return a.gen < b.gen;
                });
    }
  };

  std::error_code exists_ec;
  if (!fs::exists(manifest_path, exists_ec)) {
    rebuild_from_scan();
    return Status::OK();
  }

  auto bytes_or = ReadFileToString(manifest_path);
  bool manifest_ok = bytes_or.ok();
  if (manifest_ok) {
    const std::string& bytes = bytes_or.value();
    // Trailer: last line is `crc <hex>` over everything before it.
    manifest_ok = false;
    const size_t trailer = bytes.rfind("crc ");
    if (trailer != std::string::npos &&
        (trailer == 0 || bytes[trailer - 1] == '\n')) {
      char* end = nullptr;
      const unsigned long stored =
          std::strtoul(bytes.c_str() + trailer + 4, &end, 16);
      if (end != bytes.c_str() + trailer + 4 &&
          stored == Crc32Of(bytes.data(), trailer)) {
        manifest_ok = true;
        std::istringstream in(bytes.substr(0, trailer));
        std::string line;
        bool first = true;
        while (manifest_ok && std::getline(in, line)) {
          if (first) {
            first = false;
            manifest_ok = (line == kManifestHeader);
            continue;
          }
          if (line.empty()) continue;
          const std::vector<std::string> fields = Split(line, '\t');
          if (fields.size() != 4) {
            manifest_ok = false;
            break;
          }
          GenerationEntry e;
          char* gen_end = nullptr;
          e.gen = std::strtoull(fields[1].c_str(), &gen_end, 10);
          char* size_end = nullptr;
          e.size = std::strtoull(fields[2].c_str(), &size_end, 10);
          char* crc_end = nullptr;
          e.crc = static_cast<uint32_t>(
              std::strtoul(fields[3].c_str(), &crc_end, 16));
          if (*gen_end != '\0' || *size_end != '\0' || *crc_end != '\0' ||
              fields[0].empty()) {
            manifest_ok = false;
            break;
          }
          entries_[fields[0]].push_back(e);
        }
      }
    }
  }

  if (!manifest_ok) {
    // Bit-flipped manifest (atomic writes make torn ones unreachable):
    // quarantine it and fall back to scanning the directory.
    CEAFF_LOG(Warning) << "manifest " << manifest_path
                       << " is corrupt; quarantining as .corrupt and "
                          "rebuilding from directory scan (kDataLoss)";
    std::error_code ec;
    fs::rename(manifest_path, manifest_path + ".corrupt", ec);
    entries_.clear();
    rebuild_from_scan();
    return Status::OK();
  }

  for (auto& [name, gens] : entries_) {
    std::sort(gens.begin(), gens.end(),
              [](const GenerationEntry& a, const GenerationEntry& b) {
                return a.gen < b.gen;
              });
  }
  return Status::OK();
}

Status GenerationalStore::CommitManifestLocked() {
  std::string body = kManifestHeader;
  body.push_back('\n');
  for (const auto& [name, gens] : entries_) {
    for (const GenerationEntry& e : gens) {
      body += StrFormat("%s\t%llu\t%llu\t%08x\n", name.c_str(),
                        static_cast<unsigned long long>(e.gen),
                        static_cast<unsigned long long>(e.size), e.crc);
    }
  }
  body += StrFormat("crc %08x\n", Crc32Of(body.data(), body.size()));
  return WriteFileAtomic(ManifestPath(), body,
                         options_.failpoint_scope + ".manifest");
}

Status GenerationalStore::Put(const std::string& name,
                              std::string_view bytes) {
  if (name.empty() || name.find('/') != std::string::npos ||
      name.find('\t') != std::string::npos ||
      name.find('\n') != std::string::npos) {
    return Status::InvalidArgument("bad artifact name '" + name + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!initialized_) {
    return Status::FailedPrecondition("GenerationalStore::Init not called");
  }

  std::vector<GenerationEntry>& gens = entries_[name];
  const uint64_t next_gen = gens.empty() ? 1 : gens.back().gen + 1;

  // Step 1: the generation file itself, fully durable before the manifest
  // ever mentions it.
  CEAFF_RETURN_IF_ERROR(WriteFileAtomic(GenPath(name, next_gen), bytes,
                                        options_.failpoint_scope));

  // Step 2: the commit point. If this fails (or we crash before it), the
  // new generation file is an ignored orphan and the previous generation
  // is still the committed truth.
  GenerationEntry e;
  e.gen = next_gen;
  e.size = bytes.size();
  e.crc = Crc32Of(bytes.data(), bytes.size());
  gens.push_back(e);
  Status st = CommitManifestLocked();
  if (!st.ok()) {
    gens.pop_back();
    if (gens.empty()) entries_.erase(name);
    return st;
  }

  // Step 3: GC. Crash-safe because the manifest no longer lists what we
  // unlink.
  GcLocked(name);
  return Status::OK();
}

void GenerationalStore::StampAccessLocked(const std::string& name,
                                          uint64_t gen) const {
  if (options_.gc_grace.count() <= 0) return;
  access_stamps_[{name, gen}] = std::chrono::steady_clock::now();
}

bool GenerationalStore::InGraceLocked(const std::string& name,
                                      uint64_t gen) const {
  if (options_.gc_grace.count() <= 0) return false;
  auto it = access_stamps_.find({name, gen});
  if (it == access_stamps_.end()) return false;
  if (std::chrono::steady_clock::now() - it->second >= options_.gc_grace) {
    access_stamps_.erase(it);
    return false;
  }
  return true;
}

void GenerationalStore::GcLocked(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) return;
  std::vector<GenerationEntry>& gens = it->second;
  if (gens.size() > options_.keep_generations) {
    const size_t drop = gens.size() - options_.keep_generations;
    bool committed = true;
    {
      std::vector<GenerationEntry> kept(gens.begin() + drop, gens.end());
      std::swap(gens, kept);
      Status st = CommitManifestLocked();
      if (!st.ok()) {
        // Keep the old manifest's view; retry the GC on the next Put.
        std::swap(gens, kept);
        committed = false;
      }
      if (committed) {
        for (const GenerationEntry& e : kept) {
          if (std::find_if(gens.begin(), gens.end(),
                           [&e](const GenerationEntry& g) {
                             return g.gen == e.gen;
                           }) == gens.end() &&
              !InGraceLocked(name, e.gen)) {
            // A dropped generation a reader resolved within the grace
            // window stays on disk (it already left the manifest, so only
            // that reader can still find it); the orphan sweep of a later
            // Put removes it once the grace expires.
            ::unlink(GenPath(name, e.gen).c_str());
          }
        }
      }
    }
  }
  // Orphans: generation files on disk that the manifest does not list
  // (crash between file write and manifest commit, or a grace-protected
  // generation from an earlier GC). Uncommitted ones were never visible,
  // so dropping them is not data loss; grace-protected ones wait out
  // their window.
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string fname = entry.path().filename().string();
    const std::string prefix = name + ".g";
    if (fname.rfind(prefix, 0) != 0) continue;
    char* end = nullptr;
    const char* digits = fname.c_str() + prefix.size();
    const unsigned long long gen = std::strtoull(digits, &end, 10);
    if (end == digits || *end != '\0') continue;  // .corrupt etc.
    if (std::find_if(gens.begin(), gens.end(),
                     [gen](const GenerationEntry& g) {
                       return g.gen == gen;
                     }) == gens.end() &&
        !InGraceLocked(name, gen)) {
      std::error_code rm_ec;
      fs::remove(entry.path(), rm_ec);
    }
  }
}

StatusOr<std::string> GenerationalStore::Get(
    const std::string& name, const ArtifactValidator& validate) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!initialized_) {
    return Status::FailedPrecondition("GenerationalStore::Init not called");
  }
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.empty()) {
    // Pre-generational layout: a flat `<dir>/<name>` file written by an
    // older build. Validator-only trust, never quarantined by us.
    const std::string legacy = dir_ + "/" + name;
    std::error_code ec;
    if (fs::exists(legacy, ec)) {
      auto bytes_or = ReadFileToString(legacy);
      if (bytes_or.ok() &&
          (validate == nullptr || validate(bytes_or.value()).ok())) {
        return bytes_or;
      }
      return Status::DataLoss(legacy + ": legacy artifact is corrupt");
    }
    return Status::NotFound("artifact '" + name + "' has no generation in " +
                            dir_);
  }

  Status last_error = Status::DataLoss("no generation validated");
  bool quarantined_any = false;
  std::vector<GenerationEntry>& gens = it->second;
  while (!gens.empty()) {
    const GenerationEntry e = gens.back();
    const std::string path = GenPath(name, e.gen);
    Status verdict;
    std::string bytes;
    auto bytes_or = ReadFileToString(path);
    if (!bytes_or.ok()) {
      verdict = bytes_or.status();
    } else {
      bytes = std::move(bytes_or).value();
      if (e.has_crc && (bytes.size() != e.size ||
                        Crc32Of(bytes.data(), bytes.size()) != e.crc)) {
        verdict = Status::DataLoss(
            StrFormat("%s: manifest CRC/size mismatch (%zu bytes on disk, "
                      "%llu committed)",
                      path.c_str(), bytes.size(),
                      static_cast<unsigned long long>(e.size)));
      } else if (validate != nullptr) {
        verdict = validate(bytes);
      }
    }
    if (verdict.ok()) {
      StampAccessLocked(name, e.gen);
      if (quarantined_any) {
        // The quarantine shrank the committed set; persist that so the
        // next reader does not re-validate known-bad files. Best-effort —
        // the bytes being returned are already validated.
        (void)CommitManifestLocked();
      }
      return bytes;
    }

    // Quarantine and fall back to the previous generation. This is the
    // kDataLoss-but-keep-going path: newest data is gone, older survives.
    CEAFF_LOG(Warning) << "kDataLoss: generation " << path << " is corrupt ("
                       << verdict
                       << "); quarantining as .corrupt and falling back to "
                          "the previous generation";
    std::error_code ec;
    fs::rename(path, path + ".corrupt", ec);
    gens.pop_back();
    quarantined_any = true;
    last_error = std::move(verdict);
  }
  entries_.erase(it);
  if (quarantined_any) (void)CommitManifestLocked();
  return Status::DataLoss("artifact '" + name +
                          "': every committed generation is corrupt (last: " +
                          last_error.message() + ")");
}

bool GenerationalStore::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end() && !it->second.empty()) return true;
  std::error_code ec;
  return fs::exists(dir_ + "/" + name, ec);  // legacy flat layout
}

Status GenerationalStore::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    entries_.erase(it);
    CEAFF_RETURN_IF_ERROR(CommitManifestLocked());
  }
  // Sweep every generation file for this artifact and any quarantined
  // twin — a quarantined generation was already dropped from the manifest,
  // so the entry list alone would miss it.
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string fname = entry.path().filename().string();
    const std::string prefix = name + ".g";
    if (fname.rfind(prefix, 0) != 0) continue;
    std::string digits = fname.substr(prefix.size());
    if (digits.size() > 8 && digits.ends_with(".corrupt")) {
      digits.resize(digits.size() - 8);
    }
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    std::error_code rm_ec;
    fs::remove(entry.path(), rm_ec);
  }
  fs::remove(dir_ + "/" + name, ec);  // legacy flat layout
  if (ec) {
    return Status::IOError("remove " + dir_ + "/" + name + ": " +
                           ec.message());
  }
  return Status::OK();
}

StatusOr<std::string> GenerationalStore::CurrentPath(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end() && !it->second.empty()) {
    // The caller is about to open this path outside the lock; start its
    // GC grace window so a concurrent Put cannot unlink it first.
    StampAccessLocked(name, it->second.back().gen);
    return GenPath(name, it->second.back().gen);
  }
  const std::string legacy = dir_ + "/" + name;
  std::error_code ec;
  if (fs::exists(legacy, ec)) return legacy;
  return Status::NotFound("artifact '" + name + "' has no generation in " +
                          dir_);
}

StatusOr<uint64_t> GenerationalStore::CurrentGeneration(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.empty()) {
    return Status::NotFound("artifact '" + name + "' has no generation in " +
                            dir_);
  }
  return it->second.back().gen;
}

Status GenerationalStore::Quarantine(const std::string& name, uint64_t gen) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!initialized_) {
    return Status::FailedPrecondition("GenerationalStore::Init not called");
  }
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.empty()) {
    return Status::NotFound("artifact '" + name + "' has no generation in " +
                            dir_);
  }
  std::vector<GenerationEntry>& gens = it->second;
  auto target = std::find_if(
      gens.begin(), gens.end(),
      [gen](const GenerationEntry& e) { return e.gen == gen; });
  if (target == gens.end()) {
    return Status::NotFound(StrFormat(
        "artifact '%s' has no committed generation %llu", name.c_str(),
        static_cast<unsigned long long>(gen)));
  }
  if (gens.size() == 1) {
    return Status::FailedPrecondition(StrFormat(
        "refusing to quarantine generation %llu of '%s': it is the only "
        "committed generation (a rollback would have nothing to land on)",
        static_cast<unsigned long long>(gen), name.c_str()));
  }
  const std::string path = GenPath(name, gen);
  CEAFF_LOG(Warning) << "quarantining generation " << path
                     << " as .corrupt by external verdict (canary rollback)";
  std::error_code ec;
  fs::rename(path, path + ".corrupt", ec);
  if (ec) {
    return Status::IOError("rename " + path + " -> " + path +
                           ".corrupt: " + ec.message());
  }
  gens.erase(target);
  // Commit point: the manifest no longer lists the quarantined generation,
  // so the next reader's newest-first walk starts at the survivor.
  return CommitManifestLocked();
}

std::vector<uint64_t> GenerationalStore::Generations(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> gens;
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    for (const GenerationEntry& e : it->second) gens.push_back(e.gen);
  }
  return gens;
}

}  // namespace ceaff
