#ifndef CEAFF_COMMON_RETRY_H_
#define CEAFF_COMMON_RETRY_H_

#include <cstdint>

#include "ceaff/common/random.h"
#include "ceaff/common/status.h"

namespace ceaff {

struct RetryOptions {
  /// Total tries, including the first attempt. 1 disables retries.
  int max_attempts = 3;
  int64_t initial_backoff_ms = 1;
  int64_t max_backoff_ms = 50;
  double multiplier = 2.0;
  /// Backoff is multiplied by a uniform factor in [1-jitter, 1+jitter) so
  /// a burst of sheds does not retry in lockstep. Must be in [0, 1].
  double jitter = 0.5;
};

/// Capped exponential backoff with jitter, retrying only kUnavailable —
/// the one code in the Status set that promises transience (a shed, a
/// saturated queue, an open circuit breaker). Everything else (NotFound,
/// InvalidArgument, DeadlineExceeded, ...) is either permanent or made
/// strictly worse by retrying against the same deadline.
///
/// Stateless and thread-safe: attempt bookkeeping lives at the call site,
/// randomness comes from the caller's Rng (workers pass ThreadLocalRng()).
class RetryPolicy {
 public:
  explicit RetryPolicy(const RetryOptions& options = {})
      : options_(options) {}

  /// True when `status` is worth another try after `attempts_done`
  /// attempts have already been made.
  bool ShouldRetry(const Status& status, int attempts_done) const {
    return status.code() == StatusCode::kUnavailable &&
           attempts_done < options_.max_attempts;
  }

  /// Backoff before retry number `attempt` (0-based: the wait after the
  /// first failure is attempt 0). Exponential in `multiplier`, capped at
  /// `max_backoff_ms`, jittered via `rng` (nullptr = no jitter).
  int64_t BackoffMillis(int attempt, Rng* rng) const;

  const RetryOptions& options() const { return options_; }

 private:
  const RetryOptions options_;
};

}  // namespace ceaff

#endif  // CEAFF_COMMON_RETRY_H_
