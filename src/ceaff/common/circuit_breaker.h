#ifndef CEAFF_COMMON_CIRCUIT_BREAKER_H_
#define CEAFF_COMMON_CIRCUIT_BREAKER_H_

#include <atomic>
#include <cstdint>
#include <mutex>

namespace ceaff {

/// Classic three-state circuit breaker for an operation that can fail
/// repeatedly and expensively (the serving use case: hot-reloading an
/// index artifact that keeps failing its checksum — each attempt reads and
/// CRCs the whole file just to be refused again).
///
///   kClosed    normal operation; consecutive failures are counted.
///   kOpen      `failure_threshold` consecutive failures seen: requests
///              are refused without doing the work until `cooldown_ns`
///              elapses.
///   kHalfOpen  cooldown elapsed: exactly one probe request is let
///              through. Success closes the breaker; failure reopens it
///              for another full cooldown.
///
/// Like AdmissionController, the caller supplies steady-clock timestamps
/// so tests run on virtual time. Thread-safe.
class CircuitBreaker {
 public:
  struct Options {
    /// Consecutive failures that trip the breaker open.
    int failure_threshold = 3;
    /// How long the breaker stays open before allowing a probe.
    uint64_t cooldown_ns = 10'000'000'000ull;  // 10 s
  };

  enum class State { kClosed, kOpen, kHalfOpen };

  // Split constructors: GCC cannot use a nested struct with default member
  // initializers as a `= {}` default inside the enclosing class.
  CircuitBreaker();
  explicit CircuitBreaker(const Options& options);

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// True when the caller may attempt the operation now. While open this
  /// returns false until the cooldown elapses, then admits exactly one
  /// probe (further callers get false until that probe reports back).
  /// Every Allow() == true MUST be followed by RecordSuccess() or
  /// RecordFailure().
  bool Allow(uint64_t now_ns);

  void RecordSuccess();
  void RecordFailure(uint64_t now_ns);

  State state(uint64_t now_ns) const;

  int consecutive_failures() const;
  /// How many times the breaker has tripped open (monotonic).
  uint64_t times_opened() const {
    return times_opened_.load(std::memory_order_relaxed);
  }

 private:
  const Options options_;

  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  /// When the open state may transition to half-open.
  uint64_t open_until_ns_ = 0;
  /// A half-open probe has been admitted and has not reported back yet.
  bool probe_in_flight_ = false;

  std::atomic<uint64_t> times_opened_{0};
};

inline CircuitBreaker::CircuitBreaker(const Options& options)
    : options_(options) {}
inline CircuitBreaker::CircuitBreaker() : CircuitBreaker(Options()) {}

}  // namespace ceaff

#endif  // CEAFF_COMMON_CIRCUIT_BREAKER_H_
