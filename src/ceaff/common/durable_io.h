#ifndef CEAFF_COMMON_DURABLE_IO_H_
#define CEAFF_COMMON_DURABLE_IO_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ceaff/common/statusor.h"

namespace ceaff {

/// Crash-consistent file primitives. Everything here follows one write
/// protocol, in this exact order:
///
///   1. create `<path>.tmp.<pid>.<seq>` (unique per process AND per call —
///      two concurrent writers to the same path can never clobber each
///      other's temp file)
///   2. write the full payload
///   3. fsync(tmp)              — payload bytes are on stable storage
///   4. rename(tmp, path)       — atomic publish (POSIX rename semantics)
///   5. fsync(parent directory) — the *name* is on stable storage
///
/// A crash (kill -9, power cut) at any point leaves either the old file or
/// the new file under `path`, never a mixture and never a half-written
/// file under the final name; once step 5 returns, the new file survives
/// any crash. Every failure path unlinks the temp file.
///
/// Each step is instrumented with a failpoint (common/failpoint.h) named
/// `<scope>.<step>`:
///
///   <scope>.before_tmp_write   before the temp file is created
///   <scope>.after_tmp_write    payload written, file NOT yet fsynced
///   <scope>.before_rename      file fsynced, rename not yet done
///   <scope>.before_dir_fsync   renamed, directory not yet fsynced
///
/// The site order is the syscall order — a crash failpoint at
/// `before_rename` proves the file fsync already happened when the rename
/// would have, which is the ordering the whole protocol rests on.

/// Atomically and durably replaces `path` with `bytes`. `scope` names the
/// failpoint family ("checkpoint", "index", "kg", ...). kIOError on any
/// filesystem failure (temp file removed).
Status WriteFileAtomic(const std::string& path, std::string_view bytes,
                       const std::string& scope = "durable");

/// Slurps a whole file. kIOError when it cannot be opened or read.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// fsyncs the directory itself (its entry table, not its files' contents).
Status FsyncDir(const std::string& dir);

/// Validates candidate artifact bytes before a generation is accepted;
/// non-OK means "corrupt, try the previous generation".
using ArtifactValidator = std::function<Status(const std::string& bytes)>;

/// Directory of named artifacts with numbered, CRC-checksummed
/// generations and a manifest as the commit point.
///
/// Layout under `dir`:
///
///   MANIFEST                committed state: one `<name> <gen> <size>
///                           <crc32>` line per retained generation,
///                           whole-file CRC trailer; written atomically
///                           via WriteFileAtomic
///   <name>.g<gen>           generation payload (opaque bytes)
///   <name>.g<gen>.corrupt   quarantined generation that failed its CRC
///                           or the caller's validator at read time
///
/// Commit protocol for Put(name, bytes): write the generation file with
/// the full atomic protocol above, then rewrite MANIFEST (same protocol),
/// then unlink generations that fell out of the keep window. The MANIFEST
/// rename is the commit point: a crash before it loses only the
/// uncommitted new generation (the previous one is still listed and
/// intact); a crash after it can lose only already-superseded
/// generations.
///
/// Read protocol for Get(name): walk the manifest's generations newest
/// first; for each, check size + CRC against the manifest entry and run
/// the caller's validator. A generation failing either check is renamed
/// to `*.corrupt` (quarantined, with a kDataLoss warning logged) and the
/// next-older generation is tried. Only when no listed generation
/// survives does Get fail with kDataLoss — torn or bit-flipped files
/// degrade to older data, never to an error-on-arrival, and never to
/// silently wrong bytes.
///
/// A missing or corrupt MANIFEST (bit flip — atomic writes make torn
/// manifests unreachable) is itself recoverable: Init quarantines it and
/// rebuilds from the `<name>.g<gen>` files on disk. Rebuilt entries carry
/// no expected CRC, so reads then rely on the caller's validator alone
/// (every CEAFF artifact format is internally checksummed).
///
/// Thread-safe; one instance per directory (two instances GC'ing the same
/// directory are not coordinated).
class GenerationalStore {
 public:
  struct Options {
    /// Newest generations of each artifact kept on disk. Two = the
    /// committed one plus one fallback for torn-write recovery.
    size_t keep_generations = 2;
    /// Failpoint scope for generation-file writes; manifest writes use
    /// `<scope>.manifest`.
    std::string failpoint_scope = "durable";
    /// Grace window protecting concurrent readers from GC. A generation
    /// whose path was handed out by Get/CurrentPath within this window is
    /// not unlinked even when it falls out of the keep window — it leaves
    /// the manifest immediately (new readers never see it) but stays on
    /// disk until the window expires, so a reader that resolved the path
    /// just before a Put can still open and read it. Expired stragglers
    /// are swept by the next Put's GC pass. Zero disables the grace.
    std::chrono::milliseconds gc_grace{5000};
  };

  explicit GenerationalStore(std::string dir);
  GenerationalStore(std::string dir, Options options);

  /// Creates the directory, loads (or rebuilds) the manifest, and sweeps
  /// temp files a previous crashed writer left behind.
  Status Init();

  const std::string& dir() const { return dir_; }

  /// Durably publishes `bytes` as the next generation of `name`.
  Status Put(const std::string& name, std::string_view bytes);

  /// Newest valid generation's bytes (see the read protocol above).
  /// kNotFound when the artifact has no committed generation at all;
  /// kDataLoss when generations exist but every one is corrupt.
  StatusOr<std::string> Get(const std::string& name,
                            const ArtifactValidator& validate = nullptr);

  /// Whether any committed generation of `name` exists (no validation).
  bool Has(const std::string& name) const;

  /// Drops every generation of `name` (quarantined files included) and
  /// commits the removal to the manifest.
  Status Remove(const std::string& name);

  /// Path of the newest committed generation. kNotFound when absent.
  StatusOr<std::string> CurrentPath(const std::string& name) const;

  /// Number of the newest committed generation. kNotFound when absent.
  StatusOr<uint64_t> CurrentGeneration(const std::string& name) const;

  /// Quarantines generation `gen` of `name`: renames the file to
  /// `*.corrupt` and commits its removal from the manifest, exactly what
  /// Get() does to a generation that fails validation — but driven by an
  /// external verdict (a serving canary that watched the generation
  /// misbehave in production rather than fail a checksum). Refuses
  /// (kFailedPrecondition) to quarantine the ONLY committed generation:
  /// an automatic rollback must land on something, and a store with no
  /// committed generations serves nothing at all. kNotFound when `gen` is
  /// not committed.
  Status Quarantine(const std::string& name, uint64_t gen);

  /// Committed generation numbers of `name`, oldest first (tests).
  std::vector<uint64_t> Generations(const std::string& name) const;

 private:
  struct GenerationEntry {
    uint64_t gen = 0;
    uint64_t size = 0;
    uint32_t crc = 0;
    /// False for entries rebuilt by scanning a manifest-less directory:
    /// size/crc are unknown and reads trust the caller's validator.
    bool has_crc = true;
  };

  std::string GenPath(const std::string& name, uint64_t gen) const;
  std::string ManifestPath() const;
  /// Serialises and atomically writes the manifest. Caller holds mu_.
  Status CommitManifestLocked();
  /// Loads MANIFEST into entries_; rebuilds from a directory scan when the
  /// manifest is missing or corrupt. Caller holds mu_.
  Status LoadOrRebuildManifestLocked();
  /// Unlinks generations beyond the keep window. Caller holds mu_.
  void GcLocked(const std::string& name);
  /// Records that a reader was handed generation `gen` of `name` (starts
  /// its GC grace window). Caller holds mu_.
  void StampAccessLocked(const std::string& name, uint64_t gen) const;
  /// Whether the grace window of (name, gen) is still running; expired
  /// stamps are erased as a side effect. Caller holds mu_.
  bool InGraceLocked(const std::string& name, uint64_t gen) const;

  std::string dir_;
  Options options_;
  mutable std::mutex mu_;
  /// name -> committed generations, oldest first.
  std::map<std::string, std::vector<GenerationEntry>> entries_;
  /// (name, gen) -> last time a reader resolved that generation; consulted
  /// by GcLocked so unlinks never race an in-flight read.
  mutable std::map<std::pair<std::string, uint64_t>,
                   std::chrono::steady_clock::time_point>
      access_stamps_;
  bool initialized_ = false;
};

}  // namespace ceaff

#endif  // CEAFF_COMMON_DURABLE_IO_H_
