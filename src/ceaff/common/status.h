#ifndef CEAFF_COMMON_STATUS_H_
#define CEAFF_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace ceaff {

/// Error category carried by a Status. Mirrors the RocksDB/Arrow convention
/// of a small closed set of codes plus a free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kIOError = 7,
  kUnimplemented = 8,
  kCancelled = 9,
  kDeadlineExceeded = 10,
  /// Unrecoverable corruption of stored data (bad checksum, truncated or
  /// garbled artifact). Distinct from kIOError (the OS-level failure to
  /// read/write at all): kDataLoss means the bytes were read fine but are
  /// not what was written.
  kDataLoss = 11,
  /// The service exists and is healthy but declined the work right now —
  /// load shed, degraded tier cannot answer, circuit breaker open. The
  /// defining property is *transience*: retrying later (with backoff) is
  /// reasonable, unlike every other non-OK code in this set.
  kUnavailable = 12,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. Library code never throws; fallible
/// functions return Status (or StatusOr<T> when they produce a value).
///
/// The class is cheap to copy in the OK case (no allocation) and stores the
/// message inline otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace ceaff

/// Propagates a non-OK Status to the caller. Usable in any function that
/// returns Status.
#define CEAFF_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::ceaff::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

/// Evaluates an expression yielding StatusOr<T>; on error propagates the
/// Status, otherwise moves the value into `lhs`.
#define CEAFF_ASSIGN_OR_RETURN(lhs, expr)               \
  CEAFF_ASSIGN_OR_RETURN_IMPL(                          \
      CEAFF_STATUS_CONCAT(_status_or, __LINE__), lhs, expr)

#define CEAFF_ASSIGN_OR_RETURN_IMPL(var, lhs, expr) \
  auto var = (expr);                                \
  if (!var.ok()) return var.status();               \
  lhs = std::move(var).value()

#define CEAFF_STATUS_CONCAT(a, b) CEAFF_STATUS_CONCAT_IMPL(a, b)
#define CEAFF_STATUS_CONCAT_IMPL(a, b) a##b

#endif  // CEAFF_COMMON_STATUS_H_
