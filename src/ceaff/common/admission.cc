#include "ceaff/common/admission.h"

#include <cmath>
#include <cstdint>

namespace ceaff {

AdmissionController::Decision AdmissionController::Admit(
    uint64_t now_ns, uint64_t queue_delay_ns, uint64_t p99_service_ns,
    int64_t remaining_deadline_ns) {
  // Deadline check first: it is per-request and does not touch CoDel state.
  if (remaining_deadline_ns != INT64_MAX && remaining_deadline_ns > 0 &&
      p99_service_ns > 0) {
    const double needed =
        options_.deadline_headroom *
        (static_cast<double>(p99_service_ns) +
         static_cast<double>(queue_delay_ns));
    if (static_cast<double>(remaining_deadline_ns) < needed) {
      rejected_deadline_.fetch_add(1, std::memory_order_relaxed);
      return Decision::kRejectDeadline;
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (queue_delay_ns < options_.target_delay_ns) {
    // Delay is healthy: leave (or reset) the shedding state entirely.
    first_above_ns_ = 0;
    shedding_ = false;
    shed_count_ = 0;
    admitted_.fetch_add(1, std::memory_order_relaxed);
    return Decision::kAdmit;
  }

  if (first_above_ns_ == 0) {
    // First observation above target: give the delay one full interval to
    // recover before declaring overload.
    first_above_ns_ = now_ns + options_.interval_ns;
    admitted_.fetch_add(1, std::memory_order_relaxed);
    return Decision::kAdmit;
  }
  if (now_ns < first_above_ns_) {
    admitted_.fetch_add(1, std::memory_order_relaxed);
    return Decision::kAdmit;
  }

  // Delay has been above target for a full interval: shed on the CoDel
  // cadence — immediately on entry, then at interval / sqrt(count).
  if (!shedding_) {
    shedding_ = true;
    shed_count_ = 0;
    next_shed_ns_ = now_ns;
  }
  if (now_ns >= next_shed_ns_) {
    ++shed_count_;
    next_shed_ns_ =
        now_ns + static_cast<uint64_t>(
                     static_cast<double>(options_.interval_ns) /
                     std::sqrt(static_cast<double>(shed_count_)));
    shed_overload_.fetch_add(1, std::memory_order_relaxed);
    return Decision::kShedOverload;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  return Decision::kAdmit;
}

bool AdmissionController::shedding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shedding_;
}

}  // namespace ceaff
