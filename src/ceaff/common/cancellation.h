#ifndef CEAFF_COMMON_CANCELLATION_H_
#define CEAFF_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "ceaff/common/status.h"

namespace ceaff {

/// Cooperative cancellation and deadline signal shared between a controller
/// (CLI signal handler, watchdog thread, test) and long-running library
/// loops (GCN epochs, Sinkhorn iterations, DAA proposal rounds, bootstrap
/// rounds).
///
/// The controller calls RequestCancel() and/or arms a deadline; workers
/// poll Check() once per iteration and propagate the returned non-OK
/// Status (kCancelled / kDeadlineExceeded) up their Status/StatusOr chain.
/// Polling an un-armed token is a pair of relaxed atomic loads, so kernels
/// can afford to poll every iteration.
///
/// All members are thread-safe: a token may be cancelled from a different
/// thread (or a signal handler — RequestCancel is async-signal-safe) while
/// workers poll it.
class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancellationToken() = default;

  /// Non-copyable (identity type: workers hold a pointer to the one
  /// controller-owned instance).
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Signals cancellation. Idempotent; never blocks.
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms (or re-arms) a deadline `ms` milliseconds from now. A
  /// non-positive value expires immediately.
  void SetDeadlineAfterMillis(int64_t ms) {
    deadline_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            (Clock::now() + std::chrono::milliseconds(ms)).time_since_epoch())
            .count(),
        std::memory_order_relaxed);
  }

  /// Removes a previously armed deadline (cancellation requests persist).
  void ClearDeadline() {
    deadline_ns_.store(kNoDeadline, std::memory_order_relaxed);
  }

  /// Re-arms the token for a fresh run: clears both the cancel flag and
  /// the deadline.
  void Reset() {
    cancelled_.store(false, std::memory_order_relaxed);
    ClearDeadline();
  }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != kNoDeadline;
  }

  /// Nanoseconds left before the armed deadline — negative once it has
  /// passed, INT64_MAX when no deadline is armed. Admission control uses
  /// this as the request's remaining budget: a request that cannot finish
  /// inside it is rejected before any work is queued.
  int64_t RemainingNanos() const {
    const int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d == kNoDeadline) return INT64_MAX;
    return d - std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Clock::now().time_since_epoch())
                   .count();
  }

  /// True when the armed deadline has passed (false when none armed).
  bool deadline_expired() const {
    int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d == kNoDeadline) return false;
    return Clock::now().time_since_epoch() >= std::chrono::nanoseconds(d);
  }

  /// OK while the operation may continue; kCancelled after RequestCancel(),
  /// kDeadlineExceeded once the deadline passes. `where` names the polling
  /// loop in the error message ("gcn epoch", "sinkhorn", ...).
  Status Check(const char* where = "") const {
    if (cancel_requested()) {
      return Status::Cancelled(std::string("cancellation requested") +
                               (*where ? std::string(" during ") + where
                                       : std::string()));
    }
    if (deadline_expired()) {
      return Status::DeadlineExceeded(std::string("deadline exceeded") +
                                      (*where ? std::string(" during ") + where
                                              : std::string()));
    }
    return Status::OK();
  }

 private:
  static constexpr int64_t kNoDeadline = INT64_MIN;

  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
};

/// Polls a possibly-null token: library loops take `const CancellationToken*
/// cancel = nullptr` and call this each iteration; null means "never
/// cancelled" and costs one branch.
inline Status CheckCancel(const CancellationToken* token,
                          const char* where = "") {
  return token == nullptr ? Status::OK() : token->Check(where);
}

}  // namespace ceaff

#endif  // CEAFF_COMMON_CANCELLATION_H_
