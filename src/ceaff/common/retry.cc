#include "ceaff/common/retry.h"

#include <algorithm>
#include <cmath>

namespace ceaff {

int64_t RetryPolicy::BackoffMillis(int attempt, Rng* rng) const {
  if (attempt < 0) attempt = 0;
  double backoff = static_cast<double>(options_.initial_backoff_ms) *
                   std::pow(options_.multiplier, static_cast<double>(attempt));
  backoff = std::min(backoff, static_cast<double>(options_.max_backoff_ms));
  if (rng != nullptr && options_.jitter > 0.0) {
    const double factor =
        1.0 + options_.jitter * (2.0 * rng->NextDouble() - 1.0);
    backoff *= factor;
  }
  backoff = std::clamp(backoff, 0.0,
                       static_cast<double>(options_.max_backoff_ms));
  return static_cast<int64_t>(backoff);
}

}  // namespace ceaff
