#ifndef CEAFF_COMMON_STATUSOR_H_
#define CEAFF_COMMON_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "ceaff/common/status.h"

namespace ceaff {

/// Either a value of type T or a non-OK Status explaining why the value is
/// absent. The usual return type for fallible factory/compute functions.
///
/// Invariant: exactly one of {status is non-OK, value is present} holds.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. `status` must not be OK — an OK
  /// status without a value would violate the class invariant.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  StatusOr(T value)  // NOLINT
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Pre-condition: ok(). Accessing the value of an errored StatusOr is a
  /// programming error (asserted in debug builds).
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if ok, otherwise `fallback`.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ceaff

#endif  // CEAFF_COMMON_STATUSOR_H_
