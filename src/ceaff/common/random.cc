#include "ceaff/common/random.h"

#include <atomic>
#include <cmath>
#include <cstring>

namespace ceaff {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

uint64_t Rng::SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

Rng::Rng(uint64_t seed) {
  // Seed the xoshiro state from SplitMix64 as recommended by its authors.
  uint64_t x = seed;
  for (auto& s : s_) {
    x = SplitMix64(x);
    s = x;
  }
  // All-zero state is invalid for xoshiro.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextU64() {
  // xoshiro256**
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire-style rejection to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1, u2;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::NextTruncatedNormal(double mean, double stddev) {
  for (;;) {
    double g = NextGaussian();
    if (g >= -2.0 && g <= 2.0) return mean + stddev * g;
  }
}

Rng Rng::Fork() {
  // Derive a child seed from two fresh outputs so parent and child streams
  // do not overlap in practice.
  uint64_t a = NextU64();
  uint64_t b = NextU64();
  return Rng(SplitMix64(a ^ Rotl(b, 31)));
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  // Partial Fisher–Yates: only the first k positions need to be randomised.
  for (size_t i = 0; i < k && i + 1 < n; ++i) {
    size_t j = i + static_cast<size_t>(NextBounded(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng& ThreadLocalRng() {
  static std::atomic<uint64_t> next_stream{0x5eedba5eu};
  thread_local Rng rng(
      Rng::SplitMix64(next_stream.fetch_add(1, std::memory_order_relaxed)));
  return rng;
}

uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ull ^ seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return Rng::SplitMix64(h);
}

}  // namespace ceaff
