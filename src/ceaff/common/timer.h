#ifndef CEAFF_COMMON_TIMER_H_
#define CEAFF_COMMON_TIMER_H_

#include <chrono>

namespace ceaff {

/// Monotonic wall-clock stopwatch for coarse experiment timing.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ceaff

#endif  // CEAFF_COMMON_TIMER_H_
