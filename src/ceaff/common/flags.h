#ifndef CEAFF_COMMON_FLAGS_H_
#define CEAFF_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "ceaff/common/statusor.h"

namespace ceaff {

/// Minimal command-line parser for the CLI tools: positional arguments
/// plus `--name value` / `--name=value` flags. No registration step —
/// callers query typed getters with defaults and may ask which flags were
/// never read (to reject typos).
class FlagParser {
 public:
  /// Parses argv[1..). A standalone `--` ends flag parsing; later tokens
  /// are positional. Returns InvalidArgument for a flag missing its value.
  static StatusOr<FlagParser> Parse(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& name) const { return flags_.count(name) > 0; }

  /// Typed getters; the default is returned when the flag is absent.
  /// Malformed numerics return the default as well (the CLI treats flags
  /// as best-effort configuration).
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  int64_t GetInt(const std::string& name, int64_t fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  /// Flags that were parsed but never queried — typo detection.
  std::vector<std::string> UnreadFlags() const;

 private:
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> read_;
  std::vector<std::string> positional_;
};

}  // namespace ceaff

#endif  // CEAFF_COMMON_FLAGS_H_
