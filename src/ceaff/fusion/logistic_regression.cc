#include "ceaff/fusion/logistic_regression.h"

#include <cmath>

#include "ceaff/la/ops.h"

namespace ceaff::fusion {

namespace {
double Sigmoid(double x) {
  if (x >= 0) {
    double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(x);
  return e / (1.0 + e);
}
}  // namespace

Status LogisticRegressionFusion::Train(
    const std::vector<const la::Matrix*>& features,
    const std::vector<kg::AlignmentPair>& seeds) {
  if (features.empty()) {
    return Status::InvalidArgument("no feature matrices given");
  }
  for (const la::Matrix* f : features) {
    if (!f->SameShape(*features[0])) {
      return Status::InvalidArgument("feature matrices differ in shape");
    }
  }
  if (seeds.empty()) {
    return Status::InvalidArgument("LR fusion needs seed pairs");
  }
  const size_t k = features.size();
  const size_t n_targets = features[0]->cols();

  // Assemble the training design matrix: one row of per-feature scores per
  // (source, target) example.
  std::vector<std::vector<double>> xs;
  std::vector<int> ys;
  Rng rng(options_.seed);
  for (const kg::AlignmentPair& p : seeds) {
    std::vector<double> row(k);
    for (size_t f = 0; f < k; ++f) row[f] = features[f]->at(p.source, p.target);
    xs.push_back(row);
    ys.push_back(1);
    for (size_t j = 0; j < options_.negatives_per_positive; ++j) {
      uint32_t neg = static_cast<uint32_t>(rng.NextBounded(n_targets));
      if (neg == p.target) neg = (neg + 1) % n_targets;
      std::vector<double> nrow(k);
      for (size_t f = 0; f < k; ++f) nrow[f] = features[f]->at(p.source, neg);
      xs.push_back(nrow);
      ys.push_back(0);
    }
  }

  coef_.assign(k, 0.0);
  intercept_ = 0.0;
  const double inv_n = 1.0 / static_cast<double>(xs.size());
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    std::vector<double> grad(k, 0.0);
    double grad_b = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
      double z = intercept_;
      for (size_t f = 0; f < k; ++f) z += coef_[f] * xs[i][f];
      double err = Sigmoid(z) - ys[i];
      for (size_t f = 0; f < k; ++f) grad[f] += err * xs[i][f];
      grad_b += err;
    }
    for (size_t f = 0; f < k; ++f) {
      grad[f] = grad[f] * inv_n + options_.l2 * coef_[f];
      coef_[f] -= options_.learning_rate * grad[f];
    }
    intercept_ -= options_.learning_rate * grad_b * inv_n;
  }
  return Status::OK();
}

std::vector<double> LogisticRegressionFusion::FusionWeights() const {
  std::vector<double> w(coef_.size(), 0.0);
  double total = 0.0;
  for (size_t f = 0; f < coef_.size(); ++f) {
    w[f] = coef_[f] > 0.0 ? coef_[f] : 0.0;
    total += w[f];
  }
  if (total <= 0.0) {
    // Degenerate fit: no feature received positive evidence — fall back to
    // uniform weights rather than a zero matrix.
    for (double& x : w) x = 1.0 / static_cast<double>(w.empty() ? 1 : w.size());
  } else {
    for (double& x : w) x /= total;
  }
  return w;
}

StatusOr<la::Matrix> LogisticRegressionFusion::Fuse(
    const std::vector<const la::Matrix*>& features) const {
  if (features.size() != coef_.size()) {
    return Status::FailedPrecondition(
        "Fuse called with a different feature count than Train");
  }
  return la::WeightedSum(features, FusionWeights());
}

}  // namespace ceaff::fusion
