#ifndef CEAFF_FUSION_LOGISTIC_REGRESSION_H_
#define CEAFF_FUSION_LOGISTIC_REGRESSION_H_

#include <cstdint>
#include <vector>

#include "ceaff/common/random.h"
#include "ceaff/common/statusor.h"
#include "ceaff/kg/knowledge_graph.h"
#include "ceaff/la/matrix.h"

namespace ceaff::fusion {

/// The learning-based weighting baseline of Sec. VII-E ("LR" row of
/// Table V): EA as binary classification over per-feature similarity
/// scores, fit with logistic regression, learned coefficients reused as
/// fusion weights.
struct LrOptions {
  /// Negatives sampled per positive seed pair (paper: 10).
  size_t negatives_per_positive = 10;
  float learning_rate = 0.1f;
  size_t epochs = 200;
  float l2 = 1e-4f;
  uint64_t seed = 29;
};

class LogisticRegressionFusion {
 public:
  explicit LogisticRegressionFusion(const LrOptions& options = {})
      : options_(options) {}

  /// Builds the training set from `seeds` (positives labelled 1; negatives
  /// from target corruption labelled 0) and fits the model. `features` are
  /// the full similarity matrices, all the same shape.
  Status Train(const std::vector<const la::Matrix*>& features,
               const std::vector<kg::AlignmentPair>& seeds);

  /// Learned coefficient per feature (available after Train).
  const std::vector<double>& coefficients() const { return coef_; }
  double intercept() const { return intercept_; }

  /// Coefficients clamped at zero and normalised to sum 1 — the fusion
  /// weights actually applied to the matrices.
  std::vector<double> FusionWeights() const;

  /// fused = Σ_k FusionWeights()[k] · M_k.
  StatusOr<la::Matrix> Fuse(
      const std::vector<const la::Matrix*>& features) const;

 private:
  LrOptions options_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

}  // namespace ceaff::fusion

#endif  // CEAFF_FUSION_LOGISTIC_REGRESSION_H_
