#include "ceaff/fusion/adaptive_fusion.h"

#include <map>
#include <set>
#include <utility>

#include "ceaff/la/ops.h"

namespace ceaff::fusion {

std::vector<Correspondence> FindConfidentCorrespondences(const la::Matrix& m) {
  std::vector<size_t> row_best = la::RowArgmax(m);
  std::vector<size_t> col_best = la::ColArgmax(m);
  std::vector<Correspondence> out;
  for (size_t i = 0; i < m.rows(); ++i) {
    size_t j = row_best[i];
    if (col_best[j] == i) {
      out.push_back({static_cast<uint32_t>(i), static_cast<uint32_t>(j),
                     m.at(i, j)});
    }
  }
  return out;
}

StatusOr<FeatureWeightReport> ComputeAdaptiveWeights(
    const std::vector<const la::Matrix*>& features,
    const FusionOptions& options) {
  if (features.empty()) {
    return Status::InvalidArgument("no feature matrices given");
  }
  for (const la::Matrix* f : features) {
    if (!f->SameShape(*features[0])) {
      return Status::InvalidArgument("feature matrices differ in shape");
    }
  }
  const size_t k = features.size();
  FeatureWeightReport report;
  report.candidates.resize(k);
  for (size_t f = 0; f < k; ++f) {
    report.candidates[f] = FindConfidentCorrespondences(*features[f]);
  }

  // Index candidates by source entity (to detect conflicts) and by (source,
  // target) pair (to count sharing features).
  std::map<uint32_t, std::set<uint32_t>> targets_of_source;
  std::map<std::pair<uint32_t, uint32_t>, size_t> share_count;
  for (size_t f = 0; f < k; ++f) {
    for (const Correspondence& c : report.candidates[f]) {
      targets_of_source[c.source].insert(c.target);
      share_count[{c.source, c.target}]++;
    }
  }

  // Stage 2 — filtering: conflicting candidates for a source entity are all
  // pruned; candidates found by every feature are pruned as well.
  report.retained.resize(k);
  for (size_t f = 0; f < k; ++f) {
    for (const Correspondence& c : report.candidates[f]) {
      if (targets_of_source[c.source].size() > 1) continue;  // conflict
      size_t n = share_count[{c.source, c.target}];
      if (n == k && k > 1) continue;  // shared by all features
      report.retained[f].push_back(c);
    }
  }

  // Stages 3 & 4 — correspondence weights and feature weighting scores.
  report.scores.assign(k, 0.0);
  for (size_t f = 0; f < k; ++f) {
    for (const Correspondence& c : report.retained[f]) {
      size_t n = share_count[{c.source, c.target}];
      double w = 1.0 / static_cast<double>(n);
      if (options.use_score_clamp && c.score > options.theta1) {
        w = options.theta2;
      }
      report.scores[f] += w;
    }
  }
  double total = 0.0;
  for (double s : report.scores) total += s;
  report.weights.assign(k, 0.0);
  if (total <= 0.0) {
    // No discriminative evidence — degrade gracefully to uniform weights.
    for (double& w : report.weights) w = 1.0 / static_cast<double>(k);
  } else {
    for (size_t f = 0; f < k; ++f) report.weights[f] = report.scores[f] / total;
  }
  return report;
}

StatusOr<la::Matrix> AdaptiveFuse(
    const std::vector<const la::Matrix*>& features,
    const FusionOptions& options, FeatureWeightReport* report) {
  CEAFF_ASSIGN_OR_RETURN(FeatureWeightReport rep,
                         ComputeAdaptiveWeights(features, options));
  la::Matrix fused = la::WeightedSum(features, rep.weights);
  if (report != nullptr) *report = std::move(rep);
  return fused;
}

StatusOr<la::Matrix> FixedFuse(
    const std::vector<const la::Matrix*>& features) {
  if (features.empty()) {
    return Status::InvalidArgument("no feature matrices given");
  }
  std::vector<double> weights(features.size(),
                              1.0 / static_cast<double>(features.size()));
  return la::WeightedSum(features, weights);
}

StatusOr<TwoStageFusionResult> TwoStageFuse(const la::Matrix& structural,
                                            const la::Matrix& semantic,
                                            const la::Matrix& string_sim,
                                            const FusionOptions& options) {
  TwoStageFusionResult result;
  FeatureWeightReport rep1;
  CEAFF_ASSIGN_OR_RETURN(
      result.textual,
      AdaptiveFuse({&semantic, &string_sim}, options, &rep1));
  result.textual_weights = rep1.weights;
  FeatureWeightReport rep2;
  CEAFF_ASSIGN_OR_RETURN(
      result.fused,
      AdaptiveFuse({&structural, &result.textual}, options, &rep2));
  result.final_weights = rep2.weights;
  return result;
}

}  // namespace ceaff::fusion
