#ifndef CEAFF_FUSION_ADAPTIVE_FUSION_H_
#define CEAFF_FUSION_ADAPTIVE_FUSION_H_

#include <cstdint>
#include <vector>

#include "ceaff/common/statusor.h"
#include "ceaff/la/matrix.h"

namespace ceaff::fusion {

/// A confident correspondence: a cell that is the maximum of both its row
/// and its column in one feature's similarity matrix (Sec. V, stage 1).
struct Correspondence {
  uint32_t source;
  uint32_t target;
  float score;

  bool operator==(const Correspondence& other) const {
    return source == other.source && target == other.target;
  }
};

/// Parameters of the adaptive fusion strategy. Paper defaults: θ1 = 0.98,
/// θ2 = 0.1 (tuned on validation data, Sec. VII-A).
struct FusionOptions {
  /// Correspondences whose score exceeds θ1 get their weight clamped...
  double theta1 = 0.98;
  /// ...to θ2, preventing one dominant feature from starving the rest.
  double theta2 = 0.1;
  /// Disable to reproduce the Table V "w/o θ1, θ2" ablation row.
  bool use_score_clamp = true;
};

/// Per-feature outcome of the weight computation, for inspection/demos.
struct FeatureWeightReport {
  /// Candidate confident correspondences found in each feature matrix.
  std::vector<std::vector<Correspondence>> candidates;
  /// Candidates surviving both filtering rules, per feature.
  std::vector<std::vector<Correspondence>> retained;
  /// Weighting score (sum of retained correspondence weights) per feature.
  std::vector<double> scores;
  /// Final normalised feature weights (sum to 1).
  std::vector<double> weights;
};

/// Stage 1 — finds all cells of `m` that are simultaneously row- and
/// column-maxima. Ties are resolved to the first (lowest-index) maximum so
/// results are deterministic.
std::vector<Correspondence> FindConfidentCorrespondences(const la::Matrix& m);

/// Stages 1–4 — computes adaptive feature weights for `features` (all the
/// same shape). When every retained set is empty (or candidates only exist
/// for no feature) the weights fall back to uniform, which keeps the
/// pipeline total and matches the fixed-weight baseline in that regime.
///
/// Filtering rules (Sec. V, stage 2):
///  * candidates for the same source entity that disagree on the target
///    across features are all dropped;
///  * a candidate shared by *all* features is dropped (it cannot
///    discriminate between them).
/// Correspondence weight (stage 3): 1/n when shared by n features; clamped
/// to θ2 for the instances whose own score exceeds θ1 (when enabled).
StatusOr<FeatureWeightReport> ComputeAdaptiveWeights(
    const std::vector<const la::Matrix*>& features,
    const FusionOptions& options = {});

/// Stages 1–5 — fused = Σ_k w_k · M_k using adaptive weights. If `report`
/// is non-null the full weight computation is copied out.
StatusOr<la::Matrix> AdaptiveFuse(
    const std::vector<const la::Matrix*>& features,
    const FusionOptions& options = {}, FeatureWeightReport* report = nullptr);

/// Equal-weight fusion (the Table V "w/o AFF" baseline).
StatusOr<la::Matrix> FixedFuse(const std::vector<const la::Matrix*>& features);

/// Result of the paper's two-stage pipeline: Mn ⊕ Ml → textual, then
/// Ms ⊕ textual → fused (Fig. 2).
struct TwoStageFusionResult {
  la::Matrix textual;
  la::Matrix fused;
  /// Weights of (Mn, Ml) in stage one.
  std::vector<double> textual_weights;
  /// Weights of (Ms, textual) in stage two.
  std::vector<double> final_weights;
};

/// Runs the two-stage adaptive fusion over the three CEAFF features.
StatusOr<TwoStageFusionResult> TwoStageFuse(const la::Matrix& structural,
                                            const la::Matrix& semantic,
                                            const la::Matrix& string_sim,
                                            const FusionOptions& options = {});

}  // namespace ceaff::fusion

#endif  // CEAFF_FUSION_ADAPTIVE_FUSION_H_
