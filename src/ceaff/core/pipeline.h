#ifndef CEAFF_CORE_PIPELINE_H_
#define CEAFF_CORE_PIPELINE_H_

#include <functional>
#include <string>
#include <vector>

#include "ceaff/common/cancellation.h"
#include "ceaff/common/statusor.h"
#include "ceaff/embed/gcn.h"
#include "ceaff/eval/metrics.h"
#include "ceaff/fusion/adaptive_fusion.h"
#include "ceaff/fusion/logistic_regression.h"
#include "ceaff/kg/adjacency.h"
#include "ceaff/kg/attribute_similarity.h"
#include "ceaff/kg/relation_similarity.h"
#include "ceaff/kg/knowledge_graph.h"
#include "ceaff/la/autotune.h"
#include "ceaff/la/matrix.h"
#include "ceaff/matching/matching.h"
#include "ceaff/matching/sinkhorn.h"
#include "ceaff/text/word_embedding.h"

namespace ceaff::core {

/// How the fused similarity matrix is produced (Sec. V / Sec. VII-E).
enum class FusionMode {
  kAdaptive,  // CEAFF's adaptive feature fusion (two-stage when 3 features)
  kFixed,     // equal weights — the "w/o AFF" ablation
  kLearned,   // logistic regression on seed pairs — the "LR" baseline
};

/// How EA decisions are made from the fused matrix (Sec. VI).
enum class DecisionMode {
  kCollective,     // stable matching via deferred acceptance (CEAFF)
  kIndependent,    // row-argmax, the "w/o C" ablation / prior-work default
  kHungarian,      // max-weight bipartite matching (Sec. VI discussion)
  kGreedyOneToOne,  // globally greedy one-to-one (extra design baseline)
  kSinkhorn,       // entropic transport plan + one-to-one decoding
};

/// Full configuration of a CEAFF run. Every Table V ablation is a toggle
/// here.
struct CeaffOptions {
  bool use_structural = true;  // Ms   ("w/o Ms" when false)
  bool use_semantic = true;    // Mn   ("w/o Mn")
  bool use_string = true;      // Ml   ("w/o Ml")
  /// Ma — the attribute extension feature (off by default: the paper's
  /// CEAFF uses exactly Ms/Mn/Ml; enabling this exercises the adaptive
  /// fusion with a fourth signal).
  bool use_attribute = false;
  kg::AttributeSimilarityOptions attribute;
  /// Mr — the relation-signature extension feature (off by default).
  bool use_relation = false;
  kg::RelationSimilarityOptions relation;
  /// Metric behind Ml: the paper's Levenshtein ratio (lev*, default) or
  /// the O(n)-per-pair character-trigram Dice alternative (a DESIGN.md
  /// ablation).
  enum class StringMetric { kLevenshteinRatio, kNgramDice };
  StringMetric string_metric = StringMetric::kLevenshteinRatio;
  /// Force the exact Levenshtein kernel instead of the length-aware
  /// auto-selection (which may pick the pruned row-max-exact kernel on
  /// long-name corpora). Required by the delta-ingestion path: its bounded
  /// repair recomputes individual matrix rows, which only matches the
  /// batch computation when every cell is exact.
  bool force_exact_string_kernel = false;
  FusionMode fusion_mode = FusionMode::kAdaptive;
  DecisionMode decision_mode = DecisionMode::kCollective;
  fusion::FusionOptions fusion;  // θ1 / θ2 ("w/o θ1,θ2" via use_score_clamp)
  /// Apply CSLS hubness correction with this neighbourhood size to the
  /// fused matrix before the decision stage. 0 (default, the paper's
  /// setting) disables it; an extension ablation, see la/csls.h.
  size_t csls_k = 0;
  fusion::LrOptions lr;          // kLearned parameters
  embed::GcnOptions gcn;         // structural feature training
  kg::AdjacencyOptions adjacency;

  // ---- Fault tolerance & run control (DESIGN.md "Failure model") ----

  /// When non-empty, every completed feature stage (structural, semantic,
  /// string, attribute, relation) is persisted under this directory as a
  /// checksummed binary artifact immediately after it is computed. Fusion
  /// and decision are cheap and deterministic, so they are always re-run.
  std::string checkpoint_dir;
  /// With checkpoint_dir set: restore stages from valid checkpoints
  /// instead of recomputing them. An absent, corrupted (CRC/size/magic
  /// failure) or shape-mismatched checkpoint triggers a clean re-run of
  /// just that stage — corruption is never an error here, only a cache
  /// miss (it is logged).
  bool resume = false;
  /// Cooperative cancellation/deadline signal, polled at every stage
  /// boundary and inside the iterative kernels (GCN epochs, Sinkhorn
  /// iterations, DAA rounds). When it fires, Run() returns kCancelled or
  /// kDeadlineExceeded; stages already persisted to checkpoint_dir remain
  /// on disk, so a later resume continues from the last completed stage.
  /// Not owned.
  const CancellationToken* cancel = nullptr;
  /// Observability hook: invoked after each feature stage completes (and,
  /// with checkpointing enabled, has been persisted). `from_checkpoint` is
  /// true when the stage was restored rather than computed.
  std::function<void(const std::string& stage, bool from_checkpoint)>
      stage_callback;

  // ---- Serving export & parallelism ----

  /// When non-empty, Run() appends an export stage: the run's test-split
  /// names, committed alignment, per-feature entity embeddings and
  /// flattened adaptive-fusion weights are written to this path as an
  /// immutable serve::AlignmentIndex artifact (see serve/alignment_index.h)
  /// that the AlignmentService can answer queries from.
  std::string export_index_path;
  /// Provenance tag stamped into the exported index.
  std::string export_dataset = "ceaff";
  /// Train the ANN retrieval sections (IVF centroids + int8 codes; format
  /// v3, see DESIGN.md §13) into the exported artifact. When the run has no
  /// dense target features to quantize (semantic and structural both
  /// disabled), the export silently stays a plain v2 artifact — the serving
  /// side falls back to the exhaustive scan either way.
  bool export_ann = true;
  /// IVF centroid count for the exported ANN sections. 0 = auto
  /// (ceil(sqrt(n_targets))).
  size_t ann_centroids = 0;
  /// Worker threads for the compute kernels behind every feature stage
  /// (GCN forward/backward, cosine matrices, the Levenshtein scan, CSLS
  /// and Sinkhorn sweeps). The pipeline owns one shared ThreadPool and
  /// threads it to the stages through a la::KernelContext. 1 (default)
  /// keeps everything single-threaded; the kernels are thread-count
  /// deterministic, so results do not change with this knob.
  size_t num_threads = 1;
  /// Cache-block override for the kernels (la::KernelOptions::OverrideBlock).
  /// 0 (default) keeps the built-in L2-sized blocks; values only shift the
  /// panel partition, never the numerical result.
  size_t block_size = 0;
  /// Measured per-shape kernel tuning (la/autotune.h). kOn measures missing
  /// shape classes on first use; kCacheOnly reuses persisted measurements
  /// only; kOff (default) keeps the static blocking above. Tuning shifts
  /// panel partitions only — results are bit-identical either way.
  la::AutotuneMode autotune = la::AutotuneMode::kOff;
  /// GenerationalStore directory for the persisted tune_cache (empty keeps
  /// measurements in-process for this run only).
  std::string tune_cache_dir;
};

/// Everything a CEAFF run produces. Feature/fused matrices are restricted
/// to test rows (sources) x test columns (targets), ordered like
/// KgPair::test_alignment, so ground truth for row i is column i.
struct CeaffResult {
  la::Matrix structural;  // Ms (empty when disabled)
  la::Matrix semantic;    // Mn
  la::Matrix string_sim;  // Ml
  la::Matrix fused;
  /// Stage-one weights (Mn, Ml) — empty unless all three features fused
  /// adaptively.
  std::vector<double> textual_weights;
  /// Final-stage weights over the matrices entering the last fusion.
  std::vector<double> final_weights;
  matching::MatchResult match;
  double accuracy = 0.0;
  /// Ranking view of the fused matrix (how "CEAFF w/o C" is scored in
  /// Table VI).
  eval::RankingMetrics ranking;
  double gcn_final_loss = 0.0;
  double seconds_features = 0.0;
  double seconds_decision = 0.0;
};

/// The generated feature matrices of one run, both over the test split
/// (rows/cols ordered by test_alignment; gold on the diagonal) and over the
/// seed split (for the learned-fusion baseline). Disabled features stay
/// empty.
struct CeaffFeatures {
  la::Matrix structural;
  la::Matrix semantic;
  la::Matrix string_sim;
  la::Matrix attribute;
  la::Matrix relation;
  /// Raw GCN embeddings of the test-split entities (row i belongs to test
  /// pair i), kept for the serving-index export; empty when the structural
  /// feature is disabled or was restored from a checkpoint that predates
  /// them.
  la::Matrix structural_src_emb;
  la::Matrix structural_tgt_emb;
  /// The trained GCN *input* feature matrices over ALL entities of each
  /// graph (n x d). Kept because the propagation-only GCN (no weight
  /// transform) makes Z = A·(A·X) a pure function of (A, X): persisting X
  /// lets the delta path re-propagate structural embeddings after a graph
  /// patch without retraining. Empty when the structural feature is
  /// disabled or restored from a checkpoint that predates these artifacts.
  la::Matrix structural_x1;
  la::Matrix structural_x2;
  la::Matrix seed_structural;
  la::Matrix seed_semantic;
  la::Matrix seed_string;
  la::Matrix seed_attribute;
  la::Matrix seed_relation;
  double gcn_final_loss = 0.0;
  double seconds = 0.0;
};

/// End-to-end CEAFF (Fig. 2): feature generation → adaptive fusion →
/// collective EA. The word-embedding store provides the semantic feature's
/// (simulated) multilingual word vectors.
///
/// The two stages are also exposed separately: GenerateFeatures() is the
/// expensive part (GCN training, O(n²) name similarities); RunOnFeatures()
/// is cheap, so ablation studies can reuse one feature set across many
/// fusion/decision configurations.
class CeaffPipeline {
 public:
  CeaffPipeline(const kg::KgPair* pair, const text::WordEmbeddingStore* store,
                const CeaffOptions& options);

  /// Runs the full pipeline. InvalidArgument when no feature is enabled or
  /// the pair has no test alignment.
  StatusOr<CeaffResult> Run();

  /// Stage 1 only: builds the enabled feature matrices.
  StatusOr<CeaffFeatures> GenerateFeatures();

  /// Stages 2–3 on precomputed features. Features required by the options
  /// (use_*) must be non-empty in `features` (FailedPrecondition
  /// otherwise), so a superset feature set can serve every ablation.
  StatusOr<CeaffResult> RunOnFeatures(const CeaffFeatures& features);

  /// The export stage Run() appends when export_index_path is set: builds
  /// a serve::AlignmentIndex from the run's outputs and writes it
  /// atomically. Exposed so callers composing GenerateFeatures() +
  /// RunOnFeatures() by hand can export too.
  Status ExportIndex(const CeaffFeatures& features,
                     const CeaffResult& result) const;

 private:
  /// Fuses the enabled features into result->fused.
  Status FuseFeatures(const CeaffFeatures& features, CeaffResult* result);

  const kg::KgPair* pair_;
  const text::WordEmbeddingStore* store_;
  CeaffOptions options_;
};

/// Extracts the rows of `emb` listed in `ids` (order preserved).
la::Matrix GatherRows(const la::Matrix& emb, const std::vector<uint32_t>& ids);

/// The display names of the given entities.
std::vector<std::string> GatherNames(const kg::KnowledgeGraph& g,
                                     const std::vector<uint32_t>& ids);

/// Test-set source/target entity ids of a pair, in test_alignment order.
void TestIds(const kg::KgPair& pair, std::vector<uint32_t>* sources,
             std::vector<uint32_t>* targets);

}  // namespace ceaff::core

#endif  // CEAFF_CORE_PIPELINE_H_
