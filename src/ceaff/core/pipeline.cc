#include "ceaff/core/pipeline.h"

#include <memory>
#include <numeric>

#include "ceaff/common/logging.h"
#include "ceaff/common/thread_pool.h"
#include "ceaff/common/timer.h"
#include "ceaff/core/checkpoint.h"
#include "ceaff/la/kernels.h"
#include "ceaff/la/ops.h"
#include "ceaff/serve/alignment_index.h"
#include "ceaff/serve/ann_build.h"
#include "ceaff/text/levenshtein.h"
#include "ceaff/text/name_embedding.h"
#include "ceaff/text/ngram_similarity.h"

namespace ceaff::core {

namespace {

/// The pipeline's shared kernel runtime: one pool for every stage (created
/// only when the caller asked for threads) plus the KernelContext that
/// threads it — with the run's block sizes and cancellation token — through
/// each kernel call. Kernels poll the token per row panel, so a deadline
/// interrupts even a single huge similarity matrix mid-build.
struct KernelRuntime {
  std::unique_ptr<ThreadPool> pool;
  std::unique_ptr<la::KernelAutotuner> tuner;
  la::KernelContext ctx;
};

KernelRuntime MakeKernelRuntime(const CeaffOptions& options) {
  KernelRuntime rt;
  if (options.num_threads > 1) {
    rt.pool = std::make_unique<ThreadPool>(options.num_threads);
  }
  rt.ctx.pool = rt.pool.get();
  rt.ctx.opts.OverrideBlock(options.block_size);
  rt.ctx.cancel = options.cancel;
  if (options.autotune != la::AutotuneMode::kOff) {
    la::AutotuneOptions tune_options;
    tune_options.mode = options.autotune;
    tune_options.cache_dir = options.tune_cache_dir;
    rt.tuner = std::make_unique<la::KernelAutotuner>(tune_options);
    const Status s = rt.tuner->Init();
    if (s.ok()) {
      rt.ctx.tuner = rt.tuner.get();
    } else {
      // A broken tune cache must never fail an align run: warn and run
      // with the static blocking instead.
      CEAFF_LOG(Warning) << "autotune disabled for this run: "
                         << s.ToString();
      rt.tuner.reset();
    }
  }
  return rt;
}

}  // namespace

la::Matrix GatherRows(const la::Matrix& emb,
                      const std::vector<uint32_t>& ids) {
  la::Matrix out(ids.size(), emb.cols());
  for (size_t i = 0; i < ids.size(); ++i) {
    const float* src = emb.row(ids[i]);
    float* dst = out.row(i);
    for (size_t c = 0; c < emb.cols(); ++c) dst[c] = src[c];
  }
  return out;
}

std::vector<std::string> GatherNames(const kg::KnowledgeGraph& g,
                                     const std::vector<uint32_t>& ids) {
  std::vector<std::string> out;
  out.reserve(ids.size());
  for (uint32_t id : ids) out.push_back(g.entity_name(id));
  return out;
}

void TestIds(const kg::KgPair& pair, std::vector<uint32_t>* sources,
             std::vector<uint32_t>* targets) {
  sources->clear();
  targets->clear();
  for (const kg::AlignmentPair& p : pair.test_alignment) {
    sources->push_back(p.source);
    targets->push_back(p.target);
  }
}

CeaffPipeline::CeaffPipeline(const kg::KgPair* pair,
                             const text::WordEmbeddingStore* store,
                             const CeaffOptions& options)
    : pair_(pair), store_(store), options_(options) {}

StatusOr<CeaffFeatures> CeaffPipeline::GenerateFeatures() {
  if (pair_->test_alignment.empty()) {
    return Status::InvalidArgument("pair has no test alignment");
  }
  if (store_ == nullptr && options_.use_semantic) {
    return Status::InvalidArgument(
        "semantic feature enabled but no word-embedding store given");
  }
  // Validate alignment ids before any feature generator dereferences them.
  auto ids_ok = [this](const std::vector<kg::AlignmentPair>& pairs) {
    for (const kg::AlignmentPair& p : pairs) {
      if (p.source >= pair_->kg1.num_entities() ||
          p.target >= pair_->kg2.num_entities()) {
        return false;
      }
    }
    return true;
  };
  if (!ids_ok(pair_->test_alignment) || !ids_ok(pair_->seed_alignment)) {
    return Status::InvalidArgument(
        "alignment references an entity id outside its KG");
  }
  WallTimer timer;
  KernelRuntime rt = MakeKernelRuntime(options_);
  CeaffFeatures features;
  std::vector<uint32_t> test_src, test_tgt, seed_src, seed_tgt;
  TestIds(*pair_, &test_src, &test_tgt);
  for (const kg::AlignmentPair& p : pair_->seed_alignment) {
    seed_src.push_back(p.source);
    seed_tgt.push_back(p.target);
  }
  const size_t n_test = test_src.size();
  const size_t n_seed = seed_src.size();

  std::unique_ptr<CheckpointStore> store;
  if (!options_.checkpoint_dir.empty()) {
    store = std::make_unique<CheckpointStore>(options_.checkpoint_dir);
    CEAFF_RETURN_IF_ERROR(store->Init());
  }

  // Attempts to restore a feature stage (test matrix, seed matrix when
  // seeds exist, optional scalar) from its checkpoint artifacts. Returns
  // false when the stage must be recomputed — artifacts absent, corrupted
  // (kDataLoss from the CRC/size/magic validation) or shaped for a
  // different dataset. Corruption is a cache miss here, not an error: the
  // stage is cleanly re-run and its fresh artifacts overwrite the bad
  // ones.
  auto restore_stage = [&](const std::string& stage, la::Matrix* test,
                           la::Matrix* seed, double* loss) -> bool {
    if (store == nullptr || !options_.resume) return false;
    if (!store->Has(stage)) return false;
    auto unusable = [&](const std::string& name, const Status& st) {
      CEAFF_LOG(Warning) << "checkpoint artifact '" << name << "' in "
                         << store->dir() << " unusable (" << st
                         << "); re-running stage '" << stage << "'";
      return false;
    };
    auto test_or = store->LoadMatrix(stage);
    if (!test_or.ok()) return unusable(stage, test_or.status());
    if (test_or.value().rows() != n_test ||
        test_or.value().cols() != n_test) {
      return unusable(
          stage, Status::DataLoss("shape mismatch vs current test split"));
    }
    la::Matrix seed_matrix;
    if (seed != nullptr && n_seed > 0) {
      auto seed_or = store->LoadMatrix(stage + ".seed");
      if (!seed_or.ok()) return unusable(stage + ".seed", seed_or.status());
      if (seed_or.value().rows() != n_seed ||
          seed_or.value().cols() != n_seed) {
        return unusable(stage + ".seed", Status::DataLoss(
                            "shape mismatch vs current seed split"));
      }
      seed_matrix = std::move(seed_or).value();
    }
    double loss_value = 0.0;
    if (loss != nullptr) {
      auto loss_or = store->LoadScalar(stage + ".loss");
      if (!loss_or.ok()) return unusable(stage + ".loss", loss_or.status());
      loss_value = loss_or.value();
    }
    *test = std::move(test_or).value();
    if (seed != nullptr && n_seed > 0) *seed = std::move(seed_matrix);
    if (loss != nullptr) *loss = loss_value;
    return true;
  };

  // Persists a completed stage. Write failures are real errors (the
  // caller asked for durability and is not getting it).
  auto persist_stage = [&](const std::string& stage, const la::Matrix& test,
                           const la::Matrix* seed,
                           const double* loss) -> Status {
    if (store == nullptr) return Status::OK();
    CEAFF_RETURN_IF_ERROR(store->SaveMatrix(stage, test));
    if (seed != nullptr && !seed->empty()) {
      CEAFF_RETURN_IF_ERROR(store->SaveMatrix(stage + ".seed", *seed));
    }
    if (loss != nullptr) {
      CEAFF_RETURN_IF_ERROR(store->SaveScalar(stage + ".loss", *loss));
    }
    return Status::OK();
  };

  auto notify = [&](const std::string& stage, bool from_checkpoint) {
    if (options_.stage_callback) {
      options_.stage_callback(stage, from_checkpoint);
    }
  };

  if (options_.use_structural) {
    CEAFF_RETURN_IF_ERROR(CheckCancel(options_.cancel, "structural stage"));
    bool restored =
        restore_stage("structural", &features.structural,
                      &features.seed_structural, &features.gcn_final_loss);
    if (restored) {
      // The raw entity embeddings ride along for the serving-index export.
      // Checkpoints written before they existed lack the artifacts; that is
      // only a cache miss when the export actually needs them.
      auto src_or = store->LoadMatrix("structural.src_emb");
      auto tgt_or = store->LoadMatrix("structural.tgt_emb");
      if (src_or.ok() && tgt_or.ok() && src_or.value().rows() == n_test &&
          tgt_or.value().rows() == n_test) {
        features.structural_src_emb = std::move(src_or).value();
        features.structural_tgt_emb = std::move(tgt_or).value();
        // The GCN input features ride along too (for the delta-ingestion
        // state export); their absence — checkpoints predating them — is
        // tolerated and only surfaces if a delta export is attempted.
        auto x1_or = store->LoadMatrix("structural.x1");
        auto x2_or = store->LoadMatrix("structural.x2");
        if (x1_or.ok() && x2_or.ok() &&
            x1_or.value().rows() == pair_->kg1.num_entities() &&
            x2_or.value().rows() == pair_->kg2.num_entities()) {
          features.structural_x1 = std::move(x1_or).value();
          features.structural_x2 = std::move(x2_or).value();
        }
      } else if (!options_.export_index_path.empty()) {
        CEAFF_LOG(Warning)
            << "structural checkpoint lacks usable entity embeddings needed "
               "for the index export; re-running stage 'structural'";
        restored = false;
        features.structural = la::Matrix();
        features.seed_structural = la::Matrix();
        features.gcn_final_loss = 0.0;
      }
    }
    if (!restored) {
      la::SparseMatrix a1 =
          kg::BuildAdjacency(pair_->kg1, options_.adjacency);
      la::SparseMatrix a2 =
          kg::BuildAdjacency(pair_->kg2, options_.adjacency);
      embed::GcnOptions gcn_options = options_.gcn;
      gcn_options.cancel = options_.cancel;
      gcn_options.kernel = &rt.ctx;
      embed::GcnAligner gcn(std::move(a1), std::move(a2), gcn_options);
      CEAFF_ASSIGN_OR_RETURN(features.gcn_final_loss,
                             gcn.Train(pair_->seed_alignment));
      features.structural_src_emb = GatherRows(gcn.embeddings1(), test_src);
      features.structural_tgt_emb = GatherRows(gcn.embeddings2(), test_tgt);
      features.structural_x1 = gcn.features1();
      features.structural_x2 = gcn.features2();
      CEAFF_ASSIGN_OR_RETURN(
          features.structural,
          la::CosineSimilarityChecked(rt.ctx, features.structural_src_emb,
                                      features.structural_tgt_emb));
      if (!seed_src.empty()) {
        CEAFF_ASSIGN_OR_RETURN(
            features.seed_structural,
            la::CosineSimilarityChecked(
                rt.ctx, GatherRows(gcn.embeddings1(), seed_src),
                GatherRows(gcn.embeddings2(), seed_tgt)));
      }
      CEAFF_RETURN_IF_ERROR(persist_stage("structural", features.structural,
                                          &features.seed_structural,
                                          &features.gcn_final_loss));
      if (store != nullptr) {
        CEAFF_RETURN_IF_ERROR(store->SaveMatrix("structural.src_emb",
                                                features.structural_src_emb));
        CEAFF_RETURN_IF_ERROR(store->SaveMatrix("structural.tgt_emb",
                                                features.structural_tgt_emb));
        CEAFF_RETURN_IF_ERROR(store->SaveMatrix("structural.x1",
                                                features.structural_x1));
        CEAFF_RETURN_IF_ERROR(store->SaveMatrix("structural.x2",
                                                features.structural_x2));
      }
    }
    notify("structural", restored);
  }
  std::vector<std::string> src_names = GatherNames(pair_->kg1, test_src);
  std::vector<std::string> tgt_names = GatherNames(pair_->kg2, test_tgt);
  std::vector<std::string> seed_src_names =
      GatherNames(pair_->kg1, seed_src);
  std::vector<std::string> seed_tgt_names =
      GatherNames(pair_->kg2, seed_tgt);
  if (options_.use_semantic) {
    CEAFF_RETURN_IF_ERROR(CheckCancel(options_.cancel, "semantic stage"));
    bool restored = restore_stage("semantic", &features.semantic,
                                  &features.seed_semantic, nullptr);
    if (!restored) {
      features.semantic = text::SemanticSimilarityMatrix(*store_, src_names,
                                                         tgt_names, &rt.ctx);
      if (!seed_src.empty()) {
        features.seed_semantic = text::SemanticSimilarityMatrix(
            *store_, seed_src_names, seed_tgt_names, &rt.ctx);
      }
      // A token firing mid-kernel leaves the matrix partially built; the
      // panel polls only skip work, so surface the cancellation here.
      CEAFF_RETURN_IF_ERROR(rt.ctx.CheckCancelled("semantic stage"));
      CEAFF_RETURN_IF_ERROR(persist_stage("semantic", features.semantic,
                                          &features.seed_semantic, nullptr));
    }
    notify("semantic", restored);
  }
  if (options_.use_string) {
    CEAFF_RETURN_IF_ERROR(CheckCancel(options_.cancel, "string stage"));
    bool restored = restore_stage("string", &features.string_sim,
                                  &features.seed_string, nullptr);
    if (!restored) {
      if (options_.string_metric == CeaffOptions::StringMetric::kNgramDice) {
        features.string_sim =
            text::NgramSimilarityMatrix(src_names, tgt_names);
        if (!seed_src.empty()) {
          features.seed_string =
              text::NgramSimilarityMatrix(seed_src_names, seed_tgt_names);
        }
      } else if (options_.force_exact_string_kernel) {
        // Every cell exact — required when downstream consumers (the
        // delta-ingestion export) recompute individual rows and compare
        // bitwise; the pruned kernel's skipped cells would diverge.
        features.string_sim =
            la::StringSimilarityMatrixK(rt.ctx, src_names, tgt_names);
        if (!seed_src.empty()) {
          features.seed_string = la::StringSimilarityMatrixK(
              rt.ctx, seed_src_names, seed_tgt_names);
        }
        CEAFF_RETURN_IF_ERROR(rt.ctx.CheckCancelled("string stage"));
      } else {
        // The Levenshtein scan dominates feature time on large splits; the
        // kernel splits it across the shared pool and polls the run's
        // cancellation token per row panel. Kernel selection is
        // length-aware: long multi-word name corpora take the pruned
        // row-max-exact kernel, everything else the exact one.
        la::StringKernelChoice choice;
        features.string_sim = la::StringSimilarityMatrixAuto(
            rt.ctx, src_names, tgt_names, &choice);
        if (choice.pruned) {
          CEAFF_LOG(Info) << "string stage: pruned kernel selected "
                          << "(mean chars " << choice.mean_chars
                          << ", mean tokens " << choice.mean_tokens << ")";
        }
        if (!seed_src.empty()) {
          features.seed_string = la::StringSimilarityMatrixAuto(
              rt.ctx, seed_src_names, seed_tgt_names);
        }
        CEAFF_RETURN_IF_ERROR(rt.ctx.CheckCancelled("string stage"));
      }
      CEAFF_RETURN_IF_ERROR(persist_stage("string", features.string_sim,
                                          &features.seed_string, nullptr));
    }
    notify("string", restored);
  }
  if (options_.use_relation) {
    CEAFF_RETURN_IF_ERROR(CheckCancel(options_.cancel, "relation stage"));
    bool restored = restore_stage("relation", &features.relation,
                                  &features.seed_relation, nullptr);
    if (!restored) {
      features.relation = kg::RelationSimilarityMatrix(
          pair_->kg1, pair_->kg2, test_src, test_tgt, options_.relation);
      if (!seed_src.empty()) {
        features.seed_relation = kg::RelationSimilarityMatrix(
            pair_->kg1, pair_->kg2, seed_src, seed_tgt, options_.relation);
      }
      CEAFF_RETURN_IF_ERROR(persist_stage("relation", features.relation,
                                          &features.seed_relation, nullptr));
    }
    notify("relation", restored);
  }
  if (options_.use_attribute) {
    CEAFF_RETURN_IF_ERROR(CheckCancel(options_.cancel, "attribute stage"));
    bool restored = restore_stage("attribute", &features.attribute,
                                  &features.seed_attribute, nullptr);
    if (!restored) {
      features.attribute = kg::AttributeSimilarityMatrix(
          pair_->kg1, pair_->kg2, test_src, test_tgt, options_.attribute);
      if (!seed_src.empty()) {
        features.seed_attribute = kg::AttributeSimilarityMatrix(
            pair_->kg1, pair_->kg2, seed_src, seed_tgt, options_.attribute);
      }
      CEAFF_RETURN_IF_ERROR(persist_stage("attribute", features.attribute,
                                          &features.seed_attribute,
                                          nullptr));
    }
    notify("attribute", restored);
  }
  features.seconds = timer.ElapsedSeconds();
  return features;
}

Status CeaffPipeline::FuseFeatures(const CeaffFeatures& features,
                                   CeaffResult* result) {
  std::vector<const la::Matrix*> enabled;
  std::vector<const la::Matrix*> enabled_seed;
  if (options_.use_structural) {
    enabled.push_back(&features.structural);
    enabled_seed.push_back(&features.seed_structural);
  }
  if (options_.use_semantic) {
    enabled.push_back(&features.semantic);
    enabled_seed.push_back(&features.seed_semantic);
  }
  if (options_.use_string) {
    enabled.push_back(&features.string_sim);
    enabled_seed.push_back(&features.seed_string);
  }
  if (options_.use_attribute) {
    enabled.push_back(&features.attribute);
    enabled_seed.push_back(&features.seed_attribute);
  }
  if (options_.use_relation) {
    enabled.push_back(&features.relation);
    enabled_seed.push_back(&features.seed_relation);
  }
  if (enabled.empty()) {
    return Status::InvalidArgument("all features disabled");
  }
  for (const la::Matrix* m : enabled) {
    if (m->empty()) {
      return Status::FailedPrecondition(
          "an enabled feature is missing from the provided feature set");
    }
  }
  if (enabled.size() == 1) {
    result->fused = *enabled[0];
    result->final_weights = {1.0};
    return Status::OK();
  }

  switch (options_.fusion_mode) {
    case FusionMode::kAdaptive: {
      if (options_.use_structural && options_.use_semantic &&
          options_.use_string) {
        std::vector<const la::Matrix*> extras;
        if (options_.use_attribute) extras.push_back(&features.attribute);
        if (options_.use_relation) extras.push_back(&features.relation);
        if (!extras.empty()) {
          // Extended two-stage pipeline: (Mn ⊕ Ml) → textual, then
          // Ms ⊕ textual ⊕ extras in the final stage.
          fusion::FeatureWeightReport rep1;
          la::Matrix textual;
          CEAFF_ASSIGN_OR_RETURN(
              textual, fusion::AdaptiveFuse(
                           {&features.semantic, &features.string_sim},
                           options_.fusion, &rep1));
          result->textual_weights = rep1.weights;
          std::vector<const la::Matrix*> final_inputs = {
              &features.structural, &textual};
          final_inputs.insert(final_inputs.end(), extras.begin(),
                              extras.end());
          fusion::FeatureWeightReport rep2;
          CEAFF_ASSIGN_OR_RETURN(
              result->fused,
              fusion::AdaptiveFuse(final_inputs, options_.fusion, &rep2));
          result->final_weights = rep2.weights;
          return Status::OK();
        }
        // Full two-stage pipeline: (Mn ⊕ Ml) → textual, then Ms ⊕ textual.
        CEAFF_ASSIGN_OR_RETURN(
            fusion::TwoStageFusionResult two,
            fusion::TwoStageFuse(features.structural, features.semantic,
                                 features.string_sim, options_.fusion));
        result->fused = std::move(two.fused);
        result->textual_weights = std::move(two.textual_weights);
        result->final_weights = std::move(two.final_weights);
      } else {
        fusion::FeatureWeightReport report;
        CEAFF_ASSIGN_OR_RETURN(
            result->fused,
            fusion::AdaptiveFuse(enabled, options_.fusion, &report));
        result->final_weights = report.weights;
      }
      return Status::OK();
    }
    case FusionMode::kFixed: {
      CEAFF_ASSIGN_OR_RETURN(result->fused, fusion::FixedFuse(enabled));
      result->final_weights.assign(enabled.size(),
                                   1.0 / static_cast<double>(enabled.size()));
      return Status::OK();
    }
    case FusionMode::kLearned: {
      // Fit LR on the seed-restricted matrices (gold pairs are (i, i)),
      // then apply the learned weights to the test matrices.
      if (pair_->seed_alignment.empty()) {
        return Status::FailedPrecondition(
            "learned fusion requires seed alignment");
      }
      for (const la::Matrix* m : enabled_seed) {
        if (m->empty()) {
          return Status::FailedPrecondition(
              "learned fusion requires seed feature matrices");
        }
      }
      std::vector<kg::AlignmentPair> seed_gold;
      for (uint32_t i = 0; i < pair_->seed_alignment.size(); ++i) {
        seed_gold.push_back({i, i});
      }
      fusion::LogisticRegressionFusion lr(options_.lr);
      CEAFF_RETURN_IF_ERROR(lr.Train(enabled_seed, seed_gold));
      CEAFF_ASSIGN_OR_RETURN(result->fused, lr.Fuse(enabled));
      result->final_weights = lr.FusionWeights();
      return Status::OK();
    }
  }
  return Status::Internal("unknown fusion mode");
}

StatusOr<CeaffResult> CeaffPipeline::RunOnFeatures(
    const CeaffFeatures& features) {
  CeaffResult result;
  result.structural = features.structural;
  result.semantic = features.semantic;
  result.string_sim = features.string_sim;
  result.gcn_final_loss = features.gcn_final_loss;
  result.seconds_features = features.seconds;
  KernelRuntime rt = MakeKernelRuntime(options_);
  CEAFF_RETURN_IF_ERROR(CheckCancel(options_.cancel, "fusion stage"));
  CEAFF_RETURN_IF_ERROR(FuseFeatures(features, &result));
  if (options_.csls_k > 0) {
    result.fused = la::CslsRescaleK(rt.ctx, result.fused, options_.csls_k);
    CEAFF_RETURN_IF_ERROR(rt.ctx.CheckCancelled("csls rescale"));
  }

  CEAFF_RETURN_IF_ERROR(CheckCancel(options_.cancel, "decision stage"));
  WallTimer decision_timer;
  switch (options_.decision_mode) {
    case DecisionMode::kCollective: {
      CEAFF_ASSIGN_OR_RETURN(
          result.match,
          matching::DeferredAcceptanceChecked(result.fused, options_.cancel));
      break;
    }
    case DecisionMode::kIndependent:
      result.match = matching::GreedyIndependent(result.fused);
      break;
    case DecisionMode::kHungarian: {
      CEAFF_ASSIGN_OR_RETURN(result.match,
                             matching::HungarianMatch(result.fused));
      break;
    }
    case DecisionMode::kGreedyOneToOne:
      result.match = matching::GreedyOneToOne(result.fused);
      break;
    case DecisionMode::kSinkhorn: {
      matching::SinkhornOptions sinkhorn;
      sinkhorn.cancel = options_.cancel;
      sinkhorn.kernel = &rt.ctx;
      CEAFF_ASSIGN_OR_RETURN(
          result.match,
          matching::SinkhornMatchChecked(result.fused, sinkhorn));
      break;
    }
  }
  result.seconds_decision = decision_timer.ElapsedSeconds();

  // Test matrices are ordered by test_alignment ⇒ gold of row i is col i.
  std::vector<int64_t> gold(result.fused.rows());
  std::iota(gold.begin(), gold.end(), int64_t{0});
  result.accuracy = eval::Accuracy(result.match, gold);
  result.ranking = eval::ComputeRankingMetrics(result.fused, gold);
  return result;
}

Status CeaffPipeline::ExportIndex(const CeaffFeatures& features,
                                  const CeaffResult& result) const {
  std::vector<uint32_t> test_src, test_tgt;
  TestIds(*pair_, &test_src, &test_tgt);

  serve::AlignmentIndexInput input;
  input.dataset = options_.export_dataset;
  input.source_names = GatherNames(pair_->kg1, test_src);
  input.target_names = GatherNames(pair_->kg2, test_tgt);

  for (size_t i = 0; i < result.match.target_of_source.size(); ++i) {
    const int64_t t = result.match.target_of_source[i];
    if (t < 0) continue;
    input.pairs.push_back({static_cast<uint32_t>(i), static_cast<uint32_t>(t),
                           result.fused.at(i, static_cast<size_t>(t))});
  }

  // Flatten the run's fusion weights to effective per-serving-feature
  // weights (structural, semantic, string). The canonical two-stage run
  // reports final = (w_s, w_textual) and textual = (w_n, w_l); every other
  // configuration reports final_weights in enabled-feature order. Weights
  // of features the service does not serve (attribute, relation) are
  // dropped — the index builder renormalises.
  double w_struct = 0.0, w_sem = 0.0, w_str = 0.0;
  if (!result.textual_weights.empty() && result.final_weights.size() >= 2 &&
      result.textual_weights.size() >= 2) {
    w_struct = result.final_weights[0];
    w_sem = result.final_weights[1] * result.textual_weights[0];
    w_str = result.final_weights[1] * result.textual_weights[1];
  } else {
    size_t idx = 0;
    auto take = [&]() {
      return idx < result.final_weights.size() ? result.final_weights[idx++]
                                               : 0.0;
    };
    if (options_.use_structural) w_struct = take();
    if (options_.use_semantic) w_sem = take();
    if (options_.use_string) w_str = take();
  }
  input.weights = {w_struct, w_sem, w_str};

  if (options_.use_semantic && store_ != nullptr) {
    input.semantic_seed = store_->seed();
    input.source_name_emb = text::EmbedNames(*store_, input.source_names);
    input.target_name_emb = text::EmbedNames(*store_, input.target_names);
    // Stored embeddings are pre-normalised so query-time cosine reduces to
    // a dot product.
    input.source_name_emb.L2NormalizeRows();
    input.target_name_emb.L2NormalizeRows();
  }
  if (!features.structural_src_emb.empty() &&
      !features.structural_tgt_emb.empty()) {
    input.source_struct_emb = features.structural_src_emb;
    input.target_struct_emb = features.structural_tgt_emb;
    input.source_struct_emb.L2NormalizeRows();
    input.target_struct_emb.L2NormalizeRows();
  }

  CEAFF_ASSIGN_OR_RETURN(serve::AlignmentIndex index,
                         serve::BuildAlignmentIndex(std::move(input)));
  if (options_.export_ann) {
    serve::AnnBuildOptions ann_options;
    ann_options.num_centroids = options_.ann_centroids;
    const Status ann = serve::BuildAnnSections(&index, ann_options);
    if (ann.ok()) {
      CEAFF_LOG(Info) << "trained ANN sections: "
                      << index.ann_centroids.rows() << " centroids over "
                      << index.ann_codes.rows() << " int8-coded targets";
    } else if (ann.IsFailedPrecondition()) {
      // No dense target features to quantize — export a plain v2 artifact.
      CEAFF_LOG(Info) << "skipping ANN sections: " << ann.message();
    } else {
      return ann;
    }
  }
  CEAFF_RETURN_IF_ERROR(
      serve::SaveAlignmentIndex(index, options_.export_index_path));
  CEAFF_LOG(Info) << "exported alignment index (" << index.num_sources()
                  << " sources, " << index.num_targets() << " targets, "
                  << index.pairs.size() << " pairs"
                  << (index.has_ann() ? ", ann" : "") << ") to "
                  << options_.export_index_path;
  return Status::OK();
}

StatusOr<CeaffResult> CeaffPipeline::Run() {
  CEAFF_ASSIGN_OR_RETURN(CeaffFeatures features, GenerateFeatures());
  CEAFF_ASSIGN_OR_RETURN(CeaffResult result, RunOnFeatures(features));
  if (!options_.export_index_path.empty()) {
    CEAFF_RETURN_IF_ERROR(CheckCancel(options_.cancel, "export stage"));
    CEAFF_RETURN_IF_ERROR(ExportIndex(features, result));
    if (options_.stage_callback) {
      options_.stage_callback("export_index", /*from_checkpoint=*/false);
    }
  }
  return result;
}

}  // namespace ceaff::core
