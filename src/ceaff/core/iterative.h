#ifndef CEAFF_CORE_ITERATIVE_H_
#define CEAFF_CORE_ITERATIVE_H_

#include "ceaff/core/pipeline.h"

namespace ceaff::core {

/// Iterative (self-training) CEAFF — an extension in the direction of the
/// paper's future work and of IPTransE/BootEA's bootstrapping: after each
/// full CEAFF run, the most confident matched test pairs are promoted to
/// seed pairs and the structural feature is retrained with the enlarged
/// supervision. Text features are seed-independent, so only the GCN
/// benefits, which is exactly where extra seeds help (cf. the
/// seed-fraction sweep bench).
struct IterativeCeaffOptions {
  CeaffOptions base;
  /// Bootstrapping rounds after the initial run (0 = plain CEAFF).
  size_t rounds = 2;
  /// A matched pair is promoted when its fused similarity is at least
  /// this quantile of all matched-pair scores in the round.
  double promote_quantile = 0.5;
  /// And its fused similarity is at least this absolute value.
  float min_similarity = 0.5f;
  /// Optional cooperative cancellation/deadline signal, polled before
  /// every bootstrap round (in addition to whatever token `base` threads
  /// into the per-round pipeline). Not owned.
  const CancellationToken* cancel = nullptr;
};

/// Outcome of the final round plus bookkeeping.
struct IterativeCeaffResult {
  CeaffResult final_result;
  /// Accuracy after each round (index 0 = initial run).
  std::vector<double> accuracy_per_round;
  /// Promoted pseudo-seed pairs per round (test-set positions).
  std::vector<size_t> promoted_per_round;
};

/// Runs iterative CEAFF on `pair`. The gold test alignment is only used
/// for scoring, never for promotion decisions (promotion is by model
/// confidence). Rounds that promote nothing terminate the loop early.
StatusOr<IterativeCeaffResult> RunIterativeCeaff(
    const kg::KgPair& pair, const text::WordEmbeddingStore& store,
    const IterativeCeaffOptions& options);

}  // namespace ceaff::core

#endif  // CEAFF_CORE_ITERATIVE_H_
