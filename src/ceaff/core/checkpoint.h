#ifndef CEAFF_CORE_CHECKPOINT_H_
#define CEAFF_CORE_CHECKPOINT_H_

#include <string>
#include <vector>

#include "ceaff/common/durable_io.h"
#include "ceaff/common/statusor.h"
#include "ceaff/la/matrix.h"

namespace ceaff::core {

/// Persists named pipeline-stage artifacts (matrices, scalars) under one
/// directory, using the checksummed binary format of la/matrix_io.h on top
/// of the generational store of common/durable_io.h. Each artifact keeps
/// its newest generations as `<dir>/<name>.ckpt.g<N>`, committed through
/// the directory's MANIFEST; flat `<dir>/<name>.ckpt` files written by
/// older builds are still readable.
///
/// Guarantees:
///   * writes are crash-durable (unique temp + fsync(file) + rename +
///     fsync(dir), then a manifest commit) — a kill -9 or power cut
///     mid-save never loses the newest *committed* generation;
///   * loads verify the manifest CRC and the artifact's own magic/size/CRC
///     — a truncated or bit-flipped generation is quarantined as
///     `*.corrupt` and the previous generation is served instead, with a
///     kDataLoss warning logged; only when no generation survives does
///     Load fail (kDataLoss), and it never returns silently-wrong data.
class CheckpointStore {
 public:
  explicit CheckpointStore(std::string dir);

  /// Creates the directory and recovers the manifest (quarantining a
  /// corrupt one and rebuilding from a directory scan). Call before Save.
  Status Init() const;

  const std::string& dir() const { return store_.dir(); }

  /// Whether any committed generation (or a legacy flat file) exists for
  /// the artifact. No validation — Load still decides.
  bool Has(const std::string& name) const;

  /// Path of the newest committed generation file (or the legacy flat
  /// file). kNotFound when the artifact does not exist. For tooling and
  /// tests that need to poke the bytes on disk.
  StatusOr<std::string> CurrentPath(const std::string& name) const;

  /// Committed generation numbers for the artifact, oldest first.
  std::vector<uint64_t> Generations(const std::string& name) const;

  Status SaveMatrix(const std::string& name, const la::Matrix& m) const;
  StatusOr<la::Matrix> LoadMatrix(const std::string& name) const;

  /// Scalars (e.g. a stage's final loss) ride in the same artifact format
  /// as a 1x2 float matrix holding the double's bit pattern, so the value
  /// round-trips exactly.
  Status SaveScalar(const std::string& name, double value) const;
  StatusOr<double> LoadScalar(const std::string& name) const;

  /// Deletes every generation of an artifact (used to drop stale stages).
  Status Remove(const std::string& name) const;

 private:
  /// GenerationalStore artifact name; also the legacy flat-file name, so
  /// pre-generational checkpoints are found as the fallback path.
  static std::string ArtifactName(const std::string& name) {
    return name + ".ckpt";
  }

  /// mutable: reads can quarantine a corrupt generation, which rewrites
  /// the manifest. Logically the store is still read-const.
  mutable GenerationalStore store_;
};

}  // namespace ceaff::core

#endif  // CEAFF_CORE_CHECKPOINT_H_
