#ifndef CEAFF_CORE_CHECKPOINT_H_
#define CEAFF_CORE_CHECKPOINT_H_

#include <string>

#include "ceaff/common/statusor.h"
#include "ceaff/la/matrix.h"

namespace ceaff::core {

/// Persists named pipeline-stage artifacts (matrices, scalars) under one
/// directory, using the checksummed binary format of la/matrix_io.h.
/// One file per artifact: `<dir>/<name>.ckpt`.
///
/// Guarantees:
///   * writes are atomic (temp file + rename) — a crash mid-save never
///     leaves a half-written artifact under the final name;
///   * loads verify magic/size/CRC — a truncated or bit-flipped file
///     yields kDataLoss, never silently-wrong data.
class CheckpointStore {
 public:
  explicit CheckpointStore(std::string dir) : dir_(std::move(dir)) {}

  /// Creates the directory (and parents). Call once before Save.
  Status Init() const;

  const std::string& dir() const { return dir_; }
  std::string PathFor(const std::string& name) const {
    return dir_ + "/" + name + ".ckpt";
  }

  /// Whether an artifact file exists (no validation — Load still decides).
  bool Has(const std::string& name) const;

  Status SaveMatrix(const std::string& name, const la::Matrix& m) const;
  StatusOr<la::Matrix> LoadMatrix(const std::string& name) const;

  /// Scalars (e.g. a stage's final loss) ride in the same artifact format
  /// as a 1x2 float matrix holding the double's bit pattern, so the value
  /// round-trips exactly.
  Status SaveScalar(const std::string& name, double value) const;
  StatusOr<double> LoadScalar(const std::string& name) const;

  /// Deletes an artifact if present (used to drop stale/corrupt stages).
  Status Remove(const std::string& name) const;

 private:
  std::string dir_;
};

}  // namespace ceaff::core

#endif  // CEAFF_CORE_CHECKPOINT_H_
