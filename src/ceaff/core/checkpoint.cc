#include "ceaff/core/checkpoint.h"

#include <cstring>
#include <utility>

#include "ceaff/la/matrix_io.h"

namespace ceaff::core {

namespace {

GenerationalStore::Options CheckpointStoreOptions() {
  GenerationalStore::Options options;
  options.keep_generations = 2;
  options.failpoint_scope = "checkpoint";
  return options;
}

/// Every checkpoint artifact is a matrix artifact; a generation whose
/// bytes do not parse is corrupt regardless of what the manifest says.
Status ValidateMatrixBytes(const std::string& bytes) {
  return la::ParseMatrixArtifact(bytes, "checkpoint artifact").status();
}

}  // namespace

CheckpointStore::CheckpointStore(std::string dir)
    : store_(std::move(dir), CheckpointStoreOptions()) {}

Status CheckpointStore::Init() const { return store_.Init(); }

bool CheckpointStore::Has(const std::string& name) const {
  return store_.Has(ArtifactName(name));
}

StatusOr<std::string> CheckpointStore::CurrentPath(
    const std::string& name) const {
  return store_.CurrentPath(ArtifactName(name));
}

std::vector<uint64_t> CheckpointStore::Generations(
    const std::string& name) const {
  return store_.Generations(ArtifactName(name));
}

Status CheckpointStore::SaveMatrix(const std::string& name,
                                   const la::Matrix& m) const {
  return store_.Put(ArtifactName(name), la::SerializeMatrixArtifact(m));
}

StatusOr<la::Matrix> CheckpointStore::LoadMatrix(
    const std::string& name) const {
  CEAFF_ASSIGN_OR_RETURN(
      std::string bytes,
      store_.Get(ArtifactName(name), ValidateMatrixBytes));
  return la::ParseMatrixArtifact(bytes, dir() + "/" + ArtifactName(name));
}

Status CheckpointStore::SaveScalar(const std::string& name,
                                   double value) const {
  static_assert(sizeof(double) == 2 * sizeof(float),
                "scalar bit-packing assumes 64-bit double, 32-bit float");
  la::Matrix m(1, 2);
  std::memcpy(m.data(), &value, sizeof(double));
  return SaveMatrix(name, m);
}

StatusOr<double> CheckpointStore::LoadScalar(const std::string& name) const {
  CEAFF_ASSIGN_OR_RETURN(la::Matrix m, LoadMatrix(name));
  if (m.rows() != 1 || m.cols() != 2) {
    return Status::DataLoss(dir() + "/" + ArtifactName(name) +
                            ": not a scalar artifact");
  }
  double value;
  std::memcpy(&value, m.data(), sizeof(double));
  return value;
}

Status CheckpointStore::Remove(const std::string& name) const {
  return store_.Remove(ArtifactName(name));
}

}  // namespace ceaff::core
