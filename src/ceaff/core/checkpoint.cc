#include "ceaff/core/checkpoint.h"

#include <cstring>
#include <filesystem>

#include "ceaff/la/matrix_io.h"

namespace ceaff::core {

Status CheckpointStore::Init() const {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return Status::IOError("mkdir " + dir_ + ": " + ec.message());
  }
  return Status::OK();
}

bool CheckpointStore::Has(const std::string& name) const {
  std::error_code ec;
  return std::filesystem::exists(PathFor(name), ec);
}

Status CheckpointStore::SaveMatrix(const std::string& name,
                                   const la::Matrix& m) const {
  return la::SaveMatrixArtifact(m, PathFor(name));
}

StatusOr<la::Matrix> CheckpointStore::LoadMatrix(
    const std::string& name) const {
  return la::LoadMatrixArtifact(PathFor(name));
}

Status CheckpointStore::SaveScalar(const std::string& name,
                                   double value) const {
  static_assert(sizeof(double) == 2 * sizeof(float),
                "scalar bit-packing assumes 64-bit double, 32-bit float");
  la::Matrix m(1, 2);
  std::memcpy(m.data(), &value, sizeof(double));
  return SaveMatrix(name, m);
}

StatusOr<double> CheckpointStore::LoadScalar(const std::string& name) const {
  CEAFF_ASSIGN_OR_RETURN(la::Matrix m, LoadMatrix(name));
  if (m.rows() != 1 || m.cols() != 2) {
    return Status::DataLoss(PathFor(name) + ": not a scalar artifact");
  }
  double value;
  std::memcpy(&value, m.data(), sizeof(double));
  return value;
}

Status CheckpointStore::Remove(const std::string& name) const {
  std::error_code ec;
  std::filesystem::remove(PathFor(name), ec);
  if (ec) {
    return Status::IOError("remove " + PathFor(name) + ": " + ec.message());
  }
  return Status::OK();
}

}  // namespace ceaff::core
