#include "ceaff/core/iterative.h"

#include <algorithm>

namespace ceaff::core {

StatusOr<IterativeCeaffResult> RunIterativeCeaff(
    const kg::KgPair& pair, const text::WordEmbeddingStore& store,
    const IterativeCeaffOptions& options) {
  IterativeCeaffResult out;
  // Working copy whose seed set grows across rounds.
  kg::KgPair working = pair;

  CeaffPipeline initial(&working, &store, options.base);
  CEAFF_ASSIGN_OR_RETURN(CeaffResult result, initial.Run());
  out.accuracy_per_round.push_back(result.accuracy);

  for (size_t round = 0; round < options.rounds; ++round) {
    CEAFF_RETURN_IF_ERROR(CheckCancel(options.cancel, "bootstrap round"));
    // Collect matched pairs with their fused scores.
    struct Scored {
      size_t row;
      int64_t col;
      float score;
    };
    std::vector<Scored> matched;
    for (size_t i = 0; i < result.match.target_of_source.size(); ++i) {
      int64_t t = result.match.target_of_source[i];
      if (t < 0) continue;
      matched.push_back({i, t, result.fused.at(i, static_cast<size_t>(t))});
    }
    if (matched.empty()) break;
    // Quantile threshold over this round's matched scores.
    std::vector<float> scores;
    scores.reserve(matched.size());
    for (const Scored& s : matched) scores.push_back(s.score);
    size_t q_index = static_cast<size_t>(
        options.promote_quantile * static_cast<double>(scores.size()));
    q_index = std::min(q_index, scores.size() - 1);
    std::nth_element(scores.begin(),
                     scores.begin() + static_cast<long>(q_index),
                     scores.end());
    float threshold = std::max(scores[q_index], options.min_similarity);

    // Promote confident pairs to pseudo-seeds (keeping them in the test
    // set for scoring — the enlarged seeds only feed the GCN).
    size_t promoted = 0;
    for (const Scored& s : matched) {
      if (s.score < threshold) continue;
      working.seed_alignment.push_back(
          {pair.test_alignment[s.row].source,
           pair.test_alignment[static_cast<size_t>(s.col)].target});
      ++promoted;
    }
    out.promoted_per_round.push_back(promoted);
    if (promoted == 0) break;

    CeaffPipeline pipe(&working, &store, options.base);
    CEAFF_ASSIGN_OR_RETURN(result, pipe.Run());
    out.accuracy_per_round.push_back(result.accuracy);
  }
  out.final_result = std::move(result);
  return out;
}

}  // namespace ceaff::core
