#include "ceaff/delta/delta_state.h"

#include <cstring>
#include <sstream>

#include "ceaff/common/crc32.h"
#include "ceaff/common/string_util.h"
#include "ceaff/la/matrix_io.h"
#include "ceaff/matching/matching.h"
#include "ceaff/text/name_embedding.h"

namespace ceaff::delta {

namespace {

constexpr char kMagic[8] = {'C', 'E', 'A', 'F', 'F', 'D', 'L', 'T'};
constexpr uint32_t kVersion = 1;
constexpr size_t kTrailerBytes = 4;

// ---- little-endian stream writers/readers ----------------------------------

void PutU8(std::ostream& out, uint8_t v) {
  out.put(static_cast<char>(v));
}

void PutU32(std::ostream& out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.write(buf, 4);
}

void PutU64(std::ostream& out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.write(buf, 8);
}

void PutDouble(std::ostream& out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.write(buf, 8);
}

void PutStr(std::ostream& out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

Status TakeU8(std::istream& in, uint8_t* v) {
  char c;
  if (!in.get(c)) return Status::DataLoss("truncated delta state (u8)");
  *v = static_cast<uint8_t>(c);
  return Status::OK();
}

Status TakeU32(std::istream& in, uint32_t* v) {
  char buf[4];
  if (!in.read(buf, 4)) return Status::DataLoss("truncated delta state (u32)");
  std::memcpy(v, buf, 4);
  return Status::OK();
}

Status TakeU64(std::istream& in, uint64_t* v) {
  char buf[8];
  if (!in.read(buf, 8)) return Status::DataLoss("truncated delta state (u64)");
  std::memcpy(v, buf, 8);
  return Status::OK();
}

Status TakeDouble(std::istream& in, double* v) {
  char buf[8];
  if (!in.read(buf, 8)) {
    return Status::DataLoss("truncated delta state (double)");
  }
  std::memcpy(v, buf, 8);
  return Status::OK();
}

Status TakeStr(std::istream& in, std::string* s, uint64_t remaining) {
  uint32_t len = 0;
  CEAFF_RETURN_IF_ERROR(TakeU32(in, &len));
  if (len > remaining) return Status::DataLoss("oversized delta-state string");
  s->resize(len);
  if (len > 0 && !in.read(s->data(), len)) {
    return Status::DataLoss("truncated delta state (string)");
  }
  return Status::OK();
}

Status TakeBool(std::istream& in, bool* v) {
  uint8_t b = 0;
  CEAFF_RETURN_IF_ERROR(TakeU8(in, &b));
  if (b > 1) return Status::DataLoss("delta-state bool out of range");
  *v = b != 0;
  return Status::OK();
}

void PutDoubleVec(std::ostream& out, const std::vector<double>& v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  for (double d : v) PutDouble(out, d);
}

Status TakeDoubleVec(std::istream& in, std::vector<double>* v) {
  uint32_t n = 0;
  CEAFF_RETURN_IF_ERROR(TakeU32(in, &n));
  if (n > 64) return Status::DataLoss("implausible delta-state weight count");
  v->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    CEAFF_RETURN_IF_ERROR(TakeDouble(in, &(*v)[i]));
  }
  return Status::OK();
}

void PutU32Vec(std::ostream& out, const std::vector<uint32_t>& v) {
  PutU64(out, v.size());
  for (uint32_t x : v) PutU32(out, x);
}

Status TakeU32Vec(std::istream& in, std::vector<uint32_t>* v,
                  uint64_t remaining) {
  uint64_t n = 0;
  CEAFF_RETURN_IF_ERROR(TakeU64(in, &n));
  if (n * 4 > remaining) {
    return Status::DataLoss("oversized delta-state id vector");
  }
  v->resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    CEAFF_RETURN_IF_ERROR(TakeU32(in, &(*v)[i]));
  }
  return Status::OK();
}

void PutKg(std::ostream& out, const kg::KnowledgeGraph& g) {
  PutU64(out, g.num_entities());
  for (uint32_t e = 0; e < g.num_entities(); ++e) {
    PutStr(out, g.entity_uri(e));
    PutStr(out, g.entity_name(e));
  }
  PutU64(out, g.num_relations());
  for (uint32_t r = 0; r < g.num_relations(); ++r) {
    PutStr(out, g.relation_uri(r));
  }
  PutU64(out, g.num_triples());
  for (const kg::Triple& t : g.triples()) {
    PutU32(out, t.head);
    PutU32(out, t.relation);
    PutU32(out, t.tail);
  }
}

Status TakeKg(std::istream& in, kg::KnowledgeGraph* g, uint64_t remaining) {
  uint64_t num_entities = 0;
  CEAFF_RETURN_IF_ERROR(TakeU64(in, &num_entities));
  // Each entity costs at least the two length prefixes.
  if (num_entities * 8 > remaining) {
    return Status::DataLoss("oversized delta-state entity count");
  }
  for (uint64_t e = 0; e < num_entities; ++e) {
    std::string uri, name;
    CEAFF_RETURN_IF_ERROR(TakeStr(in, &uri, remaining));
    CEAFF_RETURN_IF_ERROR(TakeStr(in, &name, remaining));
    const uint32_t id = g->AddEntity(uri);
    if (id != e) {
      return Status::DataLoss("duplicate entity URI in delta-state snapshot");
    }
    // Set unconditionally: AddEntity derives a default from the URI, but
    // the snapshot carries the exact (possibly empty) serving name.
    g->SetEntityName(id, name);
  }
  uint64_t num_relations = 0;
  CEAFF_RETURN_IF_ERROR(TakeU64(in, &num_relations));
  if (num_relations * 4 > remaining) {
    return Status::DataLoss("oversized delta-state relation count");
  }
  for (uint64_t r = 0; r < num_relations; ++r) {
    std::string uri;
    CEAFF_RETURN_IF_ERROR(TakeStr(in, &uri, remaining));
    if (g->AddRelation(uri) != r) {
      return Status::DataLoss(
          "duplicate relation URI in delta-state snapshot");
    }
  }
  uint64_t num_triples = 0;
  CEAFF_RETURN_IF_ERROR(TakeU64(in, &num_triples));
  if (num_triples * 12 > remaining) {
    return Status::DataLoss("oversized delta-state triple count");
  }
  for (uint64_t t = 0; t < num_triples; ++t) {
    uint32_t head, rel, tail;
    CEAFF_RETURN_IF_ERROR(TakeU32(in, &head));
    CEAFF_RETURN_IF_ERROR(TakeU32(in, &rel));
    CEAFF_RETURN_IF_ERROR(TakeU32(in, &tail));
    Status st = g->AddTriple(head, rel, tail);
    if (!st.ok()) {
      return Status::DataLoss("out-of-range triple in delta-state snapshot");
    }
  }
  return Status::OK();
}

uint64_t Remaining(std::istream& in, size_t total) {
  const std::streampos pos = in.tellg();
  if (pos < 0) return 0;
  const size_t at = static_cast<size_t>(pos);
  return at >= total ? 0 : total - at;
}

}  // namespace

std::string SerializeDeltaState(const DeltaState& state) {
  std::ostringstream out;
  out.write(kMagic, sizeof(kMagic));
  PutU32(out, kVersion);
  PutU64(out, state.watermark);
  PutStr(out, state.dataset);
  PutU32(out, state.semantic_dim);
  PutU64(out, state.semantic_seed);
  PutU32(out, state.gcn_dim);
  PutU64(out, state.gcn_seed);
  PutU8(out, state.use_structural ? 1 : 0);
  PutU8(out, state.use_semantic ? 1 : 0);
  PutU8(out, state.use_string ? 1 : 0);
  PutU8(out, state.string_metric);
  PutU8(out, state.two_stage ? 1 : 0);
  PutU8(out, state.adj_functionality_weighted ? 1 : 0);
  PutU8(out, state.adj_add_self_loops ? 1 : 0);
  PutU8(out, state.adj_symmetric_normalize ? 1 : 0);
  PutDoubleVec(out, state.textual_weights);
  PutDoubleVec(out, state.final_weights);
  PutKg(out, state.kg1);
  PutKg(out, state.kg2);
  PutU32Vec(out, state.source_ids);
  PutU32Vec(out, state.target_ids);
  for (const la::Matrix* m :
       {&state.x1, &state.x2, &state.src_struct_emb, &state.tgt_struct_emb,
        &state.src_name_emb, &state.tgt_name_emb, &state.fused}) {
    // ostringstream never fails short of OOM; the Status is structural.
    Status st = la::WriteMatrixSection(*m, out);
    CEAFF_CHECK(st.ok()) << st.message();
  }
  PutU64(out, state.prefs.size());
  PutU64(out, state.target_ids.size());
  for (const std::vector<uint32_t>& row : state.prefs) {
    CEAFF_CHECK(row.size() == state.target_ids.size());
    for (uint32_t x : row) PutU32(out, x);
  }
  std::string bytes = std::move(out).str();
  const uint32_t crc = Crc32Of(bytes.data(), bytes.size());
  char trailer[4];
  std::memcpy(trailer, &crc, 4);
  bytes.append(trailer, 4);
  return bytes;
}

Status ValidateDeltaStateBytes(const std::string& bytes) {
  if (bytes.size() < sizeof(kMagic) + 4 + kTrailerBytes) {
    return Status::DataLoss("delta state too small");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::DataLoss("bad delta-state magic");
  }
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 8, 4);
  if (version != kVersion) {
    return Status::DataLoss(
        StrFormat("unsupported delta-state version %u", version));
  }
  uint32_t stored = 0;
  std::memcpy(&stored, bytes.data() + bytes.size() - 4, 4);
  const uint32_t actual = Crc32Of(bytes.data(), bytes.size() - 4);
  if (stored != actual) {
    return Status::DataLoss("delta-state CRC mismatch");
  }
  return Status::OK();
}

StatusOr<DeltaState> ParseDeltaState(std::string_view bytes) {
  const std::string owned(bytes);
  CEAFF_RETURN_IF_ERROR(ValidateDeltaStateBytes(owned));
  const std::string content = owned.substr(0, owned.size() - kTrailerBytes);
  std::istringstream in(content);
  in.seekg(sizeof(kMagic) + 4);

  DeltaState state;
  CEAFF_RETURN_IF_ERROR(TakeU64(in, &state.watermark));
  CEAFF_RETURN_IF_ERROR(
      TakeStr(in, &state.dataset, Remaining(in, content.size())));
  CEAFF_RETURN_IF_ERROR(TakeU32(in, &state.semantic_dim));
  CEAFF_RETURN_IF_ERROR(TakeU64(in, &state.semantic_seed));
  CEAFF_RETURN_IF_ERROR(TakeU32(in, &state.gcn_dim));
  CEAFF_RETURN_IF_ERROR(TakeU64(in, &state.gcn_seed));
  CEAFF_RETURN_IF_ERROR(TakeBool(in, &state.use_structural));
  CEAFF_RETURN_IF_ERROR(TakeBool(in, &state.use_semantic));
  CEAFF_RETURN_IF_ERROR(TakeBool(in, &state.use_string));
  CEAFF_RETURN_IF_ERROR(TakeU8(in, &state.string_metric));
  CEAFF_RETURN_IF_ERROR(TakeBool(in, &state.two_stage));
  CEAFF_RETURN_IF_ERROR(TakeBool(in, &state.adj_functionality_weighted));
  CEAFF_RETURN_IF_ERROR(TakeBool(in, &state.adj_add_self_loops));
  CEAFF_RETURN_IF_ERROR(TakeBool(in, &state.adj_symmetric_normalize));
  CEAFF_RETURN_IF_ERROR(TakeDoubleVec(in, &state.textual_weights));
  CEAFF_RETURN_IF_ERROR(TakeDoubleVec(in, &state.final_weights));
  CEAFF_RETURN_IF_ERROR(
      TakeKg(in, &state.kg1, Remaining(in, content.size())));
  CEAFF_RETURN_IF_ERROR(
      TakeKg(in, &state.kg2, Remaining(in, content.size())));
  CEAFF_RETURN_IF_ERROR(
      TakeU32Vec(in, &state.source_ids, Remaining(in, content.size())));
  CEAFF_RETURN_IF_ERROR(
      TakeU32Vec(in, &state.target_ids, Remaining(in, content.size())));
  for (la::Matrix* m :
       {&state.x1, &state.x2, &state.src_struct_emb, &state.tgt_struct_emb,
        &state.src_name_emb, &state.tgt_name_emb, &state.fused}) {
    CEAFF_ASSIGN_OR_RETURN(
        *m, la::ReadMatrixSection(in, Remaining(in, content.size())));
  }
  uint64_t pref_rows = 0;
  uint64_t pref_cols = 0;
  CEAFF_RETURN_IF_ERROR(TakeU64(in, &pref_rows));
  CEAFF_RETURN_IF_ERROR(TakeU64(in, &pref_cols));
  if (pref_rows != state.source_ids.size() ||
      pref_cols != state.target_ids.size() ||
      pref_rows * pref_cols * 4 > Remaining(in, content.size())) {
    return Status::DataLoss("delta-state preference shape mismatch");
  }
  state.prefs.resize(pref_rows);
  for (uint64_t r = 0; r < pref_rows; ++r) {
    state.prefs[r].resize(pref_cols);
    for (uint64_t c = 0; c < pref_cols; ++c) {
      CEAFF_RETURN_IF_ERROR(TakeU32(in, &state.prefs[r][c]));
    }
  }
  if (Remaining(in, content.size()) != 0) {
    return Status::DataLoss("trailing bytes in delta state");
  }
  return state;
}

StatusOr<std::unique_ptr<GenerationalStore>> OpenDeltaStateStore(
    const std::string& dir) {
  GenerationalStore::Options options;
  options.failpoint_scope = "delta_state";
  auto store = std::make_unique<GenerationalStore>(dir, options);
  CEAFF_RETURN_IF_ERROR(store->Init());
  return store;
}

Status SaveDeltaState(const DeltaState& state, GenerationalStore* store) {
  return store->Put("state", SerializeDeltaState(state));
}

StatusOr<DeltaState> LoadDeltaState(GenerationalStore* store) {
  CEAFF_ASSIGN_OR_RETURN(std::string bytes,
                         store->Get("state", ValidateDeltaStateBytes));
  return ParseDeltaState(bytes);
}

StatusOr<DeltaState> BuildDeltaState(const kg::KgPair& pair,
                                     const text::WordEmbeddingStore& store,
                                     const core::CeaffOptions& options,
                                     const core::CeaffFeatures& features,
                                     const core::CeaffResult& result,
                                     const std::string& dataset) {
  if (options.use_attribute || options.use_relation) {
    return Status::FailedPrecondition(
        "delta export does not support the attribute/relation features");
  }
  if (options.csls_k > 0) {
    return Status::FailedPrecondition(
        "delta export does not support CSLS post-processing");
  }
  if (options.decision_mode != core::DecisionMode::kCollective) {
    return Status::FailedPrecondition(
        "delta export requires the collective (DAA) decision mode");
  }
  if (options.fusion_mode == core::FusionMode::kLearned) {
    return Status::FailedPrecondition(
        "delta export does not support learned fusion");
  }
  if (options.use_structural && options.gcn.use_weight_transform) {
    return Status::FailedPrecondition(
        "delta export requires the propagation-only GCN "
        "(gcn.use_weight_transform = false)");
  }
  if (options.use_string &&
      options.string_metric ==
          core::CeaffOptions::StringMetric::kLevenshteinRatio &&
      !options.force_exact_string_kernel) {
    return Status::FailedPrecondition(
        "delta export with the Levenshtein metric requires "
        "force_exact_string_kernel (the banded auto-kernel depends on "
        "global matrix shape)");
  }
  if (result.fused.empty() || result.match.target_of_source.empty()) {
    return Status::FailedPrecondition("delta export needs a finished run");
  }

  DeltaState state;
  state.watermark = 0;
  state.dataset = dataset;
  state.semantic_dim = static_cast<uint32_t>(store.dim());
  state.semantic_seed = store.seed();
  state.gcn_dim = static_cast<uint32_t>(options.gcn.dim);
  state.gcn_seed = options.gcn.seed;
  state.use_structural = options.use_structural;
  state.use_semantic = options.use_semantic;
  state.use_string = options.use_string;
  state.string_metric = static_cast<uint8_t>(options.string_metric);
  state.two_stage = options.fusion_mode == core::FusionMode::kAdaptive &&
                    options.use_structural && options.use_semantic &&
                    options.use_string;
  state.adj_functionality_weighted = options.adjacency.functionality_weighted;
  state.adj_add_self_loops = options.adjacency.add_self_loops;
  state.adj_symmetric_normalize = options.adjacency.symmetric_normalize;
  state.textual_weights = result.textual_weights;
  state.final_weights = result.final_weights;
  state.kg1 = pair.kg1;
  state.kg2 = pair.kg2;
  core::TestIds(pair, &state.source_ids, &state.target_ids);
  if (state.source_ids.empty() || state.target_ids.empty()) {
    return Status::FailedPrecondition("delta export needs a test split");
  }

  if (options.use_structural) {
    if (features.structural_x1.empty() || features.structural_x2.empty() ||
        features.structural_src_emb.empty() ||
        features.structural_tgt_emb.empty()) {
      return Status::FailedPrecondition(
          "delta export needs the GCN input features and raw embeddings "
          "(structural stage restored from a pre-delta checkpoint?)");
    }
    state.x1 = features.structural_x1;
    state.x2 = features.structural_x2;
    state.src_struct_emb = features.structural_src_emb;
    state.tgt_struct_emb = features.structural_tgt_emb;
  }
  if (options.use_semantic) {
    state.src_name_emb = text::EmbedNames(
        store, core::GatherNames(pair.kg1, state.source_ids));
    state.tgt_name_emb = text::EmbedNames(
        store, core::GatherNames(pair.kg2, state.target_ids));
  }
  state.fused = result.fused;
  state.prefs = matching::BuildPreferenceLists(result.fused);
  return state;
}

}  // namespace ceaff::delta
