#include "ceaff/delta/delta_patch.h"

#include <cstring>

#include "ceaff/common/string_util.h"

namespace ceaff::delta {

namespace {

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool TakeU32(std::string_view* in, uint32_t* v) {
  if (in->size() < 4) return false;
  std::memcpy(v, in->data(), 4);
  in->remove_prefix(4);
  return true;
}

bool TakeU64(std::string_view* in, uint64_t* v) {
  if (in->size() < 8) return false;
  std::memcpy(v, in->data(), 8);
  in->remove_prefix(8);
  return true;
}

bool TakeString(std::string_view* in, std::string* s) {
  uint32_t len = 0;
  if (!TakeU32(in, &len) || in->size() < len) return false;
  s->assign(in->data(), len);
  in->remove_prefix(len);
  return true;
}

const char* OpName(PatchOp op) {
  switch (op) {
    case PatchOp::kAddEntity: return "add_entity";
    case PatchOp::kAddTriple: return "add_triple";
    case PatchOp::kRemoveTriple: return "remove_triple";
    case PatchOp::kRenameEntity: return "rename_entity";
    case PatchOp::kServeEntity: return "serve_entity";
  }
  return "?";
}

}  // namespace

std::string EncodePatchPayload(const PatchRecord& record) {
  std::string out;
  PutU64(&out, record.id);
  out.push_back(static_cast<char>(record.op));
  out.push_back(static_cast<char>(record.kg));
  PutString(&out, record.uri);
  PutString(&out, record.name);
  PutString(&out, record.head);
  PutString(&out, record.rel);
  PutString(&out, record.tail);
  return out;
}

StatusOr<PatchRecord> DecodePatchPayload(std::string_view payload) {
  PatchRecord record;
  std::string_view in = payload;
  if (!TakeU64(&in, &record.id) || in.size() < 2) {
    return Status::DataLoss("truncated patch payload");
  }
  const uint8_t op = static_cast<uint8_t>(in[0]);
  record.kg = static_cast<uint8_t>(in[1]);
  in.remove_prefix(2);
  if (op < static_cast<uint8_t>(PatchOp::kAddEntity) ||
      op > static_cast<uint8_t>(PatchOp::kServeEntity)) {
    return Status::DataLoss(StrFormat("unknown patch op %u", op));
  }
  record.op = static_cast<PatchOp>(op);
  if (record.kg != 1 && record.kg != 2) {
    return Status::DataLoss(StrFormat("patch kg %u is not 1 or 2",
                                      record.kg));
  }
  if (!TakeString(&in, &record.uri) || !TakeString(&in, &record.name) ||
      !TakeString(&in, &record.head) || !TakeString(&in, &record.rel) ||
      !TakeString(&in, &record.tail) || !in.empty()) {
    return Status::DataLoss("malformed patch payload strings");
  }
  return record;
}

StatusOr<std::vector<PatchRecord>> ParsePatchText(std::string_view text) {
  std::vector<PatchRecord> records;
  size_t lineno = 0;
  size_t pos = 0;
  auto bad = [&lineno](const std::string& why) {
    return Status::InvalidArgument(
        StrFormat("patch line %zu: %s", lineno, why.c_str()));
  };
  while (pos <= text.size()) {
    const size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty() || line.front() == '#') continue;

    const std::vector<std::string> f = Split(std::string(line), '\t');
    if (f.size() < 2) return bad("expected <op>\\t<kg>\\t...");
    PatchRecord r;
    if (f[1] == "1") {
      r.kg = 1;
    } else if (f[1] == "2") {
      r.kg = 2;
    } else {
      return bad("kg field must be 1 or 2, got '" + f[1] + "'");
    }
    if (f[0] == "add_entity") {
      if (f.size() != 3 && f.size() != 4) {
        return bad("add_entity takes <kg>\\t<uri>[\\t<name>]");
      }
      r.op = PatchOp::kAddEntity;
      r.uri = f[2];
      if (f.size() == 4) r.name = f[3];
    } else if (f[0] == "add_triple" || f[0] == "remove_triple") {
      if (f.size() != 5) {
        return bad(f[0] + " takes <kg>\\t<head>\\t<rel>\\t<tail>");
      }
      r.op = f[0] == "add_triple" ? PatchOp::kAddTriple
                                  : PatchOp::kRemoveTriple;
      r.head = f[2];
      r.rel = f[3];
      r.tail = f[4];
    } else if (f[0] == "rename_entity") {
      if (f.size() != 4) return bad("rename_entity takes <kg>\\t<uri>\\t<name>");
      r.op = PatchOp::kRenameEntity;
      r.uri = f[2];
      r.name = f[3];
    } else if (f[0] == "serve_entity") {
      if (f.size() != 3) return bad("serve_entity takes <kg>\\t<uri>");
      r.op = PatchOp::kServeEntity;
      r.uri = f[2];
    } else {
      return bad("unknown op '" + f[0] + "'");
    }
    if (r.op == PatchOp::kAddEntity || r.op == PatchOp::kRenameEntity ||
        r.op == PatchOp::kServeEntity) {
      if (r.uri.empty()) return bad("entity uri must be non-empty");
    } else if (r.head.empty() || r.rel.empty() || r.tail.empty()) {
      return bad("triple uris must be non-empty");
    }
    records.push_back(std::move(r));
  }
  return records;
}

std::string PatchToText(const PatchRecord& record) {
  std::string out = OpName(record.op);
  out += '\t';
  out += record.kg == 1 ? '1' : '2';
  switch (record.op) {
    case PatchOp::kAddEntity:
      out += '\t' + record.uri;
      if (!record.name.empty()) out += '\t' + record.name;
      break;
    case PatchOp::kAddTriple:
    case PatchOp::kRemoveTriple:
      out += '\t' + record.head + '\t' + record.rel + '\t' + record.tail;
      break;
    case PatchOp::kRenameEntity:
      out += '\t' + record.uri + '\t' + record.name;
      break;
    case PatchOp::kServeEntity:
      out += '\t' + record.uri;
      break;
  }
  return out;
}

}  // namespace ceaff::delta
