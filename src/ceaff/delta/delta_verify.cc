#include "ceaff/delta/delta_verify.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "ceaff/common/failpoint.h"
#include "ceaff/common/random.h"
#include "ceaff/common/string_util.h"
#include "ceaff/delta/delta_repair.h"
#include "ceaff/kg/adjacency.h"
#include "ceaff/matching/matching.h"

namespace ceaff::delta {

namespace {

Status GateFail(std::string what) {
  return Status::DataLoss("delta verify gate: " + std::move(what));
}

Status CheckServingIds(const std::vector<uint32_t>& ids, size_t n,
                       const char* side) {
  std::set<uint32_t> seen;
  for (uint32_t e : ids) {
    if (e >= n) {
      return GateFail(StrFormat("%s serving id %u out of range (n=%zu)",
                                side, e, n));
    }
    if (!seen.insert(e).second) {
      return GateFail(StrFormat("%s serving id %u listed twice", side, e));
    }
  }
  return Status::OK();
}

Status CheckShapes(const DeltaState& s) {
  const size_t n1 = s.source_ids.size();
  const size_t n2 = s.target_ids.size();
  CEAFF_RETURN_IF_ERROR(
      CheckServingIds(s.source_ids, s.kg1.num_entities(), "source"));
  CEAFF_RETURN_IF_ERROR(
      CheckServingIds(s.target_ids, s.kg2.num_entities(), "target"));
  if (s.fused.rows() != n1 || s.fused.cols() != n2) {
    return GateFail(StrFormat("fused is %zux%zu, serving split is %zux%zu",
                              s.fused.rows(), s.fused.cols(), n1, n2));
  }
  if (s.prefs.size() != n1) {
    return GateFail(StrFormat("%zu preference rows for %zu sources",
                              s.prefs.size(), n1));
  }
  for (size_t i = 0; i < n1; ++i) {
    if (s.prefs[i].size() != n2) {
      return GateFail(StrFormat("preference row %zu has %zu entries, want %zu",
                                i, s.prefs[i].size(), n2));
    }
  }
  if (s.use_structural) {
    if (s.x1.rows() != s.kg1.num_entities() ||
        s.x2.rows() != s.kg2.num_entities()) {
      return GateFail("GCN input feature rows do not cover the graphs");
    }
    if (s.src_struct_emb.rows() != n1 || s.tgt_struct_emb.rows() != n2) {
      return GateFail("structural embedding rows do not cover the split");
    }
  }
  if (s.use_semantic) {
    if (s.src_name_emb.rows() != n1 || s.tgt_name_emb.rows() != n2 ||
        s.src_name_emb.cols() != s.semantic_dim ||
        s.tgt_name_emb.cols() != s.semantic_dim) {
      return GateFail("name embedding shape does not match the split");
    }
  }
  return Status::OK();
}

Status CheckWeights(const std::vector<double>& w, const char* what) {
  double sum = 0.0;
  for (double v : w) {
    if (!std::isfinite(v) || v < 0.0) {
      return GateFail(StrFormat("%s weight %f not finite/non-negative",
                                what, v));
    }
    sum += v;
  }
  if (std::fabs(sum - 1.0) > 1e-6) {
    return GateFail(StrFormat("%s weights sum to %f, want 1", what, sum));
  }
  return Status::OK();
}

Status CheckFrozenWeights(const DeltaState& s) {
  const size_t enabled = static_cast<size_t>(s.use_structural) +
                         static_cast<size_t>(s.use_semantic) +
                         static_cast<size_t>(s.use_string);
  if (enabled == 0) return GateFail("no enabled feature");
  if (s.two_stage) {
    if (s.textual_weights.size() != 2 || s.final_weights.size() != 2) {
      return GateFail("two-stage state without 2+2 weights");
    }
    CEAFF_RETURN_IF_ERROR(CheckWeights(s.textual_weights, "textual"));
  } else if (s.final_weights.size() != enabled) {
    return GateFail(StrFormat("%zu final weights for %zu enabled features",
                              s.final_weights.size(), enabled));
  }
  return CheckWeights(s.final_weights, "final");
}

/// The audited serving rows: a watermark-seeded uniform sample plus up to
/// `audit_rows` repair-dirty rows — deterministic, so a crash-replay audits
/// the identical slice.
std::vector<uint32_t> PickAuditRows(const DeltaState& s,
                                    const std::vector<uint32_t>& dirty_rows,
                                    size_t audit_rows) {
  const size_t n1 = s.source_ids.size();
  std::set<uint32_t> picked;
  Rng rng(Rng::SplitMix64(s.watermark ^ 0x64656c7461764652ull));
  if (n1 > 0) {
    for (size_t idx :
         rng.SampleWithoutReplacement(n1, std::min(audit_rows, n1))) {
      picked.insert(static_cast<uint32_t>(idx));
    }
  }
  for (size_t k = 0; k < dirty_rows.size() && k < audit_rows; ++k) {
    picked.insert(dirty_rows[k]);
  }
  return std::vector<uint32_t>(picked.begin(), picked.end());
}

}  // namespace

Status VerifyDeltaState(const DeltaState& candidate,
                        const std::vector<uint32_t>& dirty_rows,
                        const VerifyOptions& options,
                        const la::KernelContext& ctx) {
  CEAFF_FAILPOINT("delta.verify.gate");
  // Arm this site with `error` to force a *verdict* failure (kDataLoss, so
  // the apply layer quarantines) as opposed to the transient I/O failure
  // the site above injects.
  if (const Status forced = failpoint::Hit("delta.verify.force_fail");
      !forced.ok()) {
    return GateFail("forced failure (failpoint delta.verify.force_fail)");
  }
  const DeltaState& s = candidate;
  CEAFF_RETURN_IF_ERROR(CheckShapes(s));
  CEAFF_RETURN_IF_ERROR(CheckFrozenWeights(s));

  // Stability: the matching implied by (fused, prefs) must admit no
  // blocking pair. DeferredAcceptanceWithPrefs also validates that every
  // preference row is a permutation.
  CEAFF_ASSIGN_OR_RETURN(const matching::MatchResult match,
                         matching::DeferredAcceptanceWithPrefs(s.fused,
                                                               s.prefs));
  if (const size_t blocking = matching::CountBlockingPairs(s.fused, match);
      blocking != 0) {
    return GateFail(StrFormat("matching admits %zu blocking pairs",
                              blocking));
  }

  const std::vector<uint32_t> audit =
      PickAuditRows(s, dirty_rows, options.audit_rows);
  if (audit.empty()) return Status::OK();

  // Independent recomputation for the audited rows. The structural side
  // redoes the FULL two-hop propagation (O(nnz·d), cheap relative to the
  // similarity matrices) rather than trusting the repair's strips.
  DeltaState oracle = s;
  if (s.use_structural) {
    const kg::AdjacencyOptions adj{s.adj_functionality_weighted,
                                   s.adj_add_self_loops,
                                   s.adj_symmetric_normalize};
    const la::SparseMatrix a1 = kg::BuildAdjacency(s.kg1, adj);
    const la::SparseMatrix a2 = kg::BuildAdjacency(s.kg2, adj);
    const la::Matrix z1 = la::SpMMK(ctx, a1, la::SpMMK(ctx, a1, s.x1));
    const la::Matrix z2 = la::SpMMK(ctx, a2, la::SpMMK(ctx, a2, s.x2));
    oracle.src_struct_emb = core::GatherRows(z1, s.source_ids);
    oracle.tgt_struct_emb = core::GatherRows(z2, s.target_ids);
    for (uint32_t i : audit) {
      if (std::memcmp(oracle.src_struct_emb.row(i), s.src_struct_emb.row(i),
                      s.src_struct_emb.cols() * sizeof(float)) != 0) {
        return GateFail(StrFormat(
            "structural embedding of serving row %u (entity %u) diverges",
            i, s.source_ids[i]));
      }
    }
    if (std::memcmp(oracle.tgt_struct_emb.data(), s.tgt_struct_emb.data(),
                    s.tgt_struct_emb.size() * sizeof(float)) != 0) {
      return GateFail("target-side structural embeddings diverge");
    }
  }

  CEAFF_ASSIGN_OR_RETURN(
      const la::Matrix strip,
      ComputeFusedStrip(oracle, audit, /*row_strip=*/true, ctx));
  for (size_t k = 0; k < audit.size(); ++k) {
    const uint32_t i = audit[k];
    const float* got = s.fused.row(i);
    const float* want = strip.row(k);
    for (size_t j = 0; j < s.fused.cols(); ++j) {
      const bool ok =
          options.audit_tolerance == 0.0
              ? std::memcmp(&got[j], &want[j], sizeof(float)) == 0
              : std::fabs(static_cast<double>(got[j]) -
                          static_cast<double>(want[j])) <=
                    options.audit_tolerance;
      if (!ok) {
        return GateFail(StrFormat(
            "fused(%u, %zu) = %.9g diverges from recomputed %.9g", i, j,
            static_cast<double>(got[j]), static_cast<double>(want[j])));
      }
    }
    // The stored preference row must be the exact argsort of the fused row.
    std::vector<uint32_t> want_prefs(s.fused.cols());
    for (size_t j = 0; j < want_prefs.size(); ++j) {
      want_prefs[j] = static_cast<uint32_t>(j);
    }
    std::sort(want_prefs.begin(), want_prefs.end(),
              [got](uint32_t a, uint32_t b) {
                return got[a] != got[b] ? got[a] > got[b] : a < b;
              });
    if (want_prefs != s.prefs[i]) {
      return GateFail(StrFormat("preference row %u is not the argsort of "
                                "its fused row", i));
    }
  }
  return Status::OK();
}

}  // namespace ceaff::delta
