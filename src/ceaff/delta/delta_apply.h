#ifndef CEAFF_DELTA_DELTA_APPLY_H_
#define CEAFF_DELTA_DELTA_APPLY_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "ceaff/common/cancellation.h"
#include "ceaff/common/statusor.h"
#include "ceaff/delta/delta_repair.h"
#include "ceaff/delta/delta_state.h"
#include "ceaff/delta/delta_verify.h"
#include "ceaff/la/autotune.h"
#include "ceaff/serve/alignment_index.h"

namespace ceaff::delta {

/// One delta-ingestion cycle (DESIGN.md §15): journal → bounded repair →
/// verification gate → generational publish.
struct DeltaApplyOptions {
  /// WAL directory (delta_journal.h). Also holds the QUARANTINE marker.
  std::string journal_dir;
  /// GenerationalStore directory of the "state" artifact (delta_state.h).
  std::string state_dir;
  /// Generational serving-index directory to republish after a successful
  /// state publish. Empty skips the index publish (state-only pipelines).
  std::string index_dir;
  VerifyOptions verify;
  /// Train ANN sections into the republished index (as the batch export).
  bool export_ann = true;
  size_t ann_centroids = 0;
  size_t num_threads = 1;
  size_t block_size = 0;
  /// Measured per-shape kernel tuning for the repair kernels
  /// (la/autotune.h); kOff keeps the static blocking. Bit-identical either
  /// way — tuning only shifts panel partitions.
  la::AutotuneMode autotune = la::AutotuneMode::kOff;
  /// Persisted tune_cache directory (empty = in-process only).
  std::string tune_cache_dir;
  const CancellationToken* cancel = nullptr;  // not owned
};

struct DeltaApplyReport {
  /// True when the journal held nothing past the state's watermark; NO new
  /// generation is published in that case.
  bool no_op = false;
  /// True when the cycle ran the exhaustive rebuild path (RebuildDelta).
  bool rebuilt = false;
  uint64_t watermark_before = 0;
  uint64_t watermark_after = 0;
  RepairStats stats;
  /// Store generation the index directory serves after the publish (0 when
  /// index_dir was empty).
  uint64_t published_index_generation = 0;
  double seconds_repair = 0.0;
  double seconds_verify = 0.0;
  double seconds_publish = 0.0;
};

/// Path of the quarantine marker a failed gate leaves behind.
std::string QuarantineMarkerPath(const std::string& journal_dir);

/// Whether the journal directory is quarantined (a previous batch failed
/// the gate and a full rebuild is pending).
bool IsQuarantined(const std::string& journal_dir);

/// Replays every journal record past the current state's watermark through
/// the bounded repair, verifies, and publishes state (and index) as new
/// generations. Crash-safe at every step: the publish order is index
/// first, state last, so a crash between them leaves the state watermark
/// stale and the next cycle idempotently republishes.
///
/// A batch that fails to apply or fails the verification gate is
/// QUARANTINED: a marker file is written (atomic, failpoint scope
/// "delta.quarantine"), the last good generations keep serving, and every
/// later ApplyDelta refuses with kFailedPrecondition until RebuildDelta
/// clears the marker. kNotFound when no delta state was ever exported.
StatusOr<DeltaApplyReport> ApplyDelta(const DeltaApplyOptions& options);

/// The fallback path: replays the journal onto the last good state with
/// the patch stage only, then recomputes every derived quantity
/// exhaustively under the frozen model (no bounded repair), verifies, and
/// publishes. Clears the quarantine marker on success. Also usable without
/// a quarantine as a self-check.
StatusOr<DeltaApplyReport> RebuildDelta(const DeltaApplyOptions& options);

/// Distills a DeltaState into the serving artifact — names, the DAA match
/// implied by (fused, prefs), L2-normalised embeddings, flattened fusion
/// weights, optional ANN sections. Mirrors the batch pipeline's export
/// stage, so a delta publish is indistinguishable to the serving layer.
StatusOr<serve::AlignmentIndex> BuildIndexFromState(
    const DeltaState& state, bool export_ann, size_t ann_centroids);

}  // namespace ceaff::delta

#endif  // CEAFF_DELTA_DELTA_APPLY_H_
