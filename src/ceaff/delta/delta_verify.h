#ifndef CEAFF_DELTA_DELTA_VERIFY_H_
#define CEAFF_DELTA_DELTA_VERIFY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ceaff/common/status.h"
#include "ceaff/delta/delta_state.h"
#include "ceaff/la/kernels.h"

namespace ceaff::delta {

/// The verification gate a repaired state must pass before it may be
/// published as a new generation. Failing the gate quarantines the batch
/// (delta_apply.h) and leaves the last good generation serving.
struct VerifyOptions {
  /// Rows of the sampled divergence audit: this many uniformly random
  /// serving rows (seeded from the candidate's watermark, so every replay
  /// audits the same sample) plus up to the same number of repair-dirty
  /// rows are recomputed exhaustively and compared against the candidate.
  size_t audit_rows = 8;
  /// Maximum |candidate - recomputed| per audited fused cell. The default
  /// 0.0 demands bit-exactness — the repair path is engineered for it.
  double audit_tolerance = 0.0;
};

/// Runs the full gate over a candidate state:
///   1. structural invariants — shapes consistent, serving ids in range,
///      preference lists well-formed;
///   2. frozen-weight sanity — finite, non-negative, summing to 1 within
///      1e-6 (single-feature states carry the degenerate weight {1});
///   3. stable-matching check — the DAA match implied by (fused, prefs)
///      admits zero blocking pairs;
///   4. sampled divergence audit — for the sampled rows, recompute the
///      structural propagation (full two-hop, from the graphs and the
///      frozen X), every enabled similarity strip and the fusion, then
///      compare against the candidate's rows cell by cell, and check each
///      sampled preference row equals the argsort of its fused row.
///
/// `dirty_rows` (serving row indices the repair recomputed) bias the audit
/// sample toward what actually changed; pass empty for a from-scratch
/// state. Failpoint sites: "delta.verify.gate" (arm `error` to simulate a
/// gate I/O failure) and "delta.verify.force_fail" (arm `error` to force a
/// verification verdict failure — the quarantine drill hook).
Status VerifyDeltaState(const DeltaState& candidate,
                        const std::vector<uint32_t>& dirty_rows,
                        const VerifyOptions& options,
                        const la::KernelContext& ctx);

}  // namespace ceaff::delta

#endif  // CEAFF_DELTA_DELTA_VERIFY_H_
