#include "ceaff/delta/delta_apply.h"

#include <unistd.h>

#include <memory>
#include <utility>
#include <vector>

#include "ceaff/common/durable_io.h"
#include "ceaff/common/failpoint.h"
#include "ceaff/common/logging.h"
#include "ceaff/common/thread_pool.h"
#include "ceaff/common/timer.h"
#include "ceaff/delta/delta_journal.h"
#include "ceaff/matching/matching.h"
#include "ceaff/serve/ann_build.h"

namespace ceaff::delta {

namespace {

struct Runtime {
  std::unique_ptr<ThreadPool> pool;
  std::unique_ptr<la::KernelAutotuner> tuner;
  la::KernelContext ctx;
};

Runtime MakeRuntime(const DeltaApplyOptions& options) {
  Runtime rt;
  if (options.num_threads > 1) {
    rt.pool = std::make_unique<ThreadPool>(options.num_threads);
  }
  rt.ctx.pool = rt.pool.get();
  rt.ctx.opts.OverrideBlock(options.block_size);
  rt.ctx.cancel = options.cancel;
  if (options.autotune != la::AutotuneMode::kOff) {
    la::AutotuneOptions tune_options;
    tune_options.mode = options.autotune;
    tune_options.cache_dir = options.tune_cache_dir;
    rt.tuner = std::make_unique<la::KernelAutotuner>(tune_options);
    const Status s = rt.tuner->Init();
    if (s.ok()) {
      rt.ctx.tuner = rt.tuner.get();
    } else {
      // A broken tune cache must never fail a delta cycle.
      CEAFF_LOG(Warning) << "autotune disabled for this cycle: "
                         << s.ToString();
      rt.tuner.reset();
    }
  }
  return rt;
}

Status WriteQuarantineMarker(const std::string& journal_dir,
                             const Status& verdict) {
  CEAFF_LOG(Error) << "quarantining delta batch: " << verdict
                   << " — last good generation keeps serving; run the "
                      "rebuild path to recover";
  return WriteFileAtomic(QuarantineMarkerPath(journal_dir),
                         verdict.ToString() + "\n", "delta.quarantine");
}

/// Publishes index (when configured) then state — in that order, so a
/// crash between the two leaves the state watermark stale and the next
/// cycle replays the same records and republishes both idempotently.
Status PublishState(const DeltaState& state, const DeltaApplyOptions& options,
                    DeltaApplyReport* report) {
  if (!options.index_dir.empty()) {
    CEAFF_FAILPOINT("delta.publish.index");
    CEAFF_ASSIGN_OR_RETURN(
        const serve::AlignmentIndex index,
        BuildIndexFromState(state, options.export_ann,
                            options.ann_centroids));
    CEAFF_RETURN_IF_ERROR(
        serve::SaveAlignmentIndexGenerational(index, options.index_dir));
    CEAFF_ASSIGN_OR_RETURN(
        report->published_index_generation,
        serve::AlignmentIndexDirGeneration(options.index_dir));
  }
  CEAFF_FAILPOINT("delta.publish.state");
  CEAFF_ASSIGN_OR_RETURN(const std::unique_ptr<GenerationalStore> store,
                         OpenDeltaStateStore(options.state_dir));
  return SaveDeltaState(state, store.get());
}

}  // namespace

std::string QuarantineMarkerPath(const std::string& journal_dir) {
  return journal_dir + "/QUARANTINE";
}

bool IsQuarantined(const std::string& journal_dir) {
  return ::access(QuarantineMarkerPath(journal_dir).c_str(), F_OK) == 0;
}

StatusOr<DeltaApplyReport> ApplyDelta(const DeltaApplyOptions& options) {
  if (IsQuarantined(options.journal_dir)) {
    return Status::FailedPrecondition(
        "delta journal at " + options.journal_dir +
        " is quarantined by a failed batch; run the rebuild path "
        "(RebuildDelta / `ceaff delta rebuild`) to recover");
  }
  CEAFF_ASSIGN_OR_RETURN(const std::unique_ptr<DeltaJournal> journal,
                         DeltaJournal::Open(options.journal_dir));
  CEAFF_ASSIGN_OR_RETURN(const std::unique_ptr<GenerationalStore> store,
                         OpenDeltaStateStore(options.state_dir));
  CEAFF_ASSIGN_OR_RETURN(DeltaState state, LoadDeltaState(store.get()));

  DeltaApplyReport report;
  report.watermark_before = state.watermark;
  report.watermark_after = state.watermark;
  CEAFF_ASSIGN_OR_RETURN(const std::vector<PatchRecord> records,
                         journal->ReadAfter(state.watermark));
  if (records.empty()) {
    // Nothing past the watermark: publish NO new generation.
    report.no_op = true;
    return report;
  }

  const Runtime rt = MakeRuntime(options);
  WallTimer timer;
  StatusOr<RepairOutcome> outcome =
      ApplyPatchesToState(state, records, rt.ctx);
  if (!outcome.ok()) {
    if (outcome.status().IsInvalidArgument()) {
      // A malformed batch fails identically on every replay — quarantine
      // instead of retrying forever.
      CEAFF_RETURN_IF_ERROR(
          WriteQuarantineMarker(options.journal_dir, outcome.status()));
    }
    return outcome.status();
  }
  report.seconds_repair = timer.ElapsedSeconds();
  report.stats = outcome->stats;

  timer.Restart();
  const Status verdict = VerifyDeltaState(outcome->state, outcome->dirty_rows,
                                          options.verify, rt.ctx);
  report.seconds_verify = timer.ElapsedSeconds();
  if (!verdict.ok()) {
    if (verdict.IsDataLoss()) {
      // A verification *verdict* failure (divergence, broken invariant):
      // quarantine the batch. Transient failures (I/O, cancellation)
      // propagate and the batch is retried by the next cycle.
      CEAFF_RETURN_IF_ERROR(
          WriteQuarantineMarker(options.journal_dir, verdict));
    }
    return verdict;
  }

  timer.Restart();
  CEAFF_RETURN_IF_ERROR(PublishState(outcome->state, options, &report));
  report.seconds_publish = timer.ElapsedSeconds();
  report.watermark_after = outcome->state.watermark;
  CEAFF_LOG(Info) << "delta apply: " << report.stats.records_applied
                  << " records (watermark " << report.watermark_before
                  << " -> " << report.watermark_after << "), "
                  << report.stats.dirty_rows << " dirty rows, "
                  << report.stats.dirty_cols << " dirty cols, "
                  << report.stats.resorted_pref_rows
                  << " preference rows re-sorted";
  return report;
}

StatusOr<DeltaApplyReport> RebuildDelta(const DeltaApplyOptions& options) {
  CEAFF_ASSIGN_OR_RETURN(const std::unique_ptr<DeltaJournal> journal,
                         DeltaJournal::Open(options.journal_dir));
  CEAFF_ASSIGN_OR_RETURN(const std::unique_ptr<GenerationalStore> store,
                         OpenDeltaStateStore(options.state_dir));
  CEAFF_ASSIGN_OR_RETURN(DeltaState state, LoadDeltaState(store.get()));

  DeltaApplyReport report;
  report.rebuilt = true;
  report.watermark_before = state.watermark;
  CEAFF_ASSIGN_OR_RETURN(const std::vector<PatchRecord> records,
                         journal->ReadAfter(state.watermark));

  const Runtime rt = MakeRuntime(options);
  WallTimer timer;
  if (!records.empty()) {
    // Patch stage only — every derived quantity is recomputed from
    // scratch below, so the bounded repair's dirty tracking is not needed
    // (and, after a quarantine, not trusted).
    CEAFF_ASSIGN_OR_RETURN(GraphPatchResult patched,
                           ApplyGraphPatches(state, records));
    const size_t old_sr = state.source_ids.size();
    const size_t old_tc = state.target_ids.size();
    report.stats = patched.stats;
    state.kg1 = std::move(patched.kg1);
    state.kg2 = std::move(patched.kg2);
    state.source_ids = std::move(patched.source_ids);
    state.target_ids = std::move(patched.target_ids);
    state.watermark = records.back().id;
    if (state.use_structural) {
      state.x1 = ExtendInputFeatures(state.x1, state.kg1, state.gcn_seed);
      state.x2 = ExtendInputFeatures(state.x2, state.kg2, state.gcn_seed);
    }
    if (state.use_semantic) {
      state.src_name_emb = RepairNameEmbeddings(
          state.src_name_emb, old_sr, state.source_ids, state.kg1,
          patched.renamed1, state.semantic_dim, state.semantic_seed);
      state.tgt_name_emb = RepairNameEmbeddings(
          state.tgt_name_emb, old_tc, state.target_ids, state.kg2,
          patched.renamed2, state.semantic_dim, state.semantic_seed);
    }
  }
  CEAFF_RETURN_IF_ERROR(RecomputeStateExhaustive(&state, rt.ctx));
  report.seconds_repair = timer.ElapsedSeconds();

  timer.Restart();
  CEAFF_RETURN_IF_ERROR(
      VerifyDeltaState(state, /*dirty_rows=*/{}, options.verify, rt.ctx));
  report.seconds_verify = timer.ElapsedSeconds();

  timer.Restart();
  CEAFF_RETURN_IF_ERROR(PublishState(state, options, &report));
  report.seconds_publish = timer.ElapsedSeconds();
  report.watermark_after = state.watermark;

  const std::string marker = QuarantineMarkerPath(options.journal_dir);
  if (::unlink(marker.c_str()) == 0) {
    CEAFF_RETURN_IF_ERROR(FsyncDir(options.journal_dir));
    CEAFF_LOG(Info) << "delta rebuild: quarantine cleared";
  }
  CEAFF_LOG(Info) << "delta rebuild: republished at watermark "
                  << report.watermark_after;
  return report;
}

StatusOr<serve::AlignmentIndex> BuildIndexFromState(const DeltaState& s,
                                                    bool export_ann,
                                                    size_t ann_centroids) {
  serve::AlignmentIndexInput input;
  input.dataset = s.dataset;
  input.source_names = core::GatherNames(s.kg1, s.source_ids);
  input.target_names = core::GatherNames(s.kg2, s.target_ids);

  CEAFF_ASSIGN_OR_RETURN(
      const matching::MatchResult match,
      matching::DeferredAcceptanceWithPrefs(s.fused, s.prefs));
  for (size_t i = 0; i < match.target_of_source.size(); ++i) {
    const int64_t t = match.target_of_source[i];
    if (t < 0) continue;
    input.pairs.push_back({static_cast<uint32_t>(i),
                           static_cast<uint32_t>(t),
                           s.fused.at(i, static_cast<size_t>(t))});
  }

  // Flatten the frozen fusion weights to effective per-serving-feature
  // weights, exactly as the batch pipeline's export stage does.
  double w_struct = 0.0, w_sem = 0.0, w_str = 0.0;
  if (s.two_stage && s.final_weights.size() >= 2 &&
      s.textual_weights.size() >= 2) {
    w_struct = s.final_weights[0];
    w_sem = s.final_weights[1] * s.textual_weights[0];
    w_str = s.final_weights[1] * s.textual_weights[1];
  } else {
    size_t idx = 0;
    auto take = [&]() {
      return idx < s.final_weights.size() ? s.final_weights[idx++] : 0.0;
    };
    if (s.use_structural) w_struct = take();
    if (s.use_semantic) w_sem = take();
    if (s.use_string) w_str = take();
  }
  input.weights = {w_struct, w_sem, w_str};

  if (s.use_semantic) {
    input.semantic_seed = s.semantic_seed;
    input.source_name_emb = s.src_name_emb;
    input.target_name_emb = s.tgt_name_emb;
    input.source_name_emb.L2NormalizeRows();
    input.target_name_emb.L2NormalizeRows();
  }
  if (!s.src_struct_emb.empty() && !s.tgt_struct_emb.empty()) {
    input.source_struct_emb = s.src_struct_emb;
    input.target_struct_emb = s.tgt_struct_emb;
    input.source_struct_emb.L2NormalizeRows();
    input.target_struct_emb.L2NormalizeRows();
  }

  CEAFF_ASSIGN_OR_RETURN(serve::AlignmentIndex index,
                         serve::BuildAlignmentIndex(std::move(input)));
  if (export_ann) {
    serve::AnnBuildOptions ann_options;
    ann_options.num_centroids = ann_centroids;
    const Status ann = serve::BuildAnnSections(&index, ann_options);
    if (!ann.ok() && !ann.IsFailedPrecondition()) return ann;
    if (ann.IsFailedPrecondition()) {
      CEAFF_LOG(Info) << "delta publish: skipping ANN sections: "
                      << ann.message();
    }
  }
  return index;
}

}  // namespace ceaff::delta
