#ifndef CEAFF_DELTA_DELTA_PATCH_H_
#define CEAFF_DELTA_DELTA_PATCH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ceaff/common/statusor.h"

namespace ceaff::delta {

/// One incremental mutation of a served KG pair. Patches are the unit the
/// delta journal (delta_journal.h) persists and the bounded-repair path
/// (delta_repair.h) applies; they deliberately mirror the append-only
/// contract of kg::KnowledgeGraph — entities and relations are only ever
/// added or renamed, never removed, so dense ids stay stable across any
/// patch sequence.
enum class PatchOp : uint8_t {
  /// Add a new entity (uri must not exist yet). `name` is the display
  /// name; empty derives the default from the URI local name, like
  /// KnowledgeGraph::AddEntity.
  kAddEntity = 1,
  /// Add the triple (head, rel, tail) by URI. Head and tail must already
  /// exist; an unknown relation URI is interned.
  kAddTriple = 2,
  /// Remove the first triple equal to (head, rel, tail). All three URIs
  /// must resolve and the triple must be present.
  kRemoveTriple = 3,
  /// Overwrite the display name of an existing entity.
  kRenameEntity = 4,
  /// Append an existing entity to the serving split (a new fused-matrix
  /// row for kg 1, a new column for kg 2). The entity must not already be
  /// serving.
  kServeEntity = 5,
};

/// One journaled patch. `id` is the journal's monotonically increasing
/// record id (0 before the record has been appended); replay idempotence
/// rests on it — records with ids at or below the state watermark are
/// skipped on ReadAfter.
struct PatchRecord {
  uint64_t id = 0;
  PatchOp op = PatchOp::kAddEntity;
  /// Which KG of the pair the patch mutates: 1 or 2.
  uint8_t kg = 1;
  /// Entity URI for kAddEntity / kRenameEntity / kServeEntity.
  std::string uri;
  /// Display name for kAddEntity / kRenameEntity.
  std::string name;
  /// Triple URIs for kAddTriple / kRemoveTriple.
  std::string head;
  std::string rel;
  std::string tail;

  bool operator==(const PatchRecord& other) const {
    return id == other.id && op == other.op && kg == other.kg &&
           uri == other.uri && name == other.name && head == other.head &&
           rel == other.rel && tail == other.tail;
  }
};

/// Serialises a record into the journal payload format (little-endian:
/// u64 id, u8 op, u8 kg, then the five u32-length-prefixed strings).
std::string EncodePatchPayload(const PatchRecord& record);

/// Parses a journal payload. kDataLoss on truncation or an unknown op —
/// the journal layer treats that as record corruption.
StatusOr<PatchRecord> DecodePatchPayload(std::string_view payload);

/// Parses the human-writable TSV patch format, one record per line:
///
///   add_entity\t<1|2>\t<uri>[\t<name>]
///   add_triple\t<1|2>\t<head>\t<rel>\t<tail>
///   remove_triple\t<1|2>\t<head>\t<rel>\t<tail>
///   rename_entity\t<1|2>\t<uri>\t<new_name>
///   serve_entity\t<1|2>\t<uri>
///
/// Blank lines and lines starting with '#' are skipped. InvalidArgument
/// names the offending line number. Returned records carry id 0 (the
/// journal assigns ids on append).
StatusOr<std::vector<PatchRecord>> ParsePatchText(std::string_view text);

/// The TSV line of a record (without trailing newline) — the inverse of
/// ParsePatchText, for status output.
std::string PatchToText(const PatchRecord& record);

}  // namespace ceaff::delta

#endif  // CEAFF_DELTA_DELTA_PATCH_H_
