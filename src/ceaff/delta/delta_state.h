#ifndef CEAFF_DELTA_DELTA_STATE_H_
#define CEAFF_DELTA_DELTA_STATE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ceaff/common/durable_io.h"
#include "ceaff/common/statusor.h"
#include "ceaff/core/pipeline.h"
#include "ceaff/kg/knowledge_graph.h"
#include "ceaff/la/matrix.h"
#include "ceaff/text/word_embedding.h"

namespace ceaff::delta {

/// The frozen-model snapshot the bounded-repair path operates on: enough
/// to recompute any row of every enabled feature, the fused matrix, and
/// the collective matching after a local KG change — WITHOUT retraining.
///
/// The delta contract is "frozen model": the GCN input features X1/X2,
/// the fusion weights and the word-embedding hash space are fixed at
/// export time. A patch changes the graphs, the serving split and the
/// names; repair re-propagates those changes through the frozen model.
/// The from-scratch oracle (delta_verify.h) recomputes under the same
/// frozen model, so repaired and rebuilt results are bit-identical.
///
/// Persisted as the artifact "state" in a GenerationalStore (failpoint
/// scope "delta_state"): container magic "CEAFFDLT", version 1,
/// little-endian, whole-file CRC-32 trailer.
struct DeltaState {
  /// Highest journal record id folded into this state. Records at or
  /// below it are skipped on replay.
  uint64_t watermark = 0;
  std::string dataset;

  // ---- Frozen model configuration ----
  uint32_t semantic_dim = 0;
  uint64_t semantic_seed = 0;
  uint32_t gcn_dim = 0;
  uint64_t gcn_seed = 0;
  bool use_structural = true;
  bool use_semantic = true;
  bool use_string = true;
  /// Numeric value of core::CeaffOptions::StringMetric.
  uint8_t string_metric = 0;
  /// Whether fusion composes as (Mn ⊕ Ml) → textual, then Ms ⊕ textual
  /// (true exactly when all three base features fuse adaptively).
  bool two_stage = false;
  bool adj_functionality_weighted = true;
  bool adj_add_self_loops = true;
  bool adj_symmetric_normalize = true;
  /// Frozen fusion weights: stage-one (Mn, Ml) weights when two_stage,
  /// else empty; and the final-stage weights over the matrices entering
  /// the last fusion (a single 1.0 for a single enabled feature).
  std::vector<double> textual_weights;
  std::vector<double> final_weights;

  // ---- Graph snapshots (ids are the dense KnowledgeGraph ids) ----
  kg::KnowledgeGraph kg1;
  kg::KnowledgeGraph kg2;

  // ---- Serving split: row i of every src-side matrix is entity
  // source_ids[i] of kg1; column j is target_ids[j] of kg2. ----
  std::vector<uint32_t> source_ids;
  std::vector<uint32_t> target_ids;

  /// Trained GCN input features over ALL entities (n1 x gcn_dim,
  /// n2 x gcn_dim). Empty when use_structural is false.
  la::Matrix x1;
  la::Matrix x2;
  /// Raw (un-normalised) GCN output rows of the serving entities.
  la::Matrix src_struct_emb;
  la::Matrix tgt_struct_emb;
  /// Raw name-embedding rows of the serving entities. A row is reused
  /// across repairs as long as the entity's name is unchanged; renamed or
  /// new entities get fresh hash-fallback embeddings (see DESIGN.md §15
  /// for why this is exact for the hash store and an approximation for
  /// stores with registered vocabularies).
  la::Matrix src_name_emb;
  la::Matrix tgt_name_emb;

  /// Fused similarity over the serving split (|source_ids| x |target_ids|).
  la::Matrix fused;
  /// Per-source preference lists (each a permutation of 0..|target_ids|-1,
  /// scores descending, ties by ascending index) — the DAA input, kept so
  /// repair only re-sorts rows whose scores changed.
  std::vector<std::vector<uint32_t>> prefs;
};

/// Serialises to the container format above (CRC trailer included).
std::string SerializeDeltaState(const DeltaState& state);

/// Cheap integrity check (magic, version, whole-file CRC) — the
/// GenerationalStore validator, so a corrupt newest generation falls back
/// to the previous one instead of failing the load.
Status ValidateDeltaStateBytes(const std::string& bytes);

/// Full parse. kDataLoss on any corruption.
StatusOr<DeltaState> ParseDeltaState(std::string_view bytes);

/// Opens (and Init()s) the generational store at `dir` used for delta
/// state, with the "delta_state" failpoint scope.
StatusOr<std::unique_ptr<GenerationalStore>> OpenDeltaStateStore(
    const std::string& dir);

/// Durably publishes `state` as the next generation of artifact "state".
Status SaveDeltaState(const DeltaState& state, GenerationalStore* store);

/// Loads the newest valid generation. kNotFound when none exists.
StatusOr<DeltaState> LoadDeltaState(GenerationalStore* store);

/// Assembles a DeltaState from one finished pipeline run. Refuses
/// (kFailedPrecondition) configurations the frozen-model repair path
/// cannot replay exactly:
///   - use_attribute / use_relation (no incremental recompute path)
///   - csls_k > 0 (a fused-matrix post-pass with global row dependence)
///   - decision_mode other than kCollective
///   - fusion_mode kLearned
///   - gcn.use_weight_transform (repair relies on propagation-only Z)
///   - the Levenshtein string metric without
///     CeaffOptions::force_exact_string_kernel (the banded auto-kernel is
///     an approximation whose band depends on global matrix shape)
/// `features` must carry structural_x1/x2 and structural_src/tgt_emb when
/// the structural feature is enabled (run the pipeline with delta export
/// in mind — see pipeline.h).
StatusOr<DeltaState> BuildDeltaState(const kg::KgPair& pair,
                                     const text::WordEmbeddingStore& store,
                                     const core::CeaffOptions& options,
                                     const core::CeaffFeatures& features,
                                     const core::CeaffResult& result,
                                     const std::string& dataset);

}  // namespace ceaff::delta

#endif  // CEAFF_DELTA_DELTA_STATE_H_
