#ifndef CEAFF_DELTA_DELTA_REPAIR_H_
#define CEAFF_DELTA_DELTA_REPAIR_H_

#include <cstdint>
#include <set>
#include <vector>

#include "ceaff/common/statusor.h"
#include "ceaff/delta/delta_patch.h"
#include "ceaff/delta/delta_state.h"
#include "ceaff/la/kernels.h"

namespace ceaff::delta {

/// Bounded repair: fold a batch of journaled patches into a DeltaState by
/// recomputing ONLY what the patches can have changed, under the frozen
/// model (see delta_state.h). Every recomputed value is produced by the
/// same blocked kernels the full pipeline uses, on gathered row strips and
/// sub-CSR matrices whose per-element accumulation order equals the full
/// computation's — so a repaired state is bit-identical to
/// RecomputeStateExhaustive over the same patched inputs (the property the
/// verification gate's sampled audit and the equivalence test suite pin).
///
/// Repair stages (each with a failpoint site `delta.repair.<stage>`):
///   patch_kg    apply patches to the graph snapshots + serving split
///   structural  re-propagate Z = A'·(A'·X') for the dirty frontier
///               (changed adjacency rows ∪ their A'-neighbourhood ∪ new
///               entities) via sub-CSR SpMM strips
///   textual     refresh name-embedding rows of renamed/new serving
///               entities (hash-fallback store; frozen-name reuse rule)
///   fuse        rebuild fused rows/columns whose feature scores changed,
///               with the frozen fusion weights
///   match       re-sort preference rows that changed (clean rows get a
///               remove+merge patch, not a re-sort) and replay DAA

/// What a repair touched — surfaced in reports and bench output.
struct RepairStats {
  size_t records_applied = 0;
  size_t entities_added = 0;
  size_t triples_added = 0;
  size_t triples_removed = 0;
  size_t entities_renamed = 0;
  size_t serve_added = 0;
  /// Entities whose structural embedding row was re-propagated (both KGs).
  size_t dirty_struct_entities = 0;
  /// Serving fused-matrix rows / columns recomputed.
  size_t dirty_rows = 0;
  size_t dirty_cols = 0;
  /// Preference rows fully re-sorted (dirty rows); the rest got the
  /// cheaper remove+merge patch.
  size_t resorted_pref_rows = 0;
};

/// Result of ApplyPatchesToState: the candidate state (watermark already
/// advanced to the batch's last record id) plus the dirty serving sets,
/// which the verification gate over-samples in its divergence audit.
struct RepairOutcome {
  DeltaState state;
  RepairStats stats;
  std::vector<uint32_t> dirty_rows;
  std::vector<uint32_t> dirty_cols;
};

/// Patches applied to the graph layer only — the shared first stage of
/// both the bounded repair and the exhaustive oracle.
struct GraphPatchResult {
  kg::KnowledgeGraph kg1;
  kg::KnowledgeGraph kg2;
  std::vector<uint32_t> source_ids;
  std::vector<uint32_t> target_ids;
  /// Entity ids whose display name differs from the old snapshot.
  std::set<uint32_t> renamed1;
  std::set<uint32_t> renamed2;
  RepairStats stats;
};

/// Applies `records` to the old state's graph snapshots with strict batch
/// semantics: adding an existing entity, referencing a missing entity or
/// triple, or re-serving a serving entity is InvalidArgument and rejects
/// the WHOLE batch (the caller quarantines it — the journal is the source
/// of truth and a bad record would fail identically on every replay).
StatusOr<GraphPatchResult> ApplyGraphPatches(
    const DeltaState& old_state, const std::vector<PatchRecord>& records);

/// Extends the frozen GCN input features with one row per new entity of
/// `g` (ids >= old_rows). A new row is TruncatedNormal(1, dim, 1.0) from
/// an Rng seeded with SplitMix64(HashBytes(uri) ^ gcn_seed), then row-L2
/// normalised — a pure function of (uri, gcn_seed), so repair and oracle
/// derive identical rows in any order.
la::Matrix ExtendInputFeatures(const la::Matrix& x,
                               const kg::KnowledgeGraph& g,
                               uint64_t gcn_seed);

/// The frozen name-embedding rule, shared by repair and oracle: serving
/// row i reuses `old_emb` row i when it existed and the entity's name is
/// unchanged; renamed and newly-served entities are embedded fresh through
/// a hash-fallback WordEmbeddingStore(semantic_dim, semantic_seed).
la::Matrix RepairNameEmbeddings(const la::Matrix& old_emb,
                                size_t old_serving,
                                const std::vector<uint32_t>& serving_ids,
                                const kg::KnowledgeGraph& patched_kg,
                                const std::set<uint32_t>& renamed,
                                uint32_t semantic_dim,
                                uint64_t semantic_seed);

/// Bounded repair of one batch. `records` must be in journal order with
/// ids above old_state.watermark; the outcome's watermark is the last
/// record's id. An empty batch returns the state unchanged.
StatusOr<RepairOutcome> ApplyPatchesToState(
    const DeltaState& old_state, const std::vector<PatchRecord>& records,
    const la::KernelContext& ctx);

/// The from-scratch oracle: recomputes struct embeddings (full two-hop
/// propagation), every enabled feature matrix, the fused matrix, the
/// preference lists and the matching of `state` exhaustively from its own
/// stored inputs (graphs, X, name embeddings, frozen weights), overwriting
/// the derived fields in place. The reference the gate's divergence audit
/// compares against, and the repair path of RebuildDelta.
Status RecomputeStateExhaustive(DeltaState* state,
                                const la::KernelContext& ctx);

/// The fused similarity strip for a subset of serving rows (over all
/// columns, row_strip=true) or serving columns (over all rows), computed
/// from the state's stored embeddings/names and fused with the frozen
/// weights — the exact per-cell arithmetic of the full pipeline, shared by
/// the bounded repair, the exhaustive oracle and the verification gate's
/// divergence audit.
StatusOr<la::Matrix> ComputeFusedStrip(const DeltaState& state,
                                       const std::vector<uint32_t>& subset,
                                       bool row_strip,
                                       const la::KernelContext& ctx);

/// Builds the sub-CSR of `a` holding `rows` (ascending) over the full
/// column space, for SpMM strips. Exposed for tests.
la::SparseMatrix GatherCsrRows(const la::SparseMatrix& a,
                               const std::vector<uint32_t>& rows);

/// As above but with columns remapped through `col_pos` (ascending ids →
/// their position), producing a |rows| x |col_pos| sub-CSR. Every stored
/// column of the gathered rows must appear in `col_pos`.
la::SparseMatrix GatherCsrRowsRemapCols(const la::SparseMatrix& a,
                                        const std::vector<uint32_t>& rows,
                                        const std::vector<uint32_t>& col_pos);

}  // namespace ceaff::delta

#endif  // CEAFF_DELTA_DELTA_REPAIR_H_
