#include "ceaff/delta/delta_repair.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "ceaff/common/failpoint.h"
#include "ceaff/common/random.h"
#include "ceaff/common/string_util.h"
#include "ceaff/kg/adjacency.h"
#include "ceaff/la/ops.h"
#include "ceaff/matching/matching.h"
#include "ceaff/text/name_embedding.h"
#include "ceaff/text/ngram_similarity.h"

namespace ceaff::delta {

namespace {

kg::AdjacencyOptions AdjOptionsOf(const DeltaState& s) {
  kg::AdjacencyOptions opts;
  opts.functionality_weighted = s.adj_functionality_weighted;
  opts.add_self_loops = s.adj_add_self_loops;
  opts.symmetric_normalize = s.adj_symmetric_normalize;
  return opts;
}

/// Whether CSR row `r` of `a` and `b` store the same (col, value) sequence,
/// compared bitwise — symmetric normalisation and functionality weighting
/// spread one triple's effect across many rows, and a value changed in the
/// last float bit still dirties the row.
bool SameRow(const la::SparseMatrix& a, const la::SparseMatrix& b,
             uint32_t r) {
  const uint32_t a_begin = a.row_ptr()[r], a_end = a.row_ptr()[r + 1];
  const uint32_t b_begin = b.row_ptr()[r], b_end = b.row_ptr()[r + 1];
  const uint32_t len = a_end - a_begin;
  if (len != b_end - b_begin) return false;
  return std::memcmp(a.col_idx().data() + a_begin,
                     b.col_idx().data() + b_begin, len * sizeof(uint32_t)) ==
             0 &&
         std::memcmp(a.values().data() + a_begin,
                     b.values().data() + b_begin, len * sizeof(float)) == 0;
}

/// One KG side of the structural repair: the dirty-Z frontier plus the
/// freshly propagated rows for frontier ∪ extra_ids.
struct StructRepair {
  std::set<uint32_t> dirty;
  std::vector<uint32_t> strip_ids;  // ascending
  la::Matrix strip;                 // |strip_ids| x dim
};

StructRepair RepairStructSide(const kg::KnowledgeGraph& old_kg,
                              const kg::KnowledgeGraph& new_kg,
                              const la::Matrix& x_new, const DeltaState& s,
                              const std::vector<uint32_t>& extra_ids,
                              const la::KernelContext& ctx) {
  StructRepair out;
  const kg::AdjacencyOptions opts = AdjOptionsOf(s);
  const la::SparseMatrix a_old = kg::BuildAdjacency(old_kg, opts);
  const la::SparseMatrix a_new = kg::BuildAdjacency(new_kg, opts);
  const uint32_t old_n = static_cast<uint32_t>(old_kg.num_entities());
  const uint32_t new_n = static_cast<uint32_t>(new_kg.num_entities());

  // changed[r]: row r of A' differs from A (new rows count as changed).
  std::vector<char> changed(new_n, 0);
  for (uint32_t r = 0; r < new_n; ++r) {
    changed[r] = r >= old_n || !SameRow(a_old, a_new, r);
  }
  // z_r = Σ_s A'(r,s)·(A'X')_s is dirty when row r changed or any
  // neighbour's (A'X') row changed; (A'X')_s only changes when row s
  // changed (X is frozen for old ids, and rows referencing new ids must
  // themselves have changed). Self-loops put r in its own neighbourhood.
  for (uint32_t r = 0; r < new_n; ++r) {
    if (changed[r]) {
      out.dirty.insert(r);
      continue;
    }
    for (uint32_t k = a_new.row_ptr()[r]; k < a_new.row_ptr()[r + 1]; ++k) {
      if (changed[a_new.col_idx()[k]]) {
        out.dirty.insert(r);
        break;
      }
    }
  }

  std::set<uint32_t> strip_set(out.dirty);
  strip_set.insert(extra_ids.begin(), extra_ids.end());
  out.strip_ids.assign(strip_set.begin(), strip_set.end());
  if (out.strip_ids.empty()) return out;

  // Two-hop strip: ax rows for the union neighbourhood S, then the final
  // propagation restricted to the strip rows with columns remapped into S.
  std::set<uint32_t> hop_set;
  for (uint32_t r : out.strip_ids) {
    for (uint32_t k = a_new.row_ptr()[r]; k < a_new.row_ptr()[r + 1]; ++k) {
      hop_set.insert(a_new.col_idx()[k]);
    }
  }
  const std::vector<uint32_t> hop(hop_set.begin(), hop_set.end());
  const la::Matrix ax = la::SpMMK(ctx, GatherCsrRows(a_new, hop), x_new);
  out.strip =
      la::SpMMK(ctx, GatherCsrRowsRemapCols(a_new, out.strip_ids, hop), ax);
  return out;
}

/// Serving embedding rows after a repair: clean rows are copied from the
/// old matrix, dirty/new rows come from the strip.
la::Matrix RebuildServingRows(const la::Matrix& old_emb, size_t old_serving,
                              const std::vector<uint32_t>& serving_ids,
                              const StructRepair& repair) {
  la::Matrix out(serving_ids.size(),
                 old_emb.empty() ? repair.strip.cols() : old_emb.cols());
  for (size_t i = 0; i < serving_ids.size(); ++i) {
    const uint32_t e = serving_ids[i];
    const float* src = nullptr;
    if (i < old_serving && repair.dirty.count(e) == 0) {
      src = old_emb.row(i);
    } else {
      const auto it = std::lower_bound(repair.strip_ids.begin(),
                                       repair.strip_ids.end(), e);
      CEAFF_CHECK(it != repair.strip_ids.end() && *it == e)
          << "serving entity " << e << " missing from struct repair strip";
      src = repair.strip.row(
          static_cast<size_t>(it - repair.strip_ids.begin()));
    }
    std::memcpy(out.row(i), src, out.cols() * sizeof(float));
  }
  return out;
}

/// Fuses aligned feature strips with the state's frozen weights —
/// cell-local arithmetic identical to the pipeline's FuseFeatures, so a
/// strip cell equals the corresponding full-matrix cell bit-for-bit.
StatusOr<la::Matrix> FuseStrips(const DeltaState& s, const la::Matrix* ms,
                                const la::Matrix* mn, const la::Matrix* ml) {
  std::vector<const la::Matrix*> enabled;
  if (s.use_structural) enabled.push_back(ms);
  if (s.use_semantic) enabled.push_back(mn);
  if (s.use_string) enabled.push_back(ml);
  if (enabled.empty()) {
    return Status::FailedPrecondition("delta state has no enabled feature");
  }
  for (const la::Matrix* m : enabled) {
    if (m == nullptr || m->empty()) {
      return Status::FailedPrecondition("missing feature strip");
    }
  }
  if (enabled.size() == 1) {
    // Mirror the pipeline's single-feature path: a direct copy, NOT a
    // WeightedSum with weight 1.0 (0.0f + w·x can flip the sign bit of
    // negative zeros).
    return la::Matrix(*enabled[0]);
  }
  if (s.two_stage) {
    if (s.textual_weights.size() != 2 || s.final_weights.size() != 2) {
      return Status::DataLoss("two-stage delta state with malformed weights");
    }
    const la::Matrix textual = la::WeightedSum({mn, ml}, s.textual_weights);
    return la::WeightedSum({ms, &textual}, s.final_weights);
  }
  if (s.final_weights.size() != enabled.size()) {
    return Status::DataLoss("delta state weight count mismatch");
  }
  return la::WeightedSum(enabled, s.final_weights);
}

/// Descending-score order with ascending-index tie break — the exact
/// comparator of matching::BuildPreferenceLists.
struct PrefLess {
  const float* row;
  bool operator()(uint32_t a, uint32_t b) const {
    return row[a] != row[b] ? row[a] > row[b] : a < b;
  }
};

std::vector<std::vector<uint32_t>> RepairPreferenceLists(
    const std::vector<std::vector<uint32_t>>& old_prefs,
    const la::Matrix& fused, const std::set<uint32_t>& dirty_rows,
    const std::vector<uint32_t>& dirty_cols, size_t* resorted) {
  const size_t n1 = fused.rows();
  const size_t n2 = fused.cols();
  const std::set<uint32_t> dc_set(dirty_cols.begin(), dirty_cols.end());
  std::vector<std::vector<uint32_t>> prefs(n1);
  for (size_t i = 0; i < n1; ++i) {
    const PrefLess less{fused.row(i)};
    if (dirty_rows.count(static_cast<uint32_t>(i)) != 0) {
      prefs[i].resize(n2);
      for (size_t j = 0; j < n2; ++j) prefs[i][j] = static_cast<uint32_t>(j);
      std::sort(prefs[i].begin(), prefs[i].end(), less);
      ++*resorted;
      continue;
    }
    // Clean row: its scores at clean columns are unchanged, so the old
    // order of those entries is still valid under the new row. Strip the
    // dirty columns out (order-preserving) and merge them back sorted by
    // their new scores.
    const std::vector<uint32_t>& old_row = old_prefs[i];
    if (dirty_cols.empty()) {
      prefs[i] = old_row;
      continue;
    }
    std::vector<uint32_t> kept;
    kept.reserve(n2);
    for (uint32_t c : old_row) {
      if (dc_set.count(c) == 0) kept.push_back(c);
    }
    std::vector<uint32_t> inserted = dirty_cols;
    std::sort(inserted.begin(), inserted.end(), less);
    prefs[i].resize(n2);
    std::merge(kept.begin(), kept.end(), inserted.begin(), inserted.end(),
               prefs[i].begin(), less);
  }
  return prefs;
}

}  // namespace

StatusOr<la::Matrix> ComputeFusedStrip(const DeltaState& s,
                                       const std::vector<uint32_t>& subset,
                                       bool row_strip,
                                       const la::KernelContext& ctx) {
  la::Matrix ms, mn, ml;
  if (s.use_structural) {
    ms = row_strip
             ? la::CosineSimilarityK(
                   ctx, core::GatherRows(s.src_struct_emb, subset),
                   s.tgt_struct_emb)
             : la::CosineSimilarityK(
                   ctx, s.src_struct_emb,
                   core::GatherRows(s.tgt_struct_emb, subset));
  }
  if (s.use_semantic) {
    mn = row_strip ? la::CosineSimilarityK(
                         ctx, core::GatherRows(s.src_name_emb, subset),
                         s.tgt_name_emb)
                   : la::CosineSimilarityK(
                         ctx, s.src_name_emb,
                         core::GatherRows(s.tgt_name_emb, subset));
  }
  if (s.use_string) {
    std::vector<std::string> src_names, tgt_names;
    if (row_strip) {
      std::vector<uint32_t> sub_ids;
      for (uint32_t i : subset) sub_ids.push_back(s.source_ids[i]);
      src_names = core::GatherNames(s.kg1, sub_ids);
      tgt_names = core::GatherNames(s.kg2, s.target_ids);
    } else {
      std::vector<uint32_t> sub_ids;
      for (uint32_t j : subset) sub_ids.push_back(s.target_ids[j]);
      src_names = core::GatherNames(s.kg1, s.source_ids);
      tgt_names = core::GatherNames(s.kg2, sub_ids);
    }
    ml = s.string_metric ==
                 static_cast<uint8_t>(
                     core::CeaffOptions::StringMetric::kNgramDice)
             ? text::NgramSimilarityMatrix(src_names, tgt_names)
             : la::StringSimilarityMatrixK(ctx, src_names, tgt_names);
  }
  return FuseStrips(s, &ms, &mn, &ml);
}

la::SparseMatrix GatherCsrRows(const la::SparseMatrix& a,
                               const std::vector<uint32_t>& rows) {
  std::vector<la::Triplet> triplets;
  for (size_t i = 0; i < rows.size(); ++i) {
    const uint32_t r = rows[i];
    for (uint32_t k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k) {
      triplets.push_back({static_cast<uint32_t>(i), a.col_idx()[k],
                          a.values()[k]});
    }
  }
  return la::SparseMatrix::Build(rows.size(), a.cols(), std::move(triplets));
}

la::SparseMatrix GatherCsrRowsRemapCols(const la::SparseMatrix& a,
                                        const std::vector<uint32_t>& rows,
                                        const std::vector<uint32_t>& col_pos) {
  std::vector<la::Triplet> triplets;
  for (size_t i = 0; i < rows.size(); ++i) {
    const uint32_t r = rows[i];
    for (uint32_t k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k) {
      const uint32_t c = a.col_idx()[k];
      const auto it = std::lower_bound(col_pos.begin(), col_pos.end(), c);
      CEAFF_CHECK(it != col_pos.end() && *it == c)
          << "column " << c << " missing from sub-CSR column map";
      triplets.push_back({static_cast<uint32_t>(i),
                          static_cast<uint32_t>(it - col_pos.begin()),
                          a.values()[k]});
    }
  }
  return la::SparseMatrix::Build(rows.size(), col_pos.size(),
                                 std::move(triplets));
}

StatusOr<GraphPatchResult> ApplyGraphPatches(
    const DeltaState& old_state, const std::vector<PatchRecord>& records) {
  GraphPatchResult out;
  out.kg1 = old_state.kg1;
  out.kg2 = old_state.kg2;
  out.source_ids = old_state.source_ids;
  out.target_ids = old_state.target_ids;
  for (const PatchRecord& rec : records) {
    kg::KnowledgeGraph* g = rec.kg == 1 ? &out.kg1 : &out.kg2;
    auto bad = [&rec](const char* why) {
      return Status::InvalidArgument(StrFormat(
          "patch record %llu (%s): %s",
          static_cast<unsigned long long>(rec.id), PatchToText(rec).c_str(),
          why));
    };
    switch (rec.op) {
      case PatchOp::kAddEntity: {
        if (g->FindEntity(rec.uri).ok()) return bad("entity already exists");
        g->AddEntity(rec.uri, rec.name);
        ++out.stats.entities_added;
        break;
      }
      case PatchOp::kAddTriple: {
        StatusOr<uint32_t> head = g->FindEntity(rec.head);
        if (!head.ok()) return bad("unknown head entity");
        StatusOr<uint32_t> tail = g->FindEntity(rec.tail);
        if (!tail.ok()) return bad("unknown tail entity");
        const uint32_t rel = g->AddRelation(rec.rel);
        CEAFF_RETURN_IF_ERROR(g->AddTriple(*head, rel, *tail));
        ++out.stats.triples_added;
        break;
      }
      case PatchOp::kRemoveTriple: {
        StatusOr<uint32_t> head = g->FindEntity(rec.head);
        if (!head.ok()) return bad("unknown head entity");
        StatusOr<uint32_t> tail = g->FindEntity(rec.tail);
        if (!tail.ok()) return bad("unknown tail entity");
        StatusOr<uint32_t> rel = g->FindRelation(rec.rel);
        if (!rel.ok()) return bad("unknown relation");
        if (!g->RemoveTriple(*head, *rel, *tail).ok()) {
          return bad("triple not present");
        }
        ++out.stats.triples_removed;
        break;
      }
      case PatchOp::kRenameEntity: {
        StatusOr<uint32_t> e = g->FindEntity(rec.uri);
        if (!e.ok()) return bad("unknown entity");
        g->SetEntityName(*e, rec.name);
        break;
      }
      case PatchOp::kServeEntity: {
        StatusOr<uint32_t> e = g->FindEntity(rec.uri);
        if (!e.ok()) return bad("unknown entity");
        std::vector<uint32_t>* ids =
            rec.kg == 1 ? &out.source_ids : &out.target_ids;
        if (std::find(ids->begin(), ids->end(), *e) != ids->end()) {
          return bad("entity already serving");
        }
        ids->push_back(*e);
        ++out.stats.serve_added;
        break;
      }
    }
    ++out.stats.records_applied;
  }
  // Net renames only: a rename back to the original name dirties nothing.
  for (int side = 0; side < 2; ++side) {
    const kg::KnowledgeGraph& oldg = side == 0 ? old_state.kg1 : old_state.kg2;
    const kg::KnowledgeGraph& newg = side == 0 ? out.kg1 : out.kg2;
    std::set<uint32_t>& renamed = side == 0 ? out.renamed1 : out.renamed2;
    for (uint32_t e = 0; e < oldg.num_entities(); ++e) {
      if (newg.entity_name(e) != oldg.entity_name(e)) renamed.insert(e);
    }
  }
  out.stats.entities_renamed = out.renamed1.size() + out.renamed2.size();
  return out;
}

la::Matrix ExtendInputFeatures(const la::Matrix& x,
                               const kg::KnowledgeGraph& g,
                               uint64_t gcn_seed) {
  if (g.num_entities() == x.rows()) return x;
  la::Matrix out(g.num_entities(), x.cols());
  std::memcpy(out.data(), x.data(), x.size() * sizeof(float));
  for (size_t e = x.rows(); e < g.num_entities(); ++e) {
    const std::string& uri = g.entity_uri(static_cast<uint32_t>(e));
    Rng rng(Rng::SplitMix64(HashBytes(uri.data(), uri.size()) ^ gcn_seed));
    la::Matrix row = la::Matrix::TruncatedNormal(1, x.cols(), 1.0f, &rng);
    row.L2NormalizeRows();
    std::memcpy(out.row(e), row.data(), x.cols() * sizeof(float));
  }
  return out;
}

la::Matrix RepairNameEmbeddings(const la::Matrix& old_emb,
                                size_t old_serving,
                                const std::vector<uint32_t>& serving_ids,
                                const kg::KnowledgeGraph& patched_kg,
                                const std::set<uint32_t>& renamed,
                                uint32_t semantic_dim,
                                uint64_t semantic_seed) {
  la::Matrix out(serving_ids.size(), semantic_dim);
  // Fresh rows come from a bare hash-fallback store: exact for the
  // default store, a documented approximation when the export-time store
  // carried registered vocabularies (those are not persisted).
  const text::WordEmbeddingStore store(semantic_dim, semantic_seed);
  for (size_t i = 0; i < serving_ids.size(); ++i) {
    const uint32_t e = serving_ids[i];
    if (i < old_serving && renamed.count(e) == 0) {
      std::memcpy(out.row(i), old_emb.row(i),
                  semantic_dim * sizeof(float));
    } else {
      const std::vector<float> vec =
          text::EmbedName(store, patched_kg.entity_name(e));
      std::memcpy(out.row(i), vec.data(), semantic_dim * sizeof(float));
    }
  }
  return out;
}

StatusOr<RepairOutcome> ApplyPatchesToState(
    const DeltaState& old_state, const std::vector<PatchRecord>& records,
    const la::KernelContext& ctx) {
  RepairOutcome out;
  out.state = old_state;
  if (records.empty()) return out;

  CEAFF_FAILPOINT("delta.repair.patch_kg");
  CEAFF_ASSIGN_OR_RETURN(GraphPatchResult patched,
                         ApplyGraphPatches(old_state, records));
  DeltaState& s = out.state;
  s.kg1 = std::move(patched.kg1);
  s.kg2 = std::move(patched.kg2);
  s.source_ids = std::move(patched.source_ids);
  s.target_ids = std::move(patched.target_ids);
  s.watermark = records.back().id;
  out.stats = patched.stats;

  const size_t old_sr = old_state.source_ids.size();
  const size_t old_tc = old_state.target_ids.size();
  std::set<uint32_t> dirty_rows, dirty_cols;  // serving indices
  for (size_t i = old_sr; i < s.source_ids.size(); ++i) {
    dirty_rows.insert(static_cast<uint32_t>(i));
  }
  for (size_t j = old_tc; j < s.target_ids.size(); ++j) {
    dirty_cols.insert(static_cast<uint32_t>(j));
  }

  CEAFF_FAILPOINT("delta.repair.structural");
  if (s.use_structural) {
    s.x1 = ExtendInputFeatures(old_state.x1, s.kg1, s.gcn_seed);
    s.x2 = ExtendInputFeatures(old_state.x2, s.kg2, s.gcn_seed);
    std::vector<uint32_t> extra1(s.source_ids.begin() + old_sr,
                                 s.source_ids.end());
    std::vector<uint32_t> extra2(s.target_ids.begin() + old_tc,
                                 s.target_ids.end());
    const StructRepair r1 =
        RepairStructSide(old_state.kg1, s.kg1, s.x1, s, extra1, ctx);
    const StructRepair r2 =
        RepairStructSide(old_state.kg2, s.kg2, s.x2, s, extra2, ctx);
    out.stats.dirty_struct_entities = r1.dirty.size() + r2.dirty.size();
    s.src_struct_emb =
        RebuildServingRows(old_state.src_struct_emb, old_sr, s.source_ids, r1);
    s.tgt_struct_emb =
        RebuildServingRows(old_state.tgt_struct_emb, old_tc, s.target_ids, r2);
    for (size_t i = 0; i < old_sr; ++i) {
      if (r1.dirty.count(s.source_ids[i]) != 0) {
        dirty_rows.insert(static_cast<uint32_t>(i));
      }
    }
    for (size_t j = 0; j < old_tc; ++j) {
      if (r2.dirty.count(s.target_ids[j]) != 0) {
        dirty_cols.insert(static_cast<uint32_t>(j));
      }
    }
  }

  CEAFF_FAILPOINT("delta.repair.textual");
  if (s.use_semantic) {
    s.src_name_emb =
        RepairNameEmbeddings(old_state.src_name_emb, old_sr, s.source_ids,
                             s.kg1, patched.renamed1, s.semantic_dim,
                             s.semantic_seed);
    s.tgt_name_emb =
        RepairNameEmbeddings(old_state.tgt_name_emb, old_tc, s.target_ids,
                             s.kg2, patched.renamed2, s.semantic_dim,
                             s.semantic_seed);
  }
  if (s.use_semantic || s.use_string) {
    for (size_t i = 0; i < old_sr; ++i) {
      if (patched.renamed1.count(s.source_ids[i]) != 0) {
        dirty_rows.insert(static_cast<uint32_t>(i));
      }
    }
    for (size_t j = 0; j < old_tc; ++j) {
      if (patched.renamed2.count(s.target_ids[j]) != 0) {
        dirty_cols.insert(static_cast<uint32_t>(j));
      }
    }
  }

  CEAFF_FAILPOINT("delta.repair.fuse");
  out.dirty_rows.assign(dirty_rows.begin(), dirty_rows.end());
  out.dirty_cols.assign(dirty_cols.begin(), dirty_cols.end());
  out.stats.dirty_rows = out.dirty_rows.size();
  out.stats.dirty_cols = out.dirty_cols.size();
  la::Matrix fused(s.source_ids.size(), s.target_ids.size());
  for (size_t i = 0; i < old_sr; ++i) {
    std::memcpy(fused.row(i), old_state.fused.row(i),
                old_tc * sizeof(float));
  }
  if (!out.dirty_rows.empty()) {
    CEAFF_ASSIGN_OR_RETURN(
        const la::Matrix strip,
        ComputeFusedStrip(s, out.dirty_rows, /*row_strip=*/true, ctx));
    for (size_t k = 0; k < out.dirty_rows.size(); ++k) {
      std::memcpy(fused.row(out.dirty_rows[k]), strip.row(k),
                  fused.cols() * sizeof(float));
    }
  }
  if (!out.dirty_cols.empty()) {
    CEAFF_ASSIGN_OR_RETURN(
        const la::Matrix strip,
        ComputeFusedStrip(s, out.dirty_cols, /*row_strip=*/false, ctx));
    for (size_t i = 0; i < fused.rows(); ++i) {
      for (size_t k = 0; k < out.dirty_cols.size(); ++k) {
        fused.at(i, out.dirty_cols[k]) = strip.at(i, k);
      }
    }
  }
  s.fused = std::move(fused);

  CEAFF_FAILPOINT("delta.repair.match");
  s.prefs = RepairPreferenceLists(old_state.prefs, s.fused, dirty_rows,
                                  out.dirty_cols,
                                  &out.stats.resorted_pref_rows);
  return out;
}

Status RecomputeStateExhaustive(DeltaState* state,
                                const la::KernelContext& ctx) {
  DeltaState& s = *state;
  if (s.use_structural) {
    const kg::AdjacencyOptions opts = AdjOptionsOf(s);
    const la::SparseMatrix a1 = kg::BuildAdjacency(s.kg1, opts);
    const la::SparseMatrix a2 = kg::BuildAdjacency(s.kg2, opts);
    const la::Matrix z1 = la::SpMMK(ctx, a1, la::SpMMK(ctx, a1, s.x1));
    const la::Matrix z2 = la::SpMMK(ctx, a2, la::SpMMK(ctx, a2, s.x2));
    s.src_struct_emb = core::GatherRows(z1, s.source_ids);
    s.tgt_struct_emb = core::GatherRows(z2, s.target_ids);
  }
  std::vector<uint32_t> all_rows(s.source_ids.size());
  for (size_t i = 0; i < all_rows.size(); ++i) {
    all_rows[i] = static_cast<uint32_t>(i);
  }
  CEAFF_ASSIGN_OR_RETURN(s.fused,
                         ComputeFusedStrip(s, all_rows, /*row_strip=*/true,
                                           ctx));
  s.prefs = matching::BuildPreferenceLists(s.fused);
  return Status::OK();
}

}  // namespace ceaff::delta
