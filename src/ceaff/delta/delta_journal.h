#ifndef CEAFF_DELTA_DELTA_JOURNAL_H_
#define CEAFF_DELTA_DELTA_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ceaff/common/statusor.h"
#include "ceaff/delta/delta_patch.h"

namespace ceaff::delta {

/// Append-only write-ahead log of KG patches: the durable source of truth
/// the repair path replays from.
///
/// Layout under `dir`: numbered segments `wal.<%08u>`, each
///
///   [8B magic "CEAFFWAL"][u32 version = 1][u64 segment seq]
///   [u32 len][u32 crc32(payload)][payload]   ... repeated
///
/// where payload is EncodePatchPayload. All integers little-endian.
///
/// Durability contract of Append: the frame is written and fsynced before
/// Append returns OK; record ids are assigned contiguously from
/// last_record_id()+1. The in-memory id advances as soon as the frame is
/// fully in the file — even when the subsequent fsync fails — so a retried
/// batch never reuses an id that might already be on disk.
///
/// Recovery contract of Open: every segment but the newest must parse to
/// its end (kDataLoss otherwise — middle-of-history corruption is not
/// repairable by truncation). The newest segment may carry a torn tail
/// from a crash mid-append; Open physically truncates it back to the last
/// whole, CRC-valid record and fsyncs. A newest segment whose header
/// itself is torn (crash mid-rotation) is deleted outright — it can hold
/// no committed records.
///
/// Failpoint sites: `delta.journal.append.before_write`,
/// `delta.journal.append.after_write` (frame written, not yet fsynced),
/// `delta.journal.rotate` (before the new segment is created).
///
/// Not thread-safe; one writer per directory.
class DeltaJournal {
 public:
  struct Options {
    /// A segment at or past this size is closed and a fresh one started
    /// before the next append.
    uint64_t max_segment_bytes = 1ull << 20;
  };

  /// Opens (creating the directory and first segment if needed), replays
  /// every segment to recover the last assigned record id, and repairs the
  /// newest segment's tail as described above.
  static StatusOr<std::unique_ptr<DeltaJournal>> Open(std::string dir,
                                                      Options options);
  static StatusOr<std::unique_ptr<DeltaJournal>> Open(std::string dir) {
    return Open(std::move(dir), Options());
  }

  ~DeltaJournal();
  DeltaJournal(const DeltaJournal&) = delete;
  DeltaJournal& operator=(const DeltaJournal&) = delete;

  /// Durably appends `record` (its `id` field is ignored) and returns the
  /// assigned id.
  StatusOr<uint64_t> Append(const PatchRecord& record);

  /// Every journaled record with id > `watermark`, in append order. When
  /// two committed records carry the same id (possible only after manual
  /// journal surgery), the first wins.
  StatusOr<std::vector<PatchRecord>> ReadAfter(uint64_t watermark) const;

  /// Highest record id ever assigned (0 for an empty journal).
  uint64_t last_record_id() const { return last_record_id_; }

  const std::string& dir() const { return dir_; }

  /// Segment sequence numbers on disk, ascending (tests).
  std::vector<uint64_t> SegmentSeqs() const;

 private:
  DeltaJournal(std::string dir, Options options)
      : dir_(std::move(dir)), options_(options) {}

  Status OpenImpl();
  Status RotateLocked();
  std::string SegmentPath(uint64_t seq) const;

  std::string dir_;
  Options options_;
  uint64_t last_record_id_ = 0;
  uint64_t tail_seq_ = 0;
  uint64_t tail_bytes_ = 0;
  int tail_fd_ = -1;
};

}  // namespace ceaff::delta

#endif  // CEAFF_DELTA_DELTA_JOURNAL_H_
