#include "ceaff/delta/delta_journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "ceaff/common/crc32.h"
#include "ceaff/common/durable_io.h"
#include "ceaff/common/failpoint.h"
#include "ceaff/common/logging.h"
#include "ceaff/common/string_util.h"

namespace ceaff::delta {

namespace {

namespace fs = std::filesystem;

constexpr char kMagic[8] = {'C', 'E', 'A', 'F', 'F', 'W', 'A', 'L'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = 8 + 4 + 8;
constexpr size_t kFrameBytes = 4 + 4;
/// Hard cap on one record's payload — anything larger in a frame header is
/// corruption, not data.
constexpr uint32_t kMaxPayloadBytes = 16u << 20;

std::string ErrnoMessage(const char* what, const std::string& path) {
  return StrFormat("%s %s: %s", what, path.c_str(), std::strerror(errno));
}

Status WriteAll(int fd, const char* data, size_t len,
                const std::string& path) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("write", path));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

std::string SegmentHeader(uint64_t seq) {
  std::string h(kMagic, sizeof(kMagic));
  char buf[12];
  std::memcpy(buf, &kVersion, 4);
  std::memcpy(buf + 4, &seq, 8);
  h.append(buf, sizeof(buf));
  return h;
}

struct SegmentScan {
  std::vector<PatchRecord> records;
  /// Byte offset just past the last whole, CRC-valid record.
  uint64_t valid_bytes = 0;
  /// True when bytes past valid_bytes exist but do not form a whole valid
  /// record — a torn tail.
  bool torn_tail = false;
  /// True when even the 20-byte header is incomplete.
  bool torn_header = false;
};

/// Parses one segment file. Only unrecoverable shapes (bad magic, bad
/// version, CRC-valid frame with an undecodable payload, oversized frame
/// length in the middle of intact data followed by a valid record — i.e.
/// anything that cannot be explained by a single interrupted append) are
/// reported via torn_tail/torn_header for the caller to judge by position.
StatusOr<SegmentScan> ScanSegment(const std::string& path,
                                  uint64_t expected_seq) {
  CEAFF_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  SegmentScan scan;
  if (bytes.size() < kHeaderBytes) {
    scan.torn_header = true;
    return scan;
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::DataLoss("bad WAL magic in " + path);
  }
  uint32_t version = 0;
  uint64_t seq = 0;
  std::memcpy(&version, bytes.data() + 8, 4);
  std::memcpy(&seq, bytes.data() + 12, 8);
  if (version != kVersion) {
    return Status::DataLoss(
        StrFormat("unsupported WAL version %u in %s", version, path.c_str()));
  }
  if (seq != expected_seq) {
    return Status::DataLoss(
        StrFormat("WAL segment %s declares seq %llu, name says %llu",
                  path.c_str(), static_cast<unsigned long long>(seq),
                  static_cast<unsigned long long>(expected_seq)));
  }
  size_t off = kHeaderBytes;
  scan.valid_bytes = off;
  while (off < bytes.size()) {
    if (bytes.size() - off < kFrameBytes) {
      scan.torn_tail = true;
      return scan;
    }
    uint32_t len = 0;
    uint32_t crc = 0;
    std::memcpy(&len, bytes.data() + off, 4);
    std::memcpy(&crc, bytes.data() + off + 4, 4);
    if (len > kMaxPayloadBytes || bytes.size() - off - kFrameBytes < len) {
      scan.torn_tail = true;
      return scan;
    }
    const std::string_view payload(bytes.data() + off + kFrameBytes, len);
    if (Crc32Of(payload.data(), payload.size()) != crc) {
      scan.torn_tail = true;
      return scan;
    }
    // CRC held, so the bytes are exactly what Append wrote; a payload that
    // still fails to decode is a format bug, not a torn write.
    CEAFF_ASSIGN_OR_RETURN(PatchRecord record, DecodePatchPayload(payload));
    scan.records.push_back(std::move(record));
    off += kFrameBytes + len;
    scan.valid_bytes = off;
  }
  return scan;
}

StatusOr<std::vector<uint64_t>> ListSegments(const std::string& dir) {
  std::vector<uint64_t> seqs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() != 4 + 8 || name.rfind("wal.", 0) != 0) continue;
    uint64_t seq = 0;
    bool digits = true;
    for (size_t i = 4; i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') {
        digits = false;
        break;
      }
      seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
    }
    if (digits) seqs.push_back(seq);
  }
  if (ec) return Status::IOError("cannot list " + dir + ": " + ec.message());
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

}  // namespace

DeltaJournal::~DeltaJournal() {
  if (tail_fd_ >= 0) ::close(tail_fd_);
}

std::string DeltaJournal::SegmentPath(uint64_t seq) const {
  return dir_ + "/" +
         StrFormat("wal.%08llu", static_cast<unsigned long long>(seq));
}

StatusOr<std::unique_ptr<DeltaJournal>> DeltaJournal::Open(std::string dir,
                                                           Options options) {
  if (options.max_segment_bytes < kHeaderBytes + kFrameBytes) {
    return Status::InvalidArgument("max_segment_bytes too small");
  }
  std::unique_ptr<DeltaJournal> journal(
      new DeltaJournal(std::move(dir), options));
  CEAFF_RETURN_IF_ERROR(journal->OpenImpl());
  return journal;
}

Status DeltaJournal::OpenImpl() {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return Status::IOError("cannot create " + dir_ + ": " + ec.message());
  }
  CEAFF_ASSIGN_OR_RETURN(std::vector<uint64_t> seqs, ListSegments(dir_));

  if (!seqs.empty()) {
    // A crash between "create new segment" and "write its header" during
    // rotation leaves a torn-header newest segment holding no committed
    // records; drop it and fall back to the previous segment as the tail.
    const std::string last_path = SegmentPath(seqs.back());
    CEAFF_ASSIGN_OR_RETURN(SegmentScan probe,
                           ScanSegment(last_path, seqs.back()));
    if (probe.torn_header) {
      CEAFF_LOG(Warning) << "dropping torn-header WAL segment " << last_path;
      if (::unlink(last_path.c_str()) != 0) {
        return Status::IOError(ErrnoMessage("unlink", last_path));
      }
      CEAFF_RETURN_IF_ERROR(FsyncDir(dir_));
      seqs.pop_back();
    }
  }

  if (seqs.empty()) {
    tail_seq_ = 1;
    const std::string path = SegmentPath(tail_seq_);
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
    if (fd < 0) return Status::IOError(ErrnoMessage("create", path));
    const std::string header = SegmentHeader(tail_seq_);
    Status st = WriteAll(fd, header.data(), header.size(), path);
    if (st.ok() && ::fsync(fd) != 0) {
      st = Status::IOError(ErrnoMessage("fsync", path));
    }
    if (!st.ok()) {
      ::close(fd);
      ::unlink(path.c_str());
      return st;
    }
    CEAFF_RETURN_IF_ERROR(FsyncDir(dir_));
    tail_fd_ = fd;
    tail_bytes_ = kHeaderBytes;
    return Status::OK();
  }

  for (size_t i = 0; i < seqs.size(); ++i) {
    const bool is_last = i + 1 == seqs.size();
    const std::string path = SegmentPath(seqs[i]);
    CEAFF_ASSIGN_OR_RETURN(SegmentScan scan, ScanSegment(path, seqs[i]));
    if (scan.torn_header) {
      // Only reachable for non-last segments (the last was pre-checked).
      return Status::DataLoss("torn header in non-tail WAL segment " + path);
    }
    if (scan.torn_tail) {
      if (!is_last) {
        return Status::DataLoss("torn tail in non-tail WAL segment " + path);
      }
      CEAFF_LOG(Warning) << "truncating torn WAL tail in " << path << " to "
                         << scan.valid_bytes << " bytes";
      if (::truncate(path.c_str(), static_cast<off_t>(scan.valid_bytes)) !=
          0) {
        return Status::IOError(ErrnoMessage("truncate", path));
      }
      const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
      if (fd < 0) return Status::IOError(ErrnoMessage("open", path));
      const bool synced = ::fsync(fd) == 0;
      ::close(fd);
      if (!synced) return Status::IOError(ErrnoMessage("fsync", path));
    }
    for (const PatchRecord& record : scan.records) {
      last_record_id_ = std::max(last_record_id_, record.id);
    }
    if (is_last) {
      tail_seq_ = seqs[i];
      tail_bytes_ = scan.valid_bytes;
      tail_fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
      if (tail_fd_ < 0) return Status::IOError(ErrnoMessage("open", path));
    }
  }
  return Status::OK();
}

Status DeltaJournal::RotateLocked() {
  CEAFF_FAILPOINT("delta.journal.rotate");
  const uint64_t next_seq = tail_seq_ + 1;
  const std::string path = SegmentPath(next_seq);
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) return Status::IOError(ErrnoMessage("create", path));
  const std::string header = SegmentHeader(next_seq);
  Status st = WriteAll(fd, header.data(), header.size(), path);
  if (st.ok() && ::fsync(fd) != 0) {
    st = Status::IOError(ErrnoMessage("fsync", path));
  }
  if (!st.ok()) {
    ::close(fd);
    ::unlink(path.c_str());
    return st;
  }
  CEAFF_RETURN_IF_ERROR(FsyncDir(dir_));
  ::close(tail_fd_);
  tail_fd_ = fd;
  tail_seq_ = next_seq;
  tail_bytes_ = kHeaderBytes;
  return Status::OK();
}

StatusOr<uint64_t> DeltaJournal::Append(const PatchRecord& record) {
  CEAFF_FAILPOINT("delta.journal.append.before_write");
  if (tail_bytes_ >= options_.max_segment_bytes) {
    CEAFF_RETURN_IF_ERROR(RotateLocked());
  }

  PatchRecord assigned = record;
  assigned.id = last_record_id_ + 1;
  const std::string payload = EncodePatchPayload(assigned);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32Of(payload.data(), payload.size());
  std::string frame;
  frame.reserve(kFrameBytes + payload.size());
  frame.append(reinterpret_cast<const char*>(&len), 4);
  frame.append(reinterpret_cast<const char*>(&crc), 4);
  frame.append(payload);

  const std::string path = SegmentPath(tail_seq_);
  Status st = WriteAll(tail_fd_, frame.data(), frame.size(), path);
  if (!st.ok()) {
    // A partial frame in the tail would corrupt every later append; wind
    // the file back to the last committed record (best effort — a replay
    // after crash performs the same truncation from the scan side).
    (void)::ftruncate(tail_fd_, static_cast<off_t>(tail_bytes_));
    return st;
  }
  // The frame is fully in the file: commit the id now, before fsync, so a
  // failed fsync (which may still have persisted the bytes) can never lead
  // to this id being assigned twice.
  last_record_id_ = assigned.id;
  tail_bytes_ += frame.size();

  CEAFF_FAILPOINT("delta.journal.append.after_write");
  if (::fsync(tail_fd_) != 0) {
    return Status::IOError(ErrnoMessage("fsync", path));
  }
  return assigned.id;
}

StatusOr<std::vector<PatchRecord>> DeltaJournal::ReadAfter(
    uint64_t watermark) const {
  CEAFF_ASSIGN_OR_RETURN(std::vector<uint64_t> seqs, ListSegments(dir_));
  std::vector<PatchRecord> out;
  std::vector<uint64_t> seen;
  for (size_t i = 0; i < seqs.size(); ++i) {
    CEAFF_ASSIGN_OR_RETURN(SegmentScan scan,
                           ScanSegment(SegmentPath(seqs[i]), seqs[i]));
    if (scan.torn_header || scan.torn_tail) {
      // Open() repaired the tail before any appends, so an in-process read
      // should never see a torn segment.
      return Status::DataLoss("torn WAL segment " + SegmentPath(seqs[i]));
    }
    for (PatchRecord& record : scan.records) {
      if (record.id <= watermark) continue;
      if (std::find(seen.begin(), seen.end(), record.id) != seen.end()) {
        continue;
      }
      seen.push_back(record.id);
      out.push_back(std::move(record));
    }
  }
  return out;
}

std::vector<uint64_t> DeltaJournal::SegmentSeqs() const {
  StatusOr<std::vector<uint64_t>> seqs = ListSegments(dir_);
  return seqs.ok() ? *seqs : std::vector<uint64_t>{};
}

}  // namespace ceaff::delta
