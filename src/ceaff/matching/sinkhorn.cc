#include "ceaff/matching/sinkhorn.h"

#include <cmath>

#include "ceaff/common/logging.h"

namespace ceaff::matching {

StatusOr<la::Matrix> SinkhornNormalizeChecked(const la::Matrix& similarity,
                                              const SinkhornOptions& options) {
  la::Matrix plan(similarity.rows(), similarity.cols());
  if (plan.empty()) return plan;
  // Stabilised exponentiation: subtract the global max first.
  float max_value = similarity.data()[0];
  for (size_t i = 0; i < similarity.size(); ++i) {
    max_value = std::max(max_value, similarity.data()[i]);
  }
  const double inv_t = 1.0 / std::max(options.temperature, 1e-6);
  for (size_t i = 0; i < similarity.size(); ++i) {
    plan.data()[i] = static_cast<float>(
        std::exp((similarity.data()[i] - max_value) * inv_t));
  }
  for (size_t iter = 0; iter < options.iterations; ++iter) {
    CEAFF_RETURN_IF_ERROR(CheckCancel(options.cancel, "sinkhorn iteration"));
    // Row normalisation.
    for (size_t r = 0; r < plan.rows(); ++r) {
      float* row = plan.row(r);
      double sum = 0.0;
      for (size_t c = 0; c < plan.cols(); ++c) sum += row[c];
      if (sum <= 0.0) continue;
      float inv = static_cast<float>(1.0 / sum);
      for (size_t c = 0; c < plan.cols(); ++c) row[c] *= inv;
    }
    // Column normalisation (to balanced column mass n1/n2).
    const double target = static_cast<double>(plan.rows()) /
                          static_cast<double>(plan.cols());
    for (size_t c = 0; c < plan.cols(); ++c) {
      double sum = 0.0;
      for (size_t r = 0; r < plan.rows(); ++r) sum += plan.at(r, c);
      if (sum <= 0.0) continue;
      float scale = static_cast<float>(target / sum);
      for (size_t r = 0; r < plan.rows(); ++r) plan.at(r, c) *= scale;
    }
  }
  return plan;
}

StatusOr<MatchResult> SinkhornMatchChecked(const la::Matrix& similarity,
                                           const SinkhornOptions& options) {
  CEAFF_ASSIGN_OR_RETURN(la::Matrix plan,
                         SinkhornNormalizeChecked(similarity, options));
  return GreedyOneToOne(plan);
}

la::Matrix SinkhornNormalize(const la::Matrix& similarity,
                             const SinkhornOptions& options) {
  CEAFF_CHECK(options.cancel == nullptr)
      << "use SinkhornNormalizeChecked with a cancellation token";
  return SinkhornNormalizeChecked(similarity, options).value();
}

MatchResult SinkhornMatch(const la::Matrix& similarity,
                          const SinkhornOptions& options) {
  CEAFF_CHECK(options.cancel == nullptr)
      << "use SinkhornMatchChecked with a cancellation token";
  return SinkhornMatchChecked(similarity, options).value();
}

}  // namespace ceaff::matching
