#include "ceaff/matching/sinkhorn.h"

#include <cmath>

#include "ceaff/common/logging.h"

namespace ceaff::matching {

StatusOr<la::Matrix> SinkhornNormalizeChecked(const la::Matrix& similarity,
                                              const SinkhornOptions& options) {
  la::Matrix plan(similarity.rows(), similarity.cols());
  if (plan.empty()) return plan;
  // Stabilised exponentiation: subtract the global max first.
  float max_value = similarity.data()[0];
  for (size_t i = 0; i < similarity.size(); ++i) {
    max_value = std::max(max_value, similarity.data()[i]);
  }
  const double inv_t = 1.0 / std::max(options.temperature, 1e-6);
  for (size_t i = 0; i < similarity.size(); ++i) {
    plan.data()[i] = static_cast<float>(
        std::exp((similarity.data()[i] - max_value) * inv_t));
  }
  // The kernel row/column sweeps accumulate in the exact order of the old
  // in-line loops, so the plan is bit-identical to the historical
  // sequential implementation at any thread count.
  static const la::KernelContext kDefault;
  const la::KernelContext& ctx =
      options.kernel != nullptr ? *options.kernel : kDefault;
  const double target = static_cast<double>(plan.rows()) /
                        static_cast<double>(plan.cols());
  for (size_t iter = 0; iter < options.iterations; ++iter) {
    CEAFF_RETURN_IF_ERROR(CheckCancel(options.cancel, "sinkhorn iteration"));
    la::RowNormalizeK(ctx, &plan);
    // Column normalisation (to balanced column mass n1/n2).
    la::ColNormalizeK(ctx, &plan, target);
  }
  return plan;
}

StatusOr<MatchResult> SinkhornMatchChecked(const la::Matrix& similarity,
                                           const SinkhornOptions& options) {
  CEAFF_ASSIGN_OR_RETURN(la::Matrix plan,
                         SinkhornNormalizeChecked(similarity, options));
  return GreedyOneToOne(plan);
}

la::Matrix SinkhornNormalize(const la::Matrix& similarity,
                             const SinkhornOptions& options) {
  CEAFF_CHECK(options.cancel == nullptr)
      << "use SinkhornNormalizeChecked with a cancellation token";
  return SinkhornNormalizeChecked(similarity, options).value();
}

MatchResult SinkhornMatch(const la::Matrix& similarity,
                          const SinkhornOptions& options) {
  CEAFF_CHECK(options.cancel == nullptr)
      << "use SinkhornMatchChecked with a cancellation token";
  return SinkhornMatchChecked(similarity, options).value();
}

}  // namespace ceaff::matching
