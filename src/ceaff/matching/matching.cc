#include "ceaff/matching/matching.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "ceaff/la/ops.h"

namespace ceaff::matching {

std::vector<kg::AlignmentPair> MatchResult::Pairs() const {
  std::vector<kg::AlignmentPair> out;
  for (size_t i = 0; i < target_of_source.size(); ++i) {
    if (target_of_source[i] >= 0) {
      out.push_back({static_cast<uint32_t>(i),
                     static_cast<uint32_t>(target_of_source[i])});
    }
  }
  return out;
}

size_t MatchResult::num_matched() const {
  size_t n = 0;
  for (int64_t t : target_of_source) n += (t >= 0);
  return n;
}

MatchResult GreedyIndependent(const la::Matrix& similarity) {
  MatchResult result;
  std::vector<size_t> best = la::RowArgmax(similarity);
  result.target_of_source.resize(similarity.rows());
  for (size_t i = 0; i < best.size(); ++i) {
    result.target_of_source[i] = static_cast<int64_t>(best[i]);
  }
  if (similarity.cols() == 0) {
    result.target_of_source.assign(similarity.rows(), -1);
  }
  return result;
}

MatchResult GreedyOneToOne(const la::Matrix& similarity) {
  struct Cell {
    float score;
    uint32_t row, col;
  };
  std::vector<Cell> cells;
  cells.reserve(similarity.rows() * similarity.cols());
  for (size_t i = 0; i < similarity.rows(); ++i) {
    const float* p = similarity.row(i);
    for (size_t j = 0; j < similarity.cols(); ++j) {
      cells.push_back({p[j], static_cast<uint32_t>(i),
                       static_cast<uint32_t>(j)});
    }
  }
  std::sort(cells.begin(), cells.end(), [](const Cell& a, const Cell& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.row != b.row) return a.row < b.row;
    return a.col < b.col;
  });
  MatchResult result;
  result.target_of_source.assign(similarity.rows(), -1);
  std::vector<char> used_col(similarity.cols(), 0);
  size_t matched = 0;
  const size_t want = std::min(similarity.rows(), similarity.cols());
  for (const Cell& c : cells) {
    if (matched == want) break;
    if (result.target_of_source[c.row] >= 0 || used_col[c.col]) continue;
    result.target_of_source[c.row] = c.col;
    used_col[c.col] = 1;
    ++matched;
  }
  return result;
}

std::vector<std::vector<uint32_t>> BuildPreferenceLists(
    const la::Matrix& similarity) {
  // Preference lists of sources: target indices sorted by descending score,
  // ties to the lower index (deterministic).
  const size_t n1 = similarity.rows();
  const size_t n2 = similarity.cols();
  std::vector<std::vector<uint32_t>> prefs(n1);
  for (size_t i = 0; i < n1; ++i) {
    const float* row = similarity.row(i);
    prefs[i].resize(n2);
    std::iota(prefs[i].begin(), prefs[i].end(), 0u);
    std::sort(prefs[i].begin(), prefs[i].end(),
              [row](uint32_t a, uint32_t b) {
                return row[a] != row[b] ? row[a] > row[b] : a < b;
              });
  }
  return prefs;
}

namespace {

/// Shared Gale–Shapley engine; `trace`, `cancel` and `prefs` may be null
/// (null prefs are built from the matrix). The cancellation token is
/// polled once per n1 proposals (one nominal "round"), so even adversarial
/// instances with O(n1·n2) proposals stay responsive without paying an
/// atomic load per proposal.
StatusOr<MatchResult> DaaImpl(const la::Matrix& similarity,
                              std::vector<DaaTraceEvent>* trace,
                              const CancellationToken* cancel,
                              const std::vector<std::vector<uint32_t>>*
                                  caller_prefs = nullptr) {
  const size_t n1 = similarity.rows();
  const size_t n2 = similarity.cols();
  MatchResult result;
  result.target_of_source.assign(n1, -1);
  if (n1 == 0 || n2 == 0) return result;

  std::vector<std::vector<uint32_t>> own_prefs;
  if (caller_prefs == nullptr) {
    own_prefs = BuildPreferenceLists(similarity);
  }
  const std::vector<std::vector<uint32_t>>& prefs =
      caller_prefs != nullptr ? *caller_prefs : own_prefs;

  // Target-side preference: j prefers i over i' iff sim(i,j) > sim(i',j),
  // ties to the lower source index — compared directly on the matrix.
  auto target_prefers = [&similarity](uint32_t j, uint32_t challenger,
                                      uint32_t incumbent) {
    float sc = similarity.at(challenger, j);
    float si = similarity.at(incumbent, j);
    return sc != si ? sc > si : challenger < incumbent;
  };

  std::vector<int64_t> source_of_target(n2, -1);
  std::vector<uint32_t> next_proposal(n1, 0);
  // Track the proposal round per source for the trace (round = how many
  // times it has re-entered the free queue).
  std::vector<size_t> round_of_source(n1, 1);
  std::queue<uint32_t> free_sources;
  for (uint32_t i = 0; i < n1; ++i) free_sources.push(i);

  size_t proposals = 0;
  while (!free_sources.empty()) {
    if (proposals++ % n1 == 0) {
      CEAFF_RETURN_IF_ERROR(CheckCancel(cancel, "deferred acceptance"));
    }
    uint32_t u = free_sources.front();
    free_sources.pop();
    if (next_proposal[u] >= n2) continue;  // exhausted (only when n1 > n2)
    uint32_t v = prefs[u][next_proposal[u]++];
    int64_t incumbent = source_of_target[v];
    bool accepted =
        incumbent < 0 ||
        target_prefers(v, u, static_cast<uint32_t>(incumbent));
    if (trace != nullptr) {
      trace->push_back({round_of_source[u], u, v, accepted,
                        accepted ? incumbent : -1});
    }
    if (accepted) {
      source_of_target[v] = u;
      result.target_of_source[u] = v;
      if (incumbent >= 0) {
        result.target_of_source[incumbent] = -1;
        round_of_source[incumbent]++;
        free_sources.push(static_cast<uint32_t>(incumbent));
      }
    } else {
      round_of_source[u]++;
      free_sources.push(u);
    }
  }
  return result;
}

}  // namespace

MatchResult DeferredAcceptance(const la::Matrix& similarity) {
  // No token ⇒ DaaImpl cannot fail.
  return DaaImpl(similarity, nullptr, nullptr).value();
}

StatusOr<MatchResult> DeferredAcceptanceChecked(
    const la::Matrix& similarity, const CancellationToken* cancel) {
  return DaaImpl(similarity, nullptr, cancel);
}

StatusOr<MatchResult> DeferredAcceptanceWithPrefs(
    const la::Matrix& similarity,
    const std::vector<std::vector<uint32_t>>& prefs,
    const CancellationToken* cancel) {
  if (prefs.size() != similarity.rows()) {
    return Status::InvalidArgument(
        "preference lists do not match similarity rows");
  }
  for (const std::vector<uint32_t>& row : prefs) {
    if (row.size() != similarity.cols()) {
      return Status::InvalidArgument(
          "a preference list does not cover every target");
    }
  }
  return DaaImpl(similarity, nullptr, cancel, &prefs);
}

MatchResult DeferredAcceptanceTraced(const la::Matrix& similarity,
                                     std::vector<DaaTraceEvent>* trace) {
  trace->clear();
  return DaaImpl(similarity, trace, nullptr).value();
}

MatchResult DeferredAcceptanceTargetProposing(const la::Matrix& similarity) {
  // Run the source-proposing engine on the transposed instance, then map
  // the target-side assignment back to source order.
  MatchResult transposed =
      DaaImpl(similarity.Transposed(), nullptr, nullptr).value();
  MatchResult result;
  result.target_of_source.assign(similarity.rows(), -1);
  for (size_t j = 0; j < transposed.target_of_source.size(); ++j) {
    int64_t i = transposed.target_of_source[j];
    if (i >= 0) {
      result.target_of_source[static_cast<size_t>(i)] =
          static_cast<int64_t>(j);
    }
  }
  return result;
}

StatusOr<MatchResult> HungarianMatch(const la::Matrix& similarity) {
  const size_t n1 = similarity.rows();
  const size_t n2 = similarity.cols();
  if (n1 > n2) {
    return Status::InvalidArgument(
        "HungarianMatch requires rows <= cols (sources <= targets)");
  }
  MatchResult result;
  result.target_of_source.assign(n1, -1);
  if (n1 == 0) return result;

  // Jonker–Volgenant style shortest augmenting path on cost = -similarity,
  // 1-based arrays per the classical formulation.
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n1 + 1, 0.0), v(n2 + 1, 0.0);
  std::vector<size_t> p(n2 + 1, 0);    // p[j]: source matched to target j
  std::vector<size_t> way(n2 + 1, 0);  // back-pointers along the alt path
  for (size_t i = 1; i <= n1; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(n2 + 1, kInf);
    std::vector<char> used(n2 + 1, 0);
    do {
      used[j0] = 1;
      size_t i0 = p[j0], j1 = 0;
      double delta = kInf;
      for (size_t j = 1; j <= n2; ++j) {
        if (used[j]) continue;
        double cost = -static_cast<double>(similarity.at(i0 - 1, j - 1));
        double cur = cost - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= n2; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }
  for (size_t j = 1; j <= n2; ++j) {
    if (p[j] != 0) {
      result.target_of_source[p[j] - 1] = static_cast<int64_t>(j - 1);
    }
  }
  return result;
}

size_t CountBlockingPairs(const la::Matrix& similarity,
                          const MatchResult& match) {
  const size_t n1 = similarity.rows();
  const size_t n2 = similarity.cols();
  CEAFF_CHECK(match.target_of_source.size() == n1);
  // source_of_target from the match.
  std::vector<int64_t> source_of_target(n2, -1);
  for (size_t i = 0; i < n1; ++i) {
    int64_t t = match.target_of_source[i];
    if (t >= 0) source_of_target[static_cast<size_t>(t)] = static_cast<int64_t>(i);
  }
  auto src_pref = [&similarity](uint32_t i, uint32_t j, int64_t cur) {
    // Does source i strictly prefer target j to its current target?
    if (cur < 0) return true;  // unmatched prefers anyone
    float sj = similarity.at(i, j);
    float sc = similarity.at(i, static_cast<size_t>(cur));
    return sj != sc ? sj > sc : j < static_cast<uint32_t>(cur);
  };
  auto dst_pref = [&similarity](uint32_t j, uint32_t i, int64_t cur) {
    if (cur < 0) return true;
    float si = similarity.at(i, j);
    float sc = similarity.at(static_cast<size_t>(cur), j);
    return si != sc ? si > sc : i < static_cast<uint32_t>(cur);
  };
  size_t blocking = 0;
  for (uint32_t i = 0; i < n1; ++i) {
    for (uint32_t j = 0; j < n2; ++j) {
      if (match.target_of_source[i] == static_cast<int64_t>(j)) continue;
      if (src_pref(i, j, match.target_of_source[i]) &&
          dst_pref(j, i, source_of_target[j])) {
        ++blocking;
      }
    }
  }
  return blocking;
}

double TotalWeight(const la::Matrix& similarity, const MatchResult& match) {
  double sum = 0.0;
  for (size_t i = 0; i < match.target_of_source.size(); ++i) {
    int64_t t = match.target_of_source[i];
    if (t >= 0) sum += similarity.at(i, static_cast<size_t>(t));
  }
  return sum;
}

}  // namespace ceaff::matching
