#ifndef CEAFF_MATCHING_MATCHING_H_
#define CEAFF_MATCHING_MATCHING_H_

#include <cstdint>
#include <vector>

#include "ceaff/common/cancellation.h"
#include "ceaff/common/statusor.h"
#include "ceaff/kg/knowledge_graph.h"
#include "ceaff/la/matrix.h"

namespace ceaff::matching {

/// Outcome of an alignment decision procedure over an n1 x n2 similarity
/// matrix: for every source row, the chosen target column or -1.
struct MatchResult {
  std::vector<int64_t> target_of_source;

  /// The matched pairs in source order (unmatched sources skipped).
  std::vector<kg::AlignmentPair> Pairs() const;

  size_t num_matched() const;
};

/// Independent decision making as used by prior EA work and the paper's
/// "CEAFF w/o C" ablation: every source row takes its argmax target; the
/// same target may be chosen by several sources.
MatchResult GreedyIndependent(const la::Matrix& similarity);

/// One-to-one greedy: repeatedly commits the globally highest remaining
/// cell. Not part of CEAFF — included as the natural "collective but
/// unstable" contrast for the design-choice ablation benches.
MatchResult GreedyOneToOne(const la::Matrix& similarity);

/// Collective EA via the Stable Matching Problem (Sec. VI): preference
/// lists are rows (sources) and columns (targets) of `similarity`, ranked
/// descending with lower index breaking ties, and the match is produced by
/// the source-proposing Deferred Acceptance Algorithm (Gale–Shapley).
///
/// Complexity O(n1·n2·log n2 + n1·n2); every source is matched when
/// n1 <= n2, and the result admits no blocking pair (CountBlockingPairs
/// returns 0) with respect to these preferences.
MatchResult DeferredAcceptance(const la::Matrix& similarity);

/// DeferredAcceptance with cooperative cancellation: `cancel` (may be
/// null) is polled once per batch of |sources| proposals, returning
/// kCancelled/kDeadlineExceeded instead of completing the matching.
StatusOr<MatchResult> DeferredAcceptanceChecked(
    const la::Matrix& similarity, const CancellationToken* cancel);

/// The preference lists DeferredAcceptance builds internally: row i holds
/// every target id sorted by descending similarity(i, ·), ties to the
/// lower index. Exposed so incremental callers (the delta-repair path) can
/// persist the lists, patch only the rows whose scores changed, and replay
/// the proposal loop without re-sorting every row.
std::vector<std::vector<uint32_t>> BuildPreferenceLists(
    const la::Matrix& similarity);

/// DeferredAcceptance over caller-provided preference lists. `prefs` must
/// be exactly what BuildPreferenceLists(similarity) would return (every
/// row a permutation of all target ids in descending-score order); the
/// target-side comparisons still read `similarity` directly. The result is
/// bit-identical to DeferredAcceptance(similarity). InvalidArgument on a
/// shape mismatch.
StatusOr<MatchResult> DeferredAcceptanceWithPrefs(
    const la::Matrix& similarity,
    const std::vector<std::vector<uint32_t>>& prefs,
    const CancellationToken* cancel = nullptr);

/// Target-proposing deferred acceptance: the mirror matching in which
/// targets propose to sources. Gale–Shapley is proposer-optimal, so this
/// yields the *target-optimal* (source-pessimal) stable matching; where it
/// differs from DeferredAcceptance, the instance has multiple stable
/// matchings. Exposed for the "other collective matching methods" analysis
/// (paper future work); CEAFF itself uses the source-proposing variant.
MatchResult DeferredAcceptanceTargetProposing(const la::Matrix& similarity);

/// Round-by-round DAA events, for the Figure 4 trace reproduction.
struct DaaTraceEvent {
  size_t round;
  uint32_t source;
  uint32_t target;
  bool accepted;       // target said "maybe"
  int64_t displaced;   // source bumped out by this acceptance, or -1
};

/// DeferredAcceptance variant that records every proposal.
MatchResult DeferredAcceptanceTraced(const la::Matrix& similarity,
                                     std::vector<DaaTraceEvent>* trace);

/// Maximum-weight bipartite matching via the Jonker–Volgenant variant of
/// the Hungarian algorithm (the Sec. VI discussion alternative). Requires
/// n1 <= n2; matches every source. O(n1²·n2).
StatusOr<MatchResult> HungarianMatch(const la::Matrix& similarity);

/// Number of blocking pairs (u, v): u prefers v to its assigned target and
/// v prefers u to its assigned source (unmatched counts as worst). Zero for
/// any stable matching. O(n1·n2).
size_t CountBlockingPairs(const la::Matrix& similarity,
                          const MatchResult& match);

/// Sum of similarity over matched pairs — the objective Hungarian
/// maximises.
double TotalWeight(const la::Matrix& similarity, const MatchResult& match);

}  // namespace ceaff::matching

#endif  // CEAFF_MATCHING_MATCHING_H_
