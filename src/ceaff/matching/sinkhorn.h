#ifndef CEAFF_MATCHING_SINKHORN_H_
#define CEAFF_MATCHING_SINKHORN_H_

#include <cstddef>

#include "ceaff/common/cancellation.h"
#include "ceaff/common/statusor.h"
#include "ceaff/la/kernels.h"
#include "ceaff/la/matrix.h"
#include "ceaff/matching/matching.h"

namespace ceaff::matching {

/// Sinkhorn-based collective matching — another "other collective matching
/// method" in the direction of the paper's future work. The similarity
/// matrix is turned into an approximately doubly-stochastic transport plan
/// by Sinkhorn-Knopp iterations on exp(sim / temperature); the plan's mass
/// already encodes one-to-one pressure, so decoding it (greedily, one-to-
/// one) yields a collective assignment without preference lists.
struct SinkhornOptions {
  /// Entropic temperature: lower = closer to a hard permutation, but
  /// slower/less stable convergence.
  double temperature = 0.05;
  size_t iterations = 50;
  /// Optional cooperative cancellation/deadline signal, polled once per
  /// Sinkhorn iteration. Only the Checked entry points can report it; the
  /// plain ones CHECK-fail if it fires, so pair a token with Checked.
  const CancellationToken* cancel = nullptr;
  /// Optional kernel context for the row/column normalisation sweeps
  /// (la::RowNormalizeK / la::ColNormalizeK). Null runs them sequentially;
  /// the plan is bit-identical at any thread count. Not owned.
  const la::KernelContext* kernel = nullptr;
};

/// Row/column-normalises exp(similarity / temperature) `iterations` times
/// and returns the resulting transport plan (all entries positive; rows
/// sum to ~1; columns sum to ~n1/n2). Shapes may be rectangular.
/// kCancelled/kDeadlineExceeded when `options.cancel` fires mid-run.
StatusOr<la::Matrix> SinkhornNormalizeChecked(
    const la::Matrix& similarity, const SinkhornOptions& options = {});

/// Full matcher: Sinkhorn plan + one-to-one greedy decoding, with
/// cancellation support.
StatusOr<MatchResult> SinkhornMatchChecked(
    const la::Matrix& similarity, const SinkhornOptions& options = {});

/// Convenience wrappers for call sites without a cancellation token
/// (options.cancel must be null — CHECK otherwise).
la::Matrix SinkhornNormalize(const la::Matrix& similarity,
                             const SinkhornOptions& options = {});
MatchResult SinkhornMatch(const la::Matrix& similarity,
                          const SinkhornOptions& options = {});

}  // namespace ceaff::matching

#endif  // CEAFF_MATCHING_SINKHORN_H_
