#ifndef CEAFF_KG_ATTRIBUTE_SIMILARITY_H_
#define CEAFF_KG_ATTRIBUTE_SIMILARITY_H_

#include <cstdint>
#include <vector>

#include "ceaff/kg/knowledge_graph.h"
#include "ceaff/la/matrix.h"

namespace ceaff::kg {

/// Options for the attribute feature — an *extension* feature beyond the
/// paper's three (its Sec. I motivates adaptive fusion precisely by the
/// impracticality of hand-tuning weights as features multiply; this is the
/// fourth feature that exercises that claim). It blends:
///  * a JAPE/GCN-Align-style attribute *type* signature: an IDF-weighted
///    bag of attribute properties, compared by cosine, and
///  * a Trisedya-style *value* component: the Levenshtein ratio of literal
///    values under shared attributes.
/// Attribute vocabularies are matched across KGs by URI equality (DBpedia
/// infobox keys are shared across language editions via mappings).
struct AttributeSimilarityOptions {
  /// Weight of the type-signature cosine; (1 - type_weight) goes to the
  /// value component.
  double type_weight = 0.5;
  /// Compare literal values of shared attributes (off = types only, the
  /// pure GCN-Align AE view).
  bool use_values = true;
  /// Per shared attribute, at most this many value pairs are compared
  /// (guards against pathological multi-valued attributes).
  size_t max_values_per_attribute = 4;
};

/// Computes the attribute similarity matrix Ma between `sources` (rows,
/// entities of kg1) and `targets` (cols, entities of kg2) in [0, 1].
/// Entities without attribute triples score 0 against everything — the
/// incompleteness the paper cites ("between 69% and 99% of instances lack
/// at least one attribute") degrades this feature naturally.
la::Matrix AttributeSimilarityMatrix(
    const KnowledgeGraph& kg1, const KnowledgeGraph& kg2,
    const std::vector<uint32_t>& sources,
    const std::vector<uint32_t>& targets,
    const AttributeSimilarityOptions& options = {});

}  // namespace ceaff::kg

#endif  // CEAFF_KG_ATTRIBUTE_SIMILARITY_H_
