#include "ceaff/kg/attribute_similarity.h"

#include <cmath>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "ceaff/text/levenshtein.h"

namespace ceaff::kg {

namespace {

/// Shared attribute vocabulary: kg-local attribute id -> shared id, by URI
/// equality. Attributes present in only one KG are dropped.
struct SharedVocab {
  std::unordered_map<AttributeId, uint32_t> map1;
  std::unordered_map<AttributeId, uint32_t> map2;
  std::vector<double> idf;  // over shared ids
};

SharedVocab BuildSharedVocab(const KnowledgeGraph& kg1,
                             const KnowledgeGraph& kg2) {
  SharedVocab v;
  // Document frequency of each shared attribute (entities carrying it).
  std::vector<size_t> df;
  for (AttributeId a1 = 0; a1 < kg1.num_attributes(); ++a1) {
    auto a2 = kg2.FindAttribute(kg1.attribute_uri(a1));
    if (!a2.ok()) continue;
    uint32_t shared = static_cast<uint32_t>(df.size());
    v.map1.emplace(a1, shared);
    v.map2.emplace(a2.value(), shared);
    df.push_back(0);
  }
  std::unordered_set<uint64_t> seen;
  auto count_df = [&](const KnowledgeGraph& kg,
                      const std::unordered_map<AttributeId, uint32_t>& map,
                      uint64_t salt) {
    for (const AttributeTriple& t : kg.attribute_triples()) {
      auto it = map.find(t.attribute);
      if (it == map.end()) continue;
      uint64_t key = (static_cast<uint64_t>(t.entity) << 24 | it->second) ^
                     (salt << 60);
      if (seen.insert(key).second) df[it->second]++;
    }
  };
  count_df(kg1, v.map1, 1);
  count_df(kg2, v.map2, 2);
  size_t total_entities = kg1.num_entities() + kg2.num_entities();
  v.idf.resize(df.size());
  for (size_t i = 0; i < df.size(); ++i) {
    v.idf[i] = std::log((1.0 + static_cast<double>(total_entities)) /
                        (1.0 + static_cast<double>(df[i])));
  }
  return v;
}

/// Per-entity profile over the shared vocabulary: attribute -> values.
using Profile = std::map<uint32_t, std::vector<const std::string*>>;

std::vector<Profile> BuildProfiles(
    const KnowledgeGraph& kg,
    const std::unordered_map<AttributeId, uint32_t>& map,
    const std::vector<uint32_t>& ids) {
  std::unordered_map<uint32_t, size_t> position;
  for (size_t i = 0; i < ids.size(); ++i) position.emplace(ids[i], i);
  std::vector<Profile> profiles(ids.size());
  for (const AttributeTriple& t : kg.attribute_triples()) {
    auto pos = position.find(t.entity);
    if (pos == position.end()) continue;
    auto shared = map.find(t.attribute);
    if (shared == map.end()) continue;
    profiles[pos->second][shared->second].push_back(&t.value);
  }
  return profiles;
}

}  // namespace

la::Matrix AttributeSimilarityMatrix(
    const KnowledgeGraph& kg1, const KnowledgeGraph& kg2,
    const std::vector<uint32_t>& sources,
    const std::vector<uint32_t>& targets,
    const AttributeSimilarityOptions& options) {
  SharedVocab vocab = BuildSharedVocab(kg1, kg2);
  std::vector<Profile> p1 = BuildProfiles(kg1, vocab.map1, sources);
  std::vector<Profile> p2 = BuildProfiles(kg2, vocab.map2, targets);

  // Precompute IDF-weighted norms of the type signatures.
  auto norm_of = [&](const Profile& p) {
    double sq = 0.0;
    for (const auto& [attr, values] : p) {
      double w = vocab.idf[attr] * static_cast<double>(values.size());
      sq += w * w;
    }
    return std::sqrt(sq);
  };
  std::vector<double> norm1(p1.size()), norm2(p2.size());
  for (size_t i = 0; i < p1.size(); ++i) norm1[i] = norm_of(p1[i]);
  for (size_t j = 0; j < p2.size(); ++j) norm2[j] = norm_of(p2[j]);

  la::Matrix out(sources.size(), targets.size());
  for (size_t i = 0; i < p1.size(); ++i) {
    if (p1[i].empty()) continue;
    float* row = out.row(i);
    for (size_t j = 0; j < p2.size(); ++j) {
      if (p2[j].empty()) continue;
      // Intersect the two sorted profiles.
      double dot = 0.0;
      double value_sim_sum = 0.0;
      size_t shared_attrs = 0;
      auto it1 = p1[i].begin();
      auto it2 = p2[j].begin();
      while (it1 != p1[i].end() && it2 != p2[j].end()) {
        if (it1->first < it2->first) {
          ++it1;
        } else if (it2->first < it1->first) {
          ++it2;
        } else {
          double w = vocab.idf[it1->first];
          dot += (w * static_cast<double>(it1->second.size())) *
                 (w * static_cast<double>(it2->second.size()));
          if (options.use_values) {
            // Best value agreement under this shared attribute.
            double best = 0.0;
            size_t n1 = std::min(it1->second.size(),
                                 options.max_values_per_attribute);
            size_t n2 = std::min(it2->second.size(),
                                 options.max_values_per_attribute);
            for (size_t a = 0; a < n1; ++a) {
              for (size_t b = 0; b < n2; ++b) {
                best = std::max(best,
                                text::LevenshteinRatio(*it1->second[a],
                                                       *it2->second[b]));
              }
            }
            value_sim_sum += best;
          }
          ++shared_attrs;
          ++it1;
          ++it2;
        }
      }
      double type_cos = 0.0;
      if (norm1[i] > 0.0 && norm2[j] > 0.0) {
        type_cos = dot / (norm1[i] * norm2[j]);
      }
      double value_sim =
          shared_attrs > 0 && options.use_values
              ? value_sim_sum / static_cast<double>(shared_attrs)
              : 0.0;
      double w = options.type_weight;
      double sim = options.use_values
                       ? w * type_cos + (1.0 - w) * value_sim
                       : type_cos;
      row[j] = static_cast<float>(sim);
    }
  }
  return out;
}

}  // namespace ceaff::kg
