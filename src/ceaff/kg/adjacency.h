#ifndef CEAFF_KG_ADJACENCY_H_
#define CEAFF_KG_ADJACENCY_H_

#include <vector>

#include "ceaff/kg/knowledge_graph.h"
#include "ceaff/la/sparse_matrix.h"

namespace ceaff::kg {

/// Options for the GCN input adjacency. Defaults reproduce the GCN-Align
/// construction ([25] in the paper) the authors reference: relation
/// functionality-weighted edges, self-loops, symmetric normalisation.
struct AdjacencyOptions {
  /// Weight edges by relation functionality / inverse functionality
  /// (GCN-Align); if false every edge weighs 1.
  bool functionality_weighted = true;
  /// Add identity self-loops before normalisation (Kipf renormalisation
  /// trick).
  bool add_self_loops = true;
  /// Apply D^-1/2 A D^-1/2; if false A is returned unnormalised.
  bool symmetric_normalize = true;
};

/// Per-relation functionality statistics.
///
/// fun(r)  = #distinct head entities of r / #triples of r,
/// ifun(r) = #distinct tail entities of r / #triples of r.
/// A functional relation (e.g. birth-place) scores near 1; a "hub" relation
/// (e.g. country-of-citizenship seen from the country side) scores low, so
/// its edges carry little structural evidence.
struct RelationFunctionality {
  std::vector<double> fun;
  std::vector<double> ifun;
};

/// Computes functionality statistics for every relation in `kg`.
RelationFunctionality ComputeFunctionality(const KnowledgeGraph& kg);

/// Builds the (n x n) GCN propagation matrix of `kg`.
///
/// With functionality weighting, a triple (h, r, t) contributes
/// ifun(r) to A[h][t] and fun(r) to A[t][h], per GCN-Align; contributions
/// of parallel edges accumulate.
la::SparseMatrix BuildAdjacency(const KnowledgeGraph& kg,
                                const AdjacencyOptions& options = {});

}  // namespace ceaff::kg

#endif  // CEAFF_KG_ADJACENCY_H_
