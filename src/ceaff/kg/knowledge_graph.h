#ifndef CEAFF_KG_KNOWLEDGE_GRAPH_H_
#define CEAFF_KG_KNOWLEDGE_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ceaff/common/statusor.h"

namespace ceaff::kg {

/// Dense integer id of an entity within one KG.
using EntityId = uint32_t;
/// Dense integer id of a relation within one KG.
using RelationId = uint32_t;
/// Dense integer id of an attribute (datatype property) within one KG.
using AttributeId = uint32_t;

/// One directed fact: head --relation--> tail.
struct Triple {
  EntityId head;
  RelationId relation;
  EntityId tail;

  bool operator==(const Triple& other) const {
    return head == other.head && relation == other.relation &&
           tail == other.tail;
  }
};

/// One attribute fact: entity --attribute--> literal value. The substrate
/// for the attribute feature (JAPE / GCN-Align's AE view).
struct AttributeTriple {
  EntityId entity;
  AttributeId attribute;
  std::string value;

  bool operator==(const AttributeTriple& other) const {
    return entity == other.entity && attribute == other.attribute &&
           value == other.value;
  }
};

/// A directed multigraph G = (E, R, T) with string vocabularies.
///
/// Entities carry a URI (unique key) and a human-readable name (the string
/// the semantic/string features operate on; defaults to the URI local name).
/// Mutation is append-only; ids are dense and stable.
class KnowledgeGraph {
 public:
  KnowledgeGraph() = default;

  /// Adds (or finds) an entity by URI. `name` is only applied on first
  /// insertion. Returns its dense id.
  EntityId AddEntity(const std::string& uri, const std::string& name = "");

  /// Adds (or finds) a relation by URI; returns its dense id.
  RelationId AddRelation(const std::string& uri);

  /// Appends a triple. Ids must already exist.
  Status AddTriple(EntityId head, RelationId relation, EntityId tail);

  /// Convenience: interns all three URIs and appends the triple.
  void AddTriple(const std::string& head_uri, const std::string& rel_uri,
                 const std::string& tail_uri);

  /// Adds (or finds) an attribute (datatype property) by URI.
  AttributeId AddAttribute(const std::string& uri);

  /// Appends an attribute triple. Ids must already exist.
  Status AddAttributeTriple(EntityId entity, AttributeId attribute,
                            const std::string& value);

  /// Removes the first triple equal to (head, relation, tail), preserving
  /// the order of the remaining triples. Entities and relations are never
  /// removed — ids stay dense and stable, which the incremental delta path
  /// relies on. NotFound when no such triple exists.
  Status RemoveTriple(EntityId head, RelationId relation, EntityId tail);

  size_t num_entities() const { return entity_uris_.size(); }
  size_t num_relations() const { return relation_uris_.size(); }
  size_t num_triples() const { return triples_.size(); }
  size_t num_attributes() const { return attribute_uris_.size(); }
  size_t num_attribute_triples() const { return attribute_triples_.size(); }

  const std::vector<Triple>& triples() const { return triples_; }
  const std::vector<AttributeTriple>& attribute_triples() const {
    return attribute_triples_;
  }

  const std::string& attribute_uri(AttributeId id) const;
  StatusOr<AttributeId> FindAttribute(const std::string& uri) const;

  const std::string& entity_uri(EntityId id) const;
  const std::string& entity_name(EntityId id) const;
  const std::string& relation_uri(RelationId id) const;

  /// Overwrites the display name of an entity.
  void SetEntityName(EntityId id, const std::string& name);

  /// Dense id for a URI, or NotFound.
  StatusOr<EntityId> FindEntity(const std::string& uri) const;
  StatusOr<RelationId> FindRelation(const std::string& uri) const;

  /// Undirected degree (in + out) of every entity.
  std::vector<uint32_t> Degrees() const;

  /// Lists of (neighbour, relation) pairs per entity, outgoing direction.
  std::vector<std::vector<std::pair<EntityId, RelationId>>> OutAdjacency()
      const;

 private:
  std::vector<std::string> entity_uris_;
  std::vector<std::string> entity_names_;
  std::vector<std::string> relation_uris_;
  std::vector<std::string> attribute_uris_;
  std::unordered_map<std::string, EntityId> entity_index_;
  std::unordered_map<std::string, RelationId> relation_index_;
  std::unordered_map<std::string, AttributeId> attribute_index_;
  std::vector<Triple> triples_;
  std::vector<AttributeTriple> attribute_triples_;
};

/// One gold correspondence between the two KGs of a pair.
struct AlignmentPair {
  EntityId source;  // entity id in KG1
  EntityId target;  // entity id in KG2

  bool operator==(const AlignmentPair& other) const {
    return source == other.source && target == other.target;
  }
};

/// A benchmark instance: two KGs plus gold alignment split into
/// train (seed) / test sets, following the paper's 30%/70% protocol.
struct KgPair {
  std::string name;
  KnowledgeGraph kg1;
  KnowledgeGraph kg2;
  std::vector<AlignmentPair> seed_alignment;  // training pairs S
  std::vector<AlignmentPair> test_alignment;  // evaluation pairs
};

/// Splits `gold` into seed/test with the given seed fraction, shuffled
/// deterministically by `rng_seed`. seed_fraction must be in [0, 1].
Status SplitAlignment(const std::vector<AlignmentPair>& gold,
                      double seed_fraction, uint64_t rng_seed,
                      std::vector<AlignmentPair>* seed,
                      std::vector<AlignmentPair>* test);

}  // namespace ceaff::kg

#endif  // CEAFF_KG_KNOWLEDGE_GRAPH_H_
