#include "ceaff/kg/io.h"

#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>

#include "ceaff/common/durable_io.h"
#include "ceaff/common/string_util.h"

namespace ceaff::kg {

namespace {

/// TSV fields must not contain the separators; real DBpedia labels
/// occasionally do, so writers sanitise rather than corrupt the file.
std::string SanitizeTsvField(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

/// Prefixes `inner` with `path:line:` (preserving its code) unless the
/// message already carries that context.
Status WithLineContext(const std::string& path, size_t lineno,
                       const Status& inner) {
  return Status(inner.code(), StrFormat("%s:%zu: %s", path.c_str(), lineno,
                                        inner.message().c_str()));
}

/// Shared strict/lenient TSV line pump. Opens `path`, splits each
/// non-blank non-comment line on tabs, enforces `expected_fields`, and
/// hands the fields to `consume`. Strict mode fails on the first problem;
/// lenient mode records each problem in `report` and keeps going until
/// `options.max_errors` is exceeded. Every emitted error carries
/// `path:line:` context.
Status RunTsvLoader(
    const std::string& path, size_t expected_fields,
    const ParseOptions& options, ParseReport* report,
    const std::function<Status(const std::vector<std::string>&)>& consume) {
  ParseReport local;
  if (report == nullptr) report = &local;
  report->path = path;
  report->lines_scanned = 0;
  report->records_loaded = 0;
  report->issues.clear();

  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    report->lines_scanned = lineno;
    std::string_view sv = StripAsciiWhitespace(line);
    if (sv.empty() || sv[0] == '#') continue;
    std::vector<std::string> fields = Split(sv, '\t');
    Status st;
    if (fields.size() != expected_fields) {
      st = Status::InvalidArgument(
          StrFormat("expected %zu tab-separated fields, got %zu",
                    expected_fields, fields.size()));
    } else {
      st = consume(fields);
    }
    if (st.ok()) {
      ++report->records_loaded;
      continue;
    }
    if (!options.lenient) return WithLineContext(path, lineno, st);
    report->issues.push_back({lineno, st.ToString()});
    if (report->issues.size() > options.max_errors) {
      return Status::InvalidArgument(StrFormat(
          "%s: more than %zu malformed lines (last at line %zu: %s) — "
          "aborting lenient parse",
          path.c_str(), options.max_errors, lineno, st.message().c_str()));
    }
  }
  return Status::OK();
}

/// Serialises with `emit`, then publishes through the crash-durable write
/// protocol (failpoint scope "kg") — dataset exports survive a crash
/// mid-write with either the old file or the new one, never a torn TSV.
Status WriteTsvAtomic(const std::string& path,
                      const std::function<void(std::ostream&)>& emit) {
  std::ostringstream out;
  emit(out);
  if (!out) return Status::IOError("serialization failed: " + path);
  return WriteFileAtomic(path, std::move(out).str(), "kg");
}

}  // namespace

Status LoadTriplesTsv(const std::string& path, KnowledgeGraph* kg,
                      const ParseOptions& options, ParseReport* report) {
  return RunTsvLoader(path, 3, options, report,
                      [kg](const std::vector<std::string>& f) {
                        kg->AddTriple(f[0], f[1], f[2]);
                        return Status::OK();
                      });
}

Status LoadTriplesTsv(const std::string& path, KnowledgeGraph* kg) {
  return LoadTriplesTsv(path, kg, ParseOptions{}, nullptr);
}

Status SaveTriplesTsv(const KnowledgeGraph& kg, const std::string& path) {
  return WriteTsvAtomic(path, [&kg](std::ostream& out) {
    for (const Triple& t : kg.triples()) {
      out << kg.entity_uri(t.head) << '\t' << kg.relation_uri(t.relation)
          << '\t' << kg.entity_uri(t.tail) << '\n';
    }
  });
}

Status LoadAlignmentTsv(const std::string& path, const KnowledgeGraph& kg1,
                        const KnowledgeGraph& kg2,
                        std::vector<AlignmentPair>* pairs,
                        const ParseOptions& options, ParseReport* report) {
  return RunTsvLoader(
      path, 2, options, report,
      [&kg1, &kg2, pairs](const std::vector<std::string>& f) -> Status {
        auto u = kg1.FindEntity(f[0]);
        if (!u.ok()) return u.status();
        auto v = kg2.FindEntity(f[1]);
        if (!v.ok()) return v.status();
        pairs->push_back({u.value(), v.value()});
        return Status::OK();
      });
}

Status LoadAlignmentTsv(const std::string& path, const KnowledgeGraph& kg1,
                        const KnowledgeGraph& kg2,
                        std::vector<AlignmentPair>* pairs) {
  return LoadAlignmentTsv(path, kg1, kg2, pairs, ParseOptions{}, nullptr);
}

Status SaveAlignmentTsv(const std::vector<AlignmentPair>& pairs,
                        const KnowledgeGraph& kg1, const KnowledgeGraph& kg2,
                        const std::string& path) {
  return WriteTsvAtomic(path, [&pairs, &kg1, &kg2](std::ostream& out) {
    for (const AlignmentPair& p : pairs) {
      out << kg1.entity_uri(p.source) << '\t' << kg2.entity_uri(p.target)
          << '\n';
    }
  });
}

Status LoadAttributeTriplesTsv(const std::string& path, KnowledgeGraph* kg,
                               const ParseOptions& options,
                               ParseReport* report) {
  return RunTsvLoader(
      path, 3, options, report,
      [kg](const std::vector<std::string>& f) -> Status {
        auto e = kg->FindEntity(f[0]);
        if (!e.ok()) return e.status();
        AttributeId a = kg->AddAttribute(f[1]);
        return kg->AddAttributeTriple(e.value(), a, f[2]);
      });
}

Status LoadAttributeTriplesTsv(const std::string& path, KnowledgeGraph* kg) {
  return LoadAttributeTriplesTsv(path, kg, ParseOptions{}, nullptr);
}

Status SaveAttributeTriplesTsv(const KnowledgeGraph& kg,
                               const std::string& path) {
  return WriteTsvAtomic(path, [&kg](std::ostream& out) {
    for (const AttributeTriple& t : kg.attribute_triples()) {
      out << SanitizeTsvField(kg.entity_uri(t.entity)) << '\t'
          << SanitizeTsvField(kg.attribute_uri(t.attribute)) << '\t'
          << SanitizeTsvField(t.value) << '\n';
    }
  });
}

Status LoadEntitiesTsv(const std::string& path, KnowledgeGraph* kg,
                       const ParseOptions& options, ParseReport* report) {
  return RunTsvLoader(path, 2, options, report,
                      [kg](const std::vector<std::string>& f) {
                        kg->AddEntity(f[0], f[1]);
                        return Status::OK();
                      });
}

Status LoadEntitiesTsv(const std::string& path, KnowledgeGraph* kg) {
  return LoadEntitiesTsv(path, kg, ParseOptions{}, nullptr);
}

Status SaveEntitiesTsv(const KnowledgeGraph& kg, const std::string& path) {
  return WriteTsvAtomic(path, [&kg](std::ostream& out) {
    for (EntityId id = 0; id < kg.num_entities(); ++id) {
      out << SanitizeTsvField(kg.entity_uri(id)) << '\t'
          << SanitizeTsvField(kg.entity_name(id)) << '\n';
    }
  });
}

Status SaveKgPair(const KgPair& pair, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IOError("mkdir " + dir + ": " + ec.message());
  CEAFF_RETURN_IF_ERROR(SaveEntitiesTsv(pair.kg1, dir + "/entities1.tsv"));
  CEAFF_RETURN_IF_ERROR(SaveEntitiesTsv(pair.kg2, dir + "/entities2.tsv"));
  CEAFF_RETURN_IF_ERROR(SaveTriplesTsv(pair.kg1, dir + "/triples1.tsv"));
  CEAFF_RETURN_IF_ERROR(SaveTriplesTsv(pair.kg2, dir + "/triples2.tsv"));
  CEAFF_RETURN_IF_ERROR(
      SaveAttributeTriplesTsv(pair.kg1, dir + "/attr_triples1.tsv"));
  CEAFF_RETURN_IF_ERROR(
      SaveAttributeTriplesTsv(pair.kg2, dir + "/attr_triples2.tsv"));
  CEAFF_RETURN_IF_ERROR(SaveAlignmentTsv(pair.seed_alignment, pair.kg1,
                                         pair.kg2, dir + "/seed_links.tsv"));
  CEAFF_RETURN_IF_ERROR(SaveAlignmentTsv(pair.test_alignment, pair.kg1,
                                         pair.kg2, dir + "/test_links.tsv"));
  return Status::OK();
}

Status LoadKgPair(const std::string& dir, KgPair* pair,
                  const ParseOptions& options,
                  std::vector<ParseReport>* reports) {
  auto next_report = [reports]() -> ParseReport* {
    if (reports == nullptr) return nullptr;
    reports->emplace_back();
    return &reports->back();
  };
  CEAFF_RETURN_IF_ERROR(LoadEntitiesTsv(dir + "/entities1.tsv", &pair->kg1,
                                        options, next_report()));
  CEAFF_RETURN_IF_ERROR(LoadEntitiesTsv(dir + "/entities2.tsv", &pair->kg2,
                                        options, next_report()));
  // A dataset with an empty entity vocabulary is damaged (zero-byte or
  // fully-skipped entities file); loading it "successfully" would only
  // defer the failure to some later NotFound with no hint of the cause.
  if (pair->kg1.num_entities() == 0) {
    return Status::DataLoss(dir + "/entities1.tsv: no entities loaded — "
                            "empty or fully malformed entity vocabulary");
  }
  if (pair->kg2.num_entities() == 0) {
    return Status::DataLoss(dir + "/entities2.tsv: no entities loaded — "
                            "empty or fully malformed entity vocabulary");
  }
  CEAFF_RETURN_IF_ERROR(LoadTriplesTsv(dir + "/triples1.tsv", &pair->kg1,
                                       options, next_report()));
  CEAFF_RETURN_IF_ERROR(LoadTriplesTsv(dir + "/triples2.tsv", &pair->kg2,
                                       options, next_report()));
  // Attribute files are optional (older datasets lack them).
  if (std::filesystem::exists(dir + "/attr_triples1.tsv")) {
    CEAFF_RETURN_IF_ERROR(LoadAttributeTriplesTsv(
        dir + "/attr_triples1.tsv", &pair->kg1, options, next_report()));
  }
  if (std::filesystem::exists(dir + "/attr_triples2.tsv")) {
    CEAFF_RETURN_IF_ERROR(LoadAttributeTriplesTsv(
        dir + "/attr_triples2.tsv", &pair->kg2, options, next_report()));
  }
  CEAFF_RETURN_IF_ERROR(LoadAlignmentTsv(dir + "/seed_links.tsv", pair->kg1,
                                         pair->kg2, &pair->seed_alignment,
                                         options, next_report()));
  CEAFF_RETURN_IF_ERROR(LoadAlignmentTsv(dir + "/test_links.tsv", pair->kg1,
                                         pair->kg2, &pair->test_alignment,
                                         options, next_report()));
  return Status::OK();
}

Status LoadKgPair(const std::string& dir, KgPair* pair) {
  return LoadKgPair(dir, pair, ParseOptions{}, nullptr);
}

}  // namespace ceaff::kg
