#include "ceaff/kg/io.h"

#include <filesystem>
#include <fstream>

#include "ceaff/common/string_util.h"

namespace ceaff::kg {

namespace {

/// TSV fields must not contain the separators; real DBpedia labels
/// occasionally do, so writers sanitise rather than corrupt the file.
std::string SanitizeTsvField(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

}  // namespace

Status LoadTriplesTsv(const std::string& path, KnowledgeGraph* kg) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view sv = StripAsciiWhitespace(line);
    if (sv.empty() || sv[0] == '#') continue;
    std::vector<std::string> fields = Split(sv, '\t');
    if (fields.size() != 3) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: expected 3 tab-separated fields, got %zu",
                    path.c_str(), lineno, fields.size()));
    }
    kg->AddTriple(fields[0], fields[1], fields[2]);
  }
  return Status::OK();
}

Status SaveTriplesTsv(const KnowledgeGraph& kg, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  for (const Triple& t : kg.triples()) {
    out << kg.entity_uri(t.head) << '\t' << kg.relation_uri(t.relation)
        << '\t' << kg.entity_uri(t.tail) << '\n';
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status LoadAlignmentTsv(const std::string& path, const KnowledgeGraph& kg1,
                        const KnowledgeGraph& kg2,
                        std::vector<AlignmentPair>* pairs) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view sv = StripAsciiWhitespace(line);
    if (sv.empty() || sv[0] == '#') continue;
    std::vector<std::string> fields = Split(sv, '\t');
    if (fields.size() != 2) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: expected 2 tab-separated fields, got %zu",
                    path.c_str(), lineno, fields.size()));
    }
    CEAFF_ASSIGN_OR_RETURN(EntityId u, kg1.FindEntity(fields[0]));
    CEAFF_ASSIGN_OR_RETURN(EntityId v, kg2.FindEntity(fields[1]));
    pairs->push_back({u, v});
  }
  return Status::OK();
}

Status SaveAlignmentTsv(const std::vector<AlignmentPair>& pairs,
                        const KnowledgeGraph& kg1, const KnowledgeGraph& kg2,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  for (const AlignmentPair& p : pairs) {
    out << kg1.entity_uri(p.source) << '\t' << kg2.entity_uri(p.target)
        << '\n';
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status LoadAttributeTriplesTsv(const std::string& path, KnowledgeGraph* kg) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view sv = StripAsciiWhitespace(line);
    if (sv.empty() || sv[0] == '#') continue;
    std::vector<std::string> fields = Split(sv, '\t');
    if (fields.size() != 3) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: expected 3 tab-separated fields, got %zu",
                    path.c_str(), lineno, fields.size()));
    }
    CEAFF_ASSIGN_OR_RETURN(EntityId e, kg->FindEntity(fields[0]));
    AttributeId a = kg->AddAttribute(fields[1]);
    CEAFF_RETURN_IF_ERROR(kg->AddAttributeTriple(e, a, fields[2]));
  }
  return Status::OK();
}

Status SaveAttributeTriplesTsv(const KnowledgeGraph& kg,
                               const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  for (const AttributeTriple& t : kg.attribute_triples()) {
    out << SanitizeTsvField(kg.entity_uri(t.entity)) << '\t'
        << SanitizeTsvField(kg.attribute_uri(t.attribute)) << '\t'
        << SanitizeTsvField(t.value) << '\n';
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status LoadEntitiesTsv(const std::string& path, KnowledgeGraph* kg) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view sv = StripAsciiWhitespace(line);
    if (sv.empty() || sv[0] == '#') continue;
    std::vector<std::string> fields = Split(sv, '\t');
    if (fields.size() != 2) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: expected 2 tab-separated fields, got %zu",
                    path.c_str(), lineno, fields.size()));
    }
    kg->AddEntity(fields[0], fields[1]);
  }
  return Status::OK();
}

Status SaveEntitiesTsv(const KnowledgeGraph& kg, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  for (EntityId id = 0; id < kg.num_entities(); ++id) {
    out << SanitizeTsvField(kg.entity_uri(id)) << '\t'
        << SanitizeTsvField(kg.entity_name(id)) << '\n';
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status SaveKgPair(const KgPair& pair, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IOError("mkdir " + dir + ": " + ec.message());
  CEAFF_RETURN_IF_ERROR(SaveEntitiesTsv(pair.kg1, dir + "/entities1.tsv"));
  CEAFF_RETURN_IF_ERROR(SaveEntitiesTsv(pair.kg2, dir + "/entities2.tsv"));
  CEAFF_RETURN_IF_ERROR(SaveTriplesTsv(pair.kg1, dir + "/triples1.tsv"));
  CEAFF_RETURN_IF_ERROR(SaveTriplesTsv(pair.kg2, dir + "/triples2.tsv"));
  CEAFF_RETURN_IF_ERROR(
      SaveAttributeTriplesTsv(pair.kg1, dir + "/attr_triples1.tsv"));
  CEAFF_RETURN_IF_ERROR(
      SaveAttributeTriplesTsv(pair.kg2, dir + "/attr_triples2.tsv"));
  CEAFF_RETURN_IF_ERROR(SaveAlignmentTsv(pair.seed_alignment, pair.kg1,
                                         pair.kg2, dir + "/seed_links.tsv"));
  CEAFF_RETURN_IF_ERROR(SaveAlignmentTsv(pair.test_alignment, pair.kg1,
                                         pair.kg2, dir + "/test_links.tsv"));
  return Status::OK();
}

Status LoadKgPair(const std::string& dir, KgPair* pair) {
  CEAFF_RETURN_IF_ERROR(LoadEntitiesTsv(dir + "/entities1.tsv", &pair->kg1));
  CEAFF_RETURN_IF_ERROR(LoadEntitiesTsv(dir + "/entities2.tsv", &pair->kg2));
  CEAFF_RETURN_IF_ERROR(LoadTriplesTsv(dir + "/triples1.tsv", &pair->kg1));
  CEAFF_RETURN_IF_ERROR(LoadTriplesTsv(dir + "/triples2.tsv", &pair->kg2));
  // Attribute files are optional (older datasets lack them).
  if (std::filesystem::exists(dir + "/attr_triples1.tsv")) {
    CEAFF_RETURN_IF_ERROR(
        LoadAttributeTriplesTsv(dir + "/attr_triples1.tsv", &pair->kg1));
  }
  if (std::filesystem::exists(dir + "/attr_triples2.tsv")) {
    CEAFF_RETURN_IF_ERROR(
        LoadAttributeTriplesTsv(dir + "/attr_triples2.tsv", &pair->kg2));
  }
  CEAFF_RETURN_IF_ERROR(LoadAlignmentTsv(dir + "/seed_links.tsv", pair->kg1,
                                         pair->kg2, &pair->seed_alignment));
  CEAFF_RETURN_IF_ERROR(LoadAlignmentTsv(dir + "/test_links.tsv", pair->kg1,
                                         pair->kg2, &pair->test_alignment));
  return Status::OK();
}

}  // namespace ceaff::kg
