#include "ceaff/kg/relation_similarity.h"

#include <cmath>
#include <map>
#include <unordered_map>

namespace ceaff::kg {

namespace {

/// Sparse IDF-weighted profile: shared signature dimension -> count.
using Profile = std::map<uint32_t, float>;

struct RelationVocab {
  /// kg-local relation id -> shared id (outgoing dimension); incoming uses
  /// shared id + size.
  std::unordered_map<RelationId, uint32_t> map1, map2;
  size_t size = 0;
};

RelationVocab BuildVocab(const KnowledgeGraph& kg1,
                         const KnowledgeGraph& kg2) {
  RelationVocab v;
  for (RelationId r1 = 0; r1 < kg1.num_relations(); ++r1) {
    auto r2 = kg2.FindRelation(kg1.relation_uri(r1));
    if (!r2.ok()) continue;
    uint32_t shared = static_cast<uint32_t>(v.size++);
    v.map1.emplace(r1, shared);
    v.map2.emplace(r2.value(), shared);
  }
  return v;
}

std::vector<Profile> BuildProfiles(
    const KnowledgeGraph& kg,
    const std::unordered_map<RelationId, uint32_t>& map, size_t vocab_size,
    const std::vector<uint32_t>& ids,
    const RelationSimilarityOptions& options) {
  std::unordered_map<uint32_t, size_t> position;
  for (size_t i = 0; i < ids.size(); ++i) position.emplace(ids[i], i);
  std::vector<Profile> profiles(ids.size());
  for (const Triple& t : kg.triples()) {
    auto shared = map.find(t.relation);
    if (shared == map.end()) continue;
    if (options.use_outgoing) {
      auto pos = position.find(t.head);
      if (pos != position.end()) {
        profiles[pos->second][shared->second] += 1.0f;
      }
    }
    if (options.use_incoming) {
      auto pos = position.find(t.tail);
      if (pos != position.end()) {
        profiles[pos->second][shared->second +
                              static_cast<uint32_t>(vocab_size)] += 1.0f;
      }
    }
  }
  return profiles;
}

}  // namespace

la::Matrix RelationSimilarityMatrix(
    const KnowledgeGraph& kg1, const KnowledgeGraph& kg2,
    const std::vector<uint32_t>& sources,
    const std::vector<uint32_t>& targets,
    const RelationSimilarityOptions& options) {
  RelationVocab vocab = BuildVocab(kg1, kg2);
  std::vector<Profile> p1 =
      BuildProfiles(kg1, vocab.map1, vocab.size, sources, options);
  std::vector<Profile> p2 =
      BuildProfiles(kg2, vocab.map2, vocab.size, targets, options);

  // IDF over signature dimensions (both KGs' profiled entities pooled).
  std::unordered_map<uint32_t, size_t> df;
  for (const auto* side : {&p1, &p2}) {
    for (const Profile& p : *side) {
      for (const auto& [dim, count] : p) df[dim]++;
    }
  }
  const double total = static_cast<double>(p1.size() + p2.size());
  auto idf = [&](uint32_t dim) {
    return std::log((1.0 + total) /
                    (1.0 + static_cast<double>(df[dim])));
  };

  auto norm_of = [&](const Profile& p) {
    double sq = 0.0;
    for (const auto& [dim, count] : p) {
      double w = idf(dim) * count;
      sq += w * w;
    }
    return std::sqrt(sq);
  };
  std::vector<double> norm1(p1.size()), norm2(p2.size());
  for (size_t i = 0; i < p1.size(); ++i) norm1[i] = norm_of(p1[i]);
  for (size_t j = 0; j < p2.size(); ++j) norm2[j] = norm_of(p2[j]);

  la::Matrix out(sources.size(), targets.size());
  for (size_t i = 0; i < p1.size(); ++i) {
    if (p1[i].empty() || norm1[i] <= 0.0) continue;
    float* row = out.row(i);
    for (size_t j = 0; j < p2.size(); ++j) {
      if (p2[j].empty() || norm2[j] <= 0.0) continue;
      double dot = 0.0;
      auto it1 = p1[i].begin();
      auto it2 = p2[j].begin();
      while (it1 != p1[i].end() && it2 != p2[j].end()) {
        if (it1->first < it2->first) {
          ++it1;
        } else if (it2->first < it1->first) {
          ++it2;
        } else {
          double w = idf(it1->first);
          dot += (w * it1->second) * (w * it2->second);
          ++it1;
          ++it2;
        }
      }
      row[j] = static_cast<float>(dot / (norm1[i] * norm2[j]));
    }
  }
  return out;
}

}  // namespace ceaff::kg
