#include "ceaff/kg/knowledge_graph.h"

#include <algorithm>

#include "ceaff/common/logging.h"
#include "ceaff/common/random.h"
#include "ceaff/common/string_util.h"

namespace ceaff::kg {

EntityId KnowledgeGraph::AddEntity(const std::string& uri,
                                   const std::string& name) {
  auto it = entity_index_.find(uri);
  if (it != entity_index_.end()) return it->second;
  EntityId id = static_cast<EntityId>(entity_uris_.size());
  entity_index_.emplace(uri, id);
  entity_uris_.push_back(uri);
  if (name.empty()) {
    // Default display name: URI local name, '_' → ' '.
    size_t slash = uri.find_last_of('/');
    std::string local =
        slash == std::string::npos ? uri : uri.substr(slash + 1);
    entity_names_.push_back(NormalizeEntityName(local));
  } else {
    entity_names_.push_back(name);
  }
  return id;
}

RelationId KnowledgeGraph::AddRelation(const std::string& uri) {
  auto it = relation_index_.find(uri);
  if (it != relation_index_.end()) return it->second;
  RelationId id = static_cast<RelationId>(relation_uris_.size());
  relation_index_.emplace(uri, id);
  relation_uris_.push_back(uri);
  return id;
}

Status KnowledgeGraph::AddTriple(EntityId head, RelationId relation,
                                 EntityId tail) {
  if (head >= num_entities() || tail >= num_entities()) {
    return Status::InvalidArgument("triple references unknown entity id");
  }
  if (relation >= num_relations()) {
    return Status::InvalidArgument("triple references unknown relation id");
  }
  triples_.push_back({head, relation, tail});
  return Status::OK();
}

void KnowledgeGraph::AddTriple(const std::string& head_uri,
                               const std::string& rel_uri,
                               const std::string& tail_uri) {
  EntityId h = AddEntity(head_uri);
  RelationId r = AddRelation(rel_uri);
  EntityId t = AddEntity(tail_uri);
  triples_.push_back({h, r, t});
}

Status KnowledgeGraph::RemoveTriple(EntityId head, RelationId relation,
                                    EntityId tail) {
  const Triple target{head, relation, tail};
  auto it = std::find(triples_.begin(), triples_.end(), target);
  if (it == triples_.end()) {
    return Status::NotFound("triple not present in graph");
  }
  triples_.erase(it);
  return Status::OK();
}

AttributeId KnowledgeGraph::AddAttribute(const std::string& uri) {
  auto it = attribute_index_.find(uri);
  if (it != attribute_index_.end()) return it->second;
  AttributeId id = static_cast<AttributeId>(attribute_uris_.size());
  attribute_index_.emplace(uri, id);
  attribute_uris_.push_back(uri);
  return id;
}

Status KnowledgeGraph::AddAttributeTriple(EntityId entity,
                                          AttributeId attribute,
                                          const std::string& value) {
  if (entity >= num_entities()) {
    return Status::InvalidArgument(
        "attribute triple references unknown entity id");
  }
  if (attribute >= num_attributes()) {
    return Status::InvalidArgument(
        "attribute triple references unknown attribute id");
  }
  attribute_triples_.push_back({entity, attribute, value});
  return Status::OK();
}

const std::string& KnowledgeGraph::attribute_uri(AttributeId id) const {
  CEAFF_CHECK(id < num_attributes());
  return attribute_uris_[id];
}

StatusOr<AttributeId> KnowledgeGraph::FindAttribute(
    const std::string& uri) const {
  auto it = attribute_index_.find(uri);
  if (it == attribute_index_.end()) {
    return Status::NotFound("attribute uri: " + uri);
  }
  return it->second;
}

const std::string& KnowledgeGraph::entity_uri(EntityId id) const {
  CEAFF_CHECK(id < num_entities());
  return entity_uris_[id];
}

const std::string& KnowledgeGraph::entity_name(EntityId id) const {
  CEAFF_CHECK(id < num_entities());
  return entity_names_[id];
}

const std::string& KnowledgeGraph::relation_uri(RelationId id) const {
  CEAFF_CHECK(id < num_relations());
  return relation_uris_[id];
}

void KnowledgeGraph::SetEntityName(EntityId id, const std::string& name) {
  CEAFF_CHECK(id < num_entities());
  entity_names_[id] = name;
}

StatusOr<EntityId> KnowledgeGraph::FindEntity(const std::string& uri) const {
  auto it = entity_index_.find(uri);
  if (it == entity_index_.end()) {
    return Status::NotFound("entity uri: " + uri);
  }
  return it->second;
}

StatusOr<RelationId> KnowledgeGraph::FindRelation(
    const std::string& uri) const {
  auto it = relation_index_.find(uri);
  if (it == relation_index_.end()) {
    return Status::NotFound("relation uri: " + uri);
  }
  return it->second;
}

std::vector<uint32_t> KnowledgeGraph::Degrees() const {
  std::vector<uint32_t> deg(num_entities(), 0);
  for (const Triple& t : triples_) {
    deg[t.head]++;
    deg[t.tail]++;
  }
  return deg;
}

std::vector<std::vector<std::pair<EntityId, RelationId>>>
KnowledgeGraph::OutAdjacency() const {
  std::vector<std::vector<std::pair<EntityId, RelationId>>> adj(
      num_entities());
  for (const Triple& t : triples_) {
    adj[t.head].emplace_back(t.tail, t.relation);
  }
  return adj;
}

Status SplitAlignment(const std::vector<AlignmentPair>& gold,
                      double seed_fraction, uint64_t rng_seed,
                      std::vector<AlignmentPair>* seed,
                      std::vector<AlignmentPair>* test) {
  if (seed_fraction < 0.0 || seed_fraction > 1.0) {
    return Status::InvalidArgument("seed_fraction must be in [0, 1]");
  }
  std::vector<AlignmentPair> shuffled = gold;
  Rng rng(rng_seed);
  rng.Shuffle(&shuffled);
  size_t n_seed = static_cast<size_t>(seed_fraction *
                                      static_cast<double>(shuffled.size()));
  seed->assign(shuffled.begin(), shuffled.begin() + static_cast<long>(n_seed));
  test->assign(shuffled.begin() + static_cast<long>(n_seed), shuffled.end());
  // Deterministic order inside each split keeps downstream runs stable.
  auto by_source = [](const AlignmentPair& a, const AlignmentPair& b) {
    return a.source < b.source;
  };
  std::sort(seed->begin(), seed->end(), by_source);
  std::sort(test->begin(), test->end(), by_source);
  return Status::OK();
}

}  // namespace ceaff::kg
