#ifndef CEAFF_KG_IO_H_
#define CEAFF_KG_IO_H_

#include <string>
#include <vector>

#include "ceaff/common/parse_report.h"
#include "ceaff/common/status.h"
#include "ceaff/kg/knowledge_graph.h"

namespace ceaff::kg {

/// All loaders come in two shapes:
///   * the plain overload — strict parsing, fails on the first malformed
///     line with a `path:line:` prefixed error;
///   * the (options, report) overload — honours ParseOptions::lenient
///     (skip bad lines up to `max_errors`, recording each skip in
///     `report`) and fills `report` (may be null) with per-file counts
///     and issues either way.
/// Every parse error — malformed field counts, unknown URIs, rejected
/// values — carries the file path and 1-based line number, so multi-file
/// loads stay diagnosable.

/// Loads relation triples in the OpenEA / DBP15K TSV layout:
/// one `head<TAB>relation<TAB>tail` line per triple. URIs are interned
/// into `kg` (which may already hold entities).
Status LoadTriplesTsv(const std::string& path, KnowledgeGraph* kg);
Status LoadTriplesTsv(const std::string& path, KnowledgeGraph* kg,
                      const ParseOptions& options, ParseReport* report);

/// Writes triples in the same TSV layout.
Status SaveTriplesTsv(const KnowledgeGraph& kg, const std::string& path);

/// Loads gold alignment links: one `uri1<TAB>uri2` line per pair. Both URIs
/// must already exist in their KGs (NotFound otherwise).
Status LoadAlignmentTsv(const std::string& path, const KnowledgeGraph& kg1,
                        const KnowledgeGraph& kg2,
                        std::vector<AlignmentPair>* pairs);
Status LoadAlignmentTsv(const std::string& path, const KnowledgeGraph& kg1,
                        const KnowledgeGraph& kg2,
                        std::vector<AlignmentPair>* pairs,
                        const ParseOptions& options, ParseReport* report);

/// Writes alignment links as `uri1<TAB>uri2` lines.
Status SaveAlignmentTsv(const std::vector<AlignmentPair>& pairs,
                        const KnowledgeGraph& kg1, const KnowledgeGraph& kg2,
                        const std::string& path);

/// Loads attribute triples: one `entity_uri<TAB>attribute_uri<TAB>value`
/// line per fact. Entities must already exist (NotFound otherwise);
/// attribute URIs are interned.
Status LoadAttributeTriplesTsv(const std::string& path, KnowledgeGraph* kg);
Status LoadAttributeTriplesTsv(const std::string& path, KnowledgeGraph* kg,
                               const ParseOptions& options,
                               ParseReport* report);

/// Writes attribute triples in the same TSV layout.
Status SaveAttributeTriplesTsv(const KnowledgeGraph& kg,
                               const std::string& path);

/// Loads an entity vocabulary: one `uri<TAB>display name` line per entity.
/// Interns URIs into `kg` (names apply on first insertion), preserving
/// file order, so ids match the writing KG when loaded into an empty one.
Status LoadEntitiesTsv(const std::string& path, KnowledgeGraph* kg);
Status LoadEntitiesTsv(const std::string& path, KnowledgeGraph* kg,
                       const ParseOptions& options, ParseReport* report);

/// Writes the entity vocabulary in id order as `uri<TAB>name` lines.
Status SaveEntitiesTsv(const KnowledgeGraph& kg, const std::string& path);

/// Saves / loads a complete KgPair under `dir` as entities1.tsv,
/// entities2.tsv, triples1.tsv, triples2.tsv, seed_links.tsv,
/// test_links.tsv. The entity files preserve display names and isolated
/// entities, which triples alone cannot.
///
/// LoadKgPair additionally rejects an empty entity vocabulary with
/// kDataLoss — a zero-byte entities file means the dataset is damaged and
/// must never silently load as an empty KG. The (options, reports)
/// overload appends one ParseReport per file read (`reports` may be null).
Status SaveKgPair(const KgPair& pair, const std::string& dir);
Status LoadKgPair(const std::string& dir, KgPair* pair);
Status LoadKgPair(const std::string& dir, KgPair* pair,
                  const ParseOptions& options,
                  std::vector<ParseReport>* reports);

}  // namespace ceaff::kg

#endif  // CEAFF_KG_IO_H_
