#ifndef CEAFF_KG_RELATION_SIMILARITY_H_
#define CEAFF_KG_RELATION_SIMILARITY_H_

#include <cstdint>
#include <vector>

#include "ceaff/kg/knowledge_graph.h"
#include "ceaff/la/matrix.h"

namespace ceaff::kg {

/// Options for the relation-signature feature — a fifth extension signal
/// in the spirit of RDGCN/MultiKE's relation views. Each entity is
/// profiled by the multiset of (relation, direction) edges it touches,
/// IDF-weighted; similarity is the cosine of the profiles. Relations are
/// matched across KGs by URI equality (DBpedia-style shared ontology);
/// unmatched relations are ignored.
struct RelationSimilarityOptions {
  /// Count outgoing (head-side) edges in the profile.
  bool use_outgoing = true;
  /// Count incoming (tail-side) edges in the profile (as distinct
  /// dimensions from outgoing ones).
  bool use_incoming = true;
};

/// Computes the relation similarity matrix Mr between `sources` (rows,
/// entities of kg1) and `targets` (cols, entities of kg2) in [0, 1].
/// Entities touching no shared relation score 0 against everything.
la::Matrix RelationSimilarityMatrix(
    const KnowledgeGraph& kg1, const KnowledgeGraph& kg2,
    const std::vector<uint32_t>& sources,
    const std::vector<uint32_t>& targets,
    const RelationSimilarityOptions& options = {});

}  // namespace ceaff::kg

#endif  // CEAFF_KG_RELATION_SIMILARITY_H_
