#include "ceaff/kg/adjacency.h"

#include <unordered_set>

namespace ceaff::kg {

RelationFunctionality ComputeFunctionality(const KnowledgeGraph& kg) {
  size_t nr = kg.num_relations();
  std::vector<std::unordered_set<EntityId>> heads(nr), tails(nr);
  std::vector<size_t> counts(nr, 0);
  for (const Triple& t : kg.triples()) {
    heads[t.relation].insert(t.head);
    tails[t.relation].insert(t.tail);
    counts[t.relation]++;
  }
  RelationFunctionality f;
  f.fun.resize(nr, 0.0);
  f.ifun.resize(nr, 0.0);
  for (size_t r = 0; r < nr; ++r) {
    if (counts[r] == 0) continue;
    f.fun[r] = static_cast<double>(heads[r].size()) /
               static_cast<double>(counts[r]);
    f.ifun[r] = static_cast<double>(tails[r].size()) /
                static_cast<double>(counts[r]);
  }
  return f;
}

la::SparseMatrix BuildAdjacency(const KnowledgeGraph& kg,
                                const AdjacencyOptions& options) {
  const size_t n = kg.num_entities();
  std::vector<la::Triplet> triplets;
  triplets.reserve(kg.num_triples() * 2 + (options.add_self_loops ? n : 0));

  RelationFunctionality f;
  if (options.functionality_weighted) f = ComputeFunctionality(kg);

  for (const Triple& t : kg.triples()) {
    float fwd = 1.0f, bwd = 1.0f;
    if (options.functionality_weighted) {
      fwd = static_cast<float>(f.ifun[t.relation]);
      bwd = static_cast<float>(f.fun[t.relation]);
    }
    if (t.head != t.tail) {
      triplets.push_back({t.head, t.tail, fwd});
      triplets.push_back({t.tail, t.head, bwd});
    } else {
      triplets.push_back({t.head, t.tail, fwd + bwd});
    }
  }
  if (options.add_self_loops) {
    for (size_t i = 0; i < n; ++i) {
      triplets.push_back({static_cast<uint32_t>(i), static_cast<uint32_t>(i),
                          1.0f});
    }
  }
  la::SparseMatrix a = la::SparseMatrix::Build(n, n, std::move(triplets));
  if (options.symmetric_normalize) a = a.SymNormalized();
  return a;
}

}  // namespace ceaff::kg
