#ifndef CEAFF_SERVE_SERVING_STATS_H_
#define CEAFF_SERVE_SERVING_STATS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace ceaff::serve {

/// Lock-free latency histogram: 64 power-of-two nanosecond buckets
/// (bucket i covers [2^i, 2^(i+1)) ns). Quantiles are read from a bucket
/// snapshot and reported at the bucket's geometric midpoint — ~±20%
/// resolution, plenty for p50/p99 serving dashboards, and recording is a
/// single relaxed fetch_add so worker threads never serialise on stats.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(uint64_t nanos);

  /// The q-quantile (q in [0, 1]) of everything recorded so far, in
  /// milliseconds; 0 when empty. Concurrent recording skews the answer by
  /// at most the in-flight samples (each bucket is read once).
  double QuantileMillis(double q) const;

  uint64_t TotalCount() const;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

/// Read-only view of one endpoint's counters at snapshot time.
struct EndpointSnapshot {
  uint64_t requests = 0;
  uint64_t errors = 0;
  uint64_t cache_hits = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double cache_hit_rate = 0.0;  // hits / requests, 0 when no requests
};

/// Counters + latency histogram for one endpoint. All mutators are atomic;
/// many worker threads record concurrently without locks.
class EndpointStats {
 public:
  /// Records one finished request. `cache_hit` marks answers served from
  /// the query cache; `ok` is false for error responses (including
  /// cancelled / deadline-exceeded requests).
  void Record(uint64_t latency_nanos, bool ok, bool cache_hit = false);

  EndpointSnapshot Snapshot(double elapsed_seconds) const;

 private:
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> cache_hits_{0};
  LatencyHistogram latency_;
};

/// Per-endpoint serving statistics of one AlignmentService instance.
struct ServingSnapshot {
  double uptime_seconds = 0.0;
  EndpointSnapshot pair;
  EndpointSnapshot topk;
  EndpointSnapshot batch;
  EndpointSnapshot reload;

  /// One-line JSON rendering (the `STATS` protocol response and the
  /// serve-throughput report embed this).
  std::string ToJson() const;
};

class ServingStats {
 public:
  ServingStats() : start_(std::chrono::steady_clock::now()) {}

  EndpointStats& pair() { return pair_; }
  EndpointStats& topk() { return topk_; }
  EndpointStats& batch() { return batch_; }
  EndpointStats& reload() { return reload_; }

  ServingSnapshot Snapshot() const;

 private:
  std::chrono::steady_clock::time_point start_;
  EndpointStats pair_;
  EndpointStats topk_;
  EndpointStats batch_;
  EndpointStats reload_;
};

}  // namespace ceaff::serve

#endif  // CEAFF_SERVE_SERVING_STATS_H_
