#ifndef CEAFF_SERVE_SERVING_STATS_H_
#define CEAFF_SERVE_SERVING_STATS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace ceaff::serve {

/// Lock-free latency histogram: 64 power-of-two nanosecond buckets
/// (bucket i covers [2^i, 2^(i+1)) ns). Quantiles are read from a bucket
/// snapshot and reported at the bucket's geometric midpoint — ~±20%
/// resolution, plenty for p50/p99 serving dashboards, and recording is a
/// single relaxed fetch_add so worker threads never serialise on stats.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(uint64_t nanos);

  /// The q-quantile (q in [0, 1]) of everything recorded so far, in
  /// milliseconds; 0 when empty. Concurrent recording skews the answer by
  /// at most the in-flight samples (each bucket is read once).
  double QuantileMillis(double q) const;

  /// Same quantile in nanoseconds; 0 when empty. The serving path feeds
  /// this into admission control (p99 service time, p50 as the per-request
  /// cost estimate behind the queue-delay signal).
  uint64_t QuantileNanos(double q) const;

  uint64_t TotalCount() const;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

/// Read-only view of one endpoint's counters at snapshot time.
struct EndpointSnapshot {
  /// Requests the endpoint actually did work for. Sheds and rejections are
  /// counted separately below and do NOT contribute here — nor to the
  /// latency quantiles, which would otherwise drown in near-zero samples
  /// exactly when the overloaded service needs an honest p99.
  uint64_t requests = 0;
  uint64_t errors = 0;
  uint64_t cache_hits = 0;
  /// Turned away by overload shedding (queue full / CoDel / degraded tier
  /// unable to answer) before any scoring happened.
  uint64_t shed = 0;
  /// Rejected up front because the remaining deadline could not be met
  /// (deadline-aware admission), or refused by an open circuit breaker.
  uint64_t rejected = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double cache_hit_rate = 0.0;  // hits / requests, 0 when no requests
};

/// Counters + latency histogram for one endpoint. All mutators are atomic;
/// many worker threads record concurrently without locks.
class EndpointStats {
 public:
  /// Records one finished request. `cache_hit` marks answers served from
  /// the query cache; `ok` is false for error responses (including
  /// cancelled / deadline-exceeded requests).
  void Record(uint64_t latency_nanos, bool ok, bool cache_hit = false);

  /// Records a request turned away by load shedding. Deliberately does NOT
  /// feed the latency histogram: a shed takes nanoseconds and a burst of
  /// them would drag p50/p99 toward zero while the admitted traffic is at
  /// its slowest.
  void RecordShed();

  /// Records a request rejected at admission (deadline cannot be met, or
  /// circuit breaker open). Also kept out of the histogram.
  void RecordRejected();

  /// Current latency quantile in nanoseconds (0 until the first Record).
  uint64_t LatencyQuantileNanos(double q) const {
    return latency_.QuantileNanos(q);
  }

  EndpointSnapshot Snapshot(double elapsed_seconds) const;

 private:
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> rejected_{0};
  LatencyHistogram latency_;
};

/// Point-in-time view of the graceful-degradation state.
struct DegradationSnapshot {
  /// Tier in effect when the snapshot was taken (0 full, 1 textual-only,
  /// 2 pair-lookup-only).
  int tier = 0;
  /// Requests served at each tier.
  uint64_t served_full = 0;
  uint64_t served_textual = 0;
  uint64_t served_pair_only = 0;
};

/// Point-in-time view of the background integrity scrubber.
struct ScrubSnapshot {
  /// Completed scrub passes over the live snapshot.
  uint64_t cycles = 0;
  /// Passes that found the in-memory content CRC out of step with the
  /// value stamped at Finalize — in-memory corruption.
  uint64_t corruptions = 0;
  /// Recovery reloads triggered by a corrupt pass, by outcome.
  uint64_t reloads_ok = 0;
  uint64_t reloads_failed = 0;
  /// Whether the live snapshot is currently marked poisoned (corrupt and
  /// not yet replaced) — queries are degraded to pair-only while set.
  bool poisoned = false;
};

/// Point-in-time view of the ANN candidate stage (zeros when ANN was never
/// enabled).
struct AnnSnapshot {
  /// Scans answered through the ANN shortlist path.
  uint64_t queries = 0;
  /// Scans where ANN was requested but the scan fell back to exhaustive
  /// (no ANN sections, shortlist < k, range too small, no dense feature,
  /// or too few candidates).
  uint64_t fallbacks = 0;
  /// Totals over `queries` (divide for per-query averages).
  uint64_t probes = 0;
  uint64_t shortlisted = 0;
};

/// Per-endpoint serving statistics of one AlignmentService instance.
struct ServingSnapshot {
  double uptime_seconds = 0.0;
  EndpointSnapshot pair;
  EndpointSnapshot topk;
  EndpointSnapshot batch;
  EndpointSnapshot reload;
  DegradationSnapshot degradation;
  ScrubSnapshot scrub;
  AnnSnapshot ann;

  /// One-line JSON rendering (the `STATS` protocol response and the
  /// serve-throughput report embed this).
  std::string ToJson() const;
};

class ServingStats {
 public:
  ServingStats() : start_(std::chrono::steady_clock::now()) {}

  EndpointStats& pair() { return pair_; }
  EndpointStats& topk() { return topk_; }
  EndpointStats& batch() { return batch_; }
  EndpointStats& reload() { return reload_; }

  /// Degradation bookkeeping, driven by the service's policy: the tier a
  /// request was served at, and the tier currently in effect.
  void RecordTierServed(int tier) {
    if (tier >= 0 && tier < 3) {
      tier_served_[static_cast<size_t>(tier)].fetch_add(
          1, std::memory_order_relaxed);
    }
  }
  void SetCurrentTier(int tier) {
    current_tier_.store(tier, std::memory_order_relaxed);
  }

  /// Integrity-scrubber bookkeeping (see AlignmentService::ScrubOnce).
  void RecordScrubCycle() {
    scrub_cycles_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordScrubCorruption() {
    scrub_corruptions_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordScrubReload(bool ok) {
    (ok ? scrub_reloads_ok_ : scrub_reloads_failed_)
        .fetch_add(1, std::memory_order_relaxed);
  }
  void SetPoisoned(bool poisoned) {
    poisoned_.store(poisoned, std::memory_order_relaxed);
  }

  /// ANN bookkeeping: one call per scan that ran with ANN requested.
  /// `used` distinguishes the shortlist path from an exhaustive fallback.
  void RecordAnnScan(bool used, uint32_t probes, uint32_t shortlisted) {
    if (used) {
      ann_queries_.fetch_add(1, std::memory_order_relaxed);
      ann_probes_.fetch_add(probes, std::memory_order_relaxed);
      ann_shortlisted_.fetch_add(shortlisted, std::memory_order_relaxed);
    } else {
      ann_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  ServingSnapshot Snapshot() const;

 private:
  std::chrono::steady_clock::time_point start_;
  EndpointStats pair_;
  EndpointStats topk_;
  EndpointStats batch_;
  EndpointStats reload_;
  std::array<std::atomic<uint64_t>, 3> tier_served_{};
  std::atomic<int> current_tier_{0};
  std::atomic<uint64_t> scrub_cycles_{0};
  std::atomic<uint64_t> scrub_corruptions_{0};
  std::atomic<uint64_t> scrub_reloads_ok_{0};
  std::atomic<uint64_t> scrub_reloads_failed_{0};
  std::atomic<bool> poisoned_{false};
  std::atomic<uint64_t> ann_queries_{0};
  std::atomic<uint64_t> ann_fallbacks_{0};
  std::atomic<uint64_t> ann_probes_{0};
  std::atomic<uint64_t> ann_shortlisted_{0};
};

}  // namespace ceaff::serve

#endif  // CEAFF_SERVE_SERVING_STATS_H_
