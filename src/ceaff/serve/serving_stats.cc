#include "ceaff/serve/serving_stats.h"

#include <bit>
#include <cmath>

#include "ceaff/common/string_util.h"

namespace ceaff::serve {

void LatencyHistogram::Record(uint64_t nanos) {
  // Index of the highest set bit; 0 ns lands in bucket 0.
  const size_t bucket = nanos == 0 ? 0 : std::bit_width(nanos) - 1;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

uint64_t LatencyHistogram::TotalCount() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

uint64_t LatencyHistogram::QuantileNanos(double q) const {
  std::array<uint64_t, kBuckets> counts;
  uint64_t total = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0;
  const uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(total - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (seen > rank) {
      // Geometric midpoint of [2^i, 2^(i+1)) in nanoseconds.
      return static_cast<uint64_t>(
          std::ldexp(std::sqrt(2.0), static_cast<int>(i)));
    }
  }
  return 0;
}

double LatencyHistogram::QuantileMillis(double q) const {
  return static_cast<double>(QuantileNanos(q)) / 1e6;
}

void EndpointStats::Record(uint64_t latency_nanos, bool ok, bool cache_hit) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (!ok) errors_.fetch_add(1, std::memory_order_relaxed);
  if (cache_hit) cache_hits_.fetch_add(1, std::memory_order_relaxed);
  latency_.Record(latency_nanos);
}

void EndpointStats::RecordShed() {
  shed_.fetch_add(1, std::memory_order_relaxed);
}

void EndpointStats::RecordRejected() {
  rejected_.fetch_add(1, std::memory_order_relaxed);
}

EndpointSnapshot EndpointStats::Snapshot(double elapsed_seconds) const {
  EndpointSnapshot snap;
  snap.requests = requests_.load(std::memory_order_relaxed);
  snap.errors = errors_.load(std::memory_order_relaxed);
  snap.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  snap.shed = shed_.load(std::memory_order_relaxed);
  snap.rejected = rejected_.load(std::memory_order_relaxed);
  snap.qps = elapsed_seconds > 0.0
                 ? static_cast<double>(snap.requests) / elapsed_seconds
                 : 0.0;
  snap.p50_ms = latency_.QuantileMillis(0.5);
  snap.p99_ms = latency_.QuantileMillis(0.99);
  snap.cache_hit_rate =
      snap.requests > 0
          ? static_cast<double>(snap.cache_hits) /
                static_cast<double>(snap.requests)
          : 0.0;
  return snap;
}

ServingSnapshot ServingStats::Snapshot() const {
  ServingSnapshot snap;
  snap.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  snap.pair = pair_.Snapshot(snap.uptime_seconds);
  snap.topk = topk_.Snapshot(snap.uptime_seconds);
  snap.batch = batch_.Snapshot(snap.uptime_seconds);
  snap.reload = reload_.Snapshot(snap.uptime_seconds);
  snap.degradation.tier = current_tier_.load(std::memory_order_relaxed);
  snap.degradation.served_full =
      tier_served_[0].load(std::memory_order_relaxed);
  snap.degradation.served_textual =
      tier_served_[1].load(std::memory_order_relaxed);
  snap.degradation.served_pair_only =
      tier_served_[2].load(std::memory_order_relaxed);
  snap.scrub.cycles = scrub_cycles_.load(std::memory_order_relaxed);
  snap.scrub.corruptions =
      scrub_corruptions_.load(std::memory_order_relaxed);
  snap.scrub.reloads_ok = scrub_reloads_ok_.load(std::memory_order_relaxed);
  snap.scrub.reloads_failed =
      scrub_reloads_failed_.load(std::memory_order_relaxed);
  snap.scrub.poisoned = poisoned_.load(std::memory_order_relaxed);
  snap.ann.queries = ann_queries_.load(std::memory_order_relaxed);
  snap.ann.fallbacks = ann_fallbacks_.load(std::memory_order_relaxed);
  snap.ann.probes = ann_probes_.load(std::memory_order_relaxed);
  snap.ann.shortlisted = ann_shortlisted_.load(std::memory_order_relaxed);
  return snap;
}

namespace {
std::string EndpointJson(const char* name, const EndpointSnapshot& e) {
  return StrFormat(
      "\"%s\":{\"requests\":%llu,\"errors\":%llu,\"shed\":%llu,"
      "\"rejected\":%llu,\"qps\":%.2f,\"p50_ms\":%.4f,\"p99_ms\":%.4f,"
      "\"cache_hit_rate\":%.4f}",
      name, static_cast<unsigned long long>(e.requests),
      static_cast<unsigned long long>(e.errors),
      static_cast<unsigned long long>(e.shed),
      static_cast<unsigned long long>(e.rejected), e.qps, e.p50_ms, e.p99_ms,
      e.cache_hit_rate);
}
}  // namespace

std::string ServingSnapshot::ToJson() const {
  const std::string degradation_json = StrFormat(
      "\"degradation\":{\"tier\":%d,\"served_full\":%llu,"
      "\"served_textual\":%llu,\"served_pair_only\":%llu}",
      degradation.tier,
      static_cast<unsigned long long>(degradation.served_full),
      static_cast<unsigned long long>(degradation.served_textual),
      static_cast<unsigned long long>(degradation.served_pair_only));
  const std::string scrub_json = StrFormat(
      "\"scrub\":{\"cycles\":%llu,\"corruptions\":%llu,"
      "\"reloads_ok\":%llu,\"reloads_failed\":%llu,\"poisoned\":%s}",
      static_cast<unsigned long long>(scrub.cycles),
      static_cast<unsigned long long>(scrub.corruptions),
      static_cast<unsigned long long>(scrub.reloads_ok),
      static_cast<unsigned long long>(scrub.reloads_failed),
      scrub.poisoned ? "true" : "false");
  const std::string ann_json = StrFormat(
      "\"ann\":{\"queries\":%llu,\"fallbacks\":%llu,\"probes\":%llu,"
      "\"shortlisted\":%llu}",
      static_cast<unsigned long long>(ann.queries),
      static_cast<unsigned long long>(ann.fallbacks),
      static_cast<unsigned long long>(ann.probes),
      static_cast<unsigned long long>(ann.shortlisted));
  return StrFormat("{\"uptime_seconds\":%.3f,%s,%s,%s,%s,%s,%s,%s}",
                   uptime_seconds, EndpointJson("pair", pair).c_str(),
                   EndpointJson("topk", topk).c_str(),
                   EndpointJson("batch", batch).c_str(),
                   EndpointJson("reload", reload).c_str(),
                   degradation_json.c_str(), scrub_json.c_str(),
                   ann_json.c_str());
}

}  // namespace ceaff::serve
