#ifndef CEAFF_SERVE_LRU_CACHE_H_
#define CEAFF_SERVE_LRU_CACHE_H_

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ceaff/common/random.h"

namespace ceaff::serve {

/// Thread-safe string-keyed LRU cache, sharded by key hash so concurrent
/// service workers rarely contend on one mutex. Values are handed out as
/// shared_ptr<const V>, so an entry evicted while a reader still holds it
/// stays alive for that reader — the cache never invalidates data out from
/// under a request.
///
/// Capacity 0 disables the cache entirely (every Get misses, Put is a
/// no-op), which the throughput bench uses to measure uncached query cost.
template <typename V>
class ShardedLruCache {
 public:
  /// `capacity` is the total entry budget, split evenly across
  /// `num_shards` (each shard gets at least one slot).
  explicit ShardedLruCache(size_t capacity, size_t num_shards = 8) {
    if (capacity == 0) return;
    if (num_shards == 0) num_shards = 1;
    if (num_shards > capacity) num_shards = capacity;
    const size_t per_shard = (capacity + num_shards - 1) / num_shards;
    shards_.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(per_shard));
    }
  }

  /// The cached value, or nullptr on miss. A hit refreshes recency.
  std::shared_ptr<const V> Get(const std::string& key) {
    if (shards_.empty()) return nullptr;
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return nullptr;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->second;
  }

  /// Inserts (or refreshes) `key`, evicting the shard's least recently
  /// used entry when full.
  void Put(const std::string& key, std::shared_ptr<const V> value) {
    if (shards_.empty()) return;
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      it->second->second = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    shard.lru.emplace_front(key, std::move(value));
    shard.map[key] = shard.lru.begin();
    if (shard.map.size() > shard.capacity) {
      shard.map.erase(shard.lru.back().first);
      shard.lru.pop_back();
    }
  }

  /// Drops every entry (used when a new index snapshot is swapped in —
  /// cached answers describe the old snapshot).
  void Clear() {
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->map.clear();
      shard->lru.clear();
    }
  }

  size_t size() const {
    size_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      total += shard->map.size();
    }
    return total;
  }

 private:
  struct Shard {
    explicit Shard(size_t cap) : capacity(cap) {}
    mutable std::mutex mu;
    std::list<std::pair<std::string, std::shared_ptr<const V>>> lru;
    std::unordered_map<
        std::string,
        typename std::list<
            std::pair<std::string, std::shared_ptr<const V>>>::iterator>
        map;
    size_t capacity;
  };

  Shard& ShardFor(const std::string& key) {
    return *shards_[HashBytes(key.data(), key.size()) % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ceaff::serve

#endif  // CEAFF_SERVE_LRU_CACHE_H_
