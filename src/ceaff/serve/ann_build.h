#ifndef CEAFF_SERVE_ANN_BUILD_H_
#define CEAFF_SERVE_ANN_BUILD_H_

#include <cstddef>
#include <cstdint>

#include "ceaff/common/status.h"
#include "ceaff/serve/alignment_index.h"

namespace ceaff::serve {

/// Offline ANN training knobs, surfaced by the pipeline's export stage
/// (--export_ann / --ann_centroids).
struct AnnBuildOptions {
  /// IVF centroid count; 0 picks ceil(sqrt(num_targets)).
  size_t num_centroids = 0;
  /// Lloyd iteration cap.
  size_t max_iters = 12;
  /// K-means init seed (stamped into the artifact as ann_seed).
  uint64_t ann_seed = 2020;
};

/// Trains the ANN retrieval sections of `index` in place: fuses each
/// target's dense features into one vector [name_emb ; struct_emb], runs
/// seeded k-means for the IVF coarse index over the *weight-scaled* fused
/// vectors (the space the query probes in), quantizes the unweighted fused
/// vectors to per-row symmetric int8, and re-finalizes the index (so
/// content_crc covers the new sections and the artifact serializes as v3).
///
/// FailedPrecondition when the index has no dense target features to fuse
/// (both embedding matrices empty), no targets, or zero fusion weight on
/// both dense features — callers treat that as "this export stays v2",
/// not as corruption.
Status BuildAnnSections(AlignmentIndex* index,
                        const AnnBuildOptions& options = {});

}  // namespace ceaff::serve

#endif  // CEAFF_SERVE_ANN_BUILD_H_
