#include "ceaff/serve/router.h"

#include <errno.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <utility>

#include "ceaff/common/failpoint.h"
#include "ceaff/common/logging.h"
#include "ceaff/common/string_util.h"
#include "ceaff/serve/alignment_index.h"

namespace ceaff::serve {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The single-process heap comparator (see topk_scan.cc), reused verbatim
/// for the gather merge: combined descending, target id ascending on ties.
/// Same key, disjoint inputs => the merged-and-truncated list is
/// bit-identical to one full scan.
bool BetterCandidate(const Candidate& a, const Candidate& b) {
  return a.combined > b.combined ||
         (a.combined == b.combined && a.target < b.target);
}

std::string EncodeTopKRequestPayload(const std::string& query, size_t k,
                                     bool allow_structural,
                                     uint64_t deadline_ms) {
  BinWriter w;
  w.Str(query);
  w.U64(k);
  w.U8(allow_structural ? 1 : 0);
  w.U64(deadline_ms);
  return w.Take();
}

std::vector<std::pair<size_t, size_t>> SplitRanges(size_t n_targets,
                                                   size_t n_ranges) {
  std::vector<std::pair<size_t, size_t>> ranges(n_ranges);
  const size_t base = n_targets / n_ranges;
  const size_t remainder = n_targets % n_ranges;
  size_t cursor = 0;
  for (size_t i = 0; i < n_ranges; ++i) {
    ranges[i] = {cursor, cursor + base + (i < remainder ? 1 : 0)};
    cursor = ranges[i].second;
  }
  return ranges;
}

const char* BreakerStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

/// RAII latch for reload_in_progress_: the rolling cycle must release the
/// fleet on every exit path, including early aborts.
class ReloadGuard {
 public:
  explicit ReloadGuard(bool* flag) : flag_(flag) { *flag_ = true; }
  ~ReloadGuard() { *flag_ = false; }
  ReloadGuard(const ReloadGuard&) = delete;
  ReloadGuard& operator=(const ReloadGuard&) = delete;

 private:
  bool* flag_;
};

}  // namespace

ShardRouter::ShardRouter(const ShardRouterOptions& options)
    : options_(options) {}

ShardRouter::~ShardRouter() {
  for (size_t i = 0; i < workers_.size(); ++i) {
    WorkerState& worker = *workers_[i];
    if (!worker.alive) continue;
    // Best-effort clean shutdown, then the certain one. Workers are
    // stateless (their index is a read-only mmap), so SIGKILL loses
    // nothing and bounds the join even if a worker is wedged mid-scan.
    (void)worker.pipe.Send(IpcType::kShutdown, "");
    worker.pipe.Close();
    ::kill(worker.pid, SIGKILL);
    int wstatus = 0;
    while (::waitpid(worker.pid, &wstatus, 0) < 0 && errno == EINTR) {
    }
    worker.alive = false;
  }
}

StatusOr<std::unique_ptr<ShardRouter>> ShardRouter::Start(
    const std::string& index_path, const ShardRouterOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("a sharded router needs >= 1 shard");
  }
  if (options.num_replicas == 0) {
    return Status::InvalidArgument("a sharded router needs >= 1 replica");
  }
  // One validating load in the router: learn the target count for range
  // assignment and refuse to fork a fleet against a corrupt artifact. The
  // copy is discarded — the router itself never scores anything.
  size_t n_targets = 0;
  {
    CEAFF_ASSIGN_OR_RETURN(AlignmentIndex probe,
                           LoadAlignmentIndex(index_path));
    n_targets = probe.num_targets();
  }
  if (n_targets == 0) {
    return Status::FailedPrecondition("index has no target entities");
  }

  ShardRouterOptions effective = options;
  // Never hand a shard an empty range: more ranges than targets would mean
  // workers that can only ever answer PAIR.
  effective.num_shards = std::min(effective.num_shards, n_targets);

  std::unique_ptr<ShardRouter> router(new ShardRouter(effective));
  router->ranges_total_ = effective.num_shards;
  router->lifetime_hist_ = std::make_unique<LatencyHistogram>();
  router->rollback_breaker_ =
      std::make_unique<CircuitBreaker>(effective.rollback_breaker);

  GenerationInfo gen;
  gen.id = router->next_generation_id_++;
  gen.path = index_path;
  gen.resolved = index_path;
  gen.n_targets = n_targets;
  gen.ranges = SplitRanges(n_targets, router->ranges_total_);
  // Generational directories pin each worker to the CURRENT generation
  // file, not the directory — a respawn after a concurrent Put must not
  // silently load a newer index under an old generation id.
  auto store_gen = AlignmentIndexDirGeneration(index_path);
  if (store_gen.ok()) {
    gen.store_gen = store_gen.value();
    auto resolved = AlignmentIndexDirCurrentFile(index_path);
    if (resolved.ok()) gen.resolved = resolved.value();
  }
  router->current_gen_ = gen;

  const size_t n_workers = router->ranges_total_ * effective.num_replicas;
  for (size_t w = 0; w < n_workers; ++w) {
    auto worker = std::make_unique<WorkerState>();
    worker->range = w / effective.num_replicas;
    worker->replica = w % effective.num_replicas;
    worker->begin = gen.ranges[worker->range].first;
    worker->end = gen.ranges[worker->range].second;
    worker->generation = gen.id;
    worker->index_path = gen.resolved;
    if (w < effective.shard_failpoints.size()) {
      worker->failpoint_spec = effective.shard_failpoints[w];
    }
    worker->breaker =
        std::make_unique<CircuitBreaker>(effective.respawn_breaker);
    router->workers_.push_back(std::move(worker));
  }

  Status last_spawn_error = Status::OK();
  size_t alive = 0;
  for (size_t w = 0; w < n_workers; ++w) {
    const Status spawned = router->SpawnWorker(w);
    if (spawned.ok()) {
      ++alive;
    } else {
      last_spawn_error = spawned;
      router->workers_[w]->breaker->RecordFailure(NowNanos());
      CEAFF_LOG(Warning) << "worker " << w
                         << " failed to start: " << spawned.ToString();
    }
  }
  if (alive == 0) {
    return Status(last_spawn_error.code(),
                  "no shard worker came up: " + last_spawn_error.message());
  }
  return router;
}

Status ShardRouter::SpawnWorker(size_t worker_idx) {
  WorkerState& worker = *workers_[worker_idx];
  MessagePipe parent_end;
  MessagePipe child_end;
  CEAFF_RETURN_IF_ERROR(MessagePipe::CreatePair(&parent_end, &child_end));

  // Flush inherited stdio so the child's copy of the buffers is empty —
  // otherwise buffered router output is printed twice.
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    return Status::IOError(
        StrFormat("fork failed for worker %zu", worker_idx));
  }
  if (pid == 0) {
    // Child: drop every router-side fd it inherited. Closing the other
    // workers' router ends matters for liveness — a worker whose pipe is
    // also held open by a sibling would never see EOF when the router
    // dies.
    parent_end.Close();
    for (auto& other : workers_) other->pipe.Close();
    ShardConfig config;
    config.shard_id = worker_idx;
    config.num_shards = workers_.size();
    config.target_begin = worker.begin;
    config.target_end = worker.end;
    config.generation = worker.generation;
    config.index_path = worker.index_path;
    config.failpoint_spec = worker.failpoint_spec;
    config.ann = options_.ann;
    // _exit, never exit: the child must not run the router's atexit
    // handlers or flush its inherited stdio state.
    ::_exit(ShardWorkerMain(std::move(child_end), config));
  }
  child_end.Close();

  // Handshake: the Pong proves the worker loaded the index and echoes the
  // range and generation it will serve. A worker that cannot come up is
  // reaped here so the caller sees one clean error, not a zombie.
  auto fail_spawn = [&](Status why) {
    parent_end.Close();
    ::kill(pid, SIGKILL);
    int wstatus = 0;
    while (::waitpid(pid, &wstatus, 0) < 0 && errno == EINTR) {
    }
    return why;
  };
  Status sent = parent_end.Send(IpcType::kPing, "");
  if (!sent.ok()) return fail_spawn(std::move(sent));
  auto pong = parent_end.Recv(options_.spawn_handshake_ms);
  if (!pong.ok()) {
    return fail_spawn(Status(pong.status().code(),
                             StrFormat("worker %zu handshake failed: %s",
                                       worker_idx,
                                       pong.status().message().c_str())));
  }
  uint64_t echoed_begin = 0;
  uint64_t echoed_end = 0;
  uint64_t echoed_generation = 0;
  BinReader reader(pong.value().payload);
  if (pong.value().type != IpcType::kPong || !reader.U64(&echoed_begin) ||
      !reader.U64(&echoed_end) || !reader.U64(&echoed_generation) ||
      !reader.Done() || echoed_begin != worker.begin ||
      echoed_end != worker.end || echoed_generation != worker.generation) {
    return fail_spawn(Status::Internal(
        StrFormat("worker %zu handshake returned a bad pong", worker_idx)));
  }

  worker.pipe = std::move(parent_end);
  worker.pid = pid;
  worker.alive = true;
  worker.last_spawn_ns = NowNanos();
  // The handshake deliberately does NOT close a breaker probe: a worker
  // that boots fine but dies on every query must still trip the breaker.
  // Only RecordWorkerAnswered() resolves the probe.
  worker.probe_pending = true;
  return Status::OK();
}

void ShardRouter::MarkDead(size_t worker_idx, bool already_reaped,
                           bool data_loss) {
  WorkerState& worker = *workers_[worker_idx];
  if (!worker.alive) return;
  worker.alive = false;
  worker.pipe.Close();
  if (!already_reaped) {
    ::kill(worker.pid, SIGKILL);
    int wstatus = 0;
    while (::waitpid(worker.pid, &wstatus, 0) < 0 && errno == EINTR) {
    }
  }
  ++worker.deaths;
  const uint64_t now = NowNanos();
  // Flapping (death soon after spawn) and a failed probe both feed the
  // breaker; a death after a long healthy run does not — a one-off kill
  // should respawn on the next pass, not march toward an open breaker.
  if (worker.probe_pending ||
      now - worker.last_spawn_ns < options_.flap_window_ns) {
    worker.breaker->RecordFailure(now);
  }
  worker.probe_pending = false;
  // Canary scorekeeping: deaths and corrupt replies on the generation under
  // canary are the strongest rollback signals. Counted here, evaluated at
  // the next safe point (end of TopK / CheckHealth) — never mid-gather.
  if (canary_active_ && worker.generation == canary_gen_) {
    ++canary_deaths_;
    if (data_loss) ++canary_dataloss_;
  }
  CEAFF_LOG(Warning) << "worker " << worker_idx << " (pid " << worker.pid
                     << ", range " << worker.range << " replica "
                     << worker.replica << ", gen " << worker.generation
                     << ") died";
}

void ShardRouter::TryRespawnDeadWorkers() {
  // A rolling reload/rollback cycle owns every worker transition while it
  // runs; a breaker respawn racing the cycle would double-spawn the slot
  // the cycle is about to fill (the RELOAD-vs-HEALTH-reap race).
  if (reload_in_progress_) return;
  for (size_t w = 0; w < workers_.size(); ++w) {
    WorkerState& worker = *workers_[w];
    if (worker.alive) continue;
    if (!worker.breaker->Allow(NowNanos())) continue;
    // A dead slot always comes back on the CURRENT generation. Respawning
    // it on a stale generation id would be silently wrong for flat-file
    // reloads (same path, new bytes, old label) and pointlessly old for
    // generational directories.
    if (worker.generation != current_gen_.id) {
      worker.generation = current_gen_.id;
      worker.begin = current_gen_.ranges[worker.range].first;
      worker.end = current_gen_.ranges[worker.range].second;
      worker.index_path = current_gen_.resolved;
    }
    const Status spawned = SpawnWorker(w);
    if (spawned.ok()) {
      ++worker.respawns;
      CEAFF_LOG(Info) << "worker " << w << " respawned (pid " << worker.pid
                      << "), probing";
    } else {
      worker.breaker->RecordFailure(NowNanos());
      CEAFF_LOG(Warning) << "worker " << w
                         << " respawn failed: " << spawned.ToString();
    }
  }
}

void ShardRouter::RecordWorkerAnswered(size_t worker_idx) {
  WorkerState& worker = *workers_[worker_idx];
  if (worker.probe_pending) {
    worker.breaker->RecordSuccess();
    worker.probe_pending = false;
  }
}

uint64_t ShardRouter::PinnedGeneration() const {
  // Coverage per generation among live workers; the pin is the generation
  // with the widest range coverage, ties broken toward the newest — so a
  // mid-reload fleet prefers the incoming generation the moment it covers
  // every range, and any single query only ever sees one generation.
  std::map<uint64_t, std::vector<bool>> covered;
  for (const auto& worker : workers_) {
    if (!worker->alive) continue;
    auto& ranges = covered[worker->generation];
    if (ranges.empty()) ranges.resize(ranges_total_, false);
    ranges[worker->range] = true;
  }
  uint64_t best_gen = 0;
  size_t best_coverage = 0;
  for (const auto& [gen, ranges] : covered) {
    const size_t coverage = static_cast<size_t>(
        std::count(ranges.begin(), ranges.end(), true));
    if (coverage > best_coverage ||
        (coverage == best_coverage && gen > best_gen)) {
      best_gen = gen;
      best_coverage = coverage;
    }
  }
  return best_gen;
}

std::vector<size_t> ShardRouter::LiveReplicasOnGeneration(
    size_t range, uint64_t gen) const {
  std::vector<size_t> live;
  for (size_t r = 0; r < options_.num_replicas; ++r) {
    const size_t w = range * options_.num_replicas + r;
    if (workers_[w]->alive && workers_[w]->generation == gen) {
      live.push_back(w);
    }
  }
  // Rotate by the scatter counter so repeated queries spread across the
  // replicas instead of hammering replica 0 while the rest idle.
  if (live.size() > 1) {
    std::rotate(live.begin(),
                live.begin() + (scatter_counter_ % live.size()), live.end());
  }
  return live;
}

StatusOr<TopKResult> ShardRouter::TopK(const std::string& query_name,
                                       size_t k,
                                       const CancellationToken* cancel) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  TryRespawnDeadWorkers();

  // Per-shard deadline: the request's remaining admission budget, capped by
  // the router's own ceiling. The same number is both the worker's scan
  // deadline (its cancellation token) and the router's gather timeout — a
  // shard that blows it is indistinguishable from a hung one.
  int64_t deadline_ms = options_.default_shard_deadline_ms;
  if (cancel != nullptr) {
    const int64_t remaining_ms = cancel->RemainingNanos() / 1'000'000;
    if (cancel->has_deadline()) {
      if (remaining_ms <= 0) {
        ++topk_errors_;
        return Status::DeadlineExceeded("deadline exceeded before scatter");
      }
      deadline_ms = std::min(deadline_ms, std::max<int64_t>(remaining_ms, 1));
    }
    const Status cancelled = cancel->Check("sharded topk");
    if (!cancelled.ok()) {
      ++topk_errors_;
      return cancelled;
    }
  }
  const std::string payload = EncodeTopKRequestPayload(
      query_name, k, /*allow_structural=*/true,
      static_cast<uint64_t>(deadline_ms));

  // The mixed-generation guard: this scatter talks ONLY to replicas on the
  // pinned generation, so the merge below can never mix index generations
  // even while a rolling reload is mid-cycle.
  const uint64_t pinned = PinnedGeneration();
  if (pinned == 0) {
    ++topk_errors_;
    return Status::Unavailable(
        StrFormat("all %zu workers down; no range could answer topk",
                  workers_.size()));
  }
  ++scatter_counter_;
  const uint64_t scatter_start_ns = NowNanos();

  // Per-range plan: the live same-generation replicas, primary first.
  // Phase 1 sends to every range's primary so the worker scans overlap;
  // phase 2 gathers, failing over SERIALLY within a range's replica list —
  // the hedge only pays latency when the primary actually failed.
  struct RangePlan {
    std::vector<size_t> replicas;
    size_t next = 0;                // next replica to try on failover
    size_t inflight = SIZE_MAX;     // worker the request is pending on
  };
  std::vector<RangePlan> plans(ranges_total_);
  for (size_t s = 0; s < ranges_total_; ++s) {
    plans[s].replicas = LiveReplicasOnGeneration(s, pinned);
  }

  auto try_send = [&](RangePlan& plan) {
    while (plan.next < plan.replicas.size()) {
      const size_t w = plan.replicas[plan.next];
      if (workers_[w]->alive &&
          workers_[w]->pipe.Send(IpcType::kTopKRequest, payload).ok()) {
        plan.inflight = w;
        return;
      }
      if (workers_[w]->alive) MarkDead(w, /*already_reaped=*/false);
      ++plan.next;
      if (plan.next < plan.replicas.size()) ++topk_failover_;
    }
    plan.inflight = SIZE_MAX;
  };
  for (RangePlan& plan : plans) try_send(plan);

  // Gather. Transport-level failures (peer gone, timeout, CRC mismatch)
  // fail over to the next replica of the range; carried application errors
  // (e.g. the query cannot be scored) leave the worker healthy and are
  // deterministic — retrying them on a sibling replica would fail the same
  // way, so the range is simply dropped from the merge.
  std::vector<TopKResult> parts;
  parts.reserve(ranges_total_);
  Status app_error = Status::OK();
  for (RangePlan& plan : plans) {
    while (plan.inflight != SIZE_MAX) {
      const size_t w = plan.inflight;
      auto reply = workers_[w]->pipe.Recv(deadline_ms);
      if (!reply.ok() || reply.value().type != IpcType::kTopKResponse) {
        MarkDead(w, /*already_reaped=*/false,
                 /*data_loss=*/reply.ok() ? false
                                          : reply.status().IsDataLoss());
        ++plan.next;
        if (plan.next < plan.replicas.size()) ++topk_failover_;
        try_send(plan);
        continue;
      }
      StatusOr<TopKResult> part = DecodeTopKResponse(reply.value().payload);
      if (part.ok() && part->generation != pinned) {
        // A worker answering under the wrong generation id is a protocol
        // violation — letting it into the merge would break the
        // single-generation guarantee, so it is treated like corruption.
        part = Status::DataLoss(StrFormat(
            "worker %zu answered for generation %llu, scatter pinned %llu",
            w, static_cast<unsigned long long>(part->generation),
            static_cast<unsigned long long>(pinned)));
      }
      if (part.ok()) {
        RecordWorkerAnswered(w);
        parts.push_back(std::move(part).value());
        break;
      }
      if (part.status().IsDataLoss()) {
        // Corrupt reply: the frame CRC'd clean but the payload is garbage
        // (or the worker itself reported lost framing). The pipe cannot be
        // resynchronised, so the worker is treated exactly like a crash.
        MarkDead(w, /*already_reaped=*/false, /*data_loss=*/true);
        ++plan.next;
        if (plan.next < plan.replicas.size()) ++topk_failover_;
        try_send(plan);
        continue;
      }
      RecordWorkerAnswered(w);
      app_error = part.status();
      break;
    }
  }

  const uint64_t latency_ns = NowNanos() - scatter_start_ns;
  const bool scatter_failed = parts.empty();
  ++lifetime_queries_;
  if (scatter_failed) ++lifetime_errors_;
  lifetime_hist_->Record(latency_ns);
  RecordCanaryScatter(pinned, latency_ns, !scatter_failed);

  if (scatter_failed) {
    ++topk_errors_;
    if (!app_error.ok()) return app_error;
    return Status::Unavailable(
        StrFormat("all replicas of all %zu ranges down; no range could "
                  "answer topk",
                  ranges_total_));
  }

  TopKResult merged;
  merged.query = query_name;
  merged.tier = ServiceTier::kFull;
  merged.generation = pinned;
  // Missing ranges — every same-generation replica dead, or the range
  // answered with an error — make the answer degraded: correct over the
  // targets that were scanned, silent about the rest. Never cached. With
  // R >= 2 this is the last resort; single-worker loss is absorbed by the
  // failover above and lands here only when a whole replica set is down.
  merged.degraded = parts.size() < ranges_total_;
  for (TopKResult& part : parts) {
    merged.structural_used = merged.structural_used || part.structural_used;
    // ANN bookkeeping is additive across the fleet: a merged answer "used
    // ANN" when any shard's range went through the shortlist path (small
    // ranges fall back exhaustively — which is exact, not degraded).
    merged.ann_used = merged.ann_used || part.ann_used;
    merged.ann_probes += part.ann_probes;
    merged.ann_shortlist += part.ann_shortlist;
    for (Candidate& candidate : part.candidates) {
      merged.candidates.push_back(std::move(candidate));
    }
  }
  std::sort(merged.candidates.begin(), merged.candidates.end(),
            BetterCandidate);
  if (merged.candidates.size() > k) merged.candidates.resize(k);
  if (merged.degraded) {
    ++topk_degraded_;
  } else {
    ++topk_ok_;
  }
  if (merged.ann_used) {
    ++ann_answers_;
    ann_probes_ += merged.ann_probes;
    ann_shortlisted_ += merged.ann_shortlist;
  }
  return merged;
}

StatusOr<PairAnswer> ShardRouter::LookupPair(const std::string& source_name,
                                             const CancellationToken* cancel) {
  TryRespawnDeadWorkers();
  int64_t deadline_ms = options_.default_shard_deadline_ms;
  if (cancel != nullptr) {
    const Status cancelled = cancel->Check("sharded pair lookup");
    if (!cancelled.ok()) {
      ++pair_errors_;
      return cancelled;
    }
    if (cancel->has_deadline()) {
      const int64_t remaining_ms = cancel->RemainingNanos() / 1'000'000;
      deadline_ms = std::min(deadline_ms, std::max<int64_t>(remaining_ms, 1));
    }
  }
  BinWriter w;
  w.Str(source_name);
  const std::string payload = w.Take();
  ++scatter_counter_;

  // Every worker holds the complete pair maps, so "ownership" is only an
  // affinity hint. The try order prefers the pinned generation (the
  // answer should agree with what TOPK would say), walking the owning
  // range's replicas first, then the other ranges'; workers on other
  // generations are the final fallback — PAIR stays exact (never
  // degraded) down to the last survivor.
  const uint64_t pinned = PinnedGeneration();
  const size_t owner = ranges_total_ == 0
                           ? 0
                           : std::hash<std::string>{}(source_name) %
                                 ranges_total_;
  std::vector<size_t> order;
  order.reserve(workers_.size());
  for (size_t offset = 0; offset < ranges_total_; ++offset) {
    const size_t range = (owner + offset) % ranges_total_;
    for (size_t worker : LiveReplicasOnGeneration(range, pinned)) {
      order.push_back(worker);
    }
  }
  for (size_t worker = 0; worker < workers_.size(); ++worker) {
    if (workers_[worker]->alive && workers_[worker]->generation != pinned) {
      order.push_back(worker);
    }
  }

  for (size_t attempt = 0; attempt < order.size(); ++attempt) {
    const size_t i = order[attempt];
    if (!workers_[i]->alive) continue;
    const Status sent =
        workers_[i]->pipe.Send(IpcType::kPairRequest, payload);
    if (!sent.ok()) {
      MarkDead(i, /*already_reaped=*/false);
      continue;
    }
    auto reply = workers_[i]->pipe.Recv(deadline_ms);
    if (!reply.ok() || reply.value().type != IpcType::kPairResponse) {
      MarkDead(i, /*already_reaped=*/false,
               /*data_loss=*/reply.ok() ? false
                                        : reply.status().IsDataLoss());
      continue;
    }
    StatusOr<PairAnswer> answer = DecodePairResponse(reply.value().payload);
    if (!answer.ok() && answer.status().IsDataLoss()) {
      MarkDead(i, /*already_reaped=*/false, /*data_loss=*/true);
      continue;
    }
    // Healthy reply — kNotFound included: every worker has the full map,
    // so any worker's "no such pair" is authoritative.
    RecordWorkerAnswered(i);
    if (answer.ok()) {
      ++pair_ok_;
      if (attempt > 0) ++pair_failover_;
    } else {
      ++pair_errors_;
    }
    return answer;
  }
  ++pair_errors_;
  return Status::Unavailable(StrFormat(
      "all %zu workers down; no worker could answer pair lookup",
      workers_.size()));
}

StatusOr<ShardRouter::GenerationInfo> ShardRouter::ValidateGeneration(
    const std::string& index_path) {
  // Validate before touching the fleet: a corrupt artifact must refuse the
  // swap while the current workers keep serving. For generational
  // directories the load also settles quarantine, so the store generation
  // read right after names a file known good a moment ago.
  size_t n_targets = 0;
  {
    CEAFF_ASSIGN_OR_RETURN(AlignmentIndex probe,
                           LoadAlignmentIndex(index_path));
    n_targets = probe.num_targets();
  }
  if (n_targets < ranges_total_) {
    return Status::FailedPrecondition(StrFormat(
        "new index has %zu targets, fewer than the %zu shards",
        n_targets, ranges_total_));
  }
  GenerationInfo gen;
  gen.path = index_path;
  gen.resolved = index_path;
  gen.n_targets = n_targets;
  gen.ranges = SplitRanges(n_targets, ranges_total_);
  auto store_gen = AlignmentIndexDirGeneration(index_path);
  if (store_gen.ok()) {
    gen.store_gen = store_gen.value();
    auto resolved = AlignmentIndexDirCurrentFile(index_path);
    if (resolved.ok()) gen.resolved = resolved.value();
  }
  return gen;
}

Status ShardRouter::CycleWorkerTo(size_t worker_idx,
                                  const GenerationInfo& next) {
  WorkerState& worker = *workers_[worker_idx];
  if (worker.alive) {
    // Drain at a frame boundary: the worker acks, then exits on its own.
    // Only a wedged worker (no ack inside the budget) eats a SIGKILL.
    bool acked = false;
    if (worker.pipe.Send(IpcType::kDrain, "").ok()) {
      auto ack = worker.pipe.Recv(options_.drain_ack_ms);
      acked = ack.ok() && ack.value().type == IpcType::kDrainAck;
    }
    worker.pipe.Close();
    if (!acked) ::kill(worker.pid, SIGKILL);
    int wstatus = 0;
    while (::waitpid(worker.pid, &wstatus, 0) < 0 && errno == EINTR) {
    }
    worker.alive = false;
    worker.probe_pending = false;
    // Deliberate restart: the breaker is not fed.
  }
  worker.begin = next.ranges[worker.range].first;
  worker.end = next.ranges[worker.range].second;
  worker.generation = next.id;
  worker.index_path = next.resolved;
  const Status spawned = SpawnWorker(worker_idx);
  if (spawned.ok()) {
    ++worker.respawns;
  } else {
    worker.breaker->RecordFailure(NowNanos());
  }
  return spawned;
}

Status ShardRouter::MoveFleetTo(const GenerationInfo& next, bool arm_canary) {
  // Snapshot the baseline the canary will be judged against BEFORE any
  // worker moves: the old generation's error ratio and p99 over everything
  // it served.
  baseline_p99_ns_ = lifetime_hist_->QuantileNanos(0.99);
  baseline_queries_ = lifetime_queries_;
  baseline_errors_ = lifetime_errors_;

  if (options_.num_replicas == 1) {
    // Stop-the-world: with no replication there is no way to keep a range
    // served while its only worker restarts, and staggering would let two
    // generations meet in one merge. Deliberate restart — no breaker food.
    for (size_t w = 0; w < workers_.size(); ++w) {
      WorkerState& worker = *workers_[w];
      if (!worker.alive) continue;
      (void)worker.pipe.Send(IpcType::kShutdown, "");
      worker.pipe.Close();
      ::kill(worker.pid, SIGKILL);
      int wstatus = 0;
      while (::waitpid(worker.pid, &wstatus, 0) < 0 && errno == EINTR) {
      }
      worker.alive = false;
      worker.probe_pending = false;
    }
    Status last_error = Status::OK();
    size_t alive = 0;
    for (size_t w = 0; w < workers_.size(); ++w) {
      WorkerState& worker = *workers_[w];
      worker.begin = next.ranges[worker.range].first;
      worker.end = next.ranges[worker.range].second;
      worker.generation = next.id;
      worker.index_path = next.resolved;
      const Status spawned = SpawnWorker(w);
      if (spawned.ok()) {
        ++worker.respawns;
        ++alive;
      } else {
        last_error = spawned;
        worker.breaker->RecordFailure(NowNanos());
        CEAFF_LOG(Warning) << "worker " << w << " failed to restart on "
                           << "reload: " << spawned.ToString();
      }
    }
    previous_gen_ = current_gen_;
    current_gen_ = next;
    if (alive == 0) {
      return Status(last_error.code(),
                    "reload validated but no worker came back: " +
                        last_error.message());
    }
  } else {
    // Rolling restart, replica-major: cycle replica 0 of every range, then
    // replica 1, ... — at any instant the not-yet-cycled replica set still
    // covers every range on ONE generation, so the scatter pin always has
    // a complete fleet to aim at and queries flow mid-reload.
    const ReloadGuard guard(&reload_in_progress_);
    bool any_on_next = false;
    for (size_t replica = 0; replica < options_.num_replicas; ++replica) {
      for (size_t range = 0; range < ranges_total_; ++range) {
        const size_t w = worker_index(range, replica);
        const Status cycled = CycleWorkerTo(w, next);
        if (!cycled.ok()) {
          if (!any_on_next) {
            // The very first worker refused the new generation — nothing
            // serves it yet, so abort the reload and put the worker back
            // on the current one (best effort; its breaker catches a
            // repeat failure).
            WorkerState& worker = *workers_[w];
            worker.begin = current_gen_.ranges[worker.range].first;
            worker.end = current_gen_.ranges[worker.range].second;
            worker.generation = current_gen_.id;
            worker.index_path = current_gen_.resolved;
            const Status restored = SpawnWorker(w);
            if (restored.ok()) ++worker.respawns;
            return Status(cycled.code(),
                          "rolling reload aborted on the first worker: " +
                              cycled.message());
          }
          // Later failures leave the slot dead; it respawns onto the new
          // generation through its breaker after the cycle completes.
          CEAFF_LOG(Warning)
              << "worker " << w << " failed to cycle onto generation "
              << next.id << ": " << cycled.ToString();
        } else {
          any_on_next = true;
        }
        if (reload_cycle_hook_) reload_cycle_hook_(w);
      }
    }
    previous_gen_ = current_gen_;
    current_gen_ = next;
  }

  if (arm_canary && options_.canary_window > 0) {
    canary_active_ = true;
    canary_gen_ = next.id;
    canary_seen_ = 0;
    canary_errors_ = 0;
    canary_deaths_ = 0;
    canary_dataloss_ = 0;
    canary_hist_ = std::make_unique<LatencyHistogram>();
  } else {
    canary_active_ = false;
  }
  return Status::OK();
}

Status ShardRouter::Reload(const std::string& index_path) {
  // Same drill surface as AlignmentService::Reload: an armed
  // `serve.reload` failpoint refuses the swap while the fleet keeps
  // serving the current generation.
  CEAFF_RETURN_IF_ERROR(failpoint::Hit("serve.reload"));
  CEAFF_ASSIGN_OR_RETURN(GenerationInfo next, ValidateGeneration(index_path));
  next.id = next_generation_id_++;
  CEAFF_RETURN_IF_ERROR(MoveFleetTo(next, /*arm_canary=*/true));
  ++reloads_;
  size_t alive = 0;
  for (const auto& worker : workers_) {
    if (worker->alive) ++alive;
  }
  CEAFF_LOG(Info) << "sharded reload: " << alive << "/" << workers_.size()
                  << " workers serving " << index_path << " (generation "
                  << current_gen_.id << ", "
                  << (options_.num_replicas > 1 ? "rolling" : "stop-the-world")
                  << ")";
  return Status::OK();
}

void ShardRouter::RecordCanaryScatter(uint64_t pinned, uint64_t latency_ns,
                                      bool ok) {
  if (canary_active_ && pinned == canary_gen_) {
    ++canary_seen_;
    if (!ok) ++canary_errors_;
    canary_hist_->Record(latency_ns);
  }
  EvaluateCanary();
}

void ShardRouter::EvaluateCanary() {
  if (!canary_active_ || reload_in_progress_) return;
  if (current_gen_.id != canary_gen_) {
    // The fleet moved again (another reload) before the verdict; the new
    // reload armed its own canary or none.
    canary_active_ = false;
    return;
  }
  // Rollback decision rule, strongest signal first:
  //   1. Any data-loss reply from the canary generation — an integrity
  //      failure the scrubber would flag; no window needed.
  //   2. Canary-generation worker deaths at/over the threshold — a
  //      generation whose workers keep crashing is bad regardless of
  //      latency.
  //   3. At window end: error-ratio regression vs the baseline, then p99
  //      blowout vs the baseline (only with enough baseline samples).
  std::string reason;
  if (canary_dataloss_ > 0) {
    reason = StrFormat("%llu data-loss repl%s from canary generation %llu",
                       static_cast<unsigned long long>(canary_dataloss_),
                       canary_dataloss_ == 1 ? "y" : "ies",
                       static_cast<unsigned long long>(canary_gen_));
  } else if (canary_deaths_ >= options_.canary_death_threshold) {
    reason = StrFormat(
        "%llu worker death%s on canary generation %llu (threshold %zu)",
        static_cast<unsigned long long>(canary_deaths_),
        canary_deaths_ == 1 ? "" : "s",
        static_cast<unsigned long long>(canary_gen_),
        options_.canary_death_threshold);
  } else if (canary_seen_ >= options_.canary_window) {
    const double canary_ratio =
        static_cast<double>(canary_errors_) / canary_seen_;
    const double baseline_ratio =
        baseline_queries_ > 0
            ? static_cast<double>(baseline_errors_) / baseline_queries_
            : 0.0;
    if (canary_errors_ > 0 &&
        canary_ratio > std::max(0.25, baseline_ratio * 4.0)) {
      reason = StrFormat(
          "error-ratio regression on canary generation %llu "
          "(%.2f vs baseline %.2f)",
          static_cast<unsigned long long>(canary_gen_), canary_ratio,
          baseline_ratio);
    } else if (baseline_queries_ >= options_.canary_min_baseline &&
               baseline_p99_ns_ > 0) {
      const uint64_t canary_p99 = canary_hist_->QuantileNanos(0.99);
      if (static_cast<double>(canary_p99) >
          static_cast<double>(baseline_p99_ns_) *
              options_.canary_p99_factor) {
        reason = StrFormat(
            "p99 regression on canary generation %llu (%llu ns vs "
            "baseline %llu ns, factor %.1f)",
            static_cast<unsigned long long>(canary_gen_),
            static_cast<unsigned long long>(canary_p99),
            static_cast<unsigned long long>(baseline_p99_ns_),
            options_.canary_p99_factor);
      }
    }
    if (reason.empty()) {
      // Window complete, no regression: the generation is promoted.
      canary_active_ = false;
      ++canary_passes_;
      CEAFF_LOG(Info) << "canary passed: generation " << canary_gen_
                      << " promoted after " << canary_seen_ << " scatters";
      return;
    }
  }
  if (!reason.empty()) TriggerRollback(reason);
}

void ShardRouter::TriggerRollback(const std::string& reason) {
  canary_active_ = false;
  last_rollback_reason_ = reason;
  if (previous_gen_.id == 0) {
    ++rollbacks_suppressed_;
    CEAFF_LOG(Warning) << "canary failed (" << reason
                       << ") but there is no previous generation to roll "
                          "back to; serving the regressed generation";
    return;
  }
  const uint64_t now = NowNanos();
  if (!rollback_breaker_->Allow(now)) {
    ++rollbacks_suppressed_;
    CEAFF_LOG(Warning) << "canary failed (" << reason
                       << ") but the rollback breaker is open; a fleet "
                          "bouncing between generations must settle";
    return;
  }
  // Rollbacks feed the breaker as failures: `failure_threshold` of them in
  // quick succession trips it open and further rollbacks are suppressed
  // for the cooldown.
  rollback_breaker_->RecordFailure(now);

  const GenerationInfo bad = current_gen_;
  const GenerationInfo restored = previous_gen_;
  CEAFF_LOG(Warning) << "canary failed: " << reason
                     << "; rolling back from generation " << bad.id
                     << " to generation " << restored.id;

  // Quarantine the bad generation in its store so nothing — not this
  // router's own respawns, not the next boot — can load it again. Flat
  // files have no store to quarantine in; the rollback still restores the
  // previous path.
  if (bad.store_gen != 0) {
    const Status quarantined =
        QuarantineAlignmentIndexGeneration(bad.path, bad.store_gen);
    if (quarantined.ok()) {
      last_quarantined_store_gen_ = bad.store_gen;
    } else {
      CEAFF_LOG(Warning) << "could not quarantine store generation "
                         << bad.store_gen << " of " << bad.path << ": "
                         << quarantined.ToString();
    }
  }

  const Status moved = MoveFleetTo(restored, /*arm_canary=*/false);
  // The restored generation's former "previous" slot is gone (it IS the
  // current one now) and the bad generation must never be a rollback
  // target, so the chain ends here until the next successful reload.
  previous_gen_ = GenerationInfo{};
  ++rollbacks_;
  if (!moved.ok()) {
    CEAFF_LOG(Warning) << "rollback to generation " << restored.id
                       << " completed with errors: " << moved.ToString();
  }
}

ShardRouter::HealthReport ShardRouter::CheckHealth() {
  // Reap silent deaths first (a worker SIGKILLed from outside while no
  // query was in flight looks alive until someone waits on it).
  for (size_t w = 0; w < workers_.size(); ++w) {
    WorkerState& worker = *workers_[w];
    if (!worker.alive) continue;
    int wstatus = 0;
    const pid_t reaped = ::waitpid(worker.pid, &wstatus, WNOHANG);
    if (reaped == worker.pid || (reaped < 0 && errno == ECHILD)) {
      MarkDead(w, /*already_reaped=*/true);
    }
  }
  // Report what was observed, THEN repair: the first HEALTH after a kill
  // states the degradation, the next one the recovery. During a rolling
  // reload this is reap-and-report ONLY — the cycle owns every respawn.
  HealthReport report;
  report.total = workers_.size();
  for (const auto& worker : workers_) {
    if (worker->alive) ++report.alive;
  }
  report.ranges_total = ranges_total_;
  const uint64_t pinned = PinnedGeneration();
  for (size_t s = 0; s < ranges_total_; ++s) {
    if (!LiveReplicasOnGeneration(s, pinned).empty()) ++report.ranges_covered;
  }
  report.degraded = report.ranges_covered < report.ranges_total;
  EvaluateCanary();
  TryRespawnDeadWorkers();
  return report;
}

std::string ShardRouter::StatsJson() const {
  size_t alive = 0;
  for (const auto& worker : workers_) {
    if (worker->alive) ++alive;
  }
  const uint64_t now = NowNanos();
  std::string json = StrFormat(
      "{\"shards\": %zu, \"replicas\": %zu, \"workers\": %zu, "
      "\"alive\": %zu, "
      "\"topk\": {\"ok\": %llu, \"degraded\": %llu, \"errors\": %llu, "
      "\"failover\": %llu}, "
      "\"pair\": {\"ok\": %llu, \"failover\": %llu, \"errors\": %llu}, "
      "\"ann\": {\"answers\": %llu, \"probes\": %llu, "
      "\"shortlisted\": %llu}, "
      "\"generation\": {\"current\": %llu, \"store_gen\": %llu, "
      "\"reloads\": %llu, \"rollbacks\": %llu, "
      "\"rollbacks_suppressed\": %llu, \"canary_passes\": %llu, "
      "\"canary\": {\"active\": %s, \"seen\": %zu, \"window\": %zu, "
      "\"errors\": %llu, \"deaths\": %llu, \"dataloss\": %llu}, "
      "\"last_rollback_reason\": \"%s\", "
      "\"quarantined_store_gen\": %llu}, "
      "\"per_shard\": [",
      ranges_total_, options_.num_replicas, workers_.size(), alive,
      static_cast<unsigned long long>(topk_ok_),
      static_cast<unsigned long long>(topk_degraded_),
      static_cast<unsigned long long>(topk_errors_),
      static_cast<unsigned long long>(topk_failover_),
      static_cast<unsigned long long>(pair_ok_),
      static_cast<unsigned long long>(pair_failover_),
      static_cast<unsigned long long>(pair_errors_),
      static_cast<unsigned long long>(ann_answers_),
      static_cast<unsigned long long>(ann_probes_),
      static_cast<unsigned long long>(ann_shortlisted_),
      static_cast<unsigned long long>(current_gen_.id),
      static_cast<unsigned long long>(current_gen_.store_gen),
      static_cast<unsigned long long>(reloads_),
      static_cast<unsigned long long>(rollbacks_),
      static_cast<unsigned long long>(rollbacks_suppressed_),
      static_cast<unsigned long long>(canary_passes_),
      canary_active_ ? "true" : "false", canary_seen_,
      options_.canary_window,
      static_cast<unsigned long long>(canary_errors_),
      static_cast<unsigned long long>(canary_deaths_),
      static_cast<unsigned long long>(canary_dataloss_),
      last_rollback_reason_.c_str(),
      static_cast<unsigned long long>(last_quarantined_store_gen_));
  for (size_t w = 0; w < workers_.size(); ++w) {
    const WorkerState& worker = *workers_[w];
    if (w > 0) json += ", ";
    json += StrFormat(
        "{\"shard\": %zu, \"range\": %zu, \"replica\": %zu, \"pid\": %d, "
        "\"alive\": %s, \"begin\": %zu, \"end\": %zu, "
        "\"generation\": %llu, \"deaths\": %llu, \"respawns\": %llu, "
        "\"breaker_times_opened\": %llu, \"breaker_state\": \"%s\"}",
        w, worker.range, worker.replica, static_cast<int>(worker.pid),
        worker.alive ? "true" : "false", worker.begin, worker.end,
        static_cast<unsigned long long>(worker.generation),
        static_cast<unsigned long long>(worker.deaths),
        static_cast<unsigned long long>(worker.respawns),
        static_cast<unsigned long long>(worker.breaker->times_opened()),
        BreakerStateName(worker.breaker->state(now)));
  }
  json += "]}";
  return json;
}

pid_t ShardRouter::shard_pid(size_t worker) const {
  return workers_[worker]->pid;
}

bool ShardRouter::shard_alive(size_t worker) const {
  return workers_[worker]->alive;
}

std::pair<size_t, size_t> ShardRouter::shard_range(size_t worker) const {
  return {workers_[worker]->begin, workers_[worker]->end};
}

uint64_t ShardRouter::shard_generation(size_t worker) const {
  return workers_[worker]->generation;
}

void ShardRouter::SetShardFailpoints(size_t worker, const std::string& spec) {
  workers_[worker]->failpoint_spec = spec;
}

Status ShardRouter::RestartShard(size_t worker_idx) {
  WorkerState& worker = *workers_[worker_idx];
  if (worker.alive) {
    // Deliberate restart, not a failure: bypass the breaker bookkeeping.
    worker.alive = false;
    worker.pipe.Close();
    ::kill(worker.pid, SIGKILL);
    int wstatus = 0;
    while (::waitpid(worker.pid, &wstatus, 0) < 0 && errno == EINTR) {
    }
    worker.probe_pending = false;
  }
  // Like every respawn, the slot comes back on the current generation.
  if (worker.generation != current_gen_.id) {
    worker.generation = current_gen_.id;
    worker.begin = current_gen_.ranges[worker.range].first;
    worker.end = current_gen_.ranges[worker.range].second;
    worker.index_path = current_gen_.resolved;
  }
  const Status spawned = SpawnWorker(worker_idx);
  if (spawned.ok()) ++worker.respawns;
  return spawned;
}

}  // namespace ceaff::serve
