#include "ceaff/serve/router.h"

#include <errno.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <utility>

#include "ceaff/common/failpoint.h"
#include "ceaff/common/logging.h"
#include "ceaff/common/string_util.h"
#include "ceaff/serve/alignment_index.h"

namespace ceaff::serve {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The single-process heap comparator (see topk_scan.cc), reused verbatim
/// for the gather merge: combined descending, target id ascending on ties.
/// Same key, disjoint inputs => the merged-and-truncated list is
/// bit-identical to one full scan.
bool BetterCandidate(const Candidate& a, const Candidate& b) {
  return a.combined > b.combined ||
         (a.combined == b.combined && a.target < b.target);
}

std::string EncodeTopKRequestPayload(const std::string& query, size_t k,
                                     bool allow_structural,
                                     uint64_t deadline_ms) {
  BinWriter w;
  w.Str(query);
  w.U64(k);
  w.U8(allow_structural ? 1 : 0);
  w.U64(deadline_ms);
  return w.Take();
}

}  // namespace

ShardRouter::ShardRouter(std::string index_path,
                         const ShardRouterOptions& options)
    : index_path_(std::move(index_path)), options_(options) {}

ShardRouter::~ShardRouter() {
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardState& shard = *shards_[i];
    if (!shard.alive) continue;
    // Best-effort clean shutdown, then the certain one. Workers are
    // stateless (their index is a read-only mmap), so SIGKILL loses
    // nothing and bounds the join even if a worker is wedged mid-scan.
    (void)shard.pipe.Send(IpcType::kShutdown, "");
    shard.pipe.Close();
    ::kill(shard.pid, SIGKILL);
    int wstatus = 0;
    while (::waitpid(shard.pid, &wstatus, 0) < 0 && errno == EINTR) {
    }
    shard.alive = false;
  }
}

StatusOr<std::unique_ptr<ShardRouter>> ShardRouter::Start(
    const std::string& index_path, const ShardRouterOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("a sharded router needs >= 1 shard");
  }
  // One validating load in the router: learn the target count for range
  // assignment and refuse to fork a fleet against a corrupt artifact. The
  // copy is discarded — the router itself never scores anything.
  size_t n_targets = 0;
  {
    CEAFF_ASSIGN_OR_RETURN(AlignmentIndex probe,
                           LoadAlignmentIndex(index_path));
    n_targets = probe.num_targets();
  }
  if (n_targets == 0) {
    return Status::FailedPrecondition("index has no target entities");
  }

  ShardRouterOptions effective = options;
  // Never hand a shard an empty range: more shards than targets would mean
  // workers that can only ever answer PAIR.
  effective.num_shards = std::min(effective.num_shards, n_targets);

  std::unique_ptr<ShardRouter> router(
      new ShardRouter(index_path, effective));
  const size_t n = effective.num_shards;
  const size_t base = n_targets / n;
  const size_t remainder = n_targets % n;
  size_t cursor = 0;
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<ShardState>();
    shard->begin = cursor;
    shard->end = cursor + base + (i < remainder ? 1 : 0);
    cursor = shard->end;
    if (i < effective.shard_failpoints.size()) {
      shard->failpoint_spec = effective.shard_failpoints[i];
    }
    shard->breaker =
        std::make_unique<CircuitBreaker>(effective.respawn_breaker);
    router->shards_.push_back(std::move(shard));
  }

  Status last_spawn_error = Status::OK();
  size_t alive = 0;
  for (size_t i = 0; i < n; ++i) {
    const Status spawned = router->SpawnShard(i);
    if (spawned.ok()) {
      ++alive;
    } else {
      last_spawn_error = spawned;
      router->shards_[i]->breaker->RecordFailure(NowNanos());
      CEAFF_LOG(Warning) << "shard " << i
                         << " failed to start: " << spawned.ToString();
    }
  }
  if (alive == 0) {
    return Status(last_spawn_error.code(),
                  "no shard worker came up: " + last_spawn_error.message());
  }
  return router;
}

Status ShardRouter::SpawnShard(size_t shard_idx) {
  ShardState& shard = *shards_[shard_idx];
  MessagePipe parent_end;
  MessagePipe child_end;
  CEAFF_RETURN_IF_ERROR(MessagePipe::CreatePair(&parent_end, &child_end));

  // Flush inherited stdio so the child's copy of the buffers is empty —
  // otherwise buffered router output is printed twice.
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    return Status::IOError(StrFormat("fork failed for shard %zu", shard_idx));
  }
  if (pid == 0) {
    // Child: drop every router-side fd it inherited. Closing the other
    // shards' router ends matters for liveness — a worker whose pipe is
    // also held open by a sibling would never see EOF when the router
    // dies.
    parent_end.Close();
    for (auto& other : shards_) other->pipe.Close();
    ShardConfig config;
    config.shard_id = shard_idx;
    config.num_shards = shards_.size();
    config.target_begin = shard.begin;
    config.target_end = shard.end;
    config.index_path = index_path_;
    config.failpoint_spec = shard.failpoint_spec;
    config.ann = options_.ann;
    // _exit, never exit: the child must not run the router's atexit
    // handlers or flush its inherited stdio state.
    ::_exit(ShardWorkerMain(std::move(child_end), config));
  }
  child_end.Close();

  // Handshake: the Pong proves the worker loaded the index and echoes the
  // range it will scan. A worker that cannot come up is reaped here so the
  // caller sees one clean error, not a zombie.
  auto fail_spawn = [&](Status why) {
    parent_end.Close();
    ::kill(pid, SIGKILL);
    int wstatus = 0;
    while (::waitpid(pid, &wstatus, 0) < 0 && errno == EINTR) {
    }
    return why;
  };
  Status sent = parent_end.Send(IpcType::kPing, "");
  if (!sent.ok()) return fail_spawn(std::move(sent));
  auto pong = parent_end.Recv(options_.spawn_handshake_ms);
  if (!pong.ok()) {
    return fail_spawn(Status(pong.status().code(),
                             StrFormat("shard %zu handshake failed: %s",
                                       shard_idx,
                                       pong.status().message().c_str())));
  }
  uint64_t echoed_begin = 0;
  uint64_t echoed_end = 0;
  BinReader reader(pong.value().payload);
  if (pong.value().type != IpcType::kPong || !reader.U64(&echoed_begin) ||
      !reader.U64(&echoed_end) || !reader.Done() ||
      echoed_begin != shard.begin || echoed_end != shard.end) {
    return fail_spawn(Status::Internal(
        StrFormat("shard %zu handshake returned a bad pong", shard_idx)));
  }

  shard.pipe = std::move(parent_end);
  shard.pid = pid;
  shard.alive = true;
  shard.last_spawn_ns = NowNanos();
  // The handshake deliberately does NOT close a breaker probe: a worker
  // that boots fine but dies on every query must still trip the breaker.
  // Only RecordShardAnswered() resolves the probe.
  shard.probe_pending = true;
  return Status::OK();
}

void ShardRouter::MarkDead(size_t shard_idx, bool already_reaped) {
  ShardState& shard = *shards_[shard_idx];
  if (!shard.alive) return;
  shard.alive = false;
  shard.pipe.Close();
  if (!already_reaped) {
    ::kill(shard.pid, SIGKILL);
    int wstatus = 0;
    while (::waitpid(shard.pid, &wstatus, 0) < 0 && errno == EINTR) {
    }
  }
  ++shard.deaths;
  const uint64_t now = NowNanos();
  // Flapping (death soon after spawn) and a failed probe both feed the
  // breaker; a death after a long healthy run does not — a one-off kill
  // should respawn on the next pass, not march toward an open breaker.
  if (shard.probe_pending ||
      now - shard.last_spawn_ns < options_.flap_window_ns) {
    shard.breaker->RecordFailure(now);
  }
  shard.probe_pending = false;
  CEAFF_LOG(Warning) << "shard " << shard_idx << " (pid " << shard.pid
                     << ") died; range [" << shard.begin << ", " << shard.end
                     << ") degraded until respawn";
}

void ShardRouter::TryRespawnDeadShards() {
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardState& shard = *shards_[i];
    if (shard.alive) continue;
    if (!shard.breaker->Allow(NowNanos())) continue;
    const Status spawned = SpawnShard(i);
    if (spawned.ok()) {
      ++shard.respawns;
      CEAFF_LOG(Info) << "shard " << i << " respawned (pid " << shard.pid
                      << "), probing";
    } else {
      shard.breaker->RecordFailure(NowNanos());
      CEAFF_LOG(Warning) << "shard " << i
                         << " respawn failed: " << spawned.ToString();
    }
  }
}

void ShardRouter::RecordShardAnswered(size_t shard_idx) {
  ShardState& shard = *shards_[shard_idx];
  if (shard.probe_pending) {
    shard.breaker->RecordSuccess();
    shard.probe_pending = false;
  }
}

StatusOr<TopKResult> ShardRouter::TopK(const std::string& query_name,
                                       size_t k,
                                       const CancellationToken* cancel) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  TryRespawnDeadShards();

  // Per-shard deadline: the request's remaining admission budget, capped by
  // the router's own ceiling. The same number is both the worker's scan
  // deadline (its cancellation token) and the router's gather timeout — a
  // shard that blows it is indistinguishable from a hung one.
  int64_t deadline_ms = options_.default_shard_deadline_ms;
  if (cancel != nullptr) {
    const int64_t remaining_ms = cancel->RemainingNanos() / 1'000'000;
    if (cancel->has_deadline()) {
      if (remaining_ms <= 0) {
        ++topk_errors_;
        return Status::DeadlineExceeded("deadline exceeded before scatter");
      }
      deadline_ms = std::min(deadline_ms, std::max<int64_t>(remaining_ms, 1));
    }
    const Status cancelled = cancel->Check("sharded topk");
    if (!cancelled.ok()) {
      ++topk_errors_;
      return cancelled;
    }
  }
  const std::string payload = EncodeTopKRequestPayload(
      query_name, k, /*allow_structural=*/true,
      static_cast<uint64_t>(deadline_ms));

  // Scatter to every live shard. A send failure means the pipe is already
  // dead — mark and move on; the gather below only waits on real sends.
  std::vector<size_t> pending;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!shards_[i]->alive) continue;
    const Status sent = shards_[i]->pipe.Send(IpcType::kTopKRequest, payload);
    if (sent.ok()) {
      pending.push_back(i);
    } else {
      MarkDead(i, /*already_reaped=*/false);
    }
  }

  // Gather. Transport-level failures (peer gone, timeout, CRC mismatch)
  // kill the shard's range out of this answer; carried application errors
  // (e.g. the query cannot be scored) leave the shard healthy.
  std::vector<TopKResult> parts;
  Status app_error = Status::OK();
  for (size_t i : pending) {
    auto reply = shards_[i]->pipe.Recv(deadline_ms);
    if (!reply.ok() || reply.value().type != IpcType::kTopKResponse) {
      MarkDead(i, /*already_reaped=*/false);
      continue;
    }
    StatusOr<TopKResult> part = DecodeTopKResponse(reply.value().payload);
    if (part.ok()) {
      RecordShardAnswered(i);
      parts.push_back(std::move(part).value());
    } else if (part.status().IsDataLoss()) {
      // Corrupt reply: the frame CRC'd clean but the payload is garbage
      // (or the worker itself reported lost framing). The pipe cannot be
      // resynchronised, so the worker is treated exactly like a crash.
      MarkDead(i, /*already_reaped=*/false);
    } else {
      RecordShardAnswered(i);
      app_error = part.status();
    }
  }

  size_t alive = 0;
  for (const auto& shard : shards_) {
    if (shard->alive) ++alive;
  }

  if (parts.empty()) {
    ++topk_errors_;
    if (!app_error.ok()) return app_error;
    return Status::Unavailable(
        StrFormat("all %zu shards down; no shard could answer topk",
                  shards_.size()));
  }

  TopKResult merged;
  merged.query = query_name;
  merged.tier = ServiceTier::kFull;
  // Missing ranges — shards that were already dead, died mid-query, or
  // answered with an error — make the answer degraded: correct over the
  // targets that were scanned, silent about the rest. Never cached.
  merged.degraded = parts.size() < shards_.size();
  for (TopKResult& part : parts) {
    merged.structural_used = merged.structural_used || part.structural_used;
    // ANN bookkeeping is additive across the fleet: a merged answer "used
    // ANN" when any shard's range went through the shortlist path (small
    // ranges fall back exhaustively — which is exact, not degraded).
    merged.ann_used = merged.ann_used || part.ann_used;
    merged.ann_probes += part.ann_probes;
    merged.ann_shortlist += part.ann_shortlist;
    for (Candidate& candidate : part.candidates) {
      merged.candidates.push_back(std::move(candidate));
    }
  }
  std::sort(merged.candidates.begin(), merged.candidates.end(),
            BetterCandidate);
  if (merged.candidates.size() > k) merged.candidates.resize(k);
  (void)alive;
  if (merged.degraded) {
    ++topk_degraded_;
  } else {
    ++topk_ok_;
  }
  if (merged.ann_used) {
    ++ann_answers_;
    ann_probes_ += merged.ann_probes;
    ann_shortlisted_ += merged.ann_shortlist;
  }
  return merged;
}

StatusOr<PairAnswer> ShardRouter::LookupPair(const std::string& source_name,
                                             const CancellationToken* cancel) {
  TryRespawnDeadShards();
  int64_t deadline_ms = options_.default_shard_deadline_ms;
  if (cancel != nullptr) {
    const Status cancelled = cancel->Check("sharded pair lookup");
    if (!cancelled.ok()) {
      ++pair_errors_;
      return cancelled;
    }
    if (cancel->has_deadline()) {
      const int64_t remaining_ms = cancel->RemainingNanos() / 1'000'000;
      deadline_ms = std::min(deadline_ms, std::max<int64_t>(remaining_ms, 1));
    }
  }
  BinWriter w;
  w.Str(source_name);
  const std::string payload = w.Take();

  // Every worker holds the complete pair maps, so "ownership" is only an
  // affinity hint; failover to any live shard keeps PAIR exact (never
  // degraded) down to the last survivor.
  const size_t owner =
      std::hash<std::string>{}(source_name) % shards_.size();
  for (size_t offset = 0; offset < shards_.size(); ++offset) {
    const size_t i = (owner + offset) % shards_.size();
    if (!shards_[i]->alive) continue;
    const Status sent = shards_[i]->pipe.Send(IpcType::kPairRequest, payload);
    if (!sent.ok()) {
      MarkDead(i, /*already_reaped=*/false);
      continue;
    }
    auto reply = shards_[i]->pipe.Recv(deadline_ms);
    if (!reply.ok() || reply.value().type != IpcType::kPairResponse) {
      MarkDead(i, /*already_reaped=*/false);
      continue;
    }
    StatusOr<PairAnswer> answer = DecodePairResponse(reply.value().payload);
    if (!answer.ok() && answer.status().IsDataLoss()) {
      MarkDead(i, /*already_reaped=*/false);
      continue;
    }
    // Healthy reply — kNotFound included: every shard has the full map, so
    // any shard's "no such pair" is authoritative.
    RecordShardAnswered(i);
    if (answer.ok()) {
      ++pair_ok_;
      if (offset > 0) ++pair_failover_;
    } else {
      ++pair_errors_;
    }
    return answer;
  }
  ++pair_errors_;
  return Status::Unavailable(StrFormat(
      "all %zu shards down; no shard could answer pair lookup",
      shards_.size()));
}

Status ShardRouter::Reload(const std::string& index_path) {
  // Same drill surface as AlignmentService::Reload: an armed
  // `serve.reload` failpoint refuses the swap while the fleet keeps
  // serving the current generation.
  CEAFF_RETURN_IF_ERROR(failpoint::Hit("serve.reload"));
  // Validate before touching the fleet: a corrupt artifact must refuse the
  // swap while the current workers keep serving.
  size_t n_targets = 0;
  {
    CEAFF_ASSIGN_OR_RETURN(AlignmentIndex probe,
                           LoadAlignmentIndex(index_path));
    n_targets = probe.num_targets();
  }
  if (n_targets < shards_.size()) {
    return Status::FailedPrecondition(StrFormat(
        "new index has %zu targets, fewer than the %zu shards",
        n_targets, shards_.size()));
  }

  // Stop-the-world restart: deliberate, so the breaker is not fed.
  for (auto& shard : shards_) {
    if (!shard->alive) continue;
    (void)shard->pipe.Send(IpcType::kShutdown, "");
    shard->pipe.Close();
    ::kill(shard->pid, SIGKILL);
    int wstatus = 0;
    while (::waitpid(shard->pid, &wstatus, 0) < 0 && errno == EINTR) {
    }
    shard->alive = false;
    shard->probe_pending = false;
  }

  index_path_ = index_path;
  const size_t n = shards_.size();
  const size_t base = n_targets / n;
  const size_t remainder = n_targets % n;
  size_t cursor = 0;
  for (size_t i = 0; i < n; ++i) {
    shards_[i]->begin = cursor;
    shards_[i]->end = cursor + base + (i < remainder ? 1 : 0);
    cursor = shards_[i]->end;
  }

  Status last_error = Status::OK();
  size_t alive = 0;
  for (size_t i = 0; i < n; ++i) {
    const Status spawned = SpawnShard(i);
    if (spawned.ok()) {
      ++shards_[i]->respawns;
      ++alive;
    } else {
      last_error = spawned;
      shards_[i]->breaker->RecordFailure(NowNanos());
      CEAFF_LOG(Warning) << "shard " << i << " failed to restart on reload: "
                         << spawned.ToString();
    }
  }
  if (alive == 0) {
    return Status(last_error.code(),
                  "reload validated but no shard came back: " +
                      last_error.message());
  }
  CEAFF_LOG(Info) << "sharded reload: " << alive << "/" << n
                  << " shards serving " << index_path;
  return Status::OK();
}

ShardRouter::HealthReport ShardRouter::CheckHealth() {
  // Reap silent deaths first (a shard SIGKILLed from outside while no
  // query was in flight looks alive until someone waits on it).
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardState& shard = *shards_[i];
    if (!shard.alive) continue;
    int wstatus = 0;
    const pid_t reaped = ::waitpid(shard.pid, &wstatus, WNOHANG);
    if (reaped == shard.pid || (reaped < 0 && errno == ECHILD)) {
      MarkDead(i, /*already_reaped=*/true);
    }
  }
  // Report what was observed, THEN repair: the first HEALTH after a kill
  // states the degradation, the next one the recovery.
  HealthReport report;
  report.total = shards_.size();
  for (const auto& shard : shards_) {
    if (shard->alive) ++report.alive;
  }
  report.degraded = report.alive < report.total;
  TryRespawnDeadShards();
  return report;
}

std::string ShardRouter::StatsJson() const {
  size_t alive = 0;
  for (const auto& shard : shards_) {
    if (shard->alive) ++alive;
  }
  std::string json = StrFormat(
      "{\"shards\": %zu, \"alive\": %zu, "
      "\"topk\": {\"ok\": %llu, \"degraded\": %llu, \"errors\": %llu}, "
      "\"pair\": {\"ok\": %llu, \"failover\": %llu, \"errors\": %llu}, "
      "\"ann\": {\"answers\": %llu, \"probes\": %llu, "
      "\"shortlisted\": %llu}, "
      "\"per_shard\": [",
      shards_.size(), alive, static_cast<unsigned long long>(topk_ok_),
      static_cast<unsigned long long>(topk_degraded_),
      static_cast<unsigned long long>(topk_errors_),
      static_cast<unsigned long long>(pair_ok_),
      static_cast<unsigned long long>(pair_failover_),
      static_cast<unsigned long long>(pair_errors_),
      static_cast<unsigned long long>(ann_answers_),
      static_cast<unsigned long long>(ann_probes_),
      static_cast<unsigned long long>(ann_shortlisted_));
  for (size_t i = 0; i < shards_.size(); ++i) {
    const ShardState& shard = *shards_[i];
    if (i > 0) json += ", ";
    json += StrFormat(
        "{\"shard\": %zu, \"pid\": %d, \"alive\": %s, \"begin\": %zu, "
        "\"end\": %zu, \"deaths\": %llu, \"respawns\": %llu, "
        "\"breaker_times_opened\": %llu}",
        i, static_cast<int>(shard.pid), shard.alive ? "true" : "false",
        shard.begin, shard.end, static_cast<unsigned long long>(shard.deaths),
        static_cast<unsigned long long>(shard.respawns),
        static_cast<unsigned long long>(shard.breaker->times_opened()));
  }
  json += "]}";
  return json;
}

pid_t ShardRouter::shard_pid(size_t shard) const {
  return shards_[shard]->pid;
}

bool ShardRouter::shard_alive(size_t shard) const {
  return shards_[shard]->alive;
}

std::pair<size_t, size_t> ShardRouter::shard_range(size_t shard) const {
  return {shards_[shard]->begin, shards_[shard]->end};
}

void ShardRouter::SetShardFailpoints(size_t shard, const std::string& spec) {
  shards_[shard]->failpoint_spec = spec;
}

Status ShardRouter::RestartShard(size_t shard_idx) {
  ShardState& shard = *shards_[shard_idx];
  if (shard.alive) {
    // Deliberate restart, not a failure: bypass the breaker bookkeeping.
    shard.alive = false;
    shard.pipe.Close();
    ::kill(shard.pid, SIGKILL);
    int wstatus = 0;
    while (::waitpid(shard.pid, &wstatus, 0) < 0 && errno == EINTR) {
    }
    shard.probe_pending = false;
  }
  const Status spawned = SpawnShard(shard_idx);
  if (spawned.ok()) ++shard.respawns;
  return spawned;
}

}  // namespace ceaff::serve
