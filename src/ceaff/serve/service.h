#ifndef CEAFF_SERVE_SERVICE_H_
#define CEAFF_SERVE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ceaff/common/admission.h"
#include "ceaff/common/cancellation.h"
#include "ceaff/common/circuit_breaker.h"
#include "ceaff/common/retry.h"
#include "ceaff/common/statusor.h"
#include "ceaff/common/thread_pool.h"
#include "ceaff/serve/alignment_index.h"
#include "ceaff/serve/degradation.h"
#include "ceaff/serve/lru_cache.h"
#include "ceaff/serve/service_types.h"
#include "ceaff/serve/serving_stats.h"
#include "ceaff/serve/topk_scan.h"
#include "ceaff/text/word_embedding.h"

namespace ceaff::serve {

struct ServiceOptions {
  /// Worker threads answering batched requests.
  size_t num_threads = 4;
  /// Bounded task-queue capacity (backpressure for batch fan-out).
  size_t queue_capacity = 256;
  /// Total query-cache entries (0 disables caching).
  size_t cache_capacity = 1024;
  size_t cache_shards = 8;

  /// Master switch for the overload-protection layer (admission control +
  /// graceful degradation on the TopK path). Off = PR-2 behaviour: every
  /// request is scored in full. Exact pair lookups are never gated either
  /// way — they are the tier the service degrades *to*.
  bool overload_protection = true;
  /// Deadline-aware admission + CoDel shedding (see common/admission.h).
  AdmissionController::Options admission;
  /// Tier thresholds & hysteresis (see serve/degradation.h).
  DegradationOptions degradation;
  /// Backoff for BatchTopK sub-queries whose pool submission is shed
  /// (queue full). Only kUnavailable is ever retried.
  RetryOptions batch_retry;
  /// After retries are exhausted, give each still-kUnavailable batch slot
  /// one hedged attempt inline on the caller's thread. Default off: under
  /// sustained overload the inline attempt adds load exactly when the
  /// service asked for less — enable for latency-tolerant offline callers.
  bool hedge_batch_sheds = false;
  /// Stops re-validating a repeatedly-corrupt index path on every RELOAD:
  /// after `failure_threshold` consecutive failures the breaker opens and
  /// reloads are refused (kUnavailable) until `cooldown_ns` elapses.
  CircuitBreaker::Options reload_breaker;

  /// Background integrity-scrub period. Every interval the scrubber
  /// recomputes the live snapshot's content CRC against the value stamped
  /// at Finalize; a mismatch marks the snapshot poisoned (queries degrade
  /// to pair-only) and attempts one recovery reload of the last-good index
  /// path through the reload circuit breaker. 0 disables the thread
  /// (ScrubOnce can still be called directly).
  uint64_t scrub_interval_ms = 0;

  /// ANN candidate retrieval for the TopK scan (see serve/topk_scan.h for
  /// the knobs and the automatic exhaustive-fallback matrix). Ignored —
  /// exhaustive behaviour, no stats — unless `ann.enabled` is set.
  AnnOptions ann;
};

/// Query service over one immutable AlignmentIndex snapshot.
///
/// Threading model: the read path (LookupPair / TopK) touches the snapshot
/// through one shared_ptr copy — workers never lock while scoring, so
/// throughput scales with cores. Reload() builds the incoming index off to
/// the side, validates it completely, and only then swaps the shared_ptr
/// (and clears the query cache); requests in flight keep the snapshot they
/// started with alive. A corrupt or invalid index file refuses the swap:
/// Reload returns the load error and the service keeps serving from the
/// current snapshot. Repeated reload failures trip a circuit breaker.
///
/// Overload protection: TopK requests pass an AdmissionController fed by
/// an estimated queue delay (`max(0, in-flight - num_threads) x p50
/// service time`). Requests that cannot meet their deadline are rejected
/// up front; sustained delay above target sheds at the CoDel cadence
/// (kUnavailable). The same signal drives a three-tier DegradationPolicy:
/// full scoring -> textual-only scoring (structural weight renormalised
/// over string + semantic) -> exact-pair-lookup-only, with hysteresis so
/// tiers do not flap. Degraded answers are marked (`TopKResult::degraded`)
/// and never cached — the cache must not keep serving coarse answers
/// after the service recovers.
///
/// Per-request deadlines: every query accepts an optional
/// CancellationToken, polled inside the candidate scan, and returns
/// kCancelled / kDeadlineExceeded without disturbing the service.
class AlignmentService {
 public:
  /// Serves `index` (must be finalized). The word-embedding store for
  /// query-side name embedding is reconstructed from the index's
  /// semantic_seed.
  AlignmentService(std::shared_ptr<const AlignmentIndex> index,
                   const ServiceOptions& options);
  ~AlignmentService();

  /// Loads the index at `path` and serves it. kIOError / kDataLoss on a
  /// missing or corrupt artifact.
  static StatusOr<std::unique_ptr<AlignmentService>> Open(
      const std::string& index_path, const ServiceOptions& options = {});

  /// Hot-swaps to the index at `path`. On any load/validation failure the
  /// current snapshot stays live and keeps serving; the error is returned
  /// (and counted on the reload endpoint). After `reload_breaker`'s
  /// failure threshold of consecutive failures, further reloads are
  /// refused with kUnavailable (without touching the file) until the
  /// cooldown elapses; one probe reload is then allowed through.
  Status Reload(const std::string& index_path);

  /// Swaps in an already-built snapshot (tests, in-process rebuilds).
  void AdoptIndex(std::shared_ptr<const AlignmentIndex> index);

  /// The current snapshot (never null).
  std::shared_ptr<const AlignmentIndex> snapshot() const;

  /// Exact lookup of the committed pair for a source entity name.
  /// kNotFound when the name is unknown or its entity ended up unmatched.
  /// Never gated by admission control: this is the O(1) lookup the service
  /// degrades to, and it must keep answering under overload.
  StatusOr<PairAnswer> LookupPair(const std::string& source_name,
                                  const CancellationToken* cancel = nullptr);

  /// Top-k candidate retrieval for an arbitrary (possibly unseen) entity
  /// name: string (trigram set-Dice via the stored posting lists), semantic
  /// (cosine in the name-embedding space) and structural (cosine in the
  /// GCN space, when the name resolves to a known source entity) scores,
  /// recombined with the index's adaptive fusion weights. Under overload:
  /// kUnavailable when shed, kDeadlineExceeded when the deadline cannot be
  /// met, or a `degraded` result at a coarser tier.
  StatusOr<TopKResult> TopK(const std::string& query_name, size_t k,
                            const CancellationToken* cancel = nullptr);

  /// Runs TopK for every name on the service's thread pool and returns the
  /// per-name results in input order. Must not be called from inside a
  /// pool task (the caller blocks on the pool). The returned vector always
  /// has names.size() entries; individual queries fail independently.
  /// Submissions shed at the queue are retried per `batch_retry` (capped
  /// exponential backoff + jitter); with `hedge_batch_sheds`, slots still
  /// kUnavailable after the fan-out get one inline hedged attempt.
  std::vector<StatusOr<TopKResult>> BatchTopK(
      const std::vector<std::string>& names, size_t k,
      const CancellationToken* cancel = nullptr);

  /// Point-in-time per-endpoint statistics (qps, p50/p99 latency, cache
  /// hit rate, shed/rejected counters, degradation tier occupancy).
  ServingSnapshot Stats() const;

  /// The degradation tier currently in effect.
  ServiceTier tier() const { return degradation_.tier(); }

  /// Cumulative nanoseconds spent at each tier (soak-bench reporting).
  std::array<uint64_t, 3> TierNanos() const;

  size_t num_threads() const { return pool_.num_threads(); }

  /// One synchronous integrity-scrub pass (the background thread calls
  /// this on its interval; tests call it directly). Recomputes the live
  /// snapshot's content CRC. OK when the snapshot is clean or was
  /// successfully replaced by a recovery reload; kDataLoss when corruption
  /// was detected and the snapshot is still poisoned.
  Status ScrubOnce();

  /// Whether the live snapshot is currently marked poisoned.
  bool poisoned() const { return poisoned_.load(std::memory_order_relaxed); }

  /// Monotonic snapshot generation: 1 for the boot snapshot, +1 per
  /// adopted reload. Stamped on every TopKResult (mirrors the sharded
  /// router's per-query generation pin).
  uint64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }

 private:
  StatusOr<TopKResult> TopKUncached(const AlignmentIndex& index,
                                    const text::WordEmbeddingStore& embedder,
                                    const std::string& query_name, size_t k,
                                    bool allow_structural,
                                    const CancellationToken* cancel) const;

  /// Pair-lookup-only TopK (tier 2): O(1), no candidate scan.
  StatusOr<TopKResult> TopKPairOnly(const AlignmentIndex& index,
                                    const std::string& query_name) const;

  ServiceOptions options_;
  /// Snapshot slot. The mutex only guards the pointer swap/copy (a few
  /// nanoseconds), never the scoring work.
  mutable std::mutex index_mu_;
  std::shared_ptr<const AlignmentIndex> index_;
  /// Query-side embedder; keyed by the served index's semantic_seed and
  /// dimension, rebuilt on reload when they change. Guarded by index_mu_
  /// (lookups are const and internally allocation-free for the store map).
  std::shared_ptr<const text::WordEmbeddingStore> embedder_;
  ShardedLruCache<TopKResult> cache_;
  ThreadPool pool_;
  mutable ServingStats stats_;

  /// Overload-protection state (tentpole). `in_flight_` counts requests
  /// currently inside TopK (direct callers and pool workers alike); the
  /// excess over num_threads, scaled by the median service time, is the
  /// queue-delay estimate both controllers run on.
  AdmissionController admission_;
  DegradationPolicy degradation_;
  RetryPolicy batch_retry_;
  CircuitBreaker reload_breaker_;
  std::atomic<int64_t> in_flight_{0};

  /// Integrity-scrubber state. `last_index_path_` (guarded by index_mu_)
  /// remembers where the live snapshot was loaded from so a corrupt
  /// in-memory copy can be re-read from disk; empty for adopted in-process
  /// indexes. `poisoned_` flips on when a scrub pass finds the content CRC
  /// out of step and back off when a fresh snapshot is adopted.
  std::string last_index_path_;
  std::atomic<bool> poisoned_{false};
  std::atomic<uint64_t> generation_{1};
  std::thread scrub_thread_;
  std::mutex scrub_mu_;
  std::condition_variable scrub_cv_;
  bool scrub_stop_ = false;
};

}  // namespace ceaff::serve

#endif  // CEAFF_SERVE_SERVICE_H_
