#ifndef CEAFF_SERVE_SERVICE_H_
#define CEAFF_SERVE_SERVICE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ceaff/common/cancellation.h"
#include "ceaff/common/statusor.h"
#include "ceaff/common/thread_pool.h"
#include "ceaff/serve/alignment_index.h"
#include "ceaff/serve/lru_cache.h"
#include "ceaff/serve/serving_stats.h"
#include "ceaff/text/word_embedding.h"

namespace ceaff::serve {

/// Answer to an exact pair lookup.
struct PairAnswer {
  uint32_t source = 0;
  uint32_t target = 0;
  std::string source_name;
  std::string target_name;
  /// Fused similarity the batch pipeline committed this pair at.
  float score = 0.0f;
};

/// One retrieved candidate: per-feature scores plus their weighted
/// combination under the index's stored adaptive fusion weights.
struct Candidate {
  uint32_t target = 0;
  std::string target_name;
  float combined = 0.0f;
  float string_score = 0.0f;
  float semantic_score = 0.0f;
  float structural_score = 0.0f;
};

/// Result of one top-k retrieval, self-contained (names copied out of the
/// snapshot) so it stays valid across hot reloads and inside the cache.
struct TopKResult {
  std::string query;
  /// True when the query name resolved to a known source entity, so the
  /// structural feature participated; false means the structural weight was
  /// redistributed over the textual features.
  bool structural_used = false;
  std::vector<Candidate> candidates;  // descending combined score
};

struct ServiceOptions {
  /// Worker threads answering batched requests.
  size_t num_threads = 4;
  /// Bounded task-queue capacity (backpressure for batch fan-out).
  size_t queue_capacity = 256;
  /// Total query-cache entries (0 disables caching).
  size_t cache_capacity = 1024;
  size_t cache_shards = 8;
};

/// Query service over one immutable AlignmentIndex snapshot.
///
/// Threading model: the read path (LookupPair / TopK) touches the snapshot
/// through one shared_ptr copy — workers never lock while scoring, so
/// throughput scales with cores. Reload() builds the incoming index off to
/// the side, validates it completely, and only then swaps the shared_ptr
/// (and clears the query cache); requests in flight keep the snapshot they
/// started with alive. A corrupt or invalid index file refuses the swap:
/// Reload returns the load error and the service keeps answering from the
/// current snapshot.
///
/// Per-request deadlines: every query accepts an optional
/// CancellationToken, polled inside the candidate scan, and returns
/// kCancelled / kDeadlineExceeded without disturbing the service.
class AlignmentService {
 public:
  /// Serves `index` (must be finalized). The word-embedding store for
  /// query-side name embedding is reconstructed from the index's
  /// semantic_seed.
  AlignmentService(std::shared_ptr<const AlignmentIndex> index,
                   const ServiceOptions& options);

  /// Loads the index at `path` and serves it. kIOError / kDataLoss on a
  /// missing or corrupt artifact.
  static StatusOr<std::unique_ptr<AlignmentService>> Open(
      const std::string& index_path, const ServiceOptions& options = {});

  /// Hot-swaps to the index at `path`. On any load/validation failure the
  /// current snapshot stays live and keeps serving; the error is returned
  /// (and counted on the reload endpoint).
  Status Reload(const std::string& index_path);

  /// Swaps in an already-built snapshot (tests, in-process rebuilds).
  void AdoptIndex(std::shared_ptr<const AlignmentIndex> index);

  /// The current snapshot (never null).
  std::shared_ptr<const AlignmentIndex> snapshot() const;

  /// Exact lookup of the committed pair for a source entity name.
  /// kNotFound when the name is unknown or its entity ended up unmatched.
  StatusOr<PairAnswer> LookupPair(const std::string& source_name,
                                  const CancellationToken* cancel = nullptr);

  /// Top-k candidate retrieval for an arbitrary (possibly unseen) entity
  /// name: string (trigram set-Dice via the stored posting lists), semantic
  /// (cosine in the name-embedding space) and structural (cosine in the
  /// GCN space, when the name resolves to a known source entity) scores,
  /// recombined with the index's adaptive fusion weights.
  StatusOr<TopKResult> TopK(const std::string& query_name, size_t k,
                            const CancellationToken* cancel = nullptr);

  /// Runs TopK for every name on the service's thread pool and returns the
  /// per-name results in input order. Must not be called from inside a
  /// pool task (the caller blocks on the pool). The returned vector always
  /// has names.size() entries; individual queries fail independently.
  std::vector<StatusOr<TopKResult>> BatchTopK(
      const std::vector<std::string>& names, size_t k,
      const CancellationToken* cancel = nullptr);

  /// Point-in-time per-endpoint statistics (qps, p50/p99 latency, cache
  /// hit rate).
  ServingSnapshot Stats() const { return stats_.Snapshot(); }

  size_t num_threads() const { return pool_.num_threads(); }

 private:
  StatusOr<TopKResult> TopKUncached(const AlignmentIndex& index,
                                    const text::WordEmbeddingStore& embedder,
                                    const std::string& query_name, size_t k,
                                    const CancellationToken* cancel) const;

  ServiceOptions options_;
  /// Snapshot slot. The mutex only guards the pointer swap/copy (a few
  /// nanoseconds), never the scoring work.
  mutable std::mutex index_mu_;
  std::shared_ptr<const AlignmentIndex> index_;
  /// Query-side embedder; keyed by the served index's semantic_seed and
  /// dimension, rebuilt on reload when they change. Guarded by index_mu_
  /// (lookups are const and internally allocation-free for the store map).
  std::shared_ptr<const text::WordEmbeddingStore> embedder_;
  ShardedLruCache<TopKResult> cache_;
  ThreadPool pool_;
  mutable ServingStats stats_;
};

}  // namespace ceaff::serve

#endif  // CEAFF_SERVE_SERVICE_H_
