#include "ceaff/serve/protocol.h"

#include <cstdlib>

#include "ceaff/common/string_util.h"

namespace ceaff::serve {

namespace {

/// Splits "<k> <rest>" and validates k >= 1.
Status ParseK(std::string_view args, size_t* k, std::string_view* rest) {
  const size_t space = args.find(' ');
  if (space == std::string_view::npos || space == 0) {
    return Status::InvalidArgument("expected '<k> <name...>'");
  }
  const std::string k_str(args.substr(0, space));
  char* end = nullptr;
  const long value = std::strtol(k_str.c_str(), &end, 10);
  if (end == k_str.c_str() || *end != '\0' || value < 1) {
    return Status::InvalidArgument("k must be a positive integer, got '" +
                                   k_str + "'");
  }
  *k = static_cast<size_t>(value);
  *rest = args.substr(space + 1);
  return Status::OK();
}

}  // namespace

StatusOr<Request> ParseRequest(const std::string& line) {
  if (line.size() > kMaxRequestLineBytes) {
    return Status::InvalidArgument(
        StrFormat("request line of %zu bytes exceeds the %zu-byte limit",
                  line.size(), kMaxRequestLineBytes));
  }
  if (line.find('\0') != std::string::npos) {
    return Status::InvalidArgument("request line contains an embedded NUL");
  }
  std::string_view s = StripAsciiWhitespace(line);
  if (s.empty() || s[0] == '#') {
    return Status::NotFound("no request on this line");
  }
  const size_t space = s.find(' ');
  const std::string_view verb = s.substr(0, space);
  const std::string_view args =
      space == std::string_view::npos ? std::string_view() : s.substr(space + 1);

  Request request;
  if (verb == "PAIR") {
    if (args.empty()) {
      return Status::InvalidArgument("PAIR needs a source entity name");
    }
    request.type = RequestType::kPair;
    request.names.emplace_back(args);
    return request;
  }
  if (verb == "TOPK") {
    request.type = RequestType::kTopK;
    std::string_view name;
    CEAFF_RETURN_IF_ERROR(ParseK(args, &request.k, &name));
    if (name.empty()) return Status::InvalidArgument("TOPK needs a name");
    request.names.emplace_back(name);
    return request;
  }
  if (verb == "BATCH") {
    request.type = RequestType::kBatch;
    std::string_view rest;
    CEAFF_RETURN_IF_ERROR(ParseK(args, &request.k, &rest));
    for (const std::string& name : Split(rest, '\t')) {
      std::string_view stripped = StripAsciiWhitespace(name);
      if (!stripped.empty()) request.names.emplace_back(stripped);
    }
    if (request.names.empty()) {
      return Status::InvalidArgument("BATCH needs at least one name");
    }
    return request;
  }
  if (verb == "RELOAD") {
    if (args.empty()) {
      return Status::InvalidArgument("RELOAD needs an index path");
    }
    request.type = RequestType::kReload;
    request.path = std::string(args);
    return request;
  }
  if (verb == "STATS") {
    request.type = RequestType::kStats;
    return request;
  }
  if (verb == "HEALTH") {
    request.type = RequestType::kHealth;
    return request;
  }
  if (verb == "READY") {
    request.type = RequestType::kReady;
    return request;
  }
  if (verb == "QUIT") {
    request.type = RequestType::kQuit;
    return request;
  }
  return Status::InvalidArgument("unknown request verb '" +
                                 std::string(verb) + "'");
}

std::string FormatErrorResponse(const Status& status) {
  return StrFormat("ERR %s %s", StatusCodeToString(status.code()),
                   status.message().c_str());
}

}  // namespace ceaff::serve
