#ifndef CEAFF_SERVE_SHARD_WORKER_H_
#define CEAFF_SERVE_SHARD_WORKER_H_

#include <cstddef>
#include <string>

#include "ceaff/serve/ipc.h"
#include "ceaff/serve/topk_scan.h"

namespace ceaff::serve {

/// Everything a shard worker needs to know, decided by the router before
/// the fork. The worker loads the FULL index artifact (mmap zero-copy makes
/// that cheap — the file pages are shared between all workers anyway) but
/// only ever scans targets in [target_begin, target_end); PAIR lookups use
/// the full maps, so any single live shard answers them at full fidelity.
struct ShardConfig {
  size_t shard_id = 0;
  size_t num_shards = 1;
  /// Contiguous target row-range this shard owns, [begin, end).
  size_t target_begin = 0;
  size_t target_end = 0;
  /// Router-assigned generation id of the index this worker serves, echoed
  /// in the Pong and stamped on every TopK answer. A worker never changes
  /// generation — the rolling reload replaces the process instead — so the
  /// router can pin a scatter to one generation by picking workers alone.
  uint64_t generation = 0;
  /// Artifact to load (file or generational directory).
  std::string index_path;
  /// Failpoint spec applied in the child AFTER the fork (empty = inherit
  /// whatever CEAFF_FAILPOINTS armed). This is how drills crash exactly one
  /// shard: the router's own process never arms the spec.
  std::string failpoint_spec;
  /// ANN knobs for this shard's scans, identical across the fleet (the
  /// router copies its own options in). Each shard probes against the full
  /// IVF index but keeps only candidates inside its row-range; ranges no
  /// bigger than the shortlist fall back to the exhaustive loop, which is
  /// exact by construction.
  AnnOptions ann;
};

/// Body of a shard worker process. Called in the forked child with its end
/// of the socketpair; serves Ping/TopK/Pair requests strictly one at a time
/// until Shutdown or pipe EOF (router died). Returns the process exit code:
/// 0 clean shutdown, 3 the index failed to load (mirrors ceaff_serve so a
/// supervisor can tell a bad artifact from a crash), 1 on an unrecoverable
/// pipe error. The caller must pass the result straight to _exit() — the
/// child shares the parent's address space copy and must not run the
/// parent's atexit handlers or flush its inherited stdio buffers.
int ShardWorkerMain(MessagePipe pipe, const ShardConfig& config);

}  // namespace ceaff::serve

#endif  // CEAFF_SERVE_SHARD_WORKER_H_
