#include "ceaff/serve/service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <thread>
#include <utility>

#include "ceaff/common/failpoint.h"
#include "ceaff/common/logging.h"
#include "ceaff/common/random.h"
#include "ceaff/common/string_util.h"
#include "ceaff/serve/topk_scan.h"

namespace ceaff::serve {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t NanosSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

std::string CacheKey(const std::string& name, size_t k) {
  return StrFormat("k=%zu|%s", k, name.c_str());
}

/// RAII counter of requests currently inside the TopK path (queued pool
/// tasks included, since they call TopK themselves). The excess over the
/// worker count is the standing queue the overload controllers estimate
/// their delay from.
class InFlightGuard {
 public:
  explicit InFlightGuard(std::atomic<int64_t>* counter) : counter_(counter) {
    counter_->fetch_add(1, std::memory_order_relaxed);
  }
  ~InFlightGuard() { counter_->fetch_sub(1, std::memory_order_relaxed); }
  InFlightGuard(const InFlightGuard&) = delete;
  InFlightGuard& operator=(const InFlightGuard&) = delete;

 private:
  std::atomic<int64_t>* counter_;
};

}  // namespace

AlignmentService::AlignmentService(
    std::shared_ptr<const AlignmentIndex> index, const ServiceOptions& options)
    : options_(options),
      index_(std::move(index)),
      cache_(options.cache_capacity, options.cache_shards),
      pool_(options.num_threads, options.queue_capacity),
      admission_(options.admission),
      degradation_(options.degradation),
      batch_retry_(options.batch_retry),
      reload_breaker_(options.reload_breaker) {
  CEAFF_CHECK(index_ != nullptr) << "AlignmentService needs an index";
  // Query embeddings are dotted against the stored target name embeddings,
  // so the store's dimension must match theirs.
  embedder_ = std::make_shared<const text::WordEmbeddingStore>(
      index_->target_name_emb.cols() > 0 ? index_->target_name_emb.cols()
                                         : index_->source_name_emb.cols(),
      index_->semantic_seed);
  if (options_.scrub_interval_ms > 0) {
    scrub_thread_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(scrub_mu_);
      while (!scrub_stop_) {
        if (scrub_cv_.wait_for(
                lock, std::chrono::milliseconds(options_.scrub_interval_ms),
                [this] { return scrub_stop_; })) {
          break;
        }
        lock.unlock();
        (void)ScrubOnce();
        lock.lock();
      }
    });
  }
}

AlignmentService::~AlignmentService() {
  if (scrub_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(scrub_mu_);
      scrub_stop_ = true;
    }
    scrub_cv_.notify_all();
    scrub_thread_.join();
  }
}

StatusOr<std::unique_ptr<AlignmentService>> AlignmentService::Open(
    const std::string& index_path, const ServiceOptions& options) {
  CEAFF_ASSIGN_OR_RETURN(AlignmentIndex index, LoadAlignmentIndex(index_path));
  auto service = std::make_unique<AlignmentService>(
      std::make_shared<const AlignmentIndex>(std::move(index)), options);
  {
    std::lock_guard<std::mutex> lock(service->index_mu_);
    service->last_index_path_ = index_path;
  }
  return service;
}

Status AlignmentService::Reload(const std::string& index_path) {
  const Clock::time_point start = Clock::now();
  // The breaker stops the expensive part — reading and checksumming the
  // whole artifact — when the path has failed validation several times in a
  // row. A refusal is not a "request the endpoint worked on": it counts as
  // rejected, not as an error, so reload error rates keep describing actual
  // load attempts.
  if (!reload_breaker_.Allow(NowNanos())) {
    stats_.reload().RecordRejected();
    return Status::Unavailable(
        "reload circuit breaker open: index at '" + index_path +
        "' failed repeatedly; retry after cooldown");
  }
  // The failpoint sits where the load does so injected errors exercise the
  // same refusal path (and feed the breaker) a torn artifact would.
  const Status injected = failpoint::Hit("serve.reload");
  StatusOr<AlignmentIndex> loaded =
      injected.ok() ? LoadAlignmentIndex(index_path)
                    : StatusOr<AlignmentIndex>(injected);
  if (!loaded.ok()) {
    // Refuse the swap: the incoming artifact is unreadable or corrupt, and
    // the current snapshot keeps serving untouched.
    reload_breaker_.RecordFailure(NowNanos());
    stats_.reload().Record(NanosSince(start), /*ok=*/false);
    CEAFF_LOG(Warning) << "reload refused, keeping current snapshot: "
                       << loaded.status().ToString();
    return loaded.status();
  }
  reload_breaker_.RecordSuccess();
  AdoptIndex(std::make_shared<const AlignmentIndex>(std::move(loaded).value()));
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    last_index_path_ = index_path;
  }
  stats_.reload().Record(NanosSince(start), /*ok=*/true);
  CEAFF_LOG(Info) << "reloaded index from " << index_path;
  return Status::OK();
}

void AlignmentService::AdoptIndex(
    std::shared_ptr<const AlignmentIndex> index) {
  CEAFF_CHECK(index != nullptr);
  const size_t dim = index->target_name_emb.cols() > 0
                         ? index->target_name_emb.cols()
                         : index->source_name_emb.cols();
  std::shared_ptr<const text::WordEmbeddingStore> embedder;
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    if (embedder_ == nullptr || embedder_->dim() != dim ||
        index_->semantic_seed != index->semantic_seed) {
      embedder =
          std::make_shared<const text::WordEmbeddingStore>(dim,
                                                           index->semantic_seed);
    } else {
      embedder = embedder_;
    }
    index_ = std::move(index);
    embedder_ = std::move(embedder);
  }
  // Every adopted snapshot is a new generation; answers computed against
  // it carry the new id (matching the sharded router's per-query stamp).
  generation_.fetch_add(1, std::memory_order_relaxed);
  // The fresh snapshot supersedes whatever the scrubber condemned.
  poisoned_.store(false, std::memory_order_relaxed);
  stats_.SetPoisoned(false);
  // Cached answers describe the previous snapshot.
  cache_.Clear();
}

std::shared_ptr<const AlignmentIndex> AlignmentService::snapshot() const {
  std::lock_guard<std::mutex> lock(index_mu_);
  return index_;
}

StatusOr<PairAnswer> AlignmentService::LookupPair(
    const std::string& source_name, const CancellationToken* cancel) {
  const Clock::time_point start = Clock::now();
  std::shared_ptr<const AlignmentIndex> index = snapshot();

  Status cancelled = CheckCancel(cancel, "pair lookup");
  if (!cancelled.ok()) {
    stats_.pair().Record(NanosSince(start), /*ok=*/false);
    return cancelled;
  }

  StatusOr<PairAnswer> answer = LookupPairInIndex(*index, source_name);
  stats_.pair().Record(NanosSince(start), answer.ok());
  return answer;
}

StatusOr<TopKResult> AlignmentService::TopKUncached(
    const AlignmentIndex& index, const text::WordEmbeddingStore& embedder,
    const std::string& query_name, size_t k, bool allow_structural,
    const CancellationToken* cancel) const {
  // The scan itself lives in topk_scan.cc so the sharded workers run the
  // exact same code over their row-range; single-process mode is the
  // whole-range special case.
  TopKScanRange range;
  range.begin = 0;
  range.end = index.num_targets();
  StatusOr<TopKResult> result = TopKScan(index, embedder, query_name, k,
                                         allow_structural, cancel, range,
                                         options_.ann);
  if (options_.ann.enabled && result.ok()) {
    stats_.RecordAnnScan(result.value().ann_used, result.value().ann_probes,
                         result.value().ann_shortlist);
  }
  if (result.ok()) {
    result.value().generation = generation_.load(std::memory_order_relaxed);
  }
  return result;
}

StatusOr<TopKResult> AlignmentService::TopKPairOnly(
    const AlignmentIndex& index, const std::string& query_name) const {
  auto name_it = index.source_by_name.find(query_name);
  if (name_it == index.source_by_name.end()) {
    return Status::Unavailable("service degraded to pair-lookup-only; '" +
                               query_name + "' has no committed pair");
  }
  auto pair_it = index.pair_by_source.find(name_it->second);
  if (pair_it == index.pair_by_source.end()) {
    return Status::Unavailable("service degraded to pair-lookup-only; '" +
                               query_name + "' has no committed pair");
  }
  const AlignedPair& pair = index.pairs[pair_it->second];
  TopKResult result;
  result.query = query_name;
  result.generation = generation_.load(std::memory_order_relaxed);
  result.structural_used = false;
  Candidate candidate;
  candidate.target = pair.target;
  candidate.target_name = index.target_names[pair.target];
  candidate.combined = pair.score;
  result.candidates.push_back(std::move(candidate));
  return result;
}

StatusOr<TopKResult> AlignmentService::TopK(const std::string& query_name,
                                            size_t k,
                                            const CancellationToken* cancel) {
  const Clock::time_point start = Clock::now();
  if (k == 0) {
    stats_.topk().Record(NanosSince(start), /*ok=*/false);
    return Status::InvalidArgument("k must be >= 1");
  }

  // Cache hits bypass admission entirely: they cost nanoseconds and
  // answering them keeps goodput up exactly when the service is loaded.
  const std::string key = CacheKey(query_name, k);
  if (std::shared_ptr<const TopKResult> hit = cache_.Get(key)) {
    stats_.topk().Record(NanosSince(start), /*ok=*/true, /*cache_hit=*/true);
    return *hit;
  }

  std::shared_ptr<const AlignmentIndex> index;
  std::shared_ptr<const text::WordEmbeddingStore> embedder;
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    index = index_;
    embedder = embedder_;
  }

  // A poisoned snapshot (scrubber found its content CRC out of step) is
  // still structurally sound enough for the O(1) committed-pair map, but
  // full scoring over possibly-flipped embeddings would return silently
  // wrong answers. Serve pair-only — never cached — until a clean snapshot
  // is adopted.
  if (poisoned_.load(std::memory_order_acquire)) {
    StatusOr<TopKResult> result = TopKPairOnly(*index, query_name);
    if (result.ok()) {
      result.value().tier = ServiceTier::kPairOnly;
      result.value().degraded = true;
      stats_.RecordTierServed(static_cast<int>(ServiceTier::kPairOnly));
      stats_.topk().Record(NanosSince(start), /*ok=*/true);
    } else if (result.status().IsUnavailable()) {
      stats_.topk().RecordShed();
    } else {
      stats_.topk().Record(NanosSince(start), /*ok=*/false);
    }
    return result;
  }

  if (!options_.overload_protection) {
    StatusOr<TopKResult> result = TopKUncached(
        *index, *embedder, query_name, k, /*allow_structural=*/true, cancel);
    if (result.ok()) {
      cache_.Put(key, std::make_shared<const TopKResult>(result.value()));
    }
    stats_.topk().Record(NanosSince(start), result.ok());
    return result;
  }

  InFlightGuard guard(&in_flight_);

  // Load signal: how long would this request wait for a worker? With W
  // workers and F requests in flight, F - W requests are queued ahead of
  // capacity; each occupies a worker for about the median service time.
  // Absolute and self-calibrating — a cold histogram (p50 = 0) estimates
  // zero delay, so lightly-loaded unit tests never trip millisecond-scale
  // thresholds.
  const int64_t excess =
      in_flight_.load(std::memory_order_relaxed) -
      static_cast<int64_t>(pool_.num_threads());
  const uint64_t p50 = stats_.topk().LatencyQuantileNanos(0.5);
  const uint64_t est_delay_ns =
      excess > 0 ? static_cast<uint64_t>(excess) * p50 : 0;
  const uint64_t p99 = stats_.topk().LatencyQuantileNanos(0.99);
  const int64_t remaining =
      cancel != nullptr ? cancel->RemainingNanos() : INT64_MAX;
  const uint64_t now = NowNanos();

  switch (admission_.Admit(now, est_delay_ns, p99, remaining)) {
    case AdmissionController::Decision::kRejectDeadline:
      // The honest answer the caller would otherwise get after burning a
      // worker — produced for free instead. Deliberately NOT kUnavailable:
      // retrying against the same expiring deadline cannot help.
      stats_.topk().RecordRejected();
      return Status::DeadlineExceeded(
          "rejected at admission: remaining deadline below estimated "
          "service time for '" +
          query_name + "'");
    case AdmissionController::Decision::kShedOverload:
      stats_.topk().RecordShed();
      return Status::Unavailable("shed by overload control");
    case AdmissionController::Decision::kAdmit:
      break;
  }

  const ServiceTier tier = degradation_.Observe(est_delay_ns, now);
  stats_.SetCurrentTier(static_cast<int>(tier));

  StatusOr<TopKResult> result =
      tier == ServiceTier::kPairOnly
          ? TopKPairOnly(*index, query_name)
          : TopKUncached(*index, *embedder, query_name, k,
                         /*allow_structural=*/tier == ServiceTier::kFull,
                         cancel);
  if (result.ok()) {
    result.value().tier = tier;
    result.value().degraded = tier != ServiceTier::kFull;
    if (tier == ServiceTier::kFull) {
      // Degraded answers are never cached: the cache must not keep serving
      // coarse results after the load passes.
      cache_.Put(key, std::make_shared<const TopKResult>(result.value()));
    }
    stats_.RecordTierServed(static_cast<int>(tier));
    stats_.topk().Record(NanosSince(start), /*ok=*/true);
  } else if (tier == ServiceTier::kPairOnly &&
             result.status().IsUnavailable()) {
    // Pair-only tier could not answer this query at all — that is a shed,
    // not a served error.
    stats_.topk().RecordShed();
  } else {
    stats_.topk().Record(NanosSince(start), /*ok=*/false);
  }
  return result;
}

std::vector<StatusOr<TopKResult>> AlignmentService::BatchTopK(
    const std::vector<std::string>& names, size_t k,
    const CancellationToken* cancel) {
  const Clock::time_point start = Clock::now();
  std::vector<StatusOr<TopKResult>> results(
      names.size(), StatusOr<TopKResult>(Status::Internal("not executed")));
  if (names.empty()) {
    stats_.batch().Record(NanosSince(start), /*ok=*/true);
    return results;
  }

  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t remaining = names.size();
  auto slot_done = [&done_mu, &done_cv, &remaining] {
    std::lock_guard<std::mutex> lock(done_mu);
    if (--remaining == 0) done_cv.notify_one();
  };

  for (size_t i = 0; i < names.size(); ++i) {
    auto task = [this, &names, &results, &slot_done, i, k, cancel] {
      results[i] = TopK(names[i], k, cancel);
      slot_done();
    };
    // A full queue is transient backpressure: retry the *submission* with
    // capped exponential backoff + jitter on the caller's thread (the
    // caller was going to block on the barrier anyway, so waiting here is
    // free and gives workers time to drain the queue).
    int attempts = 0;
    for (;;) {
      const SubmitResult submitted = pool_.TrySubmit(task);
      if (submitted == SubmitResult::kAccepted) break;
      if (submitted == SubmitResult::kShuttingDown) {
        // Terminal: no workers are coming back. Answer inline so every
        // slot is still filled.
        task();
        break;
      }
      ++attempts;
      if (!batch_retry_.ShouldRetry(Status::Unavailable("pool queue full"),
                                    attempts)) {
        results[i] =
            Status::Unavailable("batch submission shed: pool queue full");
        stats_.topk().RecordShed();
        slot_done();
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(
          batch_retry_.BackoffMillis(attempts - 1, &ThreadLocalRng())));
    }
  }
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&remaining] { return remaining == 0; });
  }

  if (options_.hedge_batch_sheds) {
    // One hedged attempt, inline and sequential, for the slots the service
    // shed (kUnavailable only — anything else is not transient). Off by
    // default: under sustained overload this adds load right after the
    // service asked for less.
    for (size_t i = 0; i < results.size(); ++i) {
      if (!results[i].ok() && results[i].status().IsUnavailable()) {
        results[i] = TopK(names[i], k, cancel);
      }
    }
  }

  bool all_ok = true;
  for (const StatusOr<TopKResult>& r : results) {
    if (!r.ok()) all_ok = false;
  }
  stats_.batch().Record(NanosSince(start), all_ok);
  return results;
}

Status AlignmentService::ScrubOnce() {
  std::shared_ptr<const AlignmentIndex> index = snapshot();
  stats_.RecordScrubCycle();
  if (index->ComputeContentCrc() == index->content_crc) {
    // A verified-clean snapshot lifts any stale poison (a scrub pass that
    // grabbed the previous snapshot can lose the race with AdoptIndex and
    // condemn the service after the corrupt copy is already gone).
    if (poisoned_.exchange(false, std::memory_order_acq_rel)) {
      stats_.SetPoisoned(false);
    }
    return Status::OK();
  }

  // The bytes backing the live snapshot no longer hash to the value
  // Finalize stamped: in-memory corruption. Poison first so queries stop
  // trusting the scores, drop the cache (its entries were computed from the
  // same bytes), then try to re-read the last-good artifact from disk
  // through the regular reload path (breaker included).
  stats_.RecordScrubCorruption();
  poisoned_.store(true, std::memory_order_release);
  stats_.SetPoisoned(true);
  cache_.Clear();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    path = last_index_path_;
  }
  CEAFF_LOG(Error) << "integrity scrub: live snapshot content CRC mismatch"
                   << (path.empty() ? "; no on-disk artifact to recover from"
                                    : "; attempting recovery reload from " +
                                          path);
  if (path.empty()) {
    return Status::DataLoss(
        "in-memory index snapshot corrupt and no on-disk artifact is known; "
        "serving degraded to pair-lookup-only");
  }
  const Status reloaded = Reload(path);
  stats_.RecordScrubReload(reloaded.ok());
  if (reloaded.ok()) {
    // AdoptIndex already cleared the poison flag.
    return Status::OK();
  }
  return Status::DataLoss(
      "in-memory index snapshot corrupt and recovery reload failed (" +
      reloaded.ToString() + "); serving degraded to pair-lookup-only");
}

ServingSnapshot AlignmentService::Stats() const {
  stats_.SetCurrentTier(static_cast<int>(degradation_.tier()));
  return stats_.Snapshot();
}

std::array<uint64_t, 3> AlignmentService::TierNanos() const {
  return degradation_.TierNanos(NowNanos());
}

}  // namespace ceaff::serve
