#ifndef CEAFF_SERVE_PROTOCOL_H_
#define CEAFF_SERVE_PROTOCOL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "ceaff/common/statusor.h"

namespace ceaff::serve {

/// Line-delimited request protocol the `ceaff_serve` front end speaks over
/// stdin or a request file (no network stack needed in this environment;
/// the framing maps 1:1 onto a future socket transport).
///
/// Requests, one per line (entity names may contain spaces; BATCH names are
/// tab-separated):
///   PAIR <source entity name>        exact lookup of the committed pair
///   TOPK <k> <query name>            top-k candidates for an unseen name
///   BATCH <k> <name1>\t<name2>...    multi-entity TOPK in one request
///   RELOAD <path>                    hot-swap to the index at <path>
///   STATS                            per-endpoint serving statistics
///   HEALTH                           liveness: is the loop reading at all
///   READY                            readiness: accepting work (not
///                                    draining), reports the current tier
///   QUIT                             stop serving
///
/// Responses, one logical reply per request:
///   OK PAIR <source>\t<target>\t<score>
///   NONE PAIR <name>                 unknown source or no committed pair
///   OK TOPK <n> [degraded=<tier>]    then n lines: CAND <rank>\t<name>\t
///                                    <combined>\t<string>\t<sem>\t<struct>
///   OK BATCH <n>                     then n TOPK/ERR replies, one per name
///   OK RELOAD <path>
///   OK STATS <json>
///   OK HEALTH
///   OK READY tier=<name>             (ERR Unavailable while draining)
///   ERR <CodeName> <message>         any failure, including per-request
///                                    deadline exceeded and overload sheds
///
/// Sharded mode (`ceaff_serve --shards=N`, N >= 2) speaks the same grammar
/// with three differences:
///   OK TOPK <n> degraded=partial     a shard died mid-query; the list was
///                                    merged from the surviving shards'
///                                    ranges (correct but possibly missing
///                                    candidates). Never cached.
///   OK HEALTH shards=<alive>/<N> [degraded]
///   OK READY shards=<alive>/<N>      (ERR Unavailable when no shard lives
///                                    or the frontend is draining)
/// STATS gains a "router" object (per-shard pids, ranges, deaths,
/// respawns, breaker state) next to the usual endpoint stats.
///
/// Replicated mode (`--replicas=R`, R >= 2) additionally reports range
/// coverage — the thing answer fidelity actually depends on:
///   OK HEALTH shards=<alive>/<N*R> ranges=<covered>/<N> [degraded]
/// (`degraded` only when some range has no live replica on the serving
/// generation). STATS's "router" object gains replica/generation fields
/// plus a "generation" block (reloads, canary state, rollbacks).
///
/// Hardening: a request line longer than kMaxRequestLineBytes or containing
/// an embedded NUL byte is rejected up front (InvalidArgument) before any
/// verb dispatch — a corrupt or adversarial request file must not make the
/// parser allocate or scan without bound.
enum class RequestType {
  kPair,
  kTopK,
  kBatch,
  kReload,
  kStats,
  kHealth,
  kReady,
  kQuit,
};

/// Upper bound on one request line (64 KiB). Far above any legitimate
/// BATCH request, far below anything that could hurt the process.
inline constexpr size_t kMaxRequestLineBytes = 64 * 1024;

struct Request {
  RequestType type;
  /// TOPK / BATCH: requested candidate count (k >= 1).
  size_t k = 0;
  /// PAIR: one name. TOPK: one query name. BATCH: the tab-split names.
  std::vector<std::string> names;
  /// RELOAD: index path.
  std::string path;
};

/// Parses one protocol line. Blank lines and `#` comments yield NotFound
/// ("no request on this line" — callers skip those); malformed requests are
/// InvalidArgument with a message naming the defect.
StatusOr<Request> ParseRequest(const std::string& line);

/// Renders `status` as an `ERR` response line.
std::string FormatErrorResponse(const Status& status);

}  // namespace ceaff::serve

#endif  // CEAFF_SERVE_PROTOCOL_H_
