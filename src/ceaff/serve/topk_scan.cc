#include "ceaff/serve/topk_scan.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "ceaff/ann/ivf.h"
#include "ceaff/ann/quantize.h"
#include "ceaff/common/failpoint.h"
#include "ceaff/text/name_embedding.h"

namespace ceaff::serve {

namespace {

/// Poll the cancellation token once per this many scored targets: frequent
/// enough for millisecond deadlines, cheap enough to vanish in the scan.
constexpr size_t kCancelStride = 1024;

float DotF(const float* a, const float* b, size_t n) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace

StatusOr<TopKResult> TopKScan(const AlignmentIndex& index,
                              const text::WordEmbeddingStore& embedder,
                              const std::string& query_name, size_t k,
                              bool allow_structural,
                              const CancellationToken* cancel,
                              const TopKScanRange& range,
                              const AnnOptions& ann) {
  CEAFF_FAILPOINT("serve.topk.scan");

  const size_t n_targets = index.num_targets();
  if (n_targets == 0) {
    return Status::FailedPrecondition("index has no target entities");
  }
  const size_t begin = range.begin;
  const size_t end = std::min(range.end, n_targets);
  if (begin >= end) {
    return Status::InvalidArgument("empty target range for topk scan");
  }

  // --- String feature: trigram posting-list overlap -> set-Dice. Sparse:
  // only targets sharing at least one trigram with the query get a score.
  // The posting lists hold global target ids, so the overlap/score vectors
  // stay full-width even for a range-restricted scan; only the heap loop
  // below is windowed. Every score is a function of the query and one
  // target row alone, which is what makes disjoint-range scans mergeable
  // bit-identically.
  const std::vector<std::string> query_trigrams = NameTrigrams(query_name);
  std::vector<float> string_scores(n_targets, 0.0f);
  {
    std::vector<uint32_t> overlap(n_targets, 0);
    for (const std::string& trigram : query_trigrams) {
      auto it = index.trigram_index.find(trigram);
      if (it == index.trigram_index.end()) continue;
      for (uint32_t target : index.trigram_postings[it->second]) {
        ++overlap[target];
      }
    }
    const size_t q = query_trigrams.size();
    for (size_t t = begin; t < end; ++t) {
      if (overlap[t] == 0) continue;
      const size_t denom = q + index.target_trigram_counts[t];
      if (denom > 0) {
        string_scores[t] = 2.0f * static_cast<float>(overlap[t]) /
                           static_cast<float>(denom);
      }
    }
  }

  CEAFF_RETURN_IF_ERROR(CheckCancel(cancel, "topk string scan"));

  // --- Semantic feature: embed the query name in the run's word-embedding
  // space and take cosines against the stored (already L2-normalised)
  // target name embeddings.
  std::vector<float> query_emb;
  bool have_semantic = false;
  if (index.target_name_emb.rows() == n_targets &&
      index.target_name_emb.cols() > 0) {
    query_emb = text::EmbedName(embedder, query_name);
    float norm = 0.0f;
    for (float v : query_emb) norm += v * v;
    if (norm > 0.0f) {
      const float inv = 1.0f / std::sqrt(norm);
      for (float& v : query_emb) v *= inv;
      have_semantic = true;
    }
  }

  // --- Structural feature: only meaningful when the query resolves to a
  // known source entity AND the exporting run shipped GCN embeddings. At
  // the textual-only degradation tier the feature is switched off wholesale
  // (`allow_structural` = false) and its weight flows to the textual
  // features below — the same renormalisation the pipeline applies when a
  // feature is disabled, just triggered by load instead of configuration.
  const float* query_struct = nullptr;
  bool structural_used = false;
  if (allow_structural && !index.source_struct_emb.empty() &&
      !index.target_struct_emb.empty()) {
    auto it = index.source_by_name.find(query_name);
    if (it != index.source_by_name.end() &&
        it->second < index.source_struct_emb.rows()) {
      query_struct = index.source_struct_emb.row(it->second);
      structural_used = true;
    }
  }

  // Effective weights: features that cannot fire for this query hand their
  // mass to the ones that can (mirroring the pipeline's behaviour when a
  // feature is disabled). The decision depends only on the query and the
  // index-wide weights — never on the range — so every shard renormalises
  // identically and partial top-k lists are directly comparable.
  double w_struct = structural_used ? index.weight_structural : 0.0;
  double w_sem = have_semantic ? index.weight_semantic : 0.0;
  double w_str = index.weight_string;
  const double total = w_struct + w_sem + w_str;
  if (total <= 0.0) {
    return Status::FailedPrecondition(
        "no serving feature can score query '" + query_name + "'");
  }
  w_struct /= total;
  w_sem /= total;
  w_str /= total;

  // --- Top-k selection. Both paths score with the exact same arithmetic
  // (`exact_combined`) and the exact same heap/comparator, so any target
  // that reaches the final heap gets a score bit-identical to what the
  // exhaustive scan would have given it — the ANN stage only decides WHICH
  // targets get scored exactly, never HOW.
  const size_t want = std::min(k, end - begin);
  using Entry = std::pair<float, uint32_t>;  // (combined, target id)
  std::vector<Entry> heap;  // min-heap of the best `want` seen so far
  heap.reserve(want + 1);
  auto min_first = [](const Entry& a, const Entry& b) {
    return a.first > b.first || (a.first == b.first && a.second < b.second);
  };
  auto offer = [&](std::vector<Entry>* h, size_t cap, const Entry& entry) {
    if (h->size() < cap) {
      h->push_back(entry);
      std::push_heap(h->begin(), h->end(), min_first);
    } else if (cap > 0 && min_first(entry, h->front())) {
      std::pop_heap(h->begin(), h->end(), min_first);
      h->back() = entry;
      std::push_heap(h->begin(), h->end(), min_first);
    }
  };
  const size_t dim_sem = index.target_name_emb.cols();
  const size_t dim_struct = index.target_struct_emb.cols();
  auto exact_combined = [&](size_t t) -> float {
    double combined = w_str * string_scores[t];
    if (have_semantic) {
      combined += w_sem * DotF(query_emb.data(),
                               index.target_name_emb.row(t), dim_sem);
    }
    if (structural_used) {
      combined += w_struct * DotF(query_struct,
                                  index.target_struct_emb.row(t), dim_struct);
    }
    return static_cast<float>(combined);
  };

  // --- ANN candidate stage (see AnnOptions for the fallback matrix). The
  // IVF cells and codes are built over the *unweighted* fused target
  // vector [name_emb ; struct_emb]; folding this query's effective weights
  // into the query side makes the quantized dot approximate exactly the
  // dense part of `exact_combined`.
  bool ann_used = false;
  uint32_t ann_probes = 0;
  uint32_t ann_shortlist = 0;
  std::vector<uint32_t> shortlisted;
  if (ann.enabled && k > 0 && index.has_ann() && ann.shortlist >= k &&
      (end - begin) > ann.shortlist && (have_semantic || structural_used)) {
    const size_t d = index.ann_centroids.cols();
    std::vector<float> q_fused(d, 0.0f);
    if (have_semantic) {
      for (size_t i = 0; i < dim_sem; ++i) {
        q_fused[i] = static_cast<float>(w_sem) * query_emb[i];
      }
    }
    if (structural_used) {
      for (size_t i = 0; i < dim_struct; ++i) {
        q_fused[dim_sem + i] = static_cast<float>(w_struct) * query_struct[i];
      }
    }
    const std::vector<uint32_t> probes =
        ann::ProbeCentroids(index.ann_centroids, q_fused.data(), ann.nprobe);
    std::vector<uint32_t> cand;
    cand.reserve(ann.shortlist * 2);
    std::vector<uint8_t> in_cand(n_targets, 0);
    for (uint32_t c : probes) {
      for (uint32_t t : index.ann_lists[c]) {
        if (t >= begin && t < end && !in_cand[t]) {
          in_cand[t] = 1;
          cand.push_back(t);
        }
      }
    }
    // String-channel candidates: a target can win on its string score alone
    // without being a dense neighbour, and `string_scores` is computed for
    // the whole range anyway (the trigram pass is the cheap part of the
    // scan). So the best `shortlist` targets *by string score* bypass the
    // IVF probe outright — a relative rule, unlike an absolute floor, which
    // on weak-match corpora (every top answer around 0.2) would admit
    // nobody and silently gut recall. Zero-string targets are skipped: the
    // string channel has nothing to say about them, and the dense probes
    // already speak for them.
    {
      std::vector<Entry> string_heap;
      string_heap.reserve(ann.shortlist + 1);
      for (size_t t = begin; t < end; ++t) {
        if (string_scores[t] > 0.0f) {
          offer(&string_heap, ann.shortlist,
                Entry(string_scores[t], static_cast<uint32_t>(t)));
        }
      }
      for (const Entry& e : string_heap) {
        if (!in_cand[e.second]) {
          in_cand[e.second] = 1;
          cand.push_back(e.second);
        }
      }
    }
    // Too few candidates to even fill the answer: exhaustive fallback keeps
    // the "always min(k, range) results" contract.
    if (cand.size() >= want) {
      if (cand.size() > ann.shortlist) {
        std::vector<Entry> approx_heap;
        approx_heap.reserve(ann.shortlist + 1);
        for (size_t i = 0; i < cand.size(); ++i) {
          if (i % kCancelStride == 0) {
            CEAFF_RETURN_IF_ERROR(CheckCancel(cancel, "topk ann shortlist"));
          }
          const uint32_t t = cand[i];
          const float approx =
              static_cast<float>(w_str) * string_scores[t] +
              index.ann_scales.at(t, 0) *
                  ann::QuantizedDot(q_fused.data(), index.ann_codes.row(t),
                                    d);
          offer(&approx_heap, ann.shortlist, Entry(approx, t));
        }
        shortlisted.reserve(approx_heap.size());
        for (const Entry& e : approx_heap) shortlisted.push_back(e.second);
      } else {
        shortlisted = std::move(cand);
      }
      ann_used = true;
      ann_probes = static_cast<uint32_t>(probes.size());
      ann_shortlist = static_cast<uint32_t>(shortlisted.size());
    }
  }

  if (ann_used) {
    // Exact re-rank of the shortlist only.
    for (size_t i = 0; i < shortlisted.size(); ++i) {
      if (i % kCancelStride == 0) {
        CEAFF_RETURN_IF_ERROR(CheckCancel(cancel, "topk ann rerank"));
      }
      const uint32_t t = shortlisted[i];
      offer(&heap, want, Entry(exact_combined(t), t));
    }
  } else {
    for (size_t t = begin; t < end; ++t) {
      if (t % kCancelStride == 0) {
        CEAFF_RETURN_IF_ERROR(CheckCancel(cancel, "topk candidate scan"));
      }
      offer(&heap, want, Entry(exact_combined(t), static_cast<uint32_t>(t)));
    }
  }
  // sort_heap with the inverted comparator leaves the best candidate first.
  std::sort_heap(heap.begin(), heap.end(), min_first);

  TopKResult result;
  result.query = query_name;
  result.structural_used = structural_used;
  result.ann_used = ann_used;
  result.ann_probes = ann_probes;
  result.ann_shortlist = ann_shortlist;
  result.candidates.reserve(heap.size());
  for (const Entry& entry : heap) {
    const uint32_t t = entry.second;
    Candidate candidate;
    candidate.target = t;
    candidate.target_name = index.target_names[t];
    candidate.combined = entry.first;
    candidate.string_score = string_scores[t];
    candidate.semantic_score =
        have_semantic
            ? DotF(query_emb.data(), index.target_name_emb.row(t), dim_sem)
            : 0.0f;
    candidate.structural_score =
        structural_used
            ? DotF(query_struct, index.target_struct_emb.row(t), dim_struct)
            : 0.0f;
    result.candidates.push_back(std::move(candidate));
  }
  return result;
}

StatusOr<PairAnswer> LookupPairInIndex(const AlignmentIndex& index,
                                       const std::string& source_name) {
  auto name_it = index.source_by_name.find(source_name);
  if (name_it == index.source_by_name.end()) {
    return Status::NotFound("unknown source entity '" + source_name + "'");
  }
  auto pair_it = index.pair_by_source.find(name_it->second);
  if (pair_it == index.pair_by_source.end()) {
    return Status::NotFound("source entity '" + source_name +
                            "' has no committed pair");
  }
  const AlignedPair& pair = index.pairs[pair_it->second];
  PairAnswer answer;
  answer.source = pair.source;
  answer.target = pair.target;
  answer.source_name = index.source_names[pair.source];
  answer.target_name = index.target_names[pair.target];
  answer.score = pair.score;
  return answer;
}

}  // namespace ceaff::serve
