#include "ceaff/serve/ipc.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <utility>

#include "ceaff/common/crc32.h"
#include "ceaff/common/failpoint.h"
#include "ceaff/common/string_util.h"

namespace ceaff::serve {

namespace {

using Clock = std::chrono::steady_clock;

int64_t MillisUntil(Clock::time_point deadline) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                               Clock::now())
      .count();
}

/// send() the whole buffer, riding out EINTR and short writes.
/// MSG_NOSIGNAL: a dead peer must surface as EPIPE, never SIGPIPE — the
/// router's whole job is to outlive its workers.
Status SendAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Unavailable("ipc peer closed the pipe");
      }
      return Status::IOError(StrFormat("ipc send failed: %s",
                                       std::strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// recv() exactly `len` bytes before `deadline` (or forever when
/// `block_forever`). The poll/read loop re-arms after EINTR and short
/// reads; a timeout anywhere inside the frame is the shard-hang signal.
Status RecvAll(int fd, char* data, size_t len, bool block_forever,
               Clock::time_point deadline) {
  size_t off = 0;
  while (off < len) {
    struct pollfd pfd = {};
    pfd.fd = fd;
    pfd.events = POLLIN;
    int wait_ms = -1;
    if (!block_forever) {
      const int64_t remaining = MillisUntil(deadline);
      if (remaining <= 0) {
        return Status::DeadlineExceeded("ipc recv timed out");
      }
      wait_ms = static_cast<int>(remaining);
    }
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("ipc poll failed: %s",
                                       std::strerror(errno)));
    }
    if (ready == 0) {
      return Status::DeadlineExceeded("ipc recv timed out");
    }
    const ssize_t n = ::recv(fd, data + off, len - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) {
        return Status::Unavailable("ipc peer closed the pipe");
      }
      return Status::IOError(StrFormat("ipc recv failed: %s",
                                       std::strerror(errno)));
    }
    if (n == 0) {
      return Status::Unavailable("ipc peer closed the pipe");
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

MessagePipe& MessagePipe::operator=(MessagePipe&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Status MessagePipe::CreatePair(MessagePipe* parent, MessagePipe* child) {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::IOError(StrFormat("socketpair failed: %s",
                                     std::strerror(errno)));
  }
  *parent = MessagePipe(fds[0]);
  *child = MessagePipe(fds[1]);
  return Status::OK();
}

void MessagePipe::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status MessagePipe::Send(IpcType type, const std::string& payload) {
  if (!valid()) return Status::FailedPrecondition("ipc pipe is closed");
  if (payload.size() + 1 > kMaxIpcFrameBytes) {
    return Status::InvalidArgument(
        StrFormat("ipc payload of %zu bytes exceeds the %u-byte frame cap",
                  payload.size(), kMaxIpcFrameBytes));
  }
  std::string frame;
  frame.reserve(8 + 1 + payload.size());
  const uint32_t body_len = static_cast<uint32_t>(payload.size() + 1);
  frame.append(reinterpret_cast<const char*>(&body_len), sizeof body_len);
  const char tag = static_cast<char>(type);
  Crc32 crc;
  crc.Update(&tag, 1);
  crc.Update(payload.data(), payload.size());
  uint32_t checksum = crc.value();
  // The corrupt-reply drill: an armed error action here mangles the CRC so
  // the receiver sees a frame whose bytes arrived intact but do not hash —
  // exactly what a buffer-management bug in a worker would produce.
  if (!failpoint::Hit("shard.ipc.corrupt_reply").ok()) {
    checksum ^= 0xDEADBEEFu;
  }
  frame.append(reinterpret_cast<const char*>(&checksum), sizeof checksum);
  frame.push_back(tag);
  frame.append(payload);
  return SendAll(fd_, frame.data(), frame.size());
}

StatusOr<IpcMessage> MessagePipe::Recv(int64_t timeout_ms) {
  if (!valid()) return Status::FailedPrecondition("ipc pipe is closed");
  const bool block_forever = timeout_ms < 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(block_forever ? 0 : timeout_ms);

  char header[8];
  CEAFF_RETURN_IF_ERROR(
      RecvAll(fd_, header, sizeof header, block_forever, deadline));
  uint32_t body_len = 0;
  uint32_t checksum = 0;
  std::memcpy(&body_len, header, sizeof body_len);
  std::memcpy(&checksum, header + 4, sizeof checksum);
  if (body_len == 0 || body_len > kMaxIpcFrameBytes) {
    // A zero or absurd length means the stream is not at a frame boundary;
    // nothing downstream of this byte can be trusted.
    return Status::DataLoss(
        StrFormat("ipc frame declares %u body bytes: framing lost",
                  body_len));
  }
  std::string body(body_len, '\0');
  CEAFF_RETURN_IF_ERROR(
      RecvAll(fd_, body.data(), body.size(), block_forever, deadline));
  if (Crc32Of(body.data(), body.size()) != checksum) {
    return Status::DataLoss("ipc frame checksum mismatch");
  }
  IpcMessage message;
  message.type = static_cast<IpcType>(static_cast<uint8_t>(body[0]));
  message.payload.assign(body, 1, body.size() - 1);
  return message;
}

std::string EncodeStatusPayload(const Status& status) {
  BinWriter w;
  w.U32(static_cast<uint32_t>(status.code()));
  w.Str(status.message());
  return w.Take();
}

Status DecodeStatusPayload(BinReader* reader, Status* out) {
  uint32_t code = 0;
  std::string message;
  if (!reader->U32(&code) || !reader->Str(&message)) {
    return Status::DataLoss("malformed ipc status payload");
  }
  if (code > static_cast<uint32_t>(StatusCode::kUnavailable)) {
    return Status::DataLoss("ipc status payload carries an unknown code");
  }
  *out = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

std::string EncodeTopKResult(const TopKResult& result) {
  BinWriter w;
  w.Str(result.query);
  w.U8(result.structural_used ? 1 : 0);
  w.U8(static_cast<uint8_t>(result.tier));
  w.U8(result.degraded ? 1 : 0);
  w.U8(result.ann_used ? 1 : 0);
  w.U32(result.ann_probes);
  w.U32(result.ann_shortlist);
  w.U64(result.generation);
  w.U32(static_cast<uint32_t>(result.candidates.size()));
  for (const Candidate& c : result.candidates) {
    w.U32(c.target);
    w.Str(c.target_name);
    w.F32(c.combined);
    w.F32(c.string_score);
    w.F32(c.semantic_score);
    w.F32(c.structural_score);
  }
  return w.Take();
}

StatusOr<TopKResult> DecodeTopKResult(BinReader* reader) {
  TopKResult result;
  uint8_t structural_used = 0;
  uint8_t tier = 0;
  uint8_t degraded = 0;
  uint8_t ann_used = 0;
  uint32_t count = 0;
  if (!reader->Str(&result.query) || !reader->U8(&structural_used) ||
      !reader->U8(&tier) || !reader->U8(&degraded) ||
      !reader->U8(&ann_used) || !reader->U32(&result.ann_probes) ||
      !reader->U32(&result.ann_shortlist) || !reader->U64(&result.generation) ||
      !reader->U32(&count)) {
    return Status::DataLoss("malformed ipc topk payload");
  }
  if (tier > static_cast<uint8_t>(ServiceTier::kPairOnly)) {
    return Status::DataLoss("ipc topk payload carries an unknown tier");
  }
  result.structural_used = structural_used != 0;
  result.tier = static_cast<ServiceTier>(tier);
  result.degraded = degraded != 0;
  result.ann_used = ann_used != 0;
  result.candidates.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Candidate c;
    if (!reader->U32(&c.target) || !reader->Str(&c.target_name) ||
        !reader->F32(&c.combined) || !reader->F32(&c.string_score) ||
        !reader->F32(&c.semantic_score) || !reader->F32(&c.structural_score)) {
      return Status::DataLoss("malformed ipc topk candidate");
    }
    result.candidates.push_back(std::move(c));
  }
  return result;
}

std::string EncodePairAnswer(const PairAnswer& answer) {
  BinWriter w;
  w.U32(answer.source);
  w.U32(answer.target);
  w.Str(answer.source_name);
  w.Str(answer.target_name);
  w.F32(answer.score);
  return w.Take();
}

StatusOr<PairAnswer> DecodePairAnswer(BinReader* reader) {
  PairAnswer answer;
  if (!reader->U32(&answer.source) || !reader->U32(&answer.target) ||
      !reader->Str(&answer.source_name) || !reader->Str(&answer.target_name) ||
      !reader->F32(&answer.score)) {
    return Status::DataLoss("malformed ipc pair payload");
  }
  return answer;
}

namespace {

template <typename T>
std::string EncodeResponse(const StatusOr<T>& value,
                           std::string (*encode)(const T&)) {
  BinWriter w;
  w.U8(value.ok() ? 1 : 0);
  std::string body =
      value.ok() ? encode(value.value()) : EncodeStatusPayload(value.status());
  std::string out = w.Take();
  out += body;
  return out;
}

template <typename T>
StatusOr<T> DecodeResponse(const std::string& payload,
                           StatusOr<T> (*decode)(BinReader*)) {
  BinReader reader(payload);
  uint8_t ok = 0;
  if (!reader.U8(&ok)) {
    return Status::DataLoss("malformed ipc response payload");
  }
  if (ok != 0) {
    StatusOr<T> value = decode(&reader);
    if (value.ok() && !reader.Done()) {
      return Status::DataLoss("trailing bytes after ipc response payload");
    }
    return value;
  }
  Status carried = Status::OK();
  CEAFF_RETURN_IF_ERROR(DecodeStatusPayload(&reader, &carried));
  if (!reader.Done()) {
    return Status::DataLoss("trailing bytes after ipc error payload");
  }
  if (carried.ok()) {
    // ok=0 must carry a real error; a smuggled OK would vanish upstream.
    return Status::DataLoss("ipc error response carries an OK status");
  }
  return carried;
}

}  // namespace

std::string EncodeTopKResponse(const StatusOr<TopKResult>& result) {
  return EncodeResponse<TopKResult>(result, EncodeTopKResult);
}

StatusOr<TopKResult> DecodeTopKResponse(const std::string& payload) {
  return DecodeResponse<TopKResult>(payload, DecodeTopKResult);
}

std::string EncodePairResponse(const StatusOr<PairAnswer>& answer) {
  return EncodeResponse<PairAnswer>(answer, EncodePairAnswer);
}

StatusOr<PairAnswer> DecodePairResponse(const std::string& payload) {
  return DecodeResponse<PairAnswer>(payload, DecodePairAnswer);
}

}  // namespace ceaff::serve
