#include "ceaff/serve/degradation.h"

#include <algorithm>

namespace ceaff::serve {

namespace {
/// Bound on retained samples, independent of the time window, so a burst
/// of requests cannot grow the deque without limit.
constexpr size_t kMaxSamples = 4096;
}  // namespace

const char* ServiceTierName(ServiceTier tier) {
  switch (tier) {
    case ServiceTier::kFull:
      return "full";
    case ServiceTier::kTextualOnly:
      return "textual_only";
    case ServiceTier::kPairOnly:
      return "pair_only";
  }
  return "unknown";
}

DegradationPolicy::DegradationPolicy(const DegradationOptions& options)
    : options_(options) {}

uint64_t DegradationPolicy::EnterThreshold(ServiceTier tier) const {
  switch (tier) {
    case ServiceTier::kTextualOnly:
      return options_.enter_textual_delay_ns;
    case ServiceTier::kPairOnly:
      return options_.enter_pair_only_delay_ns;
    case ServiceTier::kFull:
      break;
  }
  return 0;
}

ServiceTier DegradationPolicy::Observe(uint64_t queue_delay_ns,
                                       uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  // Slide the window.
  samples_.emplace_back(now_ns, queue_delay_ns);
  sample_sum_ns_ += queue_delay_ns;
  const uint64_t horizon =
      now_ns > options_.window_ns ? now_ns - options_.window_ns : 0;
  while (!samples_.empty() &&
         (samples_.front().first < horizon || samples_.size() > kMaxSamples)) {
    sample_sum_ns_ -= samples_.front().second;
    samples_.pop_front();
  }
  const uint64_t mean = sample_sum_ns_ / samples_.size();

  ServiceTier current =
      static_cast<ServiceTier>(tier_.load(std::memory_order_relaxed));
  if (!started_) {
    started_ = true;
    tier_since_ns_ = now_ns;
  }

  // Desired tier from the enter thresholds alone (>=: a threshold of 0
  // means "always at least this tier", which tests rely on to pin a tier).
  ServiceTier desired = ServiceTier::kFull;
  if (mean >= options_.enter_pair_only_delay_ns) {
    desired = ServiceTier::kPairOnly;
  } else if (mean >= options_.enter_textual_delay_ns) {
    desired = ServiceTier::kTextualOnly;
  }

  ServiceTier next = current;
  if (static_cast<int>(desired) > static_cast<int>(current)) {
    // Degrade immediately, as far as the signal says.
    next = desired;
  } else if (static_cast<int>(desired) < static_cast<int>(current)) {
    // Recover one tier at a time, only after dwelling and only once the
    // signal is clearly below the tier we are leaving.
    const uint64_t exit_threshold = static_cast<uint64_t>(
        options_.exit_fraction *
        static_cast<double>(EnterThreshold(current)));
    if (now_ns - tier_since_ns_ >= options_.min_dwell_ns &&
        mean < exit_threshold) {
      next = static_cast<ServiceTier>(static_cast<int>(current) - 1);
    }
  }

  if (next != current) {
    tier_nanos_[static_cast<size_t>(current)] += now_ns - tier_since_ns_;
    tier_since_ns_ = now_ns;
    tier_.store(static_cast<int>(next), std::memory_order_relaxed);
  }
  return next;
}

std::array<uint64_t, 3> DegradationPolicy::TierNanos(uint64_t now_ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::array<uint64_t, 3> out = tier_nanos_;
  if (started_ && now_ns > tier_since_ns_) {
    out[static_cast<size_t>(tier_.load(std::memory_order_relaxed))] +=
        now_ns - tier_since_ns_;
  }
  return out;
}

uint64_t DegradationPolicy::SmoothedDelayNanos() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.empty() ? 0 : sample_sum_ns_ / samples_.size();
}

}  // namespace ceaff::serve
