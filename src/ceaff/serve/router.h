#ifndef CEAFF_SERVE_ROUTER_H_
#define CEAFF_SERVE_ROUTER_H_

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ceaff/common/cancellation.h"
#include "ceaff/common/circuit_breaker.h"
#include "ceaff/common/statusor.h"
#include "ceaff/serve/ipc.h"
#include "ceaff/serve/service_types.h"
#include "ceaff/serve/serving_stats.h"
#include "ceaff/serve/shard_worker.h"

namespace ceaff::serve {

struct ShardRouterOptions {
  /// Target row-ranges ("shards"). Each range is a contiguous near-equal
  /// slice of the target rows; every worker loads the full artifact (mmap
  /// shares the pages) but scans only its range.
  size_t num_shards = 2;
  /// Workers per range. 1 = the pre-replication fleet: a dead worker
  /// degrades its range until respawn. R >= 2 makes single-worker loss
  /// invisible: the scatter fails over to the next replica of the range and
  /// the merged answer stays bit-identical and non-degraded; the survivor
  /// merge remains only as the last resort when a whole replica set is
  /// down. R >= 2 also unlocks the rolling reload (see Reload).
  size_t num_replicas = 1;
  /// Per-shard reply deadline when the request carries no deadline of its
  /// own; with a deadline token, the shard gets min(remaining, this). This
  /// is the admission budget flowing through: the shard aborts its scan at
  /// the same instant the frontend's AdmissionController would have called
  /// the request dead.
  int64_t default_shard_deadline_ms = 5'000;
  /// Handshake budget for a freshly forked worker (it must mmap-load the
  /// index before it can answer the Ping).
  int64_t spawn_handshake_ms = 30'000;
  /// How long the rolling reload waits for a worker's kDrainAck before
  /// falling back to SIGKILL. Workers ack at a frame boundary, so this only
  /// triggers on a wedged worker.
  int64_t drain_ack_ms = 2'000;
  /// Per-worker respawn circuit breaker. A worker that keeps dying right
  /// after spawn trips it open; its slot stays empty (no respawn attempts,
  /// no fork storm) until the cooldown admits a half-open probe.
  CircuitBreaker::Options respawn_breaker{
      /*failure_threshold=*/3,
      /*cooldown_ns=*/2'000'000'000ull,  // 2 s
  };
  /// A death within this window of the spawn counts as flapping and feeds
  /// the breaker; a death after a long healthy run does not (a one-off kill
  /// should respawn immediately, not march toward an open breaker).
  uint64_t flap_window_ns = 10'000'000'000ull;  // 10 s
  /// Per-worker failpoint specs applied in the child after the fork,
  /// indexed by worker index = range * num_replicas + replica (tests: crash
  /// exactly one worker). Missing/empty entries inherit the environment's
  /// arms.
  std::vector<std::string> shard_failpoints;
  /// ANN knobs, copied into every worker's config (the fleet must agree —
  /// mixed settings would break the merge's determinism across respawns).
  AnnOptions ann;

  /// --- Post-reload canary (see DESIGN.md §14) ---
  /// Scatters observed on a freshly reloaded generation before it is
  /// considered promoted. 0 disables the canary (and with it automatic
  /// rollback).
  size_t canary_window = 64;
  /// p99 regression bound: the canary generation fails when its p99 exceeds
  /// baseline p99 × this factor. Deliberately generous — the canary is
  /// hunting order-of-magnitude regressions (a generation that thrashes),
  /// not noise.
  double canary_p99_factor = 8.0;
  /// Baseline scatters required before the p99 rule may fire at all; a
  /// fleet that reloads immediately after boot has no meaningful baseline.
  size_t canary_min_baseline = 16;
  /// Worker deaths on the canary generation that fail it outright (a
  /// generation whose workers keep crashing is bad regardless of latency).
  size_t canary_death_threshold = 2;
  /// Gates automatic rollbacks: each rollback feeds a failure, so
  /// `failure_threshold` rollbacks in quick succession trip it open and
  /// further rollbacks are suppressed for the cooldown — a fleet bouncing
  /// between two bad generations must settle, not oscillate.
  CircuitBreaker::Options rollback_breaker{
      /*failure_threshold=*/2,
      /*cooldown_ns=*/60'000'000'000ull,  // 60 s
  };
};

/// Supervisor + scatter/gather router over an S×R fleet of forked shard
/// workers: S contiguous target row-ranges, each owned by R replica
/// workers.
///
/// Topology: the router forks each worker over its own AF_UNIX socketpair
/// (no exec — the workers are the same binary image, which is what makes
/// `shard_failpoints` and the in-process tests possible) and strictly
/// ping-pongs one request per pipe. TOPK picks ONE replica per range (all
/// pinned to a single index generation — see below), scatters, and merges
/// the partial top-k lists by (combined desc, target id asc) — the same
/// comparator the single-process heap uses, so a healthy merge is
/// bit-identical to single-process mode. A replica that fails mid-gather
/// (crash, hang, corrupt reply) is replaced by the next live replica of the
/// same range on the same generation: with R >= 2, losing any single worker
/// yields the same bit-identical, non-degraded answer. Only when every
/// same-generation replica of a range is gone does the range drop out of
/// the merge (the survivor path, marked `degraded`, never cached). PAIR
/// routes to the owning range (hash of the name) with failover across
/// replicas and then any live worker: every worker holds the full maps, so
/// PAIR never degrades while at least one worker lives.
///
/// Mixed-generation guard: every worker is forever pinned to the
/// generation it was spawned with (it echoes the id in its Pong and stamps
/// it on every answer). Each scatter pins itself to ONE generation — the
/// newest one with the widest range coverage among live workers — and only
/// considers replicas on that generation, so parts of different index
/// generations never meet in one merge even mid-rolling-reload.
///
/// Failure matrix (see DESIGN.md §12/§14): a worker that dies mid-query
/// (kUnavailable on its pipe) is reaped and the scatter fails over to the
/// next replica. A worker that hangs past its deadline (kDeadlineExceeded)
/// or returns a corrupt frame (kDataLoss) is SIGKILLed first, then treated
/// the same — after a timeout or CRC mismatch the pipe's framing can no
/// longer be trusted. Dead workers respawn through per-worker circuit
/// breakers; the respawn handshake alone never closes the breaker's probe —
/// only the first successfully answered query does, so a worker that boots
/// fine but dies on every query still trips open.
///
/// Rolling reload + automatic rollback: see Reload() and DESIGN.md §14.
///
/// Threading: not thread-safe. One router per serving loop; the
/// parallelism lives in the worker processes.
class ShardRouter {
 public:
  ~ShardRouter();
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Validates the artifact (one full load in the router, discarded after
  /// the shard ranges are computed), then forks and handshakes every
  /// worker. Fails if fewer than one worker comes up.
  static StatusOr<std::unique_ptr<ShardRouter>> Start(
      const std::string& index_path, const ShardRouterOptions& options = {});

  /// Scatter/gather top-k, pinned to a single index generation. `degraded`
  /// is set on the result whenever any range is missing from the merge
  /// (every same-generation replica dead, breaker-open, or failed
  /// mid-query); such answers must never be cached. Errors only when NO
  /// range produced an answer.
  StatusOr<TopKResult> TopK(const std::string& query_name, size_t k,
                            const CancellationToken* cancel = nullptr);

  /// Exact pair lookup, routed to the owning range with failover across its
  /// replicas and then the rest of the fleet. Exact (never degraded) while
  /// at least one worker is alive; kNotFound is authoritative from any
  /// worker.
  StatusOr<PairAnswer> LookupPair(const std::string& source_name,
                                  const CancellationToken* cancel = nullptr);

  struct HealthReport {
    /// Live / total WORKER processes.
    size_t alive = 0;
    size_t total = 0;
    /// Ranges with at least one live replica on the pinned generation /
    /// total ranges. THIS is what answer quality depends on: a fleet with
    /// dead workers but full range coverage still serves bit-identical,
    /// non-degraded answers.
    size_t ranges_covered = 0;
    size_t ranges_total = 0;
    bool degraded = false;  // ranges_covered < ranges_total
  };

  /// Reaps silently-dead workers (external SIGKILL), reports the state as
  /// observed — THEN attempts respawns through the breakers. The ordering
  /// is deliberate: the first HEALTH after a kill reports the degradation,
  /// the next one reports the recovery. During a rolling reload the respawn
  /// pass is suppressed (reap-and-report only): the reload cycle owns every
  /// worker transition, and a concurrent breaker respawn would double-spawn
  /// the slot the cycle is about to fill.
  HealthReport CheckHealth();

  /// Hot-swaps the fleet to the artifact at `index_path`. The router
  /// validates it with one full load first (a corrupt artifact refuses the
  /// swap and the current fleet keeps serving, mirroring
  /// AlignmentService::Reload).
  ///
  /// With num_replicas == 1 the swap is stop-the-world (restart every
  /// worker under the new path) — with no replication there is no way to
  /// keep a range served while its only worker restarts, and staggering
  /// would let two generations meet in one merge.
  ///
  /// With num_replicas >= 2 the swap is a ROLLING restart: replica 0 of
  /// every range is drained (kDrain → ack → exit at a frame boundary) and
  /// respawned on the new generation, then replica 1, and so on — at every
  /// instant at least one complete generation covers all ranges, so queries
  /// keep flowing mid-reload with zero failures. The scatter's
  /// mixed-generation pin decides per query which generation answers;
  /// merges never mix. Workers that fail to come back on the new generation
  /// are left dead (their slot respawns later through its breaker); if the
  /// FIRST worker cannot spawn on the new generation the reload is aborted
  /// and that worker is restored to the current one.
  ///
  /// A successful reload arms the post-reload canary: the next
  /// `canary_window` scatters are scored against the pre-reload baseline
  /// (worker deaths on the new generation, data-loss replies, error rate,
  /// p99). A regression triggers an automatic breaker-gated rollback: the
  /// bad generation is quarantined in its GenerationalStore (when the index
  /// path is a generational directory), the fleet rolls back onto the
  /// previous generation, and the event is surfaced in StatsJson().
  Status Reload(const std::string& index_path);

  /// Router + per-worker counters as JSON (served under "router" in STATS).
  std::string StatsJson() const;

  /// Worker-indexed accessors (worker = range * num_replicas + replica).
  /// With num_replicas == 1 a worker index IS a range index, which keeps
  /// the pre-replication tests and drills valid unchanged.
  size_t num_shards() const { return workers_.size(); }
  size_t num_ranges() const { return ranges_total_; }
  size_t num_replicas() const { return options_.num_replicas; }
  size_t worker_index(size_t range, size_t replica) const {
    return range * options_.num_replicas + replica;
  }
  pid_t shard_pid(size_t worker) const;
  bool shard_alive(size_t worker) const;
  std::pair<size_t, size_t> shard_range(size_t worker) const;
  uint64_t shard_generation(size_t worker) const;
  uint64_t degraded_answers() const { return topk_degraded_; }
  uint64_t failovers() const { return topk_failover_; }
  uint64_t rollbacks() const { return rollbacks_; }
  uint64_t reloads() const { return reloads_; }
  /// Generation id the pinned scatter would use right now.
  uint64_t current_generation() const { return current_gen_.id; }
  bool canary_active() const { return canary_active_; }

  /// Replaces the failpoint spec a future (re)spawn of `worker` arms in its
  /// child. Test hook for the kill-a-shard drills.
  void SetShardFailpoints(size_t worker, const std::string& spec);

  /// Kills `worker` (if alive) and respawns it immediately with the current
  /// spec, bypassing the breaker. Test hook.
  Status RestartShard(size_t worker);

  /// Test hook: invoked re-entrantly after each worker is cycled during a
  /// rolling reload (argument = worker index just cycled). The hook may
  /// SIGKILL workers, call CheckHealth(), or issue TopK() — the
  /// deterministic harness for the reload-vs-reap race and the
  /// mid-reload-query drills.
  void SetReloadCycleHook(std::function<void(size_t)> hook) {
    reload_cycle_hook_ = std::move(hook);
  }

 private:
  struct WorkerState {
    MessagePipe pipe;
    pid_t pid = -1;
    bool alive = false;
    size_t range = 0;
    size_t replica = 0;
    size_t begin = 0;
    size_t end = 0;
    /// Generation this worker serves — fixed for the life of the process;
    /// the rolling reload replaces the process to change it.
    uint64_t generation = 0;
    /// The artifact this worker's (re)spawns load — the generation-pinned
    /// resolved path, not the user-supplied directory.
    std::string index_path;
    std::string failpoint_spec;
    std::unique_ptr<CircuitBreaker> breaker;
    /// Set on every (re)spawn, cleared by the first successfully answered
    /// query (which records the breaker success). A death with the probe
    /// still pending records a breaker failure regardless of the flap
    /// window.
    bool probe_pending = false;
    uint64_t last_spawn_ns = 0;
    uint64_t deaths = 0;
    uint64_t respawns = 0;
  };

  /// One index generation the fleet can serve. `id` is router-local and
  /// monotonic; `store_gen` is the GenerationalStore generation number when
  /// the path is a generational directory (0 for flat files — nothing to
  /// quarantine there).
  struct GenerationInfo {
    uint64_t id = 0;
    std::string path;
    /// What workers actually load: the concrete generation FILE for
    /// generational directories (a respawn must never silently pick up a
    /// newer publish under this generation's id), `path` itself otherwise.
    std::string resolved;
    uint64_t store_gen = 0;
    size_t n_targets = 0;
    std::vector<std::pair<size_t, size_t>> ranges;
  };

  ShardRouter(const ShardRouterOptions& options);

  /// Forks + handshakes `worker` with its recorded range/generation. Does
  /// NOT touch the breaker — callers decide what a spawn failure means.
  Status SpawnWorker(size_t worker);
  /// Marks a worker dead: closes the pipe, SIGKILLs (idempotent on a
  /// corpse) and reaps the child, and feeds the breaker per the flap/probe
  /// rules. Deaths on the canary generation count toward the rollback
  /// decision.
  void MarkDead(size_t worker, bool already_reaped, bool data_loss = false);
  /// Breaker-gated respawn pass over every dead worker. No-op while a
  /// rolling reload owns the fleet.
  void TryRespawnDeadWorkers();
  /// Records a successfully answered query for the breaker probe.
  void RecordWorkerAnswered(size_t worker);

  /// The scatter pin: the generation with the widest live range coverage,
  /// ties broken toward the newest. Returns the id (0 when nothing lives).
  uint64_t PinnedGeneration() const;
  /// Live replica indices of `range` on generation `gen`, rotated by the
  /// scatter counter for load spread.
  std::vector<size_t> LiveReplicasOnGeneration(size_t range,
                                               uint64_t gen) const;

  /// Drains (or reaps) one worker and respawns it on `next`. Used by the
  /// rolling reload and rollback cycles.
  Status CycleWorkerTo(size_t worker, const GenerationInfo& next);
  /// Builds a GenerationInfo for `index_path` after validating the
  /// artifact (full load, target count, range split).
  StatusOr<GenerationInfo> ValidateGeneration(const std::string& index_path);
  /// Rolling (R >= 2) or stop-the-world (R == 1) fleet move onto `next`.
  /// On success swaps current/previous generation state.
  Status MoveFleetTo(const GenerationInfo& next, bool arm_canary);
  /// Canary bookkeeping after each scatter pinned to `pinned`; evaluates
  /// the rollback rules at this safe point (never mid-gather).
  void RecordCanaryScatter(uint64_t pinned, uint64_t latency_ns, bool ok);
  /// Applies the rollback decision rules (data loss > deaths > window-end
  /// error-ratio/p99) and triggers the rollback when one fires.
  void EvaluateCanary();
  /// The breaker-gated rollback: quarantine the canary generation, restore
  /// the previous one, roll the fleet back.
  void TriggerRollback(const std::string& reason);

  const ShardRouterOptions options_;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  size_t ranges_total_ = 0;

  GenerationInfo current_gen_;
  /// Rollback target; id == 0 when there is nothing to roll back to (fresh
  /// boot, or the previous generation was already consumed by a rollback).
  GenerationInfo previous_gen_;
  uint64_t next_generation_id_ = 1;
  /// True while a rolling reload/rollback cycle owns the fleet: breaker
  /// respawns pause so the cycle's drain→respawn per slot cannot be raced
  /// by a concurrent (re-entrant) CheckHealth respawn pass.
  bool reload_in_progress_ = false;
  std::function<void(size_t)> reload_cycle_hook_;

  /// Round-robin seed so repeated scatters spread load across replicas.
  uint64_t scatter_counter_ = 0;

  uint64_t topk_ok_ = 0;
  uint64_t topk_degraded_ = 0;
  uint64_t topk_errors_ = 0;
  uint64_t topk_failover_ = 0;
  uint64_t pair_ok_ = 0;
  uint64_t pair_failover_ = 0;
  uint64_t pair_errors_ = 0;
  /// Merged-answer ANN counters: answers where any shard took the ANN
  /// path, and probe/shortlist totals over those answers.
  uint64_t ann_answers_ = 0;
  uint64_t ann_probes_ = 0;
  uint64_t ann_shortlisted_ = 0;

  /// --- Canary / rollback state ---
  bool canary_active_ = false;
  uint64_t canary_gen_ = 0;
  size_t canary_seen_ = 0;
  uint64_t canary_errors_ = 0;
  uint64_t canary_deaths_ = 0;
  uint64_t canary_dataloss_ = 0;
  std::unique_ptr<LatencyHistogram> canary_hist_;
  /// Pre-reload baseline, captured at the instant the fleet moves: p99 and
  /// error ratio of everything the old generation served.
  uint64_t baseline_p99_ns_ = 0;
  uint64_t baseline_queries_ = 0;
  uint64_t baseline_errors_ = 0;
  /// Running totals + histogram the NEXT baseline snapshot is cut from.
  uint64_t lifetime_queries_ = 0;
  uint64_t lifetime_errors_ = 0;
  std::unique_ptr<LatencyHistogram> lifetime_hist_;
  std::unique_ptr<CircuitBreaker> rollback_breaker_;
  uint64_t reloads_ = 0;
  uint64_t rollbacks_ = 0;
  uint64_t rollbacks_suppressed_ = 0;
  uint64_t canary_passes_ = 0;
  std::string last_rollback_reason_;
  uint64_t last_quarantined_store_gen_ = 0;
};

}  // namespace ceaff::serve

#endif  // CEAFF_SERVE_ROUTER_H_
