#ifndef CEAFF_SERVE_ROUTER_H_
#define CEAFF_SERVE_ROUTER_H_

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ceaff/common/cancellation.h"
#include "ceaff/common/circuit_breaker.h"
#include "ceaff/common/statusor.h"
#include "ceaff/serve/ipc.h"
#include "ceaff/serve/service_types.h"
#include "ceaff/serve/shard_worker.h"

namespace ceaff::serve {

struct ShardRouterOptions {
  /// Worker processes to fork. Each owns a contiguous near-equal slice of
  /// the target rows; every worker loads the full artifact (mmap shares the
  /// pages) but scans only its slice.
  size_t num_shards = 2;
  /// Per-shard reply deadline when the request carries no deadline of its
  /// own; with a deadline token, the shard gets min(remaining, this). This
  /// is the admission budget flowing through: the shard aborts its scan at
  /// the same instant the frontend's AdmissionController would have called
  /// the request dead.
  int64_t default_shard_deadline_ms = 5'000;
  /// Handshake budget for a freshly forked worker (it must mmap-load the
  /// index before it can answer the Ping).
  int64_t spawn_handshake_ms = 30'000;
  /// Per-shard respawn circuit breaker. A shard that keeps dying right
  /// after spawn trips it open; its range is served degraded (no respawn
  /// attempts, no fork storm) until the cooldown admits a half-open probe.
  CircuitBreaker::Options respawn_breaker{
      /*failure_threshold=*/3,
      /*cooldown_ns=*/2'000'000'000ull,  // 2 s
  };
  /// A death within this window of the spawn counts as flapping and feeds
  /// the breaker; a death after a long healthy run does not (a one-off kill
  /// should respawn immediately, not march toward an open breaker).
  uint64_t flap_window_ns = 10'000'000'000ull;  // 10 s
  /// Per-shard failpoint specs applied in the child after the fork (tests:
  /// crash exactly one shard). Missing/empty entries inherit the
  /// environment's arms.
  std::vector<std::string> shard_failpoints;
  /// ANN knobs, copied into every shard's config (the fleet must agree —
  /// mixed settings would break the merge's determinism across respawns).
  AnnOptions ann;
};

/// Supervisor + scatter/gather router over N forked shard workers.
///
/// Topology: the router forks each worker over its own AF_UNIX socketpair
/// (no exec — the workers are the same binary image, which is what makes
/// `shard_failpoints` and the in-process tests possible) and strictly
/// ping-pongs one request per pipe. TOPK scatters to every live shard and
/// merges the partial top-k lists by (combined desc, target id asc) — the
/// same comparator the single-process heap uses, so a healthy merge is
/// bit-identical to single-process mode. PAIR routes to the owning shard
/// (hash of the name) with failover to any live shard: every worker holds
/// the full maps, so PAIR never degrades while at least one shard lives.
///
/// Failure matrix (see DESIGN.md §12): a shard that dies mid-query
/// (kUnavailable on its pipe) is reaped and its range dropped from the
/// merge — the answer is served `degraded` from the survivors, never
/// cached upstream, and counted. A shard that hangs past its deadline
/// (kDeadlineExceeded) or returns a corrupt frame (kDataLoss) is SIGKILLed
/// first, then treated the same — after a timeout or CRC mismatch the
/// pipe's framing can no longer be trusted. Dead shards respawn through
/// the per-shard circuit breaker; the respawn handshake alone never closes
/// the breaker's probe — only the first successfully answered query does,
/// so a worker that boots fine but dies on every query still trips open.
///
/// Threading: not thread-safe. One router per serving loop; the
/// parallelism lives in the worker processes.
class ShardRouter {
 public:
  ~ShardRouter();
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Validates the artifact (one full load in the router, discarded after
  /// the shard ranges are computed), then forks and handshakes every
  /// worker. Fails if fewer than one worker comes up.
  static StatusOr<std::unique_ptr<ShardRouter>> Start(
      const std::string& index_path, const ShardRouterOptions& options = {});

  /// Scatter/gather top-k. `degraded` is set on the result whenever any
  /// shard's range is missing from the merge (dead, breaker-open, or
  /// failed mid-query); such answers must never be cached. Errors only
  /// when NO shard produced an answer.
  StatusOr<TopKResult> TopK(const std::string& query_name, size_t k,
                            const CancellationToken* cancel = nullptr);

  /// Exact pair lookup, routed to the owning shard with failover. Exact
  /// (never degraded) while at least one shard is alive; kNotFound is
  /// authoritative from any shard.
  StatusOr<PairAnswer> LookupPair(const std::string& source_name,
                                  const CancellationToken* cancel = nullptr);

  struct HealthReport {
    size_t alive = 0;
    size_t total = 0;
    bool degraded = false;  // alive < total
  };

  /// Reaps silently-dead workers (external SIGKILL), reports the state as
  /// observed — THEN attempts respawns through the breakers. The ordering
  /// is deliberate: the first HEALTH after a kill reports the degradation,
  /// the next one reports the recovery.
  HealthReport CheckHealth();

  /// Hot-swaps the fleet to the artifact at `index_path`. The router
  /// validates it with one full load first (a corrupt artifact refuses the
  /// swap and the current fleet keeps serving, mirroring
  /// AlignmentService::Reload), then restarts every worker stop-the-world
  /// under the new path — there is no per-shard staggering, because two
  /// workers serving different generations would break the bit-identity
  /// guarantee of the merge. Shards that fail to come back are left dead
  /// (their range degrades) and respawn later through their breakers.
  Status Reload(const std::string& index_path);

  /// Router + per-shard counters as JSON (served under "router" in STATS).
  std::string StatsJson() const;

  size_t num_shards() const { return shards_.size(); }
  pid_t shard_pid(size_t shard) const;
  bool shard_alive(size_t shard) const;
  std::pair<size_t, size_t> shard_range(size_t shard) const;
  uint64_t degraded_answers() const { return topk_degraded_; }

  /// Replaces the failpoint spec a future (re)spawn of `shard` arms in its
  /// child. Test hook for the kill-a-shard drills.
  void SetShardFailpoints(size_t shard, const std::string& spec);

  /// Kills `shard` (if alive) and respawns it immediately with the current
  /// spec, bypassing the breaker. Test hook.
  Status RestartShard(size_t shard);

 private:
  struct ShardState {
    MessagePipe pipe;
    pid_t pid = -1;
    bool alive = false;
    size_t begin = 0;
    size_t end = 0;
    std::string failpoint_spec;
    std::unique_ptr<CircuitBreaker> breaker;
    /// Set on every (re)spawn, cleared by the first successfully answered
    /// query (which records the breaker success). A death with the probe
    /// still pending records a breaker failure regardless of the flap
    /// window.
    bool probe_pending = false;
    uint64_t last_spawn_ns = 0;
    uint64_t deaths = 0;
    uint64_t respawns = 0;
  };

  ShardRouter(std::string index_path, const ShardRouterOptions& options);

  /// Forks + handshakes shard `i`. Does NOT touch the breaker — callers
  /// decide what a spawn failure means to it.
  Status SpawnShard(size_t shard);
  /// Marks a shard dead: closes the pipe, SIGKILLs (idempotent on a corpse)
  /// and reaps the child, and feeds the breaker per the flap/probe rules.
  void MarkDead(size_t shard, bool already_reaped);
  /// Breaker-gated respawn pass over every dead shard.
  void TryRespawnDeadShards();
  /// Records a successfully answered query for the breaker probe.
  void RecordShardAnswered(size_t shard);

  std::string index_path_;  // updated by Reload
  const ShardRouterOptions options_;
  std::vector<std::unique_ptr<ShardState>> shards_;

  uint64_t topk_ok_ = 0;
  uint64_t topk_degraded_ = 0;
  uint64_t topk_errors_ = 0;
  uint64_t pair_ok_ = 0;
  uint64_t pair_failover_ = 0;
  uint64_t pair_errors_ = 0;
  /// Merged-answer ANN counters: answers where any shard took the ANN
  /// path, and probe/shortlist totals over those answers.
  uint64_t ann_answers_ = 0;
  uint64_t ann_probes_ = 0;
  uint64_t ann_shortlisted_ = 0;
};

}  // namespace ceaff::serve

#endif  // CEAFF_SERVE_ROUTER_H_
