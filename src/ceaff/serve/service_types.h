#ifndef CEAFF_SERVE_SERVICE_TYPES_H_
#define CEAFF_SERVE_SERVICE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ceaff/serve/degradation.h"

namespace ceaff::serve {

/// Answer to an exact pair lookup.
struct PairAnswer {
  uint32_t source = 0;
  uint32_t target = 0;
  std::string source_name;
  std::string target_name;
  /// Fused similarity the batch pipeline committed this pair at.
  float score = 0.0f;
};

/// One retrieved candidate: per-feature scores plus their weighted
/// combination under the index's stored adaptive fusion weights.
struct Candidate {
  uint32_t target = 0;
  std::string target_name;
  float combined = 0.0f;
  float string_score = 0.0f;
  float semantic_score = 0.0f;
  float structural_score = 0.0f;
};

/// Result of one top-k retrieval, self-contained (names copied out of the
/// snapshot) so it stays valid across hot reloads, inside the cache, and
/// across the shard-worker IPC boundary.
struct TopKResult {
  std::string query;
  /// True when the query name resolved to a known source entity, so the
  /// structural feature participated; false means the structural weight was
  /// redistributed over the textual features.
  bool structural_used = false;
  /// Degradation tier this answer was served at. Anything other than
  /// kFull also sets `degraded`: the scores are the renormalised subset of
  /// features the tier allows (CEAFF's usual weight redistribution), not
  /// the full adaptive fusion.
  ServiceTier tier = ServiceTier::kFull;
  bool degraded = false;
  /// True when the ANN candidate stage produced this answer (the returned
  /// scores are still exact — ANN only selects which targets get scored).
  /// False covers both "ANN disabled" and every automatic exhaustive
  /// fallback. For a sharded answer: true when any shard used ANN, with
  /// probes/shortlist summed over the shards that did.
  bool ann_used = false;
  /// IVF cells probed / candidates exactly re-ranked (0 when !ann_used).
  uint32_t ann_probes = 0;
  uint32_t ann_shortlist = 0;
  /// Index generation this answer was computed against: a monotonically
  /// increasing id bumped by every successful reload (single-process
  /// service and sharded router alike; workers echo the id the router
  /// spawned them with). A merged sharded answer is always internally
  /// consistent — the router pins each scatter to replicas of a single
  /// generation, so parts of different generations never meet in one
  /// merge. 0 only for results that never passed through a serving layer
  /// (raw TopKScan calls).
  uint64_t generation = 0;
  std::vector<Candidate> candidates;  // descending combined score
};

}  // namespace ceaff::serve

#endif  // CEAFF_SERVE_SERVICE_TYPES_H_
