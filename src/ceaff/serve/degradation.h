#ifndef CEAFF_SERVE_DEGRADATION_H_
#define CEAFF_SERVE_DEGRADATION_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

namespace ceaff::serve {

/// How much of the adaptive-fusion scoring pipeline a query gets. The
/// tiers follow CEAFF's own fusion semantics: when a feature is dropped
/// its weight is renormalised over the features that remain (exactly what
/// the batch pipeline does for disabled features), so a degraded answer is
/// still a faithful — just coarser — CEAFF score, not an ad-hoc
/// truncation.
enum class ServiceTier {
  /// Structural + semantic + string, full candidate scan.
  kFull = 0,
  /// Textual features only: the structural weight is redistributed over
  /// string + semantic, skipping the GCN-embedding dot products.
  kTextualOnly = 1,
  /// No candidate scan at all: TopK answers only when the query name has a
  /// committed pair in the index (an O(1) lookup); everything else is shed.
  kPairOnly = 2,
};

/// Stable lowercase name ("full", "textual_only", "pair_only").
const char* ServiceTierName(ServiceTier tier);

struct DegradationOptions {
  /// Smoothed queue delay at which the service steps down to textual-only
  /// scoring, and further down to pair-lookup-only.
  uint64_t enter_textual_delay_ns = 5'000'000;    // 5 ms
  uint64_t enter_pair_only_delay_ns = 20'000'000;  // 20 ms
  /// Hysteresis: a tier is left only once the smoothed delay falls below
  /// `exit_fraction` x its enter threshold. Must be < 1 or tiers flap.
  double exit_fraction = 0.5;
  /// Sliding window over which the load signal is averaged.
  uint64_t window_ns = 500'000'000;  // 500 ms
  /// Minimum time at a tier before stepping *down* (stepping up is always
  /// immediate — protection must not wait out a dwell).
  uint64_t min_dwell_ns = 200'000'000;  // 200 ms
};

/// Maps a sliding-window load signal (estimated queue delay, the same
/// signal the AdmissionController sheds on) to a ServiceTier, with
/// hysteresis so the tier does not flap at a threshold boundary:
///
///   - step UP (degrade) immediately when the windowed mean crosses an
///     enter threshold, possibly skipping a tier;
///   - step DOWN (recover) one tier at a time, only after `min_dwell_ns`
///     at the current tier AND once the mean is under `exit_fraction` x
///     the tier's enter threshold.
///
/// Callers supply timestamps; tests drive virtual time. Thread-safe:
/// Observe() takes a short lock, tier() is a lock-free read.
class DegradationPolicy {
 public:
  explicit DegradationPolicy(const DegradationOptions& options = {});

  DegradationPolicy(const DegradationPolicy&) = delete;
  DegradationPolicy& operator=(const DegradationPolicy&) = delete;

  /// Records one load sample and returns the tier the *current* request
  /// should be served at.
  ServiceTier Observe(uint64_t queue_delay_ns, uint64_t now_ns);

  /// The tier as of the last Observe().
  ServiceTier tier() const {
    return static_cast<ServiceTier>(tier_.load(std::memory_order_relaxed));
  }

  /// Cumulative nanoseconds spent at each tier (index = tier), including
  /// the in-progress stay. Feeds the soak bench's tier-occupancy report.
  std::array<uint64_t, 3> TierNanos(uint64_t now_ns) const;

  /// Windowed mean of the load signal (for stats/tests).
  uint64_t SmoothedDelayNanos() const;

 private:
  uint64_t EnterThreshold(ServiceTier tier) const;

  const DegradationOptions options_;

  mutable std::mutex mu_;
  /// (timestamp, delay) samples inside the sliding window, oldest first.
  std::deque<std::pair<uint64_t, uint64_t>> samples_;
  uint64_t sample_sum_ns_ = 0;
  /// When the current tier was entered. Meaningless until the first
  /// Observe() (`started_` — 0 is a legitimate virtual timestamp, so it
  /// cannot double as the "unset" sentinel).
  bool started_ = false;
  uint64_t tier_since_ns_ = 0;
  std::array<uint64_t, 3> tier_nanos_{};

  std::atomic<int> tier_{0};
};

}  // namespace ceaff::serve

#endif  // CEAFF_SERVE_DEGRADATION_H_
