#ifndef CEAFF_SERVE_TOPK_SCAN_H_
#define CEAFF_SERVE_TOPK_SCAN_H_

#include <cstddef>
#include <string>

#include "ceaff/common/cancellation.h"
#include "ceaff/common/statusor.h"
#include "ceaff/serve/alignment_index.h"
#include "ceaff/serve/service_types.h"
#include "ceaff/text/word_embedding.h"

namespace ceaff::serve {

/// The single definition of "score one query against the index" shared by
/// the single-process AlignmentService and the sharded workers. A shard
/// worker runs the exact same code restricted to its contiguous target
/// row-range; because every target's string/semantic/structural scores
/// depend only on the query and that target's own rows, a scatter/gather
/// over disjoint ranges merged by (combined desc, target id asc) is
/// bit-identical to one full scan — the property the router's healthy-path
/// parity guarantee rests on.
struct TopKScanRange {
  /// Contiguous target rows [begin, end) this scan may score.
  size_t begin = 0;
  size_t end = 0;
};

/// ANN retrieval knobs (DESIGN.md §13). With `enabled` set and a v3
/// artifact, the scan probes `nprobe` IVF cells (+ every trigram-matching
/// target in range), keeps the best `shortlist` candidates by quantized
/// approximate score, and re-ranks only those with the exact full-precision
/// scoring — so the scores of the returned candidates are bit-identical to
/// the exhaustive path's values for the same targets. The scan falls back
/// to the exhaustive loop automatically when the artifact has no ANN
/// sections, when shortlist < k (the shortlist could not even hold a full
/// answer), when the range is no bigger than the shortlist (approximating
/// would inspect every row anyway — this also makes sufficiently small
/// shard ranges trivially exact), or when no dense feature fires for the
/// query (nothing for the IVF probe to rank).
struct AnnOptions {
  bool enabled = false;
  /// IVF cells probed per query.
  size_t nprobe = 8;
  /// Candidates kept for exact re-ranking.
  size_t shortlist = 256;
};

/// Scores `query_name` against targets [range.begin, range.end) of `index`
/// and returns the top min(k, range size) candidates ordered by combined
/// score descending, ties broken toward the smaller target id. The
/// structural feature participates only when `allow_structural` is set AND
/// the query resolves to a known source entity with GCN embeddings;
/// weights of features that cannot fire are renormalised over the rest.
/// Polls `cancel` inside the scan. Evaluates the failpoint site
/// "serve.topk.scan" on entry (chaos and crash drills arm it).
/// `ann` selects the two-stage approximate path (see AnnOptions); the
/// default keeps the exhaustive scan.
StatusOr<TopKResult> TopKScan(const AlignmentIndex& index,
                              const text::WordEmbeddingStore& embedder,
                              const std::string& query_name, size_t k,
                              bool allow_structural,
                              const CancellationToken* cancel,
                              const TopKScanRange& range,
                              const AnnOptions& ann = {});

/// Exact committed-pair lookup over the full index (any process that
/// loaded the artifact holds the complete source_by_name map, so every
/// shard can answer this at full fidelity). kNotFound when the name is
/// unknown or its entity ended up unmatched.
StatusOr<PairAnswer> LookupPairInIndex(const AlignmentIndex& index,
                                       const std::string& source_name);

}  // namespace ceaff::serve

#endif  // CEAFF_SERVE_TOPK_SCAN_H_
