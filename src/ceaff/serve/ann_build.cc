#include "ceaff/serve/ann_build.h"

#include <algorithm>
#include <utility>

#include "ceaff/ann/ivf.h"
#include "ceaff/ann/quantize.h"

namespace ceaff::serve {

Status BuildAnnSections(AlignmentIndex* index,
                        const AnnBuildOptions& options) {
  const size_t n = index->num_targets();
  const size_t d_sem = index->target_name_emb.cols();
  const size_t d_struct = index->target_struct_emb.cols();
  const size_t d = d_sem + d_struct;
  if (n == 0 || d == 0) {
    return Status::FailedPrecondition(
        "index has no dense target features for ann training");
  }

  const double w_sem = index->weight_semantic;
  const double w_struct = index->weight_structural;
  if (w_sem + w_struct <= 0.0) {
    return Status::FailedPrecondition(
        "dense target features carry no fusion weight; ann cells would be "
        "meaningless");
  }

  // Fused target vectors: the *unweighted* concatenation. The query path
  // bakes its per-query effective weights into the query vector instead,
  // so one stored code section serves every weighting (including the
  // renormalisation when a feature cannot fire).
  la::Matrix fused(n, d);
  for (size_t t = 0; t < n; ++t) {
    float* dst = fused.row(t);
    if (d_sem > 0) {
      const float* sem = index->target_name_emb.row(t);
      std::copy(sem, sem + d_sem, dst);
    }
    if (d_struct > 0) {
      const float* st = index->target_struct_emb.row(t);
      std::copy(st, st + d_struct, dst + d_sem);
    }
  }

  // The IVF, by contrast, must be trained in the space the query probes
  // in, i.e. with the artifact's fusion weights folded into each block —
  // clustering the raw concatenation would let a low-weight feature (which
  // the query direction barely sees) dominate the cell boundaries, and
  // probed cells would stop agreeing with the exact ranking. Per-query
  // renormalisation only rescales the whole query vector, so it never
  // changes which cells rank first; the weighted space here is the right
  // one for every query that can fire all dense features.
  la::Matrix weighted = fused;
  for (size_t t = 0; t < n; ++t) {
    float* row = weighted.row(t);
    for (size_t i = 0; i < d_sem; ++i) {
      row[i] *= static_cast<float>(w_sem);
    }
    for (size_t i = 0; i < d_struct; ++i) {
      row[d_sem + i] *= static_cast<float>(w_struct);
    }
  }

  ann::IvfOptions ivf_options;
  ivf_options.num_centroids = options.num_centroids;
  ivf_options.max_iters = options.max_iters;
  ivf_options.seed = options.ann_seed;
  CEAFF_ASSIGN_OR_RETURN(ann::IvfIndex ivf, TrainIvf(weighted, ivf_options));

  ann::QuantizedRows quantized = ann::QuantizeRowsInt8(fused);
  index->ann_centroids = std::move(ivf.centroids);
  index->ann_lists = std::move(ivf.lists);
  index->ann_codes = std::move(quantized.codes);
  index->ann_scales = std::move(quantized.scales);
  index->ann_seed = options.ann_seed;
  // Re-finalize: validates the new sections and restamps content_crc so
  // the scrubber and the v3 serializer cover them.
  return index->Finalize();
}

}  // namespace ceaff::serve
