#include "ceaff/serve/alignment_index.h"

#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>
#include <string_view>

#include "ceaff/common/crc32.h"
#include "ceaff/common/durable_io.h"
#include "ceaff/common/failpoint.h"
#include "ceaff/common/mmap_file.h"
#include "ceaff/common/string_util.h"

namespace ceaff::serve {

namespace {

constexpr char kMagic[8] = {'C', 'E', 'A', 'F', 'F', 'I', 'D', 'X'};
/// v2 zero-pads each embedded matrix section to kSectionAlign so the float
/// payloads are naturally aligned in the file and can be served as views
/// straight out of a memory mapping. v1 (no pads) is still read, always
/// through the heap-copy path. v3 appends the optional ANN sections (IVF
/// centroids + posting lists + int8 codes/scales) after the trigram
/// counts; an index without ANN sections serializes as v2, byte-identical
/// to pre-ANN writers.
constexpr uint32_t kVersionAnn = 3;
constexpr uint32_t kVersionAligned = 2;
constexpr uint32_t kMinVersion = 1;
constexpr size_t kPrefixBytes = 16;
constexpr size_t kFooterBytes = 4;
constexpr size_t kTrigramWidth = 3;
constexpr size_t kSectionAlign = alignof(float);
// The body starts right after the fixed prefix; prefix size being a
// multiple of the alignment makes body-relative offsets equal file offsets
// modulo kSectionAlign, so the writer's AlignTo(pad) counter aligns the
// payloads within the *file* (and hence within a page-aligned mapping).
static_assert(kPrefixBytes % kSectionAlign == 0,
              "body-relative alignment must match file alignment");

/// Caps any single declared collection so a corrupted count can never
/// trigger a multi-gigabyte allocation before the CRC verdict.
constexpr uint64_t kMaxDeclaredElems = 1ull << 32;

struct Prefix {
  char magic[8];
  uint32_t version;
  uint32_t reserved;
};
static_assert(sizeof(Prefix) == kPrefixBytes, "index prefix must pack");

/// Serialisation cursor over `out` that feeds every byte into one CRC and
/// tracks the body-relative position so AlignTo can pad matrix payloads.
class CrcWriter {
 public:
  CrcWriter(std::ostream& out, Crc32* crc) : out_(out), crc_(crc) {}

  void Bytes(const void* data, size_t len) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(len));
    crc_->Update(data, len);
    pos_ += len;
  }
  void U32(uint32_t v) { Bytes(&v, sizeof(v)); }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void F32(float v) { Bytes(&v, sizeof(v)); }
  void F64(double v) { Bytes(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Bytes(s.data(), s.size());
  }
  /// Zero-pads the body up to the next multiple of `align`.
  void AlignTo(size_t align) {
    static constexpr char kZeros[8] = {0};
    const size_t rem = pos_ % align;
    if (rem != 0) Bytes(kZeros, align - rem);
  }

  bool ok() const { return static_cast<bool>(out_); }

 private:
  std::ostream& out_;
  Crc32* crc_;
  size_t pos_ = 0;  // bytes written so far, relative to the body start
};

/// Deserialisation cursor over the in-memory body (heap buffer or file
/// mapping). All reads are bounds-checked; the caller verifies the file
/// CRC *before* trusting any parsed value, so failures here mean a
/// writer/reader format disagreement (kDataLoss), never a crash.
class Reader {
 public:
  explicit Reader(std::string_view buf) : buf_(buf) {}

  bool Bytes(void* data, size_t len) {
    if (len > buf_.size() - pos_) return false;
    std::memcpy(data, buf_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  bool U32(uint32_t* v) { return Bytes(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Bytes(v, sizeof(*v)); }
  bool F32(float* v) { return Bytes(v, sizeof(*v)); }
  bool F64(double* v) { return Bytes(v, sizeof(*v)); }
  bool Str(std::string* s) {
    uint32_t len = 0;
    if (!U32(&len)) return false;
    if (len > kMaxDeclaredElems) return false;
    if (len > buf_.size() - pos_) return false;
    s->assign(buf_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  bool Skip(size_t len) {
    if (len > buf_.size() - pos_) return false;
    pos_ += len;
    return true;
  }
  /// Skips the pad the writer's AlignTo emitted at this position.
  bool SkipAlignment(size_t align) {
    const size_t rem = pos_ % align;
    return rem == 0 || Skip(align - rem);
  }

  const char* cursor() const { return buf_.data() + pos_; }
  size_t remaining() const { return buf_.size() - pos_; }
  bool AtEnd() const { return pos_ == buf_.size(); }

 private:
  std::string_view buf_;
  size_t pos_ = 0;
};

Status WriteBody(const AlignmentIndex& index, std::ostream& out, Crc32* crc) {
  CrcWriter w(out, crc);
  w.Str(index.dataset);
  w.U64(index.source_names.size());
  w.U64(index.target_names.size());
  w.U64(index.pairs.size());
  w.F64(index.weight_structural);
  w.F64(index.weight_semantic);
  w.F64(index.weight_string);
  w.U64(index.semantic_seed);
  for (const std::string& name : index.source_names) w.Str(name);
  for (const std::string& name : index.target_names) w.Str(name);
  for (const AlignedPair& p : index.pairs) {
    w.U32(p.source);
    w.U32(p.target);
    w.F32(p.score);
  }
  for (const la::Matrix* m :
       {&index.source_name_emb, &index.target_name_emb,
        &index.source_struct_emb, &index.target_struct_emb}) {
    // la/matrix_io section framing (rows, cols, row-major payload), padded
    // so the payload lands on a kSectionAlign boundary: the loader can then
    // point a Matrix view at the mapped bytes without misaligned reads.
    w.AlignTo(kSectionAlign);
    w.U64(m->rows());
    w.U64(m->cols());
    if (m->size() > 0) w.Bytes(m->data(), m->size() * sizeof(float));
  }
  w.U64(index.trigram_keys.size());
  for (size_t i = 0; i < index.trigram_keys.size(); ++i) {
    w.Str(index.trigram_keys[i]);
    w.U32(static_cast<uint32_t>(index.trigram_postings[i].size()));
    for (uint32_t id : index.trigram_postings[i]) w.U32(id);
  }
  for (uint32_t c : index.target_trigram_counts) w.U32(c);
  if (index.has_ann()) {
    // ANN sections (v3 only — has_ann() drives the serialized version, so
    // a v2 reader never sees these bytes). The float matrices reuse the
    // aligned section framing and are zero-copy-able like any other; the
    // int8 code payload is aligned too, purely for frame symmetry.
    w.U64(index.ann_seed);
    for (const la::Matrix* m : {&index.ann_centroids, &index.ann_scales}) {
      w.AlignTo(kSectionAlign);
      w.U64(m->rows());
      w.U64(m->cols());
      if (m->size() > 0) w.Bytes(m->data(), m->size() * sizeof(float));
    }
    w.U64(index.ann_lists.size());
    for (const std::vector<uint32_t>& list : index.ann_lists) {
      w.U32(static_cast<uint32_t>(list.size()));
      for (uint32_t id : list) w.U32(id);
    }
    w.AlignTo(kSectionAlign);
    w.U64(index.ann_codes.rows());
    w.U64(index.ann_codes.cols());
    if (index.ann_codes.size() > 0) {
      w.Bytes(index.ann_codes.data(), index.ann_codes.size());
    }
  }
  if (!w.ok()) return Status::IOError("index body write failed");
  return Status::OK();
}

/// Reads one matrix section at the cursor. v2 bodies (`padded`) carry an
/// alignment pad before the section; when `zero_copy` is set and the
/// payload sits on an aligned address, the result is a view into `r`'s
/// buffer (the caller owns keeping that buffer alive), otherwise a copy.
StatusOr<la::Matrix> ReadMatrixAt(Reader& r, bool padded, bool zero_copy) {
  if (padded && !r.SkipAlignment(kSectionAlign)) {
    return Status::DataLoss("cannot read matrix section padding");
  }
  uint64_t rows = 0, cols = 0;
  if (!r.U64(&rows) || !r.U64(&cols)) {
    return Status::DataLoss("cannot read matrix section shape");
  }
  const uint64_t elems = rows * cols;
  if (cols != 0 && rows != elems / cols) {
    return Status::DataLoss("matrix section shape overflows");
  }
  if (elems > r.remaining() / sizeof(float)) {
    return Status::DataLoss("matrix section truncated");
  }
  const char* payload = r.cursor();
  if (!r.Skip(static_cast<size_t>(elems) * sizeof(float))) {
    return Status::DataLoss("cannot read matrix section payload");
  }
  if (elems == 0) {
    return la::Matrix(static_cast<size_t>(rows), static_cast<size_t>(cols));
  }
  if (zero_copy &&
      reinterpret_cast<uintptr_t>(payload) % alignof(float) == 0) {
    return la::Matrix::ConstView(reinterpret_cast<const float*>(payload),
                                 static_cast<size_t>(rows),
                                 static_cast<size_t>(cols));
  }
  la::Matrix m(static_cast<size_t>(rows), static_cast<size_t>(cols));
  std::memcpy(m.data(), payload, static_cast<size_t>(elems) * sizeof(float));
  return m;
}

/// Reads one int8 matrix section (same aligned framing as the float
/// sections; int8 payloads have no alignment requirement of their own, so
/// zero-copy only needs a live backing buffer).
StatusOr<ann::Int8Matrix> ReadInt8MatrixAt(Reader& r, bool zero_copy) {
  if (!r.SkipAlignment(kSectionAlign)) {
    return Status::DataLoss("cannot read int8 section padding");
  }
  uint64_t rows = 0, cols = 0;
  if (!r.U64(&rows) || !r.U64(&cols)) {
    return Status::DataLoss("cannot read int8 section shape");
  }
  const uint64_t elems = rows * cols;
  if (cols != 0 && rows != elems / cols) {
    return Status::DataLoss("int8 section shape overflows");
  }
  if (elems > r.remaining()) {
    return Status::DataLoss("int8 section truncated");
  }
  const char* payload = r.cursor();
  if (!r.Skip(static_cast<size_t>(elems))) {
    return Status::DataLoss("cannot read int8 section payload");
  }
  if (elems == 0) {
    return ann::Int8Matrix(static_cast<size_t>(rows),
                           static_cast<size_t>(cols));
  }
  if (zero_copy) {
    return ann::Int8Matrix::ConstView(
        reinterpret_cast<const int8_t*>(payload), static_cast<size_t>(rows),
        static_cast<size_t>(cols));
  }
  ann::Int8Matrix m(static_cast<size_t>(rows), static_cast<size_t>(cols));
  std::memcpy(m.data(), payload, static_cast<size_t>(elems));
  return m;
}

StatusOr<AlignmentIndex> ReadBody(std::string_view body, uint32_t version,
                                  bool zero_copy) {
  const bool padded = version >= 2;
  AlignmentIndex index;
  Reader r(body);
  uint64_t n_src = 0, n_tgt = 0, n_pairs = 0;
  if (!r.Str(&index.dataset) || !r.U64(&n_src) || !r.U64(&n_tgt) ||
      !r.U64(&n_pairs) || !r.F64(&index.weight_structural) ||
      !r.F64(&index.weight_semantic) || !r.F64(&index.weight_string) ||
      !r.U64(&index.semantic_seed)) {
    return Status::DataLoss("cannot read index header");
  }
  if (n_src > kMaxDeclaredElems || n_tgt > kMaxDeclaredElems ||
      n_pairs > kMaxDeclaredElems) {
    return Status::DataLoss("index header declares absurd sizes");
  }
  index.source_names.resize(n_src);
  for (std::string& name : index.source_names) {
    if (!r.Str(&name)) return Status::DataLoss("cannot read source names");
  }
  index.target_names.resize(n_tgt);
  for (std::string& name : index.target_names) {
    if (!r.Str(&name)) return Status::DataLoss("cannot read target names");
  }
  index.pairs.resize(n_pairs);
  for (AlignedPair& p : index.pairs) {
    if (!r.U32(&p.source) || !r.U32(&p.target) || !r.F32(&p.score)) {
      return Status::DataLoss("cannot read alignment pairs");
    }
  }
  for (la::Matrix* m :
       {&index.source_name_emb, &index.target_name_emb,
        &index.source_struct_emb, &index.target_struct_emb}) {
    auto section = ReadMatrixAt(r, padded, zero_copy);
    if (!section.ok()) return section.status();
    *m = std::move(section).value();
  }
  uint64_t n_keys = 0;
  if (!r.U64(&n_keys) || n_keys > kMaxDeclaredElems) {
    return Status::DataLoss("cannot read trigram table size");
  }
  index.trigram_keys.resize(n_keys);
  index.trigram_postings.resize(n_keys);
  for (size_t i = 0; i < n_keys; ++i) {
    uint32_t n_ids = 0;
    if (!r.Str(&index.trigram_keys[i]) || !r.U32(&n_ids) ||
        n_ids > kMaxDeclaredElems) {
      return Status::DataLoss("cannot read trigram posting list");
    }
    index.trigram_postings[i].resize(n_ids);
    for (uint32_t& id : index.trigram_postings[i]) {
      if (!r.U32(&id)) {
        return Status::DataLoss("cannot read trigram posting list");
      }
    }
  }
  index.target_trigram_counts.resize(n_tgt);
  for (uint32_t& c : index.target_trigram_counts) {
    if (!r.U32(&c)) return Status::DataLoss("cannot read trigram counts");
  }
  if (version >= kVersionAnn) {
    if (!r.U64(&index.ann_seed)) {
      return Status::DataLoss("cannot read ann header");
    }
    for (la::Matrix* m : {&index.ann_centroids, &index.ann_scales}) {
      auto section = ReadMatrixAt(r, /*padded=*/true, zero_copy);
      if (!section.ok()) return section.status();
      *m = std::move(section).value();
    }
    uint64_t n_lists = 0;
    if (!r.U64(&n_lists) || n_lists > kMaxDeclaredElems) {
      return Status::DataLoss("cannot read ann posting table size");
    }
    index.ann_lists.resize(n_lists);
    for (std::vector<uint32_t>& list : index.ann_lists) {
      uint32_t n_ids = 0;
      if (!r.U32(&n_ids) || n_ids > kMaxDeclaredElems) {
        return Status::DataLoss("cannot read ann posting list");
      }
      list.resize(n_ids);
      for (uint32_t& id : list) {
        if (!r.U32(&id)) {
          return Status::DataLoss("cannot read ann posting list");
        }
      }
    }
    auto codes = ReadInt8MatrixAt(r, zero_copy);
    if (!codes.ok()) return codes.status();
    index.ann_codes = std::move(codes).value();
  }
  // Trailing slack after a clean parse means the writer and reader disagree
  // about the format — refuse rather than serve a partial view.
  if (!r.AtEnd()) {
    return Status::DataLoss("trailing bytes after index body");
  }
  return index;
}

/// Discards everything written to it; lets ComputeContentCrc run the
/// canonical WriteBody serialization purely for its CRC side channel.
struct NullBuffer : std::streambuf {
  int overflow(int c) override { return c; }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    return n;
  }
};

}  // namespace

uint32_t AlignmentIndex::ComputeContentCrc() const {
  NullBuffer sink;
  std::ostream null_stream(&sink);
  Crc32 crc;
  (void)WriteBody(*this, null_stream, &crc);
  return crc.value();
}

std::vector<std::string> NameTrigrams(const std::string& name) {
  std::vector<std::string> grams;
  if (name.empty()) return grams;
  std::string padded;
  padded.reserve(name.size() + 2 * (kTrigramWidth - 1));
  padded.append(kTrigramWidth - 1, '^');
  padded.append(name);
  padded.append(kTrigramWidth - 1, '$');
  grams.reserve(padded.size() - kTrigramWidth + 1);
  for (size_t i = 0; i + kTrigramWidth <= padded.size(); ++i) {
    grams.emplace_back(padded.substr(i, kTrigramWidth));
  }
  std::sort(grams.begin(), grams.end());
  grams.erase(std::unique(grams.begin(), grams.end()), grams.end());
  return grams;
}

Status AlignmentIndex::Finalize() {
  const size_t n_src = source_names.size();
  const size_t n_tgt = target_names.size();
  auto bad = [](const std::string& what) {
    return Status::DataLoss("alignment index invalid: " + what);
  };
  auto check_rows = [&](const la::Matrix& m, size_t n,
                        const char* what) -> Status {
    if (!m.empty() && m.rows() != n) {
      return bad(StrFormat("%s has %zu rows for %zu entities", what,
                           m.rows(), n));
    }
    return Status::OK();
  };
  CEAFF_RETURN_IF_ERROR(check_rows(source_name_emb, n_src, "source_name_emb"));
  CEAFF_RETURN_IF_ERROR(check_rows(target_name_emb, n_tgt, "target_name_emb"));
  CEAFF_RETURN_IF_ERROR(
      check_rows(source_struct_emb, n_src, "source_struct_emb"));
  CEAFF_RETURN_IF_ERROR(
      check_rows(target_struct_emb, n_tgt, "target_struct_emb"));
  if (source_name_emb.cols() != target_name_emb.cols()) {
    return bad("semantic embedding dimensions disagree");
  }
  if (source_struct_emb.cols() != target_struct_emb.cols()) {
    return bad("structural embedding dimensions disagree");
  }
  const double wsum = weight_structural + weight_semantic + weight_string;
  if (weight_structural < 0 || weight_semantic < 0 || weight_string < 0 ||
      !(std::abs(wsum - 1.0) < 1e-6)) {
    return bad("fusion weights are not a probability simplex");
  }
  if (trigram_postings.size() != trigram_keys.size()) {
    return bad("trigram keys/postings size mismatch");
  }
  if (target_trigram_counts.size() != n_tgt) {
    return bad("trigram counts cover the wrong number of targets");
  }
  if (has_ann()) {
    const size_t fused_dim = target_name_emb.cols() + target_struct_emb.cols();
    if (fused_dim == 0 || ann_centroids.cols() != fused_dim) {
      return bad("ann centroid dimension disagrees with the fused embedding");
    }
    if (ann_lists.size() != ann_centroids.rows()) {
      return bad("ann posting table size disagrees with the centroid count");
    }
    if (ann_codes.rows() != n_tgt || ann_codes.cols() != fused_dim) {
      return bad("ann code section has the wrong shape");
    }
    if (ann_scales.rows() != n_tgt || ann_scales.cols() != 1) {
      return bad("ann scale section has the wrong shape");
    }
    size_t assigned = 0;
    for (const std::vector<uint32_t>& list : ann_lists) {
      for (uint32_t id : list) {
        if (id >= n_tgt) return bad("ann posting references bad target");
      }
      assigned += list.size();
    }
    // The lists must partition the target id space: every target is
    // findable through exactly one probed cell.
    if (assigned != n_tgt) {
      return bad("ann posting lists do not partition the targets");
    }
  } else if (!ann_lists.empty() || !ann_codes.empty() ||
             !ann_scales.empty()) {
    return bad("partial ann sections (no centroids)");
  }

  pair_by_source.clear();
  pair_by_source.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    const AlignedPair& p = pairs[i];
    if (p.source >= n_src || p.target >= n_tgt) {
      return bad("alignment pair references an out-of-range entity");
    }
    if (!pair_by_source.emplace(p.source, static_cast<uint32_t>(i)).second) {
      return bad("two alignment pairs share a source entity");
    }
  }
  source_by_name.clear();
  source_by_name.reserve(n_src);
  for (size_t i = 0; i < n_src; ++i) {
    source_by_name.emplace(source_names[i], static_cast<uint32_t>(i));
  }
  trigram_index.clear();
  trigram_index.reserve(trigram_keys.size());
  for (size_t i = 0; i < trigram_keys.size(); ++i) {
    for (uint32_t id : trigram_postings[i]) {
      if (id >= n_tgt) return bad("trigram posting references bad target");
    }
    if (!trigram_index.emplace(trigram_keys[i], static_cast<uint32_t>(i))
             .second) {
      return bad("duplicate trigram key");
    }
  }
  content_crc = ComputeContentCrc();
  return Status::OK();
}

StatusOr<AlignmentIndex> BuildAlignmentIndex(AlignmentIndexInput input) {
  if (input.weights.size() != 3) {
    return Status::InvalidArgument(
        "expected 3 weights (structural, semantic, string)");
  }
  double wsum = 0.0;
  for (double w : input.weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      return Status::InvalidArgument("fusion weights must be finite and >= 0");
    }
    wsum += w;
  }
  if (wsum <= 0.0) {
    return Status::InvalidArgument("fusion weights must not all be zero");
  }

  AlignmentIndex index;
  index.dataset = std::move(input.dataset);
  index.source_names = std::move(input.source_names);
  index.target_names = std::move(input.target_names);
  index.pairs = std::move(input.pairs);
  index.weight_structural = input.weights[0] / wsum;
  index.weight_semantic = input.weights[1] / wsum;
  index.weight_string = input.weights[2] / wsum;
  index.semantic_seed = input.semantic_seed;
  index.source_name_emb = std::move(input.source_name_emb);
  index.target_name_emb = std::move(input.target_name_emb);
  index.source_struct_emb = std::move(input.source_struct_emb);
  index.target_struct_emb = std::move(input.target_struct_emb);

  std::sort(index.pairs.begin(), index.pairs.end(),
            [](const AlignedPair& a, const AlignedPair& b) {
              return a.source < b.source;
            });

  // Trigram posting lists over the target vocabulary. std::map keeps the
  // serialized key order deterministic.
  std::map<std::string, std::vector<uint32_t>> postings;
  index.target_trigram_counts.resize(index.target_names.size());
  for (size_t t = 0; t < index.target_names.size(); ++t) {
    std::vector<std::string> grams = NameTrigrams(index.target_names[t]);
    index.target_trigram_counts[t] = static_cast<uint32_t>(grams.size());
    for (const std::string& g : grams) {
      postings[g].push_back(static_cast<uint32_t>(t));
    }
  }
  index.trigram_keys.reserve(postings.size());
  index.trigram_postings.reserve(postings.size());
  for (auto& [key, ids] : postings) {
    index.trigram_keys.push_back(key);
    index.trigram_postings.push_back(std::move(ids));
  }

  Status finalized = index.Finalize();
  if (!finalized.ok()) {
    // Builder-side violations are caller bugs, not corruption.
    return Status::InvalidArgument(finalized.message());
  }
  return index;
}

namespace {

bool IsDirectory(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

/// The artifact name an index directory stores its generations under.
constexpr char kGenerationalArtifact[] = "index";

GenerationalStore::Options IndexStoreOptions(size_t keep_generations) {
  GenerationalStore::Options options;
  options.keep_generations = keep_generations;
  options.failpoint_scope = "index";
  return options;
}

/// Shared parse of one complete container image: prefix, CRC verdict,
/// body, Finalize. `label` names the source in error messages; `backing`
/// (optional) is the mapping the bytes live in — passing it enables the
/// v2 zero-copy path and hands ownership to the returned index.
StatusOr<AlignmentIndex> ParseIndexBytes(
    std::string_view bytes, const std::string& label,
    std::shared_ptr<const MappedFile> backing) {
  // Settle the CRC verdict up front — every later parse step then runs
  // over bytes known to be exactly what the writer produced (size caps
  // above still guard against writer bugs).
  if (bytes.size() < kPrefixBytes + kFooterBytes) {
    return Status::DataLoss(
        StrFormat("%s: truncated index (%zu bytes, need at least %zu)",
                  label.c_str(), bytes.size(), kPrefixBytes + kFooterBytes));
  }
  Prefix prefix;
  std::memcpy(&prefix, bytes.data(), sizeof(prefix));
  if (std::memcmp(prefix.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::DataLoss(label +
                            ": bad magic, not a CEAFF alignment index");
  }
  if (prefix.version < kMinVersion || prefix.version > kVersionAnn) {
    return Status::DataLoss(
        StrFormat("%s: unsupported index version %u (expected %u..%u)",
                  label.c_str(), prefix.version, kMinVersion, kVersionAnn));
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - kFooterBytes,
              sizeof(stored_crc));
  const uint32_t computed_crc =
      Crc32Of(bytes.data(), bytes.size() - kFooterBytes);
  if (computed_crc != stored_crc) {
    return Status::DataLoss(StrFormat(
        "%s: CRC mismatch (stored %08x, computed %08x) — corrupted index",
        label.c_str(), stored_crc, computed_crc));
  }

  // Zero-copy needs both the aligned (v2) layout and a mapping whose
  // lifetime the index can own; v1 files and heap loads always copy.
  const bool zero_copy = backing != nullptr && prefix.version >= 2;
  const std::string_view body = bytes.substr(
      kPrefixBytes, bytes.size() - kPrefixBytes - kFooterBytes);
  auto index = ReadBody(body, prefix.version, zero_copy);
  if (!index.ok()) {
    return Status::DataLoss(label + ": " + index.status().message());
  }
  if (zero_copy) index->backing = std::move(backing);
  Status finalized = index->Finalize();
  if (!finalized.ok()) {
    return Status::DataLoss(label + ": " + finalized.message());
  }
  return index;
}

/// Loads one container file: mmap-first zero-copy, heap fallback.
StatusOr<AlignmentIndex> LoadAlignmentIndexFile(const std::string& path) {
  // Preferred path: map the artifact read-only and serve the matrix
  // payloads zero-copy. Any mapping failure — exotic filesystem, resource
  // exhaustion, or the "index.load.mmap" failpoint in tests — falls back
  // to slurping the file onto the heap; both paths parse the exact same
  // bytes and produce identical indexes.
  std::shared_ptr<const MappedFile> backing;
  std::string heap_bytes;
  std::string_view bytes;
  if (failpoint::Hit("index.load.mmap").ok()) {
    auto mapped = MappedFile::Open(path);
    if (mapped.ok()) {
      backing = std::make_shared<const MappedFile>(std::move(mapped).value());
      bytes = std::string_view(backing->data(), backing->size());
    }
  }
  if (backing == nullptr) {
    CEAFF_ASSIGN_OR_RETURN(heap_bytes, ReadFileToString(path));
    bytes = heap_bytes;
  }
  return ParseIndexBytes(bytes, path, std::move(backing));
}

/// Generational-directory read: let the store settle quarantine (corrupt
/// newer generations renamed `*.corrupt`, older ones tried), then serve
/// the surviving generation through the regular mmap file path.
StatusOr<AlignmentIndex> LoadAlignmentIndexGenerational(
    const std::string& dir) {
  GenerationalStore store(dir, IndexStoreOptions(/*keep_generations=*/2));
  CEAFF_RETURN_IF_ERROR(store.Init());
  // Get() walks newest-first with full validation and quarantines every
  // generation that fails — after it returns OK, CurrentPath() names a
  // generation known good a moment ago.
  CEAFF_ASSIGN_OR_RETURN(
      std::string bytes,
      store.Get(kGenerationalArtifact, ValidateAlignmentIndexBytes));
  auto current = store.CurrentPath(kGenerationalArtifact);
  if (current.ok()) {
    auto index = LoadAlignmentIndexFile(current.value());
    if (index.ok()) return index;
  }
  // The generation file vanished or changed between Get and the mmap load
  // (concurrent exporter GC'ing the keep window). The validated bytes in
  // hand are still authoritative — parse them heap-side.
  return ParseIndexBytes(bytes, dir + " (generational)", nullptr);
}

}  // namespace

StatusOr<std::string> SerializeAlignmentIndex(const AlignmentIndex& index) {
  Prefix prefix;
  std::memcpy(prefix.magic, kMagic, sizeof(kMagic));
  // ANN-less indexes keep writing v2 so their artifacts stay byte-identical
  // to pre-ANN exports (and older readers keep loading them).
  prefix.version = index.has_ann() ? kVersionAnn : kVersionAligned;
  prefix.reserved = 0;

  std::ostringstream out(std::ios::binary);
  Crc32 crc;
  crc.Update(&prefix, sizeof(prefix));
  out.write(reinterpret_cast<const char*>(&prefix), sizeof(prefix));
  Status body = WriteBody(index, out, &crc);
  if (!body.ok()) return Status::IOError("index serialization failed");
  const uint32_t checksum = crc.value();
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  if (!out) return Status::IOError("index serialization failed");
  return std::move(out).str();
}

Status ValidateAlignmentIndexBytes(const std::string& bytes) {
  return ParseIndexBytes(bytes, "candidate index bytes", nullptr).status();
}

Status SaveAlignmentIndexGenerational(const AlignmentIndex& index,
                                      const std::string& dir,
                                      size_t keep_generations) {
  CEAFF_ASSIGN_OR_RETURN(std::string bytes, SerializeAlignmentIndex(index));
  GenerationalStore store(dir, IndexStoreOptions(keep_generations));
  CEAFF_RETURN_IF_ERROR(store.Init());
  return store.Put(kGenerationalArtifact, bytes);
}

Status SaveAlignmentIndex(const AlignmentIndex& index,
                          const std::string& path) {
  if (IsDirectory(path)) {
    return SaveAlignmentIndexGenerational(index, path);
  }
  // Serialize the whole container in memory, then publish it with the
  // crash-durable protocol (unique temp name, fsync of file and
  // directory). Concurrent exporters to the same path no longer race on a
  // shared temp file, and a kill -9 at any point leaves either the old
  // index or the new one.
  CEAFF_ASSIGN_OR_RETURN(std::string bytes, SerializeAlignmentIndex(index));
  return WriteFileAtomic(path, std::move(bytes), "index");
}

StatusOr<AlignmentIndex> LoadAlignmentIndex(const std::string& path) {
  if (IsDirectory(path)) {
    return LoadAlignmentIndexGenerational(path);
  }
  return LoadAlignmentIndexFile(path);
}

StatusOr<uint64_t> AlignmentIndexDirGeneration(const std::string& path) {
  if (!IsDirectory(path)) {
    return Status::NotFound(path + " is not a generational index directory");
  }
  GenerationalStore store(path, IndexStoreOptions(/*keep_generations=*/2));
  CEAFF_RETURN_IF_ERROR(store.Init());
  return store.CurrentGeneration(kGenerationalArtifact);
}

StatusOr<std::string> AlignmentIndexDirCurrentFile(const std::string& path) {
  if (!IsDirectory(path)) {
    return Status::NotFound(path + " is not a generational index directory");
  }
  GenerationalStore store(path, IndexStoreOptions(/*keep_generations=*/2));
  CEAFF_RETURN_IF_ERROR(store.Init());
  return store.CurrentPath(kGenerationalArtifact);
}

Status QuarantineAlignmentIndexGeneration(const std::string& path,
                                          uint64_t gen) {
  if (!IsDirectory(path)) {
    return Status::NotFound(path + " is not a generational index directory");
  }
  GenerationalStore store(path, IndexStoreOptions(/*keep_generations=*/2));
  CEAFF_RETURN_IF_ERROR(store.Init());
  return store.Quarantine(kGenerationalArtifact, gen);
}

}  // namespace ceaff::serve
