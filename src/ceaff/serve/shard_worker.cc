#include "ceaff/serve/shard_worker.h"

#include <cstdio>
#include <memory>
#include <utility>

#include "ceaff/common/cancellation.h"
#include "ceaff/common/failpoint.h"
#include "ceaff/serve/alignment_index.h"
#include "ceaff/serve/topk_scan.h"
#include "ceaff/text/word_embedding.h"

namespace ceaff::serve {

namespace {

/// Decoded kTopKRequest body.
struct TopKRequest {
  std::string query;
  uint64_t k = 0;
  bool allow_structural = true;
  uint64_t deadline_ms = 0;  // 0 = no deadline
};

bool DecodeTopKRequest(const std::string& payload, TopKRequest* request) {
  BinReader reader(payload);
  uint8_t allow = 0;
  if (!reader.Str(&request->query) || !reader.U64(&request->k) ||
      !reader.U8(&allow) || !reader.U64(&request->deadline_ms)) {
    return false;
  }
  request->allow_structural = allow != 0;
  return reader.Done();
}

}  // namespace

int ShardWorkerMain(MessagePipe pipe, const ShardConfig& config) {
  if (!config.failpoint_spec.empty()) {
    // Replace (not merge) the inherited arms: a drill targets ONE shard,
    // and the spec the router hands this child is the complete picture.
    const Status armed = failpoint::Configure(config.failpoint_spec);
    if (!armed.ok()) {
      std::fprintf(stderr, "shard %zu: bad failpoint spec: %s\n",
                   config.shard_id, armed.ToString().c_str());
      return 1;
    }
  }

  auto index_or = LoadAlignmentIndex(config.index_path);
  if (!index_or.ok()) {
    std::fprintf(stderr, "shard %zu: cannot load index: %s\n",
                 config.shard_id, index_or.status().ToString().c_str());
    return 3;
  }
  const AlignmentIndex index = std::move(index_or).value();
  // Same query-side embedder the single-process service builds — scores
  // must not depend on which process computes them.
  const text::WordEmbeddingStore embedder(
      index.target_name_emb.cols() > 0 ? index.target_name_emb.cols()
                                       : index.source_name_emb.cols(),
      index.semantic_seed);

  TopKScanRange range;
  range.begin = config.target_begin;
  range.end = config.target_end;

  for (;;) {
    auto message_or = pipe.Recv(/*timeout_ms=*/-1);
    if (!message_or.ok()) {
      // EOF means the router is gone; a worker with no router has no
      // purpose. Anything else is a framing bug — exit nonzero so the
      // supervisor's waitpid sees an abnormal death.
      return message_or.status().IsUnavailable() ? 0 : 1;
    }
    const IpcMessage& message = message_or.value();
    Status sent = Status::OK();
    switch (message.type) {
      case IpcType::kPing: {
        BinWriter w;
        w.U64(range.begin);
        w.U64(range.end);
        w.U64(config.generation);
        sent = pipe.Send(IpcType::kPong, w.Take());
        break;
      }
      case IpcType::kTopKRequest: {
        TopKRequest request;
        if (!DecodeTopKRequest(message.payload, &request)) {
          sent = pipe.Send(
              IpcType::kTopKResponse,
              EncodeTopKResponse(
                  Status::DataLoss("shard received malformed topk request")));
          break;
        }
        CancellationToken token;
        const CancellationToken* cancel = nullptr;
        if (request.deadline_ms > 0) {
          token.SetDeadlineAfterMillis(
              static_cast<int64_t>(request.deadline_ms));
          cancel = &token;
        }
        StatusOr<TopKResult> result =
            TopKScan(index, embedder, request.query, request.k,
                     request.allow_structural, cancel, range, config.ann);
        if (result.ok()) result->generation = config.generation;
        sent = pipe.Send(IpcType::kTopKResponse, EncodeTopKResponse(result));
        break;
      }
      case IpcType::kPairRequest: {
        BinReader reader(message.payload);
        std::string name;
        StatusOr<PairAnswer> answer =
            reader.Str(&name) && reader.Done()
                ? LookupPairInIndex(index, name)
                : StatusOr<PairAnswer>(Status::DataLoss(
                      "shard received malformed pair request"));
        sent = pipe.Send(IpcType::kPairResponse, EncodePairResponse(answer));
        break;
      }
      case IpcType::kShutdown:
        return 0;
      case IpcType::kDrain:
        // Rolling-reload handoff: the ack tells the router this worker left
        // the fleet at a frame boundary (no reply will ever be torn). Exit
        // immediately after — the replacement process is already queued.
        (void)pipe.Send(IpcType::kDrainAck, "");
        return 0;
      default:
        // An unknown request type on a CRC-clean frame is a version skew
        // between router and worker — impossible for fork children, fatal
        // if it ever happens.
        std::fprintf(stderr, "shard %zu: unknown ipc message type %u\n",
                     config.shard_id,
                     static_cast<unsigned>(message.type));
        return 1;
    }
    if (!sent.ok()) {
      return sent.IsUnavailable() ? 0 : 1;
    }
  }
}

}  // namespace ceaff::serve
