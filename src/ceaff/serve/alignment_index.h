#ifndef CEAFF_SERVE_ALIGNMENT_INDEX_H_
#define CEAFF_SERVE_ALIGNMENT_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ceaff/ann/quantize.h"
#include "ceaff/common/mmap_file.h"
#include "ceaff/common/statusor.h"
#include "ceaff/la/matrix.h"

namespace ceaff::serve {

/// One fused correspondence the batch pipeline committed to: test-split
/// source entity `source` aligns with target entity `target` at the given
/// fused-similarity score.
struct AlignedPair {
  uint32_t source;
  uint32_t target;
  float score;

  bool operator==(const AlignedPair& other) const {
    return source == other.source && target == other.target &&
           score == other.score;
  }
};

/// Immutable serving artifact produced by the pipeline's export stage: the
/// queryable distillation of one CEAFF run. Holds everything the
/// AlignmentService needs to answer exact pair lookups and top-k candidate
/// retrieval for unseen names — entity names, the committed alignment, the
/// per-feature entity embeddings, character-trigram lookup tables over the
/// target vocabulary, and the adaptive fusion weights the run learned
/// (flattened to one weight per serving feature).
///
/// On disk this is a single CRC-32-checksummed container (magic
/// `CEAFFIDX`), written atomically (tmp + rename); matrices are embedded
/// with the la/matrix_io section framing. Format version 2 zero-pads each
/// matrix section to a 4-byte boundary so the float payloads are naturally
/// aligned within the file; the loader memory-maps the artifact and serves
/// those payloads as read-only Matrix views straight out of the mapping
/// (no heap copy of the embedding tables). Version-1 files and any file
/// whose mapping fails are still loaded through the heap-copy path.
/// Version 3 appends the optional ANN retrieval sections (IVF centroids +
/// posting lists + int8-quantized fused embeddings, see below); exports
/// without ANN sections still write version 2, byte-identical to before. A
/// corrupted file — bad magic or version, truncation, bit flip — always
/// fails the load with kDataLoss and can never be served from.
///
/// Instances are immutable after Finalize(): the service shares one index
/// snapshot across all worker threads without locking.
struct AlignmentIndex {
  /// Provenance tag (dataset name) stamped by the exporting pipeline.
  std::string dataset;

  /// Display names of the test-split source / target entities. Row i of the
  /// embedding matrices below describes names[i].
  std::vector<std::string> source_names;
  std::vector<std::string> target_names;

  /// The committed alignment, sorted by source id (at most one pair per
  /// source — the decision stage is one-to-one).
  std::vector<AlignedPair> pairs;

  /// Adaptive fusion weights over (structural, semantic, string), the
  /// run's two-stage weights flattened to effective per-feature weights
  /// (non-negative, sum to 1). A feature absent from the run carries
  /// weight 0.
  double weight_structural = 0.0;
  double weight_semantic = 0.0;
  double weight_string = 0.0;

  /// Semantic feature: L2-normalised name embeddings (|names| x d_sem).
  la::Matrix source_name_emb;
  la::Matrix target_name_emb;

  /// Seed of the word-embedding store the exporting run used, so the
  /// service can reconstruct an equivalent hash-fallback store and embed
  /// *unseen* query names into the same space. Runs that loaded pretrained
  /// explicit vectors are approximated by the fallback for query-side
  /// embedding (stored entity embeddings stay exact).
  uint64_t semantic_seed = 17;

  /// Structural feature: L2-normalised GCN entity embeddings
  /// (|names| x d_gcn). Empty when the exporting run disabled the
  /// structural feature or restored it from an embedding-less checkpoint;
  /// the service then redistributes weight_structural at query time.
  la::Matrix source_struct_emb;
  la::Matrix target_struct_emb;

  /// Character-trigram posting lists over the padded target names (set
  /// semantics: each target id appears at most once per trigram, sorted
  /// ascending). trigram_postings[i] belongs to trigram_keys[i].
  std::vector<std::string> trigram_keys;
  std::vector<std::vector<uint32_t>> trigram_postings;
  /// |distinct padded trigrams| per target name — the denominator of the
  /// query-time set-Dice string score.
  std::vector<uint32_t> target_trigram_counts;

  // ---- ANN retrieval sections (format v3; DESIGN.md §13) ----------------
  //
  // Optional: built offline by the export stage (serve/ann_build.h) from
  // the fused per-target dense vector [name_emb ; struct_emb]. When absent
  // (v1/v2 artifacts or exports with --export_ann=false) every field below
  // is empty and TopKScan serves exhaustively.

  /// IVF coarse index: k-means centroids over the fused target vectors
  /// (num_centroids x fused_dim) and one posting list per centroid holding
  /// the target ids assigned to it (ascending; the lists partition the
  /// target id space).
  la::Matrix ann_centroids;
  std::vector<std::vector<uint32_t>> ann_lists;
  /// Per-row symmetric int8 quantization of the fused target vectors:
  /// codes (num_targets x fused_dim) and one scale per target
  /// (num_targets x 1). The shortlist stage scores
  /// scale[t] * dot(query_fused, codes[t]); the final ordering always
  /// re-ranks with the full-precision embeddings above.
  ann::Int8Matrix ann_codes;
  la::Matrix ann_scales;
  /// Seed the IVF training ran with (provenance; not used at query time).
  uint64_t ann_seed = 0;

  /// True when this artifact carries trained ANN sections.
  bool has_ann() const { return !ann_centroids.empty(); }

  // ---- Derived lookup structures (built by Finalize, not serialized) ----

  /// CRC-32 over the serialized body of this index, stamped by Finalize().
  /// The serving layer's background scrubber periodically recomputes the
  /// body CRC of the live snapshot and compares against this value to
  /// catch in-memory corruption (bad RAM, stray writes) before it reaches
  /// query results.
  uint32_t content_crc = 0;

  /// Recomputes the body CRC from the current field values (serializes to
  /// a counting sink; no allocation proportional to the index size).
  uint32_t ComputeContentCrc() const;

  /// source entity name -> source id (first occurrence wins on duplicate
  /// names).
  std::unordered_map<std::string, uint32_t> source_by_name;
  /// source id -> index into `pairs`.
  std::unordered_map<uint32_t, uint32_t> pair_by_source;
  /// trigram -> index into trigram_postings.
  std::unordered_map<std::string, uint32_t> trigram_index;

  /// When the loader served the matrix payloads zero-copy, this keeps the
  /// underlying file mapping alive for as long as the index (the embedding
  /// matrices above are then read-only views into it). Null for
  /// heap-loaded and freshly built indexes. Copying the index materialises
  /// the views (Matrix copy semantics), so copies never depend on this.
  std::shared_ptr<const MappedFile> backing;

  size_t num_sources() const { return source_names.size(); }
  size_t num_targets() const { return target_names.size(); }

  /// Validates cross-field invariants (shapes, id ranges, weight simplex)
  /// and rebuilds the derived lookup maps. Called by the builder and the
  /// loader; kDataLoss on any violation.
  Status Finalize();
};

/// The padded byte trigrams of `name`, deduplicated and sorted — the unit
/// the index's posting lists and the query-time string score are built
/// from. Padding follows text/ngram_similarity ("^^name$$"), but with set
/// (not multiset) semantics: serving trades exact Dice multiplicities for
/// posting lists that stay one-entry-per-target.
std::vector<std::string> NameTrigrams(const std::string& name);

/// Everything the export stage hands over. Weights must be (structural,
/// semantic, string) effective weights; they are renormalised to sum to 1
/// (all-zero weight vectors are InvalidArgument).
struct AlignmentIndexInput {
  std::string dataset;
  std::vector<std::string> source_names;
  std::vector<std::string> target_names;
  std::vector<AlignedPair> pairs;
  std::vector<double> weights;
  uint64_t semantic_seed = 17;
  la::Matrix source_name_emb;
  la::Matrix target_name_emb;
  la::Matrix source_struct_emb;
  la::Matrix target_struct_emb;
};

/// Builds a finalized in-memory index: derives the trigram tables from the
/// target names, sorts pairs, validates shapes. InvalidArgument on
/// inconsistent input.
StatusOr<AlignmentIndex> BuildAlignmentIndex(AlignmentIndexInput input);

/// Serializes the index to its on-disk container bytes (prefix + body +
/// CRC-32 footer) without touching the filesystem.
StatusOr<std::string> SerializeAlignmentIndex(const AlignmentIndex& index);

/// Full validation of candidate container bytes: magic, version range,
/// whole-file CRC, body parse, and Finalize()'s cross-field invariants.
/// OK means LoadAlignmentIndex over these bytes would succeed. This is the
/// GenerationalStore validator for generational index directories.
Status ValidateAlignmentIndexBytes(const std::string& bytes);

/// Publishes the index as the next generation of the "index" artifact in a
/// GenerationalStore at `dir` (created if absent): keep-N history, CRC'd
/// MANIFEST as the commit point, failpoint scope "index". Loading the
/// directory picks the newest generation that passes full validation,
/// quarantining corrupt ones — so a torn or bit-flipped current generation
/// falls back to the previous export instead of failing the reload.
Status SaveAlignmentIndexGenerational(const AlignmentIndex& index,
                                      const std::string& dir,
                                      size_t keep_generations = 2);

/// Writes the index to `path` as one checksummed container, through
/// common/durable_io.h's WriteFileAtomic (unique temp file, fsync of both
/// the file and its directory — failpoint scope "index"). kIOError on
/// filesystem failures; the temp file is unlinked on every failure path.
///
/// When `path` is an existing directory the call routes through
/// SaveAlignmentIndexGenerational instead — `--export_index DIR/` and
/// `RELOAD DIR/` together give hot reloads a keep-N history with
/// quarantine-and-fall-back.
Status SaveAlignmentIndex(const AlignmentIndex& index,
                          const std::string& path);

/// Loads and fully validates an index artifact: magic, version (1..3),
/// CRC over the entire file, then Finalize()'s invariant checks. kIOError
/// when the file cannot be opened; kDataLoss when it exists but is
/// corrupt. Never returns a partially valid index.
///
/// Version-2 artifacts are memory-mapped and their matrix payloads served
/// as zero-copy views into the mapping (index.backing keeps it alive); the
/// CRC is still verified over the whole mapping before any byte is
/// trusted, and the background scrubber's ComputeContentCrc re-reads the
/// mapped bytes on every pass. When mmap is unavailable (or the failpoint
/// site "index.load.mmap" is armed) the loader transparently falls back to
/// the heap-copy path with identical results.
///
/// When `path` is a directory it is treated as a generational store (see
/// SaveAlignmentIndexGenerational): the newest generation that passes full
/// validation is loaded (then mmap'd zero-copy like any file); corrupt
/// newer generations are quarantined as `*.corrupt` and older ones tried.
StatusOr<AlignmentIndex> LoadAlignmentIndex(const std::string& path);

/// Store generation number the "index" artifact in a generational directory
/// currently serves (the one LoadAlignmentIndex would pick). kNotFound when
/// `path` is not a generational index directory or holds no committed
/// generation — a flat index file has no generation to pin or roll back.
StatusOr<uint64_t> AlignmentIndexDirGeneration(const std::string& path);

/// Path of the concrete generation file the directory currently serves
/// (`<path>/index.g<N>`). Shard workers load THIS file, not the directory,
/// so a respawn mid-publish cannot silently pick up a newer generation
/// under an old generation id. kNotFound for flat files / empty stores.
StatusOr<std::string> AlignmentIndexDirCurrentFile(const std::string& path);

/// Quarantines store generation `gen` of the index directory at `path`
/// (renamed `*.corrupt`, dropped from the MANIFEST) so the next load falls
/// back to the previous generation. This is the serving canary's rollback
/// hook: the generation passed every checksum but misbehaved in
/// production. Refuses to quarantine the only committed generation.
Status QuarantineAlignmentIndexGeneration(const std::string& path,
                                          uint64_t gen);

}  // namespace ceaff::serve

#endif  // CEAFF_SERVE_ALIGNMENT_INDEX_H_
