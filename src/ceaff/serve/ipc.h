#ifndef CEAFF_SERVE_IPC_H_
#define CEAFF_SERVE_IPC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "ceaff/common/statusor.h"
#include "ceaff/serve/service_types.h"

namespace ceaff::serve {

/// Wire protocol between the router/supervisor and its shard workers: a
/// stream of frames over a connected AF_UNIX SOCK_STREAM socketpair.
///
///   [u32 length][u32 crc32][body...]        (little-endian, host order —
///                                            both ends are always the same
///                                            machine, fork() children)
///
/// `length` counts the body bytes; `crc32` covers exactly the body. The
/// body's first byte is the IpcType tag, the rest is the type-specific
/// payload encoded with BinWriter/BinReader below. Error mapping on the
/// receive side, chosen so the router's failure matrix falls out of the
/// status code alone:
///
///   kUnavailable       peer closed / EPIPE / ECONNRESET — the shard died
///   kDeadlineExceeded  poll timed out — the shard is hung (or just slow)
///   kDataLoss          CRC mismatch or insane frame length — the reply is
///                      corrupt; the shard process may be fine but cannot
///                      be trusted mid-stream (framing is lost)
struct IpcMessage;

/// Message tags. The request/response pairing is by convention (each pipe
/// carries one request at a time, strictly ping-pong), not by sequence
/// numbers — the router never pipelines to a single shard.
enum class IpcType : uint8_t {
  kPing = 1,          // router -> worker: are you up? body empty
  kPong = 2,          // worker -> router: [u64 begin][u64 end][u64 generation]
  kTopKRequest = 3,   // [str query][u64 k][u8 allow_structural][u64 deadline_ms]
  kTopKResponse = 4,  // [u8 ok][Status | TopKResult]
  kPairRequest = 5,   // [str source_name]
  kPairResponse = 6,  // [u8 ok][Status | PairAnswer]
  kShutdown = 7,      // router -> worker: exit cleanly; no reply
  kDrain = 8,         // router -> worker: finish up, ack, then exit. Used by
                      // the rolling reload so a replica leaves the fleet at a
                      // frame boundary instead of mid-reply.
  kDrainAck = 9,      // worker -> router: body empty; the worker exits right
                      // after this frame is on the wire
};

struct IpcMessage {
  IpcType type = IpcType::kPing;
  std::string payload;  // body minus the tag byte
};

/// One end of a framed message pipe. Move-only owner of the socket fd.
class MessagePipe {
 public:
  MessagePipe() = default;
  /// Takes ownership of a connected stream-socket fd.
  explicit MessagePipe(int fd) : fd_(fd) {}
  ~MessagePipe() { Close(); }
  MessagePipe(MessagePipe&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  MessagePipe& operator=(MessagePipe&& other) noexcept;
  MessagePipe(const MessagePipe&) = delete;
  MessagePipe& operator=(const MessagePipe&) = delete;

  /// Creates a connected socketpair; `parent` and `child` each own one end.
  static Status CreatePair(MessagePipe* parent, MessagePipe* child);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// Writes one complete frame. kUnavailable when the peer is gone (EPIPE /
  /// ECONNRESET), kInvalidArgument on an oversized payload. The failpoint
  /// site "shard.ipc.corrupt_reply", when armed with an error action,
  /// deliberately flips the frame's CRC before sending — the corrupt-reply
  /// row of the router's failure matrix.
  Status Send(IpcType type, const std::string& payload);

  /// Reads one complete frame. `timeout_ms` < 0 blocks indefinitely; the
  /// timeout covers the whole frame, not each byte. See the header comment
  /// for the error mapping.
  StatusOr<IpcMessage> Recv(int64_t timeout_ms);

 private:
  int fd_ = -1;
};

/// Frames larger than this are rejected on both sides (kInvalidArgument on
/// send, kDataLoss on receive — an insane declared length means framing is
/// lost). Generous: the largest real message is a TopKResponse, k
/// candidates x (name + 4 floats).
inline constexpr uint32_t kMaxIpcFrameBytes = 16u << 20;

/// Little-endian-on-host primitive serialisation for message payloads.
/// Floats cross the wire as raw IEEE-754 bit patterns (memcpy through
/// uint32_t), never through text formatting — the sharded merge is only
/// bit-identical to single-process scoring if scores survive the boundary
/// exactly.
class BinWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof v); }
  void U64(uint64_t v) { Raw(&v, sizeof v); }
  void I64(int64_t v) { Raw(&v, sizeof v); }
  void F32(float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    U32(bits);
  }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.append(s);
  }
  std::string Take() { return std::move(buf_); }

 private:
  void Raw(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// Cursor over a payload. Every getter returns false on underrun and latches
/// the failure; decode functions check ok() once at the end.
class BinReader {
 public:
  explicit BinReader(const std::string& buf) : buf_(buf) {}
  // The reader only borrows the buffer; a temporary would dangle after the
  // constructor's full expression.
  explicit BinReader(std::string&&) = delete;

  bool U8(uint8_t* v) { return Raw(v, sizeof *v); }
  bool U32(uint32_t* v) { return Raw(v, sizeof *v); }
  bool U64(uint64_t* v) { return Raw(v, sizeof *v); }
  bool I64(int64_t* v) { return Raw(v, sizeof *v); }
  bool F32(float* v) {
    uint32_t bits = 0;
    if (!U32(&bits)) return false;
    std::memcpy(v, &bits, sizeof *v);
    return true;
  }
  bool Str(std::string* s) {
    uint32_t n = 0;
    if (!U32(&n)) return false;
    if (buf_.size() - pos_ < n) return Fail();
    s->assign(buf_, pos_, n);
    pos_ += n;
    return true;
  }
  /// True when every read so far succeeded AND the payload was consumed
  /// exactly (trailing garbage means a framing/versioning bug, not a
  /// shorter message).
  bool Done() const { return ok_ && pos_ == buf_.size(); }
  bool ok() const { return ok_; }

 private:
  bool Raw(void* p, size_t n) {
    if (buf_.size() - pos_ < n) return Fail();
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  bool Fail() {
    ok_ = false;
    return false;
  }
  const std::string& buf_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Payload codecs for the composite messages. Encode never fails; Decode
/// returns kDataLoss on a malformed payload (the frame CRC passed, so a
/// decode failure means the two ends disagree on the schema).
std::string EncodeStatusPayload(const Status& status);
/// Fills `*out` from the cursor; returns kDataLoss (and leaves `*out`
/// untouched) on a malformed payload.
Status DecodeStatusPayload(BinReader* reader, Status* out);

std::string EncodeTopKResult(const TopKResult& result);
StatusOr<TopKResult> DecodeTopKResult(BinReader* reader);

std::string EncodePairAnswer(const PairAnswer& answer);
StatusOr<PairAnswer> DecodePairAnswer(BinReader* reader);

/// Convenience wrappers for the `[u8 ok][Status | T]` response bodies.
std::string EncodeTopKResponse(const StatusOr<TopKResult>& result);
StatusOr<TopKResult> DecodeTopKResponse(const std::string& payload);
std::string EncodePairResponse(const StatusOr<PairAnswer>& answer);
StatusOr<PairAnswer> DecodePairResponse(const std::string& payload);

}  // namespace ceaff::serve

#endif  // CEAFF_SERVE_IPC_H_
