#include "ceaff/data/name_generator.h"

#include "ceaff/common/random.h"

namespace ceaff::data {

namespace {

constexpr char kConsonants[] = "bcdfghjklmnprstvwz";
constexpr char kVowels[] = "aeiou";

}  // namespace

std::string BaseToken(uint64_t concept_id, uint64_t seed) {
  Rng rng(Rng::SplitMix64(concept_id ^ Rng::SplitMix64(seed)));
  size_t len = 4 + rng.NextBounded(6);  // 4..9 characters
  std::string token;
  token.reserve(len);
  // Alternate consonant/vowel for pronounceable pseudo-words.
  bool consonant = rng.NextBounded(2) == 0;
  for (size_t i = 0; i < len; ++i) {
    if (consonant) {
      token.push_back(kConsonants[rng.NextBounded(sizeof(kConsonants) - 1)]);
    } else {
      token.push_back(kVowels[rng.NextBounded(sizeof(kVowels) - 1)]);
    }
    consonant = !consonant;
  }
  return token;
}

std::string SurfaceToken(uint64_t concept_id, const LanguageSpec& lang,
                         uint64_t seed) {
  if (lang.script == Script::kCjk) {
    // Unrelated pseudo-word over the Cyrillic block (2-byte UTF-8), like a
    // Chinese surface form next to an English one: no byte-level overlap.
    uint64_t lang_seed =
        HashBytes(lang.code.data(), lang.code.size(), seed ^ 0xc1cull);
    Rng rng(Rng::SplitMix64(concept_id ^ lang_seed));
    size_t len = 2 + rng.NextBounded(3);  // 2..4 "characters"
    std::string token;
    for (size_t i = 0; i < len; ++i) {
      // U+0430..U+044F -> 0xD0 0xB0 .. 0xD1 0x8F
      uint32_t cp = 0x0430 + static_cast<uint32_t>(rng.NextBounded(32));
      token.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      token.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
    return token;
  }
  std::string token = BaseToken(concept_id, seed);
  if (lang.edit_fraction <= 0.0) return token;
  uint64_t lang_seed =
      HashBytes(lang.code.data(), lang.code.size(), seed ^ 0x1a76ull);
  Rng rng(Rng::SplitMix64(concept_id ^ lang_seed));
  size_t edits = static_cast<size_t>(lang.edit_fraction *
                                     static_cast<double>(token.size()));
  for (size_t e = 0; e < edits && !token.empty(); ++e) {
    size_t pos = rng.NextBounded(token.size());
    switch (rng.NextBounded(3)) {
      case 0:  // substitution
        token[pos] = kConsonants[rng.NextBounded(sizeof(kConsonants) - 1)];
        break;
      case 1:  // insertion
        token.insert(token.begin() + static_cast<long>(pos),
                     kVowels[rng.NextBounded(sizeof(kVowels) - 1)]);
        break;
      default:  // deletion (keep a minimum length of 2)
        if (token.size() > 2) token.erase(token.begin() + static_cast<long>(pos));
        break;
    }
  }
  return token;
}

}  // namespace ceaff::data
