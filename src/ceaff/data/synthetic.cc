#include "ceaff/data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "ceaff/common/logging.h"
#include "ceaff/common/random.h"
#include "ceaff/common/string_util.h"
#include "ceaff/text/tokenizer.h"

namespace ceaff::data {

namespace {

/// Concept-id block for entity-specific (rare) head concepts.
constexpr uint64_t kHeadConceptBase = 1'000'000;

/// Samples an index proportional to `cumulative` (an inclusive prefix-sum
/// array of positive weights).
size_t SampleCumulative(const std::vector<double>& cumulative, Rng* rng) {
  double total = cumulative.back();
  double x = rng->NextDouble() * total;
  auto it = std::lower_bound(cumulative.begin(), cumulative.end(), x);
  size_t idx = static_cast<size_t>(it - cumulative.begin());
  return std::min(idx, cumulative.size() - 1);
}

struct WorldEntity {
  uint64_t head_concept;
  std::vector<uint64_t> modifiers;
};

/// All concepts of one entity in display order (modifiers first, head
/// last — "saline upper gavopi" style).
std::vector<uint64_t> ConceptsInOrder(const WorldEntity& e) {
  std::vector<uint64_t> out = e.modifiers;
  out.push_back(e.head_concept);
  return out;
}

Status ValidateOptions(const SyntheticKgOptions& o) {
  if (o.num_entities == 0) {
    return Status::InvalidArgument("num_entities must be positive");
  }
  if (o.num_relations == 0) {
    return Status::InvalidArgument("num_relations must be positive");
  }
  auto prob_ok = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!prob_ok(o.triple_keep_prob) || !prob_ok(o.name_token_drop) ||
      !prob_ok(o.seed_fraction) || !prob_ok(o.lang1.oov_rate) ||
      !prob_ok(o.lang2.oov_rate)) {
    return Status::InvalidArgument("probability option outside [0, 1]");
  }
  if (o.avg_degree < 0.0 || o.noise_triple_frac < 0.0) {
    return Status::InvalidArgument("negative degree/noise option");
  }
  if (o.embedding_dim == 0) {
    return Status::InvalidArgument("embedding_dim must be positive");
  }
  if (!prob_ok(o.attr_keep_prob)) {
    return Status::InvalidArgument("attr_keep_prob outside [0, 1]");
  }
  if (o.attrs_per_entity < 0.0) {
    return Status::InvalidArgument("attrs_per_entity must be >= 0");
  }
  return Status::OK();
}

}  // namespace

StatusOr<SyntheticBenchmark> GenerateBenchmark(
    const SyntheticKgOptions& options) {
  CEAFF_RETURN_IF_ERROR(ValidateOptions(options));
  const size_t n = options.num_entities;
  Rng master(options.seed);
  Rng world_rng = master.Fork();
  Rng kg1_rng = master.Fork();
  Rng kg2_rng = master.Fork();
  Rng split_rng = master.Fork();

  // ---- World entities and their concept-based names. ----
  const size_t modifier_pool = n / 20 + 16;
  std::vector<WorldEntity> world(n);
  for (size_t i = 0; i < n; ++i) {
    world[i].head_concept = kHeadConceptBase + i;
    size_t m = world_rng.NextBounded(3);  // 0..2 modifier tokens
    for (size_t j = 0; j < m; ++j) {
      world[i].modifiers.push_back(1 + world_rng.NextBounded(modifier_pool));
    }
  }

  // ---- World triples with Zipf-skewed entity popularity. ----
  std::vector<double> popularity(n);
  {
    std::vector<size_t> rank(n);
    for (size_t i = 0; i < n; ++i) rank[i] = i;
    world_rng.Shuffle(&rank);
    for (size_t i = 0; i < n; ++i) {
      popularity[i] = 1.0 / std::pow(static_cast<double>(rank[i] + 1),
                                     options.degree_exponent);
    }
  }
  std::vector<double> cum_pop(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += popularity[i];
    cum_pop[i] = acc;
  }
  std::vector<double> cum_rel(options.num_relations);
  acc = 0.0;
  for (size_t r = 0; r < options.num_relations; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), 0.7);
    cum_rel[r] = acc;
  }

  struct WorldTriple {
    uint32_t head, rel, tail;
  };
  const size_t num_world_triples = static_cast<size_t>(
      options.avg_degree * static_cast<double>(n) / 2.0);
  std::vector<WorldTriple> world_triples;
  world_triples.reserve(num_world_triples);
  std::unordered_set<uint64_t> seen;
  size_t attempts = 0;
  while (world_triples.size() < num_world_triples &&
         attempts < num_world_triples * 20) {
    ++attempts;
    uint32_t h = static_cast<uint32_t>(SampleCumulative(cum_pop, &world_rng));
    uint32_t t = static_cast<uint32_t>(SampleCumulative(cum_pop, &world_rng));
    if (h == t) continue;
    uint32_t r = static_cast<uint32_t>(SampleCumulative(cum_rel, &world_rng));
    uint64_t key = (static_cast<uint64_t>(h) << 40) |
                   (static_cast<uint64_t>(r) << 24) | t;
    if (!seen.insert(key).second) continue;
    world_triples.push_back({h, r, t});
  }

  // ---- World attribute facts. ----
  // An entity carries the same attribute *types* in every edition; each KG
  // later keeps only a subset (incompleteness). Even-indexed attributes
  // hold language-independent literals (numbers, dates); odd ones hold
  // textual literals rendered per language.
  struct WorldAttrFact {
    uint32_t entity;
    uint32_t attr;
    uint64_t value_concept;
  };
  std::vector<WorldAttrFact> world_attrs;
  if (options.num_attributes > 0) {
    size_t num_facts = static_cast<size_t>(options.attrs_per_entity *
                                           static_cast<double>(n));
    world_attrs.reserve(num_facts);
    for (size_t i = 0; i < num_facts; ++i) {
      uint32_t e = static_cast<uint32_t>(world_rng.NextBounded(n));
      uint32_t a =
          static_cast<uint32_t>(world_rng.NextBounded(options.num_attributes));
      uint64_t vc = Rng::SplitMix64((static_cast<uint64_t>(e) << 32) ^ a ^
                                    options.seed) ^
                    world_rng.NextBounded(4);  // a few distinct values
      world_attrs.push_back({e, a, vc});
    }
  }

  // ---- Derive the two KGs. ----
  SyntheticBenchmark bench;
  bench.store = text::WordEmbeddingStore(options.embedding_dim,
                                         Rng::SplitMix64(options.seed));
  bench.pair.name = options.name;

  auto build_kg = [&](kg::KnowledgeGraph* g, const LanguageSpec& lang,
                      Rng* rng, const std::string& prefix) {
    // Shared entities first: ids [0, n) line up across both KGs.
    for (size_t i = 0; i < n; ++i) {
      std::vector<std::string> tokens;
      for (uint64_t c : ConceptsInOrder(world[i])) {
        bool is_modifier = c < kHeadConceptBase;
        if (is_modifier && rng->NextDouble() < options.name_token_drop) {
          continue;
        }
        tokens.push_back(SurfaceToken(c, lang, options.seed));
      }
      if (tokens.empty()) {
        tokens.push_back(SurfaceToken(world[i].head_concept, lang,
                                      options.seed));
      }
      g->AddEntity(prefix + "e" + std::to_string(i), Join(tokens, " "));
    }
    // Distractor entities.
    for (size_t i = 0; i < options.extra_entities; ++i) {
      uint64_t c = kHeadConceptBase + 10'000'000 +
                   HashBytes(prefix.data(), prefix.size(), options.seed) % 997 *
                       100'000 +
                   i;
      g->AddEntity(prefix + "x" + std::to_string(i),
                   SurfaceToken(c, lang, options.seed));
    }
    // Relations (shared URIs; relation vocabularies may coincide — that is
    // irrelevant to the algorithms, which never compare relation URIs
    // across KGs).
    for (size_t r = 0; r < options.num_relations; ++r) {
      g->AddRelation("rel" + std::to_string(r));
    }
    // Kept world triples.
    size_t kept = 0;
    for (const WorldTriple& t : world_triples) {
      if (rng->NextDouble() > options.triple_keep_prob) continue;
      CEAFF_CHECK(g->AddTriple(t.head, t.rel, t.tail).ok());
      ++kept;
    }
    // Distractor edges: connect each distractor to ~avg_degree/2 entities.
    size_t distractor_edges = static_cast<size_t>(options.avg_degree / 2.0);
    for (size_t i = 0; i < options.extra_entities; ++i) {
      uint32_t x = static_cast<uint32_t>(n + i);
      for (size_t e = 0; e < std::max<size_t>(distractor_edges, 1); ++e) {
        uint32_t other =
            static_cast<uint32_t>(SampleCumulative(cum_pop, rng));
        uint32_t r = static_cast<uint32_t>(SampleCumulative(cum_rel, rng));
        if (rng->NextBounded(2) == 0) {
          CEAFF_CHECK(g->AddTriple(x, r, other).ok());
        } else {
          CEAFF_CHECK(g->AddTriple(other, r, x).ok());
        }
      }
    }
    // Per-KG noise triples.
    size_t noise = static_cast<size_t>(options.noise_triple_frac *
                                       static_cast<double>(kept));
    size_t total_entities = n + options.extra_entities;
    for (size_t i = 0; i < noise; ++i) {
      uint32_t h = static_cast<uint32_t>(rng->NextBounded(total_entities));
      uint32_t t = static_cast<uint32_t>(rng->NextBounded(total_entities));
      if (h == t) continue;
      uint32_t r = static_cast<uint32_t>(SampleCumulative(cum_rel, rng));
      CEAFF_CHECK(g->AddTriple(h, r, t).ok());
    }
    // Attribute triples: shared property URIs (as DBpedia mappings align
    // infobox keys across editions), per-KG incompleteness.
    for (size_t a = 0; a < options.num_attributes; ++a) {
      g->AddAttribute("attr" + std::to_string(a));
    }
    for (const WorldAttrFact& f : world_attrs) {
      if (rng->NextDouble() > options.attr_keep_prob) continue;
      std::string value;
      if (f.attr % 2 == 0) {
        // Language-independent literal (e.g. a year or a measurement).
        value = std::to_string(1000 + f.value_concept % 9000);
      } else {
        value = SurfaceToken(f.value_concept, lang, options.seed);
      }
      CEAFF_CHECK(g->AddAttributeTriple(f.entity, f.attr, value).ok());
    }
  };
  build_kg(&bench.pair.kg1, options.lang1, &kg1_rng, "kg1:");
  build_kg(&bench.pair.kg2, options.lang2, &kg2_rng, "kg2:");

  // ---- Word-embedding store covering both languages. ----
  auto register_language = [&](const LanguageSpec& lang) {
    auto register_concept = [&](uint64_t c, double oov_rate) {
      std::string surface = SurfaceToken(c, lang, options.seed);
      // Tokens are looked up in tokenised (lower-cased) form.
      for (const std::string& tok : text::TokenizeName(surface)) {
        uint64_t h = HashBytes(tok.data(), tok.size(),
                               options.seed ^ 0x007ull);
        // Deterministic OOV decision per token.
        if ((static_cast<double>(h % 10'000) / 10'000.0) < oov_rate) {
          bench.store.MarkOov(tok);
        } else {
          bench.store.RegisterToken(tok, c, lang.semantic_noise);
        }
      }
    };
    for (size_t i = 0; i < n; ++i) {
      // Head concepts are rare proper nouns: they take the full OOV rate.
      register_concept(world[i].head_concept, lang.oov_rate);
      for (uint64_t c : world[i].modifiers) {
        // Modifiers are common words: rarely OOV.
        register_concept(c, lang.oov_rate * 0.25);
      }
    }
  };
  register_language(options.lang1);
  register_language(options.lang2);

  // ---- Gold standard and split. ----
  std::vector<kg::AlignmentPair> gold(n);
  for (size_t i = 0; i < n; ++i) {
    gold[i] = {static_cast<uint32_t>(i), static_cast<uint32_t>(i)};
  }
  CEAFF_RETURN_IF_ERROR(SplitAlignment(gold, options.seed_fraction,
                                       split_rng.NextU64(),
                                       &bench.pair.seed_alignment,
                                       &bench.pair.test_alignment));
  return bench;
}

std::vector<SyntheticKgOptions> StandardBenchmarkConfigs(double scale,
                                                         uint64_t seed) {
  auto latin = [](const char* code, double edit, double sem, double oov) {
    LanguageSpec l;
    l.code = code;
    l.script = Script::kLatin;
    l.edit_fraction = edit;
    l.semantic_noise = sem;
    l.oov_rate = oov;
    return l;
  };
  auto cjk = [](const char* code, double sem, double oov) {
    LanguageSpec l;
    l.code = code;
    l.script = Script::kCjk;
    l.edit_fraction = 1.0;
    l.semantic_noise = sem;
    l.oov_rate = oov;
    return l;
  };

  std::vector<SyntheticKgOptions> configs;
  auto base = [&](const char* name, size_t entities, double avg_degree,
                  LanguageSpec l1, LanguageSpec l2,
                  uint64_t salt) {
    SyntheticKgOptions o;
    o.name = name;
    o.num_entities = std::max<size_t>(
        static_cast<size_t>(static_cast<double>(entities) * scale), 50);
    o.extra_entities = o.num_entities / 10;
    o.avg_degree = avg_degree;
    o.lang1 = std::move(l1);
    o.lang2 = std::move(l2);
    o.seed = Rng::SplitMix64(seed ^ salt);
    return o;
  };

  // Language calibration note: noise/OOV levels are tuned so that the
  // *single-feature* accuracies reproduce the relative profile implied by
  // the paper's Table V (semantic ~0.5 and string ~0 for ZH-EN; string
  // near-perfect mono-lingually; both informative for EN-FR/EN-DE).
  // DBP15K: dense cross-lingual. ZH/JA are distant scripts, FR is close.
  configs.push_back(base("DBP15K_ZH_EN", 1000, 7.0,
                         cjk("zh", 1.30, 0.30),
                         latin("en", 0.0, 0.15, 0.06), 1));
  configs.push_back(base("DBP15K_JA_EN", 1000, 7.0,
                         cjk("ja", 1.05, 0.24),
                         latin("en", 0.0, 0.15, 0.06), 2));
  configs.push_back(base("DBP15K_FR_EN", 1000, 7.5,
                         latin("fr", 0.42, 0.70, 0.12),
                         latin("en", 0.0, 0.15, 0.06), 3));
  // DBP100K: dense mono-lingual, larger, near-identical names.
  configs.push_back(base("DBP100K_DBP_WD", 2000, 6.5,
                         latin("dbp", 0.0, 0.60, 0.12),
                         latin("wd", 0.05, 0.65, 0.13), 4));
  configs.push_back(base("DBP100K_DBP_YG", 2000, 6.5,
                         latin("dbp", 0.0, 0.60, 0.12),
                         latin("yg", 0.08, 0.75, 0.15), 5));
  // SRPRS: sparse (real-life degree profile) cross- and mono-lingual.
  configs.push_back(base("SRPRS_EN_FR", 1000, 2.6,
                         latin("en", 0.0, 0.15, 0.06),
                         latin("fr", 0.40, 0.75, 0.14), 6));
  configs.push_back(base("SRPRS_EN_DE", 1000, 2.7,
                         latin("en", 0.0, 0.15, 0.06),
                         latin("de", 0.34, 0.65, 0.12), 7));
  configs.push_back(base("SRPRS_DBP_WD", 1000, 2.7,
                         latin("dbp", 0.0, 0.60, 0.12),
                         latin("wd", 0.05, 0.65, 0.13), 8));
  configs.push_back(base("SRPRS_DBP_YG", 1000, 2.5,
                         latin("dbp", 0.0, 0.60, 0.12),
                         latin("yg", 0.08, 0.75, 0.15), 9));
  // Sparse datasets keep higher degree exponent (heavier tail), matching
  // the real-life profile SRPRS was sampled to preserve.
  for (auto& c : configs) {
    if (StartsWith(c.name, "SRPRS")) c.degree_exponent = 1.15;
  }
  return configs;
}

StatusOr<SyntheticKgOptions> BenchmarkConfigByName(const std::string& name,
                                                   double scale,
                                                   uint64_t seed) {
  for (SyntheticKgOptions& o : StandardBenchmarkConfigs(scale, seed)) {
    if (o.name == name) return o;
  }
  return Status::NotFound("no standard benchmark config named " + name);
}

double KsStatistic(const std::vector<uint32_t>& sample1,
                   const std::vector<uint32_t>& sample2) {
  if (sample1.empty() || sample2.empty()) return 1.0;
  std::vector<uint32_t> a = sample1, b = sample2;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double d = 0.0;
  size_t i = 0, j = 0;
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  while (i < a.size() && j < b.size()) {
    uint32_t x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] == x) ++i;
    while (j < b.size() && b[j] == x) ++j;
    d = std::max(d, std::fabs(static_cast<double>(i) / na -
                              static_cast<double>(j) / nb));
  }
  return d;
}

}  // namespace ceaff::data
