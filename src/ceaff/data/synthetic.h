#ifndef CEAFF_DATA_SYNTHETIC_H_
#define CEAFF_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ceaff/common/statusor.h"
#include "ceaff/data/name_generator.h"
#include "ceaff/kg/knowledge_graph.h"
#include "ceaff/text/word_embedding.h"

namespace ceaff::data {

/// Recipe for one synthetic KG pair. The generator builds a shared "world"
/// graph over common concepts, then derives two heterogeneous KGs from it:
/// each keeps a random subset of the world triples, adds its own noise
/// triples and distractor entities, and renders entity names in its own
/// language. This reproduces the *relative* properties the paper's datasets
/// differ in — density profile (DBP15K vs SRPRS), language distance
/// (ZH-EN vs FR-EN vs mono-lingual) — at laptop scale (see DESIGN.md).
struct SyntheticKgOptions {
  std::string name = "synthetic";
  /// Aligned (shared) entities = size of the gold standard.
  size_t num_entities = 1000;
  /// Per-KG unaligned distractor entities (exist in only one KG).
  size_t extra_entities = 100;
  /// Mean undirected degree of the world graph. DBP15K-like configs use
  /// ~7, SRPRS-like ~2.8.
  double avg_degree = 6.0;
  /// Zipf exponent of entity popularity; larger = heavier-tailed hubs.
  double degree_exponent = 1.0;
  size_t num_relations = 24;
  /// Probability each KG keeps a given world triple (structural overlap).
  double triple_keep_prob = 0.85;
  /// Extra per-KG random triples as a fraction of kept triples.
  double noise_triple_frac = 0.10;
  LanguageSpec lang1;
  LanguageSpec lang2;
  /// Probability a modifier token is dropped from one KG's rendering of a
  /// name (naming heterogeneity across KGs).
  double name_token_drop = 0.05;
  /// Size of the attribute (datatype property) pool. 0 disables attribute
  /// generation entirely.
  size_t num_attributes = 12;
  /// Mean number of attribute facts per entity in the world graph.
  double attrs_per_entity = 2.0;
  /// Probability each KG keeps a given world attribute fact — models the
  /// attribute incompleteness the paper cites (Sec. II).
  double attr_keep_prob = 0.7;
  /// Fraction of gold pairs used as seed alignment (paper: 30%).
  double seed_fraction = 0.3;
  /// Word-embedding dimensionality of the generated store.
  size_t embedding_dim = 64;
  uint64_t seed = 123;
};

/// A generated benchmark: the KG pair (with gold split) and a word
/// embedding store covering both languages' vocabularies.
struct SyntheticBenchmark {
  kg::KgPair pair;
  text::WordEmbeddingStore store;

  SyntheticBenchmark() : store(0, 0) {}
};

/// Generates a benchmark deterministically from `options`.
/// InvalidArgument on nonsensical parameters (no entities, probabilities
/// outside [0,1], fewer than 1 relation).
StatusOr<SyntheticBenchmark> GenerateBenchmark(
    const SyntheticKgOptions& options);

/// The nine named KG-pair configurations mirroring Table II, scaled so the
/// gold standard has `scale` x 1000 pairs (DBP100K-like configs get 2x).
/// Names: DBP15K_ZH_EN, DBP15K_JA_EN, DBP15K_FR_EN, DBP100K_DBP_WD,
/// DBP100K_DBP_YG, SRPRS_EN_FR, SRPRS_EN_DE, SRPRS_DBP_WD, SRPRS_DBP_YG.
std::vector<SyntheticKgOptions> StandardBenchmarkConfigs(
    double scale = 1.0, uint64_t seed = 2020);

/// Finds a standard config by name (NotFound otherwise).
StatusOr<SyntheticKgOptions> BenchmarkConfigByName(const std::string& name,
                                                   double scale = 1.0,
                                                   uint64_t seed = 2020);

/// Two-sample Kolmogorov–Smirnov statistic between two degree samples —
/// the check SRPRS used to keep sampled distributions faithful. Returns
/// sup |F1 - F2| in [0, 1].
double KsStatistic(const std::vector<uint32_t>& sample1,
                   const std::vector<uint32_t>& sample2);

}  // namespace ceaff::data

#endif  // CEAFF_DATA_SYNTHETIC_H_
