#ifndef CEAFF_DATA_NAME_GENERATOR_H_
#define CEAFF_DATA_NAME_GENERATOR_H_

#include <cstdint>
#include <string>

namespace ceaff::data {

/// Writing system of a synthetic language. Latin languages render concept
/// tokens as lowercase ASCII pseudo-words; CJK-like languages render them
/// as Cyrillic-range multi-byte pseudo-words, giving (as with real
/// Chinese/Japanese vs English) essentially zero byte overlap for the
/// string feature while remaining valid UTF-8.
enum class Script { kLatin, kCjk };

/// A synthetic language: how concepts become surface tokens, and how
/// reliable its (simulated) multilingual word embeddings are.
struct LanguageSpec {
  std::string code = "en";
  Script script = Script::kLatin;
  /// Fraction of characters perturbed relative to the pivot (base) surface
  /// form. 0 = identical spelling (mono-lingual), ~0.15 = closely related
  /// (EN-FR), 1 or kCjk = unrelated surface forms.
  double edit_fraction = 0.0;
  /// Noise scale of this language's word embeddings around the shared
  /// concept anchors — simulates MUSE cross-lingual alignment error.
  double semantic_noise = 0.0;
  /// Probability that a (rare) token lacks a word embedding entirely.
  double oov_rate = 0.0;
};

/// Deterministic pivot surface form of a concept: a pronounceable
/// lowercase pseudo-word of 4–9 letters, fully determined by (concept_id,
/// seed).
std::string BaseToken(uint64_t concept_id, uint64_t seed);

/// Deterministic surface form of `concept_id` in language `lang`.
/// Latin: the pivot token with floor(edit_fraction · len) character edits.
/// CJK: an unrelated Cyrillic-range pseudo-word of 2–4 characters.
std::string SurfaceToken(uint64_t concept_id, const LanguageSpec& lang,
                         uint64_t seed);

}  // namespace ceaff::data

#endif  // CEAFF_DATA_NAME_GENERATOR_H_
