#ifndef CEAFF_LA_KERNELS_H_
#define CEAFF_LA_KERNELS_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "ceaff/common/cancellation.h"
#include "ceaff/common/statusor.h"
#include "ceaff/common/thread_pool.h"
#include "ceaff/la/matrix.h"
#include "ceaff/la/sparse_matrix.h"

namespace ceaff::la {

/// High-performance compute kernels (DESIGN.md §11).
///
/// Every CEAFF stage reduces to dense pairwise-similarity compute: the GCN
/// forward/backward, the name-embedding cosine matrix Mn, CSLS re-ranking,
/// Sinkhorn normalisation and the Levenshtein matrix Ml. The kernels here
/// are the shared fast path for all of them: cache-blocked, register-tiled
/// (lane-split accumulators the compiler can keep in SIMD registers) and
/// row-panel parallel over a common/thread_pool.h ParallelFor.
///
/// Determinism contract: for a fixed input and fixed KernelOptions, every
/// kernel produces bit-identical output regardless of the thread count
/// (including pool == nullptr). Parallelism only ever partitions *output*
/// elements across workers; the per-element accumulation order is a pure
/// function of the shape and block sizes. Agreement with the retained
/// naive references is documented per kernel: the Sinkhorn and CSLS
/// kernels are bit-identical to their references; the GEMM-family kernels
/// (MatMulBTK, CosineSimilarityK, MatMulK, MatMulATK, SpMM) use float
/// lane-split accumulation instead of the references' sequential
/// double-precision order, so they agree to a relative error of
/// O(d · eps_f32) per element (the parity tests in tests/la/kernels_test.cc
/// pin the bound).

class KernelAutotuner;

/// Blocking parameters. Defaults target a ~1 MiB L2: a column panel of
/// `col_block` B-rows x 128 floats (64 KiB) stays resident while a row
/// panel of A streams over it.
struct KernelOptions {
  /// Rows of the output computed per parallel task (the ParallelFor grain).
  size_t row_block = 64;
  /// Columns of the output (rows of B in A·Bᵀ) per cache panel.
  size_t col_block = 128;
  /// Minimum output rows (or columns, for column-partitioned kernels) a
  /// parallel task may own. ParallelPanels raises the panel size to this
  /// floor so small shapes stop over-partitioning, and when one panel
  /// covers the whole output the sweep runs inline on the caller's thread
  /// — no pool dispatch at all. A grain at least as large as the output
  /// therefore serializes the kernel, which is what the autotuner selects
  /// on boxes where the fan-out measurably loses (oversubscribed cores,
  /// L2 thrash). Partitioning only: the grain can never change output
  /// bits.
  size_t grain = 8;
  /// Zero keeps every default; a non-zero value overrides col_block and
  /// scales row_block to match (the CLI's --block_size plumbs in here).
  void OverrideBlock(size_t block);
};

/// Shared context threaded through every kernel call site: the worker pool
/// (null = sequential), the blocking parameters, an optional cooperative
/// cancellation token polled once per row panel, and an optional autotuner
/// consulted at kernel entry for measured per-shape blocking (la/autotune.h
/// — the GEMM/SpMM family only; a null tuner keeps `opts` as-is). Not
/// owned; the context must outlive the kernel call.
struct KernelContext {
  ThreadPool* pool = nullptr;
  KernelOptions opts;
  const CancellationToken* cancel = nullptr;
  KernelAutotuner* tuner = nullptr;

  /// Cancellation verdict after (or before) a kernel: OK when no token is
  /// armed or it has not fired.
  Status CheckCancelled(const char* what) const {
    return CheckCancel(cancel, what);
  }
};

// ---------------------------------------------------------------------------
// GEMM family
// ---------------------------------------------------------------------------

/// out = a · bᵀ ((m,d) x (n,d) -> (m,n)), cache-blocked and row-panel
/// parallel. The similarity-matrix workhorse.
Matrix MatMulBTK(const KernelContext& ctx, const Matrix& a, const Matrix& b);

/// out = a · b ((m,k) x (k,n) -> (m,n)).
Matrix MatMulK(const KernelContext& ctx, const Matrix& a, const Matrix& b);

/// out = aᵀ · b ((k,m)ᵀ x (k,n) -> (m,n)). Backprop helper.
Matrix MatMulATK(const KernelContext& ctx, const Matrix& a, const Matrix& b);

/// Pairwise cosine similarity with per-row norms hoisted out of the pair
/// loop: one pass computes inverse row norms of `a` and `b` (exactly zero
/// for zero-norm rows), then a blocked a·bᵀ is scaled by
/// inv_norm_a[i] · inv_norm_b[j]. Zero-norm rows therefore yield exact
/// zeros, never NaN.
Matrix CosineSimilarityK(const KernelContext& ctx, const Matrix& a,
                         const Matrix& b);

/// Cancellation-aware wrapper: polls ctx.cancel per row panel and returns
/// kCancelled/kDeadlineExceeded instead of a matrix when it fires
/// (remaining panels are skipped, not computed).
StatusOr<Matrix> CosineSimilarityChecked(const KernelContext& ctx,
                                         const Matrix& a, const Matrix& b);

// ---------------------------------------------------------------------------
// Sparse-dense (GCN layer)
// ---------------------------------------------------------------------------

/// out = a · x (CSR (m,k) x dense (k,n) -> dense (m,n)), parallel over
/// output row panels. Bit-identical to SparseMatrix::Multiply.
Matrix SpMMK(const KernelContext& ctx, const SparseMatrix& a, const Matrix& x);

/// out = aᵀ · x ((m,k)ᵀ x (m,n) -> (k,n)), parallel over output *column*
/// panels — each task scans the full CSR but touches a disjoint column
/// range of every output row, so the result is race-free and bit-identical
/// to SparseMatrix::MultiplyTransposed at any thread count.
Matrix SpMMTransposedK(const KernelContext& ctx, const SparseMatrix& a,
                       const Matrix& x);

// ---------------------------------------------------------------------------
// Sinkhorn normalisation
// ---------------------------------------------------------------------------

/// Scales every row of `m` to sum 1 (rows summing to <= 0 are left
/// untouched), parallel over row panels. Bit-identical to the sequential
/// reference (per-row sums accumulate in the same order).
void RowNormalizeK(const KernelContext& ctx, Matrix* m);

/// Scales every column of `m` to sum `target` (columns summing to <= 0 are
/// left untouched), parallel over column panels. Column sums accumulate
/// row-major (cache-friendly) in ascending row order — the same order as
/// the naive column walk, so the result is bit-identical to it.
void ColNormalizeK(const KernelContext& ctx, Matrix* m, double target);

// ---------------------------------------------------------------------------
// CSLS
// ---------------------------------------------------------------------------

/// CSLS hubness rescaling (see la/csls.h), blocked and parallel: row
/// top-k means are parallel over rows, column top-k means gather each
/// column panel with one row-major sweep (instead of a strided column
/// walk). Bit-identical to CslsRescale at any thread count.
Matrix CslsRescaleK(const KernelContext& ctx, const Matrix& m, size_t k);

// ---------------------------------------------------------------------------
// String kernels
// ---------------------------------------------------------------------------

/// Exact lev* ratio (substitution cost 2), algorithmically accelerated:
/// common prefixes/suffixes are stripped in O(1) per char, then
/// lev* = |a|+|b| − 2·LCS is computed with the bit-parallel LCS recurrence
/// (64 positions per machine word) instead of the full DP. Exactly equal
/// to text::LevenshteinRatio for all inputs (parity-tested).
double LevenshteinRatioFast(std::string_view a, std::string_view b);

/// Banded early-exit Levenshtein: the classic two-row DP restricted to the
/// |i−j| <= limit band (any path leaving it costs > limit), abandoning the
/// scan as soon as a full row exceeds `limit`. Returns limit+1 when the
/// true distance exceeds `limit`, the exact distance otherwise.
/// `sub_cost` is 1 for classic Levenshtein, 2 for lev*.
size_t LevenshteinDistanceBanded(std::string_view a, std::string_view b,
                                 size_t limit, size_t sub_cost = 1);

/// Full pairwise lev*-ratio matrix via LevenshteinRatioFast, parallel over
/// source-row panels. Exactly equal to the naive
/// text::StringSimilarityMatrix at any thread count.
Matrix StringSimilarityMatrixK(const KernelContext& ctx,
                               const std::vector<std::string>& source_names,
                               const std::vector<std::string>& target_names);

/// Pruned variant for retrieval-style consumers that only need each row's
/// maxima to be exact. Per row a running threshold starts at `floor` and
/// tracks the best ratio seen so far; a pair whose length-ratio upper
/// bound
///
///   ub = 2·min(|a|,|b|) / (|a|+|b|)    (since LCS <= min(|a|,|b|))
///
/// cannot beat it (ub <= threshold) skips the computation entirely and
/// records ub. Surviving pairs run the bit-parallel LCS with the source
/// name's character masks built ONCE per row and streamed over every
/// target — amortizing the mask table LevenshteinRatioFast rebuilds per
/// pair — and record the exact ratio (bit-identical to the exact kernel's
/// value for that cell). Row maxima (value and argmax, up to ties at
/// equal score) match the exact matrix; pruned cells hold upper bounds,
/// not exact ratios.
Matrix StringSimilarityMatrixPruned(
    const KernelContext& ctx, const std::vector<std::string>& source_names,
    const std::vector<std::string>& target_names, double floor = 0.0);

/// Outcome of the length-aware string-kernel dispatch: which kernel to
/// run, plus the corpus statistics the decision was made on (logged by the
/// pipeline so a surprising choice is explainable from the run log).
struct StringKernelChoice {
  bool pruned = false;
  double mean_chars = 0.0;
  double mean_tokens = 0.0;
};

/// Decides between the exact kernel and the pruned one from the shape of
/// the names themselves. The pruned kernel is faster (per-row mask
/// amortization + length-ratio skipping; see BENCH_kernels.json's
/// `multi-word names` rows) but only contractually exact at row maxima,
/// so the dispatch trades exactness for speed only where the exact
/// kernel gets expensive: long multi-word names. Short single-word names
/// (every DBP15K translation split) pick the exact kernel, keeping those
/// runs bit-identical to the pre-dispatch pipeline. The thresholds are
/// deliberately conservative: mean name length >= 32 bytes and >= 3
/// whitespace-separated tokens across both sides.
StringKernelChoice ChooseStringKernel(
    const std::vector<std::string>& source_names,
    const std::vector<std::string>& target_names);

/// Length-aware dispatch: runs StringSimilarityMatrixPruned when
/// ChooseStringKernel says pruning wins, StringSimilarityMatrixK
/// otherwise. When the pruned kernel is chosen, every row's maxima (value
/// and argmax) are still exact; pruned cells hold upper bounds — callers
/// that need every cell exact must call StringSimilarityMatrixK directly.
Matrix StringSimilarityMatrixAuto(
    const KernelContext& ctx, const std::vector<std::string>& source_names,
    const std::vector<std::string>& target_names,
    StringKernelChoice* choice_out = nullptr);

}  // namespace ceaff::la

#endif  // CEAFF_LA_KERNELS_H_
