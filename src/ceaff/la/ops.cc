#include "ceaff/la/ops.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ceaff/common/logging.h"

namespace ceaff::la {

namespace {

/// Per-row inverse L2 norms, hoisted out of the pairwise loop. Zero-norm
/// rows map to an inverse of exactly 0, so every similarity involving a
/// zero vector comes out as an exact 0.0f — never NaN, never denormal dust.
std::vector<double> InverseRowNorms(const Matrix& m) {
  std::vector<double> inv(m.rows(), 0.0);
  for (size_t r = 0; r < m.rows(); ++r) {
    const float* p = m.row(r);
    double sq = 0.0;
    for (size_t c = 0; c < m.cols(); ++c) sq += static_cast<double>(p[c]) * p[c];
    if (sq > 0.0) inv[r] = 1.0 / std::sqrt(sq);
  }
  return inv;
}

}  // namespace

Matrix CosineSimilarity(const Matrix& a, const Matrix& b) {
  CEAFF_CHECK(a.cols() == b.cols())
      << "cosine similarity dimension mismatch: " << a.cols() << " vs "
      << b.cols();
  // Hoisted norms + one a·bᵀ pass — no normalised copies of the inputs.
  // This stays the sequential double-accumulation reference the blocked
  // la/kernels.h CosineSimilarityK is parity-tested and benchmarked against.
  const std::vector<double> inv_a = InverseRowNorms(a);
  const std::vector<double> inv_b = InverseRowNorms(b);
  Matrix out(a.rows(), b.rows());
  const size_t d = a.cols();
  for (size_t i = 0; i < a.rows(); ++i) {
    const float* ai = a.row(i);
    float* oi = out.row(i);
    for (size_t j = 0; j < b.rows(); ++j) {
      const float* bj = b.row(j);
      double acc = 0.0;
      for (size_t k = 0; k < d; ++k) acc += ai[k] * bj[k];
      oi[j] = static_cast<float>(acc * inv_a[i] * inv_b[j]);
    }
  }
  return out;
}

std::vector<size_t> RowArgmax(const Matrix& m) {
  std::vector<size_t> out(m.rows(), 0);
  for (size_t r = 0; r < m.rows(); ++r) {
    const float* p = m.row(r);
    size_t best = 0;
    for (size_t c = 1; c < m.cols(); ++c) {
      if (p[c] > p[best]) best = c;
    }
    out[r] = best;
  }
  return out;
}

std::vector<size_t> ColArgmax(const Matrix& m) {
  std::vector<size_t> out(m.cols(), 0);
  if (m.rows() == 0) return out;
  std::vector<float> best(m.cols());
  for (size_t c = 0; c < m.cols(); ++c) best[c] = m.at(0, c);
  for (size_t r = 1; r < m.rows(); ++r) {
    const float* p = m.row(r);
    for (size_t c = 0; c < m.cols(); ++c) {
      if (p[c] > best[c]) {
        best[c] = p[c];
        out[c] = r;
      }
    }
  }
  return out;
}

std::vector<size_t> RowTopK(const Matrix& m, size_t r, size_t k) {
  k = std::min(k, m.cols());
  const float* p = m.row(r);
  std::vector<size_t> idx(m.cols());
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::partial_sort(idx.begin(), idx.begin() + static_cast<long>(k), idx.end(),
                    [p](size_t x, size_t y) {
                      return p[x] != p[y] ? p[x] > p[y] : x < y;
                    });
  idx.resize(k);
  return idx;
}

std::vector<size_t> RowRanks(const Matrix& m, size_t r) {
  const float* p = m.row(r);
  std::vector<size_t> order(m.cols());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [p](size_t x, size_t y) {
    return p[x] != p[y] ? p[x] > p[y] : x < y;
  });
  std::vector<size_t> ranks(m.cols());
  for (size_t pos = 0; pos < order.size(); ++pos) ranks[order[pos]] = pos + 1;
  return ranks;
}

Matrix WeightedSum(const std::vector<const Matrix*>& mats,
                   const std::vector<double>& weights) {
  CEAFF_CHECK(!mats.empty());
  CEAFF_CHECK(mats.size() == weights.size());
  Matrix out(mats[0]->rows(), mats[0]->cols());
  for (size_t k = 0; k < mats.size(); ++k) {
    CEAFF_CHECK(mats[k]->SameShape(out)) << "fusion shape mismatch";
    out.Axpy(static_cast<float>(weights[k]), *mats[k]);
  }
  return out;
}

void MinMaxNormalize(Matrix* m) {
  if (m->empty()) return;
  float lo = m->data()[0], hi = m->data()[0];
  for (size_t i = 0; i < m->size(); ++i) {
    lo = std::min(lo, m->data()[i]);
    hi = std::max(hi, m->data()[i]);
  }
  float range = hi - lo;
  if (range <= 0.0f) {
    m->SetZero();
    return;
  }
  float inv = 1.0f / range;
  for (size_t i = 0; i < m->size(); ++i) {
    m->data()[i] = (m->data()[i] - lo) * inv;
  }
}

}  // namespace ceaff::la
