#include "ceaff/la/matrix.h"

#include <cmath>
#include <sstream>

namespace ceaff::la {

Matrix::Matrix(const Matrix& other) : rows_(other.rows_), cols_(other.cols_) {
  // Copying a view materialises it: the copy owns its storage and stays
  // valid after the view's backing memory goes away.
  const float* src = other.data();
  data_.assign(src, src + other.size());
}

Matrix& Matrix::operator=(const Matrix& other) {
  if (this != &other) {
    rows_ = other.rows_;
    cols_ = other.cols_;
    const float* src = other.data();
    data_.assign(src, src + other.size());
    view_ = nullptr;
  }
  return *this;
}

Matrix Matrix::ConstView(const float* data, size_t rows, size_t cols) {
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  if (rows * cols > 0) {
    CEAFF_CHECK(data != nullptr) << "null backing for non-empty view";
    m.view_ = data;
  }
  return m;
}

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    CEAFF_CHECK(rows[r].size() == m.cols_) << "ragged row " << r;
    for (size_t c = 0; c < m.cols_; ++c) m.at(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::TruncatedNormal(size_t rows, size_t cols, float stddev,
                               Rng* rng) {
  Matrix m(rows, cols);
  for (float& v : m.data_) {
    v = static_cast<float>(rng->NextTruncatedNormal(0.0, stddev));
  }
  return m;
}

Matrix Matrix::GlorotUniform(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  double limit = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (float& v : m.data_) {
    v = static_cast<float>(rng->NextUniform(-limit, limit));
  }
  return m;
}

void Matrix::Fill(float v) {
  CEAFF_DCHECK(!is_view());
  for (float& x : data_) x = v;
}

void Matrix::Add(const Matrix& other) {
  CEAFF_DCHECK(!is_view());
  CEAFF_CHECK(SameShape(other));
  const float* o = other.data();
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += o[i];
}

void Matrix::Sub(const Matrix& other) {
  CEAFF_DCHECK(!is_view());
  CEAFF_CHECK(SameShape(other));
  const float* o = other.data();
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= o[i];
}

void Matrix::Scale(float s) {
  CEAFF_DCHECK(!is_view());
  for (float& x : data_) x *= s;
}

void Matrix::Axpy(float s, const Matrix& other) {
  CEAFF_DCHECK(!is_view());
  CEAFF_CHECK(SameShape(other));
  const float* o = other.data();
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += s * o[i];
}

void Matrix::ReluInPlace() {
  CEAFF_DCHECK(!is_view());
  for (float& x : data_) x = x > 0.0f ? x : 0.0f;
}

void Matrix::L2NormalizeRows() {
  CEAFF_DCHECK(!is_view());
  for (size_t r = 0; r < rows_; ++r) {
    float* p = row(r);
    double sq = 0.0;
    for (size_t c = 0; c < cols_; ++c) sq += static_cast<double>(p[c]) * p[c];
    if (sq <= 0.0) continue;
    float inv = static_cast<float>(1.0 / std::sqrt(sq));
    for (size_t c = 0; c < cols_; ++c) p[c] *= inv;
  }
}

float Matrix::FrobeniusNorm() const {
  double sq = 0.0;
  const float* p = data();
  for (size_t i = 0; i < size(); ++i) sq += static_cast<double>(p[i]) * p[i];
  return static_cast<float>(std::sqrt(sq));
}

double Matrix::Sum() const {
  double s = 0.0;
  const float* p = data();
  for (size_t i = 0; i < size(); ++i) s += p[i];
  return s;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const float* p = row(r);
    for (size_t c = 0; c < cols_; ++c) out.at(c, r) = p[c];
  }
  return out;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed;
  for (size_t r = 0; r < rows_; ++r) {
    os << "[";
    for (size_t c = 0; c < cols_; ++c) {
      if (c) os << ", ";
      os << at(r, c);
    }
    os << "]\n";
  }
  return os.str();
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  CEAFF_CHECK(a.cols() == b.rows())
      << "matmul shape mismatch: " << a.rows() << "x" << a.cols() << " * "
      << b.rows() << "x" << b.cols();
  Matrix out(a.rows(), b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  // i-k-j loop order: unit-stride access of both b and out inner rows.
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (size_t kk = 0; kk < k; ++kk) {
      float aik = arow[kk];
      if (aik == 0.0f) continue;
      const float* brow = b.row(kk);
      for (size_t j = 0; j < n; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Matrix MatMulBT(const Matrix& a, const Matrix& b) {
  CEAFF_CHECK(a.cols() == b.cols())
      << "matmulBT shape mismatch: " << a.rows() << "x" << a.cols() << " * ("
      << b.rows() << "x" << b.cols() << ")^T";
  Matrix out(a.rows(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (size_t j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      double acc = 0.0;
      for (size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      orow[j] = static_cast<float>(acc);
    }
  }
  return out;
}

Matrix MatMulAT(const Matrix& a, const Matrix& b) {
  CEAFF_CHECK(a.rows() == b.rows())
      << "matmulAT shape mismatch: (" << a.rows() << "x" << a.cols()
      << ")^T * " << b.rows() << "x" << b.cols();
  Matrix out(a.cols(), b.cols());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  for (size_t kk = 0; kk < k; ++kk) {
    const float* arow = a.row(kk);
    const float* brow = b.row(kk);
    for (size_t i = 0; i < m; ++i) {
      float aki = arow[i];
      if (aki == 0.0f) continue;
      float* orow = out.row(i);
      for (size_t j = 0; j < n; ++j) orow[j] += aki * brow[j];
    }
  }
  return out;
}

}  // namespace ceaff::la
