#include "ceaff/la/matrix_io.h"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "ceaff/common/crc32.h"
#include "ceaff/common/string_util.h"

namespace ceaff::la {

namespace {

constexpr char kMagic[8] = {'C', 'E', 'A', 'F', 'F', 'M', 'A', 'T'};
constexpr uint32_t kVersion = 1;
constexpr size_t kPrefixBytes = 16;  // magic + version + reserved
constexpr size_t kHeaderBytes = 32;  // prefix + rows + cols
constexpr size_t kFooterBytes = 4;

/// The fixed artifact preamble preceding the matrix section.
struct Prefix {
  char magic[8];
  uint32_t version;
  uint32_t reserved;
};
static_assert(sizeof(Prefix) == kPrefixBytes, "artifact prefix must pack");

}  // namespace

Status WriteMatrixSection(const Matrix& m, std::ostream& out, Crc32* crc) {
  const uint64_t rows = m.rows();
  const uint64_t cols = m.cols();
  out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(float)));
  if (!out) return Status::IOError("matrix section write failed");
  if (crc != nullptr) {
    crc->Update(&rows, sizeof(rows));
    crc->Update(&cols, sizeof(cols));
    crc->Update(m.data(), m.size() * sizeof(float));
  }
  return Status::OK();
}

StatusOr<Matrix> ReadMatrixSection(std::istream& in,
                                   uint64_t max_payload_bytes, Crc32* crc) {
  uint64_t rows = 0, cols = 0;
  in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  if (!in) return Status::DataLoss("cannot read matrix section shape");

  // Validate the declared shape against what the caller can accept *before*
  // allocating, so a corrupted header cannot trigger a huge allocation.
  const uint64_t elems = rows * cols;
  if (cols != 0 && rows != elems / cols) {
    return Status::DataLoss("matrix section shape overflows");
  }
  if (elems > max_payload_bytes / sizeof(float)) {
    return Status::DataLoss(StrFormat(
        "matrix section declares %llux%llu (%llu bytes) but only %llu bytes "
        "remain — truncated or corrupted artifact",
        static_cast<unsigned long long>(rows),
        static_cast<unsigned long long>(cols),
        static_cast<unsigned long long>(elems * sizeof(float)),
        static_cast<unsigned long long>(max_payload_bytes)));
  }

  Matrix m(static_cast<size_t>(rows), static_cast<size_t>(cols));
  in.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(elems * sizeof(float)));
  if (!in) return Status::DataLoss("cannot read matrix section payload");
  if (crc != nullptr) {
    crc->Update(&rows, sizeof(rows));
    crc->Update(&cols, sizeof(cols));
    crc->Update(m.data(), m.size() * sizeof(float));
  }
  return m;
}

Status SaveMatrixArtifact(const Matrix& m, const std::string& path) {
  Prefix prefix;
  std::memcpy(prefix.magic, kMagic, sizeof(kMagic));
  prefix.version = kVersion;
  prefix.reserved = 0;

  // Atomic replace: write a temp sibling, then rename over the target.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp + " for writing");
    Crc32 crc;
    crc.Update(&prefix, sizeof(prefix));
    out.write(reinterpret_cast<const char*>(&prefix), sizeof(prefix));
    Status section = WriteMatrixSection(m, out, &crc);
    if (!section.ok()) {
      return Status::IOError("write failed: " + tmp + " (" +
                             section.message() + ")");
    }
    const uint32_t checksum = crc.value();
    out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
    if (!out) return Status::IOError("write failed: " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return Status::IOError("rename " + tmp + " -> " + path + " failed");
  }
  return Status::OK();
}

StatusOr<Matrix> LoadMatrixArtifact(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);

  std::error_code ec;
  const uint64_t file_size = std::filesystem::file_size(path, ec);
  if (ec) return Status::IOError("stat " + path + ": " + ec.message());
  if (file_size < kHeaderBytes + kFooterBytes) {
    return Status::DataLoss(
        StrFormat("%s: truncated artifact (%llu bytes, need at least %zu)",
                  path.c_str(), static_cast<unsigned long long>(file_size),
                  kHeaderBytes + kFooterBytes));
  }

  Prefix prefix;
  in.read(reinterpret_cast<char*>(&prefix), sizeof(prefix));
  if (!in) return Status::DataLoss(path + ": cannot read artifact header");
  if (std::memcmp(prefix.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::DataLoss(path + ": bad magic, not a CEAFF matrix artifact");
  }
  if (prefix.version != kVersion) {
    return Status::DataLoss(
        StrFormat("%s: unsupported artifact version %u (expected %u)",
                  path.c_str(), prefix.version, kVersion));
  }

  Crc32 crc;
  crc.Update(&prefix, sizeof(prefix));
  auto m = ReadMatrixSection(in, file_size - kHeaderBytes - kFooterBytes,
                             &crc);
  if (!m.ok()) {
    return Status::DataLoss(path + ": " + m.status().message());
  }

  // The single-matrix artifact is exactly prefix + section + footer; any
  // trailing slack means truncation elsewhere or a foreign file.
  const uint64_t expected =
      kHeaderBytes + m->size() * sizeof(float) + kFooterBytes;
  if (file_size != expected) {
    return Status::DataLoss(StrFormat(
        "%s: size mismatch (%llu bytes on disk, %llu expected for %zux%zu)"
        " — truncated or corrupted artifact",
        path.c_str(), static_cast<unsigned long long>(file_size),
        static_cast<unsigned long long>(expected), m->rows(), m->cols()));
  }

  uint32_t stored_crc = 0;
  in.read(reinterpret_cast<char*>(&stored_crc), sizeof(stored_crc));
  if (!in) return Status::DataLoss(path + ": cannot read artifact footer");
  if (crc.value() != stored_crc) {
    return Status::DataLoss(StrFormat(
        "%s: CRC mismatch (stored %08x, computed %08x) — corrupted artifact",
        path.c_str(), stored_crc, crc.value()));
  }
  return m;
}

}  // namespace ceaff::la
