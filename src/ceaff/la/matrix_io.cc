#include "ceaff/la/matrix_io.h"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "ceaff/common/crc32.h"
#include "ceaff/common/string_util.h"

namespace ceaff::la {

namespace {

constexpr char kMagic[8] = {'C', 'E', 'A', 'F', 'F', 'M', 'A', 'T'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = 32;
constexpr size_t kFooterBytes = 4;

struct Header {
  char magic[8];
  uint32_t version;
  uint32_t reserved;
  uint64_t rows;
  uint64_t cols;
};
static_assert(sizeof(Header) == kHeaderBytes, "artifact header must pack");

}  // namespace

Status SaveMatrixArtifact(const Matrix& m, const std::string& path) {
  Header header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.reserved = 0;
  header.rows = m.rows();
  header.cols = m.cols();

  Crc32 crc;
  crc.Update(&header, sizeof(header));
  crc.Update(m.data(), m.size() * sizeof(float));
  const uint32_t checksum = crc.value();

  // Atomic replace: write a temp sibling, then rename over the target.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp + " for writing");
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
    out.write(reinterpret_cast<const char*>(m.data()),
              static_cast<std::streamsize>(m.size() * sizeof(float)));
    out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
    if (!out) return Status::IOError("write failed: " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return Status::IOError("rename " + tmp + " -> " + path + " failed");
  }
  return Status::OK();
}

StatusOr<Matrix> LoadMatrixArtifact(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);

  std::error_code ec;
  const uint64_t file_size = std::filesystem::file_size(path, ec);
  if (ec) return Status::IOError("stat " + path + ": " + ec.message());
  if (file_size < kHeaderBytes + kFooterBytes) {
    return Status::DataLoss(
        StrFormat("%s: truncated artifact (%llu bytes, need at least %zu)",
                  path.c_str(), static_cast<unsigned long long>(file_size),
                  kHeaderBytes + kFooterBytes));
  }

  Header header;
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in) return Status::DataLoss(path + ": cannot read artifact header");
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::DataLoss(path + ": bad magic, not a CEAFF matrix artifact");
  }
  if (header.version != kVersion) {
    return Status::DataLoss(
        StrFormat("%s: unsupported artifact version %u (expected %u)",
                  path.c_str(), header.version, kVersion));
  }

  // Validate the declared shape against the physical file size *before*
  // allocating, so a corrupted header cannot trigger a huge allocation.
  const uint64_t elems = header.rows * header.cols;
  if (header.cols != 0 && header.rows != elems / header.cols) {
    return Status::DataLoss(path + ": artifact shape overflows");
  }
  const uint64_t expected =
      kHeaderBytes + elems * sizeof(float) + kFooterBytes;
  if (file_size != expected) {
    return Status::DataLoss(StrFormat(
        "%s: size mismatch (%llu bytes on disk, %llu expected for %llux%llu)"
        " — truncated or corrupted artifact",
        path.c_str(), static_cast<unsigned long long>(file_size),
        static_cast<unsigned long long>(expected),
        static_cast<unsigned long long>(header.rows),
        static_cast<unsigned long long>(header.cols)));
  }

  Matrix m(static_cast<size_t>(header.rows), static_cast<size_t>(header.cols));
  in.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(elems * sizeof(float)));
  uint32_t stored_crc = 0;
  in.read(reinterpret_cast<char*>(&stored_crc), sizeof(stored_crc));
  if (!in) return Status::DataLoss(path + ": cannot read artifact payload");

  Crc32 crc;
  crc.Update(&header, sizeof(header));
  crc.Update(m.data(), m.size() * sizeof(float));
  if (crc.value() != stored_crc) {
    return Status::DataLoss(StrFormat(
        "%s: CRC mismatch (stored %08x, computed %08x) — corrupted artifact",
        path.c_str(), stored_crc, crc.value()));
  }
  return m;
}

}  // namespace ceaff::la
