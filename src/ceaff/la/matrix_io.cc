#include "ceaff/la/matrix_io.h"

#include <cstdint>
#include <cstring>

#include "ceaff/common/crc32.h"
#include "ceaff/common/durable_io.h"
#include "ceaff/common/string_util.h"

namespace ceaff::la {

namespace {

constexpr char kMagic[8] = {'C', 'E', 'A', 'F', 'F', 'M', 'A', 'T'};
constexpr uint32_t kVersion = 1;
constexpr size_t kPrefixBytes = 16;  // magic + version + reserved
constexpr size_t kHeaderBytes = 32;  // prefix + rows + cols
constexpr size_t kFooterBytes = 4;

/// The fixed artifact preamble preceding the matrix section.
struct Prefix {
  char magic[8];
  uint32_t version;
  uint32_t reserved;
};
static_assert(sizeof(Prefix) == kPrefixBytes, "artifact prefix must pack");

}  // namespace

Status WriteMatrixSection(const Matrix& m, std::ostream& out, Crc32* crc) {
  const uint64_t rows = m.rows();
  const uint64_t cols = m.cols();
  out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(float)));
  if (!out) return Status::IOError("matrix section write failed");
  if (crc != nullptr) {
    crc->Update(&rows, sizeof(rows));
    crc->Update(&cols, sizeof(cols));
    crc->Update(m.data(), m.size() * sizeof(float));
  }
  return Status::OK();
}

StatusOr<Matrix> ReadMatrixSection(std::istream& in,
                                   uint64_t max_payload_bytes, Crc32* crc) {
  uint64_t rows = 0, cols = 0;
  in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  if (!in) return Status::DataLoss("cannot read matrix section shape");

  // Validate the declared shape against what the caller can accept *before*
  // allocating, so a corrupted header cannot trigger a huge allocation.
  const uint64_t elems = rows * cols;
  if (cols != 0 && rows != elems / cols) {
    return Status::DataLoss("matrix section shape overflows");
  }
  if (elems > max_payload_bytes / sizeof(float)) {
    return Status::DataLoss(StrFormat(
        "matrix section declares %llux%llu (%llu bytes) but only %llu bytes "
        "remain — truncated or corrupted artifact",
        static_cast<unsigned long long>(rows),
        static_cast<unsigned long long>(cols),
        static_cast<unsigned long long>(elems * sizeof(float)),
        static_cast<unsigned long long>(max_payload_bytes)));
  }

  Matrix m(static_cast<size_t>(rows), static_cast<size_t>(cols));
  in.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(elems * sizeof(float)));
  if (!in) return Status::DataLoss("cannot read matrix section payload");
  if (crc != nullptr) {
    crc->Update(&rows, sizeof(rows));
    crc->Update(&cols, sizeof(cols));
    crc->Update(m.data(), m.size() * sizeof(float));
  }
  return m;
}

std::string SerializeMatrixArtifact(const Matrix& m) {
  Prefix prefix;
  std::memcpy(prefix.magic, kMagic, sizeof(kMagic));
  prefix.version = kVersion;
  prefix.reserved = 0;

  const uint64_t rows = m.rows();
  const uint64_t cols = m.cols();
  const size_t payload = m.size() * sizeof(float);

  std::string bytes;
  bytes.reserve(kHeaderBytes + payload + kFooterBytes);
  bytes.append(reinterpret_cast<const char*>(&prefix), sizeof(prefix));
  bytes.append(reinterpret_cast<const char*>(&rows), sizeof(rows));
  bytes.append(reinterpret_cast<const char*>(&cols), sizeof(cols));
  if (payload > 0) {  // empty matrix: data() is null
    bytes.append(reinterpret_cast<const char*>(m.data()), payload);
  }
  const uint32_t checksum = Crc32Of(bytes.data(), bytes.size());
  bytes.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  return bytes;
}

StatusOr<Matrix> ParseMatrixArtifact(std::string_view bytes,
                                     const std::string& context) {
  if (bytes.size() < kHeaderBytes + kFooterBytes) {
    return Status::DataLoss(
        StrFormat("%s: truncated artifact (%llu bytes, need at least %zu)",
                  context.c_str(),
                  static_cast<unsigned long long>(bytes.size()),
                  kHeaderBytes + kFooterBytes));
  }

  Prefix prefix;
  std::memcpy(&prefix, bytes.data(), sizeof(prefix));
  if (std::memcmp(prefix.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::DataLoss(context +
                            ": bad magic, not a CEAFF matrix artifact");
  }
  if (prefix.version != kVersion) {
    return Status::DataLoss(
        StrFormat("%s: unsupported artifact version %u (expected %u)",
                  context.c_str(), prefix.version, kVersion));
  }

  uint64_t rows = 0, cols = 0;
  std::memcpy(&rows, bytes.data() + kPrefixBytes, sizeof(rows));
  std::memcpy(&cols, bytes.data() + kPrefixBytes + sizeof(rows),
              sizeof(cols));
  const uint64_t elems = rows * cols;
  if (cols != 0 && rows != elems / cols) {
    return Status::DataLoss(context + ": matrix section shape overflows");
  }

  // The single-matrix artifact is exactly prefix + section + footer; any
  // slack either way means truncation or a foreign file.
  const uint64_t payload = elems * sizeof(float);
  const uint64_t expected = kHeaderBytes + payload + kFooterBytes;
  if (bytes.size() != expected) {
    return Status::DataLoss(StrFormat(
        "%s: size mismatch (%llu bytes, %llu expected for %llux%llu)"
        " — truncated or corrupted artifact",
        context.c_str(), static_cast<unsigned long long>(bytes.size()),
        static_cast<unsigned long long>(expected),
        static_cast<unsigned long long>(rows),
        static_cast<unsigned long long>(cols)));
  }

  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - kFooterBytes,
              sizeof(stored_crc));
  const uint32_t computed = Crc32Of(bytes.data(), bytes.size() - kFooterBytes);
  if (computed != stored_crc) {
    return Status::DataLoss(StrFormat(
        "%s: CRC mismatch (stored %08x, computed %08x) — corrupted artifact",
        context.c_str(), stored_crc, computed));
  }

  Matrix m(static_cast<size_t>(rows), static_cast<size_t>(cols));
  if (payload > 0) {  // empty matrix: data() is null, memcpy(null,…,0) is UB
    std::memcpy(m.data(), bytes.data() + kHeaderBytes,
                static_cast<size_t>(payload));
  }
  return m;
}

Status SaveMatrixArtifact(const Matrix& m, const std::string& path,
                          const std::string& scope) {
  return WriteFileAtomic(path, SerializeMatrixArtifact(m), scope);
}

StatusOr<Matrix> LoadMatrixArtifact(const std::string& path) {
  CEAFF_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  return ParseMatrixArtifact(bytes, path);
}

}  // namespace ceaff::la
