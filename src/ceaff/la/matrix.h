#ifndef CEAFF_LA_MATRIX_H_
#define CEAFF_LA_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "ceaff/common/logging.h"
#include "ceaff/common/random.h"

namespace ceaff::la {

/// Dense row-major float matrix. The workhorse value type of the library:
/// embedding tables, GCN activations and all similarity matrices are
/// Matrix instances. Cheap to move, explicit to copy (no hidden sharing).
///
/// A Matrix can also be a read-only *view* over memory it does not own
/// (see ConstView), which the mmap-based index loader uses to serve matrix
/// payloads straight out of a file mapping. Views support every const
/// operation; mutating a view is a programming error (CEAFF_DCHECK).
/// Copying a view materialises it into owned storage, so value semantics
/// are preserved; the creator of a view is responsible for keeping the
/// underlying memory alive for the view's lifetime.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}

  /// Allocates rows x cols, zero-initialised.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  Matrix(const Matrix& other);
  Matrix& operator=(const Matrix& other);
  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  /// Read-only view over external row-major storage of rows x cols floats.
  /// `data` must stay valid (and 4-byte aligned) for the view's lifetime.
  static Matrix ConstView(const float* data, size_t rows, size_t cols);

  /// True when this matrix aliases external memory instead of owning it.
  bool is_view() const { return view_ != nullptr; }

  /// Builds from an initializer-style nested vector (rows of equal length).
  static Matrix FromRows(const std::vector<std::vector<float>>& rows);

  /// rows x cols matrix with i.i.d. samples from a truncated normal
  /// (|z| <= 2σ), the init GCN-Align uses for the input feature matrix X.
  static Matrix TruncatedNormal(size_t rows, size_t cols, float stddev,
                                Rng* rng);

  /// rows x cols with i.i.d. Glorot/Xavier-uniform entries, the standard
  /// init for GCN weight matrices.
  static Matrix GlorotUniform(size_t rows, size_t cols, Rng* rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  float* data() {
    CEAFF_DCHECK(!is_view());
    return data_.data();
  }
  const float* data() const { return view_ ? view_ : data_.data(); }

  float* row(size_t r) {
    CEAFF_DCHECK(!is_view());
    CEAFF_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }
  const float* row(size_t r) const {
    CEAFF_DCHECK(r < rows_);
    return data() + r * cols_;
  }

  float& at(size_t r, size_t c) {
    CEAFF_DCHECK(!is_view());
    CEAFF_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float at(size_t r, size_t c) const {
    CEAFF_DCHECK(r < rows_ && c < cols_);
    return data()[r * cols_ + c];
  }

  float& operator()(size_t r, size_t c) { return at(r, c); }
  float operator()(size_t r, size_t c) const { return at(r, c); }

  void Fill(float v);
  void SetZero() { Fill(0.0f); }

  /// this += other (same shape).
  void Add(const Matrix& other);
  /// this -= other (same shape).
  void Sub(const Matrix& other);
  /// this *= s.
  void Scale(float s);
  /// this += s * other (axpy, same shape).
  void Axpy(float s, const Matrix& other);

  /// Element-wise maximum with zero, in place (ReLU).
  void ReluInPlace();

  /// L2-normalises every row in place; all-zero rows are left untouched.
  void L2NormalizeRows();

  /// Frobenius norm.
  float FrobeniusNorm() const;

  /// Sum of all entries.
  double Sum() const;

  /// Transposed copy.
  Matrix Transposed() const;

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Human-readable dump (small matrices only; used in tests/demos).
  std::string ToString(int precision = 3) const;

 private:
  size_t rows_, cols_;
  std::vector<float> data_;
  // Non-null iff this matrix is a ConstView; data_ is empty in that case.
  const float* view_ = nullptr;
};

/// out = a * b. Shapes must agree ((m,k) x (k,n) -> (m,n)).
Matrix MatMul(const Matrix& a, const Matrix& b);

/// out = a * b^T ((m,k) x (n,k) -> (m,n)). The layout-friendly product used
/// for similarity matrices and backprop.
Matrix MatMulBT(const Matrix& a, const Matrix& b);

/// out = a^T * b ((k,m) x (k,n) -> (m,n)).
Matrix MatMulAT(const Matrix& a, const Matrix& b);

}  // namespace ceaff::la

#endif  // CEAFF_LA_MATRIX_H_
