#include "ceaff/la/csls.h"

#include <algorithm>
#include <vector>

namespace ceaff::la {

namespace {

/// Mean of the `k` largest values in [begin, end) with stride `stride`.
/// The top-k are summed in descending sorted order (not nth_element's
/// arbitrary order) so this reference and the blocked la/kernels.h
/// CslsRescaleK accumulate identically and stay bit-identical.
double TopKMean(const float* begin, size_t count, size_t stride, size_t k) {
  std::vector<float> values;
  values.reserve(count);
  for (size_t i = 0; i < count; ++i) values.push_back(begin[i * stride]);
  k = std::min(k, values.size());
  if (k == 0) return 0.0;
  std::partial_sort(values.begin(), values.begin() + static_cast<long>(k),
                    values.end(), std::greater<float>());
  double sum = 0.0;
  for (size_t i = 0; i < k; ++i) sum += values[i];
  return sum / static_cast<double>(k);
}

}  // namespace

Matrix CslsRescale(const Matrix& m, size_t k) {
  if (k == 0 || m.empty()) return m;
  std::vector<double> row_mean(m.rows());
  for (size_t i = 0; i < m.rows(); ++i) {
    row_mean[i] = TopKMean(m.row(i), m.cols(), 1, k);
  }
  std::vector<double> col_mean(m.cols());
  for (size_t j = 0; j < m.cols(); ++j) {
    col_mean[j] = TopKMean(m.data() + j, m.rows(), m.cols(), k);
  }
  Matrix out(m.rows(), m.cols());
  for (size_t i = 0; i < m.rows(); ++i) {
    const float* src = m.row(i);
    float* dst = out.row(i);
    for (size_t j = 0; j < m.cols(); ++j) {
      dst[j] = static_cast<float>(2.0 * src[j] - row_mean[i] - col_mean[j]);
    }
  }
  return out;
}

}  // namespace ceaff::la
