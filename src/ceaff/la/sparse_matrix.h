#ifndef CEAFF_LA_SPARSE_MATRIX_H_
#define CEAFF_LA_SPARSE_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ceaff/la/matrix.h"

namespace ceaff::la {

/// One coordinate-format entry, the construction currency for sparse
/// matrices (duplicates are summed on Build).
struct Triplet {
  uint32_t row;
  uint32_t col;
  float value;
};

/// Compressed-sparse-row float matrix. Used for the (weighted, normalised)
/// KG adjacency consumed by the GCN; immutable after Build.
class SparseMatrix {
 public:
  SparseMatrix() : rows_(0), cols_(0) {}

  /// Builds CSR from COO triplets; duplicate (row, col) entries are summed.
  static SparseMatrix Build(size_t rows, size_t cols,
                            std::vector<Triplet> triplets);

  /// Identity of size n.
  static SparseMatrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return values_.size(); }

  /// CSR row pointer array, size rows()+1.
  const std::vector<uint32_t>& row_ptr() const { return row_ptr_; }
  const std::vector<uint32_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  /// Value at (r, c); 0 if not stored. O(log nnz(row)).
  float at(size_t r, size_t c) const;

  /// out = this * dense ((m,k) sparse x (k,n) dense -> (m,n) dense).
  Matrix Multiply(const Matrix& dense) const;

  /// out = this^T * dense ((m,k)^T x (m,n) -> (k,n)). Backprop helper.
  Matrix MultiplyTransposed(const Matrix& dense) const;

  /// Returns a copy with every row scaled to sum 1 (rows summing to zero
  /// are left as-is) — random-walk normalisation  D^-1 (A).
  SparseMatrix RowNormalized() const;

  /// Returns D^-1/2 (A) D^-1/2, the symmetric normalisation of Kipf-GCN.
  /// Zero-degree rows/cols contribute nothing.
  SparseMatrix SymNormalized() const;

  /// Dense copy (small matrices / tests only).
  Matrix ToDense() const;

 private:
  size_t rows_, cols_;
  std::vector<uint32_t> row_ptr_;
  std::vector<uint32_t> col_idx_;
  std::vector<float> values_;
};

}  // namespace ceaff::la

#endif  // CEAFF_LA_SPARSE_MATRIX_H_
