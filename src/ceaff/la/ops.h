#ifndef CEAFF_LA_OPS_H_
#define CEAFF_LA_OPS_H_

#include <cstddef>
#include <vector>

#include "ceaff/la/matrix.h"

namespace ceaff::la {

/// Pairwise cosine similarity: out(i, j) = cos(a_i, b_j) for row vectors of
/// `a` (n1 x d) and `b` (n2 x d). Zero rows yield similarity 0.
Matrix CosineSimilarity(const Matrix& a, const Matrix& b);

/// Index of the maximum entry of each row (first one on ties).
std::vector<size_t> RowArgmax(const Matrix& m);

/// Index of the maximum entry of each column (first one on ties).
std::vector<size_t> ColArgmax(const Matrix& m);

/// Indices of the k largest entries of row `r`, in descending value order
/// (ties broken by lower index). k is clamped to cols().
std::vector<size_t> RowTopK(const Matrix& m, size_t r, size_t k);

/// Dense descending ranking of row `r`: out[j] = rank (1-based) of column j.
/// Used for MRR / Hits@k evaluation.
std::vector<size_t> RowRanks(const Matrix& m, size_t r);

/// out = sum_k weights[k] * mats[k]. All matrices must share a shape and
/// `weights.size() == mats.size()`.
Matrix WeightedSum(const std::vector<const Matrix*>& mats,
                   const std::vector<double>& weights);

/// Min-max normalises the matrix into [0, 1] in place. A constant matrix
/// maps to all zeros.
void MinMaxNormalize(Matrix* m);

}  // namespace ceaff::la

#endif  // CEAFF_LA_OPS_H_
