#include "ceaff/la/sparse_matrix.h"

#include <algorithm>
#include <cmath>

#include "ceaff/common/logging.h"

namespace ceaff::la {

SparseMatrix SparseMatrix::Build(size_t rows, size_t cols,
                                 std::vector<Triplet> triplets) {
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  for (const Triplet& t : triplets) {
    CEAFF_CHECK(t.row < rows && t.col < cols)
        << "triplet (" << t.row << "," << t.col << ") outside " << rows << "x"
        << cols;
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  m.row_ptr_.assign(rows + 1, 0);
  for (size_t i = 0; i < triplets.size();) {
    size_t j = i;
    float sum = 0.0f;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      sum += triplets[j].value;
      ++j;
    }
    m.col_idx_.push_back(triplets[i].col);
    m.values_.push_back(sum);
    m.row_ptr_[triplets[i].row + 1]++;
    i = j;
  }
  for (size_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

SparseMatrix SparseMatrix::Identity(size_t n) {
  std::vector<Triplet> t;
  t.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    t.push_back({static_cast<uint32_t>(i), static_cast<uint32_t>(i), 1.0f});
  }
  return Build(n, n, std::move(t));
}

float SparseMatrix::at(size_t r, size_t c) const {
  CEAFF_DCHECK(r < rows_ && c < cols_);
  const uint32_t* begin = col_idx_.data() + row_ptr_[r];
  const uint32_t* end = col_idx_.data() + row_ptr_[r + 1];
  const uint32_t* it = std::lower_bound(begin, end, static_cast<uint32_t>(c));
  if (it == end || *it != c) return 0.0f;
  return values_[static_cast<size_t>(it - col_idx_.data())];
}

Matrix SparseMatrix::Multiply(const Matrix& dense) const {
  CEAFF_CHECK(cols_ == dense.rows())
      << "spmm shape mismatch: " << rows_ << "x" << cols_ << " * "
      << dense.rows() << "x" << dense.cols();
  Matrix out(rows_, dense.cols());
  const size_t n = dense.cols();
  for (size_t r = 0; r < rows_; ++r) {
    float* orow = out.row(r);
    for (uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const float v = values_[k];
      const float* drow = dense.row(col_idx_[k]);
      for (size_t j = 0; j < n; ++j) orow[j] += v * drow[j];
    }
  }
  return out;
}

Matrix SparseMatrix::MultiplyTransposed(const Matrix& dense) const {
  CEAFF_CHECK(rows_ == dense.rows())
      << "spmmT shape mismatch: (" << rows_ << "x" << cols_ << ")^T * "
      << dense.rows() << "x" << dense.cols();
  Matrix out(cols_, dense.cols());
  const size_t n = dense.cols();
  for (size_t r = 0; r < rows_; ++r) {
    const float* drow = dense.row(r);
    for (uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const float v = values_[k];
      float* orow = out.row(col_idx_[k]);
      for (size_t j = 0; j < n; ++j) orow[j] += v * drow[j];
    }
  }
  return out;
}

SparseMatrix SparseMatrix::RowNormalized() const {
  SparseMatrix out = *this;
  for (size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      sum += values_[k];
    }
    if (sum == 0.0) continue;
    float inv = static_cast<float>(1.0 / sum);
    for (uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out.values_[k] *= inv;
    }
  }
  return out;
}

SparseMatrix SparseMatrix::SymNormalized() const {
  CEAFF_CHECK(rows_ == cols_) << "symmetric normalisation needs square matrix";
  std::vector<double> degree(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    for (uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      degree[r] += values_[k];
    }
  }
  std::vector<float> inv_sqrt(rows_, 0.0f);
  for (size_t r = 0; r < rows_; ++r) {
    if (degree[r] > 0.0) {
      inv_sqrt[r] = static_cast<float>(1.0 / std::sqrt(degree[r]));
    }
  }
  SparseMatrix out = *this;
  for (size_t r = 0; r < rows_; ++r) {
    for (uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out.values_[k] *= inv_sqrt[r] * inv_sqrt[col_idx_[k]];
    }
  }
  return out;
}

Matrix SparseMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out.at(r, col_idx_[k]) = values_[k];
    }
  }
  return out;
}

}  // namespace ceaff::la
