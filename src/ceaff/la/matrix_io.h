#ifndef CEAFF_LA_MATRIX_IO_H_
#define CEAFF_LA_MATRIX_IO_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>

#include "ceaff/common/crc32.h"
#include "ceaff/common/statusor.h"
#include "ceaff/la/matrix.h"

namespace ceaff::la {

/// Checksummed binary artifact format for dense matrices (embeddings,
/// similarity matrices, checkpoints). Layout, all little-endian:
///
///   bytes 0..7    magic "CEAFFMAT"
///   bytes 8..11   format version (uint32, currently 1)
///   bytes 12..15  reserved (zero)
///   bytes 16..23  rows (uint64)
///   bytes 24..31  cols (uint64)
///   ...           rows*cols float32 payload, row-major
///   last 4 bytes  CRC-32 over everything before it (header + payload)
///
/// Readers verify the magic, version, exact file size and CRC before
/// returning data; any mismatch is kDataLoss, so a truncated, bit-flipped
/// or torn-write file can never be silently loaded as garbage.
///
/// Writers go through common/durable_io.h's WriteFileAtomic (unique temp
/// file → write → fsync(file) → rename → fsync(dir)), so a crash mid-write
/// leaves either the old artifact or the new one — never a half-written
/// file under the final name, and once Save returns the new artifact
/// survives power loss.

/// Serialises `m` into the artifact byte format above (for callers that
/// manage their own durable storage, e.g. the generational checkpoint
/// store).
std::string SerializeMatrixArtifact(const Matrix& m);

/// Parses artifact bytes. `context` names the source (a path, an artifact
/// name) for error messages. kDataLoss on any validation failure.
StatusOr<Matrix> ParseMatrixArtifact(std::string_view bytes,
                                     const std::string& context);

/// Saves `m` to `path` in the format above. kIOError on filesystem
/// failures. `scope` names the failpoint family for the underlying
/// WriteFileAtomic.
Status SaveMatrixArtifact(const Matrix& m, const std::string& path,
                          const std::string& scope = "matrix");

/// Loads a matrix artifact. kIOError when the file cannot be opened,
/// kDataLoss when it exists but fails validation (bad magic/version,
/// wrong size, CRC mismatch).
StatusOr<Matrix> LoadMatrixArtifact(const std::string& path);

/// Stream-level framing blocks — the shared building blocks of the
/// single-matrix artifact above and of composite artifacts (the serving
/// layer's AlignmentIndex container embeds many matrices in one file).
/// A section is: rows (uint64) + cols (uint64) + rows*cols float32
/// payload, row-major, little-endian. When `crc` is non-null every byte
/// written/read is also fed into it, so composite writers accumulate a
/// single checksum across all their sections.

/// Appends one matrix section to `out`. kIOError on stream failure.
Status WriteMatrixSection(const Matrix& m, std::ostream& out,
                          Crc32* crc = nullptr);

/// Reads one matrix section. `max_payload_bytes` bounds the payload this
/// caller is prepared to accept (typically derived from the remaining file
/// size) so a corrupted shape header can never trigger an oversized
/// allocation; a declared shape exceeding it is kDataLoss.
StatusOr<Matrix> ReadMatrixSection(std::istream& in,
                                   uint64_t max_payload_bytes,
                                   Crc32* crc = nullptr);

}  // namespace ceaff::la

#endif  // CEAFF_LA_MATRIX_IO_H_
