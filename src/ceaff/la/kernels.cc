#include "ceaff/la/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>

#include "ceaff/common/logging.h"
#include "ceaff/la/autotune.h"

namespace ceaff::la {

namespace {

/// Resolves the context a kernel actually runs with: when a tuner is
/// attached, its measured per-shape KernelOptions replace ctx.opts (the
/// returned context drops the tuner so the measurement sub-kernels can
/// never recurse into Choose). Blocking parameters only partition output
/// elements, so a tuned context is bit-identical to the default one by
/// the determinism contract above.
KernelContext TunedContext(const KernelContext& ctx, const char* kernel,
                           size_t m, size_t n, size_t d) {
  KernelContext out = ctx;
  out.tuner = nullptr;
  if (ctx.tuner != nullptr) {
    out.opts = ctx.tuner->Choose(kernel, m, n, d, ctx.pool, ctx.opts);
  }
  return out;
}

/// Accumulator lane count for the blocked dot products. Eight independent
/// float chains with unit-stride loads is the shape compilers auto-vectorise
/// (two SSE2 / one AVX register of partial sums); the naive references'
/// single sequential double chain cannot be vectorised without reassociation
/// flags, which is where the single-thread speedup comes from.
constexpr size_t kDotLanes = 8;

/// Dot product of two length-d float spans with lane-split accumulation.
/// The lane combine order is fixed — ((l0+l4)+(l1+l5)) + ((l2+l6)+(l3+l7)),
/// then the scalar tail — so the result depends only on d, never on the
/// thread count or block sizes.
inline float DotLanes(const float* a, const float* b, size_t d) {
  float lanes[kDotLanes] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  size_t i = 0;
  for (; i + kDotLanes <= d; i += kDotLanes) {
    for (size_t l = 0; l < kDotLanes; ++l) {
      lanes[l] += a[i + l] * b[i + l];
    }
  }
  float sum = ((lanes[0] + lanes[4]) + (lanes[1] + lanes[5])) +
              ((lanes[2] + lanes[6]) + (lanes[3] + lanes[7]));
  for (; i < d; ++i) sum += a[i] * b[i];
  return sum;
}

/// Runs fn(begin, end) over the fixed partition of [0, n) into panels of
/// max(block, ctx.opts.grain), parallel across ctx.pool. The grain floor
/// keeps small shapes from splitting into tasks too fine to pay for their
/// dispatch; when it leaves a single panel the sweep runs inline on the
/// caller's thread, skipping the pool entirely (a grain >= n is how a
/// tuned config serializes a kernel that loses under fan-out). The
/// partition depends only on n, `block` and the grain — never the thread
/// count — so each output element is produced by exactly one task whose
/// internal order is thread-count independent. Once the context's
/// cancellation token fires, remaining panels are skipped — callers must
/// surface the error via KernelContext::CheckCancelled and discard the
/// (partial) output.
void ParallelPanels(const KernelContext& ctx, size_t n, size_t block,
                    const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  block = std::max<size_t>(1, std::max(block, ctx.opts.grain));
  const size_t panels = (n + block - 1) / block;
  if (panels == 1) {
    if (ctx.cancel != nullptr && !ctx.cancel->Check("kernel panel").ok()) {
      return;
    }
    fn(0, n);
    return;
  }
  std::atomic<bool> cancelled{false};
  ParallelFor(ctx.pool, panels, [&](size_t p) {
    if (cancelled.load(std::memory_order_relaxed)) return;
    if (ctx.cancel != nullptr && !ctx.cancel->Check("kernel panel").ok()) {
      cancelled.store(true, std::memory_order_relaxed);
      return;
    }
    const size_t begin = p * block;
    fn(begin, std::min(n, begin + block));
  });
}

/// Per-row inverse L2 norms with the same lane-split accumulation as the
/// dot kernels; exactly 0 for zero-norm rows so cosine rows/columns of a
/// zero vector come out as exact zeros, never NaN.
std::vector<float> InverseRowNorms(const KernelContext& ctx, const Matrix& m) {
  std::vector<float> inv(m.rows(), 0.0f);
  ParallelPanels(ctx, m.rows(), ctx.opts.row_block, [&](size_t r0, size_t r1) {
    for (size_t i = r0; i < r1; ++i) {
      const float* p = m.row(i);
      const float sq = DotLanes(p, p, m.cols());
      inv[i] = sq > 0.0f ? 1.0f / std::sqrt(sq) : 0.0f;
    }
  });
  return inv;
}

/// Shared core of MatMulBTK / CosineSimilarityK: out = a·bᵀ with an
/// optional per-row/per-column scale (null = unscaled). B is walked in
/// col_block-row panels so one panel stays L2-resident while a row panel
/// of A streams over it.
Matrix BlockedMatMulBT(const KernelContext& caller_ctx, const Matrix& a,
                       const Matrix& b, const float* scale_a,
                       const float* scale_b) {
  CEAFF_CHECK(a.cols() == b.cols())
      << "matmulBT shape mismatch: " << a.rows() << "x" << a.cols() << " * ("
      << b.rows() << "x" << b.cols() << ")^T";
  const KernelContext ctx =
      TunedContext(caller_ctx, "matmul_bt", a.rows(), b.rows(), a.cols());
  Matrix out(a.rows(), b.rows());
  const size_t d = a.cols();
  const size_t col_block = std::max<size_t>(1, ctx.opts.col_block);
  ParallelPanels(ctx, a.rows(), ctx.opts.row_block, [&](size_t r0, size_t r1) {
    for (size_t c0 = 0; c0 < b.rows(); c0 += col_block) {
      const size_t c1 = std::min(b.rows(), c0 + col_block);
      for (size_t i = r0; i < r1; ++i) {
        const float* ai = a.row(i);
        float* oi = out.row(i);
        const float sa = scale_a != nullptr ? scale_a[i] : 1.0f;
        for (size_t j = c0; j < c1; ++j) {
          float v = DotLanes(ai, b.row(j), d);
          if (scale_a != nullptr) v = (v * sa) * scale_b[j];
          oi[j] = v;
        }
      }
    }
  });
  return out;
}

/// Mean of the k largest of `values` (consumed in place): partial-sorted
/// descending, then summed in that order. Identical multiset + identical
/// summation order = bit-identical result between the naive and blocked
/// CSLS implementations.
double TopKMeanSortedDesc(std::vector<float>* values, size_t k) {
  k = std::min(k, values->size());
  if (k == 0) return 0.0;
  std::partial_sort(values->begin(),
                    values->begin() + static_cast<long>(k), values->end(),
                    std::greater<float>());
  double sum = 0.0;
  for (size_t i = 0; i < k; ++i) sum += (*values)[i];
  return sum / static_cast<double>(k);
}

}  // namespace

void KernelOptions::OverrideBlock(size_t block) {
  if (block == 0) return;
  col_block = block;
  row_block = std::max<size_t>(1, block / 2);
}

// ---------------------------------------------------------------------------
// GEMM family
// ---------------------------------------------------------------------------

Matrix MatMulBTK(const KernelContext& ctx, const Matrix& a, const Matrix& b) {
  return BlockedMatMulBT(ctx, a, b, nullptr, nullptr);
}

Matrix MatMulK(const KernelContext& caller_ctx, const Matrix& a,
               const Matrix& b) {
  CEAFF_CHECK(a.cols() == b.rows())
      << "matmul shape mismatch: " << a.rows() << "x" << a.cols() << " * "
      << b.rows() << "x" << b.cols();
  const KernelContext ctx =
      TunedContext(caller_ctx, "matmul", a.rows(), b.cols(), a.cols());
  Matrix out(a.rows(), b.cols());
  const size_t k = a.cols(), n = b.cols();
  // i-k-j per row panel: out rows accumulate over k in ascending order, the
  // same order as the naive MatMul, so the two are bit-identical.
  ParallelPanels(ctx, a.rows(), ctx.opts.row_block, [&](size_t r0, size_t r1) {
    for (size_t i = r0; i < r1; ++i) {
      const float* arow = a.row(i);
      float* orow = out.row(i);
      for (size_t kk = 0; kk < k; ++kk) {
        const float aik = arow[kk];
        if (aik == 0.0f) continue;
        const float* brow = b.row(kk);
        for (size_t j = 0; j < n; ++j) orow[j] += aik * brow[j];
      }
    }
  });
  return out;
}

Matrix MatMulATK(const KernelContext& ctx, const Matrix& a, const Matrix& b) {
  CEAFF_CHECK(a.rows() == b.rows())
      << "matmulAT shape mismatch: (" << a.rows() << "x" << a.cols()
      << ")^T * " << b.rows() << "x" << b.cols();
  Matrix out(a.cols(), b.cols());
  const size_t k = a.rows(), n = b.cols(), acols = a.cols();
  // Parallel over *output* row panels: each task owns rows [r0, r1) of the
  // result and scans the shared k dimension in ascending order — race-free
  // and thread-count independent. (The naive MatMulAT scans k outermost;
  // the per-element accumulation order — ascending kk — is the same, so the
  // two are bit-identical.)
  ParallelPanels(ctx, acols, ctx.opts.row_block, [&](size_t r0, size_t r1) {
    for (size_t kk = 0; kk < k; ++kk) {
      const float* arow = a.row(kk);
      const float* brow = b.row(kk);
      for (size_t i = r0; i < r1; ++i) {
        const float aki = arow[i];
        if (aki == 0.0f) continue;
        float* orow = out.row(i);
        for (size_t j = 0; j < n; ++j) orow[j] += aki * brow[j];
      }
    }
  });
  return out;
}

Matrix CosineSimilarityK(const KernelContext& ctx, const Matrix& a,
                         const Matrix& b) {
  CEAFF_CHECK(a.cols() == b.cols())
      << "cosine shape mismatch: " << a.rows() << "x" << a.cols() << " vs "
      << b.rows() << "x" << b.cols();
  const std::vector<float> inv_a = InverseRowNorms(ctx, a);
  const std::vector<float> inv_b = InverseRowNorms(ctx, b);
  return BlockedMatMulBT(ctx, a, b, inv_a.data(), inv_b.data());
}

StatusOr<Matrix> CosineSimilarityChecked(const KernelContext& ctx,
                                         const Matrix& a, const Matrix& b) {
  CEAFF_RETURN_IF_ERROR(ctx.CheckCancelled("cosine similarity"));
  Matrix out = CosineSimilarityK(ctx, a, b);
  // A token that fired mid-kernel left later panels unwritten; reject the
  // partial result here rather than hand it back.
  CEAFF_RETURN_IF_ERROR(ctx.CheckCancelled("cosine similarity"));
  return out;
}

// ---------------------------------------------------------------------------
// Sparse-dense (GCN layer)
// ---------------------------------------------------------------------------

Matrix SpMMK(const KernelContext& caller_ctx, const SparseMatrix& a,
             const Matrix& x) {
  CEAFF_CHECK(a.cols() == x.rows())
      << "spmm shape mismatch: " << a.rows() << "x" << a.cols() << " * "
      << x.rows() << "x" << x.cols();
  const size_t rows = a.rows();
  const size_t avg_nnz = rows == 0 ? 0 : a.nnz() / rows;
  const KernelContext ctx =
      TunedContext(caller_ctx, "spmm", rows, x.cols(), avg_nnz);
  Matrix out(rows, x.cols());
  const size_t n = x.cols();
  const uint32_t* rp = a.row_ptr().data();
  const uint32_t* ci = a.col_idx().data();
  const float* vals = a.values().data();
  const size_t nnz = a.nnz();
  // Fused single-sweep CSR panel: one pass walks row_ptr/col_idx/values
  // with raw pointers hoisted out of the loop, and — when the dense
  // operand is too big to sit in L2 — prefetches the dense row of a
  // *later* nonzero while the current one streams. The gathers
  // x.row(col_idx[k]) are the kernel's only random accesses; on feature
  // matrices bigger than L2 the miss latency dominates (measured 1.7x on
  // the 20000x20000 nnz/row=10 d=64 bench shape), while on operands that
  // stay cache-resident the same prefetches are pure overhead, so the
  // footprint decides once per call. col_idx is contiguous across row
  // boundaries, so the lookahead index k + dist is valid anywhere below
  // nnz (prefetching into a neighbouring task's rows is harmless —
  // prefetch has no architectural effect). Per output row the nnz walk and
  // per-element accumulation order are exactly SparseMatrix::Multiply's,
  // so the result is bit-identical to it at any thread count, any blocking
  // and either prefetch decision.
  const bool use_prefetch = x.size() * sizeof(float) > (size_t{1} << 20);
  const auto sweep = [&](size_t r0, size_t r1) {
    constexpr size_t kPrefetchAhead = 6;
    for (size_t r = r0; r < r1; ++r) {
      float* orow = out.row(r);
      const uint32_t k1 = rp[r + 1];
      for (uint32_t k = rp[r]; k < k1; ++k) {
        if (use_prefetch && k + kPrefetchAhead < nnz) {
          const float* next = x.row(ci[k + kPrefetchAhead]);
          __builtin_prefetch(next);
          __builtin_prefetch(next + 16);
        }
        const float v = vals[k];
        const float* drow = x.row(ci[k]);
        for (size_t j = 0; j < n; ++j) orow[j] += v * drow[j];
      }
    }
  };
  // SpMM panels are far cheaper than the dense kernels' (a row costs
  // O(nnz_row·n), typically a handful of axpys), so on the sequential path
  // even the per-panel std::function dispatch of ParallelPanels costs a
  // measurable slice of the whole kernel. Run the fused sweep directly,
  // polling the token at the panel boundaries the parallel partition would
  // have had.
  if (ctx.pool == nullptr || ctx.pool->num_threads() <= 1) {
    const size_t block =
        std::max<size_t>(1, std::max(ctx.opts.row_block, ctx.opts.grain));
    for (size_t r0 = 0; r0 < rows; r0 += block) {
      if (ctx.cancel != nullptr && !ctx.cancel->Check("kernel panel").ok()) {
        return out;  // partial; surfaced via KernelContext::CheckCancelled
      }
      sweep(r0, std::min(rows, r0 + block));
    }
    return out;
  }
  // Parallel path: each task owns a panel of output rows and runs the same
  // fused sweep over it.
  ParallelPanels(ctx, rows, ctx.opts.row_block, sweep);
  return out;
}

Matrix SpMMTransposedK(const KernelContext& ctx, const SparseMatrix& a,
                       const Matrix& x) {
  CEAFF_CHECK(a.rows() == x.rows())
      << "spmmT shape mismatch: (" << a.rows() << "x" << a.cols() << ")^T * "
      << x.rows() << "x" << x.cols();
  Matrix out(a.cols(), x.cols());
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  // aᵀ·x scatters into output rows keyed by col_idx, so row panels would
  // race. Parallelise over output *columns* instead: each task owns columns
  // [c0, c1) of every output row and replays the full nnz scan restricted
  // to that column range — disjoint writes, and per element the accumulation
  // order (ascending r, ascending nnz) matches MultiplyTransposed exactly.
  ParallelPanels(ctx, x.cols(), ctx.opts.col_block, [&](size_t c0, size_t c1) {
    for (size_t r = 0; r < a.rows(); ++r) {
      const float* drow = x.row(r);
      for (uint32_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
        const float v = values[k];
        float* orow = out.row(col_idx[k]);
        for (size_t j = c0; j < c1; ++j) orow[j] += v * drow[j];
      }
    }
  });
  return out;
}

// ---------------------------------------------------------------------------
// Sinkhorn normalisation
// ---------------------------------------------------------------------------

void RowNormalizeK(const KernelContext& ctx, Matrix* m) {
  const size_t cols = m->cols();
  ParallelPanels(ctx, m->rows(), ctx.opts.row_block, [&](size_t r0,
                                                         size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      float* row = m->row(r);
      double sum = 0.0;
      for (size_t c = 0; c < cols; ++c) sum += row[c];
      if (sum <= 0.0) continue;
      const float inv = static_cast<float>(1.0 / sum);
      for (size_t c = 0; c < cols; ++c) row[c] *= inv;
    }
  });
}

void ColNormalizeK(const KernelContext& ctx, Matrix* m, double target) {
  const size_t rows = m->rows(), cols = m->cols();
  if (rows == 0 || cols == 0) return;
  ParallelPanels(ctx, cols, ctx.opts.col_block, [&](size_t c0, size_t c1) {
    // One row-major sweep gathers every column sum in the panel — ascending
    // row order per column, the same order as the naive strided walk, so
    // the sums (and the scaled entries) are bit-identical to it.
    std::vector<double> sums(c1 - c0, 0.0);
    for (size_t r = 0; r < rows; ++r) {
      const float* row = m->row(r);
      for (size_t c = c0; c < c1; ++c) sums[c - c0] += row[c];
    }
    std::vector<float> scales(c1 - c0, 1.0f);
    for (size_t c = c0; c < c1; ++c) {
      const double sum = sums[c - c0];
      if (sum > 0.0) scales[c - c0] = static_cast<float>(target / sum);
    }
    for (size_t r = 0; r < rows; ++r) {
      float* row = m->row(r);
      for (size_t c = c0; c < c1; ++c) row[c] *= scales[c - c0];
    }
  });
}

// ---------------------------------------------------------------------------
// CSLS
// ---------------------------------------------------------------------------

Matrix CslsRescaleK(const KernelContext& ctx, const Matrix& m, size_t k) {
  if (k == 0 || m.empty()) return m;
  const size_t rows = m.rows(), cols = m.cols();

  std::vector<double> row_mean(rows);
  ParallelPanels(ctx, rows, ctx.opts.row_block, [&](size_t r0, size_t r1) {
    std::vector<float> values;
    for (size_t i = r0; i < r1; ++i) {
      values.assign(m.row(i), m.row(i) + cols);
      row_mean[i] = TopKMeanSortedDesc(&values, k);
    }
  });

  std::vector<double> col_mean(cols);
  ParallelPanels(ctx, cols, ctx.opts.col_block, [&](size_t c0, size_t c1) {
    // Gather the column panel with one cache-friendly row-major sweep into
    // a (panel width x rows) scratch transpose, then reduce each column
    // contiguously — same values in the same ascending-row order as the
    // naive strided walk.
    const size_t width = c1 - c0;
    std::vector<float> panel(width * rows);
    for (size_t i = 0; i < rows; ++i) {
      const float* row = m.row(i);
      for (size_t c = c0; c < c1; ++c) panel[(c - c0) * rows + i] = row[c];
    }
    std::vector<float> values;
    for (size_t c = c0; c < c1; ++c) {
      values.assign(panel.begin() + static_cast<long>((c - c0) * rows),
                    panel.begin() + static_cast<long>((c - c0 + 1) * rows));
      col_mean[c] = TopKMeanSortedDesc(&values, k);
    }
  });

  Matrix out(rows, cols);
  ParallelPanels(ctx, rows, ctx.opts.row_block, [&](size_t r0, size_t r1) {
    for (size_t i = r0; i < r1; ++i) {
      const float* src = m.row(i);
      float* dst = out.row(i);
      for (size_t j = 0; j < cols; ++j) {
        dst[j] = static_cast<float>(2.0 * src[j] - row_mean[i] - col_mean[j]);
      }
    }
  });
  return out;
}

// ---------------------------------------------------------------------------
// String kernels
// ---------------------------------------------------------------------------

namespace {

/// Strips the longest common prefix and suffix of (a, b) in place. Safe for
/// both LCS and edit distance: matching a shared first/last character is
/// always part of some optimal alignment.
void StripCommonAffixes(std::string_view* a, std::string_view* b) {
  size_t prefix = 0;
  const size_t max_prefix = std::min(a->size(), b->size());
  while (prefix < max_prefix && (*a)[prefix] == (*b)[prefix]) ++prefix;
  a->remove_prefix(prefix);
  b->remove_prefix(prefix);
  size_t suffix = 0;
  const size_t max_suffix = std::min(a->size(), b->size());
  while (suffix < max_suffix &&
         (*a)[a->size() - 1 - suffix] == (*b)[b->size() - 1 - suffix]) {
    ++suffix;
  }
  a->remove_suffix(suffix);
  b->remove_suffix(suffix);
}

/// LCS length via the bit-parallel column recurrence
/// (V' = (V + (V & M[c])) | (V & ~M[c]), LCS = count of cleared bits):
/// one word op per 64 positions of b instead of a DP cell each. Single-word
/// fast path for |b| <= 64 (the common case for entity names), multi-word
/// with explicit carry propagation above that.
size_t LcsBitParallel(std::string_view a, std::string_view b) {
  if (b.size() > a.size()) std::swap(a, b);  // bitmask the shorter string
  const size_t n = b.size();
  if (n == 0) return 0;

  if (n <= 64) {
    uint64_t masks[256] = {};
    for (size_t j = 0; j < n; ++j) {
      masks[static_cast<unsigned char>(b[j])] |= uint64_t{1} << j;
    }
    uint64_t v = ~uint64_t{0};
    for (char ca : a) {
      const uint64_t m = masks[static_cast<unsigned char>(ca)];
      const uint64_t u = v & m;
      v = (v + u) | (v & ~m);
    }
    // Cleared bits among the n valid positions are matched LCS positions.
    const uint64_t valid =
        n == 64 ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);
    return static_cast<size_t>(__builtin_popcountll(~v & valid));
  }

  const size_t words = (n + 63) / 64;
  std::vector<uint64_t> masks(256 * words, 0);
  for (size_t j = 0; j < n; ++j) {
    masks[static_cast<unsigned char>(b[j]) * words + j / 64] |=
        uint64_t{1} << (j % 64);
  }
  std::vector<uint64_t> v(words, ~uint64_t{0});
  for (char ca : a) {
    const uint64_t* m = masks.data() +
                        static_cast<unsigned char>(ca) * words;
    uint64_t carry = 0;
    for (size_t w = 0; w < words; ++w) {
      const uint64_t u = v[w] & m[w];
      uint64_t sum = 0;
      // v + u + carry with carry-out across words.
      uint64_t c1 = __builtin_add_overflow(v[w], u, &sum) ? 1 : 0;
      c1 += __builtin_add_overflow(sum, carry, &sum) ? 1 : 0;
      v[w] = sum | (v[w] & ~m[w]);
      carry = c1;
    }
  }
  size_t lcs = 0;
  for (size_t w = 0; w < words; ++w) {
    const size_t bits = std::min<size_t>(64, n - w * 64);
    const uint64_t valid =
        bits == 64 ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
    lcs += static_cast<size_t>(__builtin_popcountll(~v[w] & valid));
  }
  return lcs;
}

}  // namespace

double LevenshteinRatioFast(std::string_view a, std::string_view b) {
  const size_t total = a.size() + b.size();
  if (total == 0) return 1.0;
  // With substitution cost 2 a substitution is never cheaper than
  // delete+insert, so lev* = |a| + |b| − 2·LCS(a, b) exactly. Affix
  // stripping shortens the LCS inputs without changing the identity:
  // lev* on the originals equals |a'| + |b'| − 2·LCS(a', b') on the
  // stripped remainders.
  StripCommonAffixes(&a, &b);
  const size_t lev = a.size() + b.size() - 2 * LcsBitParallel(a, b);
  return static_cast<double>(total - lev) / static_cast<double>(total);
}

size_t LevenshteinDistanceBanded(std::string_view a, std::string_view b,
                                 size_t limit, size_t sub_cost) {
  StripCommonAffixes(&a, &b);
  if (a.size() < b.size()) std::swap(a, b);  // keep rows short
  const size_t n = b.size();
  if (a.size() - n > limit) return limit + 1;  // distance >= |len diff|
  if (n == 0) return a.size();

  // Two-row DP restricted to the |i − j| <= limit diagonal band: any path
  // leaving the band already costs more than `limit` (each off-diagonal
  // step costs >= 1), so out-of-band cells can be treated as infinite.
  const size_t kInf = limit + 1;
  std::vector<size_t> prev(n + 1), cur(n + 1);
  for (size_t j = 0; j <= n; ++j) prev[j] = j <= limit ? j : kInf;
  for (size_t i = 1; i <= a.size(); ++i) {
    const size_t lo = i > limit ? i - limit : 0;
    const size_t hi = std::min(n, i + limit);
    cur[0] = i <= limit ? i : kInf;
    if (lo > 0) cur[lo - 1] = kInf;  // left band edge for the j loop below
    const char ai = a[i - 1];
    size_t row_min = kInf;
    for (size_t j = std::max<size_t>(1, lo); j <= hi; ++j) {
      const size_t del = prev[j] >= kInf ? kInf : prev[j] + 1;
      const size_t ins = cur[j - 1] >= kInf ? kInf : cur[j - 1] + 1;
      const size_t sub =
          prev[j - 1] >= kInf
              ? kInf
              : prev[j - 1] + (ai == b[j - 1] ? 0 : sub_cost);
      cur[j] = std::min({del, ins, sub, kInf});
      row_min = std::min(row_min, cur[j]);
    }
    if (hi < n) cur[hi + 1] = kInf;  // right band edge for the next row
    if (row_min >= kInf) return kInf;  // every band cell blew the limit
    std::swap(prev, cur);
  }
  return std::min(prev[n], kInf);
}

Matrix StringSimilarityMatrixK(const KernelContext& ctx,
                               const std::vector<std::string>& source_names,
                               const std::vector<std::string>& target_names) {
  Matrix m(source_names.size(), target_names.size());
  ParallelPanels(ctx, source_names.size(), ctx.opts.row_block,
                 [&](size_t r0, size_t r1) {
                   for (size_t i = r0; i < r1; ++i) {
                     float* row = m.row(i);
                     for (size_t j = 0; j < target_names.size(); ++j) {
                       row[j] = static_cast<float>(LevenshteinRatioFast(
                           source_names[i], target_names[j]));
                     }
                   }
                 });
  return m;
}

namespace {

/// LCS between the row string whose character masks were prebuilt by the
/// caller (`masks` is 256 × `words` with `n` masked positions) and
/// `stream` — the same recurrence as LcsBitParallel, minus the per-pair
/// mask build (the dominant cost on short-to-medium names). `scratch` is
/// the multi-word state vector, reused across cells of one row panel.
size_t LcsWithMasks(const uint64_t* masks, size_t words, size_t n,
                    std::string_view stream,
                    std::vector<uint64_t>* scratch) {
  if (n == 0 || stream.empty()) return 0;
  if (words == 1) {
    uint64_t v = ~uint64_t{0};
    for (char c : stream) {
      const uint64_t m = masks[static_cast<unsigned char>(c)];
      const uint64_t u = v & m;
      v = (v + u) | (v & ~m);
    }
    const uint64_t valid =
        n == 64 ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);
    return static_cast<size_t>(__builtin_popcountll(~v & valid));
  }
  scratch->assign(words, ~uint64_t{0});
  uint64_t* v = scratch->data();
  for (char c : stream) {
    const uint64_t* m = masks + static_cast<unsigned char>(c) * words;
    uint64_t carry = 0;
    for (size_t w = 0; w < words; ++w) {
      const uint64_t u = v[w] & m[w];
      uint64_t sum = 0;
      uint64_t c1 = __builtin_add_overflow(v[w], u, &sum) ? 1 : 0;
      c1 += __builtin_add_overflow(sum, carry, &sum) ? 1 : 0;
      v[w] = sum | (v[w] & ~m[w]);
      carry = c1;
    }
  }
  size_t lcs = 0;
  for (size_t w = 0; w < words; ++w) {
    const size_t bits = std::min<size_t>(64, n - w * 64);
    const uint64_t valid =
        bits == 64 ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
    lcs += static_cast<size_t>(__builtin_popcountll(~v[w] & valid));
  }
  return lcs;
}

}  // namespace

Matrix StringSimilarityMatrixPruned(
    const KernelContext& ctx, const std::vector<std::string>& source_names,
    const std::vector<std::string>& target_names, double floor) {
  Matrix m(source_names.size(), target_names.size());
  ParallelPanels(ctx, source_names.size(), ctx.opts.row_block, [&](
                                                                   size_t r0,
                                                                   size_t r1) {
    std::vector<uint64_t> masks;
    std::vector<uint64_t> scratch;
    for (size_t i = r0; i < r1; ++i) {
      const std::string& a = source_names[i];
      // Build the bit-parallel character masks for this source name ONCE
      // and stream every target over them — LevenshteinRatioFast rebuilds
      // (and zeroes) the 2 KiB table per pair, which dominates its cost.
      // Skipping the per-pair affix strip keeps lev* unchanged
      // (lev* = |a|+|b| − 2·LCS holds on the originals too), so computed
      // cells stay bit-identical to the exact kernel.
      const size_t words = (a.size() + 63) / 64;
      masks.assign(256 * words, 0);
      for (size_t j = 0; j < a.size(); ++j) {
        masks[static_cast<unsigned char>(a[j]) * words + j / 64] |=
            uint64_t{1} << (j % 64);
      }
      float* row = m.row(i);
      double threshold = floor;
      for (size_t j = 0; j < target_names.size(); ++j) {
        const std::string& b = target_names[j];
        const size_t total = a.size() + b.size();
        if (total == 0) {  // both empty: ratio is exactly 1
          row[j] = 1.0f;
          threshold = std::max(threshold, 1.0);
          continue;
        }
        // Length-ratio upper bound: LCS <= min(|a|,|b|), so the ratio can
        // never exceed 2·min(|a|,|b|) / (|a|+|b|). Below the running row
        // threshold this pair cannot produce a new maximum — record the
        // bound and skip the LCS entirely.
        const size_t min_len = std::min(a.size(), b.size());
        const double ub =
            2.0 * static_cast<double>(min_len) / static_cast<double>(total);
        if (ub <= threshold) {
          row[j] = static_cast<float>(ub);
          continue;
        }
        const size_t lev =
            total - 2 * LcsWithMasks(masks.data(), words, a.size(), b,
                                     &scratch);
        const double ratio = static_cast<double>(total - lev) /
                             static_cast<double>(total);
        row[j] = static_cast<float>(ratio);
        threshold = std::max(threshold, ratio);
      }
    }
  });
  return m;
}

namespace {

/// Accumulates byte length and whitespace-token count over one name list.
void AccumulateNameStats(const std::vector<std::string>& names,
                         uint64_t* chars, uint64_t* tokens) {
  for (const std::string& name : names) {
    *chars += name.size();
    bool in_token = false;
    for (char c : name) {
      const bool space = c == ' ' || c == '\t';
      if (!space && !in_token) ++*tokens;
      in_token = !space;
    }
  }
}

/// Dispatch thresholds — see the header comment on ChooseStringKernel.
constexpr double kPrunedMinMeanChars = 32.0;
constexpr double kPrunedMinMeanTokens = 3.0;

}  // namespace

StringKernelChoice ChooseStringKernel(
    const std::vector<std::string>& source_names,
    const std::vector<std::string>& target_names) {
  StringKernelChoice choice;
  const size_t total = source_names.size() + target_names.size();
  if (total == 0) return choice;
  uint64_t chars = 0;
  uint64_t tokens = 0;
  AccumulateNameStats(source_names, &chars, &tokens);
  AccumulateNameStats(target_names, &chars, &tokens);
  choice.mean_chars = static_cast<double>(chars) / static_cast<double>(total);
  choice.mean_tokens =
      static_cast<double>(tokens) / static_cast<double>(total);
  choice.pruned = choice.mean_chars >= kPrunedMinMeanChars &&
                  choice.mean_tokens >= kPrunedMinMeanTokens;
  return choice;
}

Matrix StringSimilarityMatrixAuto(
    const KernelContext& ctx, const std::vector<std::string>& source_names,
    const std::vector<std::string>& target_names,
    StringKernelChoice* choice_out) {
  const StringKernelChoice choice =
      ChooseStringKernel(source_names, target_names);
  if (choice_out != nullptr) *choice_out = choice;
  if (choice.pruned) {
    return StringSimilarityMatrixPruned(ctx, source_names, target_names);
  }
  return StringSimilarityMatrixK(ctx, source_names, target_names);
}

}  // namespace ceaff::la
