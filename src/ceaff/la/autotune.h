#ifndef CEAFF_LA_AUTOTUNE_H_
#define CEAFF_LA_AUTOTUNE_H_

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "ceaff/common/statusor.h"
#include "ceaff/common/thread_pool.h"
#include "ceaff/la/kernels.h"

namespace ceaff {
class GenerationalStore;
}

namespace ceaff::la {

/// Measured per-shape kernel tuning (DESIGN.md §16).
///
/// The static KernelOptions defaults in la/kernels.h are a single point in
/// a space whose optimum moves with the shape, the thread count and the
/// machine's cache hierarchy: BENCH_kernels.json shows the 1024x1024 d=128
/// GEMM *losing* 1.7x when fanned out over an oversubscribed box, while the
/// 2048x2048 cosine wants a different column panel than the 512x512 one.
/// KernelAutotuner closes that gap empirically: for a (kernel, m, n, d,
/// nthreads) shape class it times a small candidate grid of KernelOptions —
/// row/col block sizes derived from the detected L1/L2 sizes, plus a
/// serialize-vs-fan-out grain choice — on a sampled sub-problem with
/// deterministic synthetic data, and caches the fastest. Because blocking
/// parameters only ever partition output elements (the determinism contract
/// in la/kernels.h), a tuned configuration is bit-identical to the default
/// one; tuning can change *when* an element is computed, never its value.
///
/// Results live in an in-process map and, when a cache directory is
/// configured, persist as a CRC-trailed `tune_cache` artifact in a
/// GenerationalStore — torn or bit-flipped files are quarantined and the
/// tuner falls back to an older generation or re-measures, never to wrong
/// blocking silently (wrong blocking is only slow, but a garbled file must
/// not poison the choices either).
///
/// Kernels that consult the tuner (via KernelContext::tuner): the
/// MatMulBTK/CosineSimilarityK family ("matmul_bt"), MatMulK ("matmul") and
/// SpMMK ("spmm"). Other kernels keep the context's static options.

/// What the tuner is allowed to do when a shape class has no cached
/// measurement yet.
enum class AutotuneMode {
  /// Never consult the cache or measure; kernels keep their static options.
  kOff,
  /// Measure missing shape classes on first use (milliseconds per class,
  /// amortized across the run) and cache the winner.
  kOn,
  /// Reuse persisted measurements only; a miss keeps the static options.
  /// The serving mode: no query ever pays a measurement.
  kCacheOnly,
};

/// Parses "on" / "off" / "cache-only" (the --autotune flag spelling).
StatusOr<AutotuneMode> ParseAutotuneMode(std::string_view text);
const char* AutotuneModeName(AutotuneMode mode);

/// Data-cache sizes the candidate grid is derived from.
struct CpuCacheInfo {
  size_t l1d_bytes = 32 * 1024;
  size_t l2_bytes = 1024 * 1024;
  /// False when sysfs was unreadable and the safe fallbacks above are in
  /// effect.
  bool detected = false;
};

/// Reads /sys/devices/system/cpu/cpu0/cache/index*/{size,level,type};
/// any failure (no sysfs, container without the mount, unparsable sizes)
/// falls back to the CpuCacheInfo defaults with detected = false.
CpuCacheInfo DetectCpuCaches();

struct AutotuneOptions {
  AutotuneMode mode = AutotuneMode::kOn;
  /// GenerationalStore directory for the persisted tune_cache; empty keeps
  /// measurements in-process only.
  std::string cache_dir;
  /// Timing repetitions per candidate; the minimum is kept (rejects
  /// scheduler noise, and the first rep's cold caches, better than a mean).
  int sample_reps = 3;
  /// Row/column budget of the sampled sub-problem a candidate is timed on.
  size_t max_sample_rows = 192;
  size_t max_sample_cols = 512;
  /// Cache sizes used to build the candidate grid; zero fields are filled
  /// from DetectCpuCaches() at Init.
  CpuCacheInfo caches{0, 0, false};
};

/// One cached decision, keyed by the bucketed shape class.
struct TuneEntry {
  std::string kernel;
  size_t m_bucket = 0;
  size_t n_bucket = 0;
  size_t d_bucket = 0;
  size_t threads = 1;
  KernelOptions opts;
  /// The winner's sampled wall seconds (0 for entries loaded from disk
  /// before this process measured anything).
  double sample_seconds = 0.0;
  /// False for entries loaded from the persisted cache.
  bool measured_here = false;
};

/// A shape to pre-measure (the `ceaff tune` verb and serve's load-time
/// warm pass hand these in).
struct TuneShape {
  std::string kernel;  // "matmul_bt", "matmul" or "spmm"
  size_t m = 0;
  size_t n = 0;
  size_t d = 0;  // inner dim for the GEMMs, avg nnz/row for spmm
};

class KernelAutotuner {
 public:
  explicit KernelAutotuner(AutotuneOptions options);
  /// Flushes unsaved measurements best-effort (a failed write warns, it
  /// cannot fail a destructor).
  ~KernelAutotuner();

  KernelAutotuner(const KernelAutotuner&) = delete;
  KernelAutotuner& operator=(const KernelAutotuner&) = delete;

  /// Fills unset cache sizes and, when a cache_dir is configured, opens
  /// the GenerationalStore and loads the newest valid tune_cache
  /// generation (corrupt generations are quarantined by the store; an
  /// empty or absent cache is not an error).
  Status Init();

  /// The kernel-facing hook: returns the cached (or, in kOn mode, freshly
  /// measured) KernelOptions for this shape class, or `base` unchanged
  /// when the mode is kOff, the kernel has no measurement recipe, or a
  /// kCacheOnly lookup misses. Thread-safe; measurement runs on the
  /// caller's pool with the tuner detached, so it never recurses.
  KernelOptions Choose(const char* kernel, size_t m, size_t n, size_t d,
                       ThreadPool* pool, const KernelOptions& base);

  /// Pre-measures every (shape x thread-count) class in kOn fashion
  /// regardless of mode — the explicit warm path (`ceaff tune`, serve at
  /// index load). Pools of each requested size are created internally;
  /// already-cached classes are skipped.
  Status Warm(const std::vector<TuneShape>& shapes,
              const std::vector<size_t>& thread_counts);

  /// Persists the current table to cache_dir (no-op without one, or when
  /// nothing changed since the last flush).
  Status Flush();

  /// Human-readable dump of the chosen table, one line per shape class.
  std::string TableText() const;

  /// Serialised tune_cache bytes (the persisted format, CRC trailer
  /// included) — exposed for tests.
  std::string Serialize() const;

  size_t entries() const;
  /// Shape classes measured by this process (vs loaded from the cache).
  size_t measured_count() const;
  /// Choose() calls answered from the table without measuring.
  size_t cache_hits() const;

  const AutotuneOptions& options() const { return options_; }

  /// Shape-class bucketing: the next power of two >= v (>= 16, so near
  /// neighbours share a measurement). Exposed for tests.
  static size_t Bucket(size_t v);

 private:
  struct Key {
    std::string kernel;
    size_t m, n, d, threads;
    bool operator<(const Key& o) const;
  };

  /// Measures the candidate grid for one shape class. Caller holds mu_.
  KernelOptions MeasureLocked(const Key& key, ThreadPool* pool);
  Status ParseTable(const std::string& bytes);

  AutotuneOptions options_;
  std::unique_ptr<GenerationalStore> store_;
  mutable std::mutex mu_;
  std::map<Key, TuneEntry> table_;
  size_t measured_ = 0;
  mutable size_t hits_ = 0;
  bool dirty_ = false;
  bool initialized_ = false;
};

}  // namespace ceaff::la

#endif  // CEAFF_LA_AUTOTUNE_H_
