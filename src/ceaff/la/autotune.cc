#include "ceaff/la/autotune.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "ceaff/common/crc32.h"
#include "ceaff/common/durable_io.h"
#include "ceaff/common/logging.h"
#include "ceaff/common/random.h"
#include "ceaff/common/string_util.h"

namespace ceaff::la {
namespace {

constexpr char kArtifactName[] = "tune_cache";
constexpr char kMagic[] = "CEAFFTUNE";
constexpr int kFormatVersion = 1;

/// Deterministic dense sample: the same (rows, cols, seed) always yields
/// the same bytes, so a measurement is reproducible modulo wall time.
Matrix SampleMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  float* data = m.data();
  const size_t total = rows * cols;
  for (size_t i = 0; i < total; ++i) {
    data[i] = static_cast<float>(rng.NextUniform(-1.0, 1.0));
  }
  return m;
}

/// Deterministic CSR sample with ~nnz_per_row entries per row.
SparseMatrix SampleSparse(size_t rows, size_t cols, size_t nnz_per_row,
                          uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> triplets;
  triplets.reserve(rows * nnz_per_row);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t k = 0; k < nnz_per_row; ++k) {
      const auto c = static_cast<uint32_t>(rng.NextBounded(cols));
      triplets.push_back({static_cast<uint32_t>(r), c,
                          static_cast<float>(rng.NextUniform(-1.0, 1.0))});
    }
  }
  return SparseMatrix::Build(rows, cols, triplets);
}

/// Parses sysfs cache sizes like "48K", "2048K", "1M", "266240K".
bool ParseCacheSize(const std::string& text, size_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || v == 0) return false;
  size_t bytes = static_cast<size_t>(v);
  if (*end == 'K' || *end == 'k') {
    bytes *= 1024;
  } else if (*end == 'M' || *end == 'm') {
    bytes *= 1024 * 1024;
  } else if (*end != '\0' && *end != '\n') {
    return false;
  }
  *out = bytes;
  return true;
}

bool ReadSysfsLine(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in.is_open()) return false;
  std::getline(in, *out);
  while (!out->empty() && (out->back() == '\n' || out->back() == '\r')) {
    out->pop_back();
  }
  return !out->empty();
}

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Rounds `v` down to a power of two (>= 1).
size_t FloorPow2(size_t v) {
  size_t p = 1;
  while (p * 2 <= v) p *= 2;
  return p;
}

/// Header + CRC-trailer check shared by the store validator and the full
/// parser: the last line must be `crc <hex>` matching the CRC-32 of every
/// byte before that line.
Status CheckTuneCacheBytes(const std::string& bytes) {
  const size_t crc_pos = bytes.rfind("crc ");
  if (crc_pos == std::string::npos ||
      (crc_pos != 0 && bytes[crc_pos - 1] != '\n')) {
    return Status::DataLoss("tune_cache: missing crc trailer");
  }
  const uint32_t actual = Crc32Of(bytes.data(), crc_pos);
  const uint32_t expected = static_cast<uint32_t>(
      std::strtoul(bytes.c_str() + crc_pos + 4, nullptr, 16));
  if (actual != expected) {
    char msg[96];
    std::snprintf(msg, sizeof(msg),
                  "tune_cache: crc mismatch (stored %08x, computed %08x)",
                  expected, actual);
    return Status::DataLoss(msg);
  }
  std::istringstream head(bytes.substr(0, bytes.find('\n')));
  std::string magic;
  int version = 0;
  head >> magic >> version;
  if (magic != kMagic || version != kFormatVersion) {
    return Status::DataLoss("tune_cache: bad header '" + head.str() + "'");
  }
  return Status::OK();
}

}  // namespace

StatusOr<AutotuneMode> ParseAutotuneMode(std::string_view text) {
  if (text == "on") return AutotuneMode::kOn;
  if (text == "off") return AutotuneMode::kOff;
  if (text == "cache-only") return AutotuneMode::kCacheOnly;
  return Status::InvalidArgument("--autotune must be on, off or cache-only; got '" +
                                 std::string(text) + "'");
}

const char* AutotuneModeName(AutotuneMode mode) {
  switch (mode) {
    case AutotuneMode::kOff:
      return "off";
    case AutotuneMode::kOn:
      return "on";
    case AutotuneMode::kCacheOnly:
      return "cache-only";
  }
  return "?";
}

CpuCacheInfo DetectCpuCaches() {
  CpuCacheInfo info;  // defaults = safe fallbacks
  const std::string base = "/sys/devices/system/cpu/cpu0/cache/index";
  bool l1_found = false;
  bool l2_found = false;
  for (int idx = 0; idx < 8; ++idx) {
    const std::string dir = base + std::to_string(idx) + "/";
    std::string level_text, type, size_text;
    if (!ReadSysfsLine(dir + "level", &level_text) ||
        !ReadSysfsLine(dir + "type", &type) ||
        !ReadSysfsLine(dir + "size", &size_text)) {
      continue;
    }
    size_t bytes = 0;
    if (!ParseCacheSize(size_text, &bytes)) continue;
    if (level_text == "1" && (type == "Data" || type == "Unified") &&
        !l1_found) {
      info.l1d_bytes = bytes;
      l1_found = true;
    } else if (level_text == "2" && (type == "Unified" || type == "Data") &&
               !l2_found) {
      info.l2_bytes = bytes;
      l2_found = true;
    }
  }
  info.detected = l1_found && l2_found;
  return info;
}

size_t KernelAutotuner::Bucket(size_t v) {
  size_t b = 16;
  while (b < v) b *= 2;
  return b;
}

bool KernelAutotuner::Key::operator<(const Key& o) const {
  return std::tie(kernel, m, n, d, threads) <
         std::tie(o.kernel, o.m, o.n, o.d, o.threads);
}

KernelAutotuner::KernelAutotuner(AutotuneOptions options)
    : options_(std::move(options)) {}

KernelAutotuner::~KernelAutotuner() {
  const Status s = Flush();
  if (!s.ok()) {
    CEAFF_LOG(Warning) << "autotune: final flush failed: " << s.ToString();
  }
}

Status KernelAutotuner::Init() {
  std::lock_guard<std::mutex> lock(mu_);
  if (initialized_) return Status::OK();
  if (options_.caches.l1d_bytes == 0 || options_.caches.l2_bytes == 0) {
    options_.caches = DetectCpuCaches();
  }
  if (!options_.cache_dir.empty()) {
    GenerationalStore::Options store_options;
    store_options.keep_generations = 2;
    store_options.failpoint_scope = "tune";
    store_ = std::make_unique<GenerationalStore>(options_.cache_dir,
                                                 store_options);
    Status s = store_->Init();
    if (!s.ok()) return s;
    StatusOr<std::string> bytes = store_->Get(
        kArtifactName,
        [](const std::string& b) { return CheckTuneCacheBytes(b); });
    if (bytes.ok()) {
      s = ParseTable(bytes.value());
      if (!s.ok()) return s;
    } else if (!bytes.status().IsNotFound()) {
      // Every generation corrupt: the store already quarantined them, so
      // start empty and re-measure rather than fail the workload.
      CEAFF_LOG(Warning) << "autotune: tune_cache unreadable, re-measuring: "
                         << bytes.status().ToString();
    }
  }
  initialized_ = true;
  return Status::OK();
}

KernelOptions KernelAutotuner::Choose(const char* kernel, size_t m, size_t n,
                                      size_t d, ThreadPool* pool,
                                      const KernelOptions& base) {
  if (options_.mode == AutotuneMode::kOff) return base;
  if (m == 0 || n == 0) return base;
  const bool known = std::strcmp(kernel, "matmul_bt") == 0 ||
                     std::strcmp(kernel, "matmul") == 0 ||
                     std::strcmp(kernel, "spmm") == 0;
  if (!known) return base;
  Key key{kernel, Bucket(m), Bucket(n), Bucket(d), 1};
  if (pool != nullptr && pool->num_threads() > 1) key.threads = pool->num_threads();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(key);
  if (it != table_.end()) {
    ++hits_;
    return it->second.opts;
  }
  if (options_.mode == AutotuneMode::kCacheOnly) return base;
  return MeasureLocked(key, pool);
}

KernelOptions KernelAutotuner::MeasureLocked(const Key& key, ThreadPool* pool) {
  const size_t threads = key.threads;
  const size_t d = std::max<size_t>(1, key.d);

  // Sampled sub-problem: big enough that every thread owns work and the
  // working set resembles the real shape class, small enough that a full
  // grid costs milliseconds.
  const size_t sample_m =
      std::min(key.m, std::max(options_.max_sample_rows, 32 * threads));
  const size_t sample_n = std::min(key.n, options_.max_sample_cols);

  // Candidate grid. Column panels come from the measured L2: a panel of
  // col_block B-rows x d floats should fill about half of it, leaving the
  // other half for the streaming A rows; row panels try the default and a
  // smaller L1-friendly tile; the grain axis tries the normal fan-out
  // against full serialization (the win on oversubscribed boxes).
  std::vector<KernelOptions> candidates;
  const bool is_spmm = key.kernel == "spmm";
  const size_t kSerializeGrain = std::numeric_limits<size_t>::max();
  if (is_spmm) {
    for (size_t rb : {32u, 64u, 128u, 256u}) {
      for (bool serialize : {true, false}) {
        if (serialize && threads == 1) continue;
        KernelOptions c;
        c.row_block = rb;
        c.grain = serialize ? kSerializeGrain : c.grain;
        candidates.push_back(c);
      }
    }
  } else {
    const size_t cb0 = FloorPow2(std::clamp<size_t>(
        options_.caches.l2_bytes / 2 / (sizeof(float) * d), 32, 1024));
    std::set<size_t> col_blocks{cb0, std::max<size_t>(32, cb0 / 2),
                                std::min<size_t>(2048, cb0 * 2), 128};
    for (size_t cb : col_blocks) {
      for (size_t rb : {32u, 64u}) {
        for (bool serialize : {true, false}) {
          if (serialize && threads == 1) continue;
          KernelOptions c;
          c.row_block = rb;
          c.col_block = cb;
          c.grain = serialize ? kSerializeGrain : c.grain;
          candidates.push_back(c);
        }
      }
    }
  }

  // Deterministic inputs seeded from the shape class, so re-measuring the
  // same class times the same bytes.
  const uint64_t seed =
      Rng::SplitMix64(key.m * 1315423911u ^ key.n * 2654435761u ^ key.d ^
                      (static_cast<uint64_t>(threads) << 48));
  Matrix a, b;
  SparseMatrix sp;
  if (is_spmm) {
    const size_t rows = std::min<size_t>(key.m, 4096);
    sp = SampleSparse(rows, rows, std::min<size_t>(d, rows), seed);
    b = SampleMatrix(rows, sample_n, seed + 1);
  } else {
    a = SampleMatrix(sample_m, d, seed);
    b = key.kernel == "matmul" ? SampleMatrix(d, sample_n, seed + 1)
                               : SampleMatrix(sample_n, d, seed + 1);
  }

  const int reps = std::max(2, options_.sample_reps);
  KernelOptions best;
  double best_seconds = std::numeric_limits<double>::infinity();
  for (const KernelOptions& candidate : candidates) {
    KernelContext ctx;
    ctx.pool = pool;
    ctx.opts = candidate;
    ctx.tuner = nullptr;  // measured sub-kernels must never re-enter Choose
    if (candidate.grain == kSerializeGrain) {
      // Serialization is "grain >= rows": measure with the sample's row
      // count; the stored entry uses the bucket so it covers every shape
      // in the class.
      ctx.opts.grain = is_spmm ? sp.rows() : sample_m;
    }
    double seconds = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < reps; ++rep) {
      const double t0 = Now();
      Matrix out;
      if (is_spmm) {
        out = SpMMK(ctx, sp, b);
      } else if (key.kernel == "matmul") {
        out = MatMulK(ctx, a, b);
      } else {
        out = MatMulBTK(ctx, a, b);
      }
      seconds = std::min(seconds, Now() - t0);
      // Keep the result observable so the compute cannot be elided.
      if (out.rows() == 0) seconds = std::numeric_limits<double>::infinity();
    }
    // A challenger must beat the incumbent by a clear margin, not by
    // noise: candidates are ordered serialized-first, so a marginal
    // fan-out "win" on the small sample (within scheduler jitter) cannot
    // displace the choice that is safe at full size on an oversubscribed
    // box. Real multicore wins are far larger than 5%.
    if (seconds < best_seconds * 0.95) {
      best_seconds = seconds;
      best = candidate;
    }
  }
  if (best.grain == kSerializeGrain) best.grain = key.m;

  TuneEntry entry;
  entry.kernel = key.kernel;
  entry.m_bucket = key.m;
  entry.n_bucket = key.n;
  entry.d_bucket = key.d;
  entry.threads = threads;
  entry.opts = best;
  entry.sample_seconds = best_seconds;
  entry.measured_here = true;
  table_[key] = entry;
  ++measured_;
  dirty_ = true;
  return best;
}

Status KernelAutotuner::Warm(const std::vector<TuneShape>& shapes,
                             const std::vector<size_t>& thread_counts) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!initialized_) {
      return Status::FailedPrecondition("autotune: Warm before Init");
    }
  }
  for (size_t threads : thread_counts) {
    if (threads == 0) continue;
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
    for (const TuneShape& shape : shapes) {
      if (shape.m == 0 || shape.n == 0) continue;
      Key key{shape.kernel, Bucket(shape.m), Bucket(shape.n), Bucket(shape.d),
              threads};
      std::lock_guard<std::mutex> lock(mu_);
      if (table_.count(key) != 0) continue;
      MeasureLocked(key, pool.get());
    }
  }
  return Flush();
}

std::string KernelAutotuner::Serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << kMagic << ' ' << kFormatVersion << '\n';
  out << "host l1d " << options_.caches.l1d_bytes << " l2 "
      << options_.caches.l2_bytes << " detected "
      << (options_.caches.detected ? 1 : 0) << '\n';
  for (const auto& [key, entry] : table_) {
    char line[192];
    std::snprintf(line, sizeof(line),
                  "entry %s %zu %zu %zu %zu %zu %zu %zu %.9g\n",
                  entry.kernel.c_str(), entry.m_bucket, entry.n_bucket,
                  entry.d_bucket, entry.threads, entry.opts.row_block,
                  entry.opts.col_block, entry.opts.grain,
                  entry.sample_seconds);
    out << line;
  }
  std::string body = out.str();
  char trailer[32];
  std::snprintf(trailer, sizeof(trailer), "crc %08x\n",
                Crc32Of(body.data(), body.size()));
  body += trailer;
  return body;
}

Status KernelAutotuner::ParseTable(const std::string& bytes) {
  Status s = CheckTuneCacheBytes(bytes);
  if (!s.ok()) return s;
  std::istringstream in(bytes);
  std::string line;
  std::getline(in, line);  // header, already validated
  size_t loaded = 0;
  while (std::getline(in, line)) {
    if (line.rfind("entry ", 0) != 0) continue;  // host/crc lines
    std::istringstream fields(line);
    std::string tag, kernel;
    TuneEntry entry;
    fields >> tag >> kernel >> entry.m_bucket >> entry.n_bucket >>
        entry.d_bucket >> entry.threads >> entry.opts.row_block >>
        entry.opts.col_block >> entry.opts.grain >> entry.sample_seconds;
    if (fields.fail() || kernel.empty() || entry.threads == 0 ||
        entry.opts.row_block == 0 || entry.opts.col_block == 0 ||
        entry.opts.grain == 0) {
      return Status::DataLoss("tune_cache: garbled entry '" + line + "'");
    }
    entry.kernel = kernel;
    entry.measured_here = false;
    Key key{kernel, entry.m_bucket, entry.n_bucket, entry.d_bucket,
            entry.threads};
    table_[key] = entry;  // caller holds mu_ (Init)
    ++loaded;
  }
  CEAFF_LOG(Info) << "autotune: loaded " << loaded
                  << " tuned shape classes from " << options_.cache_dir;
  return Status::OK();
}

Status KernelAutotuner::Flush() {
  std::string bytes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (store_ == nullptr || !dirty_) return Status::OK();
  }
  bytes = Serialize();
  std::lock_guard<std::mutex> lock(mu_);
  Status s = store_->Put(kArtifactName, bytes);
  if (s.ok()) dirty_ = false;
  return s;
}

std::string KernelAutotuner::TableText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  char line[192];
  std::snprintf(line, sizeof(line), "%-10s %8s %8s %6s %7s %9s %9s %9s %12s\n",
                "kernel", "m<=", "n<=", "d<=", "threads", "row_block",
                "col_block", "grain", "sample_s");
  out << line;
  for (const auto& [key, entry] : table_) {
    const bool serialized = entry.opts.grain >= entry.m_bucket;
    std::snprintf(line, sizeof(line),
                  "%-10s %8zu %8zu %6zu %7zu %9zu %9zu %9zu %12.3g%s\n",
                  entry.kernel.c_str(), entry.m_bucket, entry.n_bucket,
                  entry.d_bucket, entry.threads, entry.opts.row_block,
                  entry.opts.col_block, entry.opts.grain,
                  entry.sample_seconds,
                  serialized && entry.threads > 1 ? "  (serialized)" : "");
    out << line;
  }
  return out.str();
}

size_t KernelAutotuner::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.size();
}

size_t KernelAutotuner::measured_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return measured_;
}

size_t KernelAutotuner::cache_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

}  // namespace ceaff::la
