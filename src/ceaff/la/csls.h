#ifndef CEAFF_LA_CSLS_H_
#define CEAFF_LA_CSLS_H_

#include <cstddef>

#include "ceaff/la/matrix.h"

namespace ceaff::la {

/// Cross-domain Similarity Local Scaling (Conneau et al., ICLR'18) — the
/// hubness correction used throughout the EA literature (and by several of
/// the paper's competitors). Each similarity is penalised by the mean
/// similarity of its row's and column's k nearest neighbours:
///
///   csls(i, j) = 2·sim(i, j) − r_row(i) − r_col(j)
///
/// where r_row(i) is the mean of row i's top-k entries and r_col(j) the
/// mean of column j's top-k entries. Hub targets that are near everything
/// lose score; mutually-close pairs gain. Offered as an optional rescaling
/// of any similarity matrix before fusion/matching (an extension ablation;
/// the paper's CEAFF uses raw cosine).
///
/// k is clamped to the matrix dimensions; k = 0 returns `m` unchanged.
Matrix CslsRescale(const Matrix& m, size_t k = 10);

}  // namespace ceaff::la

#endif  // CEAFF_LA_CSLS_H_
