#include "ceaff/text/embedding_io.h"

#include <cstdlib>
#include <fstream>

#include "ceaff/common/string_util.h"

namespace ceaff::text {

Status LoadTextEmbeddings(const std::string& path, WordEmbeddingStore* store,
                          const EmbeddingIoOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  size_t lineno = 0;
  size_t loaded = 0;
  std::vector<float> vec;
  while (std::getline(in, line)) {
    ++lineno;
    std::vector<std::string> fields = SplitWhitespace(line);
    if (fields.empty()) continue;
    if (lineno == 1 && options.allow_header && fields.size() == 2) {
      // fastText-style `<count> <dim>` header.
      char* end = nullptr;
      long dim = std::strtol(fields[1].c_str(), &end, 10);
      if (end != fields[1].c_str() && dim > 0 &&
          static_cast<size_t>(dim) != store->dim()) {
        return Status::InvalidArgument(StrFormat(
            "%s: file dimensionality %ld does not match store dim %zu",
            path.c_str(), dim, store->dim()));
      }
      continue;
    }
    if (fields.size() != store->dim() + 1) {
      return Status::InvalidArgument(StrFormat(
          "%s:%zu: expected %zu fields (token + %zu values), got %zu",
          path.c_str(), lineno, store->dim() + 1, store->dim(),
          fields.size()));
    }
    vec.clear();
    vec.reserve(store->dim());
    for (size_t i = 1; i < fields.size(); ++i) {
      char* end = nullptr;
      float v = std::strtof(fields[i].c_str(), &end);
      if (end == fields[i].c_str()) {
        return Status::InvalidArgument(StrFormat(
            "%s:%zu: malformed value '%s'", path.c_str(), lineno,
            fields[i].c_str()));
      }
      vec.push_back(v);
    }
    std::string token =
        options.lowercase ? AsciiToLower(fields[0]) : fields[0];
    CEAFF_RETURN_IF_ERROR(store->SetVector(token, vec));
    ++loaded;
    if (options.max_vectors > 0 && loaded >= options.max_vectors) break;
  }
  return Status::OK();
}

Status SaveTextEmbeddings(const WordEmbeddingStore& store,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << store.explicit_tokens().size() << ' ' << store.dim() << '\n';
  std::vector<float> vec;
  for (const std::string& token : store.explicit_tokens()) {
    if (!store.Lookup(token, &vec)) continue;  // explicitly marked OOV
    out << token;
    for (float v : vec) out << ' ' << v;
    out << '\n';
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace ceaff::text
