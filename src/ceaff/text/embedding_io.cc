#include "ceaff/text/embedding_io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "ceaff/common/durable_io.h"
#include "ceaff/common/string_util.h"

namespace ceaff::text {

namespace {

/// Parses one `token v1 ... vd` data line into (token, vec). Returns the
/// reason on failure — without path/line context, which the caller adds.
Status ParseVectorLine(const std::vector<std::string>& fields, size_t dim,
                       bool lowercase, std::string* token,
                       std::vector<float>* vec) {
  if (fields.size() != dim + 1) {
    return Status::InvalidArgument(
        StrFormat("expected %zu fields (token + %zu values), got %zu",
                  dim + 1, dim, fields.size()));
  }
  vec->clear();
  vec->reserve(dim);
  for (size_t i = 1; i < fields.size(); ++i) {
    char* end = nullptr;
    float v = std::strtof(fields[i].c_str(), &end);
    if (end == fields[i].c_str() || *end != '\0') {
      return Status::InvalidArgument(
          StrFormat("malformed value '%s'", fields[i].c_str()));
    }
    vec->push_back(v);
  }
  *token = lowercase ? AsciiToLower(fields[0]) : fields[0];
  return Status::OK();
}

}  // namespace

Status LoadTextEmbeddings(const std::string& path, WordEmbeddingStore* store,
                          const EmbeddingIoOptions& options,
                          ParseReport* report) {
  ParseReport local;
  if (report == nullptr) report = &local;
  report->path = path;
  report->lines_scanned = 0;
  report->records_loaded = 0;
  report->issues.clear();

  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  size_t lineno = 0;
  std::string token;
  std::vector<float> vec;
  while (std::getline(in, line)) {
    ++lineno;
    report->lines_scanned = lineno;
    std::vector<std::string> fields = SplitWhitespace(line);
    if (fields.empty()) continue;
    if (lineno == 1 && options.allow_header && fields.size() == 2) {
      // fastText-style `<count> <dim>` header.
      char* end = nullptr;
      long dim = std::strtol(fields[1].c_str(), &end, 10);
      if (end != fields[1].c_str() && dim > 0 &&
          static_cast<size_t>(dim) != store->dim()) {
        // Wrong dimensionality for the whole file — fatal even in lenient
        // mode (each data line would fail anyway; better one clear error).
        return Status::InvalidArgument(StrFormat(
            "%s:1: file dimensionality %ld does not match store dim %zu",
            path.c_str(), dim, store->dim()));
      }
      continue;
    }
    Status st = ParseVectorLine(fields, store->dim(), options.lowercase,
                                &token, &vec);
    if (st.ok()) st = store->SetVector(token, vec);
    if (st.ok()) {
      ++report->records_loaded;
      if (options.max_vectors > 0 &&
          report->records_loaded >= options.max_vectors) {
        break;
      }
      continue;
    }
    if (!options.parse.lenient) {
      return Status(st.code(), StrFormat("%s:%zu: %s", path.c_str(), lineno,
                                         st.message().c_str()));
    }
    report->issues.push_back({lineno, st.ToString()});
    if (report->issues.size() > options.parse.max_errors) {
      return Status::InvalidArgument(StrFormat(
          "%s: more than %zu malformed lines (last at line %zu: %s) — "
          "aborting lenient parse",
          path.c_str(), options.parse.max_errors, lineno,
          st.message().c_str()));
    }
  }
  return Status::OK();
}

Status SaveTextEmbeddings(const WordEmbeddingStore& store,
                          const std::string& path) {
  std::ostringstream out;
  out << store.explicit_tokens().size() << ' ' << store.dim() << '\n';
  std::vector<float> vec;
  for (const std::string& token : store.explicit_tokens()) {
    if (!store.Lookup(token, &vec)) continue;  // explicitly marked OOV
    out << token;
    for (float v : vec) out << ' ' << v;
    out << '\n';
  }
  if (!out) return Status::IOError("serialization failed: " + path);
  // Published through the crash-durable protocol, failpoint scope "embed".
  return WriteFileAtomic(path, std::move(out).str(), "embed");
}

}  // namespace ceaff::text
