#include "ceaff/text/name_embedding.h"

#include "ceaff/common/thread_pool.h"
#include "ceaff/text/tokenizer.h"

namespace ceaff::text {

std::vector<float> EmbedName(const WordEmbeddingStore& store,
                             const std::string& name) {
  std::vector<float> sum(store.dim(), 0.0f);
  std::vector<float> word;
  size_t count = 0;
  for (const std::string& token : TokenizeName(name)) {
    if (!store.Lookup(token, &word)) continue;
    for (size_t i = 0; i < sum.size(); ++i) sum[i] += word[i];
    ++count;
  }
  if (count > 1) {
    float inv = 1.0f / static_cast<float>(count);
    for (float& v : sum) v *= inv;
  }
  return sum;
}

la::Matrix EmbedNames(const WordEmbeddingStore& store,
                      const std::vector<std::string>& names,
                      const la::KernelContext* kernel) {
  la::Matrix n(names.size(), store.dim());
  // Each name writes only its own row and the store is read-only, so the
  // loop splits cleanly across the pool; output is identical either way.
  ParallelFor(kernel != nullptr ? kernel->pool : nullptr, names.size(),
              [&](size_t i) {
                std::vector<float> vec = EmbedName(store, names[i]);
                float* row = n.row(i);
                for (size_t d = 0; d < vec.size(); ++d) row[d] = vec[d];
              });
  return n;
}

la::Matrix SemanticSimilarityMatrix(
    const WordEmbeddingStore& store,
    const std::vector<std::string>& source_names,
    const std::vector<std::string>& target_names,
    const la::KernelContext* kernel) {
  static const la::KernelContext kDefault;
  const la::KernelContext& ctx = kernel != nullptr ? *kernel : kDefault;
  la::Matrix n1 = EmbedNames(store, source_names, kernel);
  la::Matrix n2 = EmbedNames(store, target_names, kernel);
  return la::CosineSimilarityK(ctx, n1, n2);
}

}  // namespace ceaff::text
