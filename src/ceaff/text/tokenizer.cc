#include "ceaff/text/tokenizer.h"

#include <cctype>

namespace ceaff::text {

std::vector<std::string> TokenizeName(std::string_view name) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : name) {
    unsigned char uc = static_cast<unsigned char>(c);
    bool in_token = std::isalnum(uc) || uc >= 0x80;
    if (in_token) {
      cur.push_back(
          static_cast<char>(uc < 0x80 ? std::tolower(uc) : uc));
    } else if (!cur.empty()) {
      tokens.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) tokens.push_back(std::move(cur));
  return tokens;
}

}  // namespace ceaff::text
