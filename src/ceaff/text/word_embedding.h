#ifndef CEAFF_TEXT_WORD_EMBEDDING_H_
#define CEAFF_TEXT_WORD_EMBEDDING_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ceaff/common/status.h"

namespace ceaff::text {

/// Pseudo word-embedding store — the offline stand-in for fastText + MUSE
/// multilingual embeddings (see DESIGN.md, substitution table).
///
/// Two operating modes compose:
///  * **Registered tokens** carry a concept anchor: their vector is a unit
///    Gaussian seeded by the concept id, plus token-specific Gaussian noise
///    scaled by `noise_scale`. Registering the EN and FR surface forms of
///    the same concept with small noise reproduces exactly what MUSE gives
///    the paper: translation pairs are near-neighbours in a shared space.
///  * **Unregistered tokens** fall back to a deterministic hash-seeded
///    Gaussian (identical spellings agree across KGs, everything else is
///    near-orthogonal) unless the token was marked OOV or the fallback is
///    disabled, in which case Lookup fails — modelling fastText's
///    out-of-vocabulary gaps the paper discusses.
///
/// All vectors are L2-normalised and fully determined by (seed, token,
/// concept), so experiments are reproducible.
class WordEmbeddingStore {
 public:
  explicit WordEmbeddingStore(size_t dim = 300, uint64_t seed = 17);

  size_t dim() const { return dim_; }
  uint64_t seed() const { return seed_; }

  /// Associates `token` with concept `concept_id`; its embedding becomes
  /// anchor(concept) + noise_scale * noise(token), re-normalised.
  /// Re-registering a token overwrites the previous association.
  void RegisterToken(const std::string& token, uint64_t concept_id,
                     double noise_scale);

  /// Pins an explicit vector for `token` (must have size dim(); it is
  /// L2-normalised on insertion). Explicit vectors take precedence over
  /// concept registrations and the hash fallback — this is how real
  /// pretrained embeddings (see embedding_io.h) enter the store.
  Status SetVector(const std::string& token, std::vector<float> vector);

  /// Tokens with explicit vectors, in insertion order.
  const std::vector<std::string>& explicit_tokens() const {
    return explicit_order_;
  }

  /// Marks `token` as out-of-vocabulary: Lookup will fail even with the
  /// hash fallback enabled.
  void MarkOov(const std::string& token);

  /// If disabled, only registered tokens resolve. Default: enabled.
  void set_hash_fallback(bool enabled) { hash_fallback_ = enabled; }

  /// Writes the token's vector into `out` (resized to dim()). Returns false
  /// if the token has no embedding (OOV or unregistered with fallback off).
  bool Lookup(const std::string& token, std::vector<float>* out) const;

  /// Number of explicitly registered tokens.
  size_t num_registered() const { return registered_.size(); }

 private:
  void ConceptAnchor(uint64_t concept_seed, std::vector<float>* out) const;

  size_t dim_;
  uint64_t seed_;
  bool hash_fallback_ = true;
  struct Registration {
    uint64_t concept_id;
    double noise_scale;
  };
  std::unordered_map<std::string, Registration> registered_;
  std::unordered_map<std::string, std::vector<float>> explicit_;
  std::vector<std::string> explicit_order_;
  std::unordered_set<std::string> oov_;
};

}  // namespace ceaff::text

#endif  // CEAFF_TEXT_WORD_EMBEDDING_H_
