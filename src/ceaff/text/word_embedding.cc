#include "ceaff/text/word_embedding.h"

#include <cmath>

#include "ceaff/common/random.h"

namespace ceaff::text {

namespace {

/// Fills `out` with an L2-normalised Gaussian vector from stream `seed`.
void UnitGaussian(uint64_t seed, size_t dim, std::vector<float>* out) {
  Rng rng(seed);
  out->resize(dim);
  double sq = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    double g = rng.NextGaussian();
    (*out)[i] = static_cast<float>(g);
    sq += g * g;
  }
  if (sq > 0.0) {
    float inv = static_cast<float>(1.0 / std::sqrt(sq));
    for (float& v : *out) v *= inv;
  }
}

void Renormalize(std::vector<float>* v) {
  double sq = 0.0;
  for (float x : *v) sq += static_cast<double>(x) * x;
  if (sq <= 0.0) return;
  float inv = static_cast<float>(1.0 / std::sqrt(sq));
  for (float& x : *v) x *= inv;
}

}  // namespace

WordEmbeddingStore::WordEmbeddingStore(size_t dim, uint64_t seed)
    : dim_(dim), seed_(seed) {}

void WordEmbeddingStore::RegisterToken(const std::string& token,
                                       uint64_t concept_id,
                                       double noise_scale) {
  registered_[token] = {concept_id, noise_scale};
}

void WordEmbeddingStore::MarkOov(const std::string& token) {
  oov_.insert(token);
}

void WordEmbeddingStore::ConceptAnchor(uint64_t concept_seed,
                                       std::vector<float>* out) const {
  UnitGaussian(Rng::SplitMix64(concept_seed ^ seed_), dim_, out);
}

Status WordEmbeddingStore::SetVector(const std::string& token,
                                     std::vector<float> vector) {
  if (vector.size() != dim_) {
    return Status::InvalidArgument(
        "vector dimensionality does not match the store");
  }
  Renormalize(&vector);
  if (!explicit_.count(token)) explicit_order_.push_back(token);
  explicit_[token] = std::move(vector);
  return Status::OK();
}

bool WordEmbeddingStore::Lookup(const std::string& token,
                                std::vector<float>* out) const {
  if (oov_.count(token)) return false;
  auto ex = explicit_.find(token);
  if (ex != explicit_.end()) {
    *out = ex->second;
    return true;
  }
  auto it = registered_.find(token);
  if (it != registered_.end()) {
    ConceptAnchor(it->second.concept_id, out);
    if (it->second.noise_scale > 0.0) {
      std::vector<float> noise;
      UnitGaussian(HashBytes(token.data(), token.size(), seed_ ^ 0xabcdull),
                   dim_, &noise);
      float s = static_cast<float>(it->second.noise_scale);
      for (size_t i = 0; i < dim_; ++i) (*out)[i] += s * noise[i];
      Renormalize(out);
    }
    return true;
  }
  if (!hash_fallback_) return false;
  UnitGaussian(HashBytes(token.data(), token.size(), seed_), dim_, out);
  return true;
}

}  // namespace ceaff::text
