#ifndef CEAFF_TEXT_NGRAM_SIMILARITY_H_
#define CEAFF_TEXT_NGRAM_SIMILARITY_H_

#include <string>
#include <string_view>
#include <vector>

#include "ceaff/la/matrix.h"

namespace ceaff::text {

/// Character n-gram string similarity — the design alternative to the
/// paper's Levenshtein ratio (DESIGN.md ablation candidates). Names are
/// decomposed into padded character n-grams ("^pa", "par", ..., "is$") and
/// compared by Dice coefficient 2|A∩B| / (|A|+|B|) over the multisets.
/// O(|a| + |b|) per pair versus Levenshtein's O(|a|·|b|), at the price of
/// losing order sensitivity beyond the n-gram width.
struct NgramOptions {
  /// n-gram width in bytes (3 = trigrams). Multi-byte UTF-8 characters are
  /// treated as opaque byte runs, which keeps cross-script overlap at
  /// zero, the property the string feature needs.
  size_t n = 3;
  /// Pad with boundary markers so short names still produce n-grams.
  bool pad = true;
};

/// Dice similarity of the two names' character n-gram multisets, in
/// [0, 1]; two empty strings score 1.
double NgramSimilarity(std::string_view a, std::string_view b,
                       const NgramOptions& options = {});

/// Full pairwise n-gram similarity matrix (drop-in alternative to
/// StringSimilarityMatrix).
la::Matrix NgramSimilarityMatrix(const std::vector<std::string>& source_names,
                                 const std::vector<std::string>& target_names,
                                 const NgramOptions& options = {});

}  // namespace ceaff::text

#endif  // CEAFF_TEXT_NGRAM_SIMILARITY_H_
