#ifndef CEAFF_TEXT_NAME_EMBEDDING_H_
#define CEAFF_TEXT_NAME_EMBEDDING_H_

#include <string>
#include <vector>

#include "ceaff/la/matrix.h"
#include "ceaff/text/word_embedding.h"

namespace ceaff::text {

/// Embeds one entity name as the average of its tokens' word embeddings
/// (ne(e) = 1/l Σ w_i, Sec. IV-B). Tokens without an embedding are skipped;
/// a name with no embeddable token yields the zero vector (and hence cosine
/// similarity 0 to everything).
std::vector<float> EmbedName(const WordEmbeddingStore& store,
                             const std::string& name);

/// Stacks EmbedName over all `names` into the name-embedding matrix N
/// (|names| x store.dim()).
la::Matrix EmbedNames(const WordEmbeddingStore& store,
                      const std::vector<std::string>& names);

/// Semantic similarity matrix Mn: cosine similarity between every source
/// and target name embedding.
la::Matrix SemanticSimilarityMatrix(
    const WordEmbeddingStore& store,
    const std::vector<std::string>& source_names,
    const std::vector<std::string>& target_names);

}  // namespace ceaff::text

#endif  // CEAFF_TEXT_NAME_EMBEDDING_H_
