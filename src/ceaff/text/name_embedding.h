#ifndef CEAFF_TEXT_NAME_EMBEDDING_H_
#define CEAFF_TEXT_NAME_EMBEDDING_H_

#include <string>
#include <vector>

#include "ceaff/la/kernels.h"
#include "ceaff/la/matrix.h"
#include "ceaff/text/word_embedding.h"

namespace ceaff::text {

/// Embeds one entity name as the average of its tokens' word embeddings
/// (ne(e) = 1/l Σ w_i, Sec. IV-B). Tokens without an embedding are skipped;
/// a name with no embeddable token yields the zero vector (and hence cosine
/// similarity 0 to everything).
std::vector<float> EmbedName(const WordEmbeddingStore& store,
                             const std::string& name);

/// Stacks EmbedName over all `names` into the name-embedding matrix N
/// (|names| x store.dim()). The per-name lookups are independent (the
/// store is immutable), so a kernel context with a pool embeds name
/// panels in parallel; null stays sequential with identical output.
la::Matrix EmbedNames(const WordEmbeddingStore& store,
                      const std::vector<std::string>& names,
                      const la::KernelContext* kernel = nullptr);

/// Semantic similarity matrix Mn: cosine similarity between every source
/// and target name embedding, computed with the blocked
/// la::CosineSimilarityK kernel (sequential with default blocks when
/// `kernel` is null — same values either way, the kernel is thread-count
/// deterministic).
la::Matrix SemanticSimilarityMatrix(
    const WordEmbeddingStore& store,
    const std::vector<std::string>& source_names,
    const std::vector<std::string>& target_names,
    const la::KernelContext* kernel = nullptr);

}  // namespace ceaff::text

#endif  // CEAFF_TEXT_NAME_EMBEDDING_H_
