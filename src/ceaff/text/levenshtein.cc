#include "ceaff/text/levenshtein.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "ceaff/la/kernels.h"

namespace ceaff::text {

namespace {

/// Shared two-row DP. `sub_cost` is 1 for classic Levenshtein, 2 for lev*.
size_t LevenshteinImpl(std::string_view a, std::string_view b,
                       size_t sub_cost) {
  if (a.size() < b.size()) std::swap(a, b);  // keep rows short
  const size_t n = b.size();
  if (n == 0) return a.size();
  std::vector<size_t> prev(n + 1), cur(n + 1);
  std::iota(prev.begin(), prev.end(), size_t{0});
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    const char ai = a[i - 1];
    for (size_t j = 1; j <= n; ++j) {
      size_t del = prev[j] + 1;
      size_t ins = cur[j - 1] + 1;
      size_t sub = prev[j - 1] + (ai == b[j - 1] ? 0 : sub_cost);
      cur[j] = std::min({del, ins, sub});
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

}  // namespace

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  return LevenshteinImpl(a, b, 1);
}

size_t LevenshteinDistanceSub2(std::string_view a, std::string_view b) {
  return LevenshteinImpl(a, b, 2);
}

double LevenshteinRatio(std::string_view a, std::string_view b) {
  const size_t total = a.size() + b.size();
  if (total == 0) return 1.0;
  const size_t lev = LevenshteinDistanceSub2(a, b);
  return static_cast<double>(total - lev) / static_cast<double>(total);
}

double LevenshteinRatioUnitCost(std::string_view a, std::string_view b) {
  const size_t total = a.size() + b.size();
  if (total == 0) return 1.0;
  const size_t lev = LevenshteinDistance(a, b);
  return static_cast<double>(total - lev) / static_cast<double>(total);
}

la::Matrix StringSimilarityMatrix(
    const std::vector<std::string>& source_names,
    const std::vector<std::string>& target_names,
    ThreadPool* pool) {
  // The kernel path computes every cell with the bit-parallel LCS identity
  // (la::LevenshteinRatioFast), which equals LevenshteinRatio exactly —
  // the matrix is unchanged, just much cheaper per pair.
  la::KernelContext ctx;
  ctx.pool = pool;
  return la::StringSimilarityMatrixK(ctx, source_names, target_names);
}

}  // namespace ceaff::text
