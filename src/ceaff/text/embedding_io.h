#ifndef CEAFF_TEXT_EMBEDDING_IO_H_
#define CEAFF_TEXT_EMBEDDING_IO_H_

#include <string>

#include "ceaff/common/parse_report.h"
#include "ceaff/common/status.h"
#include "ceaff/text/word_embedding.h"

namespace ceaff::text {

/// Options for reading word2vec/GloVe/fastText text-format vectors.
struct EmbeddingIoOptions {
  /// Skip a leading `<count> <dim>` header line if present (fastText
  /// writes one, GloVe does not) — detected automatically when true.
  bool allow_header = true;
  /// Stop after this many vectors (0 = all). Pretrained files hold
  /// millions of rows; alignment only needs the KG vocabulary.
  size_t max_vectors = 0;
  /// Lower-case tokens on load (matching TokenizeName's output).
  bool lowercase = true;
  /// Strict vs. lenient handling of malformed lines (wrong field count,
  /// unparsable values). Pretrained dumps routinely contain a few corrupt
  /// rows — lenient mode skips them within the error budget instead of
  /// abandoning a multi-gigabyte load. A dimensionality mismatch declared
  /// by the file header stays fatal in both modes: that means the whole
  /// file is wrong, not a line.
  ParseOptions parse;
};

/// Loads text-format embeddings (`token v1 v2 ... vd` per line) into
/// `store` as explicit vectors. The store's dimensionality must match the
/// file's (InvalidArgument otherwise). Every per-line error carries the
/// file path and 1-based line number. `report` (may be null) receives
/// per-file counts and the skipped lines in lenient mode. This is the
/// entry point for the paper's real fastText/MUSE vectors when they are
/// available.
Status LoadTextEmbeddings(const std::string& path, WordEmbeddingStore* store,
                          const EmbeddingIoOptions& options = {},
                          ParseReport* report = nullptr);

/// Writes every explicit vector of `store` in the same text format (with a
/// fastText-style header line).
Status SaveTextEmbeddings(const WordEmbeddingStore& store,
                          const std::string& path);

}  // namespace ceaff::text

#endif  // CEAFF_TEXT_EMBEDDING_IO_H_
