#ifndef CEAFF_TEXT_EMBEDDING_IO_H_
#define CEAFF_TEXT_EMBEDDING_IO_H_

#include <string>

#include "ceaff/common/status.h"
#include "ceaff/text/word_embedding.h"

namespace ceaff::text {

/// Options for reading word2vec/GloVe/fastText text-format vectors.
struct EmbeddingIoOptions {
  /// Skip a leading `<count> <dim>` header line if present (fastText
  /// writes one, GloVe does not) — detected automatically when true.
  bool allow_header = true;
  /// Stop after this many vectors (0 = all). Pretrained files hold
  /// millions of rows; alignment only needs the KG vocabulary.
  size_t max_vectors = 0;
  /// Lower-case tokens on load (matching TokenizeName's output).
  bool lowercase = true;
};

/// Loads text-format embeddings (`token v1 v2 ... vd` per line) into
/// `store` as explicit vectors. The store's dimensionality must match the
/// file's (InvalidArgument otherwise). This is the entry point for the
/// paper's real fastText/MUSE vectors when they are available.
Status LoadTextEmbeddings(const std::string& path, WordEmbeddingStore* store,
                          const EmbeddingIoOptions& options = {});

/// Writes every explicit vector of `store` in the same text format (with a
/// fastText-style header line).
Status SaveTextEmbeddings(const WordEmbeddingStore& store,
                          const std::string& path);

}  // namespace ceaff::text

#endif  // CEAFF_TEXT_EMBEDDING_IO_H_
