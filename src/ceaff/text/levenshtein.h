#ifndef CEAFF_TEXT_LEVENSHTEIN_H_
#define CEAFF_TEXT_LEVENSHTEIN_H_

#include <cstddef>
#include <string_view>

#include "ceaff/common/thread_pool.h"
#include "ceaff/la/matrix.h"

namespace ceaff::text {

/// Classic Levenshtein edit distance (Eq. 2 of the paper): unit cost for
/// insertion, deletion and substitution. O(|a|·|b|) time, O(min) space.
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Levenshtein distance with substitution cost 2 (`lev*` in the paper),
/// i.e. a substitution is as expensive as one deletion plus one insertion.
size_t LevenshteinDistanceSub2(std::string_view a, std::string_view b);

/// Levenshtein ratio r = (|a| + |b| - lev*) / (|a| + |b|), the paper's
/// string similarity score in [0, 1] (two empty strings score 1).
double LevenshteinRatio(std::string_view a, std::string_view b);

/// Ratio variant computed from the unit-cost distance — kept only to
/// demonstrate the paper's 'a' vs 'c' motivating example; the pipeline uses
/// LevenshteinRatio.
double LevenshteinRatioUnitCost(std::string_view a, std::string_view b);

/// Full pairwise string similarity matrix Ml: out(i, j) =
/// LevenshteinRatio(source_names[i], target_names[j]). The O(n²) pair loop
/// is embarrassingly parallel; pass a ThreadPool to split it by source row
/// (null keeps the single-threaded path — the result is identical either
/// way).
la::Matrix StringSimilarityMatrix(
    const std::vector<std::string>& source_names,
    const std::vector<std::string>& target_names,
    ThreadPool* pool = nullptr);

}  // namespace ceaff::text

#endif  // CEAFF_TEXT_LEVENSHTEIN_H_
