#ifndef CEAFF_TEXT_TOKENIZER_H_
#define CEAFF_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace ceaff::text {

/// Splits an entity name into lower-cased word tokens: ASCII letters and
/// digits form tokens, everything else separates. "Los_Angeles (city)" →
/// ["los", "angeles", "city"]. Bytes >= 0x80 (multi-byte UTF-8) are kept
/// inside tokens so non-Latin scripts survive as opaque words.
std::vector<std::string> TokenizeName(std::string_view name);

}  // namespace ceaff::text

#endif  // CEAFF_TEXT_TOKENIZER_H_
