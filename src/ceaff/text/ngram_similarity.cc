#include "ceaff/text/ngram_similarity.h"

#include <algorithm>
#include <map>

namespace ceaff::text {

namespace {

/// Sorted n-gram multiset of a (possibly padded) name.
std::vector<std::string> Ngrams(std::string_view s,
                                const NgramOptions& options) {
  std::string padded;
  if (options.pad && !s.empty()) {
    padded.reserve(s.size() + 2 * (options.n - 1));
    padded.append(options.n - 1, '^');
    padded.append(s);
    padded.append(options.n - 1, '$');
    s = padded;
  }
  std::vector<std::string> grams;
  if (s.size() >= options.n) {
    grams.reserve(s.size() - options.n + 1);
    for (size_t i = 0; i + options.n <= s.size(); ++i) {
      grams.emplace_back(s.substr(i, options.n));
    }
  } else if (!s.empty()) {
    grams.emplace_back(s);
  }
  std::sort(grams.begin(), grams.end());
  return grams;
}

/// Multiset intersection size of two sorted vectors.
size_t IntersectionSize(const std::vector<std::string>& a,
                        const std::vector<std::string>& b) {
  size_t i = 0, j = 0, count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

double NgramSimilarity(std::string_view a, std::string_view b,
                       const NgramOptions& options) {
  if (a.empty() && b.empty()) return 1.0;
  std::vector<std::string> ga = Ngrams(a, options);
  std::vector<std::string> gb = Ngrams(b, options);
  size_t total = ga.size() + gb.size();
  if (total == 0) return 1.0;
  return 2.0 * static_cast<double>(IntersectionSize(ga, gb)) /
         static_cast<double>(total);
}

la::Matrix NgramSimilarityMatrix(const std::vector<std::string>& source_names,
                                 const std::vector<std::string>& target_names,
                                 const NgramOptions& options) {
  // Precompute target gram multisets once (source ones stream by row).
  std::vector<std::vector<std::string>> target_grams;
  target_grams.reserve(target_names.size());
  for (const std::string& t : target_names) {
    target_grams.push_back(Ngrams(t, options));
  }
  la::Matrix m(source_names.size(), target_names.size());
  for (size_t i = 0; i < source_names.size(); ++i) {
    std::vector<std::string> src = Ngrams(source_names[i], options);
    float* row = m.row(i);
    for (size_t j = 0; j < target_names.size(); ++j) {
      size_t total = src.size() + target_grams[j].size();
      if (total == 0) {
        row[j] = 1.0f;
        continue;
      }
      row[j] = static_cast<float>(
          2.0 * static_cast<double>(IntersectionSize(src, target_grams[j])) /
          static_cast<double>(total));
    }
  }
  return m;
}

}  // namespace ceaff::text
