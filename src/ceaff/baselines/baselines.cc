#include "ceaff/baselines/baselines.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ceaff/core/pipeline.h"
#include "ceaff/embed/bootstrap.h"
#include "ceaff/kg/adjacency.h"
#include "ceaff/kg/attribute_similarity.h"
#include "ceaff/la/ops.h"
#include "ceaff/matching/matching.h"
#include "ceaff/text/name_embedding.h"

namespace ceaff::baselines {

BaselineResult ScoreSimilarity(la::Matrix similarity) {
  BaselineResult result;
  std::vector<int64_t> gold(similarity.rows());
  std::iota(gold.begin(), gold.end(), int64_t{0});
  matching::MatchResult match = matching::GreedyIndependent(similarity);
  result.accuracy = eval::Accuracy(match, gold);
  result.ranking = eval::ComputeRankingMetrics(similarity, gold);
  result.similarity = std::move(similarity);
  return result;
}

namespace {

/// Cosine similarity between test-source rows of emb1 and test-target rows
/// of emb2.
la::Matrix TestSimilarity(const kg::KgPair& pair, const la::Matrix& emb1,
                          const la::Matrix& emb2) {
  std::vector<uint32_t> test_src, test_tgt;
  core::TestIds(pair, &test_src, &test_tgt);
  return la::CosineSimilarity(core::GatherRows(emb1, test_src),
                              core::GatherRows(emb2, test_tgt));
}

/// Merged-KG triple list for shared-space TransE: KG2 entity ids offset by
/// |E1|, KG2 relation ids offset by |R1|, plus swap triples for every
/// alignment pair in `links` (each KG1 triple incident to a linked entity
/// is duplicated with the linked KG2 entity substituted, and vice versa).
std::vector<kg::Triple> MergedTriples(
    const kg::KgPair& pair, const std::vector<kg::AlignmentPair>& links) {
  const uint32_t e_off = static_cast<uint32_t>(pair.kg1.num_entities());
  const uint32_t r_off = static_cast<uint32_t>(pair.kg1.num_relations());
  std::vector<kg::Triple> out;
  out.reserve(pair.kg1.num_triples() + pair.kg2.num_triples());
  for (const kg::Triple& t : pair.kg1.triples()) out.push_back(t);
  for (const kg::Triple& t : pair.kg2.triples()) {
    out.push_back({t.head + e_off, t.relation + r_off, t.tail + e_off});
  }
  // Entity-level swap maps.
  std::vector<int64_t> kg1_to_kg2(pair.kg1.num_entities(), -1);
  std::vector<int64_t> kg2_to_kg1(pair.kg2.num_entities(), -1);
  for (const kg::AlignmentPair& p : links) {
    kg1_to_kg2[p.source] = static_cast<int64_t>(p.target + e_off);
    kg2_to_kg1[p.target] = static_cast<int64_t>(p.source);
  }
  size_t base = out.size();
  for (size_t i = 0; i < base; ++i) {
    kg::Triple t = out[i];
    bool head_in_kg1 = t.head < e_off;
    int64_t h2 = head_in_kg1 ? kg1_to_kg2[t.head]
                             : kg2_to_kg1[t.head - e_off];
    bool tail_in_kg1 = t.tail < e_off;
    int64_t t2 = tail_in_kg1 ? kg1_to_kg2[t.tail]
                             : kg2_to_kg1[t.tail - e_off];
    if (h2 >= 0) out.push_back({static_cast<uint32_t>(h2), t.relation,
                                t.tail});
    if (t2 >= 0) out.push_back({t.head, t.relation,
                                static_cast<uint32_t>(t2)});
  }
  return out;
}

/// Splits a merged entity embedding into per-KG views.
void SplitMerged(const la::Matrix& merged, size_t n1, size_t n2,
                 la::Matrix* emb1, la::Matrix* emb2) {
  *emb1 = la::Matrix(n1, merged.cols());
  *emb2 = la::Matrix(n2, merged.cols());
  for (size_t i = 0; i < n1; ++i) {
    const float* s = merged.row(i);
    float* d = emb1->row(i);
    for (size_t c = 0; c < merged.cols(); ++c) d[c] = s[c];
  }
  for (size_t i = 0; i < n2; ++i) {
    const float* s = merged.row(n1 + i);
    float* d = emb2->row(i);
    for (size_t c = 0; c < merged.cols(); ++c) d[c] = s[c];
  }
}

}  // namespace

IPTransE::IPTransE() : options_(Options()) {}
BootEALite::BootEALite() : options_(Options()) {}
JapeLite::JapeLite() : options_(Options()) {}
RandomWalkAlign::RandomWalkAlign() : options_(Options()) {}
RepresentationFusionAlign::RepresentationFusionAlign()
    : options_(Options()) {}

StatusOr<BaselineResult> RepresentationFusionAlign::Run(
    const kg::KgPair& pair) {
  if (store_ == nullptr) {
    return Status::FailedPrecondition(
        "RepresentationFusionAlign needs a word-embedding store");
  }
  // Structural view.
  la::SparseMatrix a1 = kg::BuildAdjacency(pair.kg1);
  la::SparseMatrix a2 = kg::BuildAdjacency(pair.kg2);
  embed::GcnAligner gcn(std::move(a1), std::move(a2), options_.gcn);
  CEAFF_RETURN_IF_ERROR(gcn.Train(pair.seed_alignment).status());

  // Semantic (name) view.
  auto all_names = [](const kg::KnowledgeGraph& g) {
    std::vector<std::string> names;
    names.reserve(g.num_entities());
    for (kg::EntityId id = 0; id < g.num_entities(); ++id) {
      names.push_back(g.entity_name(id));
    }
    return names;
  };
  la::Matrix n1 = text::EmbedNames(*store_, all_names(pair.kg1));
  la::Matrix n2 = text::EmbedNames(*store_, all_names(pair.kg2));

  // Unified representation (representation-level fusion).
  auto unify = [&](la::Matrix structural, la::Matrix name) {
    structural.L2NormalizeRows();
    name.L2NormalizeRows();
    structural.Scale(options_.structural_weight);
    name.Scale(1.0f - options_.structural_weight);
    if (options_.mode == Options::Mode::kConcat) {
      la::Matrix out(structural.rows(), structural.cols() + name.cols());
      for (size_t r = 0; r < out.rows(); ++r) {
        float* dst = out.row(r);
        const float* s = structural.row(r);
        for (size_t c = 0; c < structural.cols(); ++c) dst[c] = s[c];
        const float* nn = name.row(r);
        for (size_t c = 0; c < name.cols(); ++c) {
          dst[structural.cols() + c] = nn[c];
        }
      }
      return out;
    }
    // Additive superposition: both views occupy the same coordinates
    // (name zero-padded or truncated to the structural dimension).
    la::Matrix out = std::move(structural);
    for (size_t r = 0; r < out.rows(); ++r) {
      float* dst = out.row(r);
      const float* nn = name.row(r);
      size_t overlap = std::min(out.cols(), name.cols());
      for (size_t c = 0; c < overlap; ++c) dst[c] += nn[c];
    }
    return out;
  };
  la::Matrix u1 = unify(gcn.embeddings1(), std::move(n1));
  la::Matrix u2 = unify(gcn.embeddings2(), std::move(n2));
  return ScoreSimilarity(TestSimilarity(pair, u1, u2));
}

NaeaLite::NaeaLite() : options_(Options()) {}

namespace {

/// Attention-weighted neighbour aggregation: out(e) = Σ_j α_j emb(j) over
/// the undirected neighbours j of e, α = softmax(cos(e, j) / τ).
la::Matrix NeighbourAttention(const kg::KnowledgeGraph& g,
                              const la::Matrix& emb, float temperature) {
  la::Matrix normalized = emb;
  normalized.L2NormalizeRows();
  std::vector<std::vector<uint32_t>> adj(g.num_entities());
  for (const kg::Triple& t : g.triples()) {
    adj[t.head].push_back(t.tail);
    adj[t.tail].push_back(t.head);
  }
  la::Matrix out(emb.rows(), emb.cols());
  std::vector<double> weights;
  for (size_t e = 0; e < adj.size(); ++e) {
    if (adj[e].empty()) continue;
    const float* ve = normalized.row(e);
    weights.clear();
    double max_logit = -1e30;
    for (uint32_t j : adj[e]) {
      const float* vj = normalized.row(j);
      double dot = 0.0;
      for (size_t c = 0; c < normalized.cols(); ++c) dot += ve[c] * vj[c];
      double logit = dot / temperature;
      weights.push_back(logit);
      max_logit = std::max(max_logit, logit);
    }
    double z = 0.0;
    for (double& w : weights) {
      w = std::exp(w - max_logit);
      z += w;
    }
    float* dst = out.row(e);
    for (size_t k = 0; k < adj[e].size(); ++k) {
      const float* vj = emb.row(adj[e][k]);
      float alpha = static_cast<float>(weights[k] / z);
      for (size_t c = 0; c < emb.cols(); ++c) dst[c] += alpha * vj[c];
    }
  }
  return out;
}

/// Concatenates the entity-level and neighbour-level views with weights.
la::Matrix ConcatViews(la::Matrix entity, la::Matrix neighbour,
                       float neighbour_weight) {
  entity.L2NormalizeRows();
  neighbour.L2NormalizeRows();
  entity.Scale(1.0f - neighbour_weight);
  neighbour.Scale(neighbour_weight);
  la::Matrix out(entity.rows(), entity.cols() + neighbour.cols());
  for (size_t r = 0; r < out.rows(); ++r) {
    float* dst = out.row(r);
    const float* a = entity.row(r);
    for (size_t c = 0; c < entity.cols(); ++c) dst[c] = a[c];
    const float* b = neighbour.row(r);
    for (size_t c = 0; c < neighbour.cols(); ++c) {
      dst[entity.cols() + c] = b[c];
    }
  }
  return out;
}

}  // namespace

StatusOr<BaselineResult> NaeaLite::Run(const kg::KgPair& pair) {
  la::SparseMatrix a1 = kg::BuildAdjacency(pair.kg1);
  la::SparseMatrix a2 = kg::BuildAdjacency(pair.kg2);
  embed::GcnAligner gcn(std::move(a1), std::move(a2), options_.gcn);
  CEAFF_RETURN_IF_ERROR(gcn.Train(pair.seed_alignment).status());
  la::Matrix u1 = ConcatViews(
      gcn.embeddings1(),
      NeighbourAttention(pair.kg1, gcn.embeddings1(), options_.temperature),
      options_.neighbour_weight);
  la::Matrix u2 = ConcatViews(
      gcn.embeddings2(),
      NeighbourAttention(pair.kg2, gcn.embeddings2(), options_.temperature),
      options_.neighbour_weight);
  return ScoreSimilarity(TestSimilarity(pair, u1, u2));
}

StatusOr<BaselineResult> RandomWalkAlign::Run(const kg::KgPair& pair) {
  size_t n1 = pair.kg1.num_entities(), n2 = pair.kg2.num_entities();
  embed::RandomWalkEmbedder embedder(n1 + n2, options_.walk);
  CEAFF_RETURN_IF_ERROR(
      embedder.Train(embed::MergedEdgeList(pair, pair.seed_alignment)));
  la::Matrix emb1, emb2;
  SplitMerged(embedder.embeddings(), n1, n2, &emb1, &emb2);
  return ScoreSimilarity(TestSimilarity(pair, emb1, emb2));
}

StatusOr<BaselineResult> JapeLite::Run(const kg::KgPair& pair) {
  la::SparseMatrix a1 = kg::BuildAdjacency(pair.kg1);
  la::SparseMatrix a2 = kg::BuildAdjacency(pair.kg2);
  embed::GcnAligner gcn(std::move(a1), std::move(a2), options_.gcn);
  CEAFF_RETURN_IF_ERROR(gcn.Train(pair.seed_alignment).status());
  la::Matrix structural =
      TestSimilarity(pair, gcn.embeddings1(), gcn.embeddings2());
  std::vector<uint32_t> test_src, test_tgt;
  core::TestIds(pair, &test_src, &test_tgt);
  kg::AttributeSimilarityOptions attr_opt;
  attr_opt.use_values = false;  // JAPE uses attribute types, not values
  la::Matrix attribute = kg::AttributeSimilarityMatrix(
      pair.kg1, pair.kg2, test_src, test_tgt, attr_opt);
  la::Matrix fused = la::WeightedSum(
      {&structural, &attribute},
      {options_.structural_weight, 1.0 - options_.structural_weight});
  return ScoreSimilarity(std::move(fused));
}

StatusOr<BaselineResult> MTransE::Run(const kg::KgPair& pair) {
  embed::TranseModel m1(pair.kg1.num_entities(), pair.kg1.num_relations(),
                        options_);
  embed::TranseOptions opt2 = options_;
  opt2.seed = Rng::SplitMix64(options_.seed ^ 0x2222ull);
  embed::TranseModel m2(pair.kg2.num_entities(), pair.kg2.num_relations(),
                        opt2);
  CEAFF_RETURN_IF_ERROR(m1.Train(pair.kg1.triples()).status());
  CEAFF_RETURN_IF_ERROR(m2.Train(pair.kg2.triples()).status());
  la::Matrix transform = embed::LearnLinearTransform(
      m1.entity_embeddings(), m2.entity_embeddings(), pair.seed_alignment);
  la::Matrix projected =
      embed::ApplyLinearTransform(m1.entity_embeddings(), transform);
  return ScoreSimilarity(
      TestSimilarity(pair, projected, m2.entity_embeddings()));
}

StatusOr<BaselineResult> TransEShared::Run(const kg::KgPair& pair) {
  size_t n1 = pair.kg1.num_entities(), n2 = pair.kg2.num_entities();
  embed::TranseModel model(n1 + n2,
                           pair.kg1.num_relations() + pair.kg2.num_relations(),
                           options_);
  std::vector<kg::Triple> triples = MergedTriples(pair, pair.seed_alignment);
  CEAFF_RETURN_IF_ERROR(model.Train(triples).status());
  la::Matrix emb1, emb2;
  SplitMerged(model.entity_embeddings(), n1, n2, &emb1, &emb2);
  return ScoreSimilarity(TestSimilarity(pair, emb1, emb2));
}

StatusOr<BaselineResult> IPTransE::Run(const kg::KgPair& pair) {
  size_t n1 = pair.kg1.num_entities(), n2 = pair.kg2.num_entities();
  embed::TranseOptions opts = options_.transe;
  // Spread the epoch budget over the iterations.
  opts.epochs = std::max<size_t>(1, opts.epochs / std::max<size_t>(
                                        1, options_.iterations));
  embed::TranseModel model(n1 + n2,
                           pair.kg1.num_relations() + pair.kg2.num_relations(),
                           opts);
  std::vector<kg::AlignmentPair> links = pair.seed_alignment;
  la::Matrix emb1, emb2;
  for (size_t it = 0; it < std::max<size_t>(1, options_.iterations); ++it) {
    std::vector<kg::Triple> triples = MergedTriples(pair, links);
    CEAFF_RETURN_IF_ERROR(model.Train(triples).status());
    SplitMerged(model.entity_embeddings(), n1, n2, &emb1, &emb2);
    // Harvest confident new links over the full entity sets.
    embed::BootstrapOptions bopt;
    bopt.min_similarity = options_.harvest_threshold;
    la::Matrix sim = la::CosineSimilarity(emb1, emb2);
    std::vector<kg::AlignmentPair> fresh =
        embed::HarvestConfidentPairs(sim, links, bopt);
    if (fresh.empty() && it + 1 < options_.iterations) break;
    links.insert(links.end(), fresh.begin(), fresh.end());
  }
  return ScoreSimilarity(TestSimilarity(pair, emb1, emb2));
}

StatusOr<BaselineResult> GcnAlignStructural::Run(const kg::KgPair& pair) {
  la::SparseMatrix a1 = kg::BuildAdjacency(pair.kg1);
  la::SparseMatrix a2 = kg::BuildAdjacency(pair.kg2);
  embed::GcnAligner gcn(std::move(a1), std::move(a2), options_);
  CEAFF_RETURN_IF_ERROR(gcn.Train(pair.seed_alignment).status());
  return ScoreSimilarity(
      TestSimilarity(pair, gcn.embeddings1(), gcn.embeddings2()));
}

StatusOr<BaselineResult> BootEALite::Run(const kg::KgPair& pair) {
  la::SparseMatrix a1 = kg::BuildAdjacency(pair.kg1);
  la::SparseMatrix a2 = kg::BuildAdjacency(pair.kg2);
  embed::GcnOptions opts = options_.gcn;
  opts.epochs = std::max<size_t>(
      1, opts.epochs / std::max<size_t>(1, options_.rounds));
  std::vector<kg::AlignmentPair> links = pair.seed_alignment;
  embed::GcnAligner gcn(std::move(a1), std::move(a2), opts);
  for (size_t round = 0; round < std::max<size_t>(1, options_.rounds);
       ++round) {
    CEAFF_RETURN_IF_ERROR(gcn.Train(links).status());
    embed::BootstrapOptions bopt;
    bopt.min_similarity = options_.harvest_threshold;
    la::Matrix sim =
        la::CosineSimilarity(gcn.embeddings1(), gcn.embeddings2());
    std::vector<kg::AlignmentPair> fresh =
        embed::HarvestConfidentPairs(sim, links, bopt);
    if (fresh.empty()) break;
    links.insert(links.end(), fresh.begin(), fresh.end());
  }
  return ScoreSimilarity(
      TestSimilarity(pair, gcn.embeddings1(), gcn.embeddings2()));
}

}  // namespace ceaff::baselines
