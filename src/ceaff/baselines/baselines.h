#ifndef CEAFF_BASELINES_BASELINES_H_
#define CEAFF_BASELINES_BASELINES_H_

#include <memory>
#include <string>
#include <vector>

#include "ceaff/common/statusor.h"
#include "ceaff/embed/gcn.h"
#include "ceaff/embed/random_walk.h"
#include "ceaff/embed/transe.h"
#include "ceaff/eval/metrics.h"
#include "ceaff/kg/knowledge_graph.h"
#include "ceaff/la/matrix.h"
#include "ceaff/text/word_embedding.h"

namespace ceaff::baselines {

/// Output of one baseline run: the test-restricted similarity matrix (rows
/// = test sources, cols = test targets, gold on the diagonal), the
/// independent (row-argmax) accuracy these methods report, and ranking
/// metrics.
struct BaselineResult {
  la::Matrix similarity;
  double accuracy = 0.0;
  eval::RankingMetrics ranking;
};

/// A from-scratch reimplementation of one published comparator
/// (Tables III/IV, first group). All baselines make independent decisions,
/// as the originals do.
class Baseline {
 public:
  virtual ~Baseline() = default;
  virtual std::string name() const = 0;
  virtual StatusOr<BaselineResult> Run(const kg::KgPair& pair) = 0;
};

/// MTransE (Chen et al., IJCAI'17): one TransE space per KG plus a linear
/// transfer matrix fitted on the seed pairs.
class MTransE : public Baseline {
 public:
  explicit MTransE(const embed::TranseOptions& options = {})
      : options_(options) {}
  std::string name() const override { return "MTransE"; }
  StatusOr<BaselineResult> Run(const kg::KgPair& pair) override;

 private:
  embed::TranseOptions options_;
};

/// Shared-space TransE: both KGs trained in one space, seed pairs injected
/// by triple swapping (the PTransE-style sharing IPTransE builds on).
class TransEShared : public Baseline {
 public:
  explicit TransEShared(const embed::TranseOptions& options = {})
      : options_(options) {}
  std::string name() const override { return "TransE-shared"; }
  StatusOr<BaselineResult> Run(const kg::KgPair& pair) override;

 private:
  embed::TranseOptions options_;
};

/// IPTransE (Zhu et al., IJCAI'17), simplified: shared-space TransE with
/// iterative alignment augmentation — after each round, confident mutual
/// nearest neighbours join the swap set.
class IPTransE : public Baseline {
 public:
  struct Options {
    embed::TranseOptions transe;
    size_t iterations = 3;
    float harvest_threshold = 0.75f;
  };
  IPTransE();  // default options
  explicit IPTransE(const Options& options) : options_(options) {}
  std::string name() const override { return "IPTransE"; }
  StatusOr<BaselineResult> Run(const kg::KgPair& pair) override;

 private:
  Options options_;
};

/// GCN-Align (Wang et al., EMNLP'18), structural view: the same GCN CEAFF
/// uses for Ms, with independent decisions. (The attribute view needs
/// attribute triples, which none of the paper's SRPRS/DBP benchmarks rely
/// on for this group.)
class GcnAlignStructural : public Baseline {
 public:
  explicit GcnAlignStructural(const embed::GcnOptions& options = {})
      : options_(options) {}
  std::string name() const override { return "GCN-Align"; }
  StatusOr<BaselineResult> Run(const kg::KgPair& pair) override;

 private:
  embed::GcnOptions options_;
};

/// BootEA-lite (Sun et al., IJCAI'18 spirit): GCN structural embeddings
/// retrained over bootstrapping rounds that add one-to-one confident pairs
/// to the seed set.
class BootEALite : public Baseline {
 public:
  struct Options {
    embed::GcnOptions gcn;
    size_t rounds = 3;
    float harvest_threshold = 0.8f;
  };
  BootEALite();  // default options
  explicit BootEALite(const Options& options) : options_(options) {}
  std::string name() const override { return "BootEA-lite"; }
  StatusOr<BaselineResult> Run(const kg::KgPair& pair) override;

 private:
  Options options_;
};

/// Representation-level fusion baseline (MultiKE/GM-Align spirit — the
/// design the paper argues *against* in Sec. II/V): the structural (GCN)
/// and semantic (name) view embeddings of each entity are L2-normalised,
/// weighted and concatenated into one unified representation, and a single
/// cosine similarity drives independent decisions. Entities close in one
/// view but distant in the other end up distant in the unified space —
/// the information loss outcome-level fusion avoids.
class RepresentationFusionAlign : public Baseline {
 public:
  struct Options {
    embed::GcnOptions gcn;
    /// Weight of the structural view in the combination ([0, 1]).
    float structural_weight = 0.5f;
    /// How the unified representation is formed:
    ///  * concatenation of the scaled views — note this is *equivalent* to
    ///    fixed-weight outcome-level fusion of the per-view cosines (the
    ///    cross terms vanish), so it loses nothing;
    ///  * additive superposition in one shared space (the name view is
    ///    zero-padded to the structural dimension) — here the views
    ///    interfere, exhibiting exactly the information loss the paper
    ///    attributes to representation-level fusion.
    enum class Mode { kConcat, kAdditive };
    Mode mode = Mode::kAdditive;
  };
  RepresentationFusionAlign();  // default options
  RepresentationFusionAlign(const Options& options,
                            const text::WordEmbeddingStore* store)
      : options_(options), store_(store) {}
  /// The store supplies name embeddings; set before Run when using the
  /// default constructor.
  void set_store(const text::WordEmbeddingStore* store) { store_ = store; }
  std::string name() const override { return "RepFusion"; }
  StatusOr<BaselineResult> Run(const kg::KgPair& pair) override;

 private:
  Options options_;
  const text::WordEmbeddingStore* store_ = nullptr;
};

/// Random-walk alignment (RSNs slot, simplified): DeepWalk-style skip-gram
/// embeddings trained on the merged graph with seed anchor edges, so walks
/// carry long-range (up to walk_length-hop) relational context across both
/// KGs — the property RSNs' recurrent path modelling targets.
class RandomWalkAlign : public Baseline {
 public:
  struct Options {
    embed::RandomWalkOptions walk;
  };
  RandomWalkAlign();  // default options
  explicit RandomWalkAlign(const Options& options) : options_(options) {}
  std::string name() const override { return "RWalk-align"; }
  StatusOr<BaselineResult> Run(const kg::KgPair& pair) override;

 private:
  Options options_;
};

/// NAEA-lite (Zhu et al., IJCAI'19 spirit): neighbourhood-aware
/// attentional representation. Base embeddings come from the shared GCN;
/// each entity is then re-represented as a mixture of itself and an
/// attention-weighted combination of its neighbours (attention =
/// temperature-softmax of embedding cosine), concatenated into an
/// entity-level + neighbour-level view.
class NaeaLite : public Baseline {
 public:
  struct Options {
    embed::GcnOptions gcn;
    /// Softmax temperature of the neighbour attention (lower = sharper).
    float temperature = 0.2f;
    /// Weight of the neighbour-level view in the concatenation.
    float neighbour_weight = 0.4f;
  };
  NaeaLite();  // default options
  explicit NaeaLite(const Options& options) : options_(options) {}
  std::string name() const override { return "NAEA-lite"; }
  StatusOr<BaselineResult> Run(const kg::KgPair& pair) override;

 private:
  Options options_;
};

/// JAPE-lite (Sun et al., ISWC'17 spirit): structural embeddings refined
/// with the attribute-type view — GCN structural similarity combined with
/// the attribute-signature similarity at fixed weights, independent
/// decisions. Exercises the attribute substrate the way the paper's
/// second-group baselines do.
class JapeLite : public Baseline {
 public:
  struct Options {
    embed::GcnOptions gcn;
    /// Fixed weight of the structural matrix; attributes get the rest.
    float structural_weight = 0.6f;
  };
  JapeLite();  // default options
  explicit JapeLite(const Options& options) : options_(options) {}
  std::string name() const override { return "JAPE-lite"; }
  StatusOr<BaselineResult> Run(const kg::KgPair& pair) override;

 private:
  Options options_;
};

/// Scores a test-restricted similarity matrix with the independent
/// protocol shared by all baselines.
BaselineResult ScoreSimilarity(la::Matrix similarity);

}  // namespace ceaff::baselines

#endif  // CEAFF_BASELINES_BASELINES_H_
