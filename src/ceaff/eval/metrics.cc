#include "ceaff/eval/metrics.h"

#include "ceaff/common/logging.h"

namespace ceaff::eval {

double Accuracy(const matching::MatchResult& match,
                const std::vector<int64_t>& gold_target_of_row) {
  CEAFF_CHECK(match.target_of_source.size() == gold_target_of_row.size());
  if (gold_target_of_row.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < gold_target_of_row.size(); ++i) {
    if (match.target_of_source[i] >= 0 &&
        match.target_of_source[i] == gold_target_of_row[i]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) /
         static_cast<double>(gold_target_of_row.size());
}

RankingMetrics ComputeRankingMetrics(
    const la::Matrix& similarity,
    const std::vector<int64_t>& gold_target_of_row,
    const std::vector<size_t>& /*ks*/) {
  CEAFF_CHECK(similarity.rows() == gold_target_of_row.size());
  RankingMetrics m;
  if (gold_target_of_row.empty()) return m;
  size_t h1 = 0, h10 = 0;
  double rr = 0.0;
  for (size_t i = 0; i < similarity.rows(); ++i) {
    int64_t gold = gold_target_of_row[i];
    CEAFF_CHECK(gold >= 0 && static_cast<size_t>(gold) < similarity.cols());
    const float* row = similarity.row(i);
    const float gold_score = row[gold];
    size_t rank = 1;
    for (size_t j = 0; j < similarity.cols(); ++j) {
      if (row[j] > gold_score ||
          (row[j] == gold_score && j < static_cast<size_t>(gold))) {
        ++rank;
      }
    }
    if (rank <= 1) ++h1;
    if (rank <= 10) ++h10;
    rr += 1.0 / static_cast<double>(rank);
  }
  double n = static_cast<double>(similarity.rows());
  m.hits_at_1 = h1 / n;
  m.hits_at_10 = h10 / n;
  m.mrr = rr / n;
  return m;
}

double HitsAtK(const la::Matrix& similarity,
               const std::vector<int64_t>& gold_target_of_row, size_t k) {
  CEAFF_CHECK(similarity.rows() == gold_target_of_row.size());
  if (gold_target_of_row.empty()) return 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < similarity.rows(); ++i) {
    int64_t gold = gold_target_of_row[i];
    const float* row = similarity.row(i);
    const float gold_score = row[gold];
    size_t rank = 1;
    for (size_t j = 0; j < similarity.cols(); ++j) {
      if (row[j] > gold_score ||
          (row[j] == gold_score && j < static_cast<size_t>(gold))) {
        ++rank;
      }
    }
    if (rank <= k) ++hits;
  }
  return static_cast<double>(hits) /
         static_cast<double>(gold_target_of_row.size());
}

PrMetrics ComputePrMetrics(const matching::MatchResult& match,
                           const std::vector<int64_t>& gold_target_of_row) {
  CEAFF_CHECK(match.target_of_source.size() == gold_target_of_row.size());
  PrMetrics m;
  for (size_t i = 0; i < gold_target_of_row.size(); ++i) {
    int64_t decision = match.target_of_source[i];
    if (decision < 0) continue;
    m.decided++;
    if (decision == gold_target_of_row[i]) m.correct++;
  }
  if (m.decided > 0) {
    m.precision = static_cast<double>(m.correct) /
                  static_cast<double>(m.decided);
  }
  if (!gold_target_of_row.empty()) {
    m.recall = static_cast<double>(m.correct) /
               static_cast<double>(gold_target_of_row.size());
  }
  if (m.precision + m.recall > 0.0) {
    m.f1 = 2.0 * m.precision * m.recall / (m.precision + m.recall);
  }
  return m;
}

}  // namespace ceaff::eval
