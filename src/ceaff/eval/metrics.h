#ifndef CEAFF_EVAL_METRICS_H_
#define CEAFF_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

#include "ceaff/kg/knowledge_graph.h"
#include "ceaff/la/matrix.h"
#include "ceaff/matching/matching.h"

namespace ceaff::eval {

/// Ranking-style evaluation results (Table VI).
struct RankingMetrics {
  double hits_at_1 = 0.0;
  double hits_at_10 = 0.0;
  double mrr = 0.0;
};

/// Accuracy of a matching (the paper's main metric, Sec. VII-A): correctly
/// aligned sources / total sources in `gold`. Rows of the decision space
/// are *test-set positions*; `gold[i]` gives the expected target column of
/// row i, and `match.target_of_source[i]` the decision for row i.
double Accuracy(const matching::MatchResult& match,
                const std::vector<int64_t>& gold_target_of_row);

/// Ranking metrics over a test-row similarity matrix: row i's ground truth
/// column is `gold_target_of_row[i]`. Rank = 1 + number of strictly larger
/// entries (ties resolved optimistically by lower column index, matching
/// the deterministic argmax used elsewhere).
RankingMetrics ComputeRankingMetrics(
    const la::Matrix& similarity,
    const std::vector<int64_t>& gold_target_of_row,
    const std::vector<size_t>& ks = {1, 10});

/// Hits@k for one k (convenience over ComputeRankingMetrics).
double HitsAtK(const la::Matrix& similarity,
               const std::vector<int64_t>& gold_target_of_row, size_t k);

/// Precision / recall / F1 of a (possibly partial) matching: precision
/// counts correct decisions over decisions made, recall over all gold
/// rows. For total matchings (every row decided) all three equal the
/// accuracy; they differ when a matcher abstains (n1 > n2, or confidence
/// thresholds).
struct PrMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  size_t decided = 0;
  size_t correct = 0;
};

PrMetrics ComputePrMetrics(const matching::MatchResult& match,
                           const std::vector<int64_t>& gold_target_of_row);

}  // namespace ceaff::eval

#endif  // CEAFF_EVAL_METRICS_H_
