#ifndef CEAFF_EVAL_ANALYSIS_H_
#define CEAFF_EVAL_ANALYSIS_H_

#include <string>
#include <vector>

#include "ceaff/kg/knowledge_graph.h"
#include "ceaff/matching/matching.h"

namespace ceaff::eval {

/// Accuracy broken down by source-entity degree — the lens behind the
/// paper's DBP15K-vs-SRPRS discussion (structure-based methods live off
/// well-connected entities; SRPRS's real-life long tail starves them).
struct DegreeBucket {
  uint32_t min_degree;  // inclusive
  uint32_t max_degree;  // inclusive; UINT32_MAX = unbounded
  size_t count = 0;
  size_t correct = 0;

  double accuracy() const {
    return count == 0 ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(count);
  }
};

/// Buckets the test rows of `match` by the degree of their source entity
/// in `kg1`. `boundaries` are the inclusive upper edges of all but the
/// last bucket (e.g. {1, 3, 7, 15} → [0,1], [2,3], [4,7], [8,15], [16,∞)).
/// `gold_target_of_row[i]` is the expected column of row i, and
/// `test_sources[i]` the KG1 entity id behind row i.
std::vector<DegreeBucket> AccuracyByDegree(
    const kg::KnowledgeGraph& kg1, const std::vector<uint32_t>& test_sources,
    const matching::MatchResult& match,
    const std::vector<int64_t>& gold_target_of_row,
    const std::vector<uint32_t>& boundaries = {1, 3, 7, 15});

/// Render a bucket table as aligned text (for benches/examples).
std::string FormatDegreeBuckets(const std::vector<DegreeBucket>& buckets);

}  // namespace ceaff::eval

#endif  // CEAFF_EVAL_ANALYSIS_H_
