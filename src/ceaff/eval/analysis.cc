#include "ceaff/eval/analysis.h"

#include <cstdint>
#include <limits>

#include "ceaff/common/logging.h"
#include "ceaff/common/string_util.h"

namespace ceaff::eval {

std::vector<DegreeBucket> AccuracyByDegree(
    const kg::KnowledgeGraph& kg1, const std::vector<uint32_t>& test_sources,
    const matching::MatchResult& match,
    const std::vector<int64_t>& gold_target_of_row,
    const std::vector<uint32_t>& boundaries) {
  CEAFF_CHECK(test_sources.size() == match.target_of_source.size());
  CEAFF_CHECK(test_sources.size() == gold_target_of_row.size());
  std::vector<uint32_t> degrees = kg1.Degrees();

  std::vector<DegreeBucket> buckets;
  uint32_t lo = 0;
  for (uint32_t b : boundaries) {
    buckets.push_back({lo, b, 0, 0});
    lo = b + 1;
  }
  buckets.push_back({lo, std::numeric_limits<uint32_t>::max(), 0, 0});

  for (size_t i = 0; i < test_sources.size(); ++i) {
    uint32_t deg = degrees[test_sources[i]];
    for (DegreeBucket& bucket : buckets) {
      if (deg >= bucket.min_degree && deg <= bucket.max_degree) {
        bucket.count++;
        if (match.target_of_source[i] >= 0 &&
            match.target_of_source[i] == gold_target_of_row[i]) {
          bucket.correct++;
        }
        break;
      }
    }
  }
  return buckets;
}

std::string FormatDegreeBuckets(const std::vector<DegreeBucket>& buckets) {
  std::string out =
      StrFormat("%-12s %8s %10s\n", "degree", "#pairs", "accuracy");
  for (const DegreeBucket& b : buckets) {
    std::string range =
        b.max_degree == std::numeric_limits<uint32_t>::max()
            ? StrFormat("%u+", b.min_degree)
            : StrFormat("%u-%u", b.min_degree, b.max_degree);
    out += StrFormat("%-12s %8zu %10.3f\n", range.c_str(), b.count,
                     b.accuracy());
  }
  return out;
}

}  // namespace ceaff::eval
