#ifndef CEAFF_ANN_IVF_H_
#define CEAFF_ANN_IVF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ceaff/common/statusor.h"
#include "ceaff/la/matrix.h"

namespace ceaff::ann {

/// IVF coarse-quantizer training knobs. Everything is seeded and the
/// training loop is strictly sequential, so (points, options) fully
/// determine the result — the exported artifact is reproducible
/// bit-for-bit, the property every CEAFF stage holds.
struct IvfOptions {
  /// Number of k-means centroids; 0 picks ceil(sqrt(n)) clamped to [1, n].
  size_t num_centroids = 0;
  /// Lloyd iteration cap; training also stops early when no assignment
  /// changes.
  size_t max_iters = 12;
  /// Seed for the initial centroid sample.
  uint64_t seed = 2020;
};

/// A trained IVF coarse index: k-means centroids over the input rows and
/// one posting list per centroid holding the ids of the rows assigned to
/// it (ascending; together the lists partition [0, n)).
struct IvfIndex {
  la::Matrix centroids;                      // num_centroids x d
  std::vector<std::vector<uint32_t>> lists;  // lists[c] = member row ids
};

/// Lloyd's k-means over the rows of `points` (squared-L2 assignment, ties
/// toward the smaller centroid id; means accumulate in ascending row order
/// in double precision — deterministic at any call site). Initial
/// centroids are a seeded sample of distinct rows. A centroid that loses
/// all members keeps its previous position. InvalidArgument when `points`
/// is empty.
StatusOr<IvfIndex> TrainIvf(const la::Matrix& points,
                            const IvfOptions& options);

/// The `nprobe` centroid ids with the largest inner product against `q`
/// (d floats), ties toward the smaller id — the probe order of the query
/// path. Inner product, not L2: the shortlist stage maximises a weighted
/// dot against the fused target vectors, so probing ranks cells by the
/// same objective.
std::vector<uint32_t> ProbeCentroids(const la::Matrix& centroids,
                                     const float* q, size_t nprobe);

}  // namespace ceaff::ann

#endif  // CEAFF_ANN_IVF_H_
