#ifndef CEAFF_ANN_QUANTIZE_H_
#define CEAFF_ANN_QUANTIZE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ceaff/common/logging.h"
#include "ceaff/la/matrix.h"

namespace ceaff::ann {

/// Dense row-major int8 matrix — the storage type of the quantized
/// embedding sections (DESIGN.md §13). Mirrors la::Matrix's ownership
/// model: either owns its codes or is a read-only view over external
/// memory (the mmap'd index artifact). Copying a view materialises it, so
/// value semantics are preserved; the creator of a view keeps the
/// underlying memory alive for the view's lifetime. int8 payloads have no
/// alignment requirement, so any mapped address can back a view.
class Int8Matrix {
 public:
  Int8Matrix() : rows_(0), cols_(0) {}

  /// Allocates rows x cols, zero-initialised.
  Int8Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  Int8Matrix(const Int8Matrix& other)
      : rows_(other.rows_),
        cols_(other.cols_),
        data_(other.data(), other.data() + other.size()) {}
  Int8Matrix& operator=(const Int8Matrix& other) {
    if (this != &other) {
      rows_ = other.rows_;
      cols_ = other.cols_;
      data_.assign(other.data(), other.data() + other.size());
      view_ = nullptr;
    }
    return *this;
  }
  Int8Matrix(Int8Matrix&&) noexcept = default;
  Int8Matrix& operator=(Int8Matrix&&) noexcept = default;

  /// Read-only view over external row-major storage of rows x cols codes.
  static Int8Matrix ConstView(const int8_t* data, size_t rows, size_t cols) {
    Int8Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.view_ = data;
    return m;
  }

  bool is_view() const { return view_ != nullptr; }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  int8_t* data() {
    CEAFF_DCHECK(!is_view());
    return data_.data();
  }
  const int8_t* data() const { return view_ ? view_ : data_.data(); }

  int8_t* row(size_t r) {
    CEAFF_DCHECK(!is_view());
    CEAFF_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }
  const int8_t* row(size_t r) const {
    CEAFF_DCHECK(r < rows_);
    return data() + r * cols_;
  }

 private:
  size_t rows_, cols_;
  std::vector<int8_t> data_;
  // Non-null iff this matrix is a ConstView; data_ is empty in that case.
  const int8_t* view_ = nullptr;
};

/// Per-row symmetric int8 quantization of a float matrix: codes plus one
/// scale per row (a rows x 1 matrix, so it reuses the index container's
/// matrix section framing).
struct QuantizedRows {
  Int8Matrix codes;
  la::Matrix scales;  // rows x 1
};

/// Quantizes every row independently: scale = max|x| / 127 and
/// code = round(x / scale) clamped to [-127, 127], so
/// |x - scale * code| <= scale / 2 element-wise. An all-zero row gets
/// scale 0 and all-zero codes (decoding reproduces it exactly); +127/-127
/// both stay representable (symmetric, no -128).
QuantizedRows QuantizeRowsInt8(const la::Matrix& m);

/// Reconstructs one row: out[i] = scale * codes[i]. `out` must hold `d`
/// floats.
void DequantizeRow(const int8_t* codes, float scale, size_t d, float* out);

/// Unscaled asymmetric inner product sum_i q[i] * codes[i] — the shortlist
/// scorer's kernel (the caller multiplies by the row scale). The query
/// side stays float: only the stored side is quantized.
float QuantizedDot(const float* q, const int8_t* codes, size_t d);

}  // namespace ceaff::ann

#endif  // CEAFF_ANN_QUANTIZE_H_
