#include "ceaff/ann/quantize.h"

#include <cmath>

namespace ceaff::ann {

QuantizedRows QuantizeRowsInt8(const la::Matrix& m) {
  QuantizedRows q;
  q.codes = Int8Matrix(m.rows(), m.cols());
  q.scales = la::Matrix(m.rows(), 1);
  for (size_t r = 0; r < m.rows(); ++r) {
    const float* src = m.row(r);
    float max_abs = 0.0f;
    for (size_t c = 0; c < m.cols(); ++c) {
      const float a = std::fabs(src[c]);
      if (a > max_abs) max_abs = a;
    }
    int8_t* dst = q.codes.row(r);
    if (max_abs == 0.0f) {
      q.scales.at(r, 0) = 0.0f;
      continue;  // codes are already zero
    }
    const float scale = max_abs / 127.0f;
    q.scales.at(r, 0) = scale;
    const float inv = 127.0f / max_abs;
    for (size_t c = 0; c < m.cols(); ++c) {
      // lrintf under the default round-to-nearest mode; the magnitude is
      // bounded by 127 by construction but clamp anyway against rounding.
      long code = std::lrintf(src[c] * inv);
      if (code > 127) code = 127;
      if (code < -127) code = -127;
      dst[c] = static_cast<int8_t>(code);
    }
  }
  return q;
}

void DequantizeRow(const int8_t* codes, float scale, size_t d, float* out) {
  for (size_t i = 0; i < d; ++i) {
    out[i] = scale * static_cast<float>(codes[i]);
  }
}

float QuantizedDot(const float* q, const int8_t* codes, size_t d) {
  float acc = 0.0f;
  for (size_t i = 0; i < d; ++i) {
    acc += q[i] * static_cast<float>(codes[i]);
  }
  return acc;
}

}  // namespace ceaff::ann
