#include "ceaff/ann/ivf.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "ceaff/common/random.h"

namespace ceaff::ann {

namespace {

float SquaredL2(const float* a, const float* b, size_t d) {
  float acc = 0.0f;
  for (size_t i = 0; i < d; ++i) {
    const float diff = a[i] - b[i];
    acc += diff * diff;
  }
  return acc;
}

}  // namespace

StatusOr<IvfIndex> TrainIvf(const la::Matrix& points,
                            const IvfOptions& options) {
  const size_t n = points.rows();
  const size_t d = points.cols();
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("ivf training needs a non-empty matrix");
  }
  size_t k = options.num_centroids;
  if (k == 0) {
    k = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(n))));
  }
  k = std::min(std::max<size_t>(k, 1), n);

  // Seeded sample of k distinct rows as the initial centroids: a partial
  // Fisher-Yates over the id array, deterministic in options.seed.
  Rng rng(options.seed);
  std::vector<uint32_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  for (size_t i = 0; i < k; ++i) {
    const size_t j = i + static_cast<size_t>(rng.NextBounded(n - i));
    std::swap(ids[i], ids[j]);
  }
  IvfIndex index;
  index.centroids = la::Matrix(k, d);
  for (size_t c = 0; c < k; ++c) {
    const float* src = points.row(ids[c]);
    std::copy(src, src + d, index.centroids.row(c));
  }

  std::vector<uint32_t> assign(n, 0);
  std::vector<double> sums(k * d);
  std::vector<uint32_t> counts(k);
  for (size_t iter = 0; iter < std::max<size_t>(options.max_iters, 1);
       ++iter) {
    // Assignment: nearest centroid by squared L2, ties toward the smaller
    // centroid id (strict < keeps the first minimum).
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      const float* p = points.row(i);
      float best = std::numeric_limits<float>::infinity();
      uint32_t best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        const float dist = SquaredL2(p, index.centroids.row(c), d);
        if (dist < best) {
          best = dist;
          best_c = static_cast<uint32_t>(c);
        }
      }
      if (assign[i] != best_c) {
        assign[i] = best_c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;

    // Update: per-cluster means, accumulated in ascending row order in
    // double precision. Empty clusters keep their previous centroid.
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0u);
    for (size_t i = 0; i < n; ++i) {
      double* sum = sums.data() + static_cast<size_t>(assign[i]) * d;
      const float* p = points.row(i);
      for (size_t j = 0; j < d; ++j) sum[j] += p[j];
      ++counts[assign[i]];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      const double inv = 1.0 / counts[c];
      const double* sum = sums.data() + c * d;
      float* centroid = index.centroids.row(c);
      for (size_t j = 0; j < d; ++j) {
        centroid[j] = static_cast<float>(sum[j] * inv);
      }
    }
  }

  index.lists.assign(k, {});
  for (size_t i = 0; i < n; ++i) {
    index.lists[assign[i]].push_back(static_cast<uint32_t>(i));
  }
  return index;
}

std::vector<uint32_t> ProbeCentroids(const la::Matrix& centroids,
                                     const float* q, size_t nprobe) {
  const size_t k = centroids.rows();
  const size_t d = centroids.cols();
  std::vector<std::pair<float, uint32_t>> scored;
  scored.reserve(k);
  for (size_t c = 0; c < k; ++c) {
    const float* row = centroids.row(c);
    float dot = 0.0f;
    for (size_t i = 0; i < d; ++i) dot += q[i] * row[i];
    scored.emplace_back(dot, static_cast<uint32_t>(c));
  }
  const size_t want = std::min(nprobe, k);
  auto better = [](const std::pair<float, uint32_t>& a,
                   const std::pair<float, uint32_t>& b) {
    return a.first > b.first ||
           (a.first == b.first && a.second < b.second);
  };
  std::partial_sort(scored.begin(), scored.begin() + want, scored.end(),
                    better);
  std::vector<uint32_t> probes;
  probes.reserve(want);
  for (size_t i = 0; i < want; ++i) probes.push_back(scored[i].second);
  return probes;
}

}  // namespace ceaff::ann
