// Microbenchmarks of the feature-generation substrates: Levenshtein
// (unit-cost vs lev*), string/semantic similarity matrices, one GCN
// training epoch, and the adaptive fusion stage itself.

#include <benchmark/benchmark.h>

#include "ceaff/common/random.h"
#include "ceaff/data/synthetic.h"
#include "ceaff/embed/gcn.h"
#include "ceaff/fusion/adaptive_fusion.h"
#include "ceaff/kg/adjacency.h"
#include "ceaff/la/ops.h"
#include "ceaff/text/levenshtein.h"
#include "ceaff/text/ngram_similarity.h"
#include "ceaff/text/name_embedding.h"

namespace {

using namespace ceaff;

std::vector<std::string> RandomNames(size_t n, uint64_t seed) {
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    names.push_back(data::BaseToken(i, seed) + " " +
                    data::BaseToken(i * 31 + 7, seed));
  }
  return names;
}

void BM_LevenshteinUnit(benchmark::State& state) {
  std::string a = "collective entity alignment";
  std::string b = "adaptive feature fusion!";
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::LevenshteinDistance(a, b));
  }
}
BENCHMARK(BM_LevenshteinUnit);

void BM_LevenshteinRatioSub2(benchmark::State& state) {
  std::string a = "collective entity alignment";
  std::string b = "adaptive feature fusion!";
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::LevenshteinRatio(a, b));
  }
}
BENCHMARK(BM_LevenshteinRatioSub2);

void BM_StringSimilarityMatrix(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::string> src = RandomNames(n, 1);
  std::vector<std::string> dst = RandomNames(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::StringSimilarityMatrix(src, dst));
  }
}
BENCHMARK(BM_StringSimilarityMatrix)->Arg(100)->Arg(300);

void BM_NgramSimilarityMatrix(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::string> src = RandomNames(n, 1);
  std::vector<std::string> dst = RandomNames(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::NgramSimilarityMatrix(src, dst));
  }
}
BENCHMARK(BM_NgramSimilarityMatrix)->Arg(100)->Arg(300);

void BM_SemanticSimilarityMatrix(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  text::WordEmbeddingStore store(64, 3);
  std::vector<std::string> src = RandomNames(n, 1);
  std::vector<std::string> dst = RandomNames(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        text::SemanticSimilarityMatrix(store, src, dst));
  }
}
BENCHMARK(BM_SemanticSimilarityMatrix)->Arg(100)->Arg(300);

void BM_CosineSimilarity(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  la::Matrix a = la::Matrix::TruncatedNormal(n, 128, 1.0f, &rng);
  la::Matrix b = la::Matrix::TruncatedNormal(n, 128, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::CosineSimilarity(a, b));
  }
}
BENCHMARK(BM_CosineSimilarity)->Arg(250)->Arg(1000);

void BM_GcnTrainEpoch(benchmark::State& state) {
  auto cfg = data::BenchmarkConfigByName("DBP15K_FR_EN", 0.25).value();
  auto bench = data::GenerateBenchmark(cfg).value();
  embed::GcnOptions opt;
  opt.dim = 128;
  opt.epochs = 1;
  embed::GcnAligner gcn(kg::BuildAdjacency(bench.pair.kg1),
                        kg::BuildAdjacency(bench.pair.kg2), opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcn.Train(bench.pair.seed_alignment));
  }
}
BENCHMARK(BM_GcnTrainEpoch);

void BM_AdaptiveFuse(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(11);
  la::Matrix a(n, n), b(n, n), c(n, n);
  for (la::Matrix* m : {&a, &b, &c}) {
    for (size_t i = 0; i < m->size(); ++i) m->data()[i] = rng.NextFloat();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fusion::AdaptiveFuse({&a, &b, &c}));
  }
}
BENCHMARK(BM_AdaptiveFuse)->Arg(250)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
