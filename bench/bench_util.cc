#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "ceaff/common/timer.h"

namespace ceaff::bench {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? static_cast<size_t>(std::atoll(v)) : fallback;
}

}  // namespace

double DatasetScale() { return EnvDouble("CEAFF_SCALE", 0.25); }

embed::GcnOptions BenchGcnOptions() {
  embed::GcnOptions o;
  o.dim = EnvSize("CEAFF_GCN_DIM", 128);
  o.epochs = EnvSize("CEAFF_GCN_EPOCHS", 200);
  o.learning_rate = 1.0f;
  return o;
}

core::CeaffOptions BenchCeaffOptions() {
  core::CeaffOptions o;
  o.gcn = BenchGcnOptions();
  return o;
}

const data::SyntheticBenchmark& GetBenchmark(const std::string& name) {
  static std::map<std::string, std::unique_ptr<data::SyntheticBenchmark>>*
      cache = new std::map<std::string,
                           std::unique_ptr<data::SyntheticBenchmark>>();
  auto it = cache->find(name);
  if (it == cache->end()) {
    auto cfg = data::BenchmarkConfigByName(name, DatasetScale());
    CEAFF_CHECK(cfg.ok()) << cfg.status();
    auto bench = data::GenerateBenchmark(cfg.value());
    CEAFF_CHECK(bench.ok()) << bench.status();
    it = cache
             ->emplace(name, std::make_unique<data::SyntheticBenchmark>(
                                 std::move(bench).value()))
             .first;
  }
  return *it->second;
}

StatusOr<Measured> RunMethod(const std::string& method,
                             const data::SyntheticBenchmark& bench) {
  WallTimer timer;
  Measured out;

  auto from_baseline = [&](baselines::Baseline* b) -> Status {
    CEAFF_ASSIGN_OR_RETURN(baselines::BaselineResult r, b->Run(bench.pair));
    out.accuracy = r.accuracy;
    out.hits_at_10 = r.ranking.hits_at_10;
    out.mrr = r.ranking.mrr;
    return Status::OK();
  };
  auto from_ceaff = [&](core::CeaffOptions options) -> Status {
    core::CeaffPipeline pipe(&bench.pair, &bench.store, options);
    CEAFF_ASSIGN_OR_RETURN(core::CeaffResult r, pipe.Run());
    out.accuracy = r.accuracy;
    out.hits_at_10 = r.ranking.hits_at_10;
    out.mrr = r.ranking.mrr;
    return Status::OK();
  };

  embed::TranseOptions transe;
  transe.dim = 64;
  transe.epochs = 80;

  if (method == "MTransE") {
    baselines::MTransE b(transe);
    CEAFF_RETURN_IF_ERROR(from_baseline(&b));
  } else if (method == "TransE-shared") {
    baselines::TransEShared b(transe);
    CEAFF_RETURN_IF_ERROR(from_baseline(&b));
  } else if (method == "IPTransE") {
    baselines::IPTransE::Options o;
    o.transe = transe;
    baselines::IPTransE b(o);
    CEAFF_RETURN_IF_ERROR(from_baseline(&b));
  } else if (method == "GCN-Align") {
    baselines::GcnAlignStructural b(BenchGcnOptions());
    CEAFF_RETURN_IF_ERROR(from_baseline(&b));
  } else if (method == "BootEA-lite") {
    baselines::BootEALite::Options o;
    o.gcn = BenchGcnOptions();
    baselines::BootEALite b(o);
    CEAFF_RETURN_IF_ERROR(from_baseline(&b));
  } else if (method == "NAEA-lite") {
    baselines::NaeaLite::Options o;
    o.gcn = BenchGcnOptions();
    baselines::NaeaLite b(o);
    CEAFF_RETURN_IF_ERROR(from_baseline(&b));
  } else if (method == "RWalk-align") {
    baselines::RandomWalkAlign::Options o;
    o.walk.dim = 64;
    baselines::RandomWalkAlign b(o);
    CEAFF_RETURN_IF_ERROR(from_baseline(&b));
  } else if (method == "JAPE-lite") {
    baselines::JapeLite::Options o;
    o.gcn = BenchGcnOptions();
    baselines::JapeLite b(o);
    CEAFF_RETURN_IF_ERROR(from_baseline(&b));
  } else if (method == "CEAFF") {
    CEAFF_RETURN_IF_ERROR(from_ceaff(BenchCeaffOptions()));
  } else if (method == "CEAFF w/o C") {
    core::CeaffOptions o = BenchCeaffOptions();
    o.decision_mode = core::DecisionMode::kIndependent;
    CEAFF_RETURN_IF_ERROR(from_ceaff(o));
  } else if (method == "CEAFF w/o Ml") {
    core::CeaffOptions o = BenchCeaffOptions();
    o.use_string = false;
    CEAFF_RETURN_IF_ERROR(from_ceaff(o));
  } else {
    return Status::NotFound("unknown method: " + method);
  }
  out.seconds = timer.ElapsedSeconds();
  return out;
}

std::optional<double> PaperAccuracy(const std::string& method,
                                    const std::string& dataset) {
  // Accuracy (Hits@1) numbers transcribed from Tables III and IV of the
  // paper. Methods the paper does not report on a dataset are absent.
  static const std::map<std::string, std::map<std::string, double>>* kTable =
      new std::map<std::string, std::map<std::string, double>>{
          {"MTransE",
           {{"DBP15K_ZH_EN", 0.308}, {"DBP15K_JA_EN", 0.279},
            {"DBP15K_FR_EN", 0.244}, {"SRPRS_EN_FR", 0.251},
            {"SRPRS_EN_DE", 0.312}, {"DBP100K_DBP_WD", 0.281},
            {"DBP100K_DBP_YG", 0.252}, {"SRPRS_DBP_WD", 0.223},
            {"SRPRS_DBP_YG", 0.246}}},
          {"IPTransE",
           {{"DBP15K_ZH_EN", 0.406}, {"DBP15K_JA_EN", 0.367},
            {"DBP15K_FR_EN", 0.333}, {"SRPRS_EN_FR", 0.255},
            {"SRPRS_EN_DE", 0.313}, {"DBP100K_DBP_WD", 0.349},
            {"DBP100K_DBP_YG", 0.297}, {"SRPRS_DBP_WD", 0.231},
            {"SRPRS_DBP_YG", 0.227}}},
          {"BootEA",
           {{"DBP15K_ZH_EN", 0.629}, {"DBP15K_JA_EN", 0.622},
            {"DBP15K_FR_EN", 0.653}, {"SRPRS_EN_FR", 0.313},
            {"SRPRS_EN_DE", 0.442}, {"DBP100K_DBP_WD", 0.748},
            {"DBP100K_DBP_YG", 0.761}, {"SRPRS_DBP_WD", 0.323},
            {"SRPRS_DBP_YG", 0.313}}},
          {"RSNs",
           {{"DBP15K_ZH_EN", 0.581}, {"DBP15K_JA_EN", 0.563},
            {"DBP15K_FR_EN", 0.607}, {"SRPRS_EN_FR", 0.348},
            {"SRPRS_EN_DE", 0.497}, {"DBP100K_DBP_WD", 0.656},
            {"DBP100K_DBP_YG", 0.711}, {"SRPRS_DBP_WD", 0.399},
            {"SRPRS_DBP_YG", 0.402}}},
          {"MuGNN",
           {{"DBP15K_ZH_EN", 0.494}, {"DBP15K_JA_EN", 0.501},
            {"DBP15K_FR_EN", 0.495}, {"SRPRS_EN_FR", 0.139},
            {"SRPRS_EN_DE", 0.255}, {"DBP100K_DBP_WD", 0.616},
            {"DBP100K_DBP_YG", 0.741}, {"SRPRS_DBP_WD", 0.151},
            {"SRPRS_DBP_YG", 0.175}}},
          {"NAEA",
           {{"DBP15K_ZH_EN", 0.650}, {"DBP15K_JA_EN", 0.641},
            {"DBP15K_FR_EN", 0.673}, {"SRPRS_EN_FR", 0.195},
            {"SRPRS_EN_DE", 0.321}, {"DBP100K_DBP_WD", 0.767},
            {"DBP100K_DBP_YG", 0.779}, {"SRPRS_DBP_WD", 0.215},
            {"SRPRS_DBP_YG", 0.211}}},
          {"GCN-Align",
           {{"DBP15K_ZH_EN", 0.413}, {"DBP15K_JA_EN", 0.399},
            {"DBP15K_FR_EN", 0.373}, {"SRPRS_EN_FR", 0.155},
            {"SRPRS_EN_DE", 0.253}, {"DBP100K_DBP_WD", 0.477},
            {"DBP100K_DBP_YG", 0.601}, {"SRPRS_DBP_WD", 0.177},
            {"SRPRS_DBP_YG", 0.193}}},
          {"JAPE",
           {{"DBP15K_ZH_EN", 0.412}, {"DBP15K_JA_EN", 0.363},
            {"DBP15K_FR_EN", 0.324}, {"SRPRS_EN_FR", 0.256},
            {"SRPRS_EN_DE", 0.320}, {"DBP100K_DBP_WD", 0.318},
            {"DBP100K_DBP_YG", 0.236}, {"SRPRS_DBP_WD", 0.219},
            {"SRPRS_DBP_YG", 0.233}}},
          {"RDGCN",
           {{"DBP15K_ZH_EN", 0.708}, {"DBP15K_JA_EN", 0.767},
            {"DBP15K_FR_EN", 0.886}, {"SRPRS_EN_FR", 0.514},
            {"SRPRS_EN_DE", 0.613}, {"DBP100K_DBP_WD", 0.902},
            {"DBP100K_DBP_YG", 0.864}, {"SRPRS_DBP_WD", 0.834},
            {"SRPRS_DBP_YG", 0.852}}},
          {"GM-Align",
           {{"DBP15K_ZH_EN", 0.679}, {"DBP15K_JA_EN", 0.740},
            {"DBP15K_FR_EN", 0.894}, {"SRPRS_EN_FR", 0.627},
            {"SRPRS_EN_DE", 0.677}, {"SRPRS_DBP_WD", 0.815},
            {"SRPRS_DBP_YG", 0.828}}},
          {"MultiKE",
           {{"DBP100K_DBP_WD", 0.915}, {"DBP100K_DBP_YG", 0.880}}},
          {"CEAFF w/o Ml",
           {{"DBP100K_DBP_WD", 0.992}, {"DBP100K_DBP_YG", 0.955},
            {"SRPRS_DBP_WD", 0.915}, {"SRPRS_DBP_YG", 0.937}}},
          {"CEAFF",
           {{"DBP15K_ZH_EN", 0.795}, {"DBP15K_JA_EN", 0.860},
            {"DBP15K_FR_EN", 0.964}, {"SRPRS_EN_FR", 0.964},
            {"SRPRS_EN_DE", 0.977}, {"DBP100K_DBP_WD", 1.000},
            {"DBP100K_DBP_YG", 1.000}, {"SRPRS_DBP_WD", 1.000},
            {"SRPRS_DBP_YG", 1.000}}},
      };
  auto mit = kTable->find(method);
  if (mit == kTable->end()) return std::nullopt;
  auto dit = mit->second.find(dataset);
  if (dit == mit->second.end()) return std::nullopt;
  return dit->second;
}

void PrintRow(const std::string& name,
              const std::vector<std::optional<double>>& cells,
              int name_width) {
  std::printf("%-*s", name_width, name.c_str());
  for (const std::optional<double>& c : cells) {
    if (c.has_value()) {
      std::printf("  %6.3f", *c);
    } else {
      std::printf("  %6s", "-");
    }
  }
  std::printf("\n");
}

void PrintHeader(const std::string& title,
                 const std::vector<std::string>& columns, int name_width) {
  std::printf("%s\n", title.c_str());
  std::printf("%-*s", name_width, "");
  for (const std::string& c : columns) std::printf("  %6s", c.c_str());
  std::printf("\n");
  int total = name_width + static_cast<int>(columns.size()) * 8;
  for (int i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
}

}  // namespace ceaff::bench
