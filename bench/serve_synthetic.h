// Shared synthetic-index construction for the serving benchmarks
// (serve_throughput, overload_soak). Header-only: both benches are single
// translation units and the helpers are small.
#ifndef CEAFF_BENCH_SERVE_SYNTHETIC_H_
#define CEAFF_BENCH_SERVE_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <utility>

#include "ceaff/common/logging.h"
#include "ceaff/common/random.h"
#include "ceaff/la/matrix.h"
#include "ceaff/serve/alignment_index.h"
#include "ceaff/text/name_embedding.h"
#include "ceaff/text/word_embedding.h"

namespace ceaff::bench {

/// Synthetic entity name: two or three space-separated words drawn from a
/// 256-word vocabulary (two syllables each) plus the id as a final token,
/// deterministic per id. Multi-word names matter: EmbedName averages
/// per-word vectors, so a shared vocabulary gives the corpus real
/// semantic cluster structure (names sharing words embed near each other)
/// the way real entity names do — a single concatenated token per name
/// would hash-fall-back to one random vector each and make the semantic
/// space unclusterable noise.
inline std::string SyntheticName(uint64_t id) {
  static const char* kSyllables[] = {"al", "be", "cor", "da", "el", "fi",
                                     "ga", "ho", "in", "ju", "ka", "lu",
                                     "ma", "no", "or", "pa"};
  std::string name;
  uint64_t x = Rng::SplitMix64(id + 1);
  const size_t words = 2 + (x & 1);
  for (size_t w = 0; w < words; ++w) {
    if (w > 0) name += ' ';
    name += kSyllables[(x >> (8 * w + 1)) & 15];
    name += kSyllables[(x >> (8 * w + 5)) & 15];
  }
  name += ' ';
  name += std::to_string(id);
  return name;
}

/// A fully-populated index of `n_entities` source/target entities with an
/// exact i<->i committed pair per entity — so every tier of the serving
/// path, including pair-lookup-only, has something to answer with. Name
/// embeddings come from the same EmbedNames + hash-fallback store the real
/// export stage uses (seeded with the index's semantic_seed), which gives
/// the corpus genuine token-level cluster structure — queries that share
/// syllables with a target actually score high semantically. Structural
/// embeddings model what a GCN run over a community-structured graph
/// produces: each entity draws a latent vector near one of a few dozen
/// community centres, and the source/target rows are two noisy views of
/// that shared latent — so aligned pairs score high structurally and the
/// corpus has real cluster geometry. Both properties make ANN recall
/// measured on this index meaningful; i.i.d. Gaussian rows would make the
/// structural channel unclusterable noise no coarse index can probe.
inline serve::AlignmentIndex BuildSyntheticIndex(
    size_t n_entities, const std::string& dataset = "synthetic-serve-bench") {
  const size_t dim_sem = 300;
  const size_t dim_struct = 200;
  const size_t n_communities = 64;
  Rng rng(2020);

  serve::AlignmentIndexInput input;
  input.dataset = dataset;
  input.weights = {0.3, 0.4, 0.3};
  input.semantic_seed = 17;
  input.source_names.reserve(n_entities);
  input.target_names.reserve(n_entities);
  for (size_t i = 0; i < n_entities; ++i) {
    input.source_names.push_back(SyntheticName(i));
    input.target_names.push_back(SyntheticName(i) + "_t");
    input.pairs.push_back(
        {static_cast<uint32_t>(i), static_cast<uint32_t>(i), 1.0f});
  }
  const text::WordEmbeddingStore store(dim_sem, input.semantic_seed);
  input.source_name_emb = text::EmbedNames(store, input.source_names);
  input.target_name_emb = text::EmbedNames(store, input.target_names);
  input.source_name_emb.L2NormalizeRows();
  input.target_name_emb.L2NormalizeRows();

  la::Matrix centres(n_communities, dim_struct);
  for (size_t c = 0; c < n_communities; ++c) {
    float* row = centres.row(c);
    for (size_t d = 0; d < dim_struct; ++d) {
      row[d] = static_cast<float>(rng.NextGaussian());
    }
  }
  la::Matrix src_struct(n_entities, dim_struct);
  la::Matrix tgt_struct(n_entities, dim_struct);
  for (size_t i = 0; i < n_entities; ++i) {
    const float* centre = centres.row(i % n_communities);
    float* src = src_struct.row(i);
    float* tgt = tgt_struct.row(i);
    for (size_t d = 0; d < dim_struct; ++d) {
      // Shared per-entity latent, then independent per-side observation
      // noise: within-community spread 0.4, cross-KG divergence 0.2.
      const float latent =
          centre[d] + 0.4f * static_cast<float>(rng.NextGaussian());
      src[d] = latent + 0.2f * static_cast<float>(rng.NextGaussian());
      tgt[d] = latent + 0.2f * static_cast<float>(rng.NextGaussian());
    }
  }
  src_struct.L2NormalizeRows();
  tgt_struct.L2NormalizeRows();
  input.source_struct_emb = std::move(src_struct);
  input.target_struct_emb = std::move(tgt_struct);

  auto index = serve::BuildAlignmentIndex(std::move(input));
  CEAFF_CHECK(index.ok()) << index.status().ToString();
  return std::move(index).value();
}

}  // namespace ceaff::bench

#endif  // CEAFF_BENCH_SERVE_SYNTHETIC_H_
