// Shared synthetic-index construction for the serving benchmarks
// (serve_throughput, overload_soak). Header-only: both benches are single
// translation units and the helpers are small.
#ifndef CEAFF_BENCH_SERVE_SYNTHETIC_H_
#define CEAFF_BENCH_SERVE_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <utility>

#include "ceaff/common/logging.h"
#include "ceaff/common/random.h"
#include "ceaff/la/matrix.h"
#include "ceaff/serve/alignment_index.h"

namespace ceaff::bench {

/// Synthetic entity name: pronounceable-ish, deterministic per id.
inline std::string SyntheticName(uint64_t id) {
  static const char* kSyllables[] = {"al", "be", "cor", "da", "el", "fi",
                                     "ga", "ho", "in", "ju", "ka", "lu",
                                     "ma", "no", "or", "pa"};
  std::string name;
  uint64_t x = Rng::SplitMix64(id + 1);
  const size_t syllables = 2 + (x & 3);
  for (size_t s = 0; s < syllables; ++s) {
    name += kSyllables[(x >> (4 * s + 2)) & 15];
  }
  name += '_';
  name += std::to_string(id);
  return name;
}

/// A fully-populated index of `n_entities` source/target entities with
/// random (L2-normalised) semantic and structural embeddings and an exact
/// i<->i committed pair per entity — so every tier of the serving path,
/// including pair-lookup-only, has something to answer with.
inline serve::AlignmentIndex BuildSyntheticIndex(
    size_t n_entities, const std::string& dataset = "synthetic-serve-bench") {
  const size_t dim_sem = 32;
  const size_t dim_struct = 16;
  Rng rng(2020);

  serve::AlignmentIndexInput input;
  input.dataset = dataset;
  input.weights = {0.3, 0.4, 0.3};
  input.semantic_seed = 17;
  input.source_names.reserve(n_entities);
  input.target_names.reserve(n_entities);
  for (size_t i = 0; i < n_entities; ++i) {
    input.source_names.push_back(SyntheticName(i));
    input.target_names.push_back(SyntheticName(i) + "_t");
    input.pairs.push_back(
        {static_cast<uint32_t>(i), static_cast<uint32_t>(i), 1.0f});
  }
  auto random_rows = [&rng](size_t rows, size_t cols) {
    la::Matrix m(rows, cols);
    for (size_t r = 0; r < rows; ++r) {
      float* row = m.row(r);
      for (size_t c = 0; c < cols; ++c) {
        row[c] = static_cast<float>(rng.NextGaussian());
      }
    }
    m.L2NormalizeRows();
    return m;
  };
  input.source_name_emb = random_rows(n_entities, dim_sem);
  input.target_name_emb = random_rows(n_entities, dim_sem);
  input.source_struct_emb = random_rows(n_entities, dim_struct);
  input.target_struct_emb = random_rows(n_entities, dim_struct);

  auto index = serve::BuildAlignmentIndex(std::move(input));
  CEAFF_CHECK(index.ok()) << index.status().ToString();
  return std::move(index).value();
}

}  // namespace ceaff::bench

#endif  // CEAFF_BENCH_SERVE_SYNTHETIC_H_
