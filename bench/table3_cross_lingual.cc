// Reproduces Table III: accuracy of cross-lingual EA on the five
// cross-lingual KG pairs. Columns alternate measured (this implementation,
// synthetic data) and paper-reported values; methods we do not reimplement
// (RSNs, MuGNN, NAEA, JAPE, RDGCN, GM-Align) appear with their paper
// numbers only, clearly marked.

#include <cstdio>

#include "bench_util.h"

using namespace ceaff;
using bench::PaperAccuracy;

int main() {
  const std::vector<std::string> datasets = {
      "DBP15K_ZH_EN", "DBP15K_JA_EN", "DBP15K_FR_EN", "SRPRS_EN_FR",
      "SRPRS_EN_DE"};
  const std::vector<std::string> columns = {"ZH-EN", "JA-EN", "FR-EN",
                                            "EN-FR", "EN-DE"};

  std::printf("Table III — accuracy of cross-lingual EA "
              "(synthetic benchmarks, scale %.2f)\n\n",
              bench::DatasetScale());

  // Group 1: structure-only methods (measured where implemented).
  const std::vector<std::string> measured_methods = {
      "MTransE", "IPTransE", "TransE-shared", "RWalk-align", "GCN-Align",
      "BootEA-lite", "NAEA-lite", "JAPE-lite",
      "CEAFF w/o C", "CEAFF"};
  bench::PrintHeader("measured (this reproduction):", columns);
  for (const std::string& m : measured_methods) {
    std::vector<std::optional<double>> cells;
    for (const std::string& d : datasets) {
      auto r = bench::RunMethod(m, bench::GetBenchmark(d));
      cells.push_back(r.ok() ? std::optional<double>(r->accuracy)
                             : std::nullopt);
    }
    bench::PrintRow(m, cells);
  }

  std::printf("\n");
  const std::vector<std::string> paper_methods = {
      "MTransE", "IPTransE", "BootEA", "RSNs",     "MuGNN",  "NAEA",
      "GCN-Align", "JAPE",   "RDGCN",  "GM-Align", "CEAFF"};
  bench::PrintHeader("paper-reported (Zeng et al., Table III):", columns);
  for (const std::string& m : paper_methods) {
    std::vector<std::optional<double>> cells;
    for (const std::string& d : datasets) cells.push_back(PaperAccuracy(m, d));
    bench::PrintRow(m, cells);
  }

  std::printf(
      "\nShape checks (paper claims that must replicate):\n"
      " * CEAFF is the best measured method on every dataset.\n"
      " * CEAFF >= CEAFF w/o C (collective decisions never hurt).\n"
      " * Text-aware methods do much better on FR-EN/EN-FR/EN-DE than on\n"
      "   ZH-EN/JA-EN (language barrier), unlike structure-only methods.\n"
      " * Structure-only methods drop sharply from DBP15K-like (dense) to\n"
      "   SRPRS-like (sparse) pairs.\n");
  return 0;
}
