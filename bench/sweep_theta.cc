// Sec. VII-E sensitivity sweep: the θ1/θ2 score-clamp of the adaptive
// fusion, plus the two-stage vs flat three-way fusion design choice called
// out in DESIGN.md. Features are generated once per dataset.

#include <cstdio>

#include "bench_util.h"
#include "ceaff/matching/matching.h"

#include <numeric>

using namespace ceaff;

namespace {

double FlatThreeWayAccuracy(const core::CeaffFeatures& f,
                            const fusion::FusionOptions& fopt) {
  // Flat alternative: fuse {Ms, Mn, Ml} in a single adaptive stage.
  auto fused = fusion::AdaptiveFuse(
      {&f.structural, &f.semantic, &f.string_sim}, fopt);
  CEAFF_CHECK(fused.ok()) << fused.status();
  matching::MatchResult match = matching::DeferredAcceptance(fused.value());
  std::vector<int64_t> gold(fused->rows());
  std::iota(gold.begin(), gold.end(), int64_t{0});
  return eval::Accuracy(match, gold);
}

}  // namespace

int main() {
  const std::vector<std::string> datasets = {
      "DBP15K_ZH_EN", "DBP15K_FR_EN", "SRPRS_EN_FR", "SRPRS_DBP_YG"};
  const std::vector<std::string> columns = {"ZH-EN", "FR-EN", "EN-FR",
                                            "SR-YG"};

  std::printf("Theta sweep — sensitivity of the adaptive-fusion score clamp "
              "(scale %.2f)\n\n", bench::DatasetScale());

  std::vector<core::CeaffFeatures> features;
  for (const std::string& d : datasets) {
    const data::SyntheticBenchmark& b = bench::GetBenchmark(d);
    core::CeaffPipeline pipe(&b.pair, &b.store, bench::BenchCeaffOptions());
    auto f = pipe.GenerateFeatures();
    CEAFF_CHECK(f.ok()) << f.status();
    features.push_back(std::move(f).value());
  }

  bench::PrintHeader("theta1 sweep (theta2 = 0.1):", columns);
  for (double theta1 : {0.90, 0.95, 0.98, 0.995}) {
    std::vector<std::optional<double>> cells;
    for (size_t d = 0; d < datasets.size(); ++d) {
      core::CeaffOptions o = bench::BenchCeaffOptions();
      o.fusion.theta1 = theta1;
      const data::SyntheticBenchmark& b = bench::GetBenchmark(datasets[d]);
      core::CeaffPipeline pipe(&b.pair, &b.store, o);
      cells.push_back(pipe.RunOnFeatures(features[d]).value().accuracy);
    }
    char label[32];
    std::snprintf(label, sizeof(label), "theta1 = %.3f", theta1);
    bench::PrintRow(label, cells);
  }

  std::printf("\n");
  bench::PrintHeader("theta2 sweep (theta1 = 0.98):", columns);
  for (double theta2 : {0.05, 0.1, 0.3, 0.6}) {
    std::vector<std::optional<double>> cells;
    for (size_t d = 0; d < datasets.size(); ++d) {
      core::CeaffOptions o = bench::BenchCeaffOptions();
      o.fusion.theta2 = theta2;
      const data::SyntheticBenchmark& b = bench::GetBenchmark(datasets[d]);
      core::CeaffPipeline pipe(&b.pair, &b.store, o);
      cells.push_back(pipe.RunOnFeatures(features[d]).value().accuracy);
    }
    char label[32];
    std::snprintf(label, sizeof(label), "theta2 = %.2f", theta2);
    bench::PrintRow(label, cells);
  }

  std::printf("\n");
  bench::PrintHeader("clamp off (Table V row \"w/o theta1, theta2\"):",
                     columns);
  {
    std::vector<std::optional<double>> cells;
    for (size_t d = 0; d < datasets.size(); ++d) {
      core::CeaffOptions o = bench::BenchCeaffOptions();
      o.fusion.use_score_clamp = false;
      const data::SyntheticBenchmark& b = bench::GetBenchmark(datasets[d]);
      core::CeaffPipeline pipe(&b.pair, &b.store, o);
      cells.push_back(pipe.RunOnFeatures(features[d]).value().accuracy);
    }
    bench::PrintRow("no clamp", cells);
  }

  std::printf("\n");
  bench::PrintHeader("fusion topology ablation (DESIGN.md):", columns);
  {
    std::vector<std::optional<double>> two_stage, flat;
    for (size_t d = 0; d < datasets.size(); ++d) {
      const data::SyntheticBenchmark& b = bench::GetBenchmark(datasets[d]);
      core::CeaffPipeline pipe(&b.pair, &b.store, bench::BenchCeaffOptions());
      two_stage.push_back(pipe.RunOnFeatures(features[d]).value().accuracy);
      flat.push_back(FlatThreeWayAccuracy(features[d], {}));
    }
    bench::PrintRow("two-stage (paper)", two_stage);
    bench::PrintRow("flat 3-way", flat);
  }

  std::printf("\nThe paper's claims: results are robust around the default\n"
              "theta1 = 0.98 / theta2 = 0.1; removing the clamp loses a\n"
              "little accuracy everywhere; the two-stage topology is at\n"
              "least as good as flat three-way fusion.\n");
  return 0;
}
