// Extension experiment for the paper's Sec. II/V argument: outcome-level
// fusion (similarity matrices combined after per-feature scoring) beats
// representation-level fusion (one unified embedding per entity). The
// RepFusion baseline concatenates the L2-normalised structural and name
// view embeddings (MultiKE/GM-Align style); the outcome-level rows fuse
// the same two signals as matrices. All rows use independent decisions so
// the comparison isolates the fusion level.

#include <cstdio>
#include <numeric>

#include "bench_util.h"
#include "ceaff/matching/matching.h"

using namespace ceaff;

namespace {

double OutcomeLevelAccuracy(const data::SyntheticBenchmark& b,
                            core::FusionMode mode) {
  core::CeaffOptions o = bench::BenchCeaffOptions();
  o.use_string = false;  // same two views as RepFusion: structure + name
  o.fusion_mode = mode;
  o.decision_mode = core::DecisionMode::kIndependent;
  core::CeaffPipeline pipe(&b.pair, &b.store, o);
  auto r = pipe.Run();
  CEAFF_CHECK(r.ok()) << r.status();
  return r->accuracy;
}

}  // namespace

int main() {
  const std::vector<std::string> datasets = {
      "DBP15K_ZH_EN", "DBP15K_JA_EN", "DBP15K_FR_EN", "SRPRS_EN_FR"};
  const std::vector<std::string> columns = {"ZH-EN", "JA-EN", "FR-EN",
                                            "EN-FR"};

  std::printf("Extension — representation-level vs outcome-level fusion "
              "(scale %.2f)\n", bench::DatasetScale());
  std::printf("(two views everywhere: GCN structure + name semantics; "
              "independent decisions)\n\n");

  bench::PrintHeader("measured:", columns, 30);

  // Representation-level variants: additive unified space (lossy) and
  // concatenation (provably equal to fixed outcome-level fusion).
  for (auto mode : {baselines::RepresentationFusionAlign::Options::Mode::kAdditive,
                    baselines::RepresentationFusionAlign::Options::Mode::kConcat}) {
    std::vector<std::optional<double>> cells;
    for (const std::string& d : datasets) {
      const data::SyntheticBenchmark& b = bench::GetBenchmark(d);
      baselines::RepresentationFusionAlign::Options o;
      o.gcn = bench::BenchGcnOptions();
      o.mode = mode;
      baselines::RepresentationFusionAlign rep(o, &b.store);
      auto r = rep.Run(b.pair);
      cells.push_back(r.ok() ? std::optional<double>(r->accuracy)
                             : std::nullopt);
    }
    bool additive =
        mode == baselines::RepresentationFusionAlign::Options::Mode::kAdditive;
    bench::PrintRow(additive ? "rep-level, additive space"
                             : "rep-level, concatenated", cells, 30);
  }

  // Outcome-level with fixed and adaptive weights.
  {
    std::vector<std::optional<double>> fixed, adaptive;
    for (const std::string& d : datasets) {
      const data::SyntheticBenchmark& b = bench::GetBenchmark(d);
      fixed.push_back(OutcomeLevelAccuracy(b, core::FusionMode::kFixed));
      adaptive.push_back(
          OutcomeLevelAccuracy(b, core::FusionMode::kAdaptive));
    }
    bench::PrintRow("outcome-level, fixed weights", fixed, 30);
    bench::PrintRow("outcome-level, adaptive (CEAFF)", adaptive, 30);
  }

  std::printf(
      "\nPaper claim (Sec. II): 'directly unifying feature representations\n"
      "inevitably causes the loss of feature-specific characteristics' —\n"
      "the outcome-level rows should dominate the representation-level row\n"
      "on every dataset, with adaptive weighting adding a further margin.\n");
  return 0;
}
