// Reproduces Table VI: evaluation as a ranking problem on the DBP15K-like
// cross-lingual pairs — Hits@1, Hits@10 and MRR. CEAFF's collective output
// is a matching, not a ranking, so (exactly as in the paper) its row
// reports accuracy as Hits@1 and leaves Hits@10/MRR blank, while
// "CEAFF w/o C" provides the ranked view.

#include <cstdio>

#include "bench_util.h"

using namespace ceaff;

namespace {

struct PaperRanking {
  const char* method;
  // {h1, h10, mrr} per dataset {ZH-EN, JA-EN, FR-EN}; -1 = not reported.
  double v[9];
};

const PaperRanking kPaper[] = {
    {"MTransE", {30.8, 61.4, .364, 27.9, 57.5, .349, 24.4, 55.6, .335}},
    {"IPTransE", {40.6, 73.5, .516, 36.7, 69.3, .474, 33.3, 68.6, .451}},
    {"BootEA", {62.9, 84.8, .703, 62.2, 85.4, .701, 65.3, 87.4, .731}},
    {"RSNs", {58.1, 81.2, .662, 56.3, 79.8, .647, 60.7, 84.5, .691}},
    {"MuGNN", {49.4, 84.4, .611, 50.1, 85.7, .621, 49.5, 87.0, .621}},
    {"NAEA", {65.0, 86.7, .720, 64.1, 87.3, .718, 67.3, 89.4, .752}},
    {"GCN-Align", {41.3, 74.4, .549, 39.9, 74.5, .546, 37.3, 74.5, .532}},
    {"JAPE", {41.2, 74.5, .490, 36.3, 68.5, .476, 32.4, 66.7, .430}},
    {"RDGCN", {70.8, 84.6, .746, 76.7, 89.5, .812, 88.6, 95.7, .911}},
    {"GM-Align", {67.9, 78.5, -1, 74.0, 87.2, -1, 89.4, 95.2, -1}},
    {"CEAFF w/o C", {71.9, 87.4, .774, 78.3, 90.7, .827, 92.8, 97.9, .947}},
    {"CEAFF", {79.5, -1, -1, 86.0, -1, -1, 96.4, -1, -1}},
};

void PrintRankingRow(const char* name, const double* v) {
  std::printf("%-16s", name);
  for (int d = 0; d < 3; ++d) {
    for (int k = 0; k < 3; ++k) {
      double x = v[d * 3 + k];
      if (x < 0) {
        std::printf("  %6s", "-");
      } else if (k == 2) {
        std::printf("  %6.3f", x);  // MRR
      } else {
        std::printf("  %6.1f", x);  // Hits@k as percentage
      }
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const std::vector<std::string> datasets = {"DBP15K_ZH_EN", "DBP15K_JA_EN",
                                             "DBP15K_FR_EN"};
  std::printf("Table VI — evaluation as ranking problem on DBP15K-like "
              "pairs (scale %.2f)\n\n", bench::DatasetScale());
  std::printf("%-16s  %s\n", "",
              " ZH-EN: H@1   H@10    MRR   JA-EN: H@1  H@10    MRR  "
              " FR-EN: H@1  H@10    MRR");

  const std::vector<std::string> methods = {
      "MTransE", "IPTransE", "TransE-shared", "GCN-Align", "BootEA-lite",
      "CEAFF w/o C", "CEAFF"};
  std::printf("measured (this reproduction):\n");
  for (const std::string& m : methods) {
    double v[9];
    for (size_t d = 0; d < datasets.size(); ++d) {
      auto r = bench::RunMethod(m, bench::GetBenchmark(datasets[d]));
      CEAFF_CHECK(r.ok()) << r.status();
      v[d * 3 + 0] = r->accuracy * 100.0;
      if (m == "CEAFF") {
        // Collective output is a matching: no ranked list (paper leaves
        // these cells blank).
        v[d * 3 + 1] = -1;
        v[d * 3 + 2] = -1;
      } else {
        v[d * 3 + 1] = r->hits_at_10 * 100.0;
        v[d * 3 + 2] = r->mrr;
      }
    }
    PrintRankingRow(m.c_str(), v);
  }

  std::printf("\npaper-reported (Zeng et al., Table VI):\n");
  for (const PaperRanking& row : kPaper) PrintRankingRow(row.method, row.v);

  std::printf(
      "\nShape checks: CEAFF w/o C dominates the baselines on every metric;\n"
      "collective CEAFF adds further Hits@1 on top; Hits@10 >= Hits@1 and\n"
      "MRR lies between them for every measured method.\n");
  return 0;
}
