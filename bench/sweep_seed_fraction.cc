// Sensitivity sweep (extension): accuracy vs seed-alignment fraction. The
// paper fixes seeds at 30% of the gold standard; this bench regenerates a
// dataset at several fractions to show how CEAFF and the structural
// baseline degrade as supervision shrinks — CEAFF's text features make it
// far less seed-hungry, one of the practical advantages the Sec. VII
// analysis implies.

#include <cstdio>

#include "bench_util.h"

using namespace ceaff;

int main() {
  std::printf("Seed-fraction sweep on DBP15K_ZH_EN-like data "
              "(scale %.2f)\n\n", bench::DatasetScale());
  std::printf("%-10s  %10s  %14s  %12s\n", "seeds", "CEAFF",
              "CEAFF w/o C", "GCN-Align");

  for (double fraction : {0.05, 0.1, 0.2, 0.3, 0.5}) {
    auto cfg =
        data::BenchmarkConfigByName("DBP15K_ZH_EN", bench::DatasetScale());
    CEAFF_CHECK(cfg.ok()) << cfg.status();
    cfg->seed_fraction = fraction;
    auto bench_data = data::GenerateBenchmark(cfg.value());
    CEAFF_CHECK(bench_data.ok()) << bench_data.status();

    auto ceaff_r = bench::RunMethod("CEAFF", bench_data.value());
    auto indep_r = bench::RunMethod("CEAFF w/o C", bench_data.value());
    auto gcn_r = bench::RunMethod("GCN-Align", bench_data.value());
    CEAFF_CHECK(ceaff_r.ok() && indep_r.ok() && gcn_r.ok());
    std::printf("%-10.2f  %10.3f  %14.3f  %12.3f\n", fraction,
                ceaff_r->accuracy, indep_r->accuracy, gcn_r->accuracy);
  }

  std::printf("\nExpected shape: the structural baseline decays quickly as\n"
              "seeds shrink; CEAFF stays usable even at 5%% seeds because\n"
              "its semantic/string features need no supervision, and the\n"
              "collective stage keeps correcting conflicts.\n");
  return 0;
}
