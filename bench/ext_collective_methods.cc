// Extension experiment for the paper's future work ("explore other
// collective matching methods"): five decision procedures on the same
// fused similarity matrices — independent argmax, source-proposing DAA
// (CEAFF), target-proposing DAA, Hungarian max-weight, Sinkhorn transport.
// Also reports blocking pairs and total matched weight so quality is
// visible beyond accuracy.

#include <cstdio>
#include <numeric>

#include "bench_util.h"
#include "ceaff/matching/matching.h"
#include "ceaff/matching/sinkhorn.h"

using namespace ceaff;

int main() {
  const std::vector<std::string> datasets = {"DBP15K_ZH_EN", "DBP15K_JA_EN",
                                             "SRPRS_EN_FR"};
  std::printf("Collective decision methods on CEAFF's fused matrices "
              "(scale %.2f)\n\n", bench::DatasetScale());

  for (const std::string& d : datasets) {
    const data::SyntheticBenchmark& b = bench::GetBenchmark(d);
    core::CeaffPipeline pipe(&b.pair, &b.store, bench::BenchCeaffOptions());
    auto features = pipe.GenerateFeatures();
    CEAFF_CHECK(features.ok()) << features.status();
    auto fused_result = pipe.RunOnFeatures(features.value());
    CEAFF_CHECK(fused_result.ok()) << fused_result.status();
    const la::Matrix& fused = fused_result->fused;

    std::vector<int64_t> gold(fused.rows());
    std::iota(gold.begin(), gold.end(), int64_t{0});

    struct Row {
      const char* name;
      matching::MatchResult match;
    };
    std::vector<Row> rows;
    rows.push_back({"independent argmax", matching::GreedyIndependent(fused)});
    rows.push_back({"DAA source-proposing", matching::DeferredAcceptance(fused)});
    rows.push_back({"DAA target-proposing",
                    matching::DeferredAcceptanceTargetProposing(fused)});
    rows.push_back({"greedy one-to-one", matching::GreedyOneToOne(fused)});
    rows.push_back({"Hungarian (max weight)",
                    matching::HungarianMatch(fused).value()});
    rows.push_back({"Sinkhorn + decode", matching::SinkhornMatch(fused)});

    std::printf("--- %s ---\n", d.c_str());
    std::printf("%-24s %10s %12s %14s\n", "method", "accuracy",
                "blocking", "total weight");
    for (const Row& row : rows) {
      std::printf("%-24s %10.3f %12zu %14.2f\n", row.name,
                  eval::Accuracy(row.match, gold),
                  matching::CountBlockingPairs(fused, row.match),
                  matching::TotalWeight(fused, row.match));
    }
    std::printf("\n");
  }
  std::printf(
      "Expected shape: every collective method beats independent argmax;\n"
      "both DAA variants have zero blocking pairs; Hungarian maximises\n"
      "total weight; accuracies of the collective methods are close —\n"
      "supporting the paper's choice of DAA on efficiency grounds.\n");
  return 0;
}
