// Extension experiment (beyond the paper's tables, motivated by its
// Sec. I): adaptive fusion with a *fourth* feature. The paper argues
// hand-tuned outcome-level weights become impractical as features
// multiply; here the attribute feature Ma joins {Ms, Mn, Ml} with no
// re-tuning — the adaptive weights absorb it. JAPE-lite provides the
// attribute-aware baseline reference.

#include <cstdio>

#include "bench_util.h"

using namespace ceaff;

int main() {
  const std::vector<std::string> datasets = {
      "DBP15K_ZH_EN", "DBP15K_FR_EN", "SRPRS_EN_DE", "SRPRS_DBP_YG"};
  const std::vector<std::string> columns = {"ZH-EN", "FR-EN", "EN-DE",
                                            "SR-YG"};

  std::printf("Extension — attribute feature as a fourth signal "
              "(scale %.2f)\n\n", bench::DatasetScale());

  bench::PrintHeader("measured:", columns);

  // JAPE-lite baseline (structure + attribute types, fixed weights).
  {
    std::vector<std::optional<double>> cells;
    for (const std::string& d : datasets) {
      baselines::JapeLite::Options o;
      o.gcn = bench::BenchGcnOptions();
      baselines::JapeLite b(o);
      auto r = b.Run(bench::GetBenchmark(d).pair);
      cells.push_back(r.ok() ? std::optional<double>(r->accuracy)
                             : std::nullopt);
    }
    bench::PrintRow("JAPE-lite", cells);
  }

  // Attribute feature alone (collective decisions).
  {
    std::vector<std::optional<double>> cells;
    for (const std::string& d : datasets) {
      core::CeaffOptions o = bench::BenchCeaffOptions();
      o.use_structural = o.use_semantic = o.use_string = false;
      o.use_attribute = true;
      const data::SyntheticBenchmark& b = bench::GetBenchmark(d);
      core::CeaffPipeline pipe(&b.pair, &b.store, o);
      auto r = pipe.Run();
      cells.push_back(r.ok() ? std::optional<double>(r->accuracy)
                             : std::nullopt);
    }
    bench::PrintRow("Ma only (collective)", cells);
  }

  // CEAFF with three, four and five features.
  struct Variant {
    const char* label;
    bool attr;
    bool rel;
  };
  for (Variant v : {Variant{"CEAFF (3 features)", false, false},
                    Variant{"CEAFF + Ma (4 features)", true, false},
                    Variant{"CEAFF + Ma + Mr (5 feats)", true, true}}) {
    std::vector<std::optional<double>> cells;
    for (const std::string& d : datasets) {
      core::CeaffOptions o = bench::BenchCeaffOptions();
      o.use_attribute = v.attr;
      o.use_relation = v.rel;
      const data::SyntheticBenchmark& b = bench::GetBenchmark(d);
      core::CeaffPipeline pipe(&b.pair, &b.store, o);
      auto r = pipe.Run();
      cells.push_back(r.ok() ? std::optional<double>(r->accuracy)
                             : std::nullopt);
    }
    bench::PrintRow(v.label, cells, 26);
  }

  std::printf(
      "\nExpected shape: the fourth feature never needs manual weight\n"
      "tuning — adaptive fusion assigns it a share proportional to its\n"
      "confident-correspondence evidence, so CEAFF+Ma matches or improves\n"
      "CEAFF, and both dominate the attribute-aware JAPE-lite baseline.\n");
  return 0;
}
