// Reproduces Table II: statistics of the evaluation benchmark. The nine
// synthetic KG pairs mirror the paper's datasets at laptop scale (see
// DESIGN.md); this bench prints their generated statistics plus the
// Kolmogorov–Smirnov degree check SRPRS used (Sec. VII-A).

#include <cstdio>

#include "bench_util.h"

using namespace ceaff;

int main() {
  std::printf("Table II — statistics of the synthetic evaluation benchmark "
              "(scale %.2f)\n\n", bench::DatasetScale());
  std::printf("%-16s %10s %10s %10s %10s %8s %8s %8s\n", "Dataset",
              "#Triples1", "#Entities1", "#Triples2", "#Entities2", "#Seed",
              "#Test", "KS(deg)");
  for (const auto& cfg : data::StandardBenchmarkConfigs()) {
    const data::SyntheticBenchmark& b = bench::GetBenchmark(cfg.name);
    double ks = data::KsStatistic(b.pair.kg1.Degrees(),
                                  b.pair.kg2.Degrees());
    std::printf("%-16s %10zu %10zu %10zu %10zu %8zu %8zu %8.3f\n",
                cfg.name.c_str(), b.pair.kg1.num_triples(),
                b.pair.kg1.num_entities(), b.pair.kg2.num_triples(),
                b.pair.kg2.num_entities(), b.pair.seed_alignment.size(),
                b.pair.test_alignment.size(), ks);
  }
  std::printf("\nDense (DBP15K/DBP100K-like) pairs carry ~2.5x the average "
              "degree of the\nsparse real-life-profile (SRPRS-like) pairs; "
              "each pair's two KGs keep\nnear-identical degree "
              "distributions (low KS), as in the paper's Table II.\n");
  return 0;
}
