// Reproduces Figure 4: the round-by-round trace of the deferred acceptance
// algorithm on the running example — u1 and u2 both propose to v1, v1
// keeps u1; u3 takes v2 provisionally, is displaced by u2 ("trade up"),
// and ends with v3.

#include <cstdio>

#include "ceaff/la/matrix.h"
#include "ceaff/matching/matching.h"

using namespace ceaff;

int main() {
  la::Matrix m = la::Matrix::FromRows(
      {{0.9f, 0.6f, 0.1f}, {0.7f, 0.5f, 0.2f}, {0.2f, 0.4f, 0.3f}});
  std::printf("Figure 4 — EA as SMP solved by deferred acceptance\n\n");
  std::printf("fused similarity matrix:\n%s\n", m.ToString(1).c_str());

  std::vector<matching::DaaTraceEvent> trace;
  matching::MatchResult result = matching::DeferredAcceptanceTraced(m, &trace);

  size_t last_round = 0;
  for (const matching::DaaTraceEvent& e : trace) {
    if (e.round != last_round) {
      std::printf("round %zu:\n", e.round);
      last_round = e.round;
    }
    std::printf("  u%u proposes to v%u -> %s", e.source + 1, e.target + 1,
                e.accepted ? "\"maybe\" (provisionally matched)"
                           : "rejected");
    if (e.displaced >= 0) {
      std::printf(", displacing u%lld which re-enters the pool",
                  static_cast<long long>(e.displaced + 1));
    }
    std::printf("\n");
  }

  std::printf("\nfinal stable matching:\n");
  for (size_t i = 0; i < 3; ++i) {
    std::printf("  u%zu <-> v%lld\n", i + 1,
                static_cast<long long>(result.target_of_source[i] + 1));
  }
  std::printf("blocking pairs: %zu (guaranteed stable)\n",
              matching::CountBlockingPairs(m, result));
  return 0;
}
