// serve_throughput: drives a synthetic top-k query load against an
// in-memory AlignmentIndex and reports queries/second at several thread
// counts, as a BENCH_serve.json report (written to the working directory
// and echoed to stdout).
//
// The query cache is disabled so every query pays the full candidate scan —
// the number measured is raw service throughput, not cache hit rate. The
// report includes hardware_concurrency: thread counts beyond the machine's
// cores time-slice one core and cannot speed anything up, so judge the
// scaling column against the cores that actually exist.
//
// The report also carries an ANN section (DESIGN.md §13): the synthetic
// index gets IVF + int8 sections trained into it, and a recall@k-vs-QPS
// curve compares the exhaustive scan against the ANN path at several
// `nprobe` settings, plus the embedding-payload shrink from int8 coding.
// Ground truth for recall is the exhaustive scan's own top-k.
//
// Environment overrides:
//   CEAFF_SERVE_ENTITIES  target entities in the synthetic index (10000)
//   CEAFF_SERVE_QUERIES   queries per measured run            (2000)
//   CEAFF_SERVE_SHORTLIST ANN shortlist size for the curve    (AnnOptions default)
//   CEAFF_SERVE_TOPK      k per query                         (10)
//   CEAFF_SERVE_THREADS   comma-separated thread counts       (1,2,4,8)
//   CEAFF_SERVE_NPROBES   comma-separated nprobe settings     (1,2,4,8,16)

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "ceaff/common/random.h"
#include "ceaff/common/string_util.h"
#include "ceaff/common/thread_pool.h"
#include "ceaff/common/timer.h"
#include "ceaff/serve/ann_build.h"
#include "ceaff/serve/service.h"
#include "serve_synthetic.h"

namespace ceaff {
namespace {

using ::ceaff::bench::BuildSyntheticIndex;
using ::ceaff::bench::SyntheticName;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long long parsed = std::atoll(v);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

std::vector<size_t> EnvSizeList(const char* name, const char* fallback) {
  std::vector<size_t> values;
  const char* v = std::getenv(name);
  const std::string spec = (v != nullptr && *v != '\0') ? v : fallback;
  for (const std::string& part : Split(spec, ',')) {
    const long long parsed = std::atoll(part.c_str());
    if (parsed > 0) values.push_back(static_cast<size_t>(parsed));
  }
  return values;
}

std::vector<size_t> EnvThreadCounts() {
  std::vector<size_t> counts = EnvSizeList("CEAFF_SERVE_THREADS", "1,2,4,8");
  if (counts.empty()) counts = {1, 8};
  return counts;
}

struct RunResult {
  size_t threads = 0;
  double seconds = 0.0;
  double qps = 0.0;
  size_t errors = 0;
};

/// One point of the recall@k-vs-QPS curve ("exhaustive" is the nprobe=0
/// baseline; its recall is 1 by definition — it IS the ground truth).
struct AnnPoint {
  size_t nprobe = 0;  // 0 = exhaustive baseline
  double qps = 0.0;
  double recall = 0.0;
  uint64_t fallbacks = 0;  // scans that fell back to the exhaustive loop
};

/// Mean recall@k of `service`'s top-k answers against `truth` (target-id
/// lists from the exhaustive scan). Queries whose truth list is empty are
/// skipped.
double MeasureRecall(serve::AlignmentService* service,
                     const std::vector<std::string>& queries, size_t k,
                     const std::vector<std::vector<uint32_t>>& truth) {
  double sum = 0.0;
  size_t counted = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (truth[i].empty()) continue;
    auto r = service->TopK(queries[i], k);
    if (!r.ok()) continue;
    size_t hit = 0;
    for (const serve::Candidate& c : r->candidates) {
      if (std::find(truth[i].begin(), truth[i].end(), c.target) !=
          truth[i].end()) {
        ++hit;
      }
    }
    sum += static_cast<double>(hit) / static_cast<double>(truth[i].size());
    ++counted;
  }
  return counted > 0 ? sum / static_cast<double>(counted) : 0.0;
}

/// Runs `n_queries` TopK calls spread over `n_threads` plain worker threads
/// (each thread issues its share in a tight loop — the service's own pool
/// only serves BATCH requests, so driving TopK directly measures the shared
/// read path).
RunResult MeasureQps(serve::AlignmentService* service,
                     const std::vector<std::string>& queries, size_t k,
                     size_t n_threads) {
  std::atomic<size_t> next{0};
  std::atomic<size_t> errors{0};
  WallTimer timer;
  std::vector<std::thread> workers;
  workers.reserve(n_threads);
  for (size_t w = 0; w < n_threads; ++w) {
    workers.emplace_back([&] {
      while (true) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= queries.size()) return;
        auto r = service->TopK(queries[i], k);
        if (!r.ok()) errors.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : workers) t.join();

  RunResult result;
  result.threads = n_threads;
  result.seconds = timer.ElapsedSeconds();
  result.qps = result.seconds > 0
                   ? static_cast<double>(queries.size()) / result.seconds
                   : 0.0;
  result.errors = errors.load();
  return result;
}

int Main() {
  const size_t n_entities = EnvSize("CEAFF_SERVE_ENTITIES", 10000);
  const size_t n_queries = EnvSize("CEAFF_SERVE_QUERIES", 2000);
  const size_t k = EnvSize("CEAFF_SERVE_TOPK", 10);
  const size_t shortlist =
      EnvSize("CEAFF_SERVE_SHORTLIST", serve::AnnOptions{}.shortlist);
  const std::vector<size_t> thread_counts = EnvThreadCounts();

  std::fprintf(stderr, "building synthetic index (%zu entities)...\n",
               n_entities);
  serve::AlignmentIndex raw_index = BuildSyntheticIndex(n_entities);
  // Train the ANN sections in-place: the exhaustive runs below ignore them
  // (ann.enabled defaults to false), and the curve runs probe them.
  {
    const Status ann_built = serve::BuildAnnSections(&raw_index);
    if (!ann_built.ok()) {
      std::fprintf(stderr, "warning: ANN sections not built: %s\n",
                   ann_built.ToString().c_str());
    }
  }
  auto index = std::make_shared<const serve::AlignmentIndex>(
      std::move(raw_index));

  // Query mix: half known source names (exercise the structural feature),
  // half perturbed unseen names (string/semantic only).
  Rng rng(7);
  std::vector<std::string> queries;
  queries.reserve(n_queries);
  for (size_t i = 0; i < n_queries; ++i) {
    const uint64_t id = rng.NextBounded(n_entities);
    std::string name = SyntheticName(id);
    if (i % 2 == 1) name += "x";  // unseen variant
    queries.push_back(std::move(name));
  }

  std::vector<RunResult> runs;
  for (size_t n_threads : thread_counts) {
    serve::ServiceOptions options;
    options.num_threads = n_threads;
    options.cache_capacity = 0;  // measure the scan, not the cache
    serve::AlignmentService service(index, options);
    // Untimed warmup so first-touch page faults don't bias the 1-thread run.
    (void)service.TopK(queries.front(), k);
    RunResult run = MeasureQps(&service, queries, k, n_threads);
    runs.push_back(run);
    std::fprintf(stderr, "threads=%zu  %.2fs  %.1f qps  errors=%zu\n",
                 run.threads, run.seconds, run.qps, run.errors);
  }

  // --- Recall@k-vs-QPS curve, single-threaded (the knob under test is the
  // candidate stage, not thread scaling). Ground truth is the exhaustive
  // scan's own top-k per query.
  std::vector<AnnPoint> curve;
  if (index->has_ann()) {
    const std::vector<size_t> nprobes =
        EnvSizeList("CEAFF_SERVE_NPROBES", "1,2,4,8,16");
    std::vector<std::vector<uint32_t>> truth(queries.size());
    auto measure_point = [&](const serve::AnnOptions& ann) {
      serve::ServiceOptions options;
      options.num_threads = 1;
      options.cache_capacity = 0;
      options.ann = ann;
      serve::AlignmentService service(index, options);
      (void)service.TopK(queries.front(), k);
      AnnPoint point;
      point.nprobe = ann.enabled ? ann.nprobe : 0;
      if (ann.enabled) {
        point.recall = MeasureRecall(&service, queries, k, truth);
        point.fallbacks = service.Stats().ann.fallbacks;
      } else {
        // Baseline pass doubles as ground-truth collection.
        for (size_t i = 0; i < queries.size(); ++i) {
          auto r = service.TopK(queries[i], k);
          if (!r.ok()) continue;
          for (const serve::Candidate& c : r->candidates) {
            truth[i].push_back(c.target);
          }
        }
        point.recall = 1.0;
      }
      point.qps = MeasureQps(&service, queries, k, 1).qps;
      return point;
    };
    curve.push_back(measure_point(serve::AnnOptions{}));
    for (size_t nprobe : nprobes) {
      serve::AnnOptions ann;
      ann.enabled = true;
      ann.nprobe = nprobe;
      ann.shortlist = shortlist;
      AnnPoint point = measure_point(ann);
      curve.push_back(point);
      std::fprintf(stderr,
                   "ann nprobe=%zu  %.1f qps  recall@%zu=%.4f  "
                   "fallbacks=%llu\n",
                   point.nprobe, point.qps, k, point.recall,
                   static_cast<unsigned long long>(point.fallbacks));
    }
    std::fprintf(stderr, "exhaustive baseline  %.1f qps\n", curve.front().qps);
  }

  const double base_qps = runs.empty() ? 0.0 : runs.front().qps;
  std::string json = "{\n";
  json += StrFormat("  \"bench\": \"serve_throughput\",\n");
  json += StrFormat("  \"entities\": %zu,\n", n_entities);
  json += StrFormat("  \"queries\": %zu,\n", n_queries);
  json += StrFormat("  \"topk\": %zu,\n", k);
  json += StrFormat("  \"hardware_concurrency\": %u,\n",
                    std::thread::hardware_concurrency());
  json += "  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunResult& run = runs[i];
    json += StrFormat(
        "    {\"threads\": %zu, \"seconds\": %.3f, \"qps\": %.1f, "
        "\"speedup_vs_1\": %.2f, \"errors\": %zu}%s\n",
        run.threads, run.seconds, run.qps,
        base_qps > 0 ? run.qps / base_qps : 0.0, run.errors,
        i + 1 < runs.size() ? "," : "");
  }
  json += "  ]";
  if (!curve.empty()) {
    // Embedding payload: fp32 target matrices vs the int8 codes + per-row
    // scales the v3 artifact stores instead.
    const uint64_t fp32_bytes =
        (static_cast<uint64_t>(index->target_name_emb.rows()) *
             index->target_name_emb.cols() +
         static_cast<uint64_t>(index->target_struct_emb.rows()) *
             index->target_struct_emb.cols()) *
        sizeof(float);
    const uint64_t int8_bytes =
        static_cast<uint64_t>(index->ann_codes.rows()) *
            index->ann_codes.cols() +
        static_cast<uint64_t>(index->ann_scales.rows()) * sizeof(float);
    const double base = curve.front().qps;
    json += ",\n  \"ann\": {\n";
    json += StrFormat("    \"centroids\": %zu,\n",
                      index->ann_centroids.rows());
    json += StrFormat("    \"shortlist\": %zu,\n", shortlist);
    json += StrFormat("    \"payload_fp32_bytes\": %llu,\n",
                      static_cast<unsigned long long>(fp32_bytes));
    json += StrFormat("    \"payload_int8_bytes\": %llu,\n",
                      static_cast<unsigned long long>(int8_bytes));
    json += StrFormat("    \"payload_shrink\": %.2f,\n",
                      int8_bytes > 0 ? static_cast<double>(fp32_bytes) /
                                           static_cast<double>(int8_bytes)
                                     : 0.0);
    json += "    \"curve\": [\n";
    for (size_t i = 0; i < curve.size(); ++i) {
      const AnnPoint& p = curve[i];
      json += StrFormat(
          "      {\"mode\": \"%s\", \"nprobe\": %zu, \"qps\": %.1f, "
          "\"recall_at_k\": %.4f, \"speedup_vs_exhaustive\": %.2f, "
          "\"fallbacks\": %llu}%s\n",
          p.nprobe == 0 ? "exhaustive" : "ann", p.nprobe, p.qps, p.recall,
          base > 0 ? p.qps / base : 0.0,
          static_cast<unsigned long long>(p.fallbacks),
          i + 1 < curve.size() ? "," : "");
    }
    json += "    ]\n  }";
  }
  json += "\n}\n";

  std::printf("%s", json.c_str());
  std::ofstream out("BENCH_serve.json", std::ios::trunc);
  if (out) {
    out << json;
    std::fprintf(stderr, "wrote BENCH_serve.json\n");
  } else {
    std::fprintf(stderr, "warning: could not write BENCH_serve.json\n");
  }
  return 0;
}

}  // namespace
}  // namespace ceaff

int main() { return ceaff::Main(); }
