// serve_throughput: drives a synthetic top-k query load against an
// in-memory AlignmentIndex and reports queries/second at several thread
// counts, as a BENCH_serve.json report (written to the working directory
// and echoed to stdout).
//
// The query cache is disabled so every query pays the full candidate scan —
// the number measured is raw service throughput, not cache hit rate. The
// report includes hardware_concurrency: thread counts beyond the machine's
// cores time-slice one core and cannot speed anything up, so judge the
// scaling column against the cores that actually exist.
//
// Environment overrides:
//   CEAFF_SERVE_ENTITIES  target entities in the synthetic index (10000)
//   CEAFF_SERVE_QUERIES   queries per measured run            (2000)
//   CEAFF_SERVE_TOPK      k per query                         (10)
//   CEAFF_SERVE_THREADS   comma-separated thread counts       (1,2,4,8)

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "ceaff/common/random.h"
#include "ceaff/common/string_util.h"
#include "ceaff/common/thread_pool.h"
#include "ceaff/common/timer.h"
#include "ceaff/serve/service.h"
#include "serve_synthetic.h"

namespace ceaff {
namespace {

using ::ceaff::bench::BuildSyntheticIndex;
using ::ceaff::bench::SyntheticName;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long long parsed = std::atoll(v);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

std::vector<size_t> EnvThreadCounts() {
  std::vector<size_t> counts;
  const char* v = std::getenv("CEAFF_SERVE_THREADS");
  const std::string spec = (v != nullptr && *v != '\0') ? v : "1,2,4,8";
  for (const std::string& part : Split(spec, ',')) {
    const long long parsed = std::atoll(part.c_str());
    if (parsed > 0) counts.push_back(static_cast<size_t>(parsed));
  }
  if (counts.empty()) counts = {1, 8};
  return counts;
}

struct RunResult {
  size_t threads = 0;
  double seconds = 0.0;
  double qps = 0.0;
  size_t errors = 0;
};

/// Runs `n_queries` TopK calls spread over `n_threads` plain worker threads
/// (each thread issues its share in a tight loop — the service's own pool
/// only serves BATCH requests, so driving TopK directly measures the shared
/// read path).
RunResult MeasureQps(serve::AlignmentService* service,
                     const std::vector<std::string>& queries, size_t k,
                     size_t n_threads) {
  std::atomic<size_t> next{0};
  std::atomic<size_t> errors{0};
  WallTimer timer;
  std::vector<std::thread> workers;
  workers.reserve(n_threads);
  for (size_t w = 0; w < n_threads; ++w) {
    workers.emplace_back([&] {
      while (true) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= queries.size()) return;
        auto r = service->TopK(queries[i], k);
        if (!r.ok()) errors.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : workers) t.join();

  RunResult result;
  result.threads = n_threads;
  result.seconds = timer.ElapsedSeconds();
  result.qps = result.seconds > 0
                   ? static_cast<double>(queries.size()) / result.seconds
                   : 0.0;
  result.errors = errors.load();
  return result;
}

int Main() {
  const size_t n_entities = EnvSize("CEAFF_SERVE_ENTITIES", 10000);
  const size_t n_queries = EnvSize("CEAFF_SERVE_QUERIES", 2000);
  const size_t k = EnvSize("CEAFF_SERVE_TOPK", 10);
  const std::vector<size_t> thread_counts = EnvThreadCounts();

  std::fprintf(stderr, "building synthetic index (%zu entities)...\n",
               n_entities);
  auto index = std::make_shared<const serve::AlignmentIndex>(
      BuildSyntheticIndex(n_entities));

  // Query mix: half known source names (exercise the structural feature),
  // half perturbed unseen names (string/semantic only).
  Rng rng(7);
  std::vector<std::string> queries;
  queries.reserve(n_queries);
  for (size_t i = 0; i < n_queries; ++i) {
    const uint64_t id = rng.NextBounded(n_entities);
    std::string name = SyntheticName(id);
    if (i % 2 == 1) name += "x";  // unseen variant
    queries.push_back(std::move(name));
  }

  std::vector<RunResult> runs;
  for (size_t n_threads : thread_counts) {
    serve::ServiceOptions options;
    options.num_threads = n_threads;
    options.cache_capacity = 0;  // measure the scan, not the cache
    serve::AlignmentService service(index, options);
    // Untimed warmup so first-touch page faults don't bias the 1-thread run.
    (void)service.TopK(queries.front(), k);
    RunResult run = MeasureQps(&service, queries, k, n_threads);
    runs.push_back(run);
    std::fprintf(stderr, "threads=%zu  %.2fs  %.1f qps  errors=%zu\n",
                 run.threads, run.seconds, run.qps, run.errors);
  }

  const double base_qps = runs.empty() ? 0.0 : runs.front().qps;
  std::string json = "{\n";
  json += StrFormat("  \"bench\": \"serve_throughput\",\n");
  json += StrFormat("  \"entities\": %zu,\n", n_entities);
  json += StrFormat("  \"queries\": %zu,\n", n_queries);
  json += StrFormat("  \"topk\": %zu,\n", k);
  json += StrFormat("  \"hardware_concurrency\": %u,\n",
                    std::thread::hardware_concurrency());
  json += "  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunResult& run = runs[i];
    json += StrFormat(
        "    {\"threads\": %zu, \"seconds\": %.3f, \"qps\": %.1f, "
        "\"speedup_vs_1\": %.2f, \"errors\": %zu}%s\n",
        run.threads, run.seconds, run.qps,
        base_qps > 0 ? run.qps / base_qps : 0.0, run.errors,
        i + 1 < runs.size() ? "," : "");
  }
  json += "  ]\n}\n";

  std::printf("%s", json.c_str());
  std::ofstream out("BENCH_serve.json", std::ios::trunc);
  if (out) {
    out << json;
    std::fprintf(stderr, "wrote BENCH_serve.json\n");
  } else {
    std::fprintf(stderr, "warning: could not write BENCH_serve.json\n");
  }
  return 0;
}

}  // namespace
}  // namespace ceaff

int main() { return ceaff::Main(); }
