// overload_soak: drives the serving path well past its capacity and
// reports what the overload-protection machinery did about it, as a
// BENCH_overload.json report (written to the working directory and echoed
// to stdout).
//
// The bench first calibrates: a single sequential loop against a service
// with overload protection OFF measures unloaded capacity (qps) and the
// unloaded p50/p99. It then soaks a protected service at multiples of that
// capacity (0.5x, 1x, 2x, 4x by default) using closed-loop generator
// threads that call TopK directly — the admission controller's load signal
// is the number of in-flight TopK calls, so driving the public entry point
// from many threads is exactly what production overload looks like.
//
// Per phase it reports goodput (answered qps), shed rate, admitted-request
// latency quantiles, and how long the degradation policy spent at each
// tier. The protection thresholds are derived from the calibrated p50 so
// the soak behaves the same on fast and slow machines.
//
// What "good" looks like at 4x: shed_rate well above zero (the service is
// turning work away instead of queueing it), admitted p99 within a small
// multiple of the unloaded p99, and nonzero time at the degraded tiers.
//
// After the load phases, failpoint-driven *chaos phases* re-soak the
// protected service at 2x with faults armed on the scan and reload sites
// (deterministic 1-in-n errors, calibrated delays, reload churn) and
// record the goodput delta against a fault-free 2x baseline — the chaos
// drills as a measured resilience benchmark, not just a pass/fail test.
// Injected faults surface as kIOError and are counted separately
// (`injected_errors`); `unexpected_errors` staying 0 is the resilience
// claim.
//
// Environment overrides:
//   CEAFF_SOAK_ENTITIES     entities in the synthetic index      (8000)
//   CEAFF_SOAK_TOPK         k per query                          (10)
//   CEAFF_SOAK_CAL_QUERIES  calibration queries                  (300)
//   CEAFF_SOAK_PHASE_MS     soak duration per phase, ms          (1500)
//   CEAFF_SOAK_MULTIPLIERS  comma-separated load multipliers     (0.5,1,2,4)
//   CEAFF_SOAK_CHAOS        "0" skips the chaos phases           (on)
//   CEAFF_SOAK_REPLICATION  "0" skips the replicated-fleet phase (on)
//
// Finally a *replication phase* measures what R-way shard replication
// costs and buys: an in-process ShardRouter fleet (3 ranges x 2 replicas)
// is driven by a single-threaded closed loop (the router is not
// thread-safe; its parallelism lives in the worker processes). A
// fault-free pass measures replicated goodput; a second pass SIGKILLs one
// replica mid-loop and records the goodput delta plus the latency of
// every query that took the failover path — the price of a worker loss as
// a measured number, not just a pass/fail drill.

#include <signal.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ceaff/common/failpoint.h"
#include "ceaff/common/random.h"
#include "ceaff/common/string_util.h"
#include "ceaff/common/timer.h"
#include "ceaff/delta/delta_apply.h"
#include "ceaff/delta/delta_journal.h"
#include "ceaff/delta/delta_patch.h"
#include "ceaff/delta/delta_repair.h"
#include "ceaff/delta/delta_state.h"
#include "ceaff/la/kernels.h"
#include "ceaff/serve/alignment_index.h"
#include "ceaff/serve/degradation.h"
#include "ceaff/serve/router.h"
#include "ceaff/serve/service.h"
#include "serve_synthetic.h"

namespace ceaff {
namespace {

using ::ceaff::bench::BuildSyntheticIndex;
using ::ceaff::bench::SyntheticName;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long long parsed = std::atoll(v);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

std::vector<double> EnvMultipliers() {
  std::vector<double> out;
  const char* v = std::getenv("CEAFF_SOAK_MULTIPLIERS");
  const std::string spec = (v != nullptr && *v != '\0') ? v : "0.5,1,2,4";
  for (const std::string& part : Split(spec, ',')) {
    const double parsed = std::atof(part.c_str());
    if (parsed > 0) out.push_back(parsed);
  }
  if (out.empty()) out = {0.5, 4.0};
  return out;
}

double QuantileMs(std::vector<uint64_t>* latencies_ns, double q) {
  if (latencies_ns->empty()) return 0.0;
  std::sort(latencies_ns->begin(), latencies_ns->end());
  const size_t idx = std::min(
      latencies_ns->size() - 1,
      static_cast<size_t>(q * static_cast<double>(latencies_ns->size())));
  return static_cast<double>((*latencies_ns)[idx]) / 1e6;
}

struct Calibration {
  double qps = 0.0;
  double mean_ns = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

struct PhaseResult {
  double multiplier = 0.0;
  size_t threads = 0;
  double seconds = 0.0;
  uint64_t attempts = 0;
  uint64_t ok = 0;
  uint64_t ok_degraded = 0;
  uint64_t shed = 0;
  uint64_t rejected = 0;
  /// kIOError results — the failpoint error action's code. Only the chaos
  /// phases arm failpoints, so this stays 0 in the plain load phases.
  uint64_t injected_errors = 0;
  uint64_t other_errors = 0;
  double goodput_qps = 0.0;
  double shed_rate = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  /// Nanoseconds the degradation policy spent at each tier in this phase.
  std::array<uint64_t, 3> tier_ns{};
};

std::vector<std::string> MakeQueries(size_t n_entities, size_t n_queries) {
  // Half known source names (answerable at every tier, including the
  // pair-only fallback), half perturbed unseen names.
  Rng rng(7);
  std::vector<std::string> queries;
  queries.reserve(n_queries);
  for (size_t i = 0; i < n_queries; ++i) {
    std::string name = SyntheticName(rng.NextBounded(n_entities));
    if (i % 2 == 1) name += "x";
    queries.push_back(std::move(name));
  }
  return queries;
}

Calibration Calibrate(
    const std::shared_ptr<const serve::AlignmentIndex>& index,
    const std::vector<std::string>& queries, size_t k) {
  serve::ServiceOptions options;
  options.num_threads = 1;
  options.cache_capacity = 0;
  options.overload_protection = false;
  serve::AlignmentService service(index, options);
  (void)service.TopK(queries.front(), k);  // untimed first-touch warmup

  std::vector<uint64_t> latencies;
  latencies.reserve(queries.size());
  WallTimer timer;
  for (const std::string& q : queries) {
    const auto t0 = std::chrono::steady_clock::now();
    auto r = service.TopK(q, k);
    CEAFF_CHECK(r.ok()) << r.status().ToString();
    latencies.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }
  const double seconds = timer.ElapsedSeconds();

  Calibration cal;
  cal.qps = seconds > 0
                ? static_cast<double>(queries.size()) / seconds
                : 0.0;
  uint64_t sum = 0;
  for (uint64_t ns : latencies) sum += ns;
  cal.mean_ns = static_cast<double>(sum) /
                static_cast<double>(latencies.size());
  cal.p50_ms = QuantileMs(&latencies, 0.50);
  cal.p99_ms = QuantileMs(&latencies, 0.99);
  return cal;
}

/// Soaks `service` for `phase_ms` at roughly `multiplier` x the calibrated
/// capacity. Closed loop: ceil(multiplier) generator threads run TopK
/// back-to-back (on the calibrated single-core capacity, one tight thread
/// offers ~1x); sub-1x multipliers pace a single thread with sleeps.
PhaseResult SoakPhase(serve::AlignmentService* service,
                      const std::vector<std::string>& queries, size_t k,
                      double multiplier, size_t phase_ms,
                      double unloaded_mean_ns) {
  PhaseResult phase;
  phase.multiplier = multiplier;
  phase.threads = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(multiplier)));
  const auto pacing =
      multiplier < 1.0
          ? std::chrono::nanoseconds(static_cast<int64_t>(
                unloaded_mean_ns * (1.0 / multiplier - 1.0)))
          : std::chrono::nanoseconds(0);

  const auto tiers_before =
      service->TierNanos();
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> attempts{0}, ok{0}, ok_degraded{0}, shed{0},
      rejected{0}, injected_errors{0}, other_errors{0};
  std::mutex latency_mu;
  std::vector<uint64_t> latencies;

  std::vector<std::thread> generators;
  generators.reserve(phase.threads);
  WallTimer timer;
  for (size_t g = 0; g < phase.threads; ++g) {
    generators.emplace_back([&, g] {
      std::vector<uint64_t> local;
      size_t i = g;  // stagger starting offsets across generators
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string& q = queries[i % queries.size()];
        i += phase.threads;
        attempts.fetch_add(1, std::memory_order_relaxed);
        const auto t0 = std::chrono::steady_clock::now();
        auto r = service->TopK(q, k);
        if (r.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
          if (r->degraded) {
            ok_degraded.fetch_add(1, std::memory_order_relaxed);
          }
          local.push_back(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count()));
        } else if (r.status().IsUnavailable()) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else if (r.status().IsDeadlineExceeded()) {
          rejected.fetch_add(1, std::memory_order_relaxed);
        } else if (r.status().IsIOError()) {
          injected_errors.fetch_add(1, std::memory_order_relaxed);
        } else {
          other_errors.fetch_add(1, std::memory_order_relaxed);
        }
        if (pacing.count() > 0) std::this_thread::sleep_for(pacing);
      }
      std::lock_guard<std::mutex> lock(latency_mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(phase_ms));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : generators) t.join();
  phase.seconds = timer.ElapsedSeconds();

  const auto tiers_after = service->TierNanos();
  for (size_t t = 0; t < tiers_after.size(); ++t) {
    phase.tier_ns[t] = tiers_after[t] - tiers_before[t];
  }
  phase.attempts = attempts.load();
  phase.ok = ok.load();
  phase.ok_degraded = ok_degraded.load();
  phase.shed = shed.load();
  phase.rejected = rejected.load();
  phase.injected_errors = injected_errors.load();
  phase.other_errors = other_errors.load();
  phase.goodput_qps =
      phase.seconds > 0 ? static_cast<double>(phase.ok) / phase.seconds : 0.0;
  phase.shed_rate =
      phase.attempts > 0
          ? static_cast<double>(phase.shed) /
                static_cast<double>(phase.attempts)
          : 0.0;
  phase.p50_ms = QuantileMs(&latencies, 0.50);
  phase.p99_ms = QuantileMs(&latencies, 0.99);
  return phase;
}

int Main() {
  const size_t n_entities = EnvSize("CEAFF_SOAK_ENTITIES", 8000);
  const size_t k = EnvSize("CEAFF_SOAK_TOPK", 10);
  const size_t n_cal = EnvSize("CEAFF_SOAK_CAL_QUERIES", 300);
  const size_t phase_ms = EnvSize("CEAFF_SOAK_PHASE_MS", 1500);
  const std::vector<double> multipliers = EnvMultipliers();

  std::fprintf(stderr, "building synthetic index (%zu entities)...\n",
               n_entities);
  auto index = std::make_shared<const serve::AlignmentIndex>(
      BuildSyntheticIndex(n_entities, "synthetic-overload-soak"));
  const std::vector<std::string> queries = MakeQueries(n_entities, 512);

  std::fprintf(stderr, "calibrating unloaded capacity (%zu queries)...\n",
               n_cal);
  const Calibration cal = Calibrate(
      index, MakeQueries(n_entities, n_cal), k);
  std::fprintf(stderr,
               "unloaded: %.1f qps, p50 %.3f ms, p99 %.3f ms\n",
               cal.qps, cal.p50_ms, cal.p99_ms);

  // Protection thresholds scale with the machine: the admission target is
  // one unloaded median service time of estimated queue delay, and the
  // degradation tiers engage shortly above it. On a 1-worker estimate the
  // load signal is (in_flight - 1) x p50, so 2 concurrent callers sit at
  // the target and 4 are well past the pair-only threshold.
  const uint64_t p50_ns = static_cast<uint64_t>(
      std::max(1.0, cal.p50_ms * 1e6));
  serve::ServiceOptions options;
  options.num_threads = 1;
  options.cache_capacity = 0;  // soak the scan, not the cache
  options.admission.target_delay_ns = p50_ns;
  options.admission.interval_ns = 50'000'000;  // 50 ms
  options.degradation.enter_textual_delay_ns = p50_ns + p50_ns / 2;
  options.degradation.enter_pair_only_delay_ns = p50_ns * 5 / 2;
  options.degradation.window_ns = 200'000'000;   // 200 ms
  options.degradation.min_dwell_ns = 100'000'000;  // 100 ms
  serve::AlignmentService service(index, options);
  (void)service.TopK(queries.front(), k);  // seed the latency histogram

  struct ChaosResult {
    std::string name;
    std::string spec;
    PhaseResult phase;
    /// Relative goodput vs the fault-free chaos baseline (0 = unchanged,
    /// -0.25 = lost a quarter of the answered qps to the injected faults).
    double goodput_delta = 0.0;
    uint64_t reload_attempts = 0;
    uint64_t reload_failures = 0;
  };

  std::vector<PhaseResult> phases;
  for (double m : multipliers) {
    PhaseResult phase =
        SoakPhase(&service, queries, k, m, phase_ms, cal.mean_ns);
    std::fprintf(stderr,
                 "%.1fx (%zu threads): goodput %.1f qps, shed %.1f%%, "
                 "degraded %llu, p99 %.3f ms, tier_ns full/text/pair "
                 "%llu/%llu/%llu\n",
                 phase.multiplier, phase.threads, phase.goodput_qps,
                 100.0 * phase.shed_rate,
                 static_cast<unsigned long long>(phase.ok_degraded),
                 phase.p99_ms,
                 static_cast<unsigned long long>(phase.tier_ns[0]),
                 static_cast<unsigned long long>(phase.tier_ns[1]),
                 static_cast<unsigned long long>(phase.tier_ns[2]));
    phases.push_back(phase);
  }

  // --- Failpoint-driven chaos phases -------------------------------------
  // Re-soak at a fixed 2x with faults armed on the scan and reload sites;
  // the fault-free baseline run first makes each phase's goodput delta a
  // like-for-like measurement (same service instance, same queries).
  const char* chaos_env = std::getenv("CEAFF_SOAK_CHAOS");
  const bool chaos_on =
      chaos_env == nullptr ||
      (std::string(chaos_env) != "0" && std::string(chaos_env) != "off");
  std::vector<ChaosResult> chaos;
  if (chaos_on) {
    constexpr double kChaosMultiplier = 2.0;
    const std::string chaos_index = "soak_chaos_index.tmp";
    const Status saved = serve::SaveAlignmentIndex(*index, chaos_index);
    CEAFF_CHECK(saved.ok()) << saved.ToString();
    // The injected stall is one unloaded median service time — enough to
    // move the admission signal, small enough that the phase still makes
    // progress.
    const int delay_ms =
        std::max(1, static_cast<int>(std::lround(cal.p50_ms)));

    const auto run_chaos = [&](const std::string& name,
                               const std::string& spec, bool reload_churn) {
      ChaosResult result;
      result.name = name;
      result.spec = spec;
      const Status armed = failpoint::Configure(spec);
      CEAFF_CHECK(armed.ok()) << armed.ToString();
      std::atomic<bool> stop_reloads{false};
      std::atomic<uint64_t> reload_attempts{0}, reload_failures{0};
      std::thread reloader;
      if (reload_churn) {
        reloader = std::thread([&] {
          while (!stop_reloads.load(std::memory_order_relaxed)) {
            reload_attempts.fetch_add(1, std::memory_order_relaxed);
            if (!service.Reload(chaos_index).ok()) {
              reload_failures.fetch_add(1, std::memory_order_relaxed);
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
          }
        });
      }
      result.phase = SoakPhase(&service, queries, k, kChaosMultiplier,
                               phase_ms, cal.mean_ns);
      if (reloader.joinable()) {
        stop_reloads.store(true, std::memory_order_relaxed);
        reloader.join();
      }
      failpoint::Clear();
      result.reload_attempts = reload_attempts.load();
      result.reload_failures = reload_failures.load();
      if (!chaos.empty() && chaos.front().phase.goodput_qps > 0) {
        result.goodput_delta =
            result.phase.goodput_qps / chaos.front().phase.goodput_qps - 1.0;
      }
      std::fprintf(
          stderr,
          "chaos %-16s goodput %.1f qps (%+.1f%%), injected %llu, "
          "unexpected %llu, shed %.1f%%, reloads %llu (%llu failed)\n",
          name.c_str(), result.phase.goodput_qps,
          100.0 * result.goodput_delta,
          static_cast<unsigned long long>(result.phase.injected_errors),
          static_cast<unsigned long long>(result.phase.other_errors),
          100.0 * result.phase.shed_rate,
          static_cast<unsigned long long>(result.reload_attempts),
          static_cast<unsigned long long>(result.reload_failures));
      chaos.push_back(std::move(result));
    };

    run_chaos("baseline", "", false);
    run_chaos("scan_error_1in20", "serve.topk.scan=1in20", false);
    run_chaos("scan_delay",
              StrFormat("serve.topk.scan=delay:%d", delay_ms), false);
    run_chaos("reload_churn_1in3", "serve.reload=1in3", true);
    std::remove(chaos_index.c_str());
  }

  // --- Replicated-fleet phase --------------------------------------------
  struct ReplLoop {
    uint64_t ok = 0;
    uint64_t degraded = 0;
    uint64_t errors = 0;
    uint64_t failovers = 0;
    double goodput_qps = 0.0;
    double p99_ms = 0.0;
    /// Worst latency among the queries that took the failover path (a
    /// replica died mid-gather and the next one answered). 0 when none did.
    double failover_latency_ms = 0.0;
  };
  struct ReplicationReport {
    bool ran = false;
    size_t ranges = 0;
    size_t replicas = 0;
    ReplLoop baseline;
    ReplLoop failover;
    /// Relative goodput of the failover pass vs the replicated baseline
    /// (0 = a dead replica costs nothing, -0.25 = a quarter of the qps).
    double goodput_delta = 0.0;
  };
  ReplicationReport repl;
  const char* repl_env = std::getenv("CEAFF_SOAK_REPLICATION");
  const bool repl_on =
      repl_env == nullptr ||
      (std::string(repl_env) != "0" && std::string(repl_env) != "off");
  if (repl_on) {
    const std::string repl_index = "soak_repl_index.tmp";
    const Status saved = serve::SaveAlignmentIndex(*index, repl_index);
    CEAFF_CHECK(saved.ok()) << saved.ToString();
    serve::ShardRouterOptions router_options;
    router_options.num_shards = 3;
    router_options.num_replicas = 2;
    auto started = serve::ShardRouter::Start(repl_index, router_options);
    CEAFF_CHECK(started.ok()) << started.status().ToString();
    std::unique_ptr<serve::ShardRouter> router = std::move(started.value());
    repl.ran = true;
    repl.ranges = router->num_ranges();
    repl.replicas = router->num_replicas();

    // Single-threaded closed loop against the router (not thread-safe).
    // `victim` >= 0 SIGKILLs that worker once the loop is halfway through
    // its budget; every query whose scatter recorded a failover gets its
    // latency tracked separately.
    const auto soak_router = [&](int victim, ReplLoop* out) {
      std::vector<uint64_t> latencies;
      uint64_t worst_failover_ns = 0;
      const uint64_t failovers_at_start = router->failovers();
      const uint64_t degraded_at_start = router->degraded_answers();
      bool killed = victim < 0;
      size_t i = 0;
      WallTimer timer;
      while (timer.ElapsedSeconds() * 1e3 <
             static_cast<double>(phase_ms)) {
        if (!killed &&
            timer.ElapsedSeconds() * 1e3 >=
                static_cast<double>(phase_ms) / 2.0 &&
            router->shard_alive(static_cast<size_t>(victim))) {
          ::kill(router->shard_pid(static_cast<size_t>(victim)), SIGKILL);
          killed = true;
        }
        const std::string& q = queries[i++ % queries.size()];
        const uint64_t failovers_before = router->failovers();
        const auto t0 = std::chrono::steady_clock::now();
        auto r = router->TopK(q, k);
        const uint64_t ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        if (r.ok()) {
          out->ok += 1;
          latencies.push_back(ns);
          if (router->failovers() > failovers_before) {
            worst_failover_ns = std::max(worst_failover_ns, ns);
          }
        } else {
          out->errors += 1;
        }
      }
      const double seconds = timer.ElapsedSeconds();
      out->failovers = router->failovers() - failovers_at_start;
      out->degraded = router->degraded_answers() - degraded_at_start;
      out->goodput_qps =
          seconds > 0 ? static_cast<double>(out->ok) / seconds : 0.0;
      out->p99_ms = QuantileMs(&latencies, 0.99);
      out->failover_latency_ms =
          static_cast<double>(worst_failover_ns) / 1e6;
    };

    soak_router(/*victim=*/-1, &repl.baseline);
    // Kill replica 0 of the middle range mid-pass; with R = 2 the answers
    // must stay non-degraded through the loss.
    soak_router(
        static_cast<int>(router->worker_index(/*range=*/1, /*replica=*/0)),
        &repl.failover);
    if (repl.baseline.goodput_qps > 0) {
      repl.goodput_delta =
          repl.failover.goodput_qps / repl.baseline.goodput_qps - 1.0;
    }
    std::fprintf(
        stderr,
        "replication %zux%zu: baseline %.1f qps, one-replica-down %.1f qps "
        "(%+.1f%%), failovers %llu, failover p-worst %.3f ms, degraded "
        "%llu, errors %llu\n",
        repl.ranges, repl.replicas, repl.baseline.goodput_qps,
        repl.failover.goodput_qps, 100.0 * repl.goodput_delta,
        static_cast<unsigned long long>(repl.failover.failovers),
        repl.failover.failover_latency_ms,
        static_cast<unsigned long long>(repl.failover.degraded),
        static_cast<unsigned long long>(repl.failover.errors));
    router.reset();  // reaps the fleet before the file goes away
    std::remove(repl_index.c_str());
  }

  // --- Delta-ingestion phase ---------------------------------------------
  // A live service keeps answering while a journaled patch batch runs the
  // full apply cycle (bounded repair -> verification gate -> generational
  // publish) in this process; the report records the apply latency and how
  // many queries the service answered during it, then reloads the service
  // onto the published generation and checks a patched entity is servable.
  struct DeltaIngestReport {
    bool ran = false;
    size_t entities = 0;
    size_t records = 0;
    double apply_ms = 0.0;
    double repair_ms = 0.0;
    double verify_ms = 0.0;
    double publish_ms = 0.0;
    uint64_t queries_during_apply = 0;
    uint64_t query_errors_during_apply = 0;
    double qps_during_apply = 0.0;
    uint64_t published_generation = 0;
    bool reload_ok = false;
    bool patched_entity_served = false;
  };
  DeltaIngestReport ingest;
  const char* delta_env = std::getenv("CEAFF_SOAK_DELTA");
  const bool delta_on =
      delta_env == nullptr ||
      (std::string(delta_env) != "0" && std::string(delta_env) != "off");
  if (delta_on) {
    const size_t n_delta = EnvSize("CEAFF_SOAK_DELTA_ENTITIES", 160);
    const size_t n_records = EnvSize("CEAFF_SOAK_DELTA_RECORDS", 12);
    la::KernelContext kernel_ctx;

    // Baseline frozen-model state: ring + skip triples, most entities
    // serving (same shape as the delta test fixtures, sized by env).
    delta::DeltaState base;
    base.dataset = "synthetic-delta-soak";
    base.semantic_dim = 16;
    base.semantic_seed = 17;
    base.gcn_dim = 16;
    base.gcn_seed = 2020;
    base.two_stage = true;
    base.textual_weights = {0.5, 0.5};
    base.final_weights = {0.6, 0.4};
    for (int g = 1; g <= 2; ++g) {
      kg::KnowledgeGraph& graph = g == 1 ? base.kg1 : base.kg2;
      for (size_t e = 0; e < n_delta; ++e) {
        graph.AddEntity(StrFormat("soak%d:e%zu", g, e),
                        StrFormat("%s side %d",
                                  SyntheticName(e).c_str(), g));
      }
      for (size_t e = 0; e < n_delta; ++e) {
        graph.AddTriple(StrFormat("soak%d:e%zu", g, e),
                        StrFormat("soak%d:r0", g),
                        StrFormat("soak%d:e%zu", g, (e + 1) % n_delta));
        graph.AddTriple(StrFormat("soak%d:e%zu", g, e),
                        StrFormat("soak%d:r1", g),
                        StrFormat("soak%d:e%zu", g, (e + 3) % n_delta));
      }
    }
    for (size_t e = 0; e + 2 < n_delta; ++e) {
      base.source_ids.push_back(static_cast<uint32_t>(e));
      base.target_ids.push_back(static_cast<uint32_t>(e));
    }
    base.x1 = delta::ExtendInputFeatures(la::Matrix(0, base.gcn_dim),
                                         base.kg1, base.gcn_seed);
    base.x2 = delta::ExtendInputFeatures(la::Matrix(0, base.gcn_dim),
                                         base.kg2, base.gcn_seed);
    base.src_name_emb = delta::RepairNameEmbeddings(
        la::Matrix(), 0, base.source_ids, base.kg1, {}, base.semantic_dim,
        base.semantic_seed);
    base.tgt_name_emb = delta::RepairNameEmbeddings(
        la::Matrix(), 0, base.target_ids, base.kg2, {}, base.semantic_dim,
        base.semantic_seed);
    Status recomputed =
        delta::RecomputeStateExhaustive(&base, kernel_ctx);
    CEAFF_CHECK(recomputed.ok()) << recomputed.ToString();

    char delta_tmpl[] = "/tmp/ceaff_soak_delta_XXXXXX";
    const char* delta_root = mkdtemp(delta_tmpl);
    CEAFF_CHECK(delta_root != nullptr);
    delta::DeltaApplyOptions apply_options;
    apply_options.journal_dir = std::string(delta_root) + "/wal";
    apply_options.state_dir = std::string(delta_root) + "/state";
    apply_options.index_dir = std::string(delta_root) + "/index";
    apply_options.verify.audit_rows = 4;
    apply_options.export_ann = false;
    {
      auto store = delta::OpenDeltaStateStore(apply_options.state_dir);
      CEAFF_CHECK(store.ok()) << store.status().ToString();
      const Status saved = delta::SaveDeltaState(base, store->get());
      CEAFF_CHECK(saved.ok()) << saved.ToString();
    }
    auto base_index = delta::BuildIndexFromState(base, false, 0);
    CEAFF_CHECK(base_index.ok()) << base_index.status().ToString();
    const Status index_saved = serve::SaveAlignmentIndexGenerational(
        *base_index, apply_options.index_dir);
    CEAFF_CHECK(index_saved.ok()) << index_saved.ToString();

    // Journal the batch: new entities wired into the ring, served on the
    // source side, plus a rename and a triple removal for coverage.
    {
      auto journal = delta::DeltaJournal::Open(apply_options.journal_dir);
      CEAFF_CHECK(journal.ok()) << journal.status().ToString();
      std::string patch_text;
      for (size_t i = 0; i < n_records; i += 4) {
        patch_text += StrFormat(
            "add_entity\t1\tsoak1:new%zu\tdelta newcomer %zu\n", i, i);
        patch_text += StrFormat(
            "add_triple\t1\tsoak1:new%zu\tsoak1:r0\tsoak1:e%zu\n", i,
            i % n_delta);
        patch_text += StrFormat("serve_entity\t1\tsoak1:new%zu\n", i);
        patch_text += StrFormat(
            "rename_entity\t2\tsoak2:e%zu\trenamed by delta %zu\n",
            i % n_delta, i);
      }
      auto records = delta::ParsePatchText(patch_text);
      CEAFF_CHECK(records.ok()) << records.status().ToString();
      records->resize(std::min(records->size(), n_records));
      ingest.records = records->size();
      for (const delta::PatchRecord& r : *records) {
        auto id = (*journal)->Append(r);
        CEAFF_CHECK(id.ok()) << id.status().ToString();
      }
    }

    // Serve the baseline generation and keep one closed query loop running
    // while the apply cycle executes on this thread.
    serve::ServiceOptions delta_serve_options;
    delta_serve_options.num_threads = 1;
    serve::AlignmentService delta_service(
        std::make_shared<const serve::AlignmentIndex>(*base_index),
        delta_serve_options);
    std::atomic<bool> apply_done{false};
    std::atomic<uint64_t> served{0}, serve_errors{0};
    std::thread query_loop([&] {
      size_t i = 0;
      while (!apply_done.load(std::memory_order_relaxed)) {
        const std::string& q =
            base_index->source_names[i++ % base_index->source_names.size()];
        if (delta_service.TopK(q, k).ok()) {
          served.fetch_add(1, std::memory_order_relaxed);
        } else {
          serve_errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    WallTimer apply_timer;
    auto report = delta::ApplyDelta(apply_options);
    const double apply_seconds = apply_timer.ElapsedSeconds();
    apply_done.store(true, std::memory_order_relaxed);
    query_loop.join();
    CEAFF_CHECK(report.ok()) << report.status().ToString();

    ingest.ran = true;
    ingest.entities = n_delta;
    ingest.apply_ms = apply_seconds * 1e3;
    ingest.repair_ms = report->seconds_repair * 1e3;
    ingest.verify_ms = report->seconds_verify * 1e3;
    ingest.publish_ms = report->seconds_publish * 1e3;
    ingest.queries_during_apply = served.load();
    ingest.query_errors_during_apply = serve_errors.load();
    ingest.qps_during_apply =
        apply_seconds > 0
            ? static_cast<double>(ingest.queries_during_apply) /
                  apply_seconds
            : 0.0;
    ingest.published_generation = report->published_index_generation;

    // Hot-swap the service onto the published generation and prove the
    // patch took: the journaled newcomer must be in the published name
    // table (it may legitimately end up unmatched — sources now outnumber
    // targets — so presence, not a committed pair, is the check).
    ingest.reload_ok =
        delta_service.Reload(apply_options.index_dir).ok();
    auto published = serve::LoadAlignmentIndex(apply_options.index_dir);
    if (published.ok()) {
      for (const std::string& name : published->source_names) {
        if (name == "delta newcomer 0") {
          ingest.patched_entity_served = true;
          break;
        }
      }
    }
    std::fprintf(
        stderr,
        "delta_ingest: %zu records over %zu entities, apply %.1f ms "
        "(repair %.1f, verify %.1f, publish %.1f), served %llu queries "
        "during apply (%.1f qps, %llu errors), generation %llu, reload %s, "
        "patched entity %s\n",
        ingest.records, ingest.entities, ingest.apply_ms, ingest.repair_ms,
        ingest.verify_ms, ingest.publish_ms,
        static_cast<unsigned long long>(ingest.queries_during_apply),
        ingest.qps_during_apply,
        static_cast<unsigned long long>(ingest.query_errors_during_apply),
        static_cast<unsigned long long>(ingest.published_generation),
        ingest.reload_ok ? "ok" : "FAILED",
        ingest.patched_entity_served ? "served" : "MISSING");
    std::string cleanup = std::string("rm -rf ") + delta_root;
    if (std::system(cleanup.c_str()) != 0) {
      std::fprintf(stderr, "warning: could not clean %s\n", delta_root);
    }
  }

  const PhaseResult& peak = phases.back();
  std::string json = "{\n";
  json += "  \"bench\": \"overload_soak\",\n";
  json += StrFormat("  \"entities\": %zu,\n", n_entities);
  json += StrFormat("  \"topk\": %zu,\n", k);
  json += StrFormat("  \"hardware_concurrency\": %u,\n",
                    std::thread::hardware_concurrency());
  json += StrFormat(
      "  \"calibration\": {\"qps\": %.1f, \"p50_ms\": %.3f, "
      "\"p99_ms\": %.3f},\n",
      cal.qps, cal.p50_ms, cal.p99_ms);
  json += "  \"phases\": [\n";
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseResult& p = phases[i];
    json += StrFormat(
        "    {\"multiplier\": %.2f, \"threads\": %zu, \"seconds\": %.3f, "
        "\"attempts\": %llu, \"ok\": %llu, \"ok_degraded\": %llu, "
        "\"shed\": %llu, \"rejected\": %llu, \"other_errors\": %llu, "
        "\"goodput_qps\": %.1f, \"shed_rate\": %.4f, "
        "\"p50_ms\": %.3f, \"p99_ms\": %.3f, "
        "\"tier_ns\": {\"full\": %llu, \"textual_only\": %llu, "
        "\"pair_only\": %llu}}%s\n",
        p.multiplier, p.threads, p.seconds,
        static_cast<unsigned long long>(p.attempts),
        static_cast<unsigned long long>(p.ok),
        static_cast<unsigned long long>(p.ok_degraded),
        static_cast<unsigned long long>(p.shed),
        static_cast<unsigned long long>(p.rejected),
        static_cast<unsigned long long>(p.other_errors), p.goodput_qps,
        p.shed_rate, p.p50_ms, p.p99_ms,
        static_cast<unsigned long long>(p.tier_ns[0]),
        static_cast<unsigned long long>(p.tier_ns[1]),
        static_cast<unsigned long long>(p.tier_ns[2]),
        i + 1 < phases.size() ? "," : "");
  }
  json += "  ],\n";
  json += "  \"chaos\": [\n";
  for (size_t i = 0; i < chaos.size(); ++i) {
    const auto& c = chaos[i];
    json += StrFormat(
        "    {\"name\": \"%s\", \"spec\": \"%s\", \"multiplier\": %.2f, "
        "\"goodput_qps\": %.1f, \"goodput_delta\": %.4f, "
        "\"injected_errors\": %llu, \"unexpected_errors\": %llu, "
        "\"shed\": %llu, \"shed_rate\": %.4f, \"p99_ms\": %.3f, "
        "\"reload_attempts\": %llu, \"reload_failures\": %llu}%s\n",
        c.name.c_str(), c.spec.c_str(), c.phase.multiplier,
        c.phase.goodput_qps, c.goodput_delta,
        static_cast<unsigned long long>(c.phase.injected_errors),
        static_cast<unsigned long long>(c.phase.other_errors),
        static_cast<unsigned long long>(c.phase.shed),
        c.phase.shed_rate, c.phase.p99_ms,
        static_cast<unsigned long long>(c.reload_attempts),
        static_cast<unsigned long long>(c.reload_failures),
        i + 1 < chaos.size() ? "," : "");
  }
  json += "  ],\n";
  if (repl.ran) {
    json += StrFormat(
        "  \"replication\": {\"ranges\": %zu, \"replicas\": %zu,\n"
        "    \"baseline\": {\"goodput_qps\": %.1f, \"p99_ms\": %.3f, "
        "\"ok\": %llu, \"degraded\": %llu, \"errors\": %llu},\n"
        "    \"one_replica_down\": {\"goodput_qps\": %.1f, \"p99_ms\": "
        "%.3f, \"ok\": %llu, \"degraded\": %llu, \"errors\": %llu, "
        "\"failovers\": %llu, \"failover_latency_ms\": %.3f},\n"
        "    \"goodput_delta\": %.4f},\n",
        repl.ranges, repl.replicas, repl.baseline.goodput_qps,
        repl.baseline.p99_ms,
        static_cast<unsigned long long>(repl.baseline.ok),
        static_cast<unsigned long long>(repl.baseline.degraded),
        static_cast<unsigned long long>(repl.baseline.errors),
        repl.failover.goodput_qps, repl.failover.p99_ms,
        static_cast<unsigned long long>(repl.failover.ok),
        static_cast<unsigned long long>(repl.failover.degraded),
        static_cast<unsigned long long>(repl.failover.errors),
        static_cast<unsigned long long>(repl.failover.failovers),
        repl.failover.failover_latency_ms, repl.goodput_delta);
  }
  if (ingest.ran) {
    json += StrFormat(
        "  \"delta_ingest\": {\"entities\": %zu, \"records\": %zu, "
        "\"apply_ms\": %.3f, \"repair_ms\": %.3f, \"verify_ms\": %.3f, "
        "\"publish_ms\": %.3f, \"queries_during_apply\": %llu, "
        "\"query_errors_during_apply\": %llu, \"qps_during_apply\": %.1f, "
        "\"published_generation\": %llu, \"reload_ok\": %s, "
        "\"patched_entity_served\": %s},\n",
        ingest.entities, ingest.records, ingest.apply_ms, ingest.repair_ms,
        ingest.verify_ms, ingest.publish_ms,
        static_cast<unsigned long long>(ingest.queries_during_apply),
        static_cast<unsigned long long>(ingest.query_errors_during_apply),
        ingest.qps_during_apply,
        static_cast<unsigned long long>(ingest.published_generation),
        ingest.reload_ok ? "true" : "false",
        ingest.patched_entity_served ? "true" : "false");
  }
  json += StrFormat(
      "  \"peak\": {\"multiplier\": %.2f, \"shed_rate\": %.4f, "
      "\"p99_over_unloaded_p99\": %.2f}\n",
      peak.multiplier, peak.shed_rate,
      cal.p99_ms > 0 ? peak.p99_ms / cal.p99_ms : 0.0);
  json += "}\n";

  std::printf("%s", json.c_str());
  std::ofstream out("BENCH_overload.json", std::ios::trunc);
  if (out) {
    out << json;
    std::fprintf(stderr, "wrote BENCH_overload.json\n");
  } else {
    std::fprintf(stderr, "warning: could not write BENCH_overload.json\n");
  }
  std::fprintf(stderr, "final service stats:\n%s\n",
               service.Stats().ToJson().c_str());
  return 0;
}

}  // namespace
}  // namespace ceaff

int main() { return ceaff::Main(); }
