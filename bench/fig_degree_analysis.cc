// Extension figure: accuracy by source-entity degree. The paper explains
// the DBP15K-vs-SRPRS gap by density — structure-based methods live off
// well-connected entities. This bench makes that visible directly:
// per-degree-bucket accuracy of the structural baseline vs full CEAFF on
// a dense and a sparse pair.

#include <cstdio>
#include <numeric>

#include "bench_util.h"
#include "ceaff/eval/analysis.h"
#include "ceaff/matching/matching.h"

using namespace ceaff;

namespace {

void Analyze(const char* dataset) {
  const data::SyntheticBenchmark& b = bench::GetBenchmark(dataset);
  std::vector<uint32_t> test_src, test_tgt;
  core::TestIds(b.pair, &test_src, &test_tgt);
  std::vector<int64_t> gold(test_src.size());
  std::iota(gold.begin(), gold.end(), int64_t{0});

  // Structural-only baseline.
  baselines::GcnAlignStructural gcn(bench::BenchGcnOptions());
  auto gcn_result = gcn.Run(b.pair);
  CEAFF_CHECK(gcn_result.ok()) << gcn_result.status();
  matching::MatchResult gcn_match =
      matching::GreedyIndependent(gcn_result->similarity);

  // Full CEAFF.
  core::CeaffPipeline pipe(&b.pair, &b.store, bench::BenchCeaffOptions());
  auto ceaff_result = pipe.Run();
  CEAFF_CHECK(ceaff_result.ok()) << ceaff_result.status();

  std::printf("--- %s ---\n", dataset);
  std::printf("GCN-Align (structure only):\n%s",
              eval::FormatDegreeBuckets(
                  eval::AccuracyByDegree(b.pair.kg1, test_src, gcn_match,
                                         gold))
                  .c_str());
  std::printf("CEAFF:\n%s\n",
              eval::FormatDegreeBuckets(
                  eval::AccuracyByDegree(b.pair.kg1, test_src,
                                         ceaff_result->match, gold))
                  .c_str());
}

}  // namespace

int main() {
  std::printf("Degree-bucket analysis (scale %.2f)\n\n",
              bench::DatasetScale());
  Analyze("DBP15K_FR_EN");   // dense
  Analyze("SRPRS_EN_FR");    // sparse, real-life degree profile
  std::printf(
      "Expected shape: the structural baseline's accuracy climbs steeply\n"
      "with degree (low-degree entities have little neighbourhood to\n"
      "match on), while CEAFF stays flat — its text features do not care\n"
      "about connectivity. This is the mechanism behind the paper's\n"
      "DBP15K-vs-SRPRS observations.\n");
  return 0;
}
