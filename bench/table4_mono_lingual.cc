// Reproduces Table IV: accuracy of mono-lingual EA on DBP100K-like and
// SRPRS-like mono-lingual pairs, including the paper's own "CEAFF w/o Ml"
// row (string feature removed, for comparability with semantics-only
// prior work).

#include <cstdio>

#include "bench_util.h"

using namespace ceaff;
using bench::PaperAccuracy;

int main() {
  const std::vector<std::string> datasets = {
      "DBP100K_DBP_WD", "DBP100K_DBP_YG", "SRPRS_DBP_WD", "SRPRS_DBP_YG"};
  const std::vector<std::string> columns = {"100K-WD", "100K-YG", "SR-WD",
                                            "SR-YG"};

  std::printf("Table IV — accuracy of mono-lingual EA "
              "(synthetic benchmarks, scale %.2f)\n\n",
              bench::DatasetScale());

  const std::vector<std::string> measured_methods = {
      "MTransE", "IPTransE", "TransE-shared", "RWalk-align", "GCN-Align",
      "BootEA-lite", "NAEA-lite", "JAPE-lite",
      "CEAFF w/o C", "CEAFF w/o Ml", "CEAFF"};
  bench::PrintHeader("measured (this reproduction):", columns);
  for (const std::string& m : measured_methods) {
    std::vector<std::optional<double>> cells;
    for (const std::string& d : datasets) {
      auto r = bench::RunMethod(m, bench::GetBenchmark(d));
      cells.push_back(r.ok() ? std::optional<double>(r->accuracy)
                             : std::nullopt);
    }
    bench::PrintRow(m, cells);
  }

  std::printf("\n");
  const std::vector<std::string> paper_methods = {
      "MTransE", "IPTransE", "BootEA",  "RSNs",        "MuGNN",
      "NAEA",    "GCN-Align", "JAPE",   "MultiKE",     "RDGCN",
      "GM-Align", "CEAFF w/o Ml", "CEAFF"};
  bench::PrintHeader("paper-reported (Zeng et al., Table IV):", columns);
  for (const std::string& m : paper_methods) {
    std::vector<std::optional<double>> cells;
    for (const std::string& d : datasets) cells.push_back(PaperAccuracy(m, d));
    bench::PrintRow(m, cells);
  }

  std::printf(
      "\nShape checks (paper claims that must replicate):\n"
      " * CEAFF reaches (near-)perfect accuracy on all mono-lingual pairs —\n"
      "   entity names are nearly identical, so the string feature solves\n"
      "   the task (the paper notes this calls for harder benchmarks).\n"
      " * CEAFF w/o Ml loses accuracy, but stays far above the baselines.\n"
      " * Structure-only baselines drop sharply on the sparse SRPRS pairs.\n");
  return 0;
}
