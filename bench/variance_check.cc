// Robustness check: the headline comparisons must not hinge on one
// generator seed. Regenerates two datasets under several seeds and reports
// mean ± stddev of CEAFF, CEAFF w/o C and the structural baseline — the
// kind of variance reporting the paper's single-number tables omit.

#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace ceaff;

namespace {

struct Stats {
  double mean = 0.0;
  double stddev = 0.0;
};

Stats Summarize(const std::vector<double>& xs) {
  Stats s;
  if (xs.empty()) return s;
  for (double x : xs) s.mean += x;
  s.mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(xs.size()));
  return s;
}

}  // namespace

int main() {
  const std::vector<uint64_t> seeds = {2020, 2021, 2022};
  const std::vector<std::string> methods = {"CEAFF", "CEAFF w/o C",
                                            "GCN-Align"};
  std::printf("Cross-seed variance (3 generator seeds, scale %.2f)\n\n",
              bench::DatasetScale());

  for (const char* dataset : {"DBP15K_ZH_EN", "SRPRS_EN_FR"}) {
    std::printf("--- %s ---\n", dataset);
    std::printf("%-14s %10s %10s\n", "method", "mean", "stddev");
    for (const std::string& method : methods) {
      std::vector<double> accs;
      for (uint64_t seed : seeds) {
        auto cfg = data::BenchmarkConfigByName(dataset,
                                               bench::DatasetScale(), seed);
        CEAFF_CHECK(cfg.ok()) << cfg.status();
        auto b = data::GenerateBenchmark(cfg.value());
        CEAFF_CHECK(b.ok()) << b.status();
        auto r = bench::RunMethod(method, b.value());
        CEAFF_CHECK(r.ok()) << r.status();
        accs.push_back(r->accuracy);
      }
      Stats s = Summarize(accs);
      std::printf("%-14s %10.3f %10.3f\n", method.c_str(), s.mean, s.stddev);
    }
    std::printf("\n");
  }
  std::printf("Expected: the CEAFF-vs-baseline gap dwarfs the per-seed\n"
              "standard deviation, so the table conclusions are seed-"
              "robust.\n");
  return 0;
}
